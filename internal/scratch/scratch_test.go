package scratch

import "testing"

func TestCheckoutsAreZeroedAndDisjoint(t *testing.T) {
	w := New()
	a := w.Complex(8)
	b := w.Complex(8)
	for i := range a {
		a[i] = complex(float64(i), 1)
	}
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("b[%d] = %v, want 0 (fresh checkout must be zeroed)", i, b[i])
		}
	}
	// b must not alias a.
	b[0] = 42
	if a[0] == 42 {
		t.Fatal("checkouts alias each other")
	}
	f := w.Float(4)
	f2 := w.Float(4)
	f[0] = 7
	if f2[0] != 0 {
		t.Fatal("float checkouts alias or are not zeroed")
	}
}

func TestReleaseRecyclesAndRezeroes(t *testing.T) {
	w := New()
	m := w.Mark()
	a := w.Complex(16)
	a[3] = 9
	w.Release(m)
	b := w.Complex(16)
	if &a[0] != &b[0] {
		t.Fatal("Release did not rewind the arena (expected same backing memory)")
	}
	if b[3] != 0 {
		t.Fatalf("recycled checkout not zeroed: b[3] = %v", b[3])
	}
}

func TestCapClampPreventsAppendBleed(t *testing.T) {
	w := New()
	a := w.Complex(4)
	b := w.Complex(4)
	a = append(a, 99) // must reallocate, not write into b
	_ = a
	if b[0] != 0 {
		t.Fatalf("append to earlier checkout bled into later one: b[0] = %v", b[0])
	}
}

func TestLargeCheckoutAndGrowth(t *testing.T) {
	w := New()
	big := w.Complex(10 * firstComplexChunk)
	if len(big) != 10*firstComplexChunk {
		t.Fatalf("len = %d", len(big))
	}
	// After growth, small checkouts still work and are zeroed.
	s := w.Complex(3)
	if len(s) != 3 || s[0] != 0 {
		t.Fatal("post-growth checkout broken")
	}
	bigF := w.Float(10 * firstFloatChunk)
	if len(bigF) != 10*firstFloatChunk {
		t.Fatalf("float len = %d", len(bigF))
	}
}

func TestNestedMarks(t *testing.T) {
	w := New()
	outer := w.Mark()
	a := w.Complex(8)
	inner := w.Mark()
	_ = w.Complex(8)
	w.Release(inner)
	c := w.Complex(8)
	// a must still be live (untouched) after the inner release.
	a[0] = 5
	if c[0] != 0 {
		t.Fatal("inner release corrupted zeroing")
	}
	w.Release(outer)
	d := w.Complex(8)
	if &d[0] != &a[0] {
		t.Fatal("outer release did not rewind to outer mark")
	}
}

func TestZeroLength(t *testing.T) {
	w := New()
	if s := w.Complex(0); s != nil {
		t.Fatal("Complex(0) should be nil")
	}
	if s := w.Float(0); s != nil {
		t.Fatal("Float(0) should be nil")
	}
}

func TestSteadyStateNoAllocs(t *testing.T) {
	w := New()
	// Warm up the chunk list.
	w.Complex(64)
	w.Float(64)
	w.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		m := w.Mark()
		_ = w.Complex(64)
		_ = w.Float(64)
		w.Release(m)
	})
	if allocs != 0 {
		t.Fatalf("steady-state checkout allocates: %v allocs/run", allocs)
	}
}
