// Package scratch provides a per-worker bump-allocator workspace for the
// hot per-tick paths (sounding, super-resolution fitting, beam weight
// synthesis). A Workspace hands out zeroed complex128 and float64 slices
// from size-classed chunks; checkouts are freed en masse with Release
// (stack discipline via Mark) or Reset (whole arena), so a maintenance
// tick or Monte-Carlo trial runs with near-constant allocation after
// warm-up.
//
// Ownership and aliasing rules (see DESIGN.md "Workspace ownership"):
//
//   - A Workspace is single-goroutine: exactly one worker may use it at a
//     time. experiments.ParallelTrials creates one per worker.
//   - Slices returned by Complex/Float are valid until the enclosing
//     Release(mark) or Reset(). Callers must not retain them past that
//     point; copy out anything that must survive.
//   - A callee that receives a *Workspace may check out transient buffers
//     under its own Mark/Release pair, and may check out result buffers
//     *before* taking its mark so they survive its release — but those
//     results still die at the caller's release. Results that outlive the
//     trial (figure tables, Result.Amp handed to long-lived state) must be
//     copied into ordinary heap slices by whoever keeps them.
//   - Checkouts are zeroed, so code paths are byte-identical whether a
//     buffer is fresh from make() or recycled from the arena. This is what
//     keeps figure tables identical at any worker count.
package scratch

// chunk sizes double from these floors; the first complex chunk is large
// enough that a full superres Extract (Gram + ramps + candidates for a
// few beams at nsc=64) fits in one or two chunks.
const (
	firstComplexChunk = 512
	firstFloatChunk   = 256
)

// Workspace is a size-classed bump arena over complex128 and float64
// pools. The zero value is not usable; call New.
type Workspace struct {
	cChunks [][]complex128
	fChunks [][]float64
	cIdx    int // chunk currently being bumped
	cOff    int // offset within cChunks[cIdx]
	fIdx    int
	fOff    int
}

// Mark records the arena position so everything checked out after it can
// be released at once. Marks must be released in LIFO order.
type Mark struct {
	cIdx, cOff int
	fIdx, fOff int
}

// New returns an empty workspace. Chunks are allocated lazily on first
// checkout and retained across Release/Reset.
func New() *Workspace {
	return &Workspace{}
}

// Mark returns the current arena position.
func (w *Workspace) Mark() Mark {
	return Mark{cIdx: w.cIdx, cOff: w.cOff, fIdx: w.fIdx, fOff: w.fOff}
}

// Release rewinds the arena to m, invalidating every slice checked out
// after the mark. The chunk memory is retained for reuse.
func (w *Workspace) Release(m Mark) {
	w.cIdx, w.cOff = m.cIdx, m.cOff
	w.fIdx, w.fOff = m.fIdx, m.fOff
}

// Reset rewinds the arena to empty, retaining all chunks.
func (w *Workspace) Reset() {
	w.cIdx, w.cOff, w.fIdx, w.fOff = 0, 0, 0, 0
}

// Complex checks out a zeroed complex128 slice of length n.
func (w *Workspace) Complex(n int) []complex128 {
	if n == 0 {
		return nil
	}
	for {
		if w.cIdx < len(w.cChunks) {
			c := w.cChunks[w.cIdx]
			if w.cOff+n <= len(c) {
				s := c[w.cOff : w.cOff+n : w.cOff+n]
				w.cOff += n
				clear(s)
				return s
			}
			// Current chunk full: advance. The tail of the old chunk is
			// wasted until the next Release/Reset — fine for a bump arena.
			w.cIdx++
			w.cOff = 0
			continue
		}
		size := firstComplexChunk << len(w.cChunks)
		if size < n {
			size = n
		}
		w.cChunks = append(w.cChunks, make([]complex128, size))
	}
}

// Float checks out a zeroed float64 slice of length n.
func (w *Workspace) Float(n int) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if w.fIdx < len(w.fChunks) {
			c := w.fChunks[w.fIdx]
			if w.fOff+n <= len(c) {
				s := c[w.fOff : w.fOff+n : w.fOff+n]
				w.fOff += n
				clear(s)
				return s
			}
			w.fIdx++
			w.fOff = 0
			continue
		}
		size := firstFloatChunk << len(w.fChunks)
		if size < n {
			size = n
		}
		w.fChunks = append(w.fChunks, make([]float64, size))
	}
}
