package cluster

import (
	"runtime"
	"testing"

	"mmreliable/internal/env"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// heapBytesPerRun measures the mean heap bytes allocated per call of f —
// the bytes/op half of the zero-alloc contract (see the station pin).
func heapBytesPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up once outside the measured window
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(runs)
}

// quiesceCluster builds a fading-free 2-cell/2-UE cluster and runs it past
// establishment: the quiescent steady state whose frame loop the alloc pin
// and the benchmark measure. Fading is disabled for the same reason as in
// the station pin — fading jitter periodically triggers re-alignment
// rounds whose weight recomposition intentionally allocates.
func quiesceCluster(t testing.TB, workers int) *Cluster {
	e, poses := env.MultiCellHall(env.Band28GHz(), 2)
	cfg := DefaultConfig()
	cfg.Seed = 31
	cfg.Station.Workers = workers
	// Static UEs, so the §4.2 mobility loop is pure noise response here:
	// sounder jitter on the hall's longer links periodically triggers a
	// re-alignment whose weight recomposition intentionally allocates
	// (the fresh vector escapes into the front end). Switch the loop off —
	// the paper's own "w/o tracking" ablation — to isolate the frame
	// loop's quiescent steady state.
	cfg.Station.Manager.ProactiveTracking = false
	cl, err := New(nr.Mu3(), cfg, Deployment{Env: e, Cells: poses, Budget: sim.IndoorBudget()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, pos := range env.HallUEPositions(2) {
		if _, err := cl.AddUE(UEConfig{Pos: pos}); err != nil {
			t.Fatalf("AddUE: %v", err)
		}
	}
	for c := range cl.ues[0].scen {
		for _, u := range cl.ues {
			u.scen[c].Fading = nil
		}
	}
	// Warm: admission, initial training on both legs, first monitor
	// rounds, meter episode-buffer growth.
	for i := 0; i < 40; i++ {
		cl.AdvanceFrame()
	}
	return cl
}

// TestClusterSlotAllocs pins the steady-state cluster frame loop at zero
// allocations: retained monitor sounders/models/beams, the member
// stations' pinned slot loops, and barrier-only coordination keep
// AdvanceFrame off the allocator once every leg is established.
func TestClusterSlotAllocs(t *testing.T) {
	cl := quiesceCluster(t, 1) // the stations' inline single-worker path
	avg := testing.AllocsPerRun(10, cl.AdvanceFrame)
	if avg != 0 {
		t.Fatalf("AdvanceFrame allocates %.1f allocs/frame in steady state, want 0", avg)
	}
	// Bytes too — amortized episode-buffer appends used to leak ~240 B/frame
	// here while rounding to 0 allocs/op.
	if bytes := heapBytesPerRun(50, cl.AdvanceFrame); bytes != 0 {
		t.Fatalf("AdvanceFrame allocates %.1f B/frame in steady state, want 0", bytes)
	}
}

// TestClusterFrameAllocsAcrossRetrains pins the frame loop at EXACTLY zero
// heap bytes over a window long enough to include full re-establishments.
// The short window above misses them: a marginal standby leg in this
// fixture dips below the outage threshold every ~150 frames, confirms a
// data outage, and retrains from scratch — which used to allocate ~24 KB
// per event (amortizing to the 60 B/op the cluster benchmark reported).
// With the manager's establishment stores the whole sweep → probe →
// estimate → select → compose pipeline is retained, so even windows
// covering multiple retrain events stay at zero bytes.
func TestClusterFrameAllocsAcrossRetrains(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-retrain window is ~0.3 s of simulation")
	}
	cl := quiesceCluster(t, 1)
	// Warm a little further so per-session one-time growth (the
	// RetrainReasons key insert on the first outage-driven retrain, the
	// weight double-buffer fill at first establishment) is behind us, then
	// measure a window wide enough to contain the fixture's next natural
	// data-outage retrain (ue001's marginal standby leg dips below the
	// outage threshold around frame 250 under seed 31).
	for i := 0; i < 100; i++ {
		cl.AdvanceFrame()
	}
	retrains := clusterRetrains(cl)
	if bytes := heapBytesPerRun(400, cl.AdvanceFrame); bytes != 0 {
		t.Fatalf("AdvanceFrame allocates %.2f B/frame across retrains, want exactly 0", bytes)
	}
	if clusterRetrains(cl) == retrains {
		t.Fatal("measured window saw no retrain: fixture no longer exercises re-establishment")
	}
}

// clusterRetrains sums manager retrain counts across every live session.
func clusterRetrains(cl *Cluster) int {
	n := 0
	for _, cell := range cl.cells {
		n += cell.st.Results().Counters.Retrains
	}
	return n
}
