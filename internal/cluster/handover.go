package cluster

import (
	"mmreliable/internal/link"
	"mmreliable/internal/sim"
)

// The handover half of the coordinator: per-UE metering, selection-
// diversity combining, and the make-before-break FSM. Everything here runs
// single-threaded at the frame barrier on state the member stations
// published — the cluster's determinism rests on that.

// pingPongWindowFrames is the window after a handover during which swapping
// back to the previous serving cell counts as a ping-pong (25 frames =
// 500 ms at the default 20 ms frame).
const pingPongWindowFrames = 25

// harvest runs after every cell's frame: fold each attached UE's per-slot
// outcomes into its cluster-level meters (serving leg and the selection-
// diversity combination of both live legs), then step its handover FSM.
func (cl *Cluster) harvest(t0 float64) {
	for _, u := range cl.ues {
		if !u.attached {
			continue
		}
		cl.meterUE(u, t0)
		cl.stepFSM(u)
	}
}

// meterUE records the frame's slots. The serving meter is what a
// handover-only deployment delivers; the diversity meter picks, per slot,
// the better of the serving and hot-standby legs — the selection-combining
// macro-diversity bound (a blocker across one cell's link rarely shadows
// the other cell's).
func (cl *Cluster) meterUE(u *ue, t0 float64) {
	serv := cl.cells[u.serving].st.SessionFrameSlots(u.sess[u.serving])
	if serv == nil {
		return
	}
	var sb []sim.Slot
	if u.standby >= 0 {
		sb = cl.cells[u.standby].st.SessionFrameSlots(u.sess[u.standby])
	}
	warmupEnd := u.effectiveAttach + cl.cfg.Warmup
	for k, s := range serv {
		if t0+float64(k)*cl.slotDur < warmupEnd {
			continue
		}
		u.meter.Record(s.SNRdB, s.Training, s.ThroughputBps)
		best := s
		if k < len(sb) && betterLeg(sb[k], best) {
			best = sb[k]
		}
		u.divMeter.Record(best.SNRdB, best.Training, best.ThroughputBps)
	}
}

// betterLeg reports whether slot a beats slot b for selection combining: a
// data slot always beats a training slot; among equals, higher SNR wins.
func betterLeg(a, b sim.Slot) bool {
	if a.Training != b.Training {
		return !a.Training
	}
	return a.SNRdB > b.SNRdB
}

// stepFSM advances the UE's handover state machine one frame, on
// barrier-published session state only.
func (cl *Cluster) stepFSM(u *ue) {
	if u.standby < 0 {
		u.ttt = 0
		return
	}
	sst := cl.cells[u.serving].st
	servSNR := sst.SessionLastSNR(u.sess[u.serving])
	degraded := sst.SessionDropDB(u.sess[u.serving]) > cl.cfg.DropTriggerDB ||
		servSNR < link.OutageThresholdDB ||
		!sst.SessionEstablished(u.sess[u.serving])
	bst := cl.cells[u.standby].st
	better := bst.SessionEstablished(u.sess[u.standby]) &&
		bst.SessionLastSNR(u.sess[u.standby]) > servSNR+cl.cfg.HysteresisDB
	if degraded && better {
		u.ttt++
	} else {
		u.ttt = 0
	}
	if u.ttt >= cl.cfg.TimeToTrigger && cl.frame-u.lastSwapFrame >= cl.cfg.MinStayFrames {
		cl.swap(u)
	}
}

// swap promotes the hot standby to serving — make-before-break: the
// standby's manager is already established and maintained, so the promotion
// is a relabeling at the boundary, with zero training gap. The old serving
// session stays live as the new standby (it may recover, or the next
// monitor round retargets it).
func (cl *Cluster) swap(u *ue) {
	if u.standby == u.prevServing && cl.frame-u.lastSwapFrame <= pingPongWindowFrames {
		u.pingPongs++
		cl.counters.PingPongs++
	}
	u.prevServing = u.serving
	u.serving, u.standby = u.standby, u.serving
	u.lastSwapFrame = cl.frame
	u.ttt = 0
	u.handovers++
	cl.counters.Handovers++
}

// retargetStandby re-points the UE's standby leg when the monitors say a
// non-attached cell is clearly stronger (or opens a standby where none
// exists). Runs only on monitor frames, right after the UE's monitor
// probes, so the estimates are fresh. The comparison baseline for an
// existing standby is its own session SNR — measured, not monitored.
func (cl *Cluster) retargetStandby(u *ue) {
	best, bestSNR := -1, 0.0
	for c := range cl.cells {
		if c == u.serving || c == u.standby || !u.monSeen[c] {
			continue
		}
		if !cl.cells[c].canAdmit(cl.cfg.Station.MaxSessions) {
			continue
		}
		if best < 0 || u.monEst[c] > bestSNR {
			best, bestSNR = c, u.monEst[c]
		}
	}
	if best < 0 {
		return
	}
	if u.standby < 0 {
		if err := u.attachLeg(cl, best, cl.Now()); err != nil {
			panic(err)
		}
		u.standby = best
		cl.counters.StandbyRetargets++
		return
	}
	curSNR := cl.cells[u.standby].st.SessionLastSNR(u.sess[u.standby])
	if bestSNR > curSNR+cl.cfg.RetargetMarginDB {
		u.detachLeg(cl, u.standby)
		if err := u.attachLeg(cl, best, cl.Now()); err != nil {
			panic(err)
		}
		u.standby = best
		cl.counters.StandbyRetargets++
	}
}
