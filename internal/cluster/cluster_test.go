package cluster

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/incr"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// nearestCell returns the index of the gNB pose closest to pos.
func nearestCell(poses []env.Pose, pos env.Vec2) int {
	best, bestD := 0, math.Inf(1)
	for i, p := range poses {
		if d := p.Pos.Dist(pos); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// servingBlockage builds a deep body-block schedule for UE i: one 35 dB
// all-path event crossing the UE's (initially) serving link, onset
// staggered per UE. Deterministic in i.
func servingBlockage(i int) events.Schedule {
	start := 0.30 + 0.02*float64(i%7)
	return events.Schedule{{
		AllPaths: true,
		Start:    start,
		Duration: 0.30,
		DepthDB:  35,
		RampTime: events.RampFor(35),
	}}
}

// buildCluster assembles a cluster over the multi-cell hall: n UEs on the
// deterministic drop lattice, each with (optionally) a deep blocker
// crossing its nearest cell's link, plus mid-run churn (every fourth UE
// arrives late, every fifth leaves early). Deterministic in
// (cells, ues, seed, workers).
func buildCluster(t testing.TB, cells, ues, workers int, seed int64, blocked, churn bool) *Cluster {
	return buildClusterWith(t, cells, ues, workers, seed, blocked, churn, nil)
}

// buildClusterWith is buildCluster with a Config hook applied before New.
func buildClusterWith(t testing.TB, cells, ues, workers int, seed int64, blocked, churn bool, mut func(*Config)) *Cluster {
	t.Helper()
	e, poses := env.MultiCellHall(env.Band28GHz(), cells)
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Station.Workers = workers
	if mut != nil {
		mut(&cfg)
	}
	cl, err := New(nr.Mu3(), cfg, Deployment{Env: e, Cells: poses, Budget: sim.IndoorBudget()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, pos := range env.HallUEPositions(ues) {
		ucfg := UEConfig{Pos: pos}
		if blocked {
			blk := make([]events.Schedule, cells)
			blk[nearestCell(poses, pos)] = servingBlockage(i)
			ucfg.Blockage = blk
		}
		if churn && i%4 == 3 {
			ucfg.AttachAt = 0.15
		}
		if churn && i%5 == 4 {
			ucfg.DetachAt = 0.45
		}
		if _, err := cl.AddUE(ucfg); err != nil {
			t.Fatalf("AddUE %d: %v", i, err)
		}
	}
	return cl
}

// TestClusterDeterministicAcrossWorkers is the subsystem's core contract:
// byte-identical Results for 1 vs 8 workers on a 3-cell/8-UE cluster with
// churn and blockage-driven handovers — the same guarantee the CI
// determinism diff checks end-to-end through mmcluster.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker determinism sweep is slow; covered by CI diff")
	}
	const dur = 0.7
	res1 := buildCluster(t, 3, 8, 1, 7, true, true).Run(dur)
	res8 := buildCluster(t, 3, 8, 8, 7, true, true).Run(dur)
	if !reflect.DeepEqual(res1, res8) {
		t.Fatalf("results differ between 1 and 8 workers:\n1: %+v\n8: %+v", res1, res8)
	}
	if res1.Counters.Handovers == 0 {
		t.Fatalf("blockage produced no handovers: %+v", res1.Counters)
	}
	if res1.Counters.UEsFinished == 0 {
		t.Fatalf("churn did not exercise UE departure: %+v", res1.Counters)
	}
}

// TestClusterIncrementalModeEquivalence pins the incremental frame engine's
// oracle contract at the cluster layer: the blockage+churn fixture produces
// byte-identical Results with the temporal-coherence fast paths on and off
// (the MMR_INCREMENTAL=off oracle). The quiescent fixture (fading disabled,
// spatial index built — the regime where every fast path engages) must also
// actually fire the monitor row cache; the deliberately mode-variant
// MonitorRowsReused diagnostic is zeroed before comparison.
func TestClusterIncrementalModeEquivalence(t *testing.T) {
	was := incr.Enabled
	defer func() { incr.Enabled = was }()
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"fading", nil},
		{"quiescent", func(c *Config) { c.DisableFading = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const dur = 0.7
			run := func(enabled bool) Results {
				incr.Enabled = enabled
				return buildClusterWith(t, 3, 8, 1, 7, true, true, tc.mut).Run(dur)
			}
			on := run(true)
			off := run(false)
			if tc.name == "quiescent" && on.Counters.MonitorRowsReused == 0 {
				t.Fatal("incremental mode never reused a monitor row on the quiescent fixture")
			}
			if off.Counters.MonitorRowsReused != 0 {
				t.Fatalf("oracle mode reused %d monitor rows, want 0", off.Counters.MonitorRowsReused)
			}
			on.Counters.MonitorRowsReused = 0
			if !reflect.DeepEqual(on, off) {
				t.Fatalf("results differ between incremental and oracle mode:\non:  %+v\noff: %+v", on, off)
			}
		})
	}
}

// TestClusterManyWorkerCounts sweeps worker counts on a small cluster and
// requires identical fingerprints.
func TestClusterManyWorkerCounts(t *testing.T) {
	var ref string
	for _, w := range []int{1, 2, 5} {
		res := buildCluster(t, 2, 4, w, 17, true, false).Run(0.5)
		fp := fmt.Sprintf("%x/%x/%d/%d", res.MeanServingReliability,
			res.MeanDiversityReliability, res.Counters.Handovers, res.Counters.MonitorProbes)
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Fatalf("workers=%d fingerprint %s != %s", w, fp, ref)
		}
	}
}

// TestClusterHandoverUnderBlockage is the tentpole behaviour: a deep
// blocker crosses the serving link of a 2-cell UE; the coordinator must
// detect the degradation and promote the hot standby, and the selection-
// diversity bound must ride through the blockage almost untouched while
// the serving-only leg eats the detection latency.
func TestClusterHandoverUnderBlockage(t *testing.T) {
	cl := buildCluster(t, 2, 1, 2, 3, true, false)
	res := cl.Run(1.0)
	if res.Counters.Handovers < 1 {
		t.Fatalf("no handover despite a 35 dB serving-link blockage: %+v", res.Counters)
	}
	if res.Counters.PingPongs != 0 {
		t.Fatalf("%d ping-pongs — hysteresis/dwell guard failed", res.Counters.PingPongs)
	}
	u := res.PerUE[0]
	if u.Serving.Reliability >= 1 {
		t.Fatalf("serving leg shows no outage at all (rel=%g) — the blocker never bit", u.Serving.Reliability)
	}
	if u.Diversity.Reliability < u.Serving.Reliability {
		t.Fatalf("diversity reliability %g below serving-only %g", u.Diversity.Reliability, u.Serving.Reliability)
	}
	if u.Diversity.Reliability < 0.99 {
		t.Fatalf("diversity reliability %g < 0.99 — the standby leg did not cover the blockage", u.Diversity.Reliability)
	}
	if u.DivMaxOutageMs > u.MaxOutageMs {
		t.Fatalf("diversity max outage %.1f ms exceeds serving-only %.1f ms", u.DivMaxOutageMs, u.MaxOutageMs)
	}
}

// TestClusterNoPingPongStatic is the hysteresis acceptance check: on a
// static channel (fading only, no blockage) the FSM must never hand over
// at all — the serving link never degrades, so TTT never accumulates.
func TestClusterNoPingPongStatic(t *testing.T) {
	res := buildCluster(t, 3, 4, 2, 11, false, false).Run(1.0)
	if res.Counters.Handovers != 0 {
		t.Fatalf("%d handovers on a static channel", res.Counters.Handovers)
	}
	if res.Counters.PingPongs != 0 {
		t.Fatalf("%d ping-pongs on a static channel", res.Counters.PingPongs)
	}
	if res.MeanServingReliability < 0.95 {
		t.Fatalf("static-channel serving reliability %g", res.MeanServingReliability)
	}
}

// TestClusterMonitorBudgetCharged verifies the bounded-overhead contract:
// monitoring probes are debited against the member cells' CSI-RS budgets
// (via the carryover mechanism), and the aggregate training overhead stays
// within the §5 envelope.
func TestClusterMonitorBudgetCharged(t *testing.T) {
	res := buildCluster(t, 3, 4, 1, 5, false, false).Run(0.5)
	if res.Counters.MonitorProbes == 0 {
		t.Fatal("no monitor probes fired")
	}
	if res.Counters.MonitorRounds == 0 {
		t.Fatal("no monitor rounds ran")
	}
	if res.OverheadPct <= 0 || res.OverheadPct > 6 {
		t.Fatalf("aggregate overhead %.2f%% outside (0, 6]", res.OverheadPct)
	}
	// 4 UEs × 1 non-attached cell (3 cells, 2 legs each), every 5th frame.
	wantPerRound := 4 * (3 - 2)
	gotPerRound := float64(res.Counters.MonitorProbes-3*4) / float64(res.Counters.MonitorRounds)
	if gotPerRound > float64(wantPerRound)+0.5 {
		t.Fatalf("%.1f monitor probes/round, want ≈ %d", gotPerRound, wantPerRound)
	}
}

// TestClusterAdmissionAndValidation covers construction and admission
// error paths.
func TestClusterAdmissionAndValidation(t *testing.T) {
	e, poses := env.MultiCellHall(env.Band28GHz(), 2)
	dep := Deployment{Env: e, Cells: poses, Budget: sim.IndoorBudget()}
	if _, err := New(nr.Mu3(), DefaultConfig(), Deployment{Env: e, Budget: sim.IndoorBudget()}); err == nil {
		t.Fatal("no cells accepted")
	}
	bad := DefaultConfig()
	bad.MonitorEvery = 0
	if _, err := New(nr.Mu3(), bad, dep); err == nil {
		t.Fatal("MonitorEvery 0 accepted")
	}
	bad = DefaultConfig()
	bad.MonitorElems = 99
	if _, err := New(nr.Mu3(), bad, dep); err == nil {
		t.Fatal("MonitorElems > ArrayElems accepted")
	}
	cfg := DefaultConfig()
	cfg.Station.Workers = 1
	cfg.Station.MaxSessions = 1 // each cell can hold ONE leg
	cl, err := New(nr.Mu3(), cfg, dep)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := cl.AddUE(UEConfig{Pos: env.Vec2{X: 10, Y: 6}, AttachAt: 0.2, DetachAt: 0.1}); err == nil {
		t.Fatal("DetachAt ≤ AttachAt accepted")
	}
	// Two UEs over two 1-session cells: the first takes both cells
	// (serving + standby), the second must be deferred every frame.
	for i := 0; i < 2; i++ {
		if _, err := cl.AddUE(UEConfig{Pos: env.HallUEPositions(2)[i]}); err != nil {
			t.Fatalf("AddUE: %v", err)
		}
	}
	res := cl.Run(0.3)
	if res.Counters.UEsAttached != 1 {
		t.Fatalf("admitted %d UEs into a 2×1-session cluster, want 1", res.Counters.UEsAttached)
	}
	if res.Counters.AdmissionDeferrals == 0 {
		t.Fatal("second UE was never deferred")
	}
	if res.PerUE[1].ServingCell != -1 {
		t.Fatalf("deferred UE reports serving cell %d", res.PerUE[1].ServingCell)
	}
}

// TestClusterOutageThresholdSanity pins the metric wiring: a measured UE's
// serving summary must carry finite SNR and nonzero throughput on a clean
// static link.
func TestClusterOutageThresholdSanity(t *testing.T) {
	res := buildCluster(t, 2, 1, 1, 9, false, false).Run(0.4)
	u := res.PerUE[0]
	if u.Serving.MeanSNRdB < link.OutageThresholdDB {
		t.Fatalf("static-link mean SNR %.1f below outage threshold", u.Serving.MeanSNRdB)
	}
	if u.Serving.MeanThroughput <= 0 || u.Diversity.MeanThroughput <= 0 {
		t.Fatalf("no throughput: %+v", u)
	}
	if res.AggThroughputBps <= 0 {
		t.Fatalf("no aggregate throughput: %+v", res)
	}
}
