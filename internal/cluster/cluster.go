// Package cluster is the multi-cell CoMP serving fabric: several
// cooperating gNB stations (internal/station) at distinct poses in one
// shared environment serve a common UE population. Each UE holds a serving
// session plus one hot-standby session at its best backup cell — both full
// mmReliable beam managers, both maintained under their cell's CSI-RS probe
// budget — while the remaining cells are tracked with cheap periodic
// wide-beam monitoring probes charged against each cell's own budget. A
// frame-synchronous coordinator watches the serving link's SNR-drop and
// outage signals and executes make-before-break handover (hysteresis +
// time-to-trigger, so a static channel never ping-pongs), and a per-slot
// selection-diversity combiner across the two live legs reports the
// macro-diversity bound — the mechanism that lifts the paper's single-link
// reliability story (§5, Fig. 18) to a deployment where any one link can be
// blocked but two rarely are.
//
// Determinism contract (see DESIGN.md "Cluster layer"): every cross-cell
// decision — admission, cell selection, handover, standby retargeting,
// monitor probing — runs single-threaded at frame boundaries on state the
// member stations published at their barriers. Inside a frame, cells
// advance strictly in cell-index order, each over its own worker pool with
// session-private scenarios, models, and RNG streams derived from
// seeds.Mix(Seed, label, ue, cell). Output is therefore byte-identical at
// any worker count, like the station engine and experiments.ParallelTrials.
// Steady-state frames (no lifecycle events, no outage episodes) are
// zero-alloc: monitor probes run through retained sounders/models/buffers
// and the stations' slot loops are pinned alloc-free already.
package cluster

import (
	"fmt"
	"math"

	"mmreliable/internal/channel"
	"mmreliable/internal/env"
	"mmreliable/internal/incr"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/station"
)

// Seed-stream labels for the cluster layer's RNG derivation (the station
// layer uses 981; experiments use small integers — see internal/seeds).
const (
	labelSession = 991 // per-(ue,cell) session sounder streams
	labelFading  = 992 // per-(ue,cell) fading processes
	labelMonitor = 993 // per-(ue,cell) monitor sounder streams
)

// Config tunes the cluster coordinator.
type Config struct {
	// Seed drives every derived RNG stream in the cluster (sessions,
	// fading, monitors) via seeds.Mix(Seed, label, ue, cell).
	Seed int64
	// MonitorEvery is the monitoring cadence in frames: every MonitorEvery-th
	// frame the coordinator fires one wide-beam probe per (UE, non-attached
	// cell) pair. Default 5 (one round per 100 ms at the 20 ms frame).
	MonitorEvery int
	// MonitorElems is the number of active array elements of the wide
	// monitoring beam: fewer elements ⇒ wider beam ⇒ one probe covers the
	// whole sector without per-cell training, at 10·log10(N/active) dB less
	// gain (compensated in the reported estimate). Default 2.
	MonitorElems int
	// HysteresisDB is the margin by which a standby leg must beat the
	// serving leg before a handover may trigger (the classic A3 offset).
	HysteresisDB float64
	// DropTriggerDB is the serving-link SNR-drop (slow−fast EWMA) above
	// which the link counts as degrading.
	DropTriggerDB float64
	// TimeToTrigger is how many consecutive degraded-and-better frames must
	// elapse before the swap executes (≈ 3GPP TTT).
	TimeToTrigger int
	// MinStayFrames is the minimum dwell on a serving cell between
	// handovers — the ping-pong guard.
	MinStayFrames int
	// RetargetMarginDB is how much better (on monitor estimates) a
	// non-attached cell must look before the standby session is torn down
	// and re-pointed at it.
	RetargetMarginDB float64
	// Warmup excludes each UE's first seconds after attach from its
	// cluster-level metrics (initial beam training on both legs).
	Warmup float64
	// DisableFading drops the per-pair log-normal fading processes — the
	// paper's "w/o tracking"-style quiescent fixture. Steady-state frames
	// are then fully zero-alloc (fading jitter otherwise triggers the
	// occasional re-alignment), which is what benchmark and capacity
	// drivers at metro scale want.
	DisableFading bool
	// ArrayElems is the per-cell transmit array size (default 8, the
	// paper's testbed).
	ArrayElems int
	// Station configures every member cell's serving engine. FramePeriod,
	// Warmup and KeepFrameSlots are managed by the cluster (KeepFrameSlots
	// is forced on — the combiner and UE meters read per-slot outcomes at
	// the barrier).
	Station station.Config
}

// DefaultConfig returns the paper-matched cluster configuration: 100 ms
// monitoring, 3 dB hysteresis, 2-frame (40 ms) time-to-trigger, 200 ms
// minimum dwell.
func DefaultConfig() Config {
	return Config{
		MonitorEvery:     5,
		MonitorElems:     2,
		HysteresisDB:     3,
		DropTriggerDB:    6,
		TimeToTrigger:    2,
		MinStayFrames:    10,
		RetargetMarginDB: 3,
		Warmup:           0.08,
		ArrayElems:       8,
		Station:          station.DefaultConfig(),
	}
}

// Deployment is the cluster's shared radio geometry: one environment, one
// gNB pose per cell, one link budget for every cell.
type Deployment struct {
	Env    *env.Environment
	Cells  []env.Pose
	Budget link.Budget
}

// cell is one member gNB: its serving engine plus the coordinator-side
// admission bookkeeping.
type cell struct {
	idx int
	st  *station.Station
	// queued counts attaches handed to the station but not yet admitted at
	// a station frame boundary: Station.ActiveSessions is a barrier
	// snapshot and does not see them. Cleared after every station frame
	// (all cluster attaches use AttachAt = now, so one boundary drains
	// them).
	queued int
}

// canAdmit reports whether one more attach would pass the cell's admission
// control, queued-but-unadmitted attaches included.
func (c *cell) canAdmit(maxSessions int) bool {
	return c.st.ActiveSessions()+c.queued < maxSessions
}

// Cluster coordinates the member cells and the UE population.
type Cluster struct {
	cfg    Config
	num    nr.Numerology
	dep    Deployment
	cells  []*cell
	ues    []*ue
	txGain float64 // 10·log10(N) dB, the trained-beam gain over one element

	slotDur       float64
	slotsPerFrame int
	frame         int
	// nextID is the next UE id to hand out. Ids are never reused, so a
	// metro-scale driver can harvest finished UEs out of the resident set
	// (HarvestFinished) without later arrivals colliding with them.
	nextID int

	counters Counters
	// monGainDB compensates the wide beam's reduced gain so monitor
	// estimates approximate the SNR a trained narrow beam would reach.
	monGainDB float64

	// Monitor-round batch state: every (UE, non-attached cell) pair's
	// wideband evaluation runs through one planar channel.WidebandBatch
	// sweep per round instead of interleaving with sounder bookkeeping.
	monWS    *scratch.Workspace
	monBatch channel.WidebandBatch
	monPairs []monPair // registration order, (UE asc, cell asc)
}

// monPair is one batched (UE, cell) monitor registration.
type monPair struct {
	u *ue
	c int
}

// New builds a cluster over the deployment. The member stations share the
// numerology and the cluster's frame period.
func New(num nr.Numerology, cfg Config, dep Deployment) (*Cluster, error) {
	if err := num.Validate(); err != nil {
		return nil, err
	}
	if len(dep.Cells) < 1 {
		return nil, fmt.Errorf("cluster: no cells in deployment")
	}
	if dep.Env == nil {
		return nil, fmt.Errorf("cluster: nil environment")
	}
	if err := dep.Budget.Validate(); err != nil {
		return nil, err
	}
	if cfg.MonitorEvery < 1 {
		return nil, fmt.Errorf("cluster: MonitorEvery %d < 1", cfg.MonitorEvery)
	}
	if cfg.TimeToTrigger < 1 {
		return nil, fmt.Errorf("cluster: TimeToTrigger %d < 1", cfg.TimeToTrigger)
	}
	if cfg.ArrayElems <= 0 {
		cfg.ArrayElems = 8
	}
	if cfg.MonitorElems < 1 || cfg.MonitorElems > cfg.ArrayElems {
		return nil, fmt.Errorf("cluster: MonitorElems %d outside [1,%d]", cfg.MonitorElems, cfg.ArrayElems)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("cluster: negative warmup %g", cfg.Warmup)
	}
	scfg := cfg.Station
	scfg.KeepFrameSlots = true
	scfg.Warmup = cfg.Warmup
	cl := &Cluster{
		cfg:       cfg,
		num:       num,
		dep:       dep,
		monGainDB: 10 * math.Log10(float64(cfg.ArrayElems)/float64(cfg.MonitorElems)),
		monWS:     scratch.New(),
	}
	for i := range dep.Cells {
		st, err := station.New(num, scfg)
		if err != nil {
			return nil, err
		}
		cl.cells = append(cl.cells, &cell{idx: i, st: st})
	}
	cl.slotDur = num.SlotDuration()
	cl.slotsPerFrame = cl.cells[0].st.SlotsPerFrame()
	return cl, nil
}

// Now returns the start time of the next frame to execute.
func (cl *Cluster) Now() float64 {
	return float64(cl.frame*cl.slotsPerFrame) * cl.slotDur
}

// Frame returns the index of the next frame to execute.
func (cl *Cluster) Frame() int { return cl.frame }

// FramePeriod returns the duration of one cluster frame in seconds.
func (cl *Cluster) FramePeriod() float64 { return float64(cl.slotsPerFrame) * cl.slotDur }

// Cells returns the number of member cells.
func (cl *Cluster) Cells() int { return len(cl.cells) }

// ResidentUEs returns the number of UEs currently held by the cluster
// (attached, awaiting admission, or finished-but-unharvested).
func (cl *Cluster) ResidentUEs() int { return len(cl.ues) }

// AdvanceFrame executes one cluster frame: UE lifecycle and cell selection
// on the coordinator, then every member cell's serving frame in cell-index
// order, then (on monitor frames) the wide-beam monitoring round, then the
// per-UE harvest — metering, diversity combining, and the handover FSM.
func (cl *Cluster) AdvanceFrame() {
	t0 := cl.Now()
	t1 := float64((cl.frame+1)*cl.slotsPerFrame) * cl.slotDur
	cl.processUEEvents(t0)
	for _, c := range cl.cells {
		c.st.AdvanceFrame()
		c.queued = 0 // the boundary just drained every queued attach
	}
	if cl.frame%cl.cfg.MonitorEvery == 0 {
		cl.monitorRound(t1)
	}
	cl.harvest(t0)
	cl.counters.Frames++
	cl.frame++
}

// Run advances whole frames until the cluster clock reaches duration
// (absolute simulated seconds, warmup included) and returns the results.
func (cl *Cluster) Run(duration float64) Results {
	frames := int(math.Ceil(duration / (float64(cl.slotsPerFrame) * cl.slotDur)))
	for i := 0; i < frames; i++ {
		cl.AdvanceFrame()
	}
	return cl.Results()
}

// processUEEvents handles UE arrivals and departures at the frame boundary.
func (cl *Cluster) processUEEvents(t0 float64) {
	for _, u := range cl.ues {
		switch {
		case !u.attached && !u.done && u.cfg.AttachAt <= t0:
			cl.admitUE(u, t0)
		case u.attached && u.cfg.DetachAt > 0 && u.cfg.DetachAt <= t0:
			cl.finishUE(u)
		}
	}
}

// admitUE performs initial cell selection for an arriving UE: probe every
// cell once, rank by monitor estimate (ties toward the lower cell index),
// attach the serving session at the best admissible cell and the hot
// standby at the next best. If no cell can admit the UE this frame, the
// arrival is deferred to the next boundary.
func (cl *Cluster) admitUE(u *ue, t0 float64) {
	best, second := -1, -1
	var bestSNR, secondSNR float64
	for c := range cl.cells {
		snr := u.monitorProbe(cl, c, t0)
		cl.counters.MonitorProbes++
		cl.cells[c].st.ChargeExternalProbes(1)
		if !cl.cells[c].canAdmit(cl.cfg.Station.MaxSessions) {
			continue
		}
		if best < 0 || snr > bestSNR {
			second, secondSNR = best, bestSNR
			best, bestSNR = c, snr
		} else if second < 0 || snr > secondSNR {
			second, secondSNR = c, snr
		}
	}
	if best < 0 {
		cl.counters.AdmissionDeferrals++
		return
	}
	if err := u.attachLeg(cl, best, t0); err != nil {
		// Attach errors are construction bugs (validated scenarios), not
		// runtime conditions; surface them loudly.
		panic(fmt.Sprintf("cluster: serving attach failed: %v", err))
	}
	u.serving = best
	if second >= 0 {
		if err := u.attachLeg(cl, second, t0); err != nil {
			panic(fmt.Sprintf("cluster: standby attach failed: %v", err))
		}
		u.standby = second
	}
	u.attached = true
	u.effectiveAttach = t0
	u.lastSwapFrame = cl.frame - cl.cfg.MinStayFrames // first HO not dwell-blocked
	cl.counters.UEsAttached++
}

// finishUE tears down both legs and freezes the UE's metrics.
func (cl *Cluster) finishUE(u *ue) {
	for c, id := range u.sess {
		if id >= 0 && cl.cells[c].st.SessionActive(id) {
			cl.cells[c].st.DetachNow(id)
		}
	}
	u.attached = false
	u.done = true
	cl.counters.UEsFinished++
}

// monitorRound fires one wide-beam probe per (UE, non-attached cell) pair,
// in (UE ascending, cell ascending) order, updating the per-pair monitor
// EWMAs and charging each probe to the target cell's CSI-RS budget. Runs at
// the frame's end time t1, after the cells' slot loops have finished.
//
// The round is batched through the planar DSP backend: a gather pass
// advances every pair's channel model and registers its wide beam with one
// channel.WidebandBatch, the batch evaluates all pairs back-to-back on the
// active kernel, and a fold pass feeds each planar row to the pair's
// sounder (ProbeFromSplit — the same RNG draws as ProbeInto) and updates
// the monitor EWMA. Standby retargets run after all probes; they read only
// monitor estimates and admission state, and relative retarget order across
// UEs is preserved, so decisions match the pair-at-a-time schedule.
//
// Incremental engine: a pair whose channel content stamp and wide beam are
// unchanged since its last round (u.monRowFresh) replays its cached planar
// row through ProbeFromSplit inline instead of re-registering with the
// batch. The sounder still fires — each pair's RNG stream is private, so
// its noise draws, the EWMA fold, and every counter are byte-identical to
// the full-eval schedule; only the noiseless planar arithmetic is skipped.
func (cl *Cluster) monitorRound(t1 float64) {
	cl.counters.MonitorRounds++
	cl.monPairs = cl.monPairs[:0]
	first := true
	for _, u := range cl.ues {
		if !u.attached {
			continue
		}
		for c := range cl.cells {
			if c == u.serving || c == u.standby {
				continue
			}
			cl.counters.MonitorProbes++
			cl.cells[c].st.ChargeExternalProbes(1)
			u.ensureMonitor(cl, c)
			if first {
				cl.monBatch.Reset(u.monSnd[c].SubcarrierOffsets())
				first = false
			}
			m := u.refreshMonitorModel(cl, c, t1)
			if m == nil {
				continue // fully shadowed: −Inf recorded, no probe fired
			}
			if incr.Enabled && u.monRowFresh(c, m) {
				csi := u.monSnd[c].ProbeFromSplit(u.monRowRe[c], u.monRowIm[c], u.monCSI)
				u.foldMonitorEstimate(cl, c, csi)
				cl.counters.MonitorRowsReused++
				continue
			}
			cl.monBatch.Add(m, u.monBeam[c])
			cl.monPairs = append(cl.monPairs, monPair{u: u, c: c})
		}
	}
	if len(cl.monPairs) > 0 {
		mk := cl.monWS.Mark()
		cl.monBatch.Eval(cl.monWS)
		for r, p := range cl.monPairs {
			re, im := cl.monBatch.Row(r)
			csi := p.u.monSnd[p.c].ProbeFromSplit(re, im, p.u.monCSI)
			p.u.foldMonitorEstimate(cl, p.c, csi)
			if incr.Enabled {
				p.u.monRowStore(p.c, p.u.monMod[p.c], re, im)
			}
		}
		cl.monWS.Release(mk)
	}
	for _, u := range cl.ues {
		if u.attached {
			cl.retargetStandby(u)
		}
	}
}
