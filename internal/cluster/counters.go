package cluster

import (
	"mmreliable/internal/link"
	"mmreliable/internal/station"
)

// Counters is the cluster's aggregate accounting.
type Counters struct {
	// Frames is the number of cluster frames executed.
	Frames int
	// Handovers counts serving↔standby promotions; PingPongs the subset
	// that returned to the previous serving cell within the ping-pong
	// window (should be zero on a static channel — the hysteresis test).
	Handovers int
	PingPongs int
	// StandbyRetargets counts standby sessions torn down and re-pointed at
	// a stronger monitored cell (plus standbys opened late).
	StandbyRetargets int
	// MonitorRounds / MonitorProbes count wide-beam monitoring activity;
	// every probe is charged to the target cell's CSI-RS budget.
	MonitorRounds int
	MonitorProbes int
	// MonitorRowsReused counts monitor probes whose noiseless planar row was
	// replayed from the pair's cache instead of re-evaluated (incremental
	// engine only — 0 with MMR_INCREMENTAL=off). Diagnostic: deliberately
	// mode-VARIANT, so it must never feed stdout or any decision.
	MonitorRowsReused int
	// UE lifecycle.
	UEsAttached        int
	UEsFinished        int
	AdmissionDeferrals int
}

// UEOutcome is one UE's cluster-level result.
type UEOutcome struct {
	ID          int
	ServingCell int // final serving cell (−1 if never admitted)
	Handovers   int
	PingPongs   int
	// Serving is the serving-leg-only summary — what a handover-only
	// deployment delivers. Diversity adds per-slot selection combining
	// across the two live legs — the macro-diversity bound.
	Serving   link.Summary
	Diversity link.Summary
	// MaxOutageMs is the longest serving-leg outage episode in ms;
	// DivMaxOutageMs the same under selection combining.
	MaxOutageMs    float64
	DivMaxOutageMs float64
}

// Results is a deterministic snapshot of the cluster outcome.
type Results struct {
	PerUE    []UEOutcome
	PerCell  []station.Results
	Counters Counters
	// MeanServingReliability / MeanDiversityReliability average per-UE
	// reliability over every UE that recorded at least one measured slot.
	MeanServingReliability   float64
	MeanDiversityReliability float64
	// AggThroughputBps sums per-UE mean serving-leg throughput — the cell
	// cluster's carried load; AggDiversityThroughputBps the same under
	// selection combining.
	AggThroughputBps          float64
	AggDiversityThroughputBps float64
	// MaxOutageMs is the worst per-UE longest outage (serving leg) in ms;
	// DivMaxOutageMs the same under selection combining — the
	// handover-benefit headline (reliability alone hides blackout length).
	MaxOutageMs    float64
	DivMaxOutageMs float64
	// OverheadPct is the aggregate beam-management overhead across all
	// cells: training slots per session-slot, in percent — the §5
	// low-overhead bound, which must stay flat as cells and UEs grow.
	OverheadPct float64
}

// Results snapshots the current outcome. Safe to call between frames.
func (cl *Cluster) Results() Results {
	res := Results{Counters: cl.counters}
	var trainSlots, sessSlots int64
	for _, c := range cl.cells {
		sr := c.st.Results()
		res.PerCell = append(res.PerCell, sr)
		trainSlots += int64(sr.Counters.TrainingSlots)
		sessSlots += sr.Counters.SessionSlots
	}
	if sessSlots > 0 {
		res.OverheadPct = 100 * float64(trainSlots) / float64(sessSlots)
	}
	var relS, relD float64
	measured := 0
	for _, u := range cl.ues {
		out := cl.outcomeFor(u)
		if u.meter.Slots() > 0 {
			relS += out.Serving.Reliability
			relD += out.Diversity.Reliability
			res.AggThroughputBps += out.Serving.MeanThroughput
			res.AggDiversityThroughputBps += out.Diversity.MeanThroughput
			if out.MaxOutageMs > res.MaxOutageMs {
				res.MaxOutageMs = out.MaxOutageMs
			}
			if out.DivMaxOutageMs > res.DivMaxOutageMs {
				res.DivMaxOutageMs = out.DivMaxOutageMs
			}
			measured++
		}
		res.PerUE = append(res.PerUE, out)
	}
	if measured > 0 {
		res.MeanServingReliability = relS / float64(measured)
		res.MeanDiversityReliability = relD / float64(measured)
	}
	return res
}

// outcomeFor snapshots one resident UE's cluster-level result.
func (cl *Cluster) outcomeFor(u *ue) UEOutcome {
	out := UEOutcome{
		ID:          u.id,
		ServingCell: u.serving,
		Handovers:   u.handovers,
		PingPongs:   u.pingPongs,
	}
	if u.meter.Slots() > 0 {
		out.Serving = u.meter.Summarize()
		out.Diversity = u.divMeter.Summarize()
		out.MaxOutageMs = float64(u.meter.MaxOutageSlots()) * cl.slotDur * 1e3
		out.DivMaxOutageMs = float64(u.divMeter.MaxOutageSlots()) * cl.slotDur * 1e3
	}
	return out
}

// HarvestFinished removes every finished (detached) UE from the resident
// set, calling fn — if non-nil — with each one's outcome and its serving
// and diversity meters before the UE's state is released, in UE-id order.
// This is the metro layer's streaming-aggregation hook: a city-scale driver
// with session churn folds each departed UE into a constant-size sketch and
// lets the cluster's memory stay proportional to the RESIDENT population,
// not to every UE ever served. Cluster ids are never reused (see nextID),
// and the aggregate Counters keep counting harvested UEs; only the per-UE
// entries of Results shrink. Safe between frames.
func (cl *Cluster) HarvestFinished(fn func(UEOutcome, *link.Meter, *link.Meter)) int {
	kept := cl.ues[:0]
	harvested := 0
	for _, u := range cl.ues {
		if u.done {
			if fn != nil {
				fn(cl.outcomeFor(u), u.meter, u.divMeter)
			}
			harvested++
			continue
		}
		kept = append(kept, u)
	}
	for i := len(kept); i < len(cl.ues); i++ {
		cl.ues[i] = nil // release the harvested UE state
	}
	cl.ues = kept
	return harvested
}

// VisitUEs calls fn for every resident UE in UE-id order with its outcome
// and its serving and diversity meters. The meters are the cluster's live
// state: read-only for the callee (Meter.Merge reads its argument, so
// folding them into an aggregation sketch is fine). Safe between frames.
func (cl *Cluster) VisitUEs(fn func(UEOutcome, *link.Meter, *link.Meter)) {
	for _, u := range cl.ues {
		fn(cl.outcomeFor(u), u.meter, u.divMeter)
	}
}
