package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
	"mmreliable/internal/station"
)

// UEConfig describes one UE joining the cluster.
type UEConfig struct {
	// Pos is the UE's (static) position in the deployment environment. The
	// cluster layer models nomadic users — parked at a position for the
	// session — because the handover story here is blockage-driven, not
	// mobility-driven; the per-pair facing toward each cell stands in for a
	// quasi-omni terminal panel.
	Pos env.Vec2
	// Motion, when non-nil, makes the UE mobile: the trace supplies the
	// position over the session (its facing is ignored — each pair's
	// scenario re-faces the panel toward its cell, the same quasi-omni
	// convention as the static case). Pos is then unused.
	Motion motion.Trace
	// Blockage holds per-cell blockage schedules (index = cell, nil = that
	// link is never blocked). A blocker crossing the UE's serving link
	// shadows only that cell's paths — the geometry that makes a second
	// cell worth having.
	Blockage []events.Schedule
	// AttachAt is the absolute time the UE arrives (0 = at start);
	// admission happens at the first frame boundary ≥ AttachAt.
	AttachAt float64
	// DetachAt, when positive, is when the UE leaves; its metrics freeze at
	// the first frame boundary ≥ DetachAt.
	DetachAt float64
}

// ue is the coordinator's per-UE state: one scenario, monitor sounder, and
// (lazily) one station session per cell, plus the handover FSM and the
// cluster-level meters.
type ue struct {
	id  int
	cfg UEConfig

	// Per-cell radio state, index = cell.
	scen    []*sim.Scenario  // private (UE,cell) world: shared env, cell pose, pair blockage/fading
	sess    []int            // station session id at that cell, −1 if never attached
	monSnd  []*nr.Sounder    // monitor sounders (lazily built)
	monMod  []*channel.Model // monitor channel models (Reuse, lazily built)
	monBeam []cmx.Vector     // wide probe beams (lazily built, retained)
	monAoD  []float64        // AoD each wide beam was steered to (re-steer key)
	monCSI  cmx.Vector       // probe CSI scratch, shared across cells
	monEst  []float64        // monitor SNR estimates (narrow-beam-equivalent dB)
	monSeen []bool

	// Monitor row cache (incremental engine only): the pair's last noiseless
	// planar batch row and the inputs it was computed from. A batch row is a
	// pure function of (model content, beam weights, subcarrier offsets); the
	// model pointer and offsets are fixed per pair, so while the model's
	// content stamp and the beam's identity are unchanged, the planar eval
	// would reproduce the row bit for bit and the pair can replay the cached
	// row through its (private-RNG) sounder instead of re-registering with
	// the batch.
	monRowRe    [][]float64
	monRowIm    [][]float64
	monRowStamp []uint64
	monRowBeam  []*complex128
	monRowOK    []bool

	// Lifecycle.
	attached        bool
	done            bool
	effectiveAttach float64

	// Handover FSM.
	serving, standby int // cell indices, −1 = none
	ttt              int
	lastSwapFrame    int
	prevServing      int // cell served before the last swap (ping-pong detection)
	handovers        int
	pingPongs        int

	// Cluster-level metrics: the serving leg alone (what a handover-only
	// deployment delivers) and the per-slot selection-diversity combination
	// of both live legs (the macro-diversity bound).
	meter    *link.Meter
	divMeter *link.Meter
}

// AddUE registers a UE with the cluster. Must be called before the frame
// that admits it; safe any time between frames. Returns the UE id.
func (cl *Cluster) AddUE(cfg UEConfig) (int, error) {
	if cfg.DetachAt > 0 && cfg.DetachAt <= cfg.AttachAt {
		return 0, fmt.Errorf("cluster: DetachAt %g ≤ AttachAt %g", cfg.DetachAt, cfg.AttachAt)
	}
	if len(cfg.Blockage) > len(cl.cells) {
		return 0, fmt.Errorf("cluster: %d blockage schedules for %d cells", len(cfg.Blockage), len(cl.cells))
	}
	id := cl.nextID
	cl.nextID++
	n := len(cl.cells)
	u := &ue{
		id:          id,
		cfg:         cfg,
		scen:        make([]*sim.Scenario, n),
		sess:        make([]int, n),
		monSnd:      make([]*nr.Sounder, n),
		monMod:      make([]*channel.Model, n),
		monBeam:     make([]cmx.Vector, n),
		monAoD:      make([]float64, n),
		monEst:      make([]float64, n),
		monSeen:     make([]bool, n),
		monRowRe:    make([][]float64, n),
		monRowIm:    make([][]float64, n),
		monRowStamp: make([]uint64, n),
		monRowBeam:  make([]*complex128, n),
		monRowOK:    make([]bool, n),
		serving:     -1,
		standby:     -1,
		prevServing: -1, // no prior serving cell: a first swap is never a ping-pong
		meter:       link.NewMeter(),
		divMeter:    link.NewMeter(),
	}
	for c := range u.sess {
		u.sess[c] = -1
	}
	for c := range cl.cells {
		u.scen[c] = cl.pairScenario(u, c)
		if err := u.scen[c].Validate(); err != nil {
			return 0, err
		}
	}
	cl.ues = append(cl.ues, u)
	return id, nil
}

// pairScenario builds the private (UE, cell) world: the shared deployment
// environment seen from that cell's pose, with the UE's panel facing the
// cell (quasi-omni terminal turning toward whichever gNB it talks to), the
// pair's blockage schedule, and a pair-private fading stream derived from
// (Seed, labelFading, ue, cell) — collision-free under the shared
// determinism contract.
func (cl *Cluster) pairScenario(u *ue, c int) *sim.Scenario {
	pose := cl.dep.Cells[c]
	var blk events.Schedule
	if c < len(u.cfg.Blockage) {
		blk = u.cfg.Blockage[c]
	}
	fadeSeed := seeds.Mix(cl.cfg.Seed, labelFading, int64(u.id), int64(c))
	var fading *sim.Fading
	if !cl.cfg.DisableFading {
		fading = sim.NewFading(sim.DefaultFadingSigmaDB, sim.DefaultFadingCoherence,
			rand.New(rand.NewSource(fadeSeed)))
	}
	var trace motion.Trace
	if u.cfg.Motion != nil {
		trace = faceCell{inner: u.cfg.Motion, cell: pose.Pos}
	} else {
		trace = motion.Static{Pose: env.Pose{
			Pos:    u.cfg.Pos,
			Facing: env.FacingFrom(u.cfg.Pos, pose.Pos),
		}}
	}
	return &sim.Scenario{
		Env: cl.dep.Env,
		GNB: pose,
		UE:  trace,
		Blockage: blk,
		Duration: 3600, // cluster runs are bounded by Run(duration), not the scenario
		Num:      cl.num,
		TxArray:  antenna.NewULA(cl.cfg.ArrayElems, cl.dep.Env.Band.CarrierHz),
		MaxPaths: 3,
		Fading:   fading,
	}
}

// faceCell adapts a positional trace to one (UE, cell) pair: positions come
// from the inner trace, facing always points at the pair's cell — the same
// quasi-omni panel convention the static case uses.
type faceCell struct {
	inner motion.Trace
	cell  env.Vec2
}

// At implements motion.Trace.
func (f faceCell) At(t float64) env.Pose {
	p := f.inner.At(t)
	p.Facing = env.FacingFrom(p.Pos, f.cell)
	return p
}

// attachLeg opens a station session for (u, cell c) at time t0. The
// scenario is the pair's persistent world: ownership transfers to the
// station session (its worker steps it inside frames; the coordinator only
// ever touches it between frames, which is sequential with the workers).
func (u *ue) attachLeg(cl *Cluster, c int, t0 float64) error {
	id, err := cl.cells[c].st.Attach(station.SessionConfig{
		Scenario: u.scen[c],
		Budget:   cl.dep.Budget,
		Seed:     seeds.Mix(cl.cfg.Seed, labelSession, int64(u.id), int64(c)),
		AttachAt: t0,
	})
	if err != nil {
		return err
	}
	u.sess[c] = id
	cl.cells[c].queued++
	return nil
}

// detachLeg tears down the UE's session at cell c (standby retargeting,
// completed handovers). The pair's scenario stays with the UE and keeps
// serving monitor probes; a later re-attach opens a fresh session (a new
// manager that trains from scratch, as a real re-attach would).
func (u *ue) detachLeg(cl *Cluster, c int) {
	if id := u.sess[c]; id >= 0 && cl.cells[c].st.SessionActive(id) {
		cl.cells[c].st.DetachNow(id)
	}
	u.sess[c] = -1
}

// ensureMonitor lazily builds the (u, c) pair's monitor sounder, channel
// model, and shared CSI scratch. Idempotent; every monitor path calls it
// before touching the pair.
func (u *ue) ensureMonitor(cl *Cluster, c int) {
	if u.monSnd[c] != nil {
		return
	}
	seed := seeds.Mix(cl.cfg.Seed, labelMonitor, int64(u.id), int64(c))
	snd, err := nr.NewSounder(cl.num, cl.dep.Budget.BandwidthHz, monitorNumSC,
		cl.dep.Budget.NoiseToTxAmpRatio(), nr.DefaultImpairments(),
		rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(fmt.Sprintf("cluster: monitor sounder: %v", err))
	}
	u.monSnd[c] = snd
	u.monMod[c] = &channel.Model{Reuse: true}
	if u.monCSI == nil {
		u.monCSI = make(cmx.Vector, monitorNumSC)
	}
}

// refreshMonitorModel advances the pair's channel model to time t and
// returns it, or nil after recording a −Inf estimate when the pair has no
// geometric paths (fully shadowed — no probe is fired, matching a sounder
// that hears nothing). Also keeps the pair's wide beam pointed at the
// strongest geometric path: static UEs keep their angles, only losses move
// (blockage/fading), so the beam is built once and retained; a mobile UE
// re-steers only when the strongest AoD has drifted past the re-steer
// threshold (the wide beam covers the sector, so small drift costs nothing).
// Re-steering replaces the beam vector, which also invalidates the pair's
// incremental monitor-row cache through its beam-identity key.
func (u *ue) refreshMonitorModel(cl *Cluster, c int, t float64) *channel.Model {
	m := u.monMod[c]
	u.scen[c].ChannelInto(t, m)
	if len(m.Paths) == 0 {
		u.monEst[c] = math.Inf(-1)
		u.monSeen[c] = true
		return nil
	}
	aod := m.Paths[m.StrongestPath()].Path.AoD
	if u.monBeam[c] == nil || math.Abs(wrapAngle(aod-u.monAoD[c])) > monitorResteerRad {
		u.monBeam[c] = antenna.WideBeam(m.Tx, aod, cl.cfg.MonitorElems)
		u.monAoD[c] = aod
	}
	return m
}

// wrapAngle maps an angle difference into (−π, π].
func wrapAngle(d float64) float64 {
	d = math.Mod(d, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// monRowFresh reports whether the pair's cached planar row is still the row
// the batch would compute: same model content (stamp) and same wide beam
// (built once and retained, so head identity suffices).
func (u *ue) monRowFresh(c int, m *channel.Model) bool {
	return u.monRowOK[c] && u.monRowStamp[c] == m.Stamp() && u.monRowBeam[c] == &u.monBeam[c][0]
}

// monRowStore snapshots the pair's planar row (the batch's slab is released
// after the round) together with the inputs it was computed from.
func (u *ue) monRowStore(c int, m *channel.Model, re, im []float64) {
	if cap(u.monRowRe[c]) < len(re) {
		u.monRowRe[c] = make([]float64, len(re))
		u.monRowIm[c] = make([]float64, len(im))
	}
	u.monRowRe[c] = u.monRowRe[c][:len(re)]
	u.monRowIm[c] = u.monRowIm[c][:len(im)]
	copy(u.monRowRe[c], re)
	copy(u.monRowIm[c], im)
	u.monRowStamp[c] = m.Stamp()
	u.monRowBeam[c] = &u.monBeam[c][0]
	u.monRowOK[c] = true
}

// foldMonitorEstimate converts a probe's CSI into the narrow-beam-equivalent
// SNR estimate and folds it into the pair's monitor EWMA.
func (u *ue) foldMonitorEstimate(cl *Cluster, c int, csi cmx.Vector) float64 {
	snr := cl.dep.Budget.WidebandSNRdB(csi) + cl.monGainDB
	if !u.monSeen[c] {
		u.monEst[c] = snr
		u.monSeen[c] = true
	} else {
		u.monEst[c] += monitorAlpha * (snr - u.monEst[c])
	}
	return u.monEst[c]
}

// monitorProbe fires one wide-beam probe on the (u, c) pair at time t and
// folds the result into the pair's monitor EWMA. Returns the narrow-beam-
// equivalent SNR estimate in dB. Steady-state zero-alloc: the sounder,
// model, beam, and CSI scratch are all built once and retained. Admission
// probing uses this single-pair form; monitor rounds batch the wideband
// evaluation across every pair instead (Cluster.monitorRound).
func (u *ue) monitorProbe(cl *Cluster, c int, t float64) float64 {
	u.ensureMonitor(cl, c)
	m := u.refreshMonitorModel(cl, c, t)
	if m == nil {
		return u.monEst[c]
	}
	csi := u.monSnd[c].ProbeInto(m, u.monBeam[c], u.monCSI)
	return u.foldMonitorEstimate(cl, c, csi)
}

// Monitor tuning constants.
const (
	// monitorNumSC is the monitor sounding width (matches the manager's
	// default CSI-RS width so estimates are comparable).
	monitorNumSC = 64
	// monitorAlpha is the monitor EWMA constant: rounds are 100 ms apart,
	// so a heavier weight on the newest probe keeps the estimate current.
	monitorAlpha = 0.5
	// monitorResteerRad is how far the strongest path's AoD may drift from
	// the wide beam's steering angle before the beam is rebuilt (≈ 5.7°,
	// well inside the 2-element beam's width).
	monitorResteerRad = 0.1
)
