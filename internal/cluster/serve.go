package cluster

import (
	"fmt"

	"mmreliable/internal/core"
	"mmreliable/internal/events"
	"mmreliable/internal/station"
)

// This file is the cluster's service-layer surface: live event injection,
// frame-boundary knob hot-reload, O(1) telemetry reads, and the state
// digest the daemon's snapshot verification folds. Everything here must
// only be called between frames, from the goroutine that calls
// AdvanceFrame (the same contract as station/hooks.go).

// findUE returns the resident UE with the given id, or nil.
func (cl *Cluster) findUE(id int) *ue {
	for _, u := range cl.ues {
		if u.id == id {
			return u
		}
	}
	return nil
}

// InjectBlockage schedules a live blockage event on the (ue, cell) link
// starting at the current frame boundary: depth dB across all paths for
// durationS seconds, with the standard ramp. cell −1 resolves to the UE's
// current serving cell. Returns the resolved cell index.
func (cl *Cluster) InjectBlockage(ueID, cell int, depthDB, durationS float64) (int, error) {
	u := cl.findUE(ueID)
	if u == nil {
		return 0, fmt.Errorf("cluster: unknown UE %d", ueID)
	}
	if u.done {
		return 0, fmt.Errorf("cluster: UE %d already finished", ueID)
	}
	if depthDB <= 0 || durationS <= 0 {
		return 0, fmt.Errorf("cluster: blockage needs positive depth and duration (got %g dB, %g s)", depthDB, durationS)
	}
	if cell < 0 {
		if u.serving < 0 {
			return 0, fmt.Errorf("cluster: UE %d has no serving cell to target", ueID)
		}
		cell = u.serving
	}
	if cell >= len(cl.cells) {
		return 0, fmt.Errorf("cluster: cell %d outside [0,%d)", cell, len(cl.cells))
	}
	sc := u.scen[cell]
	sc.Blockage = append(sc.Blockage, events.Event{
		AllPaths: true,
		Start:    cl.Now(),
		Duration: durationS,
		DepthDB:  depthDB,
		RampTime: events.RampFor(depthDB),
	})
	return cell, nil
}

// DetachUE schedules a currently-attached UE's departure at this frame
// boundary: its legs tear down and its metrics freeze when the next frame
// runs, exactly like a scheduled DetachAt.
func (cl *Cluster) DetachUE(ueID int) error {
	u := cl.findUE(ueID)
	if u == nil {
		return fmt.Errorf("cluster: unknown UE %d", ueID)
	}
	if u.done {
		return fmt.Errorf("cluster: UE %d already finished", ueID)
	}
	if !u.attached {
		return fmt.Errorf("cluster: UE %d not attached yet", ueID)
	}
	u.cfg.DetachAt = cl.Now()
	return nil
}

// Tuning is the hot-reloadable knob set: nil fields keep their current
// value. Validation is atomic — an invalid field rejects the whole update.
type Tuning struct {
	// Station scheduler knobs (applied to every member cell).
	ProbeBudget *int     `json:"probe_budget,omitempty"`
	AgingBoost  *float64 `json:"aging_boost,omitempty"`
	// Cluster monitoring / handover-FSM knobs.
	MonitorEvery     *int     `json:"monitor_every,omitempty"`
	HysteresisDB     *float64 `json:"hysteresis_db,omitempty"`
	DropTriggerDB    *float64 `json:"drop_trigger_db,omitempty"`
	TimeToTrigger    *int     `json:"time_to_trigger,omitempty"`
	MinStayFrames    *int     `json:"min_stay_frames,omitempty"`
	RetargetMarginDB *float64 `json:"retarget_margin_db,omitempty"`
}

// Validate checks every set field against the same rules New enforces.
func (t Tuning) Validate() error {
	if t.ProbeBudget != nil && *t.ProbeBudget < 0 {
		return fmt.Errorf("cluster: ProbeBudget %d < 0", *t.ProbeBudget)
	}
	if t.AgingBoost != nil && *t.AgingBoost < 0 {
		return fmt.Errorf("cluster: AgingBoost %g < 0", *t.AgingBoost)
	}
	if t.MonitorEvery != nil && *t.MonitorEvery < 1 {
		return fmt.Errorf("cluster: MonitorEvery %d < 1", *t.MonitorEvery)
	}
	if t.HysteresisDB != nil && *t.HysteresisDB < 0 {
		return fmt.Errorf("cluster: HysteresisDB %g < 0", *t.HysteresisDB)
	}
	if t.DropTriggerDB != nil && *t.DropTriggerDB < 0 {
		return fmt.Errorf("cluster: DropTriggerDB %g < 0", *t.DropTriggerDB)
	}
	if t.TimeToTrigger != nil && *t.TimeToTrigger < 1 {
		return fmt.Errorf("cluster: TimeToTrigger %d < 1", *t.TimeToTrigger)
	}
	if t.MinStayFrames != nil && *t.MinStayFrames < 0 {
		return fmt.Errorf("cluster: MinStayFrames %d < 0", *t.MinStayFrames)
	}
	if t.RetargetMarginDB != nil && *t.RetargetMarginDB < 0 {
		return fmt.Errorf("cluster: RetargetMarginDB %g < 0", *t.RetargetMarginDB)
	}
	return nil
}

// ApplyTuning hot-reloads the set fields at this frame boundary. The next
// frame runs under the new knobs; nothing retroactive changes.
func (cl *Cluster) ApplyTuning(t Tuning) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.ProbeBudget != nil {
		cl.cfg.Station.ProbeBudget = *t.ProbeBudget
		for _, c := range cl.cells {
			if err := c.st.SetProbeBudget(*t.ProbeBudget); err != nil {
				return err
			}
		}
	}
	if t.AgingBoost != nil {
		cl.cfg.Station.AgingBoost = *t.AgingBoost
		for _, c := range cl.cells {
			if err := c.st.SetAgingBoost(*t.AgingBoost); err != nil {
				return err
			}
		}
	}
	if t.MonitorEvery != nil {
		cl.cfg.MonitorEvery = *t.MonitorEvery
	}
	if t.HysteresisDB != nil {
		cl.cfg.HysteresisDB = *t.HysteresisDB
	}
	if t.DropTriggerDB != nil {
		cl.cfg.DropTriggerDB = *t.DropTriggerDB
	}
	if t.TimeToTrigger != nil {
		cl.cfg.TimeToTrigger = *t.TimeToTrigger
	}
	if t.MinStayFrames != nil {
		cl.cfg.MinStayFrames = *t.MinStayFrames
	}
	if t.RetargetMarginDB != nil {
		cl.cfg.RetargetMarginDB = *t.RetargetMarginDB
	}
	return nil
}

// ActiveSessions returns the total station sessions currently attached
// across member cells — O(cells).
func (cl *Cluster) ActiveSessions() int {
	n := 0
	for _, c := range cl.cells {
		n += c.st.ActiveSessions()
	}
	return n
}

// CountersSnapshot returns the aggregate cluster counters by value — O(1).
func (cl *Cluster) CountersSnapshot() Counters { return cl.counters }

// CellCounters returns cell c's station counters by value — O(1).
func (cl *Cluster) CellCounters(c int) station.Counters {
	return cl.cells[c].st.CountersSnapshot()
}

// Digest folds the cluster's semantic state into d: frame clock, tunables,
// counters, every member station, and every resident UE's lifecycle, FSM,
// monitor estimates, and meters, in cell then UE-id order. The fold reads
// only frame-boundary state, so it is identical at any worker count — and
// it deliberately excludes the incremental engine's caches and the
// mode-variant MonitorRowsReused counter, so the digest also matches
// between MMR_INCREMENTAL modes.
func (cl *Cluster) Digest(d *core.Digest) {
	d.Int(cl.frame)
	d.Int(cl.nextID)
	d.Int(cl.cfg.MonitorEvery)
	d.Float64(cl.cfg.HysteresisDB)
	d.Float64(cl.cfg.DropTriggerDB)
	d.Int(cl.cfg.TimeToTrigger)
	d.Int(cl.cfg.MinStayFrames)
	d.Float64(cl.cfg.RetargetMarginDB)

	c := cl.counters
	d.Int(c.Frames)
	d.Int(c.Handovers)
	d.Int(c.PingPongs)
	d.Int(c.StandbyRetargets)
	d.Int(c.MonitorRounds)
	d.Int(c.MonitorProbes)
	d.Int(c.UEsAttached)
	d.Int(c.UEsFinished)
	d.Int(c.AdmissionDeferrals)

	d.Int(len(cl.cells))
	for _, cell := range cl.cells {
		cell.st.Digest(d)
	}

	d.Int(len(cl.ues))
	for _, u := range cl.ues {
		d.Int(u.id)
		d.Bool(u.attached)
		d.Bool(u.done)
		d.Float64(u.effectiveAttach)
		d.Int(u.serving)
		d.Int(u.standby)
		d.Int(u.ttt)
		d.Int(u.lastSwapFrame)
		d.Int(u.prevServing)
		d.Int(u.handovers)
		d.Int(u.pingPongs)
		d.Int(len(u.sess))
		for _, id := range u.sess {
			d.Int(id)
		}
		d.Floats(u.monEst)
		d.Bools(u.monSeen)
		for _, sc := range u.scen {
			d.Int(len(sc.Blockage))
		}
		u.meter.Digest(d)
		u.divMeter.Digest(d)
	}
}
