package cluster

import "testing"

// BenchmarkClusterFrame measures the steady-state cluster frame loop on a
// quiescent 2-cell/2-UE hall deployment (single-worker stations, tracking
// ablated — the same fixture as the alloc pin). One iteration = one 20 ms
// cluster frame: both member stations' slot loops plus the coordinator's
// monitor/harvest work.
func BenchmarkClusterFrame(b *testing.B) {
	cl := quiesceCluster(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.AdvanceFrame()
	}
}
