package station

import "mmreliable/internal/link"

// Counters is the station's aggregate accounting, exposed through
// mmstation output and the figure tables.
type Counters struct {
	// Frames is the number of scheduling frames executed.
	Frames int
	// SessionSlots is the total session·slot volume stepped (the capacity
	// denominator: SessionSlots / wall-clock = sessions·slots per second).
	SessionSlots int64
	// ProbesIssued is the total CSI-RS/SSB probes all sessions' sounders
	// fired, training sweeps included.
	ProbesIssued int
	// Grants is the number of probe tokens sessions actually consumed
	// (maintenance rounds + CC refreshes).
	Grants int
	// BudgetDenials counts sounding opportunities suppressed because the
	// session was out of tokens.
	BudgetDenials int
	// Preemptions counts blockage-emergency rounds that bypassed the
	// allowance and were charged to the next frame's budget.
	Preemptions int
	// Realigns is the total beam refinements (§4.2 re-alignment) across
	// sessions; Retrains the total full retrainings.
	Realigns int
	Retrains int
	// TrainingSlots is the total slots consumed by beam management.
	TrainingSlots int
	// BatchedEntryEvals is the total number of session rows the frame-entry
	// planar batch pass evaluated (batchFrameEntry).
	BatchedEntryEvals int64
	// Admission-control outcomes.
	AttachesAdmitted int
	AttachesRejected int
	Detaches         int
	// SDMA planner outcomes (zero unless the hybrid tier is on).
	// SDMAGroups counts frames×groups committed with ≥2 members;
	// SDMAPairRejects counts candidates refused on angular separation or
	// the group-SINR re-check; SDMASlots is the total session·slots served
	// through the digital combiner (summed from sessions at Results time).
	SDMAGroups      int
	SDMAPairRejects int
	SDMASlots       int64
}

// UEResult is one session's outcome.
type UEResult struct {
	ID       int
	State    string // pending | active | detached | rejected
	AttachAt float64
	DetachAt float64 // 0 when still attached at the end
	Slots    int64
	Summary  link.Summary
	// Probe accounting.
	Probes        int // sounder probes issued (training included)
	Grants        int
	BudgetDenials int
	Preemptions   int
	Retrains      int
	Realigns      int
	TrainingSlots int
}

// Results is a deterministic snapshot of the station's outcome: per-UE
// results in session-id order plus the aggregate counters and summary
// statistics the capacity experiment plots.
type Results struct {
	PerUE    []UEResult
	Counters Counters
	// MeanReliability averages per-UE reliability over every session that
	// recorded at least one measured slot.
	MeanReliability float64
	// MedianSNRdB is the median of per-UE mean SNR over the same set.
	MedianSNRdB float64
	// MeanProbeSharePct is the mean per-UE share of all consumed grants,
	// in percent (100/N under perfect fairness).
	MeanProbeSharePct float64
	// MinMaxGrantRatio is min/max per-UE grants among measured sessions —
	// 1.0 under perfect fairness, 0 when some session got nothing.
	MinMaxGrantRatio float64
	// SumThroughputBps is the cell sum throughput: Σ per-UE mean
	// throughput over measured sessions — the e8 landmark's y-axis. Under
	// the shared-airtime model each UE's mean already includes its zeroed
	// non-owned slots, so the sum is the cell's aggregate delivered rate.
	SumThroughputBps float64
}

// Results snapshots the current outcome. Safe to call between frames.
func (st *Station) Results() Results {
	res := Results{Counters: st.counters}
	var (
		relSum   float64
		snrs     []float64
		measured int
		minG     = -1
		maxG     = 0
	)
	for _, ss := range st.sessions {
		ur := UEResult{
			ID:            ss.id,
			State:         ss.state.String(),
			AttachAt:      ss.attachAt,
			DetachAt:      ss.detachedAt,
			Slots:         ss.slotsRun,
			Summary:       ss.meter.Summarize(),
			Probes:        ss.mgr.ProbesUsed(),
			Grants:        ss.grant.granted,
			BudgetDenials: ss.grant.denied,
			Preemptions:   ss.grant.preempted,
			Retrains:      ss.mgr.Retrains,
			Realigns:      ss.mgr.Refinements,
			TrainingSlots: ss.mgr.TrainingSlots,
		}
		res.PerUE = append(res.PerUE, ur)
		res.Counters.ProbesIssued += ur.Probes
		res.Counters.Grants += ur.Grants
		res.Counters.BudgetDenials += ur.BudgetDenials
		res.Counters.Preemptions += ur.Preemptions
		res.Counters.Retrains += ur.Retrains
		res.Counters.Realigns += ur.Realigns
		res.Counters.TrainingSlots += ur.TrainingSlots
		res.Counters.SDMASlots += ss.sdmaSlots
		if ss.meter.Slots() > 0 {
			measured++
			relSum += ur.Summary.Reliability
			res.SumThroughputBps += ur.Summary.MeanThroughput
			snrs = append(snrs, ur.Summary.MeanSNRdB)
			if minG < 0 || ur.Grants < minG {
				minG = ur.Grants
			}
			if ur.Grants > maxG {
				maxG = ur.Grants
			}
		}
	}
	if measured > 0 {
		res.MeanReliability = relSum / float64(measured)
		res.MedianSNRdB = median(snrs)
		if res.Counters.Grants > 0 {
			res.MeanProbeSharePct = 100.0 / float64(measured)
		}
		if maxG > 0 {
			res.MinMaxGrantRatio = float64(minG) / float64(maxG)
		}
	}
	return res
}

// median returns the median of vals, sorting in place (vals is a private
// snapshot copy).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	// Insertion sort: n is the session count, tiny.
	for i := 1; i < len(vals); i++ {
		v := vals[i]
		j := i
		for j > 0 && vals[j-1] > v {
			vals[j] = vals[j-1]
			j--
		}
		vals[j] = v
	}
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return 0.5 * (vals[n/2-1] + vals[n/2])
}
