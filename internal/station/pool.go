package station

import (
	"sync"
	"sync/atomic"

	"mmreliable/internal/hybrid"
	"mmreliable/internal/scratch"
)

// runSessions steps every active session through the frame starting at t0,
// sharded across the worker pool. Sessions are claimed with an atomic
// counter — which worker runs which session is scheduling-dependent, but
// irrelevant to the output: a session's entire world is session-private,
// and the per-worker scratch arenas hand out zeroed checkouts, so a
// session computes bit-identical results on any worker. The WaitGroup
// barrier publishes all session state back to the coordinator.
func (st *Station) runSessions(t0 float64) {
	n := len(st.active)
	if n == 0 {
		return
	}
	if st.sdmaOn && len(st.units) > 0 {
		// Shared-airtime model: workers claim whole scheduling units so a
		// group's members step in lockstep (sdma.go). Claim order is just
		// as output-irrelevant as in the per-session path below.
		st.runUnits(t0)
		return
	}
	w := st.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		// Inline path: zero goroutines, zero allocations — the path the
		// steady-state allocation pin (TestStationSlotAllocs) exercises.
		ws := st.ws[0]
		for _, ss := range st.active {
			ss.runFrame(st, t0, ws)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(ws *scratch.Workspace) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				st.active[i].runFrame(st, t0, ws)
			}
		}(st.ws[k])
	}
	wg.Wait()
}

// runUnitsParallel shards SDMA scheduling units across w workers, each
// with its own scratch arena and combiner.
func (st *Station) runUnitsParallel(t0 float64, w, n int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		var cb *hybrid.Combiner
		if st.combiners != nil {
			cb = st.combiners[k]
		}
		go func(ws *scratch.Workspace, cb *hybrid.Combiner) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				st.runUnit(i, st.units[i], t0, ws, cb)
			}
		}(st.ws[k], cb)
	}
	wg.Wait()
}
