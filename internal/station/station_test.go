package station

import (
	"fmt"
	"reflect"
	"testing"

	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
)

// buildStation assembles a station with n UE sessions over mixed scenarios
// (static indoor and walking-blocker indoor, alternating) plus mid-run
// attach/detach churn: every fourth session arrives late, every fifth
// leaves early. Deterministic in (n, seed, workers).
func buildStation(t *testing.T, n, workers int, seed int64, mutate func(*Config)) *Station {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		var sc *sim.Scenario
		sseed := seeds.Mix(seed, 981, int64(i))
		if i%2 == 0 {
			sc = sim.StaticIndoor(sseed)
		} else {
			sc = sim.WalkingBlockerIndoor(sseed)
		}
		scfg := SessionConfig{
			Scenario: sc,
			Budget:   sim.IndoorBudget(),
			Seed:     sseed,
		}
		if i%4 == 3 {
			scfg.AttachAt = 0.15 // mid-run arrival
		}
		if i%5 == 4 {
			scfg.DetachAt = 0.35 // early departure
		}
		if _, err := st.Attach(scfg); err != nil {
			t.Fatalf("Attach %d: %v", i, err)
		}
	}
	return st
}

// TestStationDeterministicAcrossWorkers is the subsystem's core contract:
// byte-identical Results for 1 vs 8 workers on a 32-UE station with
// attach/detach events — the same guarantee the CI determinism diff checks
// end-to-end through mmstation.
func TestStationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("32-UE determinism sweep is slow; covered by CI diff")
	}
	const dur = 0.5
	res1 := buildStation(t, 32, 1, 7, nil).Run(dur)
	res8 := buildStation(t, 32, 8, 7, nil).Run(dur)
	if !reflect.DeepEqual(res1, res8) {
		t.Fatalf("results differ between 1 and 8 workers:\n1: %+v\n8: %+v", res1, res8)
	}
	if res1.Counters.Detaches == 0 {
		t.Fatalf("churn did not exercise detach: %+v", res1.Counters)
	}
	if res1.MeanReliability <= 0 {
		t.Fatalf("no reliability measured: %+v", res1)
	}
}

// TestStationDeterministicSmall is the quick (-short friendly) variant:
// 6 UEs, workers 1 vs 3.
func TestStationDeterministicSmall(t *testing.T) {
	const dur = 0.3
	res1 := buildStation(t, 6, 1, 3, nil).Run(dur)
	res3 := buildStation(t, 6, 3, 3, nil).Run(dur)
	if !reflect.DeepEqual(res1, res3) {
		t.Fatalf("results differ between 1 and 3 workers:\n1: %+v\n3: %+v", res1, res3)
	}
}

// TestAdmissionControl verifies the MaxSessions cap: excess attach
// requests are rejected at their attach boundary and reported as such,
// and a detach frees the slot for a later arrival.
func TestAdmissionControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.MaxSessions = 2
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	attach := func(at, leave float64) int {
		t.Helper()
		id, err := st.Attach(SessionConfig{
			Scenario: sim.StaticIndoor(seeds.Mix(11, int64(len(st.sessions)))),
			Budget:   sim.IndoorBudget(),
			Seed:     seeds.Mix(11, int64(len(st.sessions))),
			AttachAt: at,
			DetachAt: leave,
		})
		if err != nil {
			t.Fatalf("Attach: %v", err)
		}
		return id
	}
	attach(0, 0.1)  // occupies a slot, leaves at 0.1
	attach(0, 0)    // occupies the second slot forever
	attach(0, 0)    // third concurrent arrival: must be rejected
	attach(0.15, 0) // arrives after the detach freed a slot: admitted
	res := st.Run(0.3)
	c := res.Counters
	if c.AttachesAdmitted != 3 || c.AttachesRejected != 1 || c.Detaches != 1 {
		t.Fatalf("admitted=%d rejected=%d detaches=%d, want 3/1/1", c.AttachesAdmitted, c.AttachesRejected, c.Detaches)
	}
	if got := res.PerUE[2].State; got != "rejected" {
		t.Fatalf("session 2 state %q, want rejected", got)
	}
	if got := res.PerUE[0].State; got != "detached" {
		t.Fatalf("session 0 state %q, want detached", got)
	}
	if res.PerUE[0].DetachAt <= 0 {
		t.Fatalf("detached session has no DetachAt: %+v", res.PerUE[0])
	}
	// A detached session's metrics are frozen: slots stepped stop at the
	// detach boundary (0.1 s ≈ 5 frames of 160 slots).
	if res.PerUE[0].Slots >= res.PerUE[1].Slots {
		t.Fatalf("detached session kept stepping: %d vs %d slots", res.PerUE[0].Slots, res.PerUE[1].Slots)
	}
}

// TestAttachValidation covers the attach-time error paths.
func TestAttachValidation(t *testing.T) {
	st, err := New(nr.Mu3(), DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := st.Attach(SessionConfig{}); err == nil {
		t.Fatal("nil scenario accepted")
	}
	if _, err := st.Attach(SessionConfig{
		Scenario: sim.StaticIndoor(1), Budget: sim.IndoorBudget(),
		AttachAt: 0.2, DetachAt: 0.1,
	}); err == nil {
		t.Fatal("DetachAt ≤ AttachAt accepted")
	}
	if _, err := New(nr.Mu3(), Config{FramePeriod: 0, MaxSessions: 1}); err == nil {
		t.Fatal("zero frame period accepted")
	}
	if _, err := New(nr.Mu3(), Config{FramePeriod: 20e-3, MaxSessions: 0}); err == nil {
		t.Fatal("zero MaxSessions accepted")
	}
}

// TestProbeBudgetBound verifies the scheduler's aggregate overhead bound:
// over R frames, regular (non-emergency) grants never exceed
// ProbeBudget × R, and emergency preemptions are paid back via carryover —
// total grants stay within ProbeBudget × R + the final outstanding debt.
func TestProbeBudgetBound(t *testing.T) {
	st := buildStation(t, 8, 2, 5, func(c *Config) { c.ProbeBudget = 3 })
	res := st.Run(0.5)
	c := res.Counters
	budgeted := c.Frames * 3
	if c.Grants > budgeted {
		t.Fatalf("regular grants %d exceed budget %d", c.Grants, budgeted)
	}
	if c.Grants+c.Preemptions > budgeted+st.carryover+3 {
		t.Fatalf("grants %d + preemptions %d exceed budget %d + outstanding debt %d (+1 frame slack)",
			c.Grants, c.Preemptions, budgeted, st.carryover)
	}
	if c.Grants == 0 {
		t.Fatal("no grants at all — scheduler never handed out tokens")
	}
}

// TestSchedulerFairnessUnderStarvation pins the starvation-aging guard:
// with a budget of 1 grant/frame shared by 6 static UEs, every session
// still gets maintenance grants (aging lifts denied sessions above the
// rest), so the min/max grant ratio stays well above zero.
func TestSchedulerFairnessUnderStarvation(t *testing.T) {
	cfg := func(c *Config) { c.ProbeBudget = 1 }
	st, err := New(nr.Mu3(), func() Config { c := DefaultConfig(); c.Workers = 1; cfg(&c); return c }())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		s := seeds.Mix(23, int64(i))
		if _, err := st.Attach(SessionConfig{Scenario: sim.StaticIndoor(s), Budget: sim.IndoorBudget(), Seed: s}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	res := st.Run(1.0)
	for _, ur := range res.PerUE {
		if ur.Grants == 0 {
			t.Fatalf("session %d starved: %+v", ur.ID, ur)
		}
	}
	if res.MinMaxGrantRatio < 0.5 {
		t.Fatalf("grant ratio %.3f < 0.5 — aging is not keeping the share fair: %+v", res.MinMaxGrantRatio, res.PerUE)
	}
	if res.Counters.BudgetDenials == 0 {
		t.Fatal("budget of 1 for 6 UEs produced no denials — the bound is not binding")
	}
}

// TestUnlimitedBudgetMatchesSelfScheduled: with arbitration disabled
// (ProbeBudget ≤ 0) a lone station session must behave exactly like the
// same manager running self-scheduled under sim.Runner semantics — no
// denials, no preemption accounting.
func TestUnlimitedBudgetMatchesSelfScheduled(t *testing.T) {
	st := buildStation(t, 2, 1, 9, func(c *Config) { c.ProbeBudget = 0 })
	res := st.Run(0.4)
	c := res.Counters
	if c.BudgetDenials != 0 {
		t.Fatalf("unlimited budget produced %d denials", c.BudgetDenials)
	}
	if c.Grants == 0 {
		t.Fatal("no grants recorded under unlimited budget")
	}
}

// TestResultsStableSnapshot: Results is safe to call between frames and
// reflects only completed frames.
func TestResultsStableSnapshot(t *testing.T) {
	st := buildStation(t, 4, 2, 13, nil)
	st.AdvanceFrame()
	mid := st.Results()
	if mid.Counters.Frames != 1 {
		t.Fatalf("frames %d after one AdvanceFrame", mid.Counters.Frames)
	}
	for i := 0; i < 4; i++ {
		st.AdvanceFrame()
	}
	fin := st.Results()
	if fin.Counters.Frames != 5 {
		t.Fatalf("frames %d after five AdvanceFrames", fin.Counters.Frames)
	}
	if fin.Counters.SessionSlots <= mid.Counters.SessionSlots {
		t.Fatal("session-slot volume did not grow")
	}
	// Per-UE results come back in session-id order.
	for i, ur := range fin.PerUE {
		if ur.ID != i {
			t.Fatalf("PerUE[%d].ID = %d, want %d", i, ur.ID, i)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(append([]float64(nil), c.in...)); got != c.want {
			t.Fatalf("median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

// TestStationManyWorkerCounts sweeps worker counts on one mid-size station
// and requires identical MeanReliability/MedianSNR fingerprints, printing
// the fingerprint for debugging on failure.
func TestStationManyWorkerCounts(t *testing.T) {
	var ref string
	for _, w := range []int{1, 2, 4, 7} {
		res := buildStation(t, 10, w, 17, nil).Run(0.25)
		fp := fmt.Sprintf("%x/%x/%d/%d", res.MeanReliability, res.MedianSNRdB,
			res.Counters.Grants, res.Counters.ProbesIssued)
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Fatalf("workers=%d fingerprint %s != %s", w, fp, ref)
		}
	}
}
