package station

// Session lifecycle: admission control and attach/detach processing. All
// transitions happen at frame boundaries on the coordinator, so they are
// deterministic regardless of worker count, and a session's manager/model
// state is never touched concurrently with a transition.

// processEvents admits pending sessions whose attach time has arrived
// (subject to the MaxSessions cap) and tears down sessions whose detach
// time has passed. t0 is the starting time of the frame about to run.
func (st *Station) processEvents(t0 float64) {
	// Admissions: pending is sorted by (AttachAt, id).
	for len(st.pending) > 0 && st.pending[0].attachAt <= t0 {
		ss := st.pending[0]
		st.pending = st.pending[1:]
		if len(st.active) >= st.cfg.MaxSessions {
			ss.state = sessionRejected
			st.counters.AttachesRejected++
			continue
		}
		ss.state = sessionActive
		ss.effectiveAttach = t0
		ss.lastGrantFrame = st.frame
		st.active = append(st.active, ss)
		st.counters.AttachesAdmitted++
	}
	// Departures: graceful teardown — the session keeps its manager and
	// meter (frozen at detach) so its results remain reportable, and its
	// slot is freed for future admissions.
	keep := st.active[:0]
	for _, ss := range st.active {
		if ss.detachNow || (ss.detachAt > 0 && ss.detachAt <= t0) {
			ss.state = sessionDetached
			ss.detachedAt = t0
			st.counters.Detaches++
			continue
		}
		keep = append(keep, ss)
	}
	st.active = keep
}
