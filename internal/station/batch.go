package station

import (
	"mmreliable/internal/channel"
	"mmreliable/internal/incr"
	"mmreliable/internal/link"
)

// rxWeightsHead returns the identity of a model's UE combining vector (nil
// for quasi-omni). Composed UE weight vectors are always freshly allocated
// (see the manager's scratch invariants), so head+length identity implies
// unchanged content.
func rxWeightsHead(m *channel.Model) *complex128 {
	if len(m.RxWeights) == 0 {
		return nil
	}
	return &m.RxWeights[0]
}

// batchFrameEntry runs the frame-barrier planar batch pass: every
// grant-holding established session's active beam is evaluated over its
// manager's subcarrier grid in one channel.WidebandBatch sweep, and the
// resulting wideband SNR is snapshotted per session (entrySNR).
//
// This is the batched front door of the planar DSP backend (DESIGN.md
// "Planar DSP backend"): instead of interleaving per-UE wideband
// evaluations with slot bookkeeping, the coordinator gathers the whole
// frame's UEs and streams them through the active kernel back-to-back, so
// the planar inner loops stay hot across sessions.
//
// Determinism: the pass runs on the coordinator between scheduleFrame and
// runSessions, when every worker is idle at the barrier, using st.ws[0]
// under a Mark/Release pair — session models are safe to touch and the
// workspace LIFO discipline holds. The snapshot feeds observability only
// (SessionFrameEntrySNRdB, Counters.BatchedEntryEvals), never scheduling
// or stepping, so output stays byte-identical at any worker count.
//
// Sessions whose budget bandwidth differs from the first batched session's
// are skipped for the frame (one grid per batch); their entrySNR simply
// stays stale. Steady state is allocation-free: registrations reuse the
// batch's high-water slices and the response slab lives in the workspace.
func (st *Station) batchFrameEntry() {
	st.batchIdx = st.batchIdx[:0]
	var fOffs []float64
	var bw float64
	var reused int64
	for i, ss := range st.active {
		if ss.grant.tokens <= 0 || !ss.mgr.Established() {
			continue
		}
		w := ss.mgr.ActiveWeightsView()
		if w == nil {
			continue
		}
		// Grid selection and bandwidth gating run BEFORE the reuse check so
		// the set of sessions updated this frame — and which session's grid
		// anchors the batch — is identical with the fast path on or off.
		if fOffs == nil {
			fOffs = ss.mgr.Offsets()
			bw = ss.budget.BandwidthHz
			st.batch.Reset(fOffs)
		} else if ss.budget.BandwidthHz != bw {
			continue
		}
		// Incremental skip: if every input of the row's eval is unchanged
		// since entrySNR was last computed — channel content stamp, front-end
		// program counter, UE combining weights — the eval would reproduce
		// entrySNR bit for bit. Renew the snapshot frame and charge the
		// counter as if evaluated, so observability is mode-invariant.
		if incr.Enabled && ss.entryValid &&
			ss.entryStamp == ss.model.Stamp() &&
			ss.entryFEVer == ss.mgr.WeightsVersion() &&
			ss.entryRxHead == rxWeightsHead(ss.model) &&
			ss.entryRxLen == len(ss.model.RxWeights) {
			ss.entrySNRFrame = st.frame
			reused++
			continue
		}
		st.batch.Add(ss.model, w)
		st.batchIdx = append(st.batchIdx, i)
	}
	st.counters.BatchedEntryEvals += reused
	if fOffs == nil || st.batch.Len() == 0 {
		return
	}
	ws := st.ws[0]
	mk := ws.Mark()
	st.batch.Eval(ws)
	for r, i := range st.batchIdx {
		ss := st.active[i]
		re, im := st.batch.Row(r)
		ss.entrySNR = link.WidebandSNRdBSplitTerms(re, im, ss.txLin, ss.noiseLin)
		ss.entrySNRFrame = st.frame
		ss.entryStamp = ss.model.Stamp()
		ss.entryFEVer = ss.mgr.WeightsVersion()
		ss.entryRxHead = rxWeightsHead(ss.model)
		ss.entryRxLen = len(ss.model.RxWeights)
		ss.entryValid = true
	}
	st.counters.BatchedEntryEvals += int64(st.batch.Len())
	ws.Release(mk)
}

// SessionFrameEntrySNRdB returns the session's most recent frame-entry
// wideband SNR snapshot and the frame it was taken at (−1 if the session
// has never been batched). Valid at the barrier, like SessionFrameSlots.
func (st *Station) SessionFrameEntrySNRdB(id int) (snrDB float64, frame int) {
	if id < 0 || id >= len(st.sessions) {
		return 0, -1
	}
	ss := st.sessions[id]
	return ss.entrySNR, ss.entrySNRFrame
}
