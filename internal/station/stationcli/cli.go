// Package stationcli is the shared runner behind cmd/mmstation and
// cmd/mmhybrid: one scenario-population builder and one output formatter,
// so the two CLIs cannot drift apart. The hybrid CLI is the station CLI
// plus an SDMA configuration — with MMR_HYBRID=off (or Chains = 0) the
// extra summary line disappears and the stdout is byte-for-byte the legacy
// station output, which is exactly the CI oracle diff.
package stationcli

import (
	"fmt"
	"io"

	"mmreliable/internal/hybrid"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
	"mmreliable/internal/station"
	"mmreliable/internal/stats"
)

// Options is the flag surface of the station-family CLIs.
type Options struct {
	UEs         int
	Scenario    string // sim.Named set, "mixed", or "spread"
	Budget      int
	FrameMS     float64
	Duration    float64
	Seed        int64
	Workers     int
	MaxSessions int
	Churn       bool
	PerUE       bool
	// SDMA is the hybrid tier configuration; the zero value (and
	// MMR_HYBRID=off regardless) reproduces the legacy station output.
	SDMA station.SDMAConfig
}

// Scenarios documents the -scenario values the runner accepts.
const Scenarios = "mixed | spread | indoor | indoor-mobile | outdoor | walking-blocker | small-spread | rotating-ue"

// mkScenario builds session id's world. "mixed" alternates static-indoor /
// walking-blocker (the CI determinism workload); "spread" fans the UEs
// across a ±40° arc of distinct AoDs (the SDMA workload); everything else
// is the sim.Named set.
func (o Options) mkScenario(id int, sseed int64) (*sim.Scenario, link.Budget, error) {
	switch o.Scenario {
	case "mixed":
		if id%2 == 0 {
			return sim.StaticIndoor(sseed), sim.IndoorBudget(), nil
		}
		return sim.WalkingBlockerIndoor(sseed), sim.IndoorBudget(), nil
	case "spread":
		frac := 0.5
		if o.UEs > 1 {
			frac = float64(id) / float64(o.UEs-1)
		}
		return sim.SpreadStaticIndoor(sseed, frac), sim.IndoorBudget(), nil
	default:
		return sim.Named(o.Scenario, sseed)
	}
}

// Run executes the configured station and renders the results to w.
func Run(w io.Writer, o Options) error {
	cfg := station.DefaultConfig()
	cfg.ProbeBudget = o.Budget
	cfg.FramePeriod = o.FrameMS * 1e-3
	cfg.MaxSessions = o.MaxSessions
	cfg.Workers = o.Workers
	cfg.SDMA = o.SDMA

	st, err := station.New(nr.Mu3(), cfg)
	if err != nil {
		return err
	}
	for i := 0; i < o.UEs; i++ {
		sseed := seeds.Mix(o.Seed, 981, int64(i))
		sc, bud, err := o.mkScenario(i, sseed)
		if err != nil {
			return err
		}
		scfg := station.SessionConfig{Scenario: sc, Budget: bud, Seed: sseed}
		if o.Churn {
			if i%4 == 3 {
				scfg.AttachAt = 0.3 * o.Duration
			}
			if i%5 == 4 {
				scfg.DetachAt = 0.7 * o.Duration
			}
		}
		if _, err := st.Attach(scfg); err != nil {
			return err
		}
	}

	res := st.Run(o.Duration)
	c := res.Counters

	fmt.Fprintf(w, "station: %d UEs, scenario %s, %.1f s, budget %d grants/frame, frame %.1f ms (seed %d)\n",
		o.UEs, o.Scenario, o.Duration, o.Budget, o.FrameMS, o.Seed)
	fmt.Fprintf(w, "frames %d  session-slots %d  admitted %d  rejected %d  detached %d\n",
		c.Frames, c.SessionSlots, c.AttachesAdmitted, c.AttachesRejected, c.Detaches)
	fmt.Fprintf(w, "probes %d  grants %d  denials %d  preemptions %d  realigns %d  retrains %d  training-slots %d\n",
		c.ProbesIssued, c.Grants, c.BudgetDenials, c.Preemptions, c.Realigns, c.Retrains, c.TrainingSlots)
	overheadPct := 0.0
	if c.SessionSlots > 0 {
		overheadPct = 100 * float64(c.TrainingSlots) / float64(c.SessionSlots)
	}
	fmt.Fprintf(w, "mean reliability %s  median SNR %s dB  training overhead %s%%  min/max grant ratio %s\n",
		stats.Fmt(res.MeanReliability), stats.Fmt(res.MedianSNRdB),
		stats.Fmt(overheadPct), stats.Fmt(res.MinMaxGrantRatio))
	if hybrid.Enabled && o.SDMA.Chains >= 1 {
		fmt.Fprintf(w, "sdma: chains %d  groups %d  pair-rejects %d  combined-slots %d  sum-throughput %s Mbps\n",
			o.SDMA.Chains, c.SDMAGroups, c.SDMAPairRejects, c.SDMASlots, stats.Fmt(res.SumThroughputBps/1e6))
	}

	if o.PerUE {
		table := stats.NewTable("per-UE results",
			"ue", "state", "slots", "reliability", "snr_dB", "thr_Mbps", "grants", "denials", "preempt", "retrain")
		for _, ur := range res.PerUE {
			s := ur.Summary
			table.AddRow(fmt.Sprintf("%03d", ur.ID), ur.State, fmt.Sprintf("%d", ur.Slots),
				stats.Fmt(s.Reliability), stats.Fmt(s.MeanSNRdB), stats.Fmt(s.MeanThroughput/1e6),
				fmt.Sprintf("%d", ur.Grants), fmt.Sprintf("%d", ur.BudgetDenials),
				fmt.Sprintf("%d", ur.Preemptions), fmt.Sprintf("%d", ur.Retrains))
		}
		table.Render(w)
	}
	return nil
}
