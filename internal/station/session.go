package station

import (
	"fmt"
	"math"
	"math/rand"

	"mmreliable/internal/channel"
	"mmreliable/internal/link"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"

	"mmreliable/internal/core/manager"
)

// SessionConfig describes one UE attach request.
type SessionConfig struct {
	// Scenario is the UE's private world: environment, mobility trace,
	// blockage schedule. The station owns it for the session's lifetime —
	// scenarios carry per-slot scratch and are single-goroutine, so never
	// share one *sim.Scenario between sessions.
	Scenario *sim.Scenario
	// Budget is the link budget the session's manager and metrics use.
	Budget link.Budget
	// Seed drives the session's sounder noise/impairment stream. Derive it
	// with seeds.Mix(baseSeed, stationLabel, id) so sessions get
	// collision-free streams under the shared determinism contract.
	Seed int64
	// AttachAt is the absolute time the UE arrives (0 = at start).
	// Admission happens at the first frame boundary ≥ AttachAt.
	AttachAt float64
	// DetachAt, when positive, is the absolute time the UE leaves; the
	// session is torn down at the first frame boundary ≥ DetachAt and its
	// metrics are frozen.
	DetachAt float64
}

// sessionState is a session's lifecycle phase.
type sessionState int

const (
	sessionPending sessionState = iota
	sessionActive
	sessionDetached
	sessionRejected
)

func (s sessionState) String() string {
	switch s {
	case sessionPending:
		return "pending"
	case sessionActive:
		return "active"
	case sessionDetached:
		return "detached"
	case sessionRejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// Session is one UE's serving context: manager, persistent channel model,
// metrics, and the scheduler-facing grant/priority state.
type Session struct {
	id     int
	sc     *sim.Scenario
	budget link.Budget
	mgr    *manager.Manager
	model  *channel.Model
	meter  *link.Meter
	grant  sessionGrant

	attachAt, detachAt float64
	detachNow          bool // forced teardown at the next boundary (DetachNow)
	state              sessionState
	effectiveAttach    float64 // frame-aligned admission time
	detachedAt         float64
	slotsRun           int64
	frameSlots         []sim.Slot // last frame's per-slot outcomes (KeepFrameSlots)

	// Frame-entry batch snapshot (batchFrameEntry): the wideband SNR of the
	// session's active beam at the frame boundary, evaluated by the
	// coordinator's planar batch pass. Observability only — never an input
	// to scheduling or stepping, so the determinism contract is untouched.
	txLin, noiseLin float64 // hoisted link.Budget.SNRTerms()
	entrySNR        float64
	entrySNRFrame   int // frame index of entrySNR, −1 before the first eval
	// Batch-entry reuse keys (incremental engine only): the inputs entrySNR
	// was last computed from. While the model stamp, front-end program
	// counter and UE-weights identity are all unchanged, the batched eval
	// would reproduce entrySNR bit for bit, so the row is skipped.
	entryStamp  uint64
	entryFEVer  int
	entryRxHead *complex128
	entryRxLen  int
	entryValid  bool

	// Scheduler inputs. Written by the worker that owns the session inside
	// a frame, read by the coordinator at the barrier (the pool's WaitGroup
	// provides the happens-before edge).
	lastSNR        float64
	ewmaFast       float64
	ewmaSlow       float64
	haveEWMA       bool
	lastGrantFrame int
	deniedFrames   int
	preemptBoost   bool
	lastPreempted  int
	wantedMaintain bool

	// sdmaSlots counts slots this session transmitted through the digital
	// MMSE combiner (hybrid tier only). Written by the owning worker,
	// summed by the coordinator at Results/Digest time.
	sdmaSlots int64
}

// Attach registers a UE session. The session becomes active at the first
// frame boundary ≥ cfg.AttachAt, subject to the MaxSessions admission cap.
// Returns the session id (stable, in attach-call order).
func (st *Station) Attach(cfg SessionConfig) (int, error) {
	if cfg.Scenario == nil {
		return 0, fmt.Errorf("station: nil scenario")
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return 0, err
	}
	if cfg.DetachAt > 0 && cfg.DetachAt <= cfg.AttachAt {
		return 0, fmt.Errorf("station: DetachAt %g ≤ AttachAt %g", cfg.DetachAt, cfg.AttachAt)
	}
	id := len(st.sessions)
	mgr, err := manager.New(fmt.Sprintf("ue%03d", id), cfg.Scenario.TxArray, cfg.Budget,
		st.num, st.cfg.Manager, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return 0, err
	}
	ss := &Session{
		id:            id,
		sc:            cfg.Scenario,
		budget:        cfg.Budget,
		mgr:           mgr,
		model:         &channel.Model{Reuse: true},
		meter:         link.NewMeter(),
		attachAt:      cfg.AttachAt,
		detachAt:      cfg.DetachAt,
		state:         sessionPending,
		entrySNR:      math.Inf(-1),
		entrySNRFrame: -1,
	}
	ss.txLin, ss.noiseLin = cfg.Budget.SNRTerms()
	if st.cfg.KeepFrameSlots {
		ss.frameSlots = make([]sim.Slot, 0, st.slotsPerFrame)
	}
	mgr.SetProbeGrant(&ss.grant)
	st.sessions = append(st.sessions, ss)
	// Sorted insert into pending by (AttachAt, id): ids are monotone, so a
	// stable insertion on AttachAt alone preserves the tiebreak.
	i := len(st.pending)
	for i > 0 && st.pending[i-1].attachAt > ss.attachAt {
		i--
	}
	st.pending = append(st.pending, nil)
	copy(st.pending[i+1:], st.pending[i:])
	st.pending[i] = ss
	return id, nil
}

// runFrame steps the session through every slot of one frame. Runs on a
// worker goroutine; everything it touches is session-private plus the
// worker's scratch arena.
func (ss *Session) runFrame(st *Station, t0 float64, ws *scratch.Workspace) {
	ws.Reset()
	ss.mgr.UseWorkspace(ws)
	if ss.frameSlots != nil {
		ss.frameSlots = ss.frameSlots[:0]
	}
	warmupEnd := ss.effectiveAttach + st.cfg.Warmup
	for k := 0; k < st.slotsPerFrame; k++ {
		t := t0 + float64(k)*st.slotDur
		ss.sc.ChannelInto(t, ss.model)
		slot := ss.mgr.Step(t, ss.model)
		if ss.frameSlots != nil {
			ss.frameSlots = append(ss.frameSlots, slot)
		}
		if t >= warmupEnd {
			ss.meter.Record(slot.SNRdB, slot.Training, slot.ThroughputBps)
		}
		ss.observe(slot.SNRdB)
		ss.slotsRun++
	}
}

// observe feeds the scheduler's SNR-drop estimator: a fast and a slow EWMA
// whose divergence (slow − fast, clamped ≥ 0) measures how far the link
// has recently fallen below its running level.
func (ss *Session) observe(snrDB float64) {
	s := snrDB
	if s < snrFloorDB {
		s = snrFloorDB
	}
	if !ss.haveEWMA {
		ss.ewmaFast, ss.ewmaSlow, ss.haveEWMA = s, s, true
	} else {
		ss.ewmaFast += fastAlpha * (s - ss.ewmaFast)
		ss.ewmaSlow += slowAlpha * (s - ss.ewmaSlow)
	}
	ss.lastSNR = s
}

// dropDB returns the scheduler's estimate of the session's recent SNR drop.
func (ss *Session) dropDB() float64 {
	d := ss.ewmaSlow - ss.ewmaFast
	if d < 0 {
		return 0
	}
	return d
}

// sessionGrant implements manager.ProbeGrant with a per-frame token
// allowance set by the scheduler. Owned by whichever worker steps the
// session this frame; read by the coordinator only at the barrier.
type sessionGrant struct {
	// Frame-local state, reset by scheduleFrame.
	tokens          int
	reserveMaintain bool // a maintenance round is due this frame: keep the last token for it
	maintainGranted bool

	// Cumulative accounting.
	granted   int
	denied    int
	preempted int
}

// Grant implements manager.ProbeGrant.
func (gr *sessionGrant) Grant(_ float64, kind manager.ProbeKind) bool {
	switch kind {
	case manager.ProbeEmergency:
		// Blockage onset: preempt immediately, budget or not. The probes
		// spent here are charged against the NEXT frame's budget
		// (Station.carryover), so the aggregate overhead bound still holds
		// on average.
		gr.preempted++
		gr.maintainGranted = true // an emergency round IS a maintenance round
		return true
	case manager.ProbeMaintain:
		if gr.tokens > 0 {
			gr.tokens--
			gr.reserveMaintain = false
			gr.maintainGranted = true
			gr.granted++
			return true
		}
		gr.denied++
		return false
	default: // manager.ProbeCC
		if gr.tokens > 1 || (gr.tokens == 1 && !gr.reserveMaintain) {
			gr.tokens--
			gr.granted++
			return true
		}
		gr.denied++
		return false
	}
}
