package station

import (
	"reflect"
	"testing"

	"mmreliable/internal/hybrid"
	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
)

// hybridOn forces the hybrid gate for the duration of a test, restoring
// the environment-derived value afterwards — the in-process counterpart of
// the MMR_HYBRID CI sweeps (same pattern as the incremental engine tests).
func hybridOn(t *testing.T, on bool) {
	t.Helper()
	was := hybrid.Enabled
	hybrid.Enabled = on
	t.Cleanup(func() { hybrid.Enabled = was })
}

// buildSpreadStation assembles a station whose n static UEs sit on an arc
// of distinct AoDs (sim.SpreadStaticIndoor) — the population the SDMA
// planner can actually group. Deterministic in (n, seed, workers).
func buildSpreadStation(t *testing.T, n, workers int, seed int64, mutate func(*Config)) *Station {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		sseed := seeds.Mix(seed, 981, int64(i))
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		if _, err := st.Attach(SessionConfig{
			Scenario: sim.SpreadStaticIndoor(sseed, frac),
			Budget:   sim.IndoorBudget(),
			Seed:     sseed,
		}); err != nil {
			t.Fatalf("Attach %d: %v", i, err)
		}
	}
	return st
}

func sdmaCfg(chains int) func(*Config) {
	return func(c *Config) {
		c.SDMA = DefaultSDMAConfig(chains)
	}
}

// TestSDMADeterministicAcrossWorkers extends the station's core contract
// to the hybrid tier: identical Results whether scheduling units run
// inline or across 4 workers, with grouping actually exercised.
func TestSDMADeterministicAcrossWorkers(t *testing.T) {
	hybridOn(t, true)
	const dur = 0.3
	res1 := buildSpreadStation(t, 8, 1, 7, sdmaCfg(4)).Run(dur)
	res4 := buildSpreadStation(t, 8, 4, 7, sdmaCfg(4)).Run(dur)
	if !reflect.DeepEqual(res1, res4) {
		t.Fatalf("results differ between 1 and 4 workers:\n1: %+v\n4: %+v", res1, res4)
	}
	if res1.Counters.SDMAGroups == 0 {
		t.Fatalf("no SDMA groups formed: %+v", res1.Counters)
	}
	if res1.Counters.SDMASlots == 0 {
		t.Fatalf("no combined slots served: %+v", res1.Counters)
	}
}

// TestSDMAOffMatchesLegacy is the tentpole's oracle: with the hybrid gate
// off, a station configured for SDMA must reproduce the legacy
// dedicated-airtime results exactly — and so must an enabled gate with
// Chains = 0.
func TestSDMAOffMatchesLegacy(t *testing.T) {
	const dur = 0.25
	hybridOn(t, false)
	gated := buildSpreadStation(t, 6, 2, 11, sdmaCfg(4)).Run(dur)
	hybridOn(t, true)
	legacy := buildSpreadStation(t, 6, 2, 11, nil).Run(dur)
	unconfigured := buildSpreadStation(t, 6, 2, 11, sdmaCfg(0)).Run(dur)
	if !reflect.DeepEqual(gated, legacy) {
		t.Fatalf("MMR_HYBRID=off with SDMA config diverges from legacy:\noff: %+v\nlegacy: %+v", gated, legacy)
	}
	if !reflect.DeepEqual(unconfigured, legacy) {
		t.Fatalf("Chains=0 diverges from legacy:\nchains0: %+v\nlegacy: %+v", unconfigured, legacy)
	}
	if legacy.Counters.SDMAGroups != 0 || legacy.Counters.SDMASlots != 0 {
		t.Fatalf("legacy run carries SDMA accounting: %+v", legacy.Counters)
	}
}

// TestSDMASumThroughputGain is the in-package version of the e8 landmark:
// at 8 UEs the hybrid-SDMA cell must deliver higher sum throughput than
// the single-beam shared-airtime baseline (Chains = 1), without giving up
// reliability.
func TestSDMASumThroughputGain(t *testing.T) {
	hybridOn(t, true)
	const dur = 0.4
	tdma := buildSpreadStation(t, 8, 2, 5, sdmaCfg(1)).Run(dur)
	sdma := buildSpreadStation(t, 8, 2, 5, sdmaCfg(4)).Run(dur)
	if sdma.SumThroughputBps <= tdma.SumThroughputBps {
		t.Fatalf("hybrid SDMA sum throughput %.1f Mbps not above single-beam TDMA %.1f Mbps",
			sdma.SumThroughputBps/1e6, tdma.SumThroughputBps/1e6)
	}
	if sdma.MeanReliability < tdma.MeanReliability-0.001 {
		t.Fatalf("SDMA reliability %.4f collapsed vs TDMA %.4f", sdma.MeanReliability, tdma.MeanReliability)
	}
	if tdma.Counters.SDMAGroups != 0 {
		t.Fatalf("Chains=1 formed groups: %+v", tdma.Counters)
	}
}

// TestSDMAPairingRespectsSeparation: with an impossibly wide separation
// threshold nothing may group; with churned co-located UEs (StaticIndoor —
// all at one AoD) nothing may group either, and rejects are recorded.
func TestSDMAPairingRespectsSeparation(t *testing.T) {
	hybridOn(t, true)
	wide := buildSpreadStation(t, 6, 1, 3, func(c *Config) {
		c.SDMA = SDMAConfig{Chains: 4, MinSeparationDeg: 170, MinSINRdB: -100}
	}).Run(0.2)
	if wide.Counters.SDMAGroups != 0 {
		t.Fatalf("170° separation threshold still grouped: %+v", wide.Counters)
	}
	if wide.Counters.SDMAPairRejects == 0 {
		t.Fatalf("no pairing rejects recorded under impossible threshold: %+v", wide.Counters)
	}

	// Co-located population: every UE at StaticIndoor's single position.
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.SDMA = DefaultSDMAConfig(4)
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s := seeds.Mix(17, 981, int64(i))
		if _, err := st.Attach(SessionConfig{Scenario: sim.StaticIndoor(s), Budget: sim.IndoorBudget(), Seed: s}); err != nil {
			t.Fatal(err)
		}
	}
	res := st.Run(0.2)
	if res.Counters.SDMAGroups != 0 {
		t.Fatalf("co-located UEs grouped: %+v", res.Counters)
	}
}

// TestSDMAChainsValidation: the group-size bound is enforced at New.
func TestSDMAChainsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SDMA.Chains = sdmaMaxChains + 1
	if _, err := New(nr.Mu3(), cfg); err == nil {
		t.Fatal("Chains > sdmaMaxChains accepted")
	}
}

// TestHybridSlotAllocs pins the hybrid steady state at zero allocations
// per frame: two fading-free established sessions forced into one group
// (thresholds wide open), stepping through the digital combiner every
// owned slot on the inline path.
func TestHybridSlotAllocs(t *testing.T) {
	hybridOn(t, true)
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.SDMA = SDMAConfig{Chains: 2, MinSeparationDeg: 0, MinSINRdB: -100}
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 2; i++ {
		s := seeds.Mix(31, int64(i))
		sc := sim.SpreadStaticIndoor(s, float64(i))
		sc.Fading = nil
		if _, err := st.Attach(SessionConfig{Scenario: sc, Budget: sim.IndoorBudget(), Seed: s}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame()
	}
	if st.counters.SDMAGroups == 0 {
		t.Fatal("warmup never grouped the two sessions — the pin would not cover the combiner")
	}
	before := st.Results().Counters.SDMASlots
	if avg := testing.AllocsPerRun(10, st.AdvanceFrame); avg != 0 {
		t.Fatalf("hybrid AdvanceFrame allocates %.1f allocs/frame in steady state, want 0", avg)
	}
	if bytes := heapBytesPerRun(50, st.AdvanceFrame); bytes != 0 {
		t.Fatalf("hybrid AdvanceFrame allocates %.1f B/frame in steady state, want 0", bytes)
	}
	if after := st.Results().Counters.SDMASlots; after <= before {
		t.Fatalf("combined slots did not advance during the pin (%d → %d)", before, after)
	}
}
