package station

import "mmreliable/internal/sim"

// This file is the station's coordination surface for a multi-cell layer
// (internal/cluster): read-only views of per-session state published at the
// frame barrier, plus the two mutations a cluster coordinator needs —
// forced detach (session migration) and external probe charging (cluster
// monitoring probes debited against this cell's budget). Every function
// here must only be called between frames, from the goroutine that calls
// AdvanceFrame; none of them may run concurrently with runSessions.

// session returns the session with the given id (ids are the values
// returned by Attach). Panics on an unknown id — ids are produced by this
// station, so an out-of-range id is a caller bug, not an input error.
func (st *Station) session(id int) *Session {
	if id < 0 || id >= len(st.sessions) {
		panic("station: unknown session id")
	}
	return st.sessions[id]
}

// SessionActive reports whether the session is currently attached.
func (st *Station) SessionActive(id int) bool {
	return st.session(id).state == sessionActive
}

// SessionEstablished reports whether the session's manager currently
// transmits a trained multi-beam (false while acquiring or retraining) —
// the make-before-break gate: a cluster promotes a prepared backup session
// to serving only once it is established.
func (st *Station) SessionEstablished(id int) bool {
	return st.session(id).mgr.Established()
}

// SessionLastSNR returns the session's last per-slot SNR observation
// (clamped at the scheduler floor), as published at the frame barrier.
func (st *Station) SessionLastSNR(id int) float64 {
	return st.session(id).lastSNR
}

// SessionDropDB returns the scheduler's SNR-drop estimate for the session
// (slow-minus-fast EWMA divergence, ≥ 0) — the degradation signal a
// cluster's handover FSM watches.
func (st *Station) SessionDropDB(id int) float64 {
	return st.session(id).dropDB()
}

// SessionFrameSlots returns the session's per-slot outcomes for the frame
// that just ran (slot 0 first). Requires Config.KeepFrameSlots; returns
// nil for inactive sessions or when recording is disabled. The returned
// slice is the session's retained buffer — valid only until the next
// AdvanceFrame, never retain it.
func (st *Station) SessionFrameSlots(id int) []sim.Slot {
	ss := st.session(id)
	if ss.state != sessionActive {
		return nil
	}
	return ss.frameSlots
}

// DetachNow schedules the session for teardown at the next frame boundary
// (the cluster-side half of a completed handover: the old serving session
// is released after the new cell's session took over). Safe on pending
// sessions (they are admitted and immediately torn down) and idempotent on
// detached ones.
func (st *Station) DetachNow(id int) {
	st.session(id).detachNow = true
}

// CanAdmit reports whether an attach at the next frame boundary would pass
// admission control — the cluster's load-balancing input when choosing a
// handover target or backup cell.
func (st *Station) CanAdmit() bool {
	return len(st.active) < st.cfg.MaxSessions
}

// ChargeExternalProbes debits n probes from the NEXT frame's budget — the
// same carryover mechanism emergency preemptions use — so cluster-level
// monitoring probes transmitted by this cell are paid for out of its own
// CSI-RS budget and the aggregate per-cell probe rate stays bounded by
// ProbeBudget per frame. A no-op under an unlimited budget.
func (st *Station) ChargeExternalProbes(n int) {
	if n > 0 && st.cfg.ProbeBudget > 0 {
		st.carryover += n
	}
}
