package station

import (
	"math"
	"testing"

	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
)

// newBatchedStation builds a station with unlimited probe tokens so every
// established session is eligible for the frame-entry batch pass.
func newBatchedStation(t *testing.T, workers int) *Station {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.ProbeBudget = 0
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 4; i++ {
		s := seeds.Mix(61, int64(i))
		if _, err := st.Attach(SessionConfig{
			Scenario: sim.StaticIndoor(s),
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	return st
}

// TestBatchFrameEntrySnapshot pins the frame-barrier batch pass: once
// sessions are established, every frame snapshots a finite wideband entry
// SNR per session, stamped with the executing frame's index, and the
// counter tracks the batched row count.
func TestBatchFrameEntrySnapshot(t *testing.T) {
	st := newBatchedStation(t, 1)
	for i := 0; i < 20; i++ {
		st.AdvanceFrame()
	}
	if st.counters.BatchedEntryEvals == 0 {
		t.Fatal("no batched entry evaluations after 20 frames")
	}
	for id := 0; id < 4; id++ {
		snr, frame := st.SessionFrameEntrySNRdB(id)
		if frame != st.Frame()-1 {
			t.Fatalf("session %d: entry snapshot from frame %d, want %d", id, frame, st.Frame()-1)
		}
		if math.IsInf(snr, 0) || math.IsNaN(snr) {
			t.Fatalf("session %d: entry SNR %g not finite", id, snr)
		}
	}
	if _, frame := st.SessionFrameEntrySNRdB(99); frame != -1 {
		t.Fatal("out-of-range session id did not report frame -1")
	}
}

// TestBatchFrameEntryWorkerInvariance pins the batch pass to the station's
// determinism contract: the entry snapshots (and everything else the
// station reports) must be identical at any worker count, because the
// batch runs coordinator-side at the barrier and feeds nothing back into
// scheduling.
func TestBatchFrameEntryWorkerInvariance(t *testing.T) {
	s1 := newBatchedStation(t, 1)
	s8 := newBatchedStation(t, 8)
	for i := 0; i < 25; i++ {
		s1.AdvanceFrame()
		s8.AdvanceFrame()
	}
	for id := 0; id < 4; id++ {
		a, fa := s1.SessionFrameEntrySNRdB(id)
		b, fb := s8.SessionFrameEntrySNRdB(id)
		if a != b || fa != fb {
			t.Fatalf("session %d: workers=1 (%g, %d) vs workers=8 (%g, %d)", id, a, fa, b, fb)
		}
	}
	r1, r8 := s1.Results(), s8.Results()
	if r1.Counters != r8.Counters {
		t.Fatalf("counters diverge across worker counts:\n1: %+v\n8: %+v", r1.Counters, r8.Counters)
	}
}
