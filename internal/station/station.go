// Package station is the concurrent multi-UE gNB serving engine: N
// independent UE sessions — each a full mmReliable beam manager
// (internal/core/manager) against its own ray-traced scenario — share one
// radio frame and one CSI-RS probe budget. A probe-budget scheduler
// arbitrates the budget across sessions every frame (priority =
// staleness × SNR-drop, with starvation aging and immediate preemption on
// blockage emergencies), so aggregate maintenance overhead stays bounded
// no matter how many UEs attach — the paper's §5 low-overhead claim lifted
// from one link to a serving cell.
//
// Execution model and determinism contract (see DESIGN.md "Station serving
// layer"): time advances in frames of FramePeriod seconds. At each frame
// boundary the coordinator — single-threaded — processes attach/detach
// events and allocates probe tokens; inside the frame every active session
// steps its slots independently (its scenario, channel model, sounder RNG,
// and manager state are all session-private), sharded across a worker pool.
// Because scheduler decisions read only per-session state published at the
// barrier, and sessions never share mutable state, the engine's output is
// byte-identical at any worker count — the same contract as
// experiments.ParallelTrials. Per-session steady-state stepping is
// zero-alloc (pinned by TestStationSlotAllocs): persistent channel models
// (Model.Reuse + channelInto), manager buffers, and per-worker scratch
// arenas keep the slot loop off the allocator.
package station

import (
	"fmt"
	"math"
	"runtime"

	"mmreliable/internal/channel"
	"mmreliable/internal/hybrid"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"

	"mmreliable/internal/core/manager"
)

// Config tunes the serving engine.
type Config struct {
	// ProbeBudget is the number of maintenance/CC probe grants the
	// scheduler may hand out per frame across ALL sessions. Each grant
	// covers one maintenance round (a probe plus at most one recovery
	// probe) or one CC phase-refresh probe. 0 or negative disables
	// arbitration: every session self-schedules, as a lone manager would.
	ProbeBudget int
	// FramePeriod is the scheduling frame in seconds (default 20 ms — one
	// SSB/maintenance period, so a granted session can run exactly one
	// maintenance round per frame).
	FramePeriod float64
	// MaxSessions is the admission-control cap on concurrently attached
	// sessions; attach requests beyond it are rejected.
	MaxSessions int
	// Workers shards session stepping (0 = GOMAXPROCS). Output is
	// byte-identical for any value.
	Workers int
	// Warmup excludes the first seconds after each session's attach from
	// its metrics (initial beam training), mirroring sim.Runner.Warmup.
	Warmup float64
	// AgingBoost is the priority added per consecutive frame a session
	// wanted a maintenance grant and was denied — the starvation guard:
	// any denied session's priority grows without bound until it wins.
	AgingBoost float64
	// KeepFrameSlots records every session's per-slot outcomes for the
	// frame that just ran into a retained per-session buffer, readable at
	// the barrier via SessionFrameSlots — the input a cluster coordinator
	// needs for UE-level metering and selection-diversity combining.
	// Costs slotsPerFrame slots of memory per session, nothing else.
	KeepFrameSlots bool
	// SDMA configures the hybrid slot-sharing tier (internal/hybrid). The
	// zero value — and MMR_HYBRID=off, regardless of this field — leaves
	// the legacy dedicated-airtime model byte-for-byte intact.
	SDMA SDMAConfig
	// Manager configures every session's beam manager.
	Manager manager.Config
}

// SDMAConfig tunes the interference-aware slot-sharing planner.
type SDMAConfig struct {
	// Chains is the RF-chain count of the hybrid front end: the maximum
	// number of UEs one slot may serve. 0 (or MMR_HYBRID=off) disables the
	// shared-airtime model entirely — the legacy oracle. 1 models shared
	// airtime with no spatial multiplexing (round-robin TDMA across all
	// sessions — the single-beam baseline the e8 experiment compares
	// against). ≥2 enables greedy angular-separation grouping with a
	// per-slot digital MMSE combiner.
	Chains int
	// MinSeparationDeg is the minimum tracked-AoD gap (degrees) between
	// any two co-scheduled sessions.
	MinSeparationDeg float64
	// MinSINRdB is the pre-commit screen: every member of a candidate
	// group must predict at least this SINR (hybrid.PredictSINRdB) or the
	// candidate is rejected.
	MinSINRdB float64
}

// DefaultSDMAConfig returns the tuned slot-sharing policy for the given
// chain count: a 20° AoD gap and an 18 dB predicted-SINR screen. The
// margin above the 6 dB outage threshold absorbs what the analog
// prediction cannot see — multibeam side lobes toward reflection paths
// and band-edge decorrelation of the center-subcarrier MMSE nulls — so a
// committed group sustains TDMA-grade reliability while roughly 1.3×-ing
// the cell's sum throughput at 8 spread UEs.
func DefaultSDMAConfig(chains int) SDMAConfig {
	return SDMAConfig{Chains: chains, MinSeparationDeg: 20, MinSINRdB: 18}
}

// DefaultConfig returns a paper-matched serving configuration: a 20 ms
// frame and an 8-grant budget (≈0.36% of slots per granted session, §5.2).
func DefaultConfig() Config {
	return Config{
		ProbeBudget: 8,
		FramePeriod: 20e-3,
		MaxSessions: 64,
		Warmup:      sim.StandardWarmup,
		AgingBoost:  0.25,
		Manager:     manager.DefaultConfig(),
	}
}

// Scheduler tuning constants.
const (
	// snrFloorDB clamps per-slot SNR observations (−Inf during training)
	// so the drop estimator stays finite.
	snrFloorDB = -30.0
	// fastAlpha/slowAlpha are the EWMA constants of the two SNR trackers
	// whose divergence estimates the session's recent SNR drop.
	fastAlpha = 0.25
	slowAlpha = 0.02
	// maxTokensPerFrame caps one session's share of a frame's budget so
	// leftover tokens spread across sessions instead of piling onto the
	// top-priority one.
	maxTokensPerFrame = 4
	// preemptBoostPriority puts a session that fired a blockage emergency
	// last frame ahead of everything else until its follow-up maintenance
	// lands.
	preemptBoostPriority = 1e6
	// unlimitedTokens is the per-frame allowance when ProbeBudget ≤ 0.
	unlimitedTokens = 1 << 30
)

// Station serves N UE sessions against one shared radio frame.
type Station struct {
	cfg           Config
	num           nr.Numerology
	slotDur       float64
	slotsPerFrame int
	workers       int

	sessions []*Session // every session ever admitted via Attach, in ID order
	active   []*Session // currently attached, admission order
	pending  []*Session // scheduled attaches, sorted by (AttachAt, ID)
	ws       []*scratch.Workspace

	frame     int // next frame index to execute
	carryover int // emergency probes borrowed against the next frame's budget

	// Scheduler scratch (preallocated; the steady-state frame loop never
	// touches the allocator).
	schedIdx  []int
	schedPrio []float64

	// Frame-entry batch state (batchFrameEntry): one planar wideband pass
	// over every grant-holding established session at the frame barrier.
	batch    channel.WidebandBatch
	batchIdx []int // active[] indices of this frame's batch rows

	// SDMA slot-sharing state (sdma.go). units/unitStore are rebuilt by
	// planFrameUnits every frame from preallocated backing, so the steady
	// state stays off the allocator.
	sdmaOn       bool
	units        [][]int // scheduling units: active[] indices sharing one airtime share
	unitStore    []int
	sdmaAssigned []bool
	combiners    []*hybrid.Combiner // per-worker digital stage (Chains ≥ 2)

	counters Counters
}

// New builds a station over the given numerology.
func New(num nr.Numerology, cfg Config) (*Station, error) {
	if err := num.Validate(); err != nil {
		return nil, err
	}
	if cfg.FramePeriod <= 0 {
		return nil, fmt.Errorf("station: non-positive frame period %g", cfg.FramePeriod)
	}
	if cfg.MaxSessions < 1 {
		return nil, fmt.Errorf("station: MaxSessions %d < 1", cfg.MaxSessions)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("station: negative warmup %g", cfg.Warmup)
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	slotDur := num.SlotDuration()
	spf := int(math.Round(cfg.FramePeriod / slotDur))
	if spf < 1 {
		spf = 1
	}
	if cfg.SDMA.Chains > sdmaMaxChains {
		return nil, fmt.Errorf("station: SDMA.Chains %d > %d", cfg.SDMA.Chains, sdmaMaxChains)
	}
	st := &Station{
		cfg:           cfg,
		num:           num,
		slotDur:       slotDur,
		slotsPerFrame: spf,
		workers:       w,
		schedIdx:      make([]int, cfg.MaxSessions),
		schedPrio:     make([]float64, cfg.MaxSessions),
		batchIdx:      make([]int, 0, cfg.MaxSessions),
	}
	st.ws = make([]*scratch.Workspace, w)
	for k := range st.ws {
		st.ws[k] = scratch.New()
	}
	st.sdmaOn = hybrid.Enabled && cfg.SDMA.Chains >= 1
	if st.sdmaOn {
		st.units = make([][]int, 0, cfg.MaxSessions)
		st.unitStore = make([]int, 0, cfg.MaxSessions)
		st.sdmaAssigned = make([]bool, cfg.MaxSessions)
		if cfg.SDMA.Chains >= 2 {
			st.combiners = make([]*hybrid.Combiner, w)
			for k := range st.combiners {
				st.combiners[k] = hybrid.NewCombiner(cfg.SDMA.Chains, cfg.Manager.NumSC)
			}
		}
	}
	return st, nil
}

// Now returns the start time of the next frame to execute.
func (st *Station) Now() float64 {
	return float64(st.frame*st.slotsPerFrame) * st.slotDur
}

// Frame returns the index of the next frame to execute.
func (st *Station) Frame() int { return st.frame }

// SlotsPerFrame returns the slot count of one scheduling frame.
func (st *Station) SlotsPerFrame() int { return st.slotsPerFrame }

// ActiveSessions returns the number of currently attached sessions.
func (st *Station) ActiveSessions() int { return len(st.active) }

// AdvanceFrame executes one scheduling frame: attach/detach processing and
// probe-token allocation on the coordinator, then parallel session
// stepping across the worker pool, then accounting harvest at the barrier.
func (st *Station) AdvanceFrame() {
	t0 := st.Now()
	t1 := float64((st.frame+1)*st.slotsPerFrame) * st.slotDur
	st.processEvents(t0)
	st.scheduleFrame(t1)
	st.planFrameUnits()
	st.batchFrameEntry()
	st.runSessions(t0)
	st.harvestFrame()
	st.counters.Frames++
	st.counters.SessionSlots += int64(len(st.active) * st.slotsPerFrame)
	st.frame++
}

// Run advances whole frames until the station clock reaches duration
// (absolute simulated seconds, warmup included) and returns the results.
func (st *Station) Run(duration float64) Results {
	frames := int(math.Ceil(duration / (float64(st.slotsPerFrame) * st.slotDur)))
	for i := 0; i < frames; i++ {
		st.AdvanceFrame()
	}
	return st.Results()
}
