package station

import (
	"testing"

	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"

	"mmreliable/internal/core/manager"
)

// schedTestStation builds a 2-session station on static channels, runs it
// long enough for both managers to establish, and returns it ready for
// direct scheduleFrame/harvestFrame driving (the tests below bypass
// runSessions so they can pin scheduler decisions frame by frame without
// channel noise perturbing the priority inputs).
func schedTestStation(t *testing.T, mutate func(*Config)) *Station {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 1
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 2; i++ {
		s := seeds.Mix(31, int64(i))
		if _, err := st.Attach(SessionConfig{
			Scenario: sim.StaticIndoor(s), Budget: sim.IndoorBudget(), Seed: s,
		}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	for i := 0; i < 10; i++ { // past initial training
		st.AdvanceFrame()
	}
	for _, ss := range st.active {
		if !ss.mgr.Established() {
			t.Fatalf("session %d not established after 10 frames", ss.id)
		}
	}
	return st
}

// TestAgingBoostUnblocks pins the starvation guard at the decision level:
// session 0 carries a huge SNR-drop signal, so on pure staleness×drop
// priority it wins the single-token budget every frame. AgingBoost must
// lift the perpetually denied session 1 above it within a handful of
// frames — and with AgingBoost disabled the same contention keeps session 1
// denied far longer.
func TestAgingBoostUnblocks(t *testing.T) {
	framesToFirstWin := func(boost float64, limit int) int {
		st := schedTestStation(t, func(c *Config) {
			c.ProbeBudget = 1
			c.AgingBoost = boost
		})
		a, b := st.active[0], st.active[1]
		// Freeze the EWMA state: A looks like it is sliding into blockage
		// (drop = 25 dB), B is steady. Sessions are not stepped, so observe()
		// never overwrites these.
		a.ewmaSlow, a.ewmaFast, a.haveEWMA = 30, 5, true
		b.ewmaSlow, b.ewmaFast, b.haveEWMA = 20, 20, true
		for f := 1; f <= limit; f++ {
			// t1 far in the future: every established session wants a
			// maintenance token this frame (steady contention).
			st.scheduleFrame(1e9)
			winner := -1
			for i, ss := range st.active {
				if ss.grant.tokens > 0 && ss.grant.reserveMaintain {
					if winner >= 0 {
						t.Fatalf("budget 1 granted two maintenance reservations (frame %d)", f)
					}
					// Simulate the session consuming its maintenance grant.
					ss.grant.Grant(0, manager.ProbeMaintain)
					winner = i
				}
			}
			if winner < 0 {
				t.Fatalf("frame %d: nobody won the token", f)
			}
			st.harvestFrame()
			st.frame++
			if winner == 1 {
				return f
			}
		}
		return limit + 1
	}
	// drop=25 ⇒ A's post-grant priority is 1×(1+25)=26 every frame. With
	// AgingBoost=10 session B reaches 26 in ⌈26/11⌉=3 frames; with the boost
	// off it needs 26 frames of pure staleness.
	boosted := framesToFirstWin(10, 8)
	if boosted > 8 {
		t.Fatalf("AgingBoost=10: denied session never won within 8 frames")
	}
	unaged := framesToFirstWin(0, 10)
	if unaged <= 10 {
		t.Fatalf("AgingBoost=0: denied session won at frame %d — aging term is not what unblocked it", unaged)
	}
	if boosted >= 6 {
		t.Fatalf("AgingBoost=10 took %d frames to unblock, want < 6", boosted)
	}
}

// TestEmergencyCarryoverNeverNegative pins the emergency-debt bookkeeping:
// (a) debt deeper than one frame's budget rolls forward instead of driving
// the frame budget negative, (b) emergency grants never consume (or
// underflow) the token allowance, and (c) harvestFrame charges each
// emergency to the next frame's budget exactly once.
func TestEmergencyCarryoverNeverNegative(t *testing.T) {
	st := schedTestStation(t, func(c *Config) { c.ProbeBudget = 3 })
	st.carryover = 10 // debt worth >3 frames of budget

	// Frame 1: budget 3−10 < 0 → zero tokens, 7 rolls forward.
	st.scheduleFrame(1e9)
	if st.carryover != 7 {
		t.Fatalf("carryover after deep debt = %d, want 7", st.carryover)
	}
	for i, ss := range st.active {
		if ss.grant.tokens != 0 {
			t.Fatalf("session %d got %d tokens under exhausted budget", i, ss.grant.tokens)
		}
		// A maintenance request against zero tokens must be denied without
		// underflowing the allowance.
		if ss.grant.Grant(0, manager.ProbeMaintain) {
			t.Fatalf("session %d maintenance granted with zero tokens", i)
		}
		if ss.grant.tokens != 0 {
			t.Fatalf("session %d tokens went to %d after denial", i, ss.grant.tokens)
		}
	}
	st.harvestFrame()
	st.frame++

	// Frames 2–3 keep paying the debt down.
	st.scheduleFrame(1e9)
	if st.carryover != 4 {
		t.Fatalf("carryover = %d, want 4", st.carryover)
	}
	st.harvestFrame()
	st.frame++
	st.scheduleFrame(1e9)
	if st.carryover != 1 {
		t.Fatalf("carryover = %d, want 1", st.carryover)
	}

	// An emergency fires while tokens are exhausted: it must be granted
	// (preemption bypasses the allowance) and must not push tokens negative.
	ss := st.active[0]
	ss.grant.tokens = 0
	if !ss.grant.Grant(0, manager.ProbeEmergency) {
		t.Fatal("emergency preemption denied")
	}
	if ss.grant.tokens != 0 {
		t.Fatalf("emergency changed token count to %d", ss.grant.tokens)
	}
	before := st.carryover
	st.harvestFrame()
	if st.carryover != before+1 {
		t.Fatalf("carryover %d → %d, want +1 for the emergency", before, st.carryover)
	}
	if !ss.preemptBoost {
		t.Fatal("emergency did not set the preemption boost")
	}
	st.frame++

	// The boosted session outranks everything next frame.
	st.scheduleFrame(1e9)
	if st.schedIdx[0] != 0 {
		t.Fatalf("preempt-boosted session not ranked first (got active[%d])", st.schedIdx[0])
	}
	if st.carryover < 0 {
		t.Fatalf("carryover went negative: %d", st.carryover)
	}
}
