package station

// The probe-budget scheduler. Runs single-threaded on the coordinator at
// every frame boundary, reading only per-session state published at the
// previous barrier — which is what makes the whole engine's output
// independent of the worker count.
//
// Policy: each established session that has a maintenance round due inside
// the frame "wants" a token. Sessions are ranked by
//
//	priority = staleness × (1 + SNR-drop) + AgingBoost × deniedFrames
//
// where staleness counts frames since the session's last granted
// maintenance, SNR-drop is the divergence of its slow/fast SNR EWMAs (a
// link sliding into blockage or misalignment rises in priority before it
// reaches outage), and deniedFrames is the starvation-aging term: a denied
// session's priority grows without bound, so no session starves under any
// load. A session that fired a blockage emergency last frame carries a
// preemption boost that puts it ahead of everything until its follow-up
// maintenance lands. Ties break toward the lower session id.
//
// Tokens: pass 1 hands one token to each wanting session in priority
// order until the budget runs out; pass 2 spreads leftover tokens (CC
// phase-refresh headroom) round-robin in the same order, capped at
// maxTokensPerFrame per session. Emergency probes bypass the allowance and
// are paid back by shrinking the next frame's budget (carryover), keeping
// the long-run probe rate at or below ProbeBudget per frame.

// scheduleFrame allocates the frame's probe tokens across active sessions.
// t1 is the frame's end time (exclusive): a session wants a maintenance
// token when its next round falls due before t1.
func (st *Station) scheduleFrame(t1 float64) {
	for _, ss := range st.active {
		ss.grant.tokens = 0
		ss.grant.reserveMaintain = false
		ss.grant.maintainGranted = false
		ss.wantedMaintain = false
	}
	if st.cfg.ProbeBudget <= 0 {
		// Arbitration disabled: every session self-schedules.
		for _, ss := range st.active {
			ss.grant.tokens = unlimitedTokens
		}
		return
	}
	budget := st.cfg.ProbeBudget - st.carryover
	st.carryover = 0
	if budget < 0 {
		// Emergency debt deeper than one frame's budget rolls forward.
		st.carryover = -budget
		budget = 0
	}
	// Rank established sessions. Sessions still in initial training or
	// retraining self-govern their sweep slots and take no tokens.
	n := 0
	for i, ss := range st.active {
		if !ss.mgr.Established() {
			continue
		}
		ss.wantedMaintain = ss.mgr.NextMaintainAt() < t1
		st.schedIdx[n] = i
		st.schedPrio[n] = st.priority(ss)
		n++
	}
	// Insertion sort, descending priority, ties toward the lower session
	// id (active order is admission order, which is id order, so the
	// stable insertion preserves the tiebreak). n is small and the slices
	// are preallocated — the frame loop stays off the allocator.
	for i := 1; i < n; i++ {
		idx, pr := st.schedIdx[i], st.schedPrio[i]
		j := i
		for j > 0 && st.schedPrio[j-1] < pr {
			st.schedIdx[j], st.schedPrio[j] = st.schedIdx[j-1], st.schedPrio[j-1]
			j--
		}
		st.schedIdx[j], st.schedPrio[j] = idx, pr
	}
	// Pass 1: one token per wanting session, best first.
	for i := 0; i < n && budget > 0; i++ {
		ss := st.active[st.schedIdx[i]]
		if ss.wantedMaintain {
			ss.grant.tokens++
			ss.grant.reserveMaintain = true
			budget--
		}
	}
	// Pass 2: leftover tokens become CC-refresh headroom, spread
	// round-robin in priority order.
	for budget > 0 {
		progressed := false
		for i := 0; i < n && budget > 0; i++ {
			ss := st.active[st.schedIdx[i]]
			if ss.grant.tokens < maxTokensPerFrame {
				ss.grant.tokens++
				budget--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
}

// priority ranks one established session for this frame.
func (st *Station) priority(ss *Session) float64 {
	staleness := float64(st.frame - ss.lastGrantFrame)
	p := staleness*(1+ss.dropDB()) + st.cfg.AgingBoost*float64(ss.deniedFrames)
	if ss.preemptBoost {
		p += preemptBoostPriority
	}
	return p
}

// harvestFrame runs at the barrier after session stepping: it folds each
// session's frame outcome back into the scheduler state (staleness resets,
// starvation aging, emergency carryover and preemption boosts).
func (st *Station) harvestFrame() {
	for _, ss := range st.active {
		gr := &ss.grant
		if d := gr.preempted - ss.lastPreempted; d > 0 {
			// Emergency rounds fired mid-frame: charge them to the next
			// frame's budget and keep the session boosted until a regular
			// maintenance grant confirms recovery.
			st.carryover += d
			ss.lastPreempted = gr.preempted
			ss.preemptBoost = true
			ss.lastGrantFrame = st.frame
			ss.deniedFrames = 0
			continue
		}
		if gr.maintainGranted {
			ss.lastGrantFrame = st.frame
			ss.deniedFrames = 0
			ss.preemptBoost = false
		} else if ss.wantedMaintain {
			ss.deniedFrames++
		}
	}
}
