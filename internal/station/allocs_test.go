package station

import (
	"runtime"
	"testing"

	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
)

// heapBytesPerRun measures the mean heap bytes allocated per call of f —
// the companion to testing.AllocsPerRun for the bytes/op half of the
// zero-alloc contract (a slow background leak shows up in bytes long
// before it rounds up to one alloc per run).
func heapBytesPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up once outside the measured window
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(runs)
}

// TestStationSlotAllocs pins the steady-state frame loop at zero
// allocations per frame: persistent channel models (Model.Reuse +
// ChannelInto), the managers' retained buffers, preallocated scheduler
// scratch, and the inline single-worker path keep AdvanceFrame off the
// allocator entirely once every session is established.
func TestStationSlotAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1 // the inline path; multi-worker frames pay goroutine overhead by design
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 2; i++ {
		s := seeds.Mix(31, int64(i))
		// Fading-free static link: the quiescent steady state. (Fading
		// jitter periodically triggers re-alignment rounds, and a weight
		// recomposition intentionally allocates: the fresh weight vector
		// escapes into the front end and the channel snapshot.)
		sc := sim.StaticIndoor(s)
		sc.Fading = nil
		if _, err := st.Attach(SessionConfig{
			Scenario: sc,
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	// Warm: initial SSB training, first maintenance rounds, buffer growth.
	for i := 0; i < 20; i++ {
		st.AdvanceFrame()
	}
	avg := testing.AllocsPerRun(10, st.AdvanceFrame)
	if avg != 0 {
		t.Fatalf("AdvanceFrame allocates %.1f allocs/frame in steady state, want 0", avg)
	}
	// Bytes too: rare amortized appends (meter episode buffers, tracker
	// history growth) used to leak ~60 B/frame while still rounding to
	// 0 allocs/op. The steady state must be byte-clean, not just
	// alloc-count-clean.
	if bytes := heapBytesPerRun(50, st.AdvanceFrame); bytes != 0 {
		t.Fatalf("AdvanceFrame allocates %.1f B/frame in steady state, want 0", bytes)
	}
}
