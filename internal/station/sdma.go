package station

import (
	"math"

	"mmreliable/internal/hybrid"
	"mmreliable/internal/link"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"
)

// This file extends the scheduler from "who gets probes" to "who shares a
// slot": the hybrid tier's SDMA planner. At every frame barrier the
// coordinator partitions the active sessions into scheduling units — each
// unit either a single session (TDMA) or a greedily-grown group of up to
// Chains angularly-separated sessions — and airtime rotates round-robin
// across units: slot k of frame f belongs to unit (f·spf+k) mod numUnits.
// Inside an owned slot a group runs the digital MMSE combiner and every
// member transmits simultaneously at SINR; a non-owned data slot records
// zero throughput (the airtime cost of sharing one radio). All planning
// reads only barrier-published per-session state, so the byte-identical
// at-any-worker-count contract is untouched.

// sdmaMaxChains bounds the per-slot group size (and the fixed-size
// planner/group scratch arrays).
const sdmaMaxChains = 8

// planFrameUnits rebuilds the frame's scheduling units. Coordinator-only,
// allocation-free: units and unitStore are capped at MaxSessions and every
// session appears in exactly one unit.
//
// Greedy policy, in active (admission) order: the first unassigned session
// leads a new unit; with Chains ≥ 2 and a tracked AoD on the lead, later
// unassigned sessions join if (a) they also track an AoD, (b) their link
// budget matches the lead's (one transmit power split cleanly), (c) their
// AoD clears MinSeparationDeg against EVERY current member, and (d) the
// whole candidate group — existing members included — re-checks above
// MinSINRdB under the pessimistic analog-leakage prediction. Sessions that
// fail (c) or (d) stay eligible to lead or join later units: TDMA is the
// fallback, never starvation.
func (st *Station) planFrameUnits() {
	if !st.sdmaOn {
		return
	}
	st.units = st.units[:0]
	st.unitStore = st.unitStore[:0]
	n := len(st.active)
	for i := 0; i < n; i++ {
		st.sdmaAssigned[i] = false
	}
	minSep := st.cfg.SDMA.MinSeparationDeg * math.Pi / 180
	chains := st.cfg.SDMA.Chains
	for i := 0; i < n; i++ {
		if st.sdmaAssigned[i] {
			continue
		}
		base := len(st.unitStore)
		st.unitStore = append(st.unitStore, i)
		st.sdmaAssigned[i] = true
		lead := st.active[i]
		if chains >= 2 {
			if aod, ok := lead.mgr.TrackedAoD(); ok {
				var aods, snrs [sdmaMaxChains]float64
				aods[0], snrs[0] = aod, lead.lastSNR
				k := 1
				for j := i + 1; j < n && k < chains; j++ {
					if st.sdmaAssigned[j] {
						continue
					}
					cand := st.active[j]
					caod, ok := cand.mgr.TrackedAoD()
					if !ok || cand.budget != lead.budget {
						continue
					}
					sepOK := true
					for m := 0; m < k; m++ {
						if hybrid.AngularGap(aods[m], caod) < minSep {
							sepOK = false
							break
						}
					}
					if !sepOK {
						st.counters.SDMAPairRejects++
						continue
					}
					aods[k], snrs[k] = caod, cand.lastSNR
					groupOK := true
					for m := 0; m <= k; m++ {
						if hybrid.PredictSINRdB(lead.sc.TxArray, aods[:k+1], snrs[:k+1], m) < st.cfg.SDMA.MinSINRdB {
							groupOK = false
							break
						}
					}
					if !groupOK {
						st.counters.SDMAPairRejects++
						continue
					}
					st.unitStore = append(st.unitStore, j)
					st.sdmaAssigned[j] = true
					k++
				}
				if k >= 2 {
					st.counters.SDMAGroups++
				}
			}
		}
		st.units = append(st.units, st.unitStore[base:len(st.unitStore)])
	}
}

// ownsSlot reports whether unit unitIdx owns slot k of the current frame
// under the round-robin airtime rotation.
func (st *Station) ownsSlot(unitIdx, numUnits, k int) bool {
	return (st.frame*st.slotsPerFrame+k)%numUnits == unitIdx
}

// runFrameShared is runFrame for a singleton unit under the shared-airtime
// model: identical stepping, but data slots outside the unit's airtime
// share record zero throughput. Training slots are untouched — beam
// management runs on its own cadence regardless of who owns the slot.
func (ss *Session) runFrameShared(st *Station, t0 float64, ws *scratch.Workspace, unitIdx, numUnits int) {
	ws.Reset()
	ss.mgr.UseWorkspace(ws)
	if ss.frameSlots != nil {
		ss.frameSlots = ss.frameSlots[:0]
	}
	warmupEnd := ss.effectiveAttach + st.cfg.Warmup
	for k := 0; k < st.slotsPerFrame; k++ {
		t := t0 + float64(k)*st.slotDur
		ss.sc.ChannelInto(t, ss.model)
		slot := ss.mgr.Step(t, ss.model)
		if !slot.Training && !st.ownsSlot(unitIdx, numUnits, k) {
			slot.ThroughputBps = 0
		}
		if ss.frameSlots != nil {
			ss.frameSlots = append(ss.frameSlots, slot)
		}
		if t >= warmupEnd {
			ss.meter.Record(slot.SNRdB, slot.Training, slot.ThroughputBps)
		}
		ss.observe(slot.SNRdB)
		ss.slotsRun++
	}
}

// runGroupFrame steps a multi-member unit through one frame. All members'
// managers advance every slot (training cadences, tracking, and channel
// evolution are airtime-independent); in the unit's owned slots the
// established, non-training members transmit simultaneously through the
// digital MMSE combiner and their slot outcome is rewritten to SINR-driven
// throughput. The scheduler's SNR-drop estimator always sees the own-beam
// SNR, never the SINR — probe arbitration stays a per-link concern.
func (st *Station) runGroupFrame(unitIdx int, unit []int, t0 float64, ws *scratch.Workspace, cb *hybrid.Combiner) {
	ws.Reset()
	numUnits := len(st.units)
	for _, idx := range unit {
		ss := st.active[idx]
		ss.mgr.UseWorkspace(ws)
		if ss.frameSlots != nil {
			ss.frameSlots = ss.frameSlots[:0]
		}
	}
	var slots [sdmaMaxChains]sim.Slot
	var ownSNR [sdmaMaxChains]float64
	var ntIdx [sdmaMaxChains]int
	for k := 0; k < st.slotsPerFrame; k++ {
		t := t0 + float64(k)*st.slotDur
		for m, idx := range unit {
			ss := st.active[idx]
			ss.sc.ChannelInto(t, ss.model)
			slots[m] = ss.mgr.Step(t, ss.model)
			ownSNR[m] = slots[m].SNRdB
		}
		if st.ownsSlot(unitIdx, numUnits, k) {
			nt := 0
			for m, idx := range unit {
				if !slots[m].Training && st.active[idx].mgr.ActiveWeightsView() != nil {
					ntIdx[nt] = m
					nt++
				}
			}
			if nt >= 2 {
				st.combineSlot(unit, ntIdx[:nt], slots[:len(unit)], cb)
			}
			// nt ≤ 1: degenerate share (members training or unestablished);
			// whoever has a beam keeps its single-user slot as-is.
		} else {
			for m := range unit {
				if !slots[m].Training {
					slots[m].ThroughputBps = 0
				}
			}
		}
		for m, idx := range unit {
			ss := st.active[idx]
			if ss.frameSlots != nil {
				ss.frameSlots = append(ss.frameSlots, slots[m])
			}
			if t >= ss.effectiveAttach+st.cfg.Warmup {
				ss.meter.Record(slots[m].SNRdB, slots[m].Training, slots[m].ThroughputBps)
			}
			ss.observe(ownSNR[m])
			ss.slotsRun++
		}
	}
}

// combineSlot runs the digital MMSE stage for the nt co-transmitting
// members (indices ntIdx into unit/slots) of one owned slot, rewriting
// their slot outcomes to SINR-driven throughput. On a degenerate channel
// (Solve failure) the members keep their single-user outcomes — the slot
// silently falls back to the analog tier.
func (st *Station) combineSlot(unit []int, ntIdx []int, slots []sim.Slot, cb *hybrid.Combiner) {
	nt := len(ntIdx)
	if err := cb.Begin(nt); err != nil {
		return
	}
	lead := st.active[unit[ntIdx[0]]]
	offs := lead.mgr.Offsets()
	for a := 0; a < nt; a++ {
		sa := st.active[unit[ntIdx[a]]]
		for b := 0; b < nt; b++ {
			sb := st.active[unit[ntIdx[b]]]
			re, im := cb.Entry(a, b)
			sa.model.EffectiveWidebandSplitInto(sb.mgr.ActiveWeightsView(), offs, re, im)
		}
	}
	if err := cb.Solve(lead.txLin, lead.noiseLin); err != nil {
		return
	}
	for a := 0; a < nt; a++ {
		m := ntIdx[a]
		ss := st.active[unit[m]]
		sinr := cb.UserSINRdB(a, ss.txLin, ss.noiseLin)
		slots[m].SNRdB = sinr
		slots[m].ThroughputBps = link.Throughput(sinr, ss.budget.BandwidthHz, 0)
		ss.sdmaSlots++
	}
}

// runUnits is the SDMA counterpart of runSessions: workers claim whole
// scheduling units (a group's members must step in lockstep within a
// slot), each with its own scratch arena and combiner.
func (st *Station) runUnits(t0 float64) {
	n := len(st.units)
	w := st.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		ws := st.ws[0]
		var cb *hybrid.Combiner
		if st.combiners != nil {
			cb = st.combiners[0]
		}
		for u, unit := range st.units {
			st.runUnit(u, unit, t0, ws, cb)
		}
		return
	}
	st.runUnitsParallel(t0, w, n)
}

// runUnit dispatches one scheduling unit.
func (st *Station) runUnit(unitIdx int, unit []int, t0 float64, ws *scratch.Workspace, cb *hybrid.Combiner) {
	if len(unit) == 1 {
		st.active[unit[0]].runFrameShared(st, t0, ws, unitIdx, len(st.units))
		return
	}
	st.runGroupFrame(unitIdx, unit, t0, ws, cb)
}
