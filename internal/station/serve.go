package station

import (
	"fmt"

	"mmreliable/internal/core"
)

// This file is the station's service-layer surface: frame-boundary knob
// hot-reload and the state digest a daemon's snapshot verification folds.
// Like everything in hooks.go, these must only be called between frames,
// from the goroutine that calls AdvanceFrame.

// SetProbeBudget hot-reloads the per-frame probe grant budget (0 =
// unlimited). scheduleFrame reads the config fresh every frame, so the new
// budget takes effect at the next frame boundary.
func (st *Station) SetProbeBudget(n int) error {
	if n < 0 {
		return fmt.Errorf("station: ProbeBudget %d < 0", n)
	}
	st.cfg.ProbeBudget = n
	return nil
}

// SetAgingBoost hot-reloads the scheduler's starvation-aging gain.
func (st *Station) SetAgingBoost(b float64) error {
	if b < 0 {
		return fmt.Errorf("station: AgingBoost %g < 0", b)
	}
	st.cfg.AgingBoost = b
	return nil
}

// CountersSnapshot returns the aggregate counters by value — O(1), unlike
// Results which walks every session. The telemetry endpoint's primitive.
func (st *Station) CountersSnapshot() Counters { return st.counters }

// Digest folds the station's semantic state into d: frame clock, budget
// carryover, counters, and every session's lifecycle, scheduler, grant,
// meter, and manager state, in session-id order. All of it is
// frame-boundary state, so the fold is identical at any worker count.
func (st *Station) Digest(d *core.Digest) {
	d.Int(st.frame)
	d.Int(st.carryover)
	d.Int(st.cfg.ProbeBudget)
	d.Float64(st.cfg.AgingBoost)

	c := st.counters
	d.Int(c.Frames)
	d.Int64(c.SessionSlots)
	d.Int(c.ProbesIssued)
	d.Int(c.Grants)
	d.Int(c.BudgetDenials)
	d.Int(c.Preemptions)
	d.Int(c.Realigns)
	d.Int(c.Retrains)
	d.Int(c.TrainingSlots)
	d.Int64(c.BatchedEntryEvals)
	d.Int(c.AttachesAdmitted)
	d.Int(c.AttachesRejected)
	d.Int(c.Detaches)
	d.Int(c.SDMAGroups)
	d.Int(c.SDMAPairRejects)

	d.Int(len(st.sessions))
	for _, ss := range st.sessions {
		d.Int(ss.id)
		d.Int(int(ss.state))
		d.Float64(ss.attachAt)
		d.Float64(ss.detachAt)
		d.Bool(ss.detachNow)
		d.Float64(ss.effectiveAttach)
		d.Float64(ss.detachedAt)
		d.Int64(ss.slotsRun)
		d.Float64(ss.lastSNR)
		d.Float64(ss.ewmaFast)
		d.Float64(ss.ewmaSlow)
		d.Bool(ss.haveEWMA)
		d.Int(ss.lastGrantFrame)
		d.Int(ss.deniedFrames)
		d.Bool(ss.preemptBoost)
		d.Int(ss.lastPreempted)
		d.Bool(ss.wantedMaintain)
		d.Int64(ss.sdmaSlots)
		d.Int(ss.grant.granted)
		d.Int(ss.grant.denied)
		d.Int(ss.grant.preempted)
		ss.meter.Digest(d)
		if ss.state == sessionActive {
			ss.mgr.Digest(d)
		}
	}
}
