package station

import (
	"testing"

	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
)

// BenchmarkStationSlot measures steady-state serving throughput in
// session·slots per second: an 8-UE station stepping whole frames on the
// inline single-worker path (the per-slot cost without goroutine overhead).
func BenchmarkStationSlot(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	const ues = 8
	for i := 0; i < ues; i++ {
		s := seeds.Mix(41, int64(i))
		if _, err := st.Attach(SessionConfig{
			Scenario: sim.StaticIndoor(s),
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame() // establish + warm buffers
	}
	slotsPerOp := ues * st.SlotsPerFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AdvanceFrame()
	}
	b.StopTimer()
	perSlot := float64(b.Elapsed().Nanoseconds()) / float64(b.N*slotsPerOp)
	b.ReportMetric(perSlot, "ns/sessionslot")
	b.ReportMetric(1e9/perSlot, "sessionslots/s")
}

// BenchmarkStationSlotQuiescent is BenchmarkStationSlot with fading
// disabled: the static, unblocked sessions are then temporally coherent
// slot to slot, so the incremental frame engine's quiescent fast paths
// (channel skip, SNR-fold cache, batch-entry row skip) carry the whole
// frame. Run with MMR_INCREMENTAL=off for the full-recompute cost of the
// same fixture.
func BenchmarkStationSlotQuiescent(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	const ues = 8
	for i := 0; i < ues; i++ {
		s := seeds.Mix(41, int64(i))
		sc := sim.StaticIndoor(s)
		sc.Fading = nil
		if _, err := st.Attach(SessionConfig{
			Scenario: sc,
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame()
	}
	slotsPerOp := ues * st.SlotsPerFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AdvanceFrame()
	}
	b.StopTimer()
	perSlot := float64(b.Elapsed().Nanoseconds()) / float64(b.N*slotsPerOp)
	b.ReportMetric(perSlot, "ns/sessionslot")
	b.ReportMetric(1e9/perSlot, "sessionslots/s")
}

// BenchmarkBatchedSlot measures the frame-barrier planar batch pass alone:
// gathering every grant-holding session, one WidebandBatch evaluation over
// the frame's UEs, and the per-session wideband-SNR fold — the batched
// front door of the planar DSP backend.
func BenchmarkBatchedSlot(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.ProbeBudget = 0 // unlimited tokens: every established session batches
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	const ues = 8
	for i := 0; i < ues; i++ {
		s := seeds.Mix(41, int64(i))
		if _, err := st.Attach(SessionConfig{
			Scenario: sim.StaticIndoor(s),
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame() // establish + warm buffers
	}
	if st.batch.Len() == 0 {
		b.Fatal("no sessions batched after warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.batchFrameEntry()
	}
}

// BenchmarkStationFrameParallel measures the same workload sharded across
// the worker pool — the scaling the capacity experiment leans on.
func BenchmarkStationFrameParallel(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	st, err := New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	const ues = 8
	for i := 0; i < ues; i++ {
		s := seeds.Mix(41, int64(i))
		if _, err := st.Attach(SessionConfig{
			Scenario: sim.StaticIndoor(s),
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AdvanceFrame()
	}
}
