// Package baselines implements the comparison schemes the paper evaluates
// mmReliable against:
//
//   - SingleBeamReactive — the conventional single-beam link with fast
//     reactive beam training (Hassanieh et al., SIGCOMM'18 style
//     logarithmic search) triggered only after the SNR collapses.
//   - BeamSpy — single beam with a stored spatial profile: on outage it
//     switches to the best alternate path remembered from the last full
//     sweep without retraining (Sur et al., NSDI'16).
//   - WideBeam — a reduced-aperture wide beam that trades gain for angular
//     coverage so mobility hurts less but SNR is permanently lower.
//   - Oracle — maximum-ratio transmission on the true per-antenna CSI every
//     slot with zero overhead: the unattainable upper bound.
//
// All baselines observe the channel exactly the way the mmReliable manager
// does: through their own noisy, impaired sounder probes, spending training
// slots for every sounding.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// Common holds the shared plumbing of the baseline schemes.
type Common struct {
	name    string
	u       *antenna.ULA
	budget  link.Budget
	num     nr.Numerology
	sounder *nr.Sounder
	cb      *antenna.Codebook
	offsets []float64
	opt     Options

	w              cmx.Vector
	wb             cmx.Vector // wideband-response scratch for snr()
	csi            cmx.Vector // probe scratch for scanUE
	trainRemaining int
	onTrainDone    func(t float64, m *channel.Model)
	badSlots       int // consecutive below-threshold data slots

	// Directional-UE state (nil for a quasi-omni UE).
	ueArr *antenna.ULA
	ueCB  *antenna.Codebook
	ueW   cmx.Vector

	// TrainingSlots counts slots consumed by beam management.
	TrainingSlots int
	// Retrains counts training invocations.
	Retrains int
}

// Options configures baseline construction.
type Options struct {
	CodebookSize int
	ScanRangeDeg float64
	NumSC        int
	// SSBPeriod gates training starts: a reactive scheme can only begin
	// beam training at the next SSB occasion (5G NR default 20 ms).
	SSBPeriod float64
	// OutageConfirmSlots is how many consecutive below-threshold slots a
	// reactive scheme needs before it declares outage and reacts (BLER
	// feedback latency).
	OutageConfirmSlots int
}

// DefaultOptions matches the manager's training setup for fair comparison.
func DefaultOptions() Options {
	return Options{
		CodebookSize:       33,
		ScanRangeDeg:       60,
		NumSC:              64,
		SSBPeriod:          20e-3,
		OutageConfirmSlots: 8,
	}
}

func newCommon(name string, u *antenna.ULA, budget link.Budget, num nr.Numerology, opt Options, rng *rand.Rand) (*Common, error) {
	s, err := nr.NewSounder(num, budget.BandwidthHz, opt.NumSC, budget.NoiseToTxAmpRatio(), nr.DefaultImpairments(), rng)
	if err != nil {
		return nil, err
	}
	scan := dsp.Rad(opt.ScanRangeDeg)
	return &Common{
		name:    name,
		u:       u,
		budget:  budget,
		num:     num,
		sounder: s,
		cb:      antenna.DFTCodebook(u, opt.CodebookSize, -scan, scan),
		offsets: channel.SubcarrierOffsets(budget.BandwidthHz, opt.NumSC),
		opt:     opt,
		wb:      make(cmx.Vector, opt.NumSC),
		csi:     make(cmx.Vector, opt.NumSC),
	}, nil
}

// ssbWaitSlots returns the slots to wait from time t until the next SSB
// occasion (0 when gating is disabled).
func (c *Common) ssbWaitSlots(t float64) int {
	if c.opt.SSBPeriod <= 0 {
		return 0
	}
	next := math.Ceil(t/c.opt.SSBPeriod) * c.opt.SSBPeriod
	return int((next - t) / c.num.SlotDuration())
}

// bindUE wires the scheme's UE combining beam into the channel snapshot,
// building the UE codebook on first sight of a directional UE.
func (c *Common) bindUE(m *channel.Model) {
	if m.Rx == nil {
		return
	}
	if c.ueCB == nil {
		c.ueArr = m.Rx
		scan := dsp.Rad(c.opt.ScanRangeDeg)
		c.ueCB = antenna.DFTCodebook(m.Rx, 2*m.Rx.N+1, -scan, scan)
	}
	m.RxWeights = c.ueW
}

// ueScanSlots returns the extra training slots a directional UE costs.
func (c *Common) ueScanSlots() int {
	if c.ueCB == nil {
		return 0
	}
	return c.ueCB.Len() * nr.CSIRSSlots
}

// scanUE sweeps the UE codebook under TX beam w and locks the best
// combining beam.
func (c *Common) scanUE(m *channel.Model, w cmx.Vector) {
	if c.ueCB == nil || w == nil {
		return
	}
	bestIdx, bestRSS := -1, 0.0
	for i, v := range c.ueCB.Weights {
		m.RxWeights = v
		if r := nr.RSS(c.sounder.ProbeInto(m, w, c.csi)); bestIdx == -1 || r > bestRSS {
			bestIdx, bestRSS = i, r
		}
	}
	c.ueW = c.ueArr.SingleBeam(c.ueCB.Angles[bestIdx])
	m.RxWeights = c.ueW
}

// outageConfirmed folds one below-threshold data slot into the detector
// and reports whether the outage is confirmed. Healthy slots reset it.
func (c *Common) outageConfirmed(bad bool) bool {
	if !bad {
		c.badSlots = 0
		return false
	}
	c.badSlots++
	if c.badSlots >= c.opt.OutageConfirmSlots {
		c.badSlots = 0
		return true
	}
	return false
}

// Name implements sim.Scheme.
func (c *Common) Name() string { return c.name }

func (c *Common) snr(m *channel.Model) float64 {
	if c.w == nil {
		return math.Inf(-1)
	}
	return c.budget.WidebandSNRdB(m.EffectiveWidebandInto(c.w, c.offsets, c.wb))
}

func (c *Common) slotsFor(airTime float64) int {
	return int(math.Max(1, math.Ceil(airTime/c.num.SlotDuration())))
}

func (c *Common) beginOp(slots int, done func(t float64, m *channel.Model)) {
	if slots < 1 {
		slots = 1
	}
	c.trainRemaining = slots
	c.onTrainDone = done
}

// stepTraining advances a pending training op; returns a slot and true if
// this slot was consumed by training.
func (c *Common) stepTraining(t float64, m *channel.Model) (sim.Slot, bool) {
	if c.trainRemaining <= 0 {
		return sim.Slot{}, false
	}
	c.trainRemaining--
	c.TrainingSlots++
	if c.trainRemaining == 0 && c.onTrainDone != nil {
		done := c.onTrainDone
		c.onTrainDone = nil
		done(t, m)
	}
	return sim.Slot{SNRdB: c.snr(m), Training: true}, true
}

func (c *Common) dataSlot(m *channel.Model) sim.Slot {
	snr := c.snr(m)
	return sim.Slot{SNRdB: snr, ThroughputBps: link.Throughput(snr, c.budget.BandwidthHz, 0)}
}

// SingleBeamReactive is the conventional reactive single-beam baseline.
type SingleBeamReactive struct {
	*Common
	// FastTraining uses the Hassanieh-style logarithmic search time instead
	// of an exhaustive sweep.
	FastTraining bool
}

// NewSingleBeamReactive builds the reactive baseline.
func NewSingleBeamReactive(u *antenna.ULA, budget link.Budget, num nr.Numerology, opt Options, rng *rand.Rand) (*SingleBeamReactive, error) {
	c, err := newCommon("reactive", u, budget, num, opt, rng)
	if err != nil {
		return nil, err
	}
	return &SingleBeamReactive{Common: c, FastTraining: true}, nil
}

func (b *SingleBeamReactive) trainingSlots() int {
	o := nr.OverheadModel{Num: b.num}
	if b.FastTraining {
		return b.slotsFor(o.NRTrainingTime(b.u.N))
	}
	return b.slotsFor(o.ExhaustiveTrainingTime(b.cb.Len()))
}

func (b *SingleBeamReactive) beginTrain(t float64) {
	b.Retrains++
	b.beginOp(b.ssbWaitSlots(t)+b.trainingSlots()+b.ueScanSlots(), func(t2 float64, m *channel.Model) {
		if b.FastTraining {
			// Actual hierarchical (logarithmic) search, matching the
			// training time the reactive baseline is charged.
			cfg := nr.DefaultHierConfig()
			cfg.Keep = 1
			cfg.ScanMin = -dsp.Rad(b.opt.ScanRangeDeg)
			cfg.ScanMax = dsp.Rad(b.opt.ScanRangeDeg)
			hres, err := nr.HierSweep(b.sounder, m, b.u, cfg)
			if err != nil || len(hres.Angles) == 0 {
				b.w = nil
				return
			}
			b.w = b.u.SingleBeam(hres.Angles[0])
			b.scanUE(m, b.w)
			return
		}
		res := nr.Sweep(b.sounder, m, b.cb, 1, 1, 30)
		if len(res.Peaks) == 0 {
			b.w = nil
			return
		}
		b.w = b.u.SingleBeam(b.cb.Angles[res.Peaks[0]])
		b.scanUE(m, b.w)
	})
}

// Step implements sim.Scheme.
func (b *SingleBeamReactive) Step(t float64, m *channel.Model) sim.Slot {
	b.bindUE(m)
	if slot, ok := b.stepTraining(t, m); ok {
		return slot
	}
	if b.w == nil {
		b.beginTrain(t)
		slot, _ := b.stepTraining(t, m)
		return slot
	}
	slot := b.dataSlot(m)
	if b.outageConfirmed(slot.SNRdB < link.OutageThresholdDB) {
		// Reactive: only now does it notice and retrain (at the next SSB
		// occasion).
		b.beginTrain(t)
	}
	return slot
}

// BeamSpy keeps the spatial profile from its last sweep and, on outage,
// hops to the next-best remembered path before resorting to retraining.
type BeamSpy struct {
	*Common
	profile []int // codebook peak indices from the last sweep, best first
	current int   // position in profile
}

// NewBeamSpy builds the BeamSpy-style baseline.
func NewBeamSpy(u *antenna.ULA, budget link.Budget, num nr.Numerology, opt Options, rng *rand.Rand) (*BeamSpy, error) {
	c, err := newCommon("beamspy", u, budget, num, opt, rng)
	if err != nil {
		return nil, err
	}
	return &BeamSpy{Common: c}, nil
}

func (b *BeamSpy) beginTrain(t0 float64) {
	b.Retrains++
	slots := b.ssbWaitSlots(t0) + b.slotsFor(float64(b.cb.Len())*b.num.SSBDuration()) + b.ueScanSlots()
	b.beginOp(slots, func(t float64, m *channel.Model) {
		res := nr.Sweep(b.sounder, m, b.cb, 3, 4, 10)
		if len(res.Peaks) == 0 {
			b.w = nil
			b.profile = nil
			return
		}
		b.profile = res.Peaks
		b.current = 0
		b.w = b.u.SingleBeam(b.cb.Angles[b.profile[0]])
		b.scanUE(m, b.w)
	})
}

// Step implements sim.Scheme.
func (b *BeamSpy) Step(t float64, m *channel.Model) sim.Slot {
	b.bindUE(m)
	if slot, ok := b.stepTraining(t, m); ok {
		return slot
	}
	if b.w == nil {
		b.beginTrain(t)
		slot, _ := b.stepTraining(t, m)
		return slot
	}
	slot := b.dataSlot(m)
	if b.outageConfirmed(slot.SNRdB < link.OutageThresholdDB) {
		if b.current+1 < len(b.profile) {
			// Instant switch to the stored alternate path: one switch slot.
			b.current++
			next := b.profile[b.current]
			b.beginOp(1, func(float64, *channel.Model) {
				b.w = b.u.SingleBeam(b.cb.Angles[next])
			})
		} else {
			b.beginTrain(t)
		}
	}
	return slot
}

// WideBeam is the reduced-aperture widebeam baseline of Fig. 18b.
type WideBeam struct {
	*Common
	// ActiveElements is the sub-aperture used (wider beam, less gain).
	ActiveElements int
	angle          float64
}

// NewWideBeam builds the widebeam baseline with a quarter aperture.
func NewWideBeam(u *antenna.ULA, budget link.Budget, num nr.Numerology, opt Options, rng *rand.Rand) (*WideBeam, error) {
	c, err := newCommon("widebeam", u, budget, num, opt, rng)
	if err != nil {
		return nil, err
	}
	active := u.N / 4
	if active < 1 {
		active = 1
	}
	return &WideBeam{Common: c, ActiveElements: active}, nil
}

func (b *WideBeam) beginTrain(t0 float64) {
	b.Retrains++
	slots := b.ssbWaitSlots(t0) + b.slotsFor(float64(b.cb.Len())*b.num.SSBDuration()) + b.ueScanSlots()
	b.beginOp(slots, func(t float64, m *channel.Model) {
		res := nr.Sweep(b.sounder, m, b.cb, 1, 1, 30)
		if len(res.Peaks) == 0 {
			b.w = nil
			return
		}
		b.angle = b.cb.Angles[res.Peaks[0]]
		b.w = antenna.WideBeam(b.u, b.angle, b.ActiveElements)
		b.scanUE(m, b.w)
	})
}

// Step implements sim.Scheme.
func (b *WideBeam) Step(t float64, m *channel.Model) sim.Slot {
	b.bindUE(m)
	if slot, ok := b.stepTraining(t, m); ok {
		return slot
	}
	if b.w == nil {
		b.beginTrain(t)
		slot, _ := b.stepTraining(t, m)
		return slot
	}
	slot := b.dataSlot(m)
	if b.outageConfirmed(slot.SNRdB < link.OutageThresholdDB) {
		b.beginTrain(t)
	}
	return slot
}

// Oracle applies maximum-ratio transmission on the true per-antenna CSI
// every slot with zero training overhead — an unattainable upper bound that
// calibrates how close the 2- and 3-beam multi-beams come (Fig. 15d).
type Oracle struct {
	name    string
	budget  link.Budget
	offsets []float64
	wb      cmx.Vector // wideband-response scratch
}

// NewOracle builds the oracle scheme.
func NewOracle(budget link.Budget, numSC int) *Oracle {
	return &Oracle{
		name:    "oracle",
		budget:  budget,
		offsets: channel.SubcarrierOffsets(budget.BandwidthHz, numSC),
		wb:      make(cmx.Vector, numSC),
	}
}

// Name implements sim.Scheme.
func (o *Oracle) Name() string { return o.name }

// Step implements sim.Scheme. On a frequency-selective channel the MRT
// weights at the carrier are not the wideband-optimal single weight vector,
// so the oracle evaluates MRT at several in-band frequencies plus each
// path's matched single beam and keeps the best.
func (o *Oracle) Step(t float64, m *channel.Model) sim.Slot {
	// Genie UE combining: matched to the strongest path's true AoA.
	if m.Rx != nil {
		if k := m.StrongestPath(); k >= 0 {
			m.RxWeights = m.Rx.SingleBeam(m.Paths[k].AoA)
		}
	}
	var cands []cmx.Vector
	for _, f := range []float64{0, -o.budget.BandwidthHz / 4, o.budget.BandwidthHz / 4} {
		h := m.PerAntennaCSI(f)
		if h.Norm() > 0 {
			cands = append(cands, h.Conj().Normalize())
		}
	}
	for i := range m.Paths {
		cands = append(cands, m.Tx.SingleBeam(m.Paths[i].AoD))
	}
	best := math.Inf(-1)
	for _, w := range cands {
		if snr := o.budget.WidebandSNRdB(m.EffectiveWidebandInto(w, o.offsets, o.wb)); snr > best {
			best = snr
		}
	}
	return sim.Slot{SNRdB: best, ThroughputBps: link.Throughput(best, o.budget.BandwidthHz, 0)}
}

// Sanity guards: all baselines implement sim.Scheme.
var (
	_ sim.Scheme = (*SingleBeamReactive)(nil)
	_ sim.Scheme = (*BeamSpy)(nil)
	_ sim.Scheme = (*WideBeam)(nil)
	_ sim.Scheme = (*Oracle)(nil)
)

// Describe returns a one-line description for CLI help.
func Describe(name string) string {
	switch name {
	case "reactive":
		return "single beam, fast reactive retraining on outage"
	case "beamspy":
		return "single beam with stored alternate-path profile"
	case "widebeam":
		return "quarter-aperture wide beam"
	case "oracle":
		return "true-CSI MRT upper bound, zero overhead"
	default:
		return fmt.Sprintf("unknown scheme %q", name)
	}
}
