package baselines

import (
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

func ula8() *antenna.ULA { return antenna.NewULA(8, 28e9) }

func staticScenario(dur float64) *sim.Scenario {
	return &sim.Scenario{
		Env:      env.ConferenceRoom(env.Band28GHz()),
		GNB:      env.GNBPose(true),
		UE:       motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 6, Y: 2.6}, Facing: math.Pi}},
		Duration: dur,
		Num:      nr.Mu3(),
		TxArray:  ula8(),
		MaxPaths: 3,
	}
}

func TestReactiveEstablishesAndHolds(t *testing.T) {
	b, err := NewSingleBeamReactive(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Runner{}.Run(staticScenario(0.3), b)
	if err != nil {
		t.Fatal(err)
	}
	s := out["reactive"].Summary
	if s.Reliability < 0.9 {
		t.Fatalf("static reactive reliability %g", s.Reliability)
	}
	if s.MeanSNRdB < 15 {
		t.Fatalf("mean SNR %g", s.MeanSNRdB)
	}
	if b.Retrains != 1 {
		t.Fatalf("retrains %d", b.Retrains)
	}
}

func TestReactiveSuffersFromBlockage(t *testing.T) {
	// A 26 dB LOS blockage forces the single-beam link into outage and a
	// reactive retrain; reliability takes the hit (Fig. 16/18a).
	b, err := NewSingleBeamReactive(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	sc := staticScenario(1.0)
	sc.Blockage = events.Schedule{{
		PathIndex: 0, Start: 0.3, Duration: 0.3, DepthDB: 26,
		RampTime: events.RampFor(26),
	}}
	out, err := sim.Runner{}.Run(sc, b)
	if err != nil {
		t.Fatal(err)
	}
	s := out["reactive"].Summary
	// The reaction latency (outage confirmation + SSB wait + training) is a
	// hard reliability charge the reactive design cannot avoid.
	if s.Reliability > 0.99 {
		t.Fatalf("reactive reliability %g suspiciously high under blockage", s.Reliability)
	}
	if b.Retrains < 2 {
		t.Fatalf("retrains %d, want reactive retraining", b.Retrains)
	}
	if s.OutageEvents == 0 {
		t.Fatal("no outage recorded")
	}
}

func TestBeamSpySwitchesWithoutFullRetrain(t *testing.T) {
	bs, err := NewBeamSpy(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sc := staticScenario(1.0)
	sc.Blockage = events.Schedule{{
		PathIndex: 0, Start: 0.3, Duration: 0.3, DepthDB: 26,
		RampTime: events.RampFor(26),
	}}
	out, err := sim.Runner{}.Run(sc, bs)
	if err != nil {
		t.Fatal(err)
	}
	// BeamSpy hops to the stored alternate path: at most the initial
	// training plus possibly one recovery, but the hop itself is 1 slot.
	rel := out["beamspy"].Summary.Reliability

	// Compare with plain reactive under the identical scenario.
	rc, err := NewSingleBeamReactive(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sc2 := staticScenario(1.0)
	sc2.Blockage = sc.Blockage
	out2, err := sim.Runner{}.Run(sc2, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rel < out2["reactive"].Summary.Reliability {
		t.Fatalf("beamspy (%g) below reactive (%g)", rel, out2["reactive"].Summary.Reliability)
	}
}

func TestWideBeamLowerGain(t *testing.T) {
	wb, err := NewWideBeam(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewSingleBeamReactive(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Runner{}.Run(staticScenario(0.3), wb, rc)
	if err != nil {
		t.Fatal(err)
	}
	if out["widebeam"].Summary.MeanSNRdB >= out["reactive"].Summary.MeanSNRdB {
		t.Fatalf("widebeam SNR %g not below narrow %g",
			out["widebeam"].Summary.MeanSNRdB, out["reactive"].Summary.MeanSNRdB)
	}
	if wb.ActiveElements != 2 {
		t.Fatalf("active elements %d", wb.ActiveElements)
	}
}

func TestOracleIsUpperBound(t *testing.T) {
	o := NewOracle(link.DefaultBudget(), 64)
	rc, err := NewSingleBeamReactive(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Runner{}.Run(staticScenario(0.3), o, rc)
	if err != nil {
		t.Fatal(err)
	}
	if out["oracle"].Summary.MeanSNRdB <= out["reactive"].Summary.MeanSNRdB {
		t.Fatal("oracle not above reactive")
	}
	if out["oracle"].Summary.Reliability != 1 {
		t.Fatalf("oracle reliability %g", out["oracle"].Summary.Reliability)
	}
}

func TestDescribe(t *testing.T) {
	for _, n := range []string{"reactive", "beamspy", "widebeam", "oracle", "bogus"} {
		if Describe(n) == "" {
			t.Fatalf("empty description for %s", n)
		}
	}
}

// TestHeadlineComparison reproduces the shape of Fig. 18b/c: under
// concurrent mobility and blockage on the thin-margin outdoor link,
// mmReliable keeps reliability high while the reactive baseline churns and
// the widebeam baseline collapses; the throughput-reliability product
// favors mmReliable by a clear factor.
func TestHeadlineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	var mmRel, reRel, wbRel, mmTRP, reTRP []float64
	const runs = 6
	budget := sim.OutdoorBudget()
	runner := sim.Runner{Warmup: sim.StandardWarmup}
	for i := 0; i < runs; i++ {
		seed := int64(100 + i)
		mgr, err := manager.New("mmreliable", ula8(), budget, nr.Mu3(), manager.DefaultConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rc, err := NewSingleBeamReactive(ula8(), budget, nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		wb, err := NewWideBeam(ula8(), budget, nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		outM, err := runner.Run(sim.ThinMarginOutdoor(seed), mgr)
		if err != nil {
			t.Fatal(err)
		}
		outR, err := runner.Run(sim.ThinMarginOutdoor(seed), rc)
		if err != nil {
			t.Fatal(err)
		}
		outW, err := runner.Run(sim.ThinMarginOutdoor(seed), wb)
		if err != nil {
			t.Fatal(err)
		}
		mmRel = append(mmRel, outM["mmreliable"].Summary.Reliability)
		reRel = append(reRel, outR["reactive"].Summary.Reliability)
		wbRel = append(wbRel, outW["widebeam"].Summary.Reliability)
		mmTRP = append(mmTRP, outM["mmreliable"].Summary.TRProduct)
		reTRP = append(reTRP, outR["reactive"].Summary.TRProduct)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(mmRel) < 0.85 {
		t.Fatalf("mmReliable mean reliability %g, want ≈1", mean(mmRel))
	}
	if mean(mmRel) <= mean(reRel)+0.05 {
		t.Fatalf("mmReliable reliability %g not clearly above reactive %g", mean(mmRel), mean(reRel))
	}
	if mean(wbRel) >= mean(reRel) {
		t.Fatalf("widebeam %g should be the worst (reactive %g)", mean(wbRel), mean(reRel))
	}
	if ratio := mean(mmTRP) / mean(reTRP); ratio <= 1.1 {
		t.Fatalf("TR product ratio %g, want > 1.1", ratio)
	}
}

func TestFastTrainingFindsCorrectBeam(t *testing.T) {
	// The reactive baseline's hierarchical training must land on the LOS
	// direction, not merely charge logarithmic time.
	b, err := NewSingleBeamReactive(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	if !b.FastTraining {
		t.Fatal("fast training should be the default")
	}
	out, err := sim.Runner{Warmup: 0.05}.Run(staticScenario(0.3), b)
	if err != nil {
		t.Fatal(err)
	}
	// Within ~2 dB of the exhaustive-training variant.
	b2, err := NewSingleBeamReactive(ula8(), link.DefaultBudget(), nr.Mu3(), DefaultOptions(), rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	b2.FastTraining = false
	out2, err := sim.Runner{Warmup: 0.05}.Run(staticScenario(0.3), b2)
	if err != nil {
		t.Fatal(err)
	}
	fast := out["reactive"].Summary.MeanSNRdB
	exh := out2["reactive"].Summary.MeanSNRdB
	if fast < exh-2 {
		t.Fatalf("fast training SNR %g dB vs exhaustive %g dB", fast, exh)
	}
	// And it must be cheaper in training slots.
	if b.TrainingSlots >= b2.TrainingSlots {
		t.Fatalf("fast training slots %d not below exhaustive %d", b.TrainingSlots, b2.TrainingSlots)
	}
}
