// Package incr holds the process-wide switch for the temporal-coherence
// incremental frame engine. The engine trades redundant recomputation for
// cached state under an exactness contract: every fast path must produce
// bit-identical results to the full recompute it replaces, so enabling or
// disabling it can never change a single byte of simulator output.
//
// MMR_INCREMENTAL=off pins the whole repo to the full-recompute oracle,
// mirroring MMR_TRACER=reference and MMR_DSP_KERNEL=reference: CI diffs the
// stdout of both modes against each other, and `MMR_INCREMENTAL=off go test
// ./...` runs the suite without any reuse fast path.
package incr

import "os"

// Enabled reports whether the incremental fast paths are active. Read once
// at init so per-slot hot paths never touch the environment.
var Enabled = os.Getenv("MMR_INCREMENTAL") != "off"
