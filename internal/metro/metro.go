// Package metro is the city-scale sharded simulation layer: hundreds to a
// thousand cluster.Cluster instances ("sites") advanced frame-synchronously
// across a worker pool, with UE session churn per site and streaming
// aggregation of every finished UE into constant-size per-shard sketches.
// It is the driver that turns the paper's per-link reliability machinery
// into deployment-scale numbers — 10³ cells / 10⁵ UE-sessions on one
// machine — without holding per-UE state for anyone who already left.
//
// Determinism contract (the same one the station, cluster, and experiment
// layers obey): every site's entire evolution — its cluster seed, its churn
// arrival/departure stream, its UE drop positions — derives from
// seeds.Mix(Seed, label, site) and advances inside the site only. Shards
// are contiguous site ranges; a shard is executed start-to-finish by
// whichever worker steals it, so per-shard sketch folds happen in site
// order no matter which worker runs them, and the final reduction walks
// shards in index order on the caller's goroutine. Results are therefore
// byte-identical at any -workers, pinned by TestMetroDeterminismAcrossWorkers.
//
// All sites share one read-only environment with a built spatial index
// (env.Index): concurrent tracing is safe (per-query scratch comes from a
// sync.Pool) and the per-slot ray-trace cost stays local rather than
// O(total walls).
package metro

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"mmreliable/internal/cluster"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
)

// Seed-stream labels for the metro layer's RNG derivation (station uses
// 981, cluster 991–993; see internal/seeds).
const (
	labelMetroCluster = 995 // per-site cluster seeds
	labelMetroChurn   = 996 // per-site churn streams (arrivals, sessions, drops)
)

// Config sizes and seeds the metro simulation.
type Config struct {
	// Seed drives every derived stream via seeds.Mix(Seed, label, site).
	Seed int64
	// Clusters is the number of cluster sites; CellsPerCluster gNBs each,
	// so total cells = Clusters × CellsPerCluster.
	Clusters int
	// CellsPerCluster is the gNB count per site (the MultiCellHall scene).
	CellsPerCluster int
	// UEsPerCluster is the initial UE population per site, attached at t=0.
	UEsPerCluster int
	// Workers is the goroutine pool size; 0 means GOMAXPROCS. Results are
	// byte-identical at any value.
	Workers int
	// Shards is the number of contiguous site ranges used as work-stealing
	// units and sketch-aggregation grains; 0 picks min(Clusters, 64).
	// Sketches cost O(Shards) memory regardless of how many UEs ever
	// existed. The byte-identical determinism contract holds across any
	// Workers at a FIXED shard partition — the default is deliberately
	// independent of Workers so "same config, different -workers" reduces
	// float sums with identical bracketing. Changing Shards regroups the
	// reduction and may move the last ulp of the aggregate means.
	Shards int
	// ChurnArrivalRate is the mean UE arrival rate per site in UEs/second
	// (Poisson, per-site stream). 0 disables churn: the initial population
	// stays for the whole run.
	ChurnArrivalRate float64
	// MeanSessionS is the mean churned-UE session length in seconds
	// (exponential, floored at MinSessionS). Applies to churn arrivals and,
	// when churn is enabled, to the initial population too.
	MeanSessionS float64
	// MinSessionS floors session lengths so a session always outlives
	// admission plus warmup. Default 0.3 s.
	MinSessionS float64
	// MobileFraction is the fraction of UEs (initial population and churn
	// arrivals alike) that are mobile: each paces back and forth between its
	// drop position and a second lattice point at SpeedMPS, panel tracking
	// whichever cell it talks to. 0 (the default) keeps every UE static —
	// and, to keep existing seeds reproducible, draws nothing from the churn
	// stream. The mix is what the incremental frame engine's benchmarks
	// exercise: static UEs ride the quiescent fast paths, mobile UEs pay
	// full recompute every slot.
	MobileFraction float64
	// SpeedMPS is the mobile UEs' walking speed in m/s. 0 defaults to 1.4
	// (pedestrian).
	SpeedMPS float64
	// Cluster configures every site's coordinator; Seed is overridden per
	// site.
	Cluster cluster.Config
}

// DefaultConfig returns a small default metro: 8 two-cell sites with two
// resident UEs each and moderate churn, fading off (the quiescent
// zero-alloc fixture; flip Cluster.DisableFading for fading realism).
func DefaultConfig() Config {
	ccfg := cluster.DefaultConfig()
	ccfg.DisableFading = true
	ccfg.Station.Manager.ProactiveTracking = false
	return Config{
		Seed:             1,
		Clusters:         8,
		CellsPerCluster:  2,
		UEsPerCluster:    2,
		ChurnArrivalRate: 1.5,
		MeanSessionS:     1.2,
		MinSessionS:      0.3,
		Cluster:          ccfg,
	}
}

// site is one cluster instance plus its private churn stream.
type site struct {
	cl  *cluster.Cluster
	rng *rand.Rand
	// crs is rng's counting source: the churn stream's consumed-draw
	// counter, which snapshots record and restores verify (the pair
	// (seed, draws) fully describes the stream position; see seeds).
	crs         *seeds.CountingSource
	nextArrival float64
	// harvestFn folds finished UEs into the owning shard's sketch; prebound
	// so the steady-state frame loop stays off the allocator.
	harvestFn func(cluster.UEOutcome, *link.Meter, *link.Meter)
}

// Metro is the sharded city simulation.
type Metro struct {
	cfg      Config
	num      nr.Numerology
	sites    []*site
	sketches []Sketch
	// siteSketches holds the same harvested-UE aggregates at per-site
	// granularity — the backing of the telemetry layer's site-labeled
	// metrics. Filled by the same prebound harvestFn as the shard sketches
	// (one extra O(1) fold per finished UE), so folds stay in site order and
	// the per-site aggregates are byte-identical at any worker count.
	siteSketches []Sketch
	shardLo      []int // shard s covers sites[shardLo[s]:shardLo[s+1]]
	positions []env.Vec2
	workers   int
	frame     int

	nextShard atomic.Int64
	start     chan struct{}
	wg        sync.WaitGroup
	closed    bool
}

// New builds the metro: one shared indexed environment, Clusters cluster
// sites with per-site seeds, the initial UE population, and (for Workers >
// 1) the persistent worker pool. Call Close when done with a multi-worker
// metro to release the pool.
func New(num nr.Numerology, cfg Config) (*Metro, error) {
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("metro: Clusters %d < 1", cfg.Clusters)
	}
	if cfg.CellsPerCluster < 1 {
		return nil, fmt.Errorf("metro: CellsPerCluster %d < 1", cfg.CellsPerCluster)
	}
	if cfg.UEsPerCluster < 0 || cfg.ChurnArrivalRate < 0 || cfg.MeanSessionS < 0 {
		return nil, fmt.Errorf("metro: negative population parameter")
	}
	if cfg.ChurnArrivalRate > 0 && cfg.MeanSessionS == 0 {
		return nil, fmt.Errorf("metro: churn arrivals need MeanSessionS > 0")
	}
	if cfg.MinSessionS <= 0 {
		cfg.MinSessionS = 0.3
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 64 // worker-independent (see Config.Shards)
	}
	if shards > cfg.Clusters {
		shards = cfg.Clusters
	}
	if workers > shards {
		workers = shards
	}

	// One shared read-only scene for every site: the multi-cell hall with
	// the spatial index built (concurrent tracing is index-safe), and a
	// finite range so the index can also prune reflection candidates.
	scene, poses := env.MultiCellHall(env.Band28GHz(), cfg.CellsPerCluster)
	scene.MaxRangeM = 80
	scene.BuildIndex()
	dep := cluster.Deployment{Env: scene, Cells: poses, Budget: sim.IndoorBudget()}
	// A fixed lattice of candidate drop positions; churn picks among them.
	nPos := cfg.UEsPerCluster
	if nPos < 16 {
		nPos = 16
	}
	positions := env.HallUEPositions(nPos)

	m := &Metro{
		cfg:          cfg,
		num:          num,
		sketches:     make([]Sketch, shards),
		siteSketches: make([]Sketch, cfg.Clusters),
		positions:    positions,
		workers:      workers,
	}
	per := (cfg.Clusters + shards - 1) / shards
	for lo := 0; lo < cfg.Clusters; lo += per {
		m.shardLo = append(m.shardLo, lo)
	}
	m.shardLo = append(m.shardLo, cfg.Clusters)

	for si := 0; si < cfg.Clusters; si++ {
		ccfg := cfg.Cluster
		ccfg.Seed = seeds.Mix(cfg.Seed, labelMetroCluster, int64(si))
		cl, err := cluster.New(num, ccfg, dep)
		if err != nil {
			return nil, fmt.Errorf("metro: site %d: %w", si, err)
		}
		s := &site{cl: cl}
		// Counting wrapper around the same stream the plain construction
		// drew: values are identical, positions become serializable.
		s.rng, s.crs = seeds.NewCountingRand(seeds.Mix(cfg.Seed, labelMetroChurn, int64(si)))
		sk := &m.sketches[m.shardOf(si)]
		ssk := &m.siteSketches[si]
		s.harvestFn = func(out cluster.UEOutcome, serving, diversity *link.Meter) {
			sk.AddUE(out, serving, diversity)
			ssk.AddUE(out, serving, diversity)
		}
		if cfg.ChurnArrivalRate > 0 {
			s.nextArrival = s.rng.ExpFloat64() / cfg.ChurnArrivalRate
		}
		for u := 0; u < cfg.UEsPerCluster; u++ {
			uc := m.newUEConfig(s, positions[u%len(positions)])
			if cfg.ChurnArrivalRate > 0 {
				uc.DetachAt = m.sessionLen(s)
			}
			if _, err := cl.AddUE(uc); err != nil {
				return nil, fmt.Errorf("metro: site %d initial UE %d: %w", si, u, err)
			}
		}
		m.sites = append(m.sites, s)
	}

	if m.workers > 1 {
		m.start = make(chan struct{}, m.workers)
		for w := 0; w < m.workers; w++ {
			go func() {
				for range m.start {
					m.runShards()
					m.wg.Done()
				}
			}()
		}
	}
	return m, nil
}

// pacer walks back and forth along the segment a→b at constant speed — a
// bounded pedestrian trace that keeps a mobile UE inside the hall for runs
// of any length. Its facing is irrelevant: the cluster re-faces each pair's
// panel toward its cell (see cluster.UEConfig.Motion).
type pacer struct {
	a, b  env.Vec2
	speed float64
	span  float64 // |b−a|, > 0
}

// At implements motion.Trace.
func (p pacer) At(t float64) env.Pose {
	d := math.Mod(p.speed*t, 2*p.span)
	if d > p.span {
		d = 2*p.span - d
	}
	f := d / p.span
	return env.Pose{Pos: env.Vec2{X: p.a.X + f*(p.b.X-p.a.X), Y: p.a.Y + f*(p.b.Y-p.a.Y)}}
}

// newUEConfig builds one UE's drop config at position pos, drawing its
// mobility (mobile-or-static, destination) from the site's churn stream.
// With MobileFraction = 0 nothing is drawn, so pre-mobility churn streams
// replay identically.
func (m *Metro) newUEConfig(s *site, pos env.Vec2) cluster.UEConfig {
	uc := cluster.UEConfig{Pos: pos}
	if m.cfg.MobileFraction > 0 && s.rng.Float64() < m.cfg.MobileFraction {
		to := m.positions[s.rng.Intn(len(m.positions))]
		if span := to.Sub(pos).Norm(); span > 1e-9 {
			speed := m.cfg.SpeedMPS
			if speed <= 0 {
				speed = 1.4 // pedestrian
			}
			uc.Motion = pacer{a: pos, b: to, speed: speed, span: span}
		}
	}
	return uc
}

// shardOf returns the shard owning site si.
func (m *Metro) shardOf(si int) int {
	per := m.shardLo[1] - m.shardLo[0]
	s := si / per
	if s >= len(m.shardLo)-1 {
		s = len(m.shardLo) - 2
	}
	return s
}

// sessionLen draws one session duration from the site's churn stream.
func (m *Metro) sessionLen(s *site) float64 {
	d := m.cfg.MeanSessionS * s.rng.ExpFloat64()
	if d < m.cfg.MinSessionS {
		d = m.cfg.MinSessionS
	}
	return d
}

// Frame returns the index of the next metro frame to execute.
func (m *Metro) Frame() int { return m.frame }

// FramePeriod returns the duration of one metro frame in seconds.
func (m *Metro) FramePeriod() float64 { return m.sites[0].cl.FramePeriod() }

// Cells returns the total gNB count across all sites.
func (m *Metro) Cells() int { return len(m.sites) * m.cfg.CellsPerCluster }

// ResidentUEs returns the UEs currently resident across all sites (attached
// or awaiting admission; harvested UEs excluded). Safe between frames.
func (m *Metro) ResidentUEs() int {
	n := 0
	for _, s := range m.sites {
		n += s.cl.ResidentUEs()
	}
	return n
}

// Workers returns the effective worker count.
func (m *Metro) Workers() int { return m.workers }

// Shards returns the effective shard count.
func (m *Metro) Shards() int { return len(m.shardLo) - 1 }

// AdvanceFrame executes one metro frame: every site advances one cluster
// frame (churn arrivals first, finished-UE harvest after), shard by shard
// across the worker pool, with a barrier before the next frame. Workers
// steal whole shards off a shared atomic cursor, so a shard whose sites hit
// expensive re-establishments doesn't serialize the rest of the city behind
// it. With one worker everything runs inline on the caller's goroutine.
func (m *Metro) AdvanceFrame() {
	m.nextShard.Store(0)
	if m.workers <= 1 {
		m.runShards()
	} else {
		m.wg.Add(m.workers)
		for w := 0; w < m.workers; w++ {
			m.start <- struct{}{}
		}
		m.wg.Wait()
	}
	m.frame++
}

// runShards drains the shard cursor, stepping each stolen shard's sites in
// order.
func (m *Metro) runShards() {
	for {
		s := int(m.nextShard.Add(1) - 1)
		if s >= len(m.shardLo)-1 {
			return
		}
		for _, st := range m.sites[m.shardLo[s]:m.shardLo[s+1]] {
			m.stepSite(st)
		}
	}
}

// stepSite advances one site by one frame: releases due churn arrivals into
// the cluster, advances the cluster frame, and streams finished UEs out
// into the owning shard's sketch.
func (m *Metro) stepSite(s *site) {
	t0 := s.cl.Now()
	if m.cfg.ChurnArrivalRate > 0 {
		for s.nextArrival <= t0 {
			at := s.nextArrival
			uc := m.newUEConfig(s, m.positions[s.rng.Intn(len(m.positions))])
			uc.AttachAt = at
			uc.DetachAt = at + m.sessionLen(s)
			if _, err := s.cl.AddUE(uc); err != nil {
				// UEConfig is constructed valid here; an error is a bug.
				panic(fmt.Sprintf("metro: churn AddUE: %v", err))
			}
			s.nextArrival = at + s.rng.ExpFloat64()/m.cfg.ChurnArrivalRate
		}
	}
	s.cl.AdvanceFrame()
	// Harvest unconditionally: churned sessions AND live-injected detaches
	// (serve layer) stream out. With churn off and no injections nothing is
	// ever done, so the sweep finds nothing and the sketches stay empty —
	// pre-serve outputs are unchanged.
	s.cl.HarvestFinished(s.harvestFn)
}

// Run advances whole frames until the metro clock reaches duration
// (absolute simulated seconds) and returns the results.
func (m *Metro) Run(duration float64) Results {
	frames := int(math.Ceil(duration / m.FramePeriod()))
	for i := 0; i < frames; i++ {
		m.AdvanceFrame()
	}
	return m.Results()
}

// Close releases the worker pool. The metro must not be advanced after
// Close; Results remains safe.
func (m *Metro) Close() {
	if m.start != nil && !m.closed {
		close(m.start)
		m.closed = true
	}
}
