package metro

import (
	"mmreliable/internal/cluster"
	"mmreliable/internal/link"
)

// RelBins is the number of per-UE reliability histogram bins: bin k covers
// [k/10, (k+1)/10), with the last bin holding exactly-1.0 UEs.
const RelBins = 11

// Sketch is the constant-size streaming aggregate one shard folds its
// finished UEs into: two merged link meters (the concatenation of every
// folded UE's serving-leg and diversity slot streams, via link.Meter.Merge),
// a per-UE reliability histogram, and scalar extrema. Folding is O(1) per
// UE and the sketch never references the UE again — the memory contract
// that lets a churn run retire 10⁵ UE-sessions while holding O(shards)
// aggregation state.
//
// Sketches merge associatively with Merge, and every fold path in the metro
// runs in a deterministic order (site order within a shard, shard order in
// the reduction), so sketch contents are byte-identical at any worker
// count.
type Sketch struct {
	// UEs is the number of folded UEs; Measured the subset that recorded at
	// least one post-warmup slot.
	UEs      int
	Measured int
	// serving / diversity accumulate the folded UEs' meters end to end.
	// Lazily allocated so an idle shard's sketch costs nothing.
	serving   *link.Meter
	diversity *link.Meter
	// RelHist buckets folded UEs by serving-leg reliability.
	RelHist [RelBins]int
	// Handovers / PingPongs sum the folded UEs' handover activity.
	Handovers int
	PingPongs int
	// WorstOutageMs / DivWorstOutageMs are the longest single outage
	// episode any folded UE saw (serving leg / with diversity combining).
	WorstOutageMs    float64
	DivWorstOutageMs float64
}

// AddUE folds one UE into the sketch. The meters are read, never retained.
func (s *Sketch) AddUE(out cluster.UEOutcome, serving, diversity *link.Meter) {
	s.UEs++
	s.Handovers += out.Handovers
	s.PingPongs += out.PingPongs
	if serving.Slots() == 0 {
		return // never measured (e.g. admission deferred until departure)
	}
	s.Measured++
	s.ensureMeters()
	s.serving.Merge(serving)
	s.diversity.Merge(diversity)
	bin := int(out.Serving.Reliability * 10)
	if bin < 0 {
		bin = 0
	}
	if bin >= RelBins {
		bin = RelBins - 1
	}
	s.RelHist[bin]++
	if out.MaxOutageMs > s.WorstOutageMs {
		s.WorstOutageMs = out.MaxOutageMs
	}
	if out.DivMaxOutageMs > s.DivWorstOutageMs {
		s.DivWorstOutageMs = out.DivMaxOutageMs
	}
}

// Merge folds other into s (other is not modified). Sketch merging is the
// shard→metro reduction; do it in shard-index order for byte-identical
// results.
func (s *Sketch) Merge(other *Sketch) {
	s.UEs += other.UEs
	s.Measured += other.Measured
	s.Handovers += other.Handovers
	s.PingPongs += other.PingPongs
	for i, n := range other.RelHist {
		s.RelHist[i] += n
	}
	if other.WorstOutageMs > s.WorstOutageMs {
		s.WorstOutageMs = other.WorstOutageMs
	}
	if other.DivWorstOutageMs > s.DivWorstOutageMs {
		s.DivWorstOutageMs = other.DivWorstOutageMs
	}
	if other.serving != nil {
		s.ensureMeters()
		s.serving.Merge(other.serving)
		s.diversity.Merge(other.diversity)
	}
}

// Clone returns a deep copy (the reduction works on copies so Results never
// perturbs the live per-shard sketches).
func (s *Sketch) Clone() Sketch {
	c := *s
	c.serving, c.diversity = nil, nil
	if s.serving != nil {
		c.ensureMeters()
		c.serving.Merge(s.serving)
		c.diversity.Merge(s.diversity)
	}
	return c
}

// Serving summarizes the concatenated serving-leg stream of every folded
// UE (zero Summary before any measured UE).
func (s *Sketch) Serving() link.Summary {
	if s.serving == nil {
		return link.Summary{}
	}
	return s.serving.Summarize()
}

// Diversity summarizes the concatenated diversity stream.
func (s *Sketch) Diversity() link.Summary {
	if s.diversity == nil {
		return link.Summary{}
	}
	return s.diversity.Summarize()
}

// Slots returns the total folded slot count (serving stream).
func (s *Sketch) Slots() int {
	if s.serving == nil {
		return 0
	}
	return s.serving.Slots()
}

func (s *Sketch) ensureMeters() {
	if s.serving == nil {
		s.serving = link.NewMeter()
		s.diversity = link.NewMeter()
	}
}
