package metro

import (
	"bytes"
	"reflect"
	"testing"

	"mmreliable/internal/incr"
	"mmreliable/internal/nr"
)

// runMetro builds and runs a metro with the given worker count and returns
// its results.
func runMetro(t testing.TB, cfg Config, workers int, duration float64) Results {
	t.Helper()
	cfg.Workers = workers
	m, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	return m.Run(duration)
}

// TestMetroDeterminismAcrossWorkers is the tentpole acceptance pin: a
// 64-site metro with session churn produces byte-identical Results at 1
// and 8 workers (and the deterministic text report renders identically).
func TestMetroDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("64-site determinism run is seconds of wall clock")
	}
	cfg := DefaultConfig()
	cfg.Clusters = 64
	cfg.Seed = 7
	cfg.MobileFraction = 0.3 // mixed mobile/static population
	r1 := runMetro(t, cfg, 1, 0.6)
	r8 := runMetro(t, cfg, 8, 0.6)
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("metro results differ between 1 and 8 workers:\n1: %+v\n8: %+v", r1, r8)
	}
	var b1, b8 bytes.Buffer
	r1.Write(&b1)
	r8.Write(&b8)
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatalf("metro reports differ between 1 and 8 workers:\n%s\nvs\n%s", b1.String(), b8.String())
	}
	if r1.UEs == 0 || r1.Measured == 0 || r1.Slots == 0 {
		t.Fatalf("degenerate run: %+v", r1)
	}
	if r1.Counters.UEsFinished == 0 {
		t.Fatal("churn run finished no UEs — harvest path not exercised")
	}
}

// TestMetroIncrementalModeEquivalence pins the incremental frame engine's
// oracle contract end-to-end through the metro stack: a mixed mobile/static
// churn city (spatial index built, fading off — every temporal-coherence
// fast path engages for the static UEs while the mobile ones force full
// recompute and cache revalidation) produces byte-identical Results and a
// byte-identical text report with the fast paths on and off.
func TestMetroIncrementalModeEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 6
	cfg.Seed = 11
	cfg.MobileFraction = 0.4
	was := incr.Enabled
	defer func() { incr.Enabled = was }()
	incr.Enabled = true
	rOn := runMetro(t, cfg, 1, 0.8)
	incr.Enabled = false
	rOff := runMetro(t, cfg, 1, 0.8)
	if !reflect.DeepEqual(rOn, rOff) {
		t.Fatalf("metro results differ between incremental and oracle mode:\non:  %+v\noff: %+v", rOn, rOff)
	}
	var bOn, bOff bytes.Buffer
	rOn.Write(&bOn)
	rOff.Write(&bOff)
	if !bytes.Equal(bOn.Bytes(), bOff.Bytes()) {
		t.Fatalf("metro reports differ between incremental and oracle mode:\n%s\nvs\n%s", bOn.String(), bOff.String())
	}
}

// TestMetroChurnBoundsResidency pins the streaming-aggregation memory
// contract: with harvesting on, the resident UE population stays bounded
// by the churn equilibrium while the folded session count keeps growing —
// the cluster is NOT accumulating every UE ever served.
func TestMetroChurnBoundsResidency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 4
	cfg.ChurnArrivalRate = 4
	cfg.MeanSessionS = 0.4
	m, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	frames := int(3.0 / m.FramePeriod())
	peak := 0
	for i := 0; i < frames; i++ {
		m.AdvanceFrame()
		if r := m.ResidentUEs(); r > peak {
			peak = r
		}
	}
	res := m.Results()
	// Equilibrium residency ≈ rate × mean session ≈ 1.6/site plus the
	// initial two; sessions over 3 s ≈ 12/site. If harvesting broke,
	// residency would equal total sessions.
	if res.UEs < res.ResidentUEs*2 {
		t.Fatalf("only %d total sessions vs %d resident: churn too weak to prove harvesting",
			res.UEs, res.ResidentUEs)
	}
	if peak >= res.UEs {
		t.Fatalf("peak residency %d reached total sessions %d: finished UEs not harvested", peak, res.UEs)
	}
	if res.Counters.UEsFinished == 0 {
		t.Fatal("no UE ever finished")
	}
	// The folded aggregate must cover every session: finished + resident.
	if res.UEs != res.Counters.UEsFinished+res.ResidentUEs {
		t.Fatalf("folded sessions %d != finished %d + resident %d",
			res.UEs, res.Counters.UEsFinished, res.ResidentUEs)
	}
}

// TestMetroWorkerPoolRace exercises the shard-stealing pool under churn so
// `go test -race` sweeps the frame barrier, the shared indexed environment,
// and the per-shard sketch folds. Results correctness is covered by the
// determinism test; this one just needs concurrent execution.
func TestMetroWorkerPoolRace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 16
	cfg.Shards = 8
	cfg.Workers = 4
	m, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	for i := 0; i < 20; i++ {
		m.AdvanceFrame()
	}
	if m.Results().Slots == 0 {
		t.Fatal("no slots measured")
	}
}

// TestMetroMidRunResultsRepeatable: Results mid-run must not perturb the
// live sketches (it reduces clones), so calling it twice — or continuing
// the run afterwards — changes nothing.
func TestMetroMidRunResultsRepeatable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 4
	m, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	for i := 0; i < 15; i++ {
		m.AdvanceFrame()
	}
	a := m.Results()
	b := m.Results()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated Results() calls differ")
	}

	// And a fresh metro advanced the same way, with Results polled every
	// frame, lands on the same final state.
	m2, err := New(nr.Mu3(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m2.Close()
	for i := 0; i < 15; i++ {
		m2.AdvanceFrame()
		_ = m2.Results()
	}
	if c := m2.Results(); !reflect.DeepEqual(a, c) {
		t.Fatal("polling Results every frame perturbed the run")
	}
}

// TestMetroShardPartitionInvariants checks shard bookkeeping across odd
// site/shard ratios.
func TestMetroShardPartitionInvariants(t *testing.T) {
	for _, tc := range []struct{ clusters, shards int }{
		{1, 0}, {3, 2}, {7, 3}, {64, 0}, {65, 0}, {5, 64},
	} {
		cfg := DefaultConfig()
		cfg.Clusters = tc.clusters
		cfg.Shards = tc.shards
		cfg.ChurnArrivalRate = 0
		cfg.UEsPerCluster = 1
		m, err := New(nr.Mu3(), cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", tc, err)
		}
		covered := 0
		for s := 0; s < m.Shards(); s++ {
			lo, hi := m.shardLo[s], m.shardLo[s+1]
			if hi <= lo {
				t.Fatalf("%+v: empty shard %d", tc, s)
			}
			for si := lo; si < hi; si++ {
				if m.shardOf(si) != s {
					t.Fatalf("%+v: site %d maps to shard %d, want %d", tc, si, m.shardOf(si), s)
				}
			}
			covered += hi - lo
		}
		if covered != tc.clusters {
			t.Fatalf("%+v: shards cover %d sites, want %d", tc, covered, tc.clusters)
		}
		m.Close()
	}
}
