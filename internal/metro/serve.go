package metro

import (
	"fmt"

	"mmreliable/internal/cluster"
	"mmreliable/internal/core"
	"mmreliable/internal/station"
)

// This file is the metro's service-layer surface: live UE attach/detach,
// blockage injection, knob hot-reload, O(sites) telemetry reads, and the
// state digest + RNG-position accessors the daemon's snapshot machinery
// uses. Everything here must only be called between frames, from the
// goroutine that calls AdvanceFrame.

// AttachSpec describes a live UE attach. Zero-value fields pick
// deterministic defaults: position from the hall lattice (keyed on the
// site's resident count), session length from the site's churn stream when
// churn is on (never-ending otherwise).
type AttachSpec struct {
	// X, Y place the UE when HasPos is set; otherwise a lattice point is
	// chosen deterministically.
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
	HasPos bool    `json:"has_pos,omitempty"`
	// DurationS, when positive, detaches the UE that many seconds after
	// attach.
	DurationS float64 `json:"duration_s,omitempty"`
}

// InjectAttach adds a UE to the given site at the current frame boundary
// (admitted when the next frame runs). Mobility follows the site's
// MobileFraction draw, exactly like a churn arrival. Returns the UE id.
func (m *Metro) InjectAttach(siteIdx int, spec AttachSpec) (int, error) {
	if siteIdx < 0 || siteIdx >= len(m.sites) {
		return 0, fmt.Errorf("metro: site %d outside [0,%d)", siteIdx, len(m.sites))
	}
	if spec.DurationS < 0 {
		return 0, fmt.Errorf("metro: negative attach duration %g", spec.DurationS)
	}
	s := m.sites[siteIdx]
	pos := m.positions[s.cl.ResidentUEs()%len(m.positions)]
	if spec.HasPos {
		pos.X, pos.Y = spec.X, spec.Y
	}
	uc := m.newUEConfig(s, pos)
	now := s.cl.Now()
	uc.AttachAt = now
	switch {
	case spec.DurationS > 0:
		uc.DetachAt = now + spec.DurationS
	case m.cfg.ChurnArrivalRate > 0:
		uc.DetachAt = now + m.sessionLen(s)
	}
	return s.cl.AddUE(uc)
}

// InjectDetach schedules the UE's departure at this frame boundary.
func (m *Metro) InjectDetach(siteIdx, ueID int) error {
	if siteIdx < 0 || siteIdx >= len(m.sites) {
		return fmt.Errorf("metro: site %d outside [0,%d)", siteIdx, len(m.sites))
	}
	return m.sites[siteIdx].cl.DetachUE(ueID)
}

// InjectBlockage schedules a live blockage on the (site, ue, cell) link
// from the current frame boundary; cell −1 targets the UE's serving cell.
// Returns the resolved cell index.
func (m *Metro) InjectBlockage(siteIdx, ueID, cell int, depthDB, durationS float64) (int, error) {
	if siteIdx < 0 || siteIdx >= len(m.sites) {
		return 0, fmt.Errorf("metro: site %d outside [0,%d)", siteIdx, len(m.sites))
	}
	return m.sites[siteIdx].cl.InjectBlockage(ueID, cell, depthDB, durationS)
}

// ApplyTuning hot-reloads the knob set on every site at this frame
// boundary. Validation is atomic across the city.
func (m *Metro) ApplyTuning(t cluster.Tuning) error {
	if err := t.Validate(); err != nil {
		return err
	}
	for _, s := range m.sites {
		if err := s.cl.ApplyTuning(t); err != nil {
			return err
		}
	}
	return nil
}

// ActiveSessions returns the total attached station sessions across the
// city — O(cells).
func (m *Metro) ActiveSessions() int {
	n := 0
	for _, s := range m.sites {
		n += s.cl.ActiveSessions()
	}
	return n
}

// CountersTotal sums every site's cluster counters — O(sites).
func (m *Metro) CountersTotal() cluster.Counters {
	var total cluster.Counters
	for _, s := range m.sites {
		addCounters(&total, s.cl.CountersSnapshot())
	}
	return total
}

// StationCountersTotal sums every cell's station counters — O(cells).
func (m *Metro) StationCountersTotal() station.Counters {
	var total station.Counters
	for _, s := range m.sites {
		for c := 0; c < s.cl.Cells(); c++ {
			sc := s.cl.CellCounters(c)
			total.Frames += sc.Frames
			total.SessionSlots += sc.SessionSlots
			total.ProbesIssued += sc.ProbesIssued
			total.Grants += sc.Grants
			total.BudgetDenials += sc.BudgetDenials
			total.Preemptions += sc.Preemptions
			total.Realigns += sc.Realigns
			total.Retrains += sc.Retrains
			total.TrainingSlots += sc.TrainingSlots
			total.BatchedEntryEvals += sc.BatchedEntryEvals
			total.AttachesAdmitted += sc.AttachesAdmitted
			total.AttachesRejected += sc.AttachesRejected
			total.Detaches += sc.Detaches
		}
	}
	return total
}

// SketchTotal merges the per-shard sketches of already-harvested UEs in
// shard-index order — O(shards), no per-UE walk (resident UEs are NOT
// folded in, unlike Results; telemetry reads must stay O(sites)).
func (m *Metro) SketchTotal() Sketch {
	var total Sketch
	for s := range m.sketches {
		total.Merge(&m.sketches[s])
	}
	return total
}

// Sites returns the number of cluster sites in the city.
func (m *Metro) Sites() int { return len(m.sites) }

// SiteActiveSessions returns site i's currently attached station sessions —
// O(cells per site). Loop-owned, like every telemetry read.
func (m *Metro) SiteActiveSessions(i int) int {
	return m.sites[i].cl.ActiveSessions()
}

// SiteSketch returns a read-only view of site i's harvested-UE aggregate —
// the per-site slice of the same folds SketchTotal merges. O(1); the caller
// must not mutate it (Clone first to fold further). Loop-owned.
func (m *Metro) SiteSketch(i int) *Sketch { return &m.siteSketches[i] }

// SiteDraws returns every site's churn-stream consumed-draw count, in site
// order — the RNG stream positions a snapshot records.
func (m *Metro) SiteDraws() []uint64 {
	out := make([]uint64, len(m.sites))
	for i, s := range m.sites {
		out[i] = s.crs.Draws()
	}
	return out
}

// SiteNextArrivals returns every site's next churn-arrival time, in site
// order — the arrival-process state a snapshot records.
func (m *Metro) SiteNextArrivals() []float64 {
	out := make([]float64, len(m.sites))
	for i, s := range m.sites {
		out[i] = s.nextArrival
	}
	return out
}

// Digest folds the city's semantic state into d: shape, frame clock, every
// site's cluster state (in site order) plus its churn-stream position and
// arrival state, and the per-shard sketches. Identical at any worker
// count; the daemon's snapshot/restore verification hinges on it.
func (m *Metro) Digest(d *core.Digest) {
	d.Int64(m.cfg.Seed)
	d.Int(len(m.sites))
	d.Int(m.cfg.CellsPerCluster)
	d.Int(m.Shards())
	d.Int(m.frame)
	for _, s := range m.sites {
		s.cl.Digest(d)
		d.Uint64(s.crs.Draws())
		d.Float64(s.nextArrival)
	}
	for i := range m.sketches {
		m.sketches[i].Digest(d)
	}
	for i := range m.siteSketches {
		m.siteSketches[i].Digest(d)
	}
}

// DigestSum is the one-call form of Digest.
func (m *Metro) DigestSum() uint64 {
	d := core.NewDigest()
	m.Digest(d)
	return d.Sum()
}

// Digest folds the sketch's aggregate state into d.
func (s *Sketch) Digest(d *core.Digest) {
	d.Int(s.UEs)
	d.Int(s.Measured)
	for _, n := range s.RelHist {
		d.Int(n)
	}
	d.Int(s.Handovers)
	d.Int(s.PingPongs)
	d.Float64(s.WorstOutageMs)
	d.Float64(s.DivWorstOutageMs)
	if s.serving != nil {
		s.serving.Digest(d)
		s.diversity.Digest(d)
	} else {
		d.Int(-1)
	}
}
