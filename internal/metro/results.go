package metro

import (
	"fmt"
	"io"

	"mmreliable/internal/cluster"
	"mmreliable/internal/link"
)

// ShardSummary is one shard's reduced outcome: its sketch (finished UEs
// streamed out during the run, plus the UEs still resident at Results
// time) as plain values.
type ShardSummary struct {
	Sites     int
	UEs       int // UE-sessions folded (finished + resident)
	Measured  int // subset with at least one post-warmup slot
	Slots     int // total measured slots across folded UEs
	Serving   link.Summary
	Diversity link.Summary
	RelHist   [RelBins]int
	Handovers int
	PingPongs int
	// WorstOutageMs / DivWorstOutageMs: longest single outage episode any
	// folded UE saw, in ms.
	WorstOutageMs    float64
	DivWorstOutageMs float64
}

// Results is the deterministic metro outcome: pure values (comparable with
// reflect.DeepEqual), byte-identical at any worker count for a fixed shard
// partition.
type Results struct {
	Frames      int
	Sites       int
	Cells       int
	ResidentUEs int

	// Metro-wide aggregate: every folded UE's slot stream concatenated in
	// (shard, site, UE) order.
	UEs       int
	Measured  int
	Slots     int
	Serving   link.Summary
	Diversity link.Summary
	RelHist   [RelBins]int
	Handovers int
	PingPongs int

	WorstOutageMs    float64
	DivWorstOutageMs float64

	// Counters sums every site's cluster counters.
	Counters cluster.Counters
	// OverheadPct is beam-management overhead across every cell in the
	// city: training slots per session slot, percent. The §5 story at metro
	// scale: it must stay flat as sites multiply.
	OverheadPct float64

	PerShard []ShardSummary
}

// Results reduces the city: per shard, a clone of the live sketch absorbs
// the shard's still-resident UEs (so the live sketches are never
// perturbed and Results is repeatable mid-run), then shards fold into the
// metro totals in index order. The walk is entirely on the caller's
// goroutine — determinism needs no cooperation from the pool. Safe between
// frames.
func (m *Metro) Results() Results {
	res := Results{
		Frames: m.frame,
		Sites:  len(m.sites),
		Cells:  m.Cells(),
	}
	var total Sketch
	var trainSlots, sessSlots int64
	for s := 0; s < m.Shards(); s++ {
		sk := m.sketches[s].Clone()
		lo, hi := m.shardLo[s], m.shardLo[s+1]
		for _, st := range m.sites[lo:hi] {
			st.cl.VisitUEs(sk.AddUE)
			res.ResidentUEs += st.cl.ResidentUEs()
			cr := st.cl.Results()
			addCounters(&res.Counters, cr.Counters)
			for _, pc := range cr.PerCell {
				trainSlots += int64(pc.Counters.TrainingSlots)
				sessSlots += pc.Counters.SessionSlots
			}
		}
		res.PerShard = append(res.PerShard, ShardSummary{
			Sites:            hi - lo,
			UEs:              sk.UEs,
			Measured:         sk.Measured,
			Slots:            sk.Slots(),
			Serving:          sk.Serving(),
			Diversity:        sk.Diversity(),
			RelHist:          sk.RelHist,
			Handovers:        sk.Handovers,
			PingPongs:        sk.PingPongs,
			WorstOutageMs:    sk.WorstOutageMs,
			DivWorstOutageMs: sk.DivWorstOutageMs,
		})
		total.Merge(&sk)
	}
	res.UEs = total.UEs
	res.Measured = total.Measured
	res.Slots = total.Slots()
	res.Serving = total.Serving()
	res.Diversity = total.Diversity()
	res.RelHist = total.RelHist
	res.Handovers = total.Handovers
	res.PingPongs = total.PingPongs
	res.WorstOutageMs = total.WorstOutageMs
	res.DivWorstOutageMs = total.DivWorstOutageMs
	if sessSlots > 0 {
		res.OverheadPct = 100 * float64(trainSlots) / float64(sessSlots)
	}
	return res
}

func addCounters(dst *cluster.Counters, c cluster.Counters) {
	dst.Frames += c.Frames
	dst.Handovers += c.Handovers
	dst.PingPongs += c.PingPongs
	dst.StandbyRetargets += c.StandbyRetargets
	dst.MonitorRounds += c.MonitorRounds
	dst.MonitorProbes += c.MonitorProbes
	dst.UEsAttached += c.UEsAttached
	dst.UEsFinished += c.UEsFinished
	dst.AdmissionDeferrals += c.AdmissionDeferrals
}

// Write renders the results as a deterministic text report (fixed field
// set, %v float formatting — shortest round-trip representation, so two
// byte-identical Results render to byte-identical reports; the CI
// determinism diff relies on this).
func (r Results) Write(w io.Writer) {
	fmt.Fprintf(w, "metro: %d sites / %d cells, %d frames, %d UE-sessions (%d measured, %d resident)\n",
		r.Sites, r.Cells, r.Frames, r.UEs, r.Measured, r.ResidentUEs)
	fmt.Fprintf(w, "serving:   rel=%v thr=%v bps slots=%v worstOutage=%v ms\n",
		r.Serving.Reliability, r.Serving.MeanThroughput, r.Slots, r.WorstOutageMs)
	fmt.Fprintf(w, "diversity: rel=%v thr=%v bps worstOutage=%v ms\n",
		r.Diversity.Reliability, r.Diversity.MeanThroughput, r.DivWorstOutageMs)
	fmt.Fprintf(w, "handovers=%d pingpongs=%d retargets=%d probes=%d deferrals=%d overhead=%v%%\n",
		r.Handovers, r.PingPongs, r.Counters.StandbyRetargets,
		r.Counters.MonitorProbes, r.Counters.AdmissionDeferrals, r.OverheadPct)
	fmt.Fprintf(w, "relhist=%v\n", r.RelHist)
	for i, s := range r.PerShard {
		fmt.Fprintf(w, "shard %02d: sites=%d ues=%d slots=%d rel=%v thr=%v ho=%d\n",
			i, s.Sites, s.UEs, s.Slots, s.Serving.Reliability, s.Serving.MeanThroughput, s.Handovers)
	}
}
