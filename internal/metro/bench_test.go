package metro

import (
	"fmt"
	"testing"

	"mmreliable/internal/nr"
)

// BenchmarkMetroFrame measures the steady-state cost of advancing one metro
// frame with churn off (quiescent city: every site past warmup, sessions
// never end, fading disabled) — the per-frame hot path with zero steady-state
// allocations. UEs/sec is the headline throughput metric: resident UEs times
// frames advanced per wall-clock second.
// BenchmarkMetroFrameMixed measures the mixed mobile/static churn city —
// the incremental frame engine's honest workload: a quarter of the UEs pace
// the hall at walking speed (full recompute every slot — the temporal-
// coherence fast paths never fire for them), the rest sit still (quiescent
// fast paths), and session churn keeps arrivals and harvests flowing.
// UEs/sec counts resident-UE-frames per wall-clock second, sampled every
// frame because churn moves the population.
func BenchmarkMetroFrameMixed(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Clusters = 8
	cfg.Workers = 1
	cfg.MobileFraction = 0.25
	m, err := New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer m.Close()
	for i := 0; i < 40; i++ {
		m.AdvanceFrame()
	}
	b.ReportAllocs()
	b.ResetTimer()
	ueFrames := 0
	for i := 0; i < b.N; i++ {
		ueFrames += m.ResidentUEs()
		m.AdvanceFrame()
	}
	b.StopTimer()
	b.ReportMetric(float64(ueFrames)/b.Elapsed().Seconds(), "UEs/sec")
}

func BenchmarkMetroFrame(b *testing.B) {
	for _, workers := range []int{1, 4} {
		for _, sites := range []int{8, 64} {
			b.Run(fmt.Sprintf("sites=%d/workers=%d", sites, workers), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Clusters = sites
				cfg.Workers = workers
				cfg.ChurnArrivalRate = 0 // sessions never end: no harvest, no churn allocs
				m, err := New(nr.Mu3(), cfg)
				if err != nil {
					b.Fatalf("New: %v", err)
				}
				defer m.Close()
				// Warm past cluster warmup and the first natural retrains so
				// every per-site scratch buffer is sized.
				for i := 0; i < 40; i++ {
					m.AdvanceFrame()
				}
				ues := m.ResidentUEs()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.AdvanceFrame()
				}
				b.StopTimer()
				b.ReportMetric(float64(ues*b.N)/b.Elapsed().Seconds(), "UEs/sec")
			})
		}
	}
}
