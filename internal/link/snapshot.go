package link

import (
	"fmt"
	"math"

	"mmreliable/internal/core"
)

// MeterState is the exact, serializable image of a Meter — the service
// layer's snapshot unit for per-link reliability state. Floating-point
// accumulators are stored as IEEE-754 bit patterns (uint64), so a
// JSON round trip reproduces every field bit for bit, including the +Inf
// that minSNR starts at. The episode ring is normalized to onset order
// (oldest first, RunsBits[0] = oldest retained episode), which a restored
// meter adopts with ring start 0 — observably identical to the original
// (OutageDurations walks in onset order; recordRun overwrites the oldest).
type MeterState struct {
	Slots       int      `json:"slots"`
	Available   int      `json:"available"`
	ThrSumBits  uint64   `json:"thr_sum_bits"`
	SNRSumBits  uint64   `json:"snr_sum_bits"`
	MinSNRBits  uint64   `json:"min_snr_bits"`
	OutageRuns  int      `json:"outage_runs"`
	InOutage    bool     `json:"in_outage"`
	CurRun      int      `json:"cur_run"`
	TotalOutage int      `json:"total_outage"`
	MaxRun      int      `json:"max_run"`
	RunsBits    []uint64 `json:"runs_bits,omitempty"`
	RunsDropped int      `json:"runs_dropped"`
	LeadRun     int      `json:"lead_run"`
}

// Snapshot captures the meter's exact state. Safe between frames.
func (m *Meter) Snapshot() MeterState {
	s := MeterState{
		Slots:       m.slots,
		Available:   m.available,
		ThrSumBits:  math.Float64bits(m.thrSum),
		SNRSumBits:  math.Float64bits(m.snrSum),
		MinSNRBits:  math.Float64bits(m.minSNR),
		OutageRuns:  m.outageRuns,
		InOutage:    m.inOutage,
		CurRun:      m.curRun,
		TotalOutage: m.totalOutage,
		MaxRun:      m.maxRun,
		RunsDropped: m.runsDropped,
		LeadRun:     m.leadRun,
	}
	if len(m.runs) > 0 {
		s.RunsBits = make([]uint64, 0, len(m.runs))
		for _, part := range [2][]float64{m.runs[m.runsStart:], m.runs[:m.runsStart]} {
			for _, r := range part {
				s.RunsBits = append(s.RunsBits, math.Float64bits(r))
			}
		}
	}
	return s
}

// Restore materializes a meter that continues exactly where the
// snapshotted one left off: every subsequent Record / Merge / accessor
// behaves as on the original.
func (s MeterState) Restore() (*Meter, error) {
	if s.Slots < 0 || s.Available < 0 || s.Available > s.Slots ||
		s.TotalOutage < 0 || s.TotalOutage > s.Slots ||
		s.CurRun < 0 || s.CurRun > s.TotalOutage ||
		s.RunsDropped < 0 || len(s.RunsBits) > maxOutageRuns {
		return nil, fmt.Errorf("link: inconsistent meter state (slots %d, available %d, outage %d, ring %d)",
			s.Slots, s.Available, s.TotalOutage, len(s.RunsBits))
	}
	m := &Meter{
		slots:       s.Slots,
		available:   s.Available,
		thrSum:      math.Float64frombits(s.ThrSumBits),
		snrSum:      math.Float64frombits(s.SNRSumBits),
		minSNR:      math.Float64frombits(s.MinSNRBits),
		outageRuns:  s.OutageRuns,
		inOutage:    s.InOutage,
		curRun:      s.CurRun,
		totalOutage: s.TotalOutage,
		maxRun:      s.MaxRun,
		runsDropped: s.RunsDropped,
		leadRun:     s.LeadRun,
	}
	if len(s.RunsBits) > 0 {
		m.runs = make([]float64, 0, maxOutageRuns)
		for _, bits := range s.RunsBits {
			m.runs = append(m.runs, math.Float64frombits(bits))
		}
	}
	return m, nil
}

// Digest folds the meter's exact state (ring in onset order) into d.
func (m *Meter) Digest(d *core.Digest) {
	d.Int(m.slots)
	d.Int(m.available)
	d.Float64(m.thrSum)
	d.Float64(m.snrSum)
	d.Float64(m.minSNR)
	d.Int(m.outageRuns)
	d.Bool(m.inOutage)
	d.Int(m.curRun)
	d.Int(m.totalOutage)
	d.Int(m.maxRun)
	d.Int(len(m.runs))
	for _, part := range [2][]float64{m.runs[m.runsStart:], m.runs[:m.runsStart]} {
		for _, r := range part {
			d.Float64(r)
		}
	}
	d.Int(m.runsDropped)
	d.Int(m.leadRun)
}
