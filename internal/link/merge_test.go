package link

import (
	"math"
	"math/rand"
	"testing"
)

// slotStream is a randomly generated sequence of Record inputs with bursty
// outages (runs of sub-threshold SNR and training slots), so splits land
// inside episodes often enough to exercise Merge's boundary fusion.
func slotStream(rng *rand.Rand, n int) ([]float64, []bool, []float64) {
	snr := make([]float64, n)
	training := make([]bool, n)
	thr := make([]float64, n)
	i := 0
	for i < n {
		burst := 1 + rng.Intn(9)
		down := rng.Float64() < 0.45
		for j := 0; j < burst && i < n; j++ {
			switch {
			case down && rng.Float64() < 0.1:
				snr[i] = math.Inf(-1) // deep fade: no finite SNR sample
			case down:
				snr[i] = OutageThresholdDB - 1 - 10*rng.Float64()
			default:
				snr[i] = OutageThresholdDB + 1 + 20*rng.Float64()
			}
			training[i] = rng.Float64() < 0.05
			if !training[i] && snr[i] >= OutageThresholdDB {
				thr[i] = 1e8 * rng.Float64()
			}
			i++
		}
	}
	return snr, training, thr
}

func feed(m *Meter, snr []float64, training []bool, thr []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		m.Record(snr[i], training[i], thr[i])
	}
}

// diffMeters fails the test unless merged reports exactly what whole does
// (float sums within reassociation tolerance).
func diffMeters(t *testing.T, tag string, merged, whole *Meter) {
	t.Helper()
	approx := func(name string, a, b float64) {
		t.Helper()
		if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
			t.Fatalf("%s: %s = %g, want %g", tag, name, a, b)
		}
	}
	if merged.Slots() != whole.Slots() {
		t.Fatalf("%s: slots %d != %d", tag, merged.Slots(), whole.Slots())
	}
	if merged.available != whole.available {
		t.Fatalf("%s: available %d != %d", tag, merged.available, whole.available)
	}
	if merged.OutageEvents() != whole.OutageEvents() {
		t.Fatalf("%s: episodes %d != %d", tag, merged.OutageEvents(), whole.OutageEvents())
	}
	if merged.OutageSlots() != whole.OutageSlots() {
		t.Fatalf("%s: outage slots %d != %d", tag, merged.OutageSlots(), whole.OutageSlots())
	}
	if merged.MaxOutageSlots() != whole.MaxOutageSlots() {
		t.Fatalf("%s: max episode %d != %d", tag, merged.MaxOutageSlots(), whole.MaxOutageSlots())
	}
	if merged.MinSNRdB() != whole.MinSNRdB() {
		t.Fatalf("%s: min SNR %g != %g", tag, merged.MinSNRdB(), whole.MinSNRdB())
	}
	if merged.DroppedOutageRuns() != whole.DroppedOutageRuns() {
		t.Fatalf("%s: dropped runs %d != %d", tag, merged.DroppedOutageRuns(), whole.DroppedOutageRuns())
	}
	if merged.curRun != whole.curRun || merged.inOutage != whole.inOutage {
		t.Fatalf("%s: open episode (%d,%v) != (%d,%v)",
			tag, merged.curRun, merged.inOutage, whole.curRun, whole.inOutage)
	}
	if merged.leadRun != whole.leadRun {
		t.Fatalf("%s: leadRun %d != %d", tag, merged.leadRun, whole.leadRun)
	}
	approx("mean throughput", merged.MeanThroughput(), whole.MeanThroughput())
	approx("mean SNR", merged.MeanSNRdB(), whole.MeanSNRdB())
	gd := merged.OutageDurations(nil)
	wd := whole.OutageDurations(nil)
	if len(gd) != len(wd) {
		t.Fatalf("%s: %d retained durations != %d", tag, len(gd), len(wd))
	}
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: duration[%d] = %g, want %g", tag, i, gd[i], wd[i])
		}
	}
}

// TestMeterMergeMatchesConcatenation property-tests the streaming-merge
// contract: for random bursty streams and random split points, feeding two
// meters and merging equals feeding one meter the concatenated stream —
// including splits inside outage episodes (boundary fusion), all-outage
// chunks, empty chunks, and histories past the bounded-ring capacity.
func TestMeterMergeMatchesConcatenation(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Long enough that later seeds close >maxOutageRuns episodes.
		n := 50 + rng.Intn(4000)
		snr, training, thr := slotStream(rng, n)
		whole := NewMeter()
		feed(whole, snr, training, thr, 0, n)

		for trial := 0; trial < 8; trial++ {
			cut := rng.Intn(n + 1) // includes empty prefix and empty suffix
			a, b := NewMeter(), NewMeter()
			feed(a, snr, training, thr, 0, cut)
			feed(b, snr, training, thr, cut, n)
			a.Merge(b)
			diffMeters(t, "2-way", a, whole)
		}

		// Multi-way fold in order, random chunking: the metro reduction.
		acc := NewMeter()
		lo := 0
		for lo < n {
			hi := lo + 1 + rng.Intn(200)
			if hi > n {
				hi = n
			}
			c := NewMeter()
			feed(c, snr, training, thr, lo, hi)
			acc.Merge(c)
			lo = hi
		}
		diffMeters(t, "k-way", acc, whole)
	}
}

// TestMeterMergeAllOutageChunks pins the fully-degenerate fusions: chains
// of chunks that are outage from first slot to last must merge into one
// episode, never several.
func TestMeterMergeAllOutageChunks(t *testing.T) {
	acc := NewMeter()
	for c := 0; c < 5; c++ {
		m := NewMeter()
		for i := 0; i < 10; i++ {
			m.Record(OutageThresholdDB-5, false, 0)
		}
		acc.Merge(m)
	}
	if acc.OutageEvents() != 1 {
		t.Fatalf("5 all-outage chunks merged into %d episodes, want 1", acc.OutageEvents())
	}
	if acc.MaxOutageSlots() != 50 || acc.OutageSlots() != 50 {
		t.Fatalf("fused episode = %d slots (total %d), want 50", acc.MaxOutageSlots(), acc.OutageSlots())
	}
	// Close it and check the single recorded duration.
	acc.Record(OutageThresholdDB+5, false, 1e8)
	if d := acc.OutageDurations(nil); len(d) != 1 || d[0] != 50 {
		t.Fatalf("durations = %v, want [50]", d)
	}
}

// TestMeterMergeDoesNotMutateOther guards the reduction tree: the right
// operand must stay usable after being merged from.
func TestMeterMergeDoesNotMutateOther(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	snr, training, thr := slotStream(rng, 300)
	b := NewMeter()
	feed(b, snr, training, thr, 0, 300)
	before := b.Summarize()
	beforeDur := b.OutageDurations(nil)

	a := NewMeter()
	feed(a, snr, training, thr, 0, 150)
	a.Merge(b)

	if b.Summarize() != before {
		t.Fatal("Merge mutated its argument's summary")
	}
	afterDur := b.OutageDurations(nil)
	if len(afterDur) != len(beforeDur) {
		t.Fatal("Merge mutated its argument's episode history")
	}
	for i := range afterDur {
		if afterDur[i] != beforeDur[i] {
			t.Fatal("Merge mutated its argument's episode history")
		}
	}
}
