package link

import (
	"math"
	"testing"
)

func TestSINRdB(t *testing.T) {
	// No interference: plain SNR.
	if got, want := SINRdB(1e-6, 0, 1e-9), 30.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("SINRdB no-interference = %.12f, want %.12f", got, want)
	}
	// Interference-limited: zero noise.
	if got, want := SINRdB(1e-6, 1e-7, 0), 10.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("SINRdB interference-limited = %.12f, want %.12f", got, want)
	}
	if got := SINRdB(0, 1e-7, 1e-9); !math.IsInf(got, -1) {
		t.Fatalf("zero signal = %g, want -Inf", got)
	}
}

// TestWidebandSINRZeroInterferenceMatchesSNR: with an all-zero
// interference profile the SINR fold must agree with the wideband SNR
// computed from the same per-subcarrier channel.
func TestWidebandSINRZeroInterferenceMatchesSNR(t *testing.T) {
	b := DefaultBudget()
	txLin, noiseLin := b.SNRTerms()
	const nsc = 64
	re := make([]float64, nsc)
	im := make([]float64, nsc)
	sig := make([]float64, nsc)
	intf := make([]float64, nsc)
	for j := 0; j < nsc; j++ {
		re[j] = 1.3e-4 * math.Cos(0.05*float64(j))
		im[j] = 1.3e-4 * math.Sin(0.05*float64(j))
		sig[j] = txLin * (re[j]*re[j] + im[j]*im[j])
	}
	got := WidebandSINRdB(sig, intf, noiseLin)
	want := WidebandSNRdBSplitTerms(re, im, txLin, noiseLin)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("zero-interference wideband SINR %.12f dB != SNR %.12f dB", got, want)
	}
}

func TestWidebandSINRInterferencePenalty(t *testing.T) {
	sig := []float64{1e-7, 1e-7, 1e-7, 1e-7}
	clean := make([]float64, 4)
	dirty := []float64{1e-8, 1e-8, 1e-8, 1e-8}
	noise := 1e-9
	a := WidebandSINRdB(sig, clean, noise)
	b := WidebandSINRdB(sig, dirty, noise)
	if b >= a {
		t.Fatalf("interference did not reduce SINR: %.3f vs %.3f", b, a)
	}
	// 1e-7/(1e-8+1e-9) ≈ 9.59 dB flat profile.
	want := 10 * math.Log10(1e-7/(1e-8+1e-9))
	if math.Abs(b-want) > 1e-9 {
		t.Fatalf("flat-profile SINR %.12f, want %.12f", b, want)
	}
}

func TestWidebandSINRDegenerate(t *testing.T) {
	if got := WidebandSINRdB(nil, nil, 1e-9); !math.IsInf(got, -1) {
		t.Fatalf("empty profile = %g, want -Inf", got)
	}
	if got := WidebandSINRdB([]float64{1}, []float64{1, 2}, 1e-9); !math.IsInf(got, -1) {
		t.Fatalf("mismatched profile = %g, want -Inf", got)
	}
	if got := WidebandSINRdB([]float64{0, 0}, []float64{0, 0}, 1e-9); !math.IsInf(got, -1) {
		t.Fatalf("zero signal = %g, want -Inf", got)
	}
}
