package link

import (
	"math"
	"testing"

	"mmreliable/internal/cmx"
)

func TestNoiseFloor(t *testing.T) {
	b := DefaultBudget()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// −174 + 10·log10(400e6) + 7 ≈ −80.98 dBm.
	if got := b.NoiseFloorDBm(); math.Abs(got+80.98) > 0.05 {
		t.Fatalf("noise floor = %g", got)
	}
	bad := Budget{BandwidthHz: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
}

func TestSNRMatchesPaperIndoorScale(t *testing.T) {
	// 7 m indoor link at 28 GHz with an 8-element array:
	// FSPL(7 m) ≈ 78.3 dB, array gain 9 dB ⇒ |h_eff| ≈ 10^(−69.3/20).
	b := DefaultBudget()
	heff := math.Pow(10, -(78.3-9.0)/20)
	snr := b.SNRdB(heff)
	// Paper Fig. 15a: ≈27 dB peak indoors.
	if snr < 23 || snr > 30 {
		t.Fatalf("indoor SNR = %g dB, want ≈27", snr)
	}
	if !math.IsInf(b.SNRdB(0), -1) {
		t.Fatal("zero channel should be −Inf SNR")
	}
}

func TestWidebandSNRFlatEqualsNarrowband(t *testing.T) {
	b := DefaultBudget()
	amp := 3e-4
	csi := make(cmx.Vector, 32)
	for i := range csi {
		csi[i] = complex(amp, 0)
	}
	wb := b.WidebandSNRdB(csi)
	nb := b.SNRdB(amp)
	if math.Abs(wb-nb) > 0.01 {
		t.Fatalf("flat wideband %g vs narrowband %g", wb, nb)
	}
}

func TestWidebandSNRPenalizesSelectivity(t *testing.T) {
	b := DefaultBudget()
	amp := 3e-4
	flat := make(cmx.Vector, 32)
	dips := make(cmx.Vector, 32)
	for i := range flat {
		flat[i] = complex(amp, 0)
		if i%4 == 0 {
			dips[i] = complex(amp/100, 0) // deep fade on 1/4 of the band
		} else {
			dips[i] = complex(amp*1.15, 0) // energy moved to the rest
		}
	}
	if b.WidebandSNRdB(dips) >= b.WidebandSNRdB(flat) {
		t.Fatal("selective channel should have lower effective SNR")
	}
	if !math.IsInf(b.WidebandSNRdB(nil), -1) {
		t.Fatal("empty CSI should be −Inf")
	}
}

func TestNoiseToTxAmpRatio(t *testing.T) {
	b := DefaultBudget()
	r := b.NoiseToTxAmpRatio()
	// SNR for a channel amplitude equal to the ratio should be 0 dB.
	if snr := b.SNRdB(r); math.Abs(snr) > 1e-9 {
		t.Fatalf("SNR at noise-amplitude channel = %g, want 0", snr)
	}
}

func TestCQILadderMonotone(t *testing.T) {
	prevSNR, prevEff := math.Inf(-1), 0.0
	for _, e := range CQITable {
		if e.MinSNRdB <= prevSNR {
			t.Fatalf("CQI %d threshold not increasing", e.Index)
		}
		if e.Efficiency <= prevEff {
			t.Fatalf("CQI %d efficiency not increasing", e.Index)
		}
		prevSNR, prevEff = e.MinSNRdB, e.Efficiency
	}
}

func TestCQIFromSNR(t *testing.T) {
	if _, ok := CQIFromSNR(-10); ok {
		t.Fatal("-10 dB should be out of range")
	}
	e, ok := CQIFromSNR(-6.7)
	if !ok || e.Index != 1 {
		t.Fatalf("at −6.7 dB got %+v", e)
	}
	e, _ = CQIFromSNR(12)
	if e.Index != 10 {
		t.Fatalf("at 12 dB got CQI %d", e.Index)
	}
	e, _ = CQIFromSNR(50)
	if e.Index != 15 {
		t.Fatalf("at 50 dB got CQI %d", e.Index)
	}
}

func TestSpectralEfficiencyOutageGate(t *testing.T) {
	// Below 6 dB → 0 even though CQI 1-7 would decode.
	if got := SpectralEfficiency(5.9); got != 0 {
		t.Fatalf("below-threshold efficiency %g", got)
	}
	if got := SpectralEfficiency(6.0); got <= 0 {
		t.Fatal("at-threshold efficiency should be positive")
	}
	// Paper's ≈1.5 bits/s/Hz average implies SNR around CQI 4-5; check scale.
	if eff := SpectralEfficiency(8.5); eff < 2.5 || eff > 4 {
		t.Fatalf("efficiency at 8.5 dB = %g", eff)
	}
}

func TestThroughput(t *testing.T) {
	// 27 dB, 400 MHz, no overhead → CQI 15: 7.4063 b/s/Hz ⇒ ≈2.96 Gb/s.
	got := Throughput(27, 400e6, 0)
	if math.Abs(got-7.4063*400e6) > 1 {
		t.Fatalf("throughput = %g", got)
	}
	if Throughput(27, 400e6, 0.5) != got/2 {
		t.Fatal("overhead scaling wrong")
	}
	if Throughput(27, 400e6, 1.2) != 0 {
		t.Fatal("overhead ≥ 1 should zero throughput")
	}
	if Throughput(27, 400e6, -0.5) != got {
		t.Fatal("negative overhead should clamp to 0")
	}
	if Throughput(0, 400e6, 0) != 0 {
		t.Fatal("below-outage throughput should be 0")
	}
}

func TestMeterReliability(t *testing.T) {
	m := NewMeter()
	if m.Reliability() != 0 || m.MeanThroughput() != 0 {
		t.Fatal("empty meter should report zeros")
	}
	// 6 good slots, 2 outage, 2 training.
	for i := 0; i < 6; i++ {
		m.Record(20, false, 1e9)
	}
	m.Record(3, false, 0)
	m.Record(2, false, 0)
	m.Record(25, true, 0)
	m.Record(25, true, 0)
	if m.Slots() != 10 {
		t.Fatalf("slots = %d", m.Slots())
	}
	if got := m.Reliability(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("reliability = %g", got)
	}
	if got := m.MeanThroughput(); math.Abs(got-6e8) > 1 {
		t.Fatalf("mean throughput = %g", got)
	}
	if got := m.TRProduct(); math.Abs(got-3.6e8) > 1 {
		t.Fatalf("TR product = %g", got)
	}
	if m.MinSNRdB() != 2 {
		t.Fatalf("min SNR = %g", m.MinSNRdB())
	}
}

func TestMeterOutageEpisodes(t *testing.T) {
	m := NewMeter()
	seq := []float64{20, 3, 3, 20, 3, 20, 20}
	for _, s := range seq {
		m.Record(s, false, 0)
	}
	if got := m.OutageEvents(); got != 2 {
		t.Fatalf("outage episodes = %d want 2", got)
	}
}

func TestMeterOutageDurations(t *testing.T) {
	m := NewMeter()
	// 20 | 3 3 3 | 20 | 3 | 20 20 | 3 3 (open episode)
	seq := []float64{20, 3, 3, 3, 20, 3, 20, 20, 3, 3}
	for _, s := range seq {
		m.Record(s, false, 0)
	}
	if got := m.OutageSlots(); got != 6 {
		t.Fatalf("outage slots = %d want 6", got)
	}
	if got := m.MaxOutageSlots(); got != 3 {
		t.Fatalf("max outage run = %d want 3", got)
	}
	durs := m.OutageDurations(nil)
	want := []float64{3, 1, 2} // closed 3, closed 1, open 2
	if len(durs) != len(want) {
		t.Fatalf("durations %v want %v", durs, want)
	}
	for i := range want {
		if durs[i] != want[i] {
			t.Fatalf("durations %v want %v", durs, want)
		}
	}
	// Closing the open episode moves it into the closed list unchanged.
	m.Record(20, false, 0)
	durs = m.OutageDurations(durs[:0])
	if len(durs) != 3 || durs[2] != 2 {
		t.Fatalf("durations after close %v", durs)
	}
	s := m.Summarize()
	if s.OutageSlots != 6 || s.MaxOutageSlots != 3 {
		t.Fatalf("summary outage fields %+v", s)
	}
	// Training slots count toward outage durations too (the paper charges
	// training time against availability).
	m2 := NewMeter()
	m2.Record(20, true, 0)
	if m2.OutageSlots() != 1 || m2.MaxOutageSlots() != 1 {
		t.Fatalf("training slot not counted: %d/%d", m2.OutageSlots(), m2.MaxOutageSlots())
	}
}

// TestMeterOutageRingBound pins the bounded episode history: past
// maxOutageRuns closed episodes the ring overwrites the oldest in place
// (no allocation), keeps the most recent ones in onset order, and leaves
// the aggregate counters exact.
func TestMeterOutageRingBound(t *testing.T) {
	m := NewMeter()
	// Close maxOutageRuns+10 episodes of increasing length 1, 2, 3, ...
	total := maxOutageRuns + 10
	for i := 1; i <= total; i++ {
		for j := 0; j < i; j++ {
			m.Record(0, false, 0) // outage slot
		}
		m.Record(20, false, 0) // closes the episode
	}
	if got := m.OutageEvents(); got != total {
		t.Fatalf("OutageEvents = %d want %d", got, total)
	}
	if got := m.MaxOutageSlots(); got != total {
		t.Fatalf("MaxOutageSlots = %d want %d", got, total)
	}
	if got := m.DroppedOutageRuns(); got != 10 {
		t.Fatalf("DroppedOutageRuns = %d want 10", got)
	}
	durs := m.OutageDurations(nil)
	if len(durs) != maxOutageRuns {
		t.Fatalf("retained %d durations want %d", len(durs), maxOutageRuns)
	}
	// The most recent maxOutageRuns episodes, oldest first: 11, 12, ..., total.
	for i, d := range durs {
		if want := float64(11 + i); d != want {
			t.Fatalf("durs[%d] = %g want %g", i, d, want)
		}
	}
	// The full ring no longer allocates per episode.
	avg := testing.AllocsPerRun(20, func() {
		m.Record(0, false, 0)
		m.Record(20, false, 0)
	})
	if avg != 0 {
		t.Fatalf("full ring allocates %.1f allocs/episode, want 0", avg)
	}
}

func TestMeterInfSNR(t *testing.T) {
	m := NewMeter()
	m.Record(math.Inf(-1), false, 0)
	m.Record(10, false, 5e8)
	// −Inf must not poison the mean.
	if got := m.MeanSNRdB(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean SNR = %g", got)
	}
}

func TestSummary(t *testing.T) {
	m := NewMeter()
	m.Record(20, false, 1e9)
	s := m.Summarize()
	if s.Reliability != 1 || s.MeanThroughput != 1e9 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}
