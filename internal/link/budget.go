// Package link converts channel observables into link-level metrics: SNR
// from a link budget, SNR to throughput via the 5G NR CQI/MCS spectral
// efficiency table, the 6 dB outage threshold the paper uses for decodable
// 5G NR OFDM, and the reliability bookkeeping behind the paper's
// throughput–reliability product.
package link

import (
	"fmt"
	"math"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

// OutageThresholdDB is the minimum SNR for a decodable 5G NR OFDM link
// (§6.1 of the paper: "below the outage threshold of 6 dB SNR").
const OutageThresholdDB = 6.0

// Budget is a transmit/noise power budget. Channel gains produced by the
// channel package are linear field amplitudes including path loss and array
// gain, so received power is TxPowerDBm + 20·log10(|h_eff|).
type Budget struct {
	TxPowerDBm    float64 // total radiated power
	NoiseFigureDB float64
	BandwidthHz   float64
}

// DefaultBudget matches the paper's small-cell testbed scale: with an
// 8-element azimuth array this yields ≈27 dB SNR at 7 m indoors (Fig. 15a)
// and single-digit SNR at 80 m outdoors without UE beamforming.
func DefaultBudget() Budget {
	return Budget{TxPowerDBm: 15, NoiseFigureDB: 7, BandwidthHz: 400e6}
}

// Validate checks the budget fields.
func (b Budget) Validate() error {
	if b.BandwidthHz <= 0 {
		return fmt.Errorf("link: non-positive bandwidth %g", b.BandwidthHz)
	}
	return nil
}

// NoiseFloorDBm returns the thermal noise power over the budget bandwidth:
// −174 dBm/Hz + 10·log10(B) + NF.
func (b Budget) NoiseFloorDBm() float64 {
	return -174 + 10*math.Log10(b.BandwidthHz) + b.NoiseFigureDB
}

// SNRdB returns the link SNR for an effective scalar channel amplitude
// |h_eff| (linear).
func (b Budget) SNRdB(heffAbs float64) float64 {
	if heffAbs <= 0 {
		return math.Inf(-1)
	}
	rxDBm := b.TxPowerDBm + 20*math.Log10(heffAbs)
	return rxDBm - b.NoiseFloorDBm()
}

// WidebandSNRdB returns the effective wideband SNR of a per-subcarrier
// channel estimate: the capacity-equivalent SNR
//
//	SNR_eff = 2^(mean_k log2(1 + SNR_k)) − 1,
//
// which penalizes frequency-selective dips the way a real decoder does.
func (b Budget) WidebandSNRdB(csi cmx.Vector) float64 {
	if len(csi) == 0 {
		return math.Inf(-1)
	}
	noiseLin := math.Pow(10, b.NoiseFloorDBm()/10)
	txLin := math.Pow(10, b.TxPowerDBm/10)
	var sumLog float64
	for _, h := range csi {
		p := real(h)*real(h) + imag(h)*imag(h)
		snr := txLin * p / noiseLin
		sumLog += math.Log2(1 + snr)
	}
	eff := math.Exp2(sumLog/float64(len(csi))) - 1
	if eff <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(eff)
}

// SNRTerms returns the linear transmit and noise powers of the budget — the
// two math.Pow evaluations inside every WidebandSNRdB call, hoisted so a
// slot loop can compute them once and use WidebandSNRdBSplitTerms per
// evaluation.
func (b Budget) SNRTerms() (txLin, noiseLin float64) {
	return math.Pow(10, b.TxPowerDBm/10), math.Pow(10, b.NoiseFloorDBm()/10)
}

// WidebandSNRdBSplit is WidebandSNRdB over a planar per-subcarrier channel
// estimate (separate re/im slices, the batched-kernel layout).
func (b Budget) WidebandSNRdBSplit(re, im []float64) float64 {
	txLin, noiseLin := b.SNRTerms()
	return WidebandSNRdBSplitTerms(re, im, txLin, noiseLin)
}

// WidebandSNRdBSplitTerms is WidebandSNRdBSplit with the budget's linear
// terms (see SNRTerms) precomputed by the caller. The capacity sum runs on
// the active DSP kernel; under dsp.Reference the arithmetic is identical to
// WidebandSNRdB.
func WidebandSNRdBSplitTerms(re, im []float64, txLin, noiseLin float64) float64 {
	if len(re) == 0 {
		return math.Inf(-1)
	}
	sumLog := dsp.Active().SumLog2SNR(re, im, txLin, noiseLin)
	eff := math.Exp2(sumLog/float64(len(re))) - 1
	if eff <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(eff)
}

// WidebandSNRdBFromMags is WidebandSNRdB computed from per-subcarrier
// channel magnitudes (the CFO/SFO-proof observable a sounder provides).
func (b Budget) WidebandSNRdBFromMags(mags []float64) float64 {
	if len(mags) == 0 {
		return math.Inf(-1)
	}
	noiseLin := math.Pow(10, b.NoiseFloorDBm()/10)
	txLin := math.Pow(10, b.TxPowerDBm/10)
	var sumLog float64
	for _, m := range mags {
		snr := txLin * m * m / noiseLin
		sumLog += math.Log2(1 + snr)
	}
	eff := math.Exp2(sumLog/float64(len(mags))) - 1
	if eff <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(eff)
}

// NoiseToTxAmpRatio returns the per-subcarrier noise amplitude relative to
// unit transmit amplitude — the standard deviation a channel sounder should
// add to each CSI sample (per complex dimension it is this value divided by
// √2).
func (b Budget) NoiseToTxAmpRatio() float64 {
	return math.Pow(10, (b.NoiseFloorDBm()-b.TxPowerDBm)/20)
}
