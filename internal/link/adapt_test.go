package link

import (
	"math"
	"math/rand"
	"testing"
)

func TestRateAdapterValidate(t *testing.T) {
	if err := NewRateAdapter().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &RateAdapter{StepUpDB: 0, StepDownDB: 0.1, MaxMarginDB: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero step should fail")
	}
}

func TestNoTransmissionWithoutEstimate(t *testing.T) {
	r := NewRateAdapter()
	if thr, ok := r.Transmit(30, 400e6); ok || thr != 0 {
		t.Fatal("transmitted without any estimate")
	}
}

func TestPerfectEstimateMatchesGenie(t *testing.T) {
	r := NewRateAdapter()
	const snr = 20.0
	r.Observe(snr)
	thr, ok := r.Transmit(snr, 400e6)
	if !ok {
		t.Fatal("transmission failed with a perfect estimate")
	}
	if want := Throughput(snr, 400e6, 0); math.Abs(thr-want) > 1 {
		t.Fatalf("throughput %g vs genie %g", thr, want)
	}
}

func TestOptimisticEstimateFailsThenBacksOff(t *testing.T) {
	r := NewRateAdapter()
	r.Observe(22) // true channel is only 15 dB: 7 dB optimistic
	fails := 0
	for i := 0; i < 20; i++ {
		if _, ok := r.Transmit(15, 400e6); !ok {
			fails++
		} else {
			break
		}
	}
	if fails == 0 {
		t.Fatal("optimistic MCS never failed")
	}
	if r.MarginDB() == 0 {
		t.Fatal("margin did not grow after NACKs")
	}
	// After backing off, transmissions succeed again.
	if _, ok := r.Transmit(15, 400e6); !ok {
		t.Fatalf("still failing after %g dB margin", r.MarginDB())
	}
}

func TestOutageGate(t *testing.T) {
	r := NewRateAdapter()
	r.Observe(5) // below the 6 dB threshold
	thr, ok := r.Transmit(5, 400e6)
	if ok || thr != 0 {
		t.Fatal("transmitted below the outage threshold")
	}
	if r.Acks+r.Nacks != 0 {
		t.Fatal("outage gate should not count as a transmission")
	}
}

func TestMarginCaps(t *testing.T) {
	r := NewRateAdapter()
	r.Observe(25)
	for i := 0; i < 100; i++ {
		r.Transmit(-30, 400e6) // every block fails
	}
	if r.MarginDB() > r.MaxMarginDB {
		t.Fatalf("margin %g exceeded cap", r.MarginDB())
	}
	// Margin decays to zero under sustained success.
	r2 := NewRateAdapter()
	r2.marginDB = 3
	r2.Observe(20)
	for i := 0; i < 100; i++ {
		r2.Transmit(30, 400e6)
	}
	if r2.MarginDB() != 0 {
		t.Fatalf("margin %g did not decay to 0", r2.MarginDB())
	}
}

func TestOLLAConvergesToBLERTarget(t *testing.T) {
	// Noisy estimates (±2 dB) on a fading channel: the outer loop should
	// settle near the StepDown/StepUp = 10% BLER target.
	r := NewRateAdapter()
	rng := rand.New(rand.NewSource(9))
	const meanSNR = 18.0
	warm := 0
	for i := 0; i < 20000; i++ {
		truth := meanSNR + 2*rng.NormFloat64()
		r.Observe(truth + 2*rng.NormFloat64())
		r.Transmit(truth, 400e6)
		if i == 2000 {
			// Discard the warm-up phase from the statistic.
			warm = r.Nacks
			r.Acks, r.Nacks = 0, 0
			_ = warm
		}
	}
	bler := r.BLER()
	if bler < 0.02 || bler > 0.25 {
		t.Fatalf("steady-state BLER %g, want ≈0.1", bler)
	}
}

func TestAdaptiveThroughputCloseToGenie(t *testing.T) {
	// With good estimates, the adapter's long-run throughput lands within
	// ~20% of the genie's.
	r := NewRateAdapter()
	rng := rand.New(rand.NewSource(10))
	var genie, adaptive float64
	const meanSNR = 15.0
	for i := 0; i < 10000; i++ {
		truth := meanSNR + 1.5*rng.NormFloat64()
		genie += Throughput(truth, 400e6, 0)
		r.Observe(truth + 1*rng.NormFloat64())
		thr, _ := r.Transmit(truth, 400e6)
		adaptive += thr
	}
	ratio := adaptive / genie
	if ratio < 0.75 || ratio > 1.02 {
		t.Fatalf("adaptive/genie throughput ratio %g", ratio)
	}
}

func TestBLERZeroBeforeTraffic(t *testing.T) {
	if NewRateAdapter().BLER() != 0 {
		t.Fatal("BLER before traffic should be 0")
	}
}
