package link

import "fmt"

// RateAdapter performs closed-loop link adaptation the way a real gNB does:
// from MEASURED SNR (CQI feedback) rather than genie channel knowledge. It
// holds the latest SNR estimate, applies an outer-loop margin driven by
// ACK/NACK outcomes (jump up on failure, decay on success — the classic
// OLLA giving a ~StepDown/StepUp BLER target), and picks the MCS from the
// adjusted estimate. A transport block whose MCS threshold exceeds the true
// SNR is lost entirely.
//
// Everything in the simulator's throughput accounting uses genie MCS by
// default (matching the paper's testbed post-processing); RateAdapter
// quantifies what measured-CQI operation costs (experiment e3).
type RateAdapter struct {
	// StepUpDB is added to the margin on each NACK.
	StepUpDB float64
	// StepDownDB is removed from the margin on each ACK.
	StepDownDB float64
	// MaxMarginDB caps the outer-loop margin.
	MaxMarginDB float64

	est      float64
	haveEst  bool
	marginDB float64

	// Acks and Nacks count transmission outcomes.
	Acks, Nacks int
}

// NewRateAdapter returns an adapter with a 10% BLER target
// (StepDown/StepUp = 0.1).
func NewRateAdapter() *RateAdapter {
	return &RateAdapter{StepUpDB: 1.0, StepDownDB: 0.1, MaxMarginDB: 10}
}

// Validate checks the adapter parameters.
func (r *RateAdapter) Validate() error {
	if r.StepUpDB <= 0 || r.StepDownDB <= 0 || r.MaxMarginDB < 0 {
		return fmt.Errorf("link: invalid OLLA steps %+v", r)
	}
	return nil
}

// Observe feeds a measured SNR (from a CSI report or probe) into the
// adapter.
func (r *RateAdapter) Observe(snrDB float64) {
	r.est = snrDB
	r.haveEst = true
}

// MarginDB returns the current outer-loop margin.
func (r *RateAdapter) MarginDB() float64 { return r.marginDB }

// Transmit selects an MCS from the margin-adjusted estimate and attempts a
// transmission against the true SNR. It returns the achieved throughput in
// bits/s (0 on failure or when the adjusted estimate is below the outage
// threshold) and whether the transport block was delivered.
func (r *RateAdapter) Transmit(trueSNRdB, bandwidthHz float64) (float64, bool) {
	if !r.haveEst {
		return 0, false
	}
	adj := r.est - r.marginDB
	if adj < OutageThresholdDB {
		// The link looks undecodable: no transmission, no OLLA update.
		return 0, false
	}
	e, ok := CQIFromSNR(adj)
	if !ok {
		return 0, false
	}
	if trueSNRdB < e.MinSNRdB {
		// Block error: the channel was worse than the estimate promised.
		r.Nacks++
		r.marginDB += r.StepUpDB
		if r.marginDB > r.MaxMarginDB {
			r.marginDB = r.MaxMarginDB
		}
		return 0, false
	}
	r.Acks++
	r.marginDB -= r.StepDownDB
	if r.marginDB < 0 {
		r.marginDB = 0
	}
	return e.Efficiency * bandwidthHz, true
}

// BLER returns the observed block error rate so far (0 before any
// transmission).
func (r *RateAdapter) BLER() float64 {
	total := r.Acks + r.Nacks
	if total == 0 {
		return 0
	}
	return float64(r.Nacks) / float64(total)
}
