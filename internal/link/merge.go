package link

// Merge folds other into m so that m afterwards reports what a single meter
// would have reported had it recorded m's slot stream followed by other's —
// the streaming-aggregation primitive the metro layer reduces per-UE meters
// with. other is not modified.
//
// Aggregate metrics (slots, availability, throughput/SNR sums, outage slot
// totals, episode counts, longest episode) merge exactly, including the
// boundary case where m ends inside an outage and other's stream begins
// inside one: concatenation fuses those into a single episode, so the
// episode count drops by one and the fused length competes for the maximum.
// The bounded episode-duration history merges to exactly what the
// concatenated meter would retain (the most recent maxOutageRuns closed
// episodes); only the floating-point throughput/SNR sums can differ from a
// sequential feed in the last ulp, since summation is reassociated.
//
// Merge order is the caller's contract for determinism: reducing shards in
// index order yields byte-identical results at any worker count.
func (m *Meter) Merge(other *Meter) {
	o := other
	if o.slots == 0 {
		return
	}
	if m.slots == 0 {
		runs := m.runs
		*m = *o
		// The ring must not share backing with other's.
		if o.runs != nil {
			if cap(runs) < len(o.runs) {
				runs = make([]float64, 0, maxOutageRuns)
			}
			m.runs = append(runs[:0], o.runs...)
		} else {
			m.runs = runs[:0]
		}
		return
	}

	oAllOutage := o.totalOutage == o.slots
	// Boundary fusion: m's open episode continues into other's leading one.
	fused := m.inOutage && o.leadRun > 0

	m.outageRuns += o.outageRuns
	if fused {
		// other counted its leading episode as a fresh one; concatenation
		// continues the episode m already counted at its onset.
		m.outageRuns--
	}
	if o.maxRun > m.maxRun {
		m.maxRun = o.maxRun
	}
	if fused {
		if fl := m.curRun + o.leadRun; fl > m.maxRun {
			m.maxRun = fl
		}
	}

	// m's leading episode: still open only while m is unbroken outage, in
	// which case other's slots extend it (entirely, if other is unbroken
	// too, else by other's leading episode). Uses pre-merge counters.
	if m.totalOutage == m.slots {
		if oAllOutage {
			m.leadRun += o.slots
		} else {
			m.leadRun += o.leadRun
		}
	}

	// Closed-episode history: replay, oldest first, every episode the
	// concatenation closes after m's retained ones. recordRun keeps the
	// ring at the most recent maxOutageRuns and counts the overflow, which
	// is exactly the concatenated meter's retention policy. Episodes other
	// already dropped stay dropped (if the fused episode's other-side half
	// was among them, its changed length is unobservable anyway).
	m.runsDropped += o.runsDropped
	if m.inOutage && !fused {
		// other opens with an available slot: the boundary closes m's
		// open episode at its current length.
		m.recordRun(float64(m.curRun))
	}
	// When the fused episode closes inside other's retained history, its
	// recorded length must grow by m's open half. other's leading episode
	// is its first closed one, so it is at the head of the retained ring
	// iff nothing was dropped.
	growFirst := fused && !oAllOutage && o.runsDropped == 0
	for _, part := range [2][]float64{o.runs[o.runsStart:], o.runs[:o.runsStart]} {
		for _, r := range part {
			if growFirst {
				r += float64(m.curRun)
				growFirst = false
			}
			m.recordRun(r)
		}
	}

	// Tail state: what episode, if any, is open after the concatenation.
	if o.inOutage {
		if oAllOutage && m.inOutage {
			m.curRun += o.curRun // one unbroken episode across the boundary
		} else {
			m.curRun = o.curRun
		}
		m.inOutage = true
	} else {
		m.curRun = 0
		m.inOutage = false
	}

	m.slots += o.slots
	m.available += o.available
	m.thrSum += o.thrSum
	m.snrSum += o.snrSum
	if o.minSNR < m.minSNR {
		m.minSNR = o.minSNR
	}
	m.totalOutage += o.totalOutage
}
