package link

// CQIEntry is one row of the 5G NR CQI table: the minimum SNR at which the
// entry's modulation and coding decodes at ≤10% BLER, and its spectral
// efficiency in bits/s/Hz.
type CQIEntry struct {
	Index      int
	Modulation string
	MinSNRdB   float64
	Efficiency float64
}

// CQITable is the 3GPP TS 38.214 Table 5.2.2.1-3 (256QAM) efficiency
// ladder with conventional SNR switching thresholds. Index 0 means "out of
// range" (no transmission).
var CQITable = []CQIEntry{
	{1, "QPSK", -6.7, 0.1523},
	{2, "QPSK", -4.7, 0.3770},
	{3, "QPSK", -2.3, 0.8770},
	{4, "16QAM", 0.2, 1.4766},
	{5, "16QAM", 2.4, 1.9141},
	{6, "16QAM", 4.3, 2.4063},
	{7, "64QAM", 5.9, 2.7305},
	{8, "64QAM", 8.1, 3.3223},
	{9, "64QAM", 10.3, 3.9023},
	{10, "64QAM", 11.7, 4.5234},
	{11, "64QAM", 14.1, 5.1152},
	{12, "256QAM", 16.3, 5.5547},
	{13, "256QAM", 18.7, 6.2266},
	{14, "256QAM", 21.0, 6.9141},
	{15, "256QAM", 22.7, 7.4063},
}

// CQIFromSNR returns the highest CQI entry whose threshold the SNR meets,
// or (CQIEntry{}, false) when the SNR supports no transmission.
func CQIFromSNR(snrDB float64) (CQIEntry, bool) {
	var best CQIEntry
	found := false
	for _, e := range CQITable {
		if snrDB >= e.MinSNRdB {
			best = e
			found = true
		}
	}
	return best, found
}

// SpectralEfficiency maps SNR to achievable bits/s/Hz through the CQI
// ladder, returning 0 below the link's outage threshold. The paper counts a
// link in outage below 6 dB SNR even though low CQIs would technically
// decode — beam-management control traffic needs that margin — so the
// outage threshold dominates.
func SpectralEfficiency(snrDB float64) float64 {
	if snrDB < OutageThresholdDB {
		return 0
	}
	e, ok := CQIFromSNR(snrDB)
	if !ok {
		return 0
	}
	return e.Efficiency
}

// Throughput returns achievable throughput in bits/s for the given SNR,
// bandwidth, and fractional overhead (0 ≤ overhead < 1, the share of air
// time spent on beam management instead of data).
func Throughput(snrDB, bandwidthHz, overhead float64) float64 {
	if overhead < 0 {
		overhead = 0
	}
	if overhead >= 1 {
		return 0
	}
	return SpectralEfficiency(snrDB) * bandwidthHz * (1 - overhead)
}
