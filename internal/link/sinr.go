package link

import "math"

// SINRdB returns the narrowband signal-to-interference-plus-noise ratio in
// decibels for linear received signal power sigLin, summed co-channel
// interference power intLin, and noise power noiseLin (all in the same
// units). With intLin == 0 it reduces to an SNR. Returns −Inf for a
// non-positive signal.
func SINRdB(sigLin, intLin, noiseLin float64) float64 {
	if sigLin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(sigLin/(intLin+noiseLin))
}

// WidebandSINRdB returns the capacity-equivalent wideband SINR of a
// per-subcarrier signal/interference power profile:
//
//	SINR_eff = 2^(mean_k log2(1 + sig_k/(int_k + noise))) − 1,
//
// the SDMA counterpart of Budget.WidebandSNRdB: frequency-selective dips —
// whether from the channel or from a co-scheduled user's beam leaking onto
// a subcarrier — are penalized the way a real decoder would. sigPow and
// intPow must be the same length and already include transmit power and
// array gain (linear power per subcarrier); noiseLin is the linear noise
// power. Returns −Inf for an empty profile or a vanishing effective SINR.
func WidebandSINRdB(sigPow, intPow []float64, noiseLin float64) float64 {
	if len(sigPow) == 0 || len(sigPow) != len(intPow) {
		return math.Inf(-1)
	}
	var sumLog float64
	for k, sig := range sigPow {
		sumLog += math.Log2(1 + sig/(intPow[k]+noiseLin))
	}
	eff := math.Exp2(sumLog/float64(len(sigPow))) - 1
	if eff <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(eff)
}
