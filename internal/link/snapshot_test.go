package link

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mmreliable/internal/core"
)

// slotOutcome is one recorded slot for the property tests.
type slotOutcome struct {
	snrDB    float64
	training bool
	thr      float64
}

// randomHistory draws a random episode history: alternating outage and
// available runs with random lengths, SNRs straddling the threshold, and
// occasional training slots and −Inf SNRs. episodes controls how many
// outage episodes appear — above maxOutageRuns the ring overflows.
func randomHistory(rng *rand.Rand, episodes int) []slotOutcome {
	var h []slotOutcome
	if rng.Intn(2) == 0 {
		// Open with available slots so leadRun isn't always exercised.
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			h = append(h, slotOutcome{snrDB: OutageThresholdDB + rng.Float64()*20, thr: rng.Float64() * 1e9})
		}
	}
	for e := 0; e < episodes; e++ {
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			s := slotOutcome{snrDB: OutageThresholdDB - 1 - rng.Float64()*30}
			switch rng.Intn(8) {
			case 0:
				s.training = true // training outage, SNR may be fine
				s.snrDB = OutageThresholdDB + rng.Float64()*10
			case 1:
				s.snrDB = math.Inf(-1)
			}
			h = append(h, s)
		}
		for i, n := 0, 1+rng.Intn(5); i < n; i++ {
			h = append(h, slotOutcome{snrDB: OutageThresholdDB + rng.Float64()*20, thr: rng.Float64() * 1e9})
		}
	}
	if rng.Intn(2) == 0 {
		// End inside an outage so the snapshot point can sit mid-episode.
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			h = append(h, slotOutcome{snrDB: OutageThresholdDB - 5})
		}
	}
	return h
}

func feedHistory(m *Meter, h []slotOutcome) {
	for _, s := range h {
		m.Record(s.snrDB, s.training, s.thr)
	}
}

func digestOf(t *testing.T, m *Meter) uint64 {
	t.Helper()
	d := core.NewDigest()
	m.Digest(d)
	return d.Sum()
}

// requireEqual compares two meters exhaustively: digest (every internal
// field, ring in onset order) plus the public accessors.
func requireEqual(t *testing.T, got, want *Meter, label string) {
	t.Helper()
	if dg, dw := digestOf(t, got), digestOf(t, want); dg != dw {
		t.Fatalf("%s: digest %016x != %016x\ngot  %+v\nwant %+v", label, dg, dw,
			got.Summarize(), want.Summarize())
	}
	if !reflect.DeepEqual(got.Summarize(), want.Summarize()) {
		t.Fatalf("%s: summaries differ\ngot  %+v\nwant %+v", label, got.Summarize(), want.Summarize())
	}
	gd := got.OutageDurations(nil)
	wd := want.OutageDurations(nil)
	if !reflect.DeepEqual(gd, wd) {
		t.Fatalf("%s: outage durations differ (%d vs %d entries)", label, len(gd), len(wd))
	}
	if got.DroppedOutageRuns() != want.DroppedOutageRuns() {
		t.Fatalf("%s: dropped runs %d != %d", label, got.DroppedOutageRuns(), want.DroppedOutageRuns())
	}
}

// roundTrip serializes a snapshot through JSON and restores it — the same
// path a service snapshot file takes.
func roundTrip(t *testing.T, m *Meter) *Meter {
	t.Helper()
	blob, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var state MeterState
	if err := json.Unmarshal(blob, &state); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := state.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return restored
}

// TestMeterSnapshotRestoreProperty is the satellite's property test: over
// random episode histories — including ring overflow past maxOutageRuns —
// cutting the stream at a random point, snapshotting through JSON, and
// continuing must be indistinguishable from never having been
// interrupted, both by sequential Record and by Merge.
func TestMeterSnapshotRestoreProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		episodes := 1 + rng.Intn(20)
		if trial%6 == 0 {
			episodes = maxOutageRuns + 50 + rng.Intn(200) // ring overflow
		}
		h := randomHistory(rng, episodes)
		cut := rng.Intn(len(h) + 1)

		uninterrupted := NewMeter()
		feedHistory(uninterrupted, h)

		// Sequential continuation: restore then Record the tail. Exactly
		// equal — same operations in the same order.
		first := NewMeter()
		feedHistory(first, h[:cut])
		restored := roundTrip(t, first)
		feedHistory(restored, h[cut:])
		requireEqual(t, restored, uninterrupted, "sequential")

		// Merge continuation: restore, then fold a separately-metered tail.
		// Compared against the identical uninterrupted merge (first half
		// never serialized), so float-sum bracketing matches exactly.
		tail := NewMeter()
		feedHistory(tail, h[cut:])
		mergedDirect := NewMeter()
		feedHistory(mergedDirect, h[:cut])
		mergedDirect.Merge(tail)
		mergedRestored := roundTrip(t, first)
		mergedRestored.Merge(tail)
		requireEqual(t, mergedRestored, mergedDirect, "merge")

		// And against the sequential meter on everything Merge keeps exact.
		if mergedRestored.Slots() != uninterrupted.Slots() ||
			mergedRestored.OutageEvents() != uninterrupted.OutageEvents() ||
			mergedRestored.OutageSlots() != uninterrupted.OutageSlots() ||
			mergedRestored.MaxOutageSlots() != uninterrupted.MaxOutageSlots() ||
			mergedRestored.DroppedOutageRuns() != uninterrupted.DroppedOutageRuns() {
			t.Fatalf("trial %d: merged integers diverge from sequential", trial)
		}
		if !reflect.DeepEqual(mergedRestored.OutageDurations(nil), uninterrupted.OutageDurations(nil)) {
			t.Fatalf("trial %d: merged durations diverge from sequential", trial)
		}
	}
}

// TestMeterSnapshotEmptyAndFresh pins the edge cases: a fresh meter (with
// its +Inf minSNR) and a never-restored zero state round-trip exactly.
func TestMeterSnapshotEmptyAndFresh(t *testing.T) {
	fresh := NewMeter()
	restored := roundTrip(t, fresh)
	if restored.MinSNRdB() != math.Inf(1) {
		t.Fatalf("fresh minSNR lost: %v", restored.MinSNRdB())
	}
	requireEqual(t, restored, fresh, "fresh")
	restored.Record(OutageThresholdDB+1, false, 1e9)
	fresh.Record(OutageThresholdDB+1, false, 1e9)
	requireEqual(t, restored, fresh, "fresh+record")
}

// TestMeterRestoreRejectsGarbage pins that inconsistent states fail
// loudly instead of resurrecting impossible meters.
func TestMeterRestoreRejectsGarbage(t *testing.T) {
	bad := []MeterState{
		{Slots: -1},
		{Slots: 2, Available: 3},
		{Slots: 2, TotalOutage: 3},
		{Slots: 5, TotalOutage: 2, CurRun: 3},
		{RunsBits: make([]uint64, maxOutageRuns+1)},
	}
	for i, s := range bad {
		if _, err := s.Restore(); err == nil {
			t.Errorf("state %d: expected error, got nil", i)
		}
	}
}
