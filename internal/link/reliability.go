package link

import (
	"fmt"
	"math"
)

// Meter accumulates per-slot link outcomes over an observation interval and
// reports the paper's metrics: reliability (Eq. 1, the fraction of time the
// link is available), average throughput, and their product.
//
// A slot counts as unavailable when its SNR is below the outage threshold
// OR the slot was consumed by beam training (the paper's definition charges
// training time against reliability).
type Meter struct {
	slots      int
	available  int
	thrSum     float64 // bits/s summed over slots
	snrSum     float64
	minSNR     float64
	outageRuns int
	inOutage   bool

	// Outage-duration tracking: how LONG the link stays down, not just how
	// often. curRun is the length (slots) of the outage episode in
	// progress; runs holds the closed episodes' lengths in slots (float64
	// so they feed stats percentiles directly). The buffer is bounded at
	// maxOutageRuns episodes as a ring keeping the most recent ones —
	// unbounded appends would leak heap into the pinned-zero-alloc station
	// and cluster steady states (training slots close an episode on every
	// maintenance round). runsStart is the ring's oldest element once full;
	// runsDropped counts episodes that fell off the front.
	curRun      int
	totalOutage int
	maxRun      int
	runs        []float64
	runsStart   int
	runsDropped int

	// leadRun is the length of the outage episode that begins at the very
	// first recorded slot (0 if the stream opened with an available slot).
	// It freezes as soon as the first available slot arrives. Merge needs
	// it: when meter A ends inside an outage and meter B's stream begins
	// inside one, concatenation fuses A's open episode with B's leading
	// episode into a single longer one.
	leadRun int
}

// maxOutageRuns bounds the per-meter outage-episode history. At the default
// 20 ms frame with one maintenance round per frame this covers seconds of
// continuous episode churn; aggregate counts (OutageEvents, OutageSlots,
// MaxOutageSlots) are exact regardless.
const maxOutageRuns = 256

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{minSNR: math.Inf(1)}
}

// Record adds one slot outcome. snrDB may be −Inf; training marks the slot
// as consumed by beam management (unavailable regardless of SNR);
// throughput is the data rate achieved in the slot (0 during training or
// outage).
func (m *Meter) Record(snrDB float64, training bool, throughput float64) {
	m.slots++
	outage := training || snrDB < OutageThresholdDB
	if !outage {
		m.available++
	}
	if outage && !m.inOutage {
		m.outageRuns++
	}
	if outage {
		m.curRun++
		m.totalOutage++
		if m.curRun > m.maxRun {
			m.maxRun = m.curRun
		}
		if m.totalOutage == m.slots {
			// Every slot so far is an outage: still inside the leading
			// episode (see leadRun). One available slot breaks the
			// equality forever, freezing leadRun.
			m.leadRun++
		}
	} else if m.inOutage {
		m.recordRun(float64(m.curRun))
		m.curRun = 0
	}
	m.inOutage = outage
	m.thrSum += throughput
	if !math.IsInf(snrDB, -1) {
		m.snrSum += snrDB
	}
	if snrDB < m.minSNR {
		m.minSNR = snrDB
	}
}

// recordRun stores a closed episode's duration in the bounded ring. The
// first maxOutageRuns episodes allocate the buffer once (lazily, so a
// quiescent link never touches the allocator); after that the oldest
// episode is overwritten in place — the steady state stays alloc-free no
// matter how long the run.
func (m *Meter) recordRun(d float64) {
	if len(m.runs) < maxOutageRuns {
		if m.runs == nil {
			m.runs = make([]float64, 0, maxOutageRuns)
		}
		m.runs = append(m.runs, d)
		return
	}
	m.runs[m.runsStart] = d
	m.runsStart++
	if m.runsStart == len(m.runs) {
		m.runsStart = 0
	}
	m.runsDropped++
}

// Slots returns the number of recorded slots.
func (m *Meter) Slots() int { return m.slots }

// Reliability returns the fraction of slots during which the link was
// available (Eq. 1). It returns 0 before any slot is recorded.
func (m *Meter) Reliability() float64 {
	if m.slots == 0 {
		return 0
	}
	return float64(m.available) / float64(m.slots)
}

// MeanThroughput returns the average throughput across all slots in bits/s
// (outage slots count as zero, as in the paper's time averages).
func (m *Meter) MeanThroughput() float64 {
	if m.slots == 0 {
		return 0
	}
	return m.thrSum / float64(m.slots)
}

// MeanSNRdB returns the average of finite SNR samples.
func (m *Meter) MeanSNRdB() float64 {
	if m.slots == 0 {
		return 0
	}
	return m.snrSum / float64(m.slots)
}

// MinSNRdB returns the worst recorded SNR (+Inf before any record).
func (m *Meter) MinSNRdB() float64 { return m.minSNR }

// OutageEvents returns the number of distinct outage episodes.
func (m *Meter) OutageEvents() int { return m.outageRuns }

// OutageSlots returns the total number of unavailable slots.
func (m *Meter) OutageSlots() int { return m.totalOutage }

// MaxOutageSlots returns the length of the longest outage episode in
// slots, the episode in progress included — the handover-benefit headline
// (reliability hides whether the downtime came as one long blackout or
// many short dips; the max duration does not).
func (m *Meter) MaxOutageSlots() int { return m.maxRun }

// OutageDurations appends the retained outage episodes' durations in slots
// (closed episodes plus the one in progress, in onset order) to dst and
// returns it — float64 so the result feeds stats.Percentile directly. The
// history is bounded: after maxOutageRuns closed episodes the oldest are
// dropped (see DroppedOutageRuns); the most recent ones are always present.
func (m *Meter) OutageDurations(dst []float64) []float64 {
	dst = append(dst, m.runs[m.runsStart:]...)
	dst = append(dst, m.runs[:m.runsStart]...)
	if m.curRun > 0 {
		dst = append(dst, float64(m.curRun))
	}
	return dst
}

// DroppedOutageRuns returns how many closed episodes fell off the bounded
// duration history (0 until more than maxOutageRuns episodes close).
func (m *Meter) DroppedOutageRuns() int { return m.runsDropped }

// TRProduct returns the throughput–reliability product (the paper's
// headline comparison metric, Fig. 18c), in bits/s.
func (m *Meter) TRProduct() float64 {
	return m.MeanThroughput() * m.Reliability()
}

// Summary is a value snapshot of a Meter for aggregation across runs.
type Summary struct {
	Reliability    float64
	MeanThroughput float64 // bits/s
	MeanSNRdB      float64
	TRProduct      float64
	OutageEvents   int
	// OutageSlots / MaxOutageSlots report outage time (total and longest
	// single episode, in slots) rather than episode count.
	OutageSlots    int
	MaxOutageSlots int
}

// Summarize returns the meter's metrics as a value.
func (m *Meter) Summarize() Summary {
	return Summary{
		Reliability:    m.Reliability(),
		MeanThroughput: m.MeanThroughput(),
		MeanSNRdB:      m.MeanSNRdB(),
		TRProduct:      m.TRProduct(),
		OutageEvents:   m.OutageEvents(),
		OutageSlots:    m.OutageSlots(),
		MaxOutageSlots: m.MaxOutageSlots(),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("rel=%.3f thr=%.1f Mbps snr=%.1f dB trp=%.1f Mbps outages=%d",
		s.Reliability, s.MeanThroughput/1e6, s.MeanSNRdB, s.TRProduct/1e6, s.OutageEvents)
}
