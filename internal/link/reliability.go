package link

import (
	"fmt"
	"math"
)

// Meter accumulates per-slot link outcomes over an observation interval and
// reports the paper's metrics: reliability (Eq. 1, the fraction of time the
// link is available), average throughput, and their product.
//
// A slot counts as unavailable when its SNR is below the outage threshold
// OR the slot was consumed by beam training (the paper's definition charges
// training time against reliability).
type Meter struct {
	slots      int
	available  int
	thrSum     float64 // bits/s summed over slots
	snrSum     float64
	minSNR     float64
	outageRuns int
	inOutage   bool
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{minSNR: math.Inf(1)}
}

// Record adds one slot outcome. snrDB may be −Inf; training marks the slot
// as consumed by beam management (unavailable regardless of SNR);
// throughput is the data rate achieved in the slot (0 during training or
// outage).
func (m *Meter) Record(snrDB float64, training bool, throughput float64) {
	m.slots++
	outage := training || snrDB < OutageThresholdDB
	if !outage {
		m.available++
	}
	if outage && !m.inOutage {
		m.outageRuns++
	}
	m.inOutage = outage
	m.thrSum += throughput
	if !math.IsInf(snrDB, -1) {
		m.snrSum += snrDB
	}
	if snrDB < m.minSNR {
		m.minSNR = snrDB
	}
}

// Slots returns the number of recorded slots.
func (m *Meter) Slots() int { return m.slots }

// Reliability returns the fraction of slots during which the link was
// available (Eq. 1). It returns 0 before any slot is recorded.
func (m *Meter) Reliability() float64 {
	if m.slots == 0 {
		return 0
	}
	return float64(m.available) / float64(m.slots)
}

// MeanThroughput returns the average throughput across all slots in bits/s
// (outage slots count as zero, as in the paper's time averages).
func (m *Meter) MeanThroughput() float64 {
	if m.slots == 0 {
		return 0
	}
	return m.thrSum / float64(m.slots)
}

// MeanSNRdB returns the average of finite SNR samples.
func (m *Meter) MeanSNRdB() float64 {
	if m.slots == 0 {
		return 0
	}
	return m.snrSum / float64(m.slots)
}

// MinSNRdB returns the worst recorded SNR (+Inf before any record).
func (m *Meter) MinSNRdB() float64 { return m.minSNR }

// OutageEvents returns the number of distinct outage episodes.
func (m *Meter) OutageEvents() int { return m.outageRuns }

// TRProduct returns the throughput–reliability product (the paper's
// headline comparison metric, Fig. 18c), in bits/s.
func (m *Meter) TRProduct() float64 {
	return m.MeanThroughput() * m.Reliability()
}

// Summary is a value snapshot of a Meter for aggregation across runs.
type Summary struct {
	Reliability    float64
	MeanThroughput float64 // bits/s
	MeanSNRdB      float64
	TRProduct      float64
	OutageEvents   int
}

// Summarize returns the meter's metrics as a value.
func (m *Meter) Summarize() Summary {
	return Summary{
		Reliability:    m.Reliability(),
		MeanThroughput: m.MeanThroughput(),
		MeanSNRdB:      m.MeanSNRdB(),
		TRProduct:      m.TRProduct(),
		OutageEvents:   m.OutageEvents(),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("rel=%.3f thr=%.1f Mbps snr=%.1f dB trp=%.1f Mbps outages=%d",
		s.Reliability, s.MeanThroughput/1e6, s.MeanSNRdB, s.TRProduct/1e6, s.OutageEvents)
}
