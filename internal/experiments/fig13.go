package experiments

import (
	"mmreliable/internal/antenna"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/dsp"
	"mmreliable/internal/stats"
)

// Fig13dPattern reproduces Fig. 13d: a 2-beam multi-beam pattern from the
// ideal (unquantized) synthesis versus the pattern actually produced by a
// phased array with 6-bit phase shifters and stepped attenuators. The
// paper's point: the hardware reproduces the theoretical multi-beam
// accurately.
func Fig13dPattern(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	beams := []multibeam.Beam{
		multibeam.Reference(dsp.Rad(-10)),
		{Angle: dsp.Rad(25), Amp: 0.8, Phase: 0.5},
	}
	ideal, err := multibeam.Weights(u, beams)
	if err != nil {
		panic(err)
	}
	quant := antenna.DefaultQuantizer().Apply(ideal)
	coarse := antenna.CoarseQuantizer().Apply(ideal)

	t := stats.NewTable("Fig 13d — multi-beam pattern: theory vs quantized hardware (gain dB)",
		"angle_deg", "ideal", "6bit", "2bit")
	for _, deg := range stats.Linspace(-60, 60, 25) {
		th := dsp.Rad(deg)
		t.AddRow(stats.Fmt(deg),
			stats.Fmt(u.GainDB(ideal, th)),
			stats.Fmt(u.GainDB(quant, th)),
			stats.Fmt(u.GainDB(coarse, th)))
	}
	// Pattern agreement metric: worst-case deviation over the main lobes.
	var worst6, worst2 float64
	for _, deg := range stats.Linspace(-15, 30, 46) {
		th := dsp.Rad(deg)
		if d := abs(u.GainDB(ideal, th) - u.GainDB(quant, th)); d > worst6 {
			worst6 = d
		}
		if d := abs(u.GainDB(ideal, th) - u.GainDB(coarse, th)); d > worst2 {
			worst2 = d
		}
	}
	t.AddRow("worst_lobe_dev_dB", "", stats.Fmt(worst6), stats.Fmt(worst2))
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
