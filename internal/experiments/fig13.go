package experiments

import (
	"mmreliable/internal/antenna"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/dsp"
	"mmreliable/internal/stats"
)

// Fig13dPattern reproduces Fig. 13d: a 2-beam multi-beam pattern from the
// ideal (unquantized) synthesis versus the pattern actually produced by a
// phased array with 6-bit phase shifters and stepped attenuators. The
// paper's point: the hardware reproduces the theoretical multi-beam
// accurately.
func Fig13dPattern(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	beams := []multibeam.Beam{
		multibeam.Reference(dsp.Rad(-10)),
		{Angle: dsp.Rad(25), Amp: 0.8, Phase: 0.5},
	}
	ideal, err := multibeam.Weights(u, beams)
	if err != nil {
		panic(err)
	}
	quant := antenna.DefaultQuantizer().Apply(ideal)
	coarse := antenna.CoarseQuantizer().Apply(ideal)

	t := stats.NewTable("Fig 13d — multi-beam pattern: theory vs quantized hardware (gain dB)",
		"angle_deg", "ideal", "6bit", "2bit")
	// The dense sweeps run off the read-only steering-vector grid cache:
	// the steering vectors are computed once per (geometry, span) and
	// shared by every weight vector (and every concurrent trial).
	wide := u.SteeringGrid(dsp.Rad(-60), dsp.Rad(60), 25)
	for i := 0; i < wide.Len(); i++ {
		t.AddRow(stats.Fmt(dsp.Deg(wide.Thetas[i])),
			stats.Fmt(wide.GainDB(i, ideal)),
			stats.Fmt(wide.GainDB(i, quant)),
			stats.Fmt(wide.GainDB(i, coarse)))
	}
	// Pattern agreement metric: worst-case deviation over the main lobes.
	var worst6, worst2 float64
	lobes := u.SteeringGrid(dsp.Rad(-15), dsp.Rad(30), 46)
	for i := 0; i < lobes.Len(); i++ {
		if d := abs(lobes.GainDB(i, ideal) - lobes.GainDB(i, quant)); d > worst6 {
			worst6 = d
		}
		if d := abs(lobes.GainDB(i, ideal) - lobes.GainDB(i, coarse)); d > worst2 {
			worst2 = d
		}
	}
	t.AddRow("worst_lobe_dev_dB", "", stats.Fmt(worst6), stats.Fmt(worst2))
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
