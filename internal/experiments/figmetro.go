package experiments

import (
	"fmt"

	"mmreliable/internal/metro"
	"mmreliable/internal/nr"
	"mmreliable/internal/stats"
)

// ExtensionMetro is the city-scale experiment (internal/metro): it sweeps
// the number of independent cluster sites advancing in lock-step over the
// sharded worker pool, with Poisson session churn streamed into constant-
// size per-shard sketches, and reports the folded metro-wide aggregate —
// sessions served, serving-leg and selection-diversity reliability over the
// concatenated slot streams, the worst single blackout anywhere in the
// city, and beam-management overhead. The §5 story at metro scale: per-UE
// reliability and overhead must hold flat as sites multiply, because sites
// are RF-isolated and only contend for compute — the layer's job is to
// prove the aggregation machinery (spatial-indexed tracing, shard pool,
// sketch folds) sustains the population, not to change the physics.
//
// Each row builds its metro from (Seed, labelExtMetro, sites), so growing
// the city redraws the whole population (sites are not nested across rows),
// and every row is byte-identical at any Workers value (the metro's
// determinism contract — shards are fixed site ranges, reduction is
// index-ordered).
func ExtensionMetro(cfg Config) *stats.Table {
	sites := []int{8, 32, 64}
	duration := 0.6
	if cfg.Quick {
		sites = []int{4, 8}
		duration = 0.4
	}
	t := stats.NewTable(
		"Extension E7 — city-scale sharded metro with session churn",
		"sites", "cells", "sessions", "rel_serving", "rel_diversity",
		"worst_out_ms", "handovers", "overhead_pct")
	for _, n := range sites {
		mcfg := metro.DefaultConfig()
		mcfg.Seed = cfg.trialSeed(labelExtMetro, n)
		mcfg.Clusters = n
		mcfg.Workers = cfg.Workers
		m, err := metro.New(nr.Mu3(), mcfg)
		if err != nil {
			panic(err)
		}
		res := m.Run(duration)
		m.Close()
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", res.Cells),
			fmt.Sprintf("%d", res.UEs),
			stats.Fmt(res.Serving.Reliability), stats.Fmt(res.Diversity.Reliability),
			stats.Fmt(res.WorstOutageMs),
			fmt.Sprintf("%d", res.Handovers),
			stats.Fmt(res.OverheadPct))
	}
	return t
}
