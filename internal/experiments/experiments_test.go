package experiments

import (
	"strconv"
	"strings"
	"testing"

	"mmreliable/internal/hybrid"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

// cell extracts the value in the given column of the row whose first cell
// matches label. It fails the test when absent.
func cell(t *testing.T, table interface{ String() string }, label string, col int) float64 {
	t.Helper()
	for _, line := range strings.Split(table.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) > col && fields[0] == label {
			v, err := strconv.ParseFloat(fields[col], 64)
			if err != nil {
				t.Fatalf("row %q col %d: %v (%q)", label, col, err, line)
			}
			return v
		}
	}
	t.Fatalf("row %q not found in table:\n%s", label, table.String())
	return 0
}

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 33 {
		t.Fatalf("experiments %d, want 33", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if got, err := ByID(e.ID); err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestFig04aLandmarks(t *testing.T) {
	tb := Fig04aReflectorCDF(quickCfg())
	indoorMedian := cell(t, tb, "50", 1)
	outdoorMedian := cell(t, tb, "50", 2)
	// Paper: 7.2 dB indoor, 5 dB outdoor; dominant range 1–10 dB.
	if indoorMedian < 4 || indoorMedian > 14 {
		t.Fatalf("indoor median %g", indoorMedian)
	}
	if outdoorMedian < 2 || outdoorMedian > 9 {
		t.Fatalf("outdoor median %g", outdoorMedian)
	}
	if outdoorMedian >= indoorMedian {
		t.Fatalf("outdoor reflectors (%g) should be stronger than indoor (%g)", outdoorMedian, indoorMedian)
	}
}

func TestFig08Landmarks(t *testing.T) {
	tb := Fig08DelaySpread(quickCfg())
	if r := cell(t, tb, "ripple_dB", 1); r > 0.1 {
		t.Fatalf("single-beam ripple %g", r)
	}
	if r := cell(t, tb, "ripple_dB", 2); r < 5 {
		t.Fatalf("plain multi-beam 5 ns ripple %g, want deep fades", r)
	}
	if r := cell(t, tb, "ripple_dB", 3); r > 1 {
		t.Fatalf("delay-optimized 5 ns ripple %g, want flat", r)
	}
	if r := cell(t, tb, "ripple_dB", 5); r > 1 {
		t.Fatalf("delay-optimized 10 ns ripple %g, want flat", r)
	}
}

func TestFig11aLandmarks(t *testing.T) {
	tb := Fig11aSuperresMSE(quickCfg())
	// Per-beam power accurate to ≲1 dB at and below the 2.5 ns resolution.
	if e := cell(t, tb, "2.5", 1); e > 1 {
		t.Fatalf("error at resolution %g dB", e)
	}
	if e := cell(t, tb, "1", 1); e > 1.5 {
		t.Fatalf("error below resolution %g dB", e)
	}
}

func TestFig11bLandmarks(t *testing.T) {
	tb := Fig11bTwoSinc(quickCfg())
	if r := cell(t, tb, "fit_residual", 1); r > 0.05 {
		t.Fatalf("two-sinc fit residual %g", r)
	}
}

func TestFig13dLandmarks(t *testing.T) {
	tb := Fig13dPattern(quickCfg())
	// 6-bit hardware reproduces the theoretical pattern closely on the
	// lobes; 2-bit hardware degrades visibly but still forms the beams.
	// (Empty table cells collapse under Fields, so the two deviations land
	// in columns 1 and 2.)
	dev6 := cell(t, tb, "worst_lobe_dev_dB", 1)
	dev2 := cell(t, tb, "worst_lobe_dev_dB", 2)
	if dev6 > 4 {
		t.Fatalf("6-bit worst deviation %g dB", dev6)
	}
	if dev2 <= dev6 {
		t.Fatalf("2-bit (%g) should deviate more than 6-bit (%g)", dev2, dev6)
	}
}

func TestFig14Landmarks(t *testing.T) {
	tb := Fig14Sensitivity(quickCfg())
	if p := cell(t, tb, "peak_dB", 1); p < 1.7 || p > 1.8 {
		t.Fatalf("peak gain %g, want 1.76", p)
	}
	if g := cell(t, tb, "gain_at_75deg", 1); g < 0 {
		t.Fatalf("gain at 75° %g, want ≥ 0", g)
	}
	if g := cell(t, tb, "gain_at_180deg", 1); g > -3 {
		t.Fatalf("gain at 180° %g, want strongly negative", g)
	}
}

func TestFig15Landmarks(t *testing.T) {
	a := Fig15aPhaseScan(quickCfg())
	est := cell(t, a, "twoprobe_sigma", 1)
	truth := cell(t, a, "true_sigma", 1)
	if d := est - truth; d > 0.3 || d < -0.3 {
		t.Fatalf("two-probe phase %g vs truth %g", est, truth)
	}
	b := Fig15bAmpScan(quickCfg())
	amp := cell(t, b, "twoprobe_amp_dB", 1)
	if amp < -6 || amp > -2 {
		t.Fatalf("two-probe amplitude %g dB, want ≈ −4", amp)
	}
	c := Fig15cPhaseStability(quickCfg())
	if s := cell(t, c, "spread_rad", 1); s > 1 {
		t.Fatalf("phase spread %g rad over 100 MHz", s)
	}
	d := Fig15dOracleGap(quickCfg())
	g2 := cell(t, d, "2-beam", 1)
	g3 := cell(t, d, "3-beam", 1)
	gs := cell(t, d, "subarray-split", 1)
	gor := cell(t, d, "oracle", 1)
	if g2 < 0.5 || g2 > 2.5 {
		t.Fatalf("2-beam gain %g, paper ≈1.0", g2)
	}
	if g3 <= g2 {
		t.Fatalf("3-beam (%g) should beat 2-beam (%g)", g3, g2)
	}
	if gor < g3 {
		t.Fatalf("oracle (%g) below 3-beam (%g)", gor, g3)
	}
	if gs >= g2 {
		t.Fatalf("sub-array split (%g) should lose to full-aperture (%g)", gs, g2)
	}
}

func TestFig16Landmarks(t *testing.T) {
	tb := Fig16Blockage(quickCfg())
	mmMin := cell(t, tb, "multibeam_min_snr", 1)
	sbMin := cell(t, tb, "singlebeam_min_snr", 1) // empty cells collapse
	if mmMin < 6 {
		t.Fatalf("multi-beam went into outage: min SNR %g", mmMin)
	}
	if sbMin >= 6 {
		t.Fatalf("single beam never hit outage: min SNR %g", sbMin)
	}
}

func TestFig17Landmarks(t *testing.T) {
	a := Fig17aPowerVsRotation(quickCfg())
	if r := cell(t, a, "beam0_fit_rmse_dB", 1); r > 1 {
		t.Fatalf("pattern fit error %g dB, paper within 1 dB", r)
	}
	b := Fig17bTrackingAccuracy(quickCfg())
	for _, deg := range []string{"4", "6", "8"} {
		if e := cell(t, b, deg, 3); e > 1.2 {
			t.Fatalf("LOS tracking error at %s°: %g, paper ≈1°", deg, e)
		}
	}
	c := Fig17cTrackingThroughput(quickCfg())
	full := cell(t, c, "tracking+CC", 1)
	noTrack := cell(t, c, "no-tracking", 1)
	if full <= noTrack {
		t.Fatalf("tracking+CC (%g) should beat no-tracking (%g)", full, noTrack)
	}
}

func TestFig18Landmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble experiment")
	}
	b := Fig18bReliability(quickCfg())
	mm := cell(t, b, "mmreliable", 1)
	re := cell(t, b, "reactive", 1)
	wb := cell(t, b, "widebeam", 1)
	if mm <= re || re <= wb {
		t.Fatalf("reliability ordering broken: mm %g, reactive %g, widebeam %g", mm, re, wb)
	}
	if mm < 0.85 {
		t.Fatalf("mmReliable median reliability %g, want ≈1", mm)
	}
	d := Fig18dOverhead(quickCfg())
	if v := cell(t, d, "8", 1); v < 2.5 || v > 3.5 {
		t.Fatalf("NR training at 8 antennas %g ms, paper 3", v)
	}
	if v := cell(t, d, "64", 1); v < 5.5 || v > 6.5 {
		t.Fatalf("NR training at 64 antennas %g ms, paper 6", v)
	}
	if v := cell(t, d, "64", 2); v < 0.3 || v > 0.5 {
		t.Fatalf("2-beam maintenance %g ms, paper 0.4", v)
	}
	if v := cell(t, d, "64", 3); v < 0.5 || v > 0.7 {
		t.Fatalf("3-beam maintenance %g ms, paper 0.6", v)
	}
}

func TestAblationLandmarks(t *testing.T) {
	a1 := AblationQuantization(quickCfg())
	fine := cell(t, a1, "6bit+0.5dB", 2)
	coarse := cell(t, a1, "2bit+onoff", 2)
	if fine > 0.2 {
		t.Fatalf("6-bit loss %g dB, want ≈0", fine)
	}
	if coarse <= fine || coarse > 3 {
		t.Fatalf("2-bit loss %g dB, want ≈1", coarse)
	}
	a5 := AblationTrainingMethod(quickCfg())
	exhSlots := cell(t, a5, "exhaustive", 1)
	hierSlots := cell(t, a5, "hierarchical", 1)
	if hierSlots >= exhSlots {
		t.Fatalf("hierarchical training (%g slots) not cheaper than exhaustive (%g)", hierSlots, exhSlots)
	}
	a4 := AblationCCRefresh(quickCfg())
	fast := cell(t, a4, "1", 1)
	slow := cell(t, a4, "20", 1)
	if fast <= slow-0.5 {
		t.Fatalf("1 ms refresh (%g dB) should not lose to 20 ms (%g dB)", fast, slow)
	}
}

func TestExtensionLandmarks(t *testing.T) {
	e1 := ExtensionIRS(quickCfg())
	relNone := cell(t, e1, "0", 1)
	relBest := cell(t, e1, "80", 1)
	if relBest < relNone+0.2 {
		t.Fatalf("80 dB IRS reliability %g not clearly above no-IRS %g", relBest, relNone)
	}
	e2 := ExtensionHandover(quickCfg())
	ho := cell(t, e2, "handover", 1)
	pin := cell(t, e2, "pinned", 1)
	if ho <= pin+0.1 {
		t.Fatalf("handover reliability %g not clearly above pinned %g", ho, pin)
	}
	if n := cell(t, e2, "handover", 3); n < 1 {
		t.Fatalf("no handovers executed: %g", n)
	}
	e3 := ExtensionRateAdaptation(quickCfg())
	fresh := cell(t, e3, "1", 3)
	stale := cell(t, e3, "80", 3)
	if fresh < 0.7 || fresh > 1.01 {
		t.Fatalf("fresh-CSI adaptive/genie ratio %g", fresh)
	}
	if stale >= fresh {
		t.Fatalf("stale CSI (%g) should cost throughput vs fresh (%g)", stale, fresh)
	}
	e4 := ExtensionMultiUser(quickCfg())
	tdm := cell(t, e4, "tdm", 1)
	naive := cell(t, e4, "naive-spatial", 1)
	aware := cell(t, e4, "aware-spatial", 1)
	if aware <= naive {
		t.Fatalf("aware selection %g not above naive %g", aware, naive)
	}
	if aware <= tdm {
		t.Fatalf("spatial multiplexing %g not above TDM %g", aware, tdm)
	}
}

func TestExtensionStationLandmarks(t *testing.T) {
	tb := ExtensionStation(quickCfg())
	rel2 := cell(t, tb, "2", 1)
	rel8 := cell(t, tb, "8", 1)
	if rel2 < 0.9 || rel8 < 0.9 {
		t.Fatalf("serving-cell reliability collapsed: 2 UEs %g, 8 UEs %g", rel2, rel8)
	}
	// The probe budget bounds aggregate overhead: the per-session training
	// share must not grow with the UE count (it can only shrink or hold).
	ov2 := cell(t, tb, "2", 3)
	ov8 := cell(t, tb, "8", 3)
	if ov8 > ov2+1 {
		t.Fatalf("training overhead grew with load: 2 UEs %g%%, 8 UEs %g%%", ov2, ov8)
	}
	// Starvation guard: even the worst-served UE got a nonzero grant share.
	if r := cell(t, tb, "8", 7); r <= 0 {
		t.Fatalf("some session starved at 8 UEs: min/max grant ratio %g", r)
	}
}

func TestExtensionClusterLandmarks(t *testing.T) {
	tb := ExtensionCluster(quickCfg())
	// One cell has nowhere to run from a serving-link blocker: reliability
	// collapses for the blockage dwell. Two cells recover the §7 target
	// through the hot standby.
	serv1 := cell(t, tb, "1", 1)
	div1 := cell(t, tb, "1", 2)
	div2 := cell(t, tb, "2", 2)
	if serv1 >= 0.99 {
		t.Fatalf("1-cell serving reliability %g — the blocker never bit", serv1)
	}
	if div1 != serv1 {
		t.Fatalf("1-cell diversity %g differs from serving %g with no second leg", div1, serv1)
	}
	if div2 < 0.999 {
		t.Fatalf("2-cell diversity reliability %g < 0.999", div2)
	}
	// The standby must also crush the worst blackout, not just the average.
	if out1, divOut2 := cell(t, tb, "1", 3), cell(t, tb, "2", 4); divOut2 >= out1/10 {
		t.Fatalf("2-cell diversity max outage %g ms not well below 1-cell %g ms", divOut2, out1)
	}
	// Handover without ping-pong.
	if ho := cell(t, tb, "2", 5); ho < 1 {
		t.Fatalf("no handovers executed at 2 cells: %g", ho)
	}
	if pp := cell(t, tb, "2", 6); pp != 0 {
		t.Fatalf("%g ping-pongs at 2 cells", pp)
	}
}

func TestExtensionMetroLandmarks(t *testing.T) {
	tb := ExtensionMetro(quickCfg())
	// Doubling the city serves more sessions...
	s4 := cell(t, tb, "4", 2)
	s8 := cell(t, tb, "8", 2)
	if s8 <= s4 {
		t.Fatalf("sessions did not grow with sites: 4 sites %g, 8 sites %g", s4, s8)
	}
	// ...while per-UE physics stays flat: sites are RF-isolated, so the
	// folded serving reliability holds the §5 operating point at both
	// scales instead of degrading with population.
	r4 := cell(t, tb, "4", 3)
	r8 := cell(t, tb, "8", 3)
	if r4 < 0.99 || r8 < 0.99 {
		t.Fatalf("metro serving reliability degraded: 4 sites %g, 8 sites %g", r4, r8)
	}
	// Diversity combining can only help the folded stream.
	if d8 := cell(t, tb, "8", 4); d8 < r8 {
		t.Fatalf("diversity reliability %g below serving %g", d8, r8)
	}
	// Beam-management overhead stays bounded as the city grows (training
	// is per-cell, sessions amortize it).
	if ov8 := cell(t, tb, "8", 7); ov8 <= 0 || ov8 > 25 {
		t.Fatalf("8-site overhead %g%% outside (0, 25]", ov8)
	}
}

func TestExtensionHybridLandmarks(t *testing.T) {
	was := hybrid.Enabled
	hybrid.Enabled = true
	defer func() { hybrid.Enabled = was }()
	tb := ExtensionHybrid(quickCfg())
	// The §8 claim: with ≥8 angularly separable UEs the hybrid-SDMA cell
	// multiplies sum throughput over the single-beam TDMA baseline...
	gain := cell(t, tb, "8", 8)
	if gain <= 1.05 {
		t.Fatalf("hybrid sum-throughput gain %g at 8 UEs not above single-beam", gain)
	}
	// ...without giving up the paper's reliability operating point.
	if rel := cell(t, tb, "8", 5); rel < 0.999 {
		t.Fatalf("hybrid reliability %g < 0.999 at 8 UEs", rel)
	}
	// The planner actually grouped — the gain must come from shared slots,
	// not from a degenerate comparison.
	if g := cell(t, tb, "8", 7); g < 1 {
		t.Fatalf("no SDMA groups committed at 8 UEs")
	}
	// Single-beam vs multi-beam is airtime-equal: multi-beam buys
	// reliability/SNR robustness, not sum throughput multiplication, so its
	// sum stays within a factor of the baseline while SDMA pulls away.
	if sm, ss := cell(t, tb, "8", 4), cell(t, tb, "8", 6); ss <= sm {
		t.Fatalf("SDMA sum %g Mbps not above multi-beam TDMA %g Mbps", ss, sm)
	}
}

func TestFig19Landmarks(t *testing.T) {
	tb := Fig19Band60GHz(quickCfg())
	g28 := cell(t, tb, "28GHz", 3)
	g60 := cell(t, tb, "60GHz", 3)
	if g28 < 1.0 {
		t.Fatalf("28 GHz multi-beam gain %g < 1", g28)
	}
	if g60 < 1.0 {
		t.Fatalf("60 GHz multi-beam gain %g < 1", g60)
	}
	if gap := cell(t, tb, "28GHz_vs_60GHz_x", 1); gap <= 1 {
		t.Fatalf("28 GHz should outrate 60 GHz, gap %g", gap)
	}
}
