package experiments

import (
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// Ablation experiments beyond the paper's figures, exercising the design
// choices DESIGN.md calls out. IDs are prefixed "a". Every Monte-Carlo loop
// here runs on the deterministic parallel trial runner; trials that need
// more than one stream (a scheme RNG plus a scenario seed, say) split their
// per-trial generator with subSeed, so no two trials — and no two schemes
// inside a trial — share a stream.

// subSeed draws a deterministic child seed from a trial's private
// generator. The draw order inside a trial is fixed, so results stay
// byte-identical at any worker count.
func subSeed(rng *rand.Rand) int64 { return rng.Int63() }

// subRNG returns a fresh generator seeded from the trial's stream.
func subRNG(rng *rand.Rand) *rand.Rand { return rand.New(rand.NewSource(subSeed(rng))) }

// AblationQuantization sweeps phase-shifter resolution: how much multi-beam
// SNR does cheap hardware cost? (The paper argues 2-bit + on/off is the
// floor for phase-coherent multi-beams.)
func AblationQuantization(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	budget := link.DefaultBudget()
	offs := channel.SubcarrierOffsets(budget.BandwidthHz, 32)
	params := channel.ClusterParams{
		MinPaths: 2, MaxPaths: 3,
		LOSLossDB:    env.Band28GHz().PathLossDB(7),
		RelAttMeanDB: 5, RelAttStdDB: 1.5,
		MaxExcessDelayNs: 0.8, SectorDeg: 100, MinSepDeg: 18,
	}
	quants := []struct {
		name string
		q    antenna.Quantizer
	}{
		{"ideal", antenna.Quantizer{}},
		{"6bit+0.5dB", antenna.DefaultQuantizer()},
		{"4bit+1dB", antenna.Quantizer{PhaseBits: 4, GainRangeDB: 27, GainStepDB: 1}},
		{"3bit+onoff", antenna.Quantizer{PhaseBits: 3, GainRangeDB: 27, GainStepDB: 0}},
		{"2bit+onoff", antenna.CoarseQuantizer()},
	}
	t := stats.NewTable("Ablation A1 — multi-beam SNR loss vs weight quantization",
		"quantizer", "mean_snr_dB", "loss_vs_ideal_dB")
	runs := cfg.runs(150)
	perTrial := ParallelTrials(cfg, labelAblationA1, runs, func(_ int, rng *rand.Rand, _ *scratch.Workspace) []float64 {
		m := channel.Cluster(rng, env.Band28GHz(), u, params)
		var beams []multibeam.Beam
		for k := range m.Paths {
			d, s := m.RelativeGain(k, 0)
			beams = append(beams, multibeam.Beam{Angle: m.Paths[k].AoD, Amp: d, Phase: s})
		}
		w, err := multibeam.Weights(u, beams)
		if err != nil {
			return nil
		}
		snrs := make([]float64, len(quants))
		for qi, q := range quants {
			wq := w
			if q.q.PhaseBits > 0 || q.q.GainRangeDB > 0 {
				wq = q.q.Apply(w)
			}
			snrs[qi] = budget.WidebandSNRdB(m.EffectiveWideband(wq, offs))
		}
		return snrs
	})
	sums := make([]float64, len(quants))
	for _, snrs := range perTrial {
		for qi, v := range snrs {
			sums[qi] += v
		}
	}
	for qi, q := range quants {
		mean := sums[qi] / float64(runs)
		t.AddRow(q.name, stats.Fmt(mean), stats.Fmt(sums[0]/float64(runs)-mean))
	}
	return t
}

// AblationMaintenancePeriod sweeps the CSI-RS maintenance cadence: slower
// maintenance means lower overhead but later blockage/mobility response.
func AblationMaintenancePeriod(cfg Config) *stats.Table {
	t := stats.NewTable("Ablation A2 — maintenance cadence vs reliability (outdoor mobile+blockage)",
		"period_ms", "mean_rel", "mean_thr_Mbps", "retrains_per_s")
	budget := sim.OutdoorBudget()
	runs := cfg.runs(10)
	type outcome struct{ rel, thr, retr float64 }
	for _, periodMs := range []float64{5, 10, 20, 40, 80} {
		periodMs := periodMs
		// The trial stream depends only on the trial index (the label is
		// shared across cadences), so every cadence replays the same
		// scenario draws — the controlled sweep the ablation needs.
		res := ParallelTrials(cfg, labelAblationA2, runs, func(_ int, rng *rand.Rand, ws *scratch.Workspace) outcome {
			scenSeed := subSeed(rng)
			mcfg := manager.DefaultConfig()
			mcfg.MaintainPeriod = periodMs * 1e-3
			mgr, err := manager.New("m", antenna.NewULA(8, 28e9), budget, nr.Mu3(), mcfg, subRNG(rng))
			if err != nil {
				panic(err)
			}
			mgr.UseWorkspace(ws)
			out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sim.ThinMarginOutdoor(scenSeed), mgr)
			if err != nil {
				panic(err)
			}
			s := out["m"].Summary
			return outcome{rel: s.Reliability, thr: s.MeanThroughput, retr: float64(mgr.Retrains - 1)}
		})
		var rel, thr, retr float64
		for _, o := range res {
			rel += o.rel
			thr += o.thr
			retr += o.retr
		}
		n := float64(runs)
		t.AddRow(stats.Fmt(periodMs), stats.Fmt(rel/n), stats.Fmt(thr/n/1e6), stats.Fmt(retr/n))
	}
	return t
}

// AblationCorrelatedBlockage compares independent per-path blockers against
// body blocks that occlude every path at once — the failure mode §3.1
// concedes no multi-beam can survive.
func AblationCorrelatedBlockage(cfg Config) *stats.Table {
	t := stats.NewTable("Ablation A3 — independent vs correlated (all-path) blockage",
		"all_path_prob", "mmreliable_rel", "reactive_rel")
	budget := sim.OutdoorBudget()
	runs := cfg.runs(10)
	type outcome struct{ mm, re float64 }
	for _, prob := range []float64{0, 0.5, 1.0} {
		prob := prob
		res := ParallelTrials(cfg, labelAblationA3, runs, func(_ int, rng *rand.Rand, ws *scratch.Workspace) outcome {
			scenSeed := subSeed(rng)
			genSeed := subSeed(rng)
			mgrRng := subRNG(rng)
			rcRng := subRNG(rng)
			mkScenario := func() *sim.Scenario {
				sc := sim.ThinMarginOutdoor(scenSeed)
				gen := events.GenParams{
					Horizon: 1.0, Rate: 1.5,
					MinDuration: 0.1, MaxDuration: 0.5,
					MinDepthDB: 20, MaxDepthDB: 30,
					NumPaths: 1, AllPathProb: prob,
				}
				genRng := rand.New(rand.NewSource(genSeed))
				var sched events.Schedule
				for len(sched) == 0 {
					sched = events.Generate(genRng, gen)
				}
				for j := range sched {
					sched[j].Start += sim.StandardWarmup
				}
				sc.Blockage = sched
				return sc
			}
			mgr, err := manager.New("m", antenna.NewULA(8, 28e9), budget, nr.Mu3(), manager.DefaultConfig(), mgrRng)
			if err != nil {
				panic(err)
			}
			mgr.UseWorkspace(ws)
			rc, err := baselines.NewSingleBeamReactive(antenna.NewULA(8, 28e9), budget, nr.Mu3(),
				baselines.DefaultOptions(), rcRng)
			if err != nil {
				panic(err)
			}
			runner := sim.Runner{Warmup: sim.StandardWarmup}
			outM, err := runner.Run(mkScenario(), mgr)
			if err != nil {
				panic(err)
			}
			outR, err := runner.Run(mkScenario(), rc)
			if err != nil {
				panic(err)
			}
			return outcome{mm: outM["m"].Summary.Reliability, re: outR["reactive"].Summary.Reliability}
		})
		var mmRel, reRel float64
		for _, o := range res {
			mmRel += o.mm
			reRel += o.re
		}
		n := float64(runs)
		t.AddRow(stats.Fmt(prob), stats.Fmt(mmRel/n), stats.Fmt(reRel/n))
	}
	return t
}

// AblationCCRefresh sweeps the constructive-combining phase refresh cadence
// on the mobile small-spread link: slower refresh leaves stale phases.
func AblationCCRefresh(cfg Config) *stats.Table {
	t := stats.NewTable("Ablation A4 — CC phase-refresh cadence under 1.5 m/s motion",
		"refresh_ms", "mean_snr_dB", "mean_thr_Mbps")
	budget := sim.IndoorBudget()
	budget.TxPowerDBm -= 10
	cadences := []float64{0.5, 1, 2, 5, 20}
	// One independent trial per cadence; every arm reuses the stream
	// cfg.rng(904) and scenario seed the serial version used, so the sweep
	// stays controlled and the table byte-identical.
	rows := ParallelTrials(cfg, labelAblationA4, len(cadences), func(trial int, _ *rand.Rand, ws *scratch.Workspace) link.Summary {
		mcfg := manager.DefaultConfig()
		mcfg.CCRefreshPeriod = cadences[trial] * 1e-3
		mgr, err := manager.New("m", antenna.NewULA(8, 28e9), budget, nr.Mu3(), mcfg, cfg.rng(904))
		if err != nil {
			panic(err)
		}
		mgr.UseWorkspace(ws)
		out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sim.SmallSpreadMobile(cfg.Seed), mgr)
		if err != nil {
			panic(err)
		}
		return out["m"].Summary
	})
	for i, s := range rows {
		t.AddRow(stats.Fmt(cadences[i]), stats.Fmt(s.MeanSNRdB), stats.Fmt(s.MeanThroughput/1e6))
	}
	return t
}

// AblationTrainingMethod compares exhaustive SSB-sweep training against
// the hierarchical (logarithmic) search as mmReliable's front end: training
// air time versus established link quality on the indoor multipath link.
func AblationTrainingMethod(cfg Config) *stats.Table {
	t := stats.NewTable("Ablation A5 — exhaustive vs hierarchical beam training",
		"method", "training_slots", "mean_snr_dB", "beams", "reliability")
	budget := sim.IndoorBudget()
	type outcome struct {
		slots, beams int
		summary      link.Summary
	}
	methods := []bool{false, true} // exhaustive, hierarchical
	rows := ParallelTrials(cfg, labelAblationA5, len(methods), func(trial int, _ *rand.Rand, ws *scratch.Workspace) outcome {
		hier := methods[trial]
		name := "exhaustive"
		if hier {
			name = "hierarchical"
		}
		mcfg := manager.DefaultConfig()
		mcfg.HierarchicalTraining = hier
		mgr, err := manager.New(name, antenna.NewULA(8, 28e9), budget, nr.Mu3(), mcfg, cfg.rng(905))
		if err != nil {
			panic(err)
		}
		mgr.UseWorkspace(ws)
		sc := sim.StaticIndoor(cfg.Seed)
		sc.Duration = 0.4
		out, err := sim.Runner{Warmup: 0.05}.Run(sc, mgr)
		if err != nil {
			panic(err)
		}
		return outcome{slots: mgr.TrainingSlots, beams: mgr.NumBeams(), summary: out[name].Summary}
	})
	for i, o := range rows {
		name := "exhaustive"
		if methods[i] {
			name = "hierarchical"
		}
		t.AddRow(name, stats.Fmt(float64(o.slots)), stats.Fmt(o.summary.MeanSNRdB),
			stats.Fmt(float64(o.beams)), stats.Fmt(o.summary.Reliability))
	}
	return t
}
