package experiments

import (
	"math"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/superres"
	"mmreliable/internal/env"
	"mmreliable/internal/nr"
	"mmreliable/internal/stats"
)

// Fig11aSuperresMSE reproduces Fig. 11a: mean squared error of the
// per-beam power estimate versus the relative ToF between the two paths,
// including points below the 2.5 ns system resolution of the 400 MHz
// sounder.
func Fig11aSuperresMSE(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	rng := cfg.rng(111)
	s, err := nr.NewSounder(nr.Mu3(), 400e6, 64, 2e-6, nr.DefaultImpairments(), rng)
	if err != nil {
		panic(err)
	}
	trials := cfg.runs(50)
	t := stats.NewTable("Fig 11a — per-beam power estimation error vs relative ToF",
		"rel_tof_ns", "rmse_dB_beam0", "rmse_dB_beam1")
	for _, tofNs := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.5, 5.0} {
		var e0, e1 []float64
		for trial := 0; trial < trials; trial++ {
			m := channel.FromSpecs(env.Band28GHz(), u, 80, []channel.PathSpec{
				{AoDDeg: 0, DelayNs: 20},
				{AoDDeg: 30, RelAttDB: 3, PhaseRad: 1.0, DelayNs: 20 + tofNs},
			})
			w := m.PerAntennaCSI(0).Conj().Normalize()
			truth := make([]float64, 2)
			for k := range m.Paths {
				g := m.PathGain(k, 0) * m.Tx.Steering(m.Paths[k].AoD).Dot(w)
				truth[k] = real(g)*real(g) + imag(g)*imag(g)
			}
			cir := s.CIR(s.Probe(m, w))
			res, err := superres.Extract(cir, []float64{0, tofNs * 1e-9}, s.DelayKernel, s.SampleSpacing(), superres.DefaultConfig())
			if err != nil {
				continue
			}
			e0 = append(e0, 10*math.Log10(res.Power[0]/truth[0]))
			e1 = append(e1, 10*math.Log10(res.Power[1]/truth[1]))
		}
		t.AddRow(stats.Fmt(tofNs), stats.Fmt(rmse0(e0)), stats.Fmt(rmse0(e1)))
	}
	return t
}

func rmse0(errs []float64) float64 {
	if len(errs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, e := range errs {
		s += e * e
	}
	return math.Sqrt(s / float64(len(errs)))
}

// Fig11bTwoSinc reproduces Fig. 11b: the measured combined CIR of a 6 m
// link with a reflector at 30° decomposed into its two sinc components by
// super-resolution. Columns: tap index, measured |CIR|, and the magnitudes
// of the two recovered components.
func Fig11bTwoSinc(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	rng := cfg.rng(112)
	s, err := nr.NewSounder(nr.Mu3(), 400e6, 64, 1e-6, nr.DefaultImpairments(), rng)
	if err != nil {
		panic(err)
	}
	// 6 m LOS (20 ns) plus reflection at 30° with ~8 ns excess delay.
	const excess = 8e-9
	m := channel.FromSpecs(env.Band28GHz(), u, 79, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 20},
		{AoDDeg: 30, RelAttDB: 4, PhaseRad: 0.8, DelayNs: 20 + excess*1e9},
	})
	w := m.PerAntennaCSI(0).Conj().Normalize()
	cir := s.CIR(s.Probe(m, w))
	res, err := superres.Extract(cir, []float64{0, excess}, s.DelayKernel, s.SampleSpacing(), superres.DefaultConfig())
	if err != nil {
		panic(err)
	}
	// Reconstruct the two components on the aligned grid.
	k0 := s.DelayKernel(res.BaseDelay).Scaled(res.Amp[0])
	k1 := s.DelayKernel(res.BaseDelay + excess).Scaled(res.Amp[1])

	t := stats.NewTable("Fig 11b — two-sinc decomposition of the measured CIR",
		"tap", "sinc0_mag", "sinc1_mag", "combined_mag")
	sum := k0.Add(k1).Abs()
	mags0 := k0.Abs()
	mags1 := k1.Abs()
	for i := 0; i < 16; i++ {
		t.AddRow(stats.Fmt(float64(i)), stats.Fmt(mags0[i]), stats.Fmt(mags1[i]), stats.Fmt(sum[i]))
	}
	t.AddRow("fit_residual", stats.Fmt(res.Residual), "", "")
	return t
}
