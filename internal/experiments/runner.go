package experiments

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"mmreliable/internal/scratch"
	"mmreliable/internal/seeds"
)

// This file is the deterministic parallel experiment engine: every
// Monte-Carlo figure generator shards its independent trials across a
// worker pool via ParallelTrials, and every trial draws randomness from
// its own SplitMix-derived stream. Because a trial's stream depends only
// on (Config.Seed, experiment label, trial index) — never on scheduling
// order or worker count — the produced tables are byte-identical for any
// Workers setting. See DESIGN.md §"Parallel experiment engine".

// Experiment stream labels. Each experiment (and each independent stream
// family inside an experiment) owns one label; distinct labels guarantee
// distinct, collision-free RNG streams under the SplitMix64 derivation.
// Never reuse a label across experiments.
const (
	labelFig15d        int64 = 154
	labelFig16         int64 = 160
	labelFig17b        int64 = 172
	labelFig17c        int64 = 173
	labelFig18a        int64 = 181
	labelFig18Ensemble int64 = 182
	labelFig18Scenario int64 = 183
	labelFig19         int64 = 191
	labelAblationA1    int64 = 901
	labelAblationA2    int64 = 902
	labelAblationA3    int64 = 903
	labelAblationA4    int64 = 904
	labelAblationA5    int64 = 905
	labelExtIRS        int64 = 951
	labelExtHandover   int64 = 961
	labelExtStation    int64 = 981
	labelExtCluster    int64 = 971
	labelExtMetro      int64 = 941
	labelExtHybrid     int64 = 921
)

// mixSeed folds the parts into one well-mixed 63-bit stream seed via the
// shared SplitMix64 derivation (internal/seeds) — the same construction the
// station serving engine uses for per-UE session streams, so labels drawn
// from this file's namespace never collide with session streams either.
func mixSeed(parts ...int64) int64 { return seeds.Mix(parts...) }

// stream returns a deterministic generator for the given label path. The
// stream depends only on (Seed, labels...) — not on Workers, scheduling, or
// how many other streams were derived before it.
func (c Config) stream(labels ...int64) *rand.Rand {
	return rand.New(rand.NewSource(mixSeed(append([]int64{c.Seed}, labels...)...)))
}

// trialSeed derives the deterministic scenario/stream seed for one trial of
// one experiment. Exposed to experiments that must hand an int64 seed to a
// scenario constructor rather than an *rand.Rand.
func (c Config) trialSeed(label int64, trial int) int64 {
	return mixSeed(c.Seed, label, int64(trial))
}

// trialRNG is the per-trial generator ParallelTrials hands to the trial
// function: stream (Seed, label, trial).
func (c Config) trialRNG(label int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(c.trialSeed(label, trial)))
}

// workers resolves the Workers knob: 0 means GOMAXPROCS, anything else is
// clamped to at least 1.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelTrials runs n independent Monte-Carlo trials of one experiment
// across the Config's worker pool and returns the per-trial results in
// trial order.
//
// Determinism contract: fn receives a private *rand.Rand derived from
// (cfg.Seed, label, trial) by SplitMix64 mixing, and its result lands at
// out[trial]. Neither the stream nor the slot depends on which worker ran
// the trial or in what order, so the returned slice is byte-identical for
// any worker count — Workers only changes wall-clock time. fn must not
// share mutable state across calls (each trial builds its own schemes,
// scenarios, and generators).
//
// Workspace contract: fn additionally receives the worker's scratch arena,
// Reset before every trial. Trials on the same worker reuse one warm arena,
// so the per-trial DSP hot paths (super-resolution fits, manager
// maintenance) run allocation-free after the first trial. Checkouts are
// zeroed, so arena reuse cannot leak state between trials — determinism is
// untouched. fn must not retain workspace-backed slices past its return.
func ParallelTrials[T any](cfg Config, label int64, n int, fn func(trial int, rng *rand.Rand, ws *scratch.Workspace) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		ws := scratch.New()
		for i := range out {
			ws.Reset()
			out[i] = fn(i, cfg.trialRNG(label, i), ws)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			ws := scratch.New()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				ws.Reset()
				out[i] = fn(i, cfg.trialRNG(label, i), ws)
			}
		}()
	}
	wg.Wait()
	return out
}
