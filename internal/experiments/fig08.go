package experiments

import (
	"math/cmplx"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/delayarray"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
	"mmreliable/internal/stats"
)

// Fig08DelaySpread reproduces Fig. 7/8: SNR across the 400 MHz band for a
// strong 2-path channel with 5 ns and 10 ns delay spreads, comparing the
// single beam, the plain constructive multi-beam (which ripples), and the
// delay-phased-array multi-beam (flat at the combining gain).
func Fig08DelaySpread(cfg Config) *stats.Table {
	u := antenna.NewULA(16, 28e9)
	budget := link.DefaultBudget()
	offs := channel.SubcarrierOffsets(400e6, 16)

	t := stats.NewTable("Fig 8 — SNR (dB) across frequency",
		"freq_MHz", "single_5ns", "plain_5ns", "delayopt_5ns", "plain_10ns", "delayopt_10ns")

	type resp struct{ single, plain, opt []float64 }
	evaluate := func(spreadNs float64) resp {
		m := channel.FromSpecs(env.Band28GHz(), u, 80, []channel.PathSpec{
			{AoDDeg: 0},
			{AoDDeg: 30, RelAttDB: 1, PhaseRad: 0.7, DelayNs: spreadNs},
		})
		delta, sigma := m.RelativeGain(1, 0)
		single := u.SingleBeam(0)
		plain, err := multibeam.Weights(u, []multibeam.Beam{
			multibeam.Reference(0),
			{Angle: dsp.Rad(30), Amp: delta, Phase: sigma},
		})
		if err != nil {
			panic(err)
		}
		da, err := delayarray.ForChannel(u,
			[]float64{0, dsp.Rad(30)},
			[]complex128{1, cmplx.Rect(delta, sigma)},
			[]float64{0, spreadNs * 1e-9})
		if err != nil {
			panic(err)
		}
		out := resp{}
		for _, f := range offs {
			out.single = append(out.single, budget.SNRdB(cmplx.Abs(m.Effective(single, f))))
			out.plain = append(out.plain, budget.SNRdB(cmplx.Abs(m.Effective(plain, f))))
			out.opt = append(out.opt, budget.SNRdB(cmplx.Abs(da.Effective(m, f))))
		}
		return out
	}
	r5 := evaluate(5)
	r10 := evaluate(10)
	for i, f := range offs {
		t.AddRow(stats.Fmt(f/1e6),
			stats.Fmt(r5.single[i]), stats.Fmt(r5.plain[i]), stats.Fmt(r5.opt[i]),
			stats.Fmt(r10.plain[i]), stats.Fmt(r10.opt[i]))
	}
	t.AddRow("ripple_dB",
		stats.Fmt(stats.Max(r5.single)-stats.Min(r5.single)),
		stats.Fmt(stats.Max(r5.plain)-stats.Min(r5.plain)),
		stats.Fmt(stats.Max(r5.opt)-stats.Min(r5.opt)),
		stats.Fmt(stats.Max(r10.plain)-stats.Min(r10.plain)),
		stats.Fmt(stats.Max(r10.opt)-stats.Min(r10.opt)))
	return t
}
