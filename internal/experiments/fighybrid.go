package experiments

import (
	"fmt"

	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/station"
	"mmreliable/internal/stats"
)

// ExtensionHybrid is the E8 capacity experiment for the hybrid multi-panel
// SDMA tier (internal/hybrid + the station's slot-sharing planner): it
// sweeps the UE count over a population of static links fanned across a
// ±40° arc (sim.SpreadStaticIndoor) and compares three serving disciplines
// under the same shared-airtime accounting —
//
//   - single-beam: one RF chain, managers pinned to MaxBeams = 1 — the
//     classic analog-beamforming TDMA cell;
//   - multi-beam: one RF chain with the paper's 3-beam managers — per-link
//     robustness, still one UE per slot;
//   - hybrid-SDMA: 4 RF chains with the tuned angular-separation planner
//     and per-slot digital MMSE combining (station.DefaultSDMAConfig) — up
//     to 4 screened UEs share every data slot.
//
// Reported per row: mean reliability and cell sum throughput per arm, the
// group count the planner committed, and the hybrid arm's sum-throughput
// gain over single-beam. The §8 claim under test: once the cell holds
// enough angularly separable UEs (≥8), spatial multiplexing multiplies sum
// throughput without giving up the paper's reliability operating point.
//
// Each arm rebuilds its station fresh over identical per-UE streams
// (trialSeed(labelExtHybrid, i)), so arms and rows are controlled
// comparisons, byte-identical at any Workers value. Note the comparison
// requires the hybrid gate: under MMR_HYBRID=off every arm degenerates to
// the legacy dedicated-airtime engine and the table shows no spread.
func ExtensionHybrid(cfg Config) *stats.Table {
	ues := []int{4, 8, 16}
	duration := 0.5
	if cfg.Quick {
		ues = []int{4, 8}
		duration = 0.4
	}
	arms := []struct {
		name     string
		sdma     station.SDMAConfig
		maxBeams int // 0 = manager default
	}{
		{"single", station.DefaultSDMAConfig(1), 1},
		{"multi", station.DefaultSDMAConfig(1), 0},
		{"sdma", station.DefaultSDMAConfig(4), 0},
	}
	run := func(n int, arm int) station.Results {
		scfg := station.DefaultConfig()
		scfg.Workers = cfg.Workers
		scfg.SDMA = arms[arm].sdma
		if arms[arm].maxBeams > 0 {
			scfg.Manager.MaxBeams = arms[arm].maxBeams
		}
		st, err := station.New(nr.Mu3(), scfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			seed := cfg.trialSeed(labelExtHybrid, i)
			frac := 0.5
			if n > 1 {
				frac = float64(i) / float64(n-1)
			}
			if _, err := st.Attach(station.SessionConfig{
				Scenario: sim.SpreadStaticIndoor(seed, frac),
				Budget:   sim.IndoorBudget(),
				Seed:     seed,
			}); err != nil {
				panic(err)
			}
		}
		return st.Run(duration)
	}
	t := stats.NewTable(
		"Extension E8 — hybrid multi-panel SDMA: sum throughput and reliability vs UE count",
		"ues", "rel_single", "sum_single_mbps", "rel_multi", "sum_multi_mbps",
		"rel_sdma", "sum_sdma_mbps", "sdma_groups", "sdma_gain")
	for _, n := range ues {
		single := run(n, 0)
		multi := run(n, 1)
		sdma := run(n, 2)
		gain := 0.0
		if single.SumThroughputBps > 0 {
			gain = sdma.SumThroughputBps / single.SumThroughputBps
		}
		t.AddRow(fmt.Sprintf("%d", n),
			stats.Fmt(single.MeanReliability), stats.Fmt(single.SumThroughputBps/1e6),
			stats.Fmt(multi.MeanReliability), stats.Fmt(multi.SumThroughputBps/1e6),
			stats.Fmt(sdma.MeanReliability), stats.Fmt(sdma.SumThroughputBps/1e6),
			fmt.Sprintf("%d", sdma.Counters.SDMAGroups), stats.Fmt(gain))
	}
	return t
}
