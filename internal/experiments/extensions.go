package experiments

import (
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/handover"
	"mmreliable/internal/core/hybrid"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// Extension experiments for the paper's §8 future-work directions.

// ExtensionIRS demonstrates the §8 vision: an intelligent reflecting
// surface engineered into an environment whose only natural alternate path
// is too weak, restoring multi-beam blockage resilience. Sweeps the surface
// gain.
func ExtensionIRS(cfg Config) *stats.Table {
	budget := sim.OutdoorBudget()
	t := stats.NewTable("Extension E1 — IRS gain vs link reliability under LOS blockage",
		"irs_gain_dB", "reliability", "mean_thr_Mbps", "beams")
	gains := []float64{0, 70, 75, 80}
	type outcome struct {
		summary link.Summary
		beams   int
	}
	// One independent trial per IRS gain. Each arm rebuilds the fading and
	// manager streams from the same cfg labels the serial loop used, so the
	// sweep is controlled and byte-identical at any worker count.
	rows := ParallelTrials(cfg, labelExtIRS, len(gains), func(trial int, _ *rand.Rand, ws *scratch.Workspace) outcome {
		gain := gains[trial]
		// A 40 m link with no natural reflector at all. The IRS sits
		// halfway, 2 m off the line (sub-ns excess delay, so its lobe
		// combines constructively across the band).
		e := env.NewEnvironment(env.Band28GHz())
		if gain > 0 {
			e.IRSs = []env.IRS{{Pos: env.Vec2{X: 20, Y: 2}, GainDB: gain}}
		}
		uePos := env.Vec2{X: 40, Y: 0}
		sc := &sim.Scenario{
			Env: e, GNB: env.Pose{Pos: env.Vec2{X: 0, Y: 0}},
			UE:       motion.Static{Pose: env.Pose{Pos: uePos, Facing: math.Pi}},
			Duration: 1.0, Num: nr.Mu3(),
			TxArray: antenna.NewULA(8, 28e9), MaxPaths: 3,
			Fading: sim.NewFading(sim.DefaultFadingSigmaDB, sim.DefaultFadingCoherence, cfg.rng(951)),
			Blockage: events.Schedule{{
				PathIndex: 0, Start: sim.StandardWarmup + 0.3, Duration: 0.35,
				DepthDB: 25, RampTime: events.RampFor(25),
			}},
		}
		mgr, err := manager.New("m", antenna.NewULA(8, 28e9), budget, nr.Mu3(), manager.DefaultConfig(), cfg.rng(952))
		if err != nil {
			panic(err)
		}
		mgr.UseWorkspace(ws)
		out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sc, mgr)
		if err != nil {
			panic(err)
		}
		return outcome{summary: out["m"].Summary, beams: mgr.NumBeams()}
	})
	for i, o := range rows {
		s := o.summary
		t.AddRow(stats.Fmt(gains[i]), stats.Fmt(s.Reliability), stats.Fmt(s.MeanThroughput/1e6),
			stats.Fmt(float64(o.beams)))
	}
	return t
}

// ExtensionRateAdaptation quantifies what measured-CQI link adaptation
// costs versus the genie MCS the rest of the harness (and the paper's
// post-processing) assumes: a fading mmWave link where the OLLA-driven
// adapter picks MCS from probe-based SNR estimates refreshed at different
// cadences.
func ExtensionRateAdaptation(cfg Config) *stats.Table {
	budget := sim.IndoorBudget()
	budget.TxPowerDBm -= 12 // mid-ladder so MCS choice matters
	// A fresh scenario per sweep row: the fading process is stateful in
	// time, and rows must replay the identical realization.
	mkScenario := func() *sim.Scenario {
		sc := sim.StaticIndoor(cfg.Seed)
		// Harsher, faster fading than the default so estimate staleness
		// actually crosses CQI boundaries.
		sc.Fading = sim.NewFading(2.5, 5e-3, cfg.rng(972))
		return sc
	}
	num := nr.Mu3()
	sounder, err := nr.NewSounder(num, budget.BandwidthHz, 64, budget.NoiseToTxAmpRatio(),
		nr.DefaultImpairments(), cfg.rng(971))
	if err != nil {
		panic(err)
	}
	offs := sounderOffsets(budget, 64)

	t := stats.NewTable("Extension E3 — measured-CQI link adaptation vs genie MCS",
		"csi_period_ms", "adaptive_Mbps", "genie_Mbps", "ratio", "bler")
	slots := int(1.0 / num.SlotDuration())
	if cfg.Quick {
		slots /= 4
	}
	for _, periodMs := range []float64{1, 5, 20, 80} {
		adapter := link.NewRateAdapter()
		var genie, adaptive float64
		every := int(periodMs * 1e-3 / num.SlotDuration())
		if every < 1 {
			every = 1
		}
		sc := mkScenario()
		// Fixed single beam on the LOS; the fading process moves the truth.
		m0 := sc.ChannelAt(0)
		w := m0.Tx.SingleBeam(m0.Paths[0].AoD)
		for s := 0; s < slots; s++ {
			tm := float64(s) * num.SlotDuration()
			m := sc.ChannelAt(tm)
			truth := budget.WidebandSNRdB(m.EffectiveWideband(w, offs))
			if s%every == 0 {
				adapter.Observe(budget.WidebandSNRdBFromMags(sounder.Probe(m, w).Abs()))
			}
			genie += link.Throughput(truth, budget.BandwidthHz, 0)
			thr, _ := adapter.Transmit(truth, budget.BandwidthHz)
			adaptive += thr
		}
		ratio := adaptive / genie
		t.AddRow(stats.Fmt(periodMs), stats.Fmt(adaptive/float64(slots)/1e6),
			stats.Fmt(genie/float64(slots)/1e6), stats.Fmt(ratio), stats.Fmt(adapter.BLER()))
	}
	return t
}

func sounderOffsets(b link.Budget, n int) []float64 {
	return channel.SubcarrierOffsets(b.BandwidthHz, n)
}

// ExtensionMultiUser demonstrates §8's hybrid-beamforming sketch: a 2-RF-
// chain gNB serving two users whose strongest paths collide in angle.
// Compared: time-division (each user alone, half the air time), naive
// spatial multiplexing (both chains on strongest paths), interference-aware
// beam selection, and the reliability upgrade that adds extra lobes only
// where they do not disturb the other user.
func ExtensionMultiUser(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	budget := sim.IndoorBudget()
	u1 := channel.FromSpecs(env.Band28GHz(), u, 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: -40, RelAttDB: 3, PhaseRad: 1.0, DelayNs: 0.9},
	})
	u2 := channel.FromSpecs(env.Band28GHz(), u, 80, []channel.PathSpec{
		{AoDDeg: 4}, // collides with user 1's LOS
		{AoDDeg: 45, RelAttDB: 3, PhaseRad: -0.5, DelayNs: 0.8},
	})
	users := []*channel.Model{u1, u2}

	tdm, err := hybrid.TDMRate(u, users, budget)
	if err != nil {
		panic(err)
	}
	naive, err := hybrid.NaiveBeams(u, users, budget)
	if err != nil {
		panic(err)
	}
	aware, err := hybrid.SelectBeams(u, users, budget)
	if err != nil {
		panic(err)
	}
	upgraded, err := hybrid.SelectBeams(u, users, budget)
	if err != nil {
		panic(err)
	}
	if err := upgraded.WithMultibeam(u, users, budget, 1.0); err != nil {
		panic(err)
	}

	t := stats.NewTable("Extension E4 — 2-user hybrid beamforming (sum rate, bits/s/Hz)",
		"scheme", "sum_rate", "user0_sinr_dB", "user1_sinr_dB")
	t.AddRow("tdm", stats.Fmt(tdm), "", "")
	t.AddRow("naive-spatial", stats.Fmt(naive.SumRate), stats.Fmt(naive.SINRdB[0]), stats.Fmt(naive.SINRdB[1]))
	t.AddRow("aware-spatial", stats.Fmt(aware.SumRate), stats.Fmt(aware.SINRdB[0]), stats.Fmt(aware.SINRdB[1]))
	t.AddRow("aware+multibeam", stats.Fmt(upgraded.SumRate), stats.Fmt(upgraded.SINRdB[0]), stats.Fmt(upgraded.SINRdB[1]))
	return t
}

// ExtensionHandover demonstrates the §4.1/§8 escape hatch: with the serving
// cell completely blocked for 400 ms, the handover controller moves the UE
// to a neighbor gNB while the pinned single-cell manager rides the outage.
func ExtensionHandover(cfg Config) *stats.Table {
	e := env.NewEnvironment(env.Band28GHz(),
		env.Wall{Seg: env.Segment{A: env.Vec2{X: -5, Y: 4}, B: env.Vec2{X: 25, Y: 4}}, Mat: env.Metal},
	)
	e.FrontHalfOnly = false
	mk := func() *sim.MultiScenario {
		sc := &sim.MultiScenario{
			Env: e,
			GNBs: []env.Pose{
				{Pos: env.Vec2{X: 0, Y: 0}, Facing: 0},
				{Pos: env.Vec2{X: 20, Y: 0}, Facing: math.Pi},
			},
			UE:       motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 8, Y: 0.5}, Facing: 0}},
			Duration: 1.0, Num: nr.Mu3(),
			TxArray: antenna.NewULA(8, 28e9), MaxPaths: 3,
		}
		for k := 0; k < sc.MaxPaths; k++ {
			sc.Blockage = append(sc.Blockage, events.Event{
				PathIndex: k, Start: 0.3, Duration: 0.4, DepthDB: 45,
				RampTime: events.RampFor(45),
			})
		}
		return sc
	}
	budget := sim.IndoorBudget()
	type outcome struct {
		summary   link.Summary
		handovers int
	}
	// Both schemes previously seeded from the SAME ad-hoc source
	// (cfg.Seed+961), i.e. a shared RNG stream; the runner now hands each
	// trial its own derived stream. The two replays shard across workers.
	rows := ParallelTrials(cfg, labelExtHandover, 2, func(trial int, rng *rand.Rand, ws *scratch.Workspace) outcome {
		runner := sim.Runner{}
		if trial == 0 {
			ctrl, err := handover.New("handover", 2, antenna.NewULA(8, 28e9), budget, nr.Mu3(),
				handover.DefaultConfig(), rng)
			if err != nil {
				panic(err)
			}
			out, err := runner.RunMulti(mk(), ctrl)
			if err != nil {
				panic(err)
			}
			return outcome{summary: out["handover"].Summary, handovers: ctrl.Handovers}
		}
		mgr, err := manager.New("pinned", antenna.NewULA(8, 28e9), budget, nr.Mu3(),
			manager.DefaultConfig(), rng)
		if err != nil {
			panic(err)
		}
		mgr.UseWorkspace(ws)
		out, err := runner.RunMulti(mk(), sim.Pinned{Scheme: mgr, GNB: 0})
		if err != nil {
			panic(err)
		}
		return outcome{summary: out["pinned"].Summary}
	})
	t := stats.NewTable("Extension E2 — handover vs pinned cell under 400 ms serving-cell blackout",
		"scheme", "reliability", "mean_thr_Mbps", "handovers")
	h := rows[0].summary
	p := rows[1].summary
	t.AddRow("handover", stats.Fmt(h.Reliability), stats.Fmt(h.MeanThroughput/1e6),
		stats.Fmt(float64(rows[0].handovers)))
	t.AddRow("pinned", stats.Fmt(p.Reliability), stats.Fmt(p.MeanThroughput/1e6), "0")
	return t
}
