package experiments

import (
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/core/superres"
	"mmreliable/internal/core/track"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// Fig17aPowerVsRotation reproduces Fig. 17a: the per-beam power of a
// 2-beam multi-beam, extracted by super-resolution, as the transmit array
// rotates — the power follows the beam pattern and a smoothed fit stays
// within ≈1 dB of it.
func Fig17aPowerVsRotation(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	b := link.DefaultBudget()
	s, err := nr.NewSounder(nr.Mu3(), b.BandwidthHz, 64, b.NoiseToTxAmpRatio(), nr.DefaultImpairments(), cfg.rng(171))
	if err != nil {
		panic(err)
	}
	base := channel.FromSpecs(env.Band28GHz(), u, env.Band28GHz().PathLossDB(7), []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 23.3},
		{AoDDeg: 30, RelAttDB: 4, PhaseRad: 1.0, DelayNs: 26.5},
	})
	w := base.PerAntennaCSI(0).Conj().Normalize()

	t := stats.NewTable("Fig 17a — per-beam power vs TX rotation",
		"rot_deg", "beam0_dB", "beam1_dB", "pattern0_dB", "pattern1_dB")
	var meas0, patt0 []float64
	for _, rotDeg := range stats.Linspace(0, 8, 9) {
		// Rotating the TX array shifts every departure angle.
		m := base.Clone()
		for k := range m.Paths {
			m.Paths[k].AoD += dsp.Rad(rotDeg)
		}
		cir := s.CIR(s.Probe(m, w))
		res, err := superres.Extract(cir, []float64{0, 3.2e-9}, s.DelayKernel, s.SampleSpacing(), superres.DefaultConfig())
		if err != nil {
			continue
		}
		p0 := dsp.DB(res.Power[0])
		p1 := dsp.DB(res.Power[1])
		// Expected from the beam pattern (relative to 0° rotation).
		g0 := dsp.DB(u.Gain(w, dsp.Rad(rotDeg)) / u.Gain(w, 0))
		g1 := dsp.DB(u.Gain(w, dsp.Rad(30+rotDeg)) / u.Gain(w, dsp.Rad(30)))
		t.AddRow(stats.Fmt(rotDeg), stats.Fmt(p0), stats.Fmt(p1), stats.Fmt(g0), stats.Fmt(g1))
		meas0 = append(meas0, p0)
		patt0 = append(patt0, g0)
	}
	// Fit agreement: normalize measured to its first sample, compare.
	if len(meas0) > 2 {
		var errs []float64
		for i := range meas0 {
			errs = append(errs, (meas0[i]-meas0[0])-patt0[i])
		}
		t.AddRow("beam0_fit_rmse_dB", stats.Fmt(rmse0(errs)), "", "", "")
	}
	return t
}

// Fig17bTrackingAccuracy reproduces Fig. 17b: the tracker's rotation-angle
// estimate versus ground truth for rotations of 2–8°, LOS and NLOS beams.
// Paper: ≈1° mean error.
func Fig17bTrackingAccuracy(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	t := stats.NewTable("Fig 17b — rotation tracking accuracy",
		"true_deg", "est_los_deg", "est_nlos_deg", "err_los_deg", "err_nlos_deg")
	trials := cfg.runs(50)
	tcfg := track.DefaultConfig()
	// The gantry micro-benchmark tracks rotations down to 2°, whose power
	// signature (≈0.3 dB) sits below the default deadband; the smoothed
	// series supports a tighter one here.
	tcfg.DeviationDeadbandDB = 0.2
	for degIdx, trueDeg := range []float64{2, 4, 6, 8} {
		trueDeg := trueDeg
		type est struct{ los, nlos float64 }
		ests := ParallelTrials(cfg, labelFig17b*10+int64(degIdx), trials, func(_ int, rng *rand.Rand, _ *scratch.Workspace) est {
			tr, err := track.New(u, tcfg, []float64{1e-8, 2.5e-9})
			if err != nil {
				panic(err)
			}
			var last []track.Status
			// Ramp the rotation over 16 observations with ±0.3 dB
			// measurement noise, then let the smoother settle.
			for step := 1; step <= 22; step++ {
				frac := math.Min(1, float64(step)/16)
				dev := dsp.Rad(trueDeg) * frac
				noise := func() float64 { return dsp.FromDB(0.3 * rng.NormFloat64()) }
				a0 := u.ArrayFactor(0, dev)
				a1 := u.ArrayFactor(dsp.Rad(30), dsp.Rad(30)+dev)
				p := []float64{1e-8 * a0 * a0 * noise(), 2.5e-9 * a1 * a1 * noise()}
				last, err = tr.Observe(float64(step)*0.02, p)
				if err != nil {
					panic(err)
				}
			}
			return est{los: dsp.Deg(last[0].Deviation), nlos: dsp.Deg(last[1].Deviation)}
		})
		var estL, estN []float64
		for _, e := range ests {
			estL = append(estL, e.los)
			estN = append(estN, e.nlos)
		}
		meanL, meanN := stats.Mean(estL), stats.Mean(estN)
		t.AddRow(stats.Fmt(trueDeg), stats.Fmt(meanL), stats.Fmt(meanN),
			stats.Fmt(math.Abs(meanL-trueDeg)), stats.Fmt(math.Abs(meanN-trueDeg)))
	}
	return t
}

// Fig17cTrackingThroughput reproduces Fig. 17c: throughput over a 1 s
// translation at 1.5 m/s for (i) no tracking, (ii) tracking without
// constructive combining, (iii) full mmReliable. Paper: no-tracking decays
// toward outage; tracking+CC holds; tracking-only sits ≈100 Mbps lower.
func Fig17cTrackingThroughput(cfg Config) *stats.Table {
	// Reduced transmit power keeps the link mid-MCS so rate differences
	// are visible (at full indoor power every scheme saturates CQI 15).
	budget := sim.IndoorBudget()
	budget.TxPowerDBm -= 10
	variants := []struct {
		tracking, cc bool
		name         string
	}{
		{true, true, "track+cc"},
		{true, false, "track-only"},
		{false, true, "no-track"},
	}
	// One trial per ablation arm. Every arm uses the same manager RNG
	// stream (the pre-port behavior: each run called cfg.rng(173) afresh)
	// so the comparison stays controlled; the arms are independent, so they
	// shard across the worker pool.
	sums := ParallelTrials(cfg, labelFig17c, len(variants), func(trial int, _ *rand.Rand, ws *scratch.Workspace) link.Summary {
		v := variants[trial]
		mcfg := manager.DefaultConfig()
		mcfg.ProactiveTracking = v.tracking
		mcfg.ConstructiveCombining = v.cc
		mgr, err := manager.New(v.name, antenna.NewULA(8, 28e9), budget, nr.Mu3(), mcfg, cfg.rng(173))
		if err != nil {
			panic(err)
		}
		mgr.UseWorkspace(ws)
		sc := sim.SmallSpreadMobile(cfg.Seed) // mobility only, no blocker
		out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sc, mgr)
		if err != nil {
			panic(err)
		}
		return out[v.name].Summary
	})
	full, noCC, noTrack := sums[0], sums[1], sums[2]

	t := stats.NewTable("Fig 17c — throughput under 1.5 m/s translation",
		"scheme", "mean_thr_Mbps", "mean_snr_dB", "reliability")
	add := func(name string, s link.Summary) {
		t.AddRow(name, stats.Fmt(s.MeanThroughput/1e6), stats.Fmt(s.MeanSNRdB), stats.Fmt(s.Reliability))
	}
	add("tracking+CC", full)
	add("tracking-only", noCC)
	add("no-tracking", noTrack)
	return t
}
