package experiments

import (
	"math/rand"
	"sync"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// fig18SchemeNames lists the compared schemes in table order.
var fig18SchemeNames = []string{"mmreliable", "beamspy", "reactive", "widebeam"}

// fig18Scheme builds one named scheme from its own RNG stream. Every
// scheme gets a private generator (derived per trial by the runner), so no
// two schemes — and no two concurrent trials — ever share a *rand.Rand.
// ws, when non-nil, is the worker's scratch arena handed to schemes that
// can use one (the manager's super-resolution fits).
func fig18Scheme(name string, budget link.Budget, withTracking bool, rng *rand.Rand, ws *scratch.Workspace) sim.Scheme {
	u := antenna.NewULA(8, 28e9)
	var s sim.Scheme
	var err error
	switch name {
	case "mmreliable":
		mcfg := manager.DefaultConfig()
		mcfg.ProactiveTracking = withTracking
		var mgr *manager.Manager
		mgr, err = manager.New(name, u, budget, nr.Mu3(), mcfg, rng)
		if mgr != nil {
			mgr.UseWorkspace(ws)
		}
		s = mgr
	case "reactive":
		s, err = baselines.NewSingleBeamReactive(u, budget, nr.Mu3(), baselines.DefaultOptions(), rng)
	case "beamspy":
		s, err = baselines.NewBeamSpy(u, budget, nr.Mu3(), baselines.DefaultOptions(), rng)
	case "widebeam":
		s, err = baselines.NewWideBeam(u, budget, nr.Mu3(), baselines.DefaultOptions(), rng)
	default:
		panic("experiments: unknown fig18 scheme " + name)
	}
	if err != nil {
		panic(err)
	}
	return s
}

// Fig18aStaticBlockage reproduces Fig. 18a: throughput of a static indoor
// link with 0, 1, or 2 blockers near the beams, for mmReliable WITHOUT
// proactive tracking (the paper's ablation) versus BeamSpy and the reactive
// baseline. Paper: mmReliable loses ≤ ~4% with two blockers; the
// single-beam baselines degrade heavily.
func Fig18aStaticBlockage(cfg Config) *stats.Table {
	budget := sim.IndoorBudget()
	t := stats.NewTable("Fig 18a — static link with blockers: mean throughput (Mbps)",
		"blockers", "mmreliable", "beamspy", "reactive")
	schemes := []string{"mmreliable", "beamspy", "reactive"}
	blockerCounts := []int{0, 1, 2}
	// One trial per (blocker count, scheme) cell; all 9 cells are
	// independent replays, sharded across the worker pool.
	cells := ParallelTrials(cfg, labelFig18a, len(blockerCounts)*len(schemes),
		func(trial int, rng *rand.Rand, ws *scratch.Workspace) float64 {
			blockers := blockerCounts[trial/len(schemes)]
			name := schemes[trial%len(schemes)]
			sc := sim.StaticIndoor(cfg.Seed)
			var sched events.Schedule
			for b := 0; b < blockers; b++ {
				// Each blocker occludes one beam's path for ~300 ms.
				start := sim.StandardWarmup + 0.15 + 0.35*float64(b)
				sched = append(sched, events.Event{
					PathIndex: b % 2, Start: start, Duration: 0.25,
					DepthDB: 26, RampTime: events.RampFor(26),
				})
			}
			sc.Blockage = sched
			out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sc, fig18Scheme(name, budget, false, rng, ws))
			if err != nil {
				panic(err)
			}
			return out[name].Summary.MeanThroughput / 1e6
		})
	for bi, blockers := range blockerCounts {
		row := cells[bi*len(schemes) : (bi+1)*len(schemes)]
		t.AddRow(stats.Fmt(float64(blockers)),
			stats.Fmt(row[0]), stats.Fmt(row[1]), stats.Fmt(row[2]))
	}
	return t
}

var fig18Cache sync.Map

// fig18Ensemble runs the mobile+blockage workload across seeds and
// collects per-run summaries per scheme. Results are memoized per Config so
// Fig. 18b and Fig. 18c share one ensemble.
func fig18Ensemble(cfg Config) map[string][]link.Summary {
	if v, ok := fig18Cache.Load(cfg); ok {
		return v.(map[string][]link.Summary)
	}
	out := fig18EnsembleUncached(cfg)
	fig18Cache.Store(cfg, out)
	return out
}

func fig18EnsembleUncached(cfg Config) map[string][]link.Summary {
	budget := sim.OutdoorBudget()
	runs := cfg.runs(40)
	nSchemes := len(fig18SchemeNames)
	// Flatten (run, scheme) into one trial grid: each cell replays the
	// run's scenario against one scheme. The scenario seed depends only on
	// the run index, so all four schemes of a run see identical channel
	// realizations (the controlled comparison the figure needs), while each
	// cell's scheme draws from its own derived stream.
	cells := ParallelTrials(cfg, labelFig18Ensemble, runs*nSchemes,
		func(trial int, rng *rand.Rand, ws *scratch.Workspace) link.Summary {
			run := trial / nSchemes
			name := fig18SchemeNames[trial%nSchemes]
			scenarioSeed := cfg.trialSeed(labelFig18Scenario, run)
			out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(
				sim.ThinMarginOutdoor(scenarioSeed), fig18Scheme(name, budget, true, rng, ws))
			if err != nil {
				panic(err)
			}
			return out[name].Summary
		})
	out := map[string][]link.Summary{}
	for trial, s := range cells {
		name := fig18SchemeNames[trial%nSchemes]
		out[name] = append(out[name], s)
	}
	return out
}

func pluck(ss []link.Summary, f func(link.Summary) float64) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = f(s)
	}
	return out
}

// Fig18bReliability reproduces Fig. 18b: the reliability distribution over
// the mobile+blockage ensemble. Paper medians: mmReliable ≈1.0, reactive
// ≈0.65, widebeam ≈0.5.
func Fig18bReliability(cfg Config) *stats.Table {
	ens := fig18Ensemble(cfg)
	t := stats.NewTable("Fig 18b — reliability over mobile+blockage runs",
		"scheme", "median", "p25", "p75", "mean")
	for _, name := range []string{"mmreliable", "beamspy", "reactive", "widebeam"} {
		rel := pluck(ens[name], func(s link.Summary) float64 { return s.Reliability })
		t.AddRow(name, stats.Fmt(stats.Median(rel)), stats.Fmt(stats.Percentile(rel, 25)),
			stats.Fmt(stats.Percentile(rel, 75)), stats.Fmt(stats.Mean(rel)))
	}
	return t
}

// Fig18cTradeoff reproduces Fig. 18c: the throughput–reliability scatter
// summarized per scheme, plus the headline throughput-reliability-product
// ratio. Paper: ≈2.3× TRP gain and ≈50% throughput gain over the reactive
// baseline.
func Fig18cTradeoff(cfg Config) *stats.Table {
	ens := fig18Ensemble(cfg)
	t := stats.NewTable("Fig 18c — throughput-reliability tradeoff",
		"scheme", "mean_thr_Mbps", "std_thr", "mean_rel", "trp_Mbps")
	trp := map[string]float64{}
	for _, name := range []string{"mmreliable", "beamspy", "reactive", "widebeam"} {
		thr := pluck(ens[name], func(s link.Summary) float64 { return s.MeanThroughput })
		rel := pluck(ens[name], func(s link.Summary) float64 { return s.Reliability })
		tp := pluck(ens[name], func(s link.Summary) float64 { return s.TRProduct })
		trp[name] = stats.Mean(tp)
		t.AddRow(name, stats.Fmt(stats.Mean(thr)/1e6), stats.Fmt(stats.Std(thr)/1e6),
			stats.Fmt(stats.Mean(rel)), stats.Fmt(stats.Mean(tp)/1e6))
	}
	if trp["reactive"] > 0 {
		t.AddRow("trp_ratio_vs_reactive", stats.Fmt(trp["mmreliable"]/trp["reactive"]), "", "", "")
	}
	return t
}

// Fig18dOverhead reproduces Fig. 18d: beam-management signaling time versus
// array size for traditional 5G NR (logarithmic scanning, grows with the
// array) against mmReliable's maintenance rounds (flat: 0.4 ms for 2-beam,
// 0.6 ms for 3-beam).
func Fig18dOverhead(cfg Config) *stats.Table {
	o := nr.OverheadModel{Num: nr.Mu3()}
	t := stats.NewTable("Fig 18d — probing overhead (ms)",
		"antennas", "nr_training", "mmreliable_2beam", "mmreliable_3beam")
	for _, n := range []int{8, 16, 32, 64} {
		t.AddRow(stats.Fmt(float64(n)),
			stats.Fmt(o.NRTrainingTime(n)*1e3),
			stats.Fmt(o.MaintenanceTime(2)*1e3),
			stats.Fmt(o.MaintenanceTime(3)*1e3))
	}
	t.AddRow("probes_2beam", "", stats.Fmt(float64(o.MaintenanceProbes(2))), "")
	t.AddRow("probes_3beam", "", "", stats.Fmt(float64(o.MaintenanceProbes(3))))
	return t
}
