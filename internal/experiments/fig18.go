package experiments

import (
	"math/rand"
	"sync"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// fig18Schemes builds one instance of every compared scheme.
func fig18Schemes(seed int64, budget link.Budget, withTracking bool) (*manager.Manager, *baselines.SingleBeamReactive, *baselines.BeamSpy, *baselines.WideBeam) {
	u := func() *antenna.ULA { return antenna.NewULA(8, 28e9) }
	mcfg := manager.DefaultConfig()
	mcfg.ProactiveTracking = withTracking
	mgr, err := manager.New("mmreliable", u(), budget, nr.Mu3(), mcfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	rc, err := baselines.NewSingleBeamReactive(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		panic(err)
	}
	bs, err := baselines.NewBeamSpy(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(seed+2)))
	if err != nil {
		panic(err)
	}
	wb, err := baselines.NewWideBeam(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(seed+3)))
	if err != nil {
		panic(err)
	}
	return mgr, rc, bs, wb
}

// Fig18aStaticBlockage reproduces Fig. 18a: throughput of a static indoor
// link with 0, 1, or 2 blockers near the beams, for mmReliable WITHOUT
// proactive tracking (the paper's ablation) versus BeamSpy and the reactive
// baseline. Paper: mmReliable loses ≤ ~4% with two blockers; the
// single-beam baselines degrade heavily.
func Fig18aStaticBlockage(cfg Config) *stats.Table {
	budget := sim.IndoorBudget()
	t := stats.NewTable("Fig 18a — static link with blockers: mean throughput (Mbps)",
		"blockers", "mmreliable", "beamspy", "reactive")
	runner := sim.Runner{Warmup: sim.StandardWarmup}
	for _, blockers := range []int{0, 1, 2} {
		mkScenario := func() *sim.Scenario {
			sc := sim.StaticIndoor(cfg.Seed)
			var sched events.Schedule
			for b := 0; b < blockers; b++ {
				// Each blocker occludes one beam's path for ~300 ms.
				start := sim.StandardWarmup + 0.15 + 0.35*float64(b)
				sched = append(sched, events.Event{
					PathIndex: b % 2, Start: start, Duration: 0.25,
					DepthDB: 26, RampTime: events.RampFor(26),
				})
			}
			sc.Blockage = sched
			return sc
		}
		mgr, rc, bs, _ := fig18Schemes(cfg.Seed+int64(blockers)*10, budget, false)
		outM, err := runner.Run(mkScenario(), mgr)
		if err != nil {
			panic(err)
		}
		outB, err := runner.Run(mkScenario(), bs)
		if err != nil {
			panic(err)
		}
		outR, err := runner.Run(mkScenario(), rc)
		if err != nil {
			panic(err)
		}
		t.AddRow(stats.Fmt(float64(blockers)),
			stats.Fmt(outM["mmreliable"].Summary.MeanThroughput/1e6),
			stats.Fmt(outB["beamspy"].Summary.MeanThroughput/1e6),
			stats.Fmt(outR["reactive"].Summary.MeanThroughput/1e6))
	}
	return t
}

var fig18Cache sync.Map

// fig18Ensemble runs the mobile+blockage workload across seeds and
// collects per-run summaries per scheme. Results are memoized per Config so
// Fig. 18b and Fig. 18c share one ensemble.
func fig18Ensemble(cfg Config) map[string][]link.Summary {
	if v, ok := fig18Cache.Load(cfg); ok {
		return v.(map[string][]link.Summary)
	}
	out := fig18EnsembleUncached(cfg)
	fig18Cache.Store(cfg, out)
	return out
}

func fig18EnsembleUncached(cfg Config) map[string][]link.Summary {
	budget := sim.OutdoorBudget()
	runner := sim.Runner{Warmup: sim.StandardWarmup}
	out := map[string][]link.Summary{}
	runs := cfg.runs(40)
	for i := 0; i < runs; i++ {
		seed := cfg.Seed*100 + int64(i)
		mgr, rc, bs, wb := fig18Schemes(seed, budget, true)
		for _, pair := range []struct {
			name   string
			scheme sim.Scheme
		}{
			{"mmreliable", mgr}, {"reactive", rc}, {"beamspy", bs}, {"widebeam", wb},
		} {
			res, err := runner.Run(sim.ThinMarginOutdoor(seed), pair.scheme)
			if err != nil {
				panic(err)
			}
			out[pair.name] = append(out[pair.name], res[pair.name].Summary)
		}
	}
	return out
}

func pluck(ss []link.Summary, f func(link.Summary) float64) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = f(s)
	}
	return out
}

// Fig18bReliability reproduces Fig. 18b: the reliability distribution over
// the mobile+blockage ensemble. Paper medians: mmReliable ≈1.0, reactive
// ≈0.65, widebeam ≈0.5.
func Fig18bReliability(cfg Config) *stats.Table {
	ens := fig18Ensemble(cfg)
	t := stats.NewTable("Fig 18b — reliability over mobile+blockage runs",
		"scheme", "median", "p25", "p75", "mean")
	for _, name := range []string{"mmreliable", "beamspy", "reactive", "widebeam"} {
		rel := pluck(ens[name], func(s link.Summary) float64 { return s.Reliability })
		t.AddRow(name, stats.Fmt(stats.Median(rel)), stats.Fmt(stats.Percentile(rel, 25)),
			stats.Fmt(stats.Percentile(rel, 75)), stats.Fmt(stats.Mean(rel)))
	}
	return t
}

// Fig18cTradeoff reproduces Fig. 18c: the throughput–reliability scatter
// summarized per scheme, plus the headline throughput-reliability-product
// ratio. Paper: ≈2.3× TRP gain and ≈50% throughput gain over the reactive
// baseline.
func Fig18cTradeoff(cfg Config) *stats.Table {
	ens := fig18Ensemble(cfg)
	t := stats.NewTable("Fig 18c — throughput-reliability tradeoff",
		"scheme", "mean_thr_Mbps", "std_thr", "mean_rel", "trp_Mbps")
	trp := map[string]float64{}
	for _, name := range []string{"mmreliable", "beamspy", "reactive", "widebeam"} {
		thr := pluck(ens[name], func(s link.Summary) float64 { return s.MeanThroughput })
		rel := pluck(ens[name], func(s link.Summary) float64 { return s.Reliability })
		tp := pluck(ens[name], func(s link.Summary) float64 { return s.TRProduct })
		trp[name] = stats.Mean(tp)
		t.AddRow(name, stats.Fmt(stats.Mean(thr)/1e6), stats.Fmt(stats.Std(thr)/1e6),
			stats.Fmt(stats.Mean(rel)), stats.Fmt(stats.Mean(tp)/1e6))
	}
	if trp["reactive"] > 0 {
		t.AddRow("trp_ratio_vs_reactive", stats.Fmt(trp["mmreliable"]/trp["reactive"]), "", "", "")
	}
	return t
}

// Fig18dOverhead reproduces Fig. 18d: beam-management signaling time versus
// array size for traditional 5G NR (logarithmic scanning, grows with the
// array) against mmReliable's maintenance rounds (flat: 0.4 ms for 2-beam,
// 0.6 ms for 3-beam).
func Fig18dOverhead(cfg Config) *stats.Table {
	o := nr.OverheadModel{Num: nr.Mu3()}
	t := stats.NewTable("Fig 18d — probing overhead (ms)",
		"antennas", "nr_training", "mmreliable_2beam", "mmreliable_3beam")
	for _, n := range []int{8, 16, 32, 64} {
		t.AddRow(stats.Fmt(float64(n)),
			stats.Fmt(o.NRTrainingTime(n)*1e3),
			stats.Fmt(o.MaintenanceTime(2)*1e3),
			stats.Fmt(o.MaintenanceTime(3)*1e3))
	}
	t.AddRow("probes_2beam", "", stats.Fmt(float64(o.MaintenanceProbes(2))), "")
	t.AddRow("probes_3beam", "", "", stats.Fmt(float64(o.MaintenanceProbes(3))))
	return t
}
