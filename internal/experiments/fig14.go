package experiments

import (
	"math"

	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/dsp"
	"mmreliable/internal/stats"
)

// Fig14Sensitivity reproduces Fig. 14: the SNR gain of a 2-beam multi-beam
// over a single beam as a function of the error in the applied second-beam
// phase and amplitude, for a channel with a −3 dB second path at −40°
// relative phase. Paper landmarks: 1.76 dB peak at perfect estimation,
// positive gain within ±75° phase error, sharp loss at 180°.
func Fig14Sensitivity(cfg Config) *stats.Table {
	delta := dsp.AmpFromDB(-3)
	phaseErrs := []float64{0, 15, 30, 45, 60, 75, 90, 120, 150, 180}
	ampErrs := []float64{0, -3, -6, -10, -20}

	headers := []string{"phase_err_deg"}
	for _, a := range ampErrs {
		headers = append(headers, "amp_err_"+stats.Fmt(a)+"dB")
	}
	t := stats.NewTable("Fig 14 — 2-beam SNR gain (dB) vs estimation error (δ = −3 dB channel)", headers...)
	for _, pe := range phaseErrs {
		row := []string{stats.Fmt(pe)}
		for _, ae := range ampErrs {
			applied := delta * dsp.AmpFromDB(ae)
			g := multibeam.TheoreticalGain(delta, applied, dsp.Rad(pe))
			row = append(row, stats.Fmt(10*math.Log10(g)))
		}
		t.AddRow(row...)
	}
	// Landmarks.
	peak := 10 * math.Log10(multibeam.TheoreticalGain(delta, delta, 0))
	at75 := 10 * math.Log10(multibeam.TheoreticalGain(delta, delta, dsp.Rad(75)))
	at180 := 10 * math.Log10(multibeam.TheoreticalGain(delta, delta, math.Pi))
	t.AddRow("peak_dB", stats.Fmt(peak), "", "", "", "")
	t.AddRow("gain_at_75deg", stats.Fmt(at75), "", "", "", "")
	t.AddRow("gain_at_180deg", stats.Fmt(at180), "", "", "", "")
	return t
}
