package experiments

import (
	"fmt"

	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/station"
	"mmreliable/internal/stats"
)

// ExtensionStation is the multi-UE capacity experiment for the station
// serving engine (internal/station): it sweeps the number of concurrently
// served UEs under one fixed per-frame probe budget and reports how
// per-link reliability, SNR, aggregate training overhead, and grant
// fairness hold up as the cell fills — the paper's §5 low-overhead claim
// lifted from one link to a serving cell. Half the UEs are static indoor
// links, half face a walking blocker, so the scheduler arbitrates between
// quiescent and emergency traffic.
//
// Each row builds its station fresh; UE i's scenario/sounder stream is
// derived from (Seed, labelExtStation, i) and therefore identical across
// rows — adding UEs is a controlled comparison, and the table is
// byte-identical for any Workers value (the station's own determinism
// contract).
func ExtensionStation(cfg Config) *stats.Table {
	ues := []int{4, 8, 16, 32}
	duration := 0.5
	if cfg.Quick {
		ues = []int{2, 4, 8}
		duration = 0.3
	}
	scfg := station.DefaultConfig()
	scfg.Workers = cfg.Workers
	t := stats.NewTable(
		fmt.Sprintf("Extension E5 — serving-cell capacity under a %d-grant/frame probe budget",
			scfg.ProbeBudget),
		"ues", "reliability", "median_snr_dB", "overhead_pct", "grants", "denials", "preempt", "minmax_grant")
	for _, n := range ues {
		st, err := station.New(nr.Mu3(), scfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			seed := cfg.trialSeed(labelExtStation, i)
			var sc *sim.Scenario
			if i%2 == 0 {
				sc = sim.StaticIndoor(seed)
			} else {
				sc = sim.WalkingBlockerIndoor(seed)
			}
			if _, err := st.Attach(station.SessionConfig{
				Scenario: sc,
				Budget:   sim.IndoorBudget(),
				Seed:     seed,
			}); err != nil {
				panic(err)
			}
		}
		res := st.Run(duration)
		c := res.Counters
		overheadPct := 0.0
		if c.SessionSlots > 0 {
			overheadPct = 100 * float64(c.TrainingSlots) / float64(c.SessionSlots)
		}
		t.AddRow(fmt.Sprintf("%d", n), stats.Fmt(res.MeanReliability),
			stats.Fmt(res.MedianSNRdB), stats.Fmt(overheadPct),
			fmt.Sprintf("%d", c.Grants), fmt.Sprintf("%d", c.BudgetDenials),
			fmt.Sprintf("%d", c.Preemptions), stats.Fmt(res.MinMaxGrantRatio))
	}
	return t
}
