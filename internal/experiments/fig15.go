package experiments

import (
	"math"
	"math/cmplx"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/core/probe"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/stats"
)

// liveProber binds a sounder to a channel for the probe estimator.
type liveProber struct {
	s *nr.Sounder
	m *channel.Model
}

// Probe implements probe.Prober.
func (p *liveProber) Probe(w cmx.Vector) cmx.Vector { return p.s.Probe(p.m, w) }

// fig15Channel is the paper's §6.1 setup: indoor 7 m link, LOS at 0°, NLOS
// at 30°, with a small excess delay so constructive combining holds across
// the band.
func fig15Channel() *channel.Model {
	return channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9),
		env.Band28GHz().PathLossDB(7), []channel.PathSpec{
			{AoDDeg: 0, DelayNs: 23.3},
			{AoDDeg: 30, RelAttDB: 4, PhaseRad: 2.5, DelayNs: 24.2},
		})
}

func fig15Prober(cfg Config, offset int64) (*liveProber, link.Budget) {
	b := link.DefaultBudget()
	s, err := nr.NewSounder(nr.Mu3(), b.BandwidthHz, 64, b.NoiseToTxAmpRatio(), nr.DefaultImpairments(), cfg.rng(offset))
	if err != nil {
		panic(err)
	}
	return &liveProber{s: s, m: fig15Channel()}, b
}

// Fig15aPhaseScan reproduces Fig. 15a: the link SNR as the second beam's
// phase is exhaustively scanned, with the two-probe estimate overlaid.
// Paper: ≈27 dB peak, ≈1 dB variation within ±70°, ≈13 dB crash at 180°
// error, estimate ≈2.5 rad.
func Fig15aPhaseScan(cfg Config) *stats.Table {
	pr, budget := fig15Prober(cfg, 151)
	m := pr.m
	u := m.Tx
	delta, sigma := m.RelativeGain(1, 0)
	offs := channel.SubcarrierOffsets(budget.BandwidthHz, 64)

	t := stats.NewTable("Fig 15a — SNR vs second-beam phase", "phase_rad", "snr_dB")
	best, bestPh := math.Inf(-1), 0.0
	for _, ph := range stats.Linspace(0, 2*math.Pi, 25) {
		w, err := multibeam.Weights(u, []multibeam.Beam{
			multibeam.Reference(0),
			{Angle: dsp.Rad(30), Amp: delta, Phase: ph},
		})
		if err != nil {
			continue
		}
		snr := budget.WidebandSNRdB(m.EffectiveWideband(w, offs))
		if snr > best {
			best, bestPh = snr, ph
		}
		t.AddRow(stats.Fmt(ph), stats.Fmt(snr))
	}
	// Two-probe estimate.
	m1 := pr.Probe(u.SingleBeam(0)).Abs()
	m2 := pr.Probe(u.SingleBeam(dsp.Rad(30))).Abs()
	est, err := probe.EstimatePairWithDelay(pr, u, 0, dsp.Rad(30), m1, m2, 0.9e-9, budget.BandwidthHz)
	if err != nil {
		panic(err)
	}
	t.AddRow("scan_best_phase", stats.Fmt(bestPh), stats.Fmt(best))
	t.AddRow("true_sigma", stats.Fmt(math.Mod(sigma+2*math.Pi, 2*math.Pi)), "")
	t.AddRow("twoprobe_sigma", stats.Fmt(math.Mod(est.Sigma+2*math.Pi, 2*math.Pi)), "")
	return t
}

// Fig15bAmpScan reproduces Fig. 15b: SNR as the second beam's amplitude is
// scanned from −10 to +2 dB, with the two-probe estimate overlaid. Paper:
// broad optimum around −5…−3 dB; estimate ≈ −3.8 dB.
func Fig15bAmpScan(cfg Config) *stats.Table {
	pr, budget := fig15Prober(cfg, 152)
	m := pr.m
	u := m.Tx
	_, sigma := m.RelativeGain(1, 0)
	offs := channel.SubcarrierOffsets(budget.BandwidthHz, 64)

	t := stats.NewTable("Fig 15b — SNR vs second-beam amplitude", "amp_dB", "snr_dB")
	for _, ampDB := range stats.Linspace(-10, 2, 13) {
		w, err := multibeam.Weights(u, []multibeam.Beam{
			multibeam.Reference(0),
			{Angle: dsp.Rad(30), Amp: dsp.AmpFromDB(ampDB), Phase: sigma},
		})
		if err != nil {
			continue
		}
		t.AddRow(stats.Fmt(ampDB), stats.Fmt(budget.WidebandSNRdB(m.EffectiveWideband(w, offs))))
	}
	m1 := pr.Probe(u.SingleBeam(0)).Abs()
	m2 := pr.Probe(u.SingleBeam(dsp.Rad(30))).Abs()
	est, err := probe.EstimatePairWithDelay(pr, u, 0, dsp.Rad(30), m1, m2, 0.9e-9, budget.BandwidthHz)
	if err != nil {
		panic(err)
	}
	t.AddRow("twoprobe_amp_dB", stats.Fmt(dsp.AmpDB(est.Delta)), "")
	return t
}

// Fig15cPhaseStability reproduces Fig. 15c: the per-subcarrier optimal
// second-beam phase across a 100 MHz band. Paper: variation < 1 rad.
func Fig15cPhaseStability(cfg Config) *stats.Table {
	b := link.DefaultBudget()
	b.BandwidthHz = 100e6
	s, err := nr.NewSounder(nr.Mu3(), b.BandwidthHz, 64, b.NoiseToTxAmpRatio(), nr.DefaultImpairments(), cfg.rng(153))
	if err != nil {
		panic(err)
	}
	pr := &liveProber{s: s, m: fig15Channel()}
	u := pr.m.Tx
	m1 := pr.Probe(u.SingleBeam(0)).Abs()
	m2 := pr.Probe(u.SingleBeam(dsp.Rad(30))).Abs()
	// Re-issue the two combined probes and reuse their CSI for the
	// per-subcarrier phase profile.
	w3, _ := combined(u, 0, dsp.Rad(30), 0)
	w4, _ := combined(u, 0, dsp.Rad(30), math.Pi/2)
	csi3 := pr.Probe(w3)
	csi4 := pr.Probe(w4)
	phases := probe.PhaseStability(u, 0, dsp.Rad(30), m1, m2, csi3, csi4)

	t := stats.NewTable("Fig 15c — per-subcarrier optimal phase over 100 MHz", "subcarrier", "phase_rad")
	for k := 0; k < len(phases); k += 4 {
		t.AddRow(stats.Fmt(float64(k)), stats.Fmt(phases[k]))
	}
	t.AddRow("spread_rad", stats.Fmt(stats.Max(phases)-stats.Min(phases)), "")
	return t
}

func combined(u *antenna.ULA, phiRef, phiK, psi float64) (cmx.Vector, float64) {
	sum := u.SingleBeam(phiRef).Add(u.SingleBeam(phiK).Scaled(cmplx.Exp(complex(0, psi))))
	n2 := sum.Norm2()
	return sum.Normalize(), n2
}

// Fig15dOracleGap reproduces Fig. 15d: the SNR gain over a single beam of
// the 2-beam and 3-beam constructive multi-beams, the sub-array-split
// multi-beam (Aykin et al.), and the per-antenna-CSI oracle, averaged over
// an ensemble of sparse 3-path channels. Paper: 2-beam ≈1.0 dB, 3-beam
// ≈2.27 dB ≈ 92% of the oracle's ≈2.5 dB.
func Fig15dOracleGap(cfg Config) *stats.Table {
	u := antenna.NewULA(8, 28e9)
	budget := link.DefaultBudget()
	// 4-path channels: the multi-beam uses only the strongest 2–3 paths
	// while the per-antenna-CSI oracle exploits everything, which is what
	// opens the paper's ≈92% gap between 3-beam and oracle.
	params := channel.ClusterParams{
		MinPaths: 4, MaxPaths: 4,
		LOSLossDB:    env.Band28GHz().PathLossDB(7),
		RelAttMeanDB: 5, RelAttStdDB: 1.5,
		MaxExcessDelayNs: 0.8, // sub-resolution spread: the combining regime
		SectorDeg:        100,
		MinSepDeg:        18, // resolvable by the 8-element array
	}
	offs := channel.SubcarrierOffsets(budget.BandwidthHz, 32)
	type trial struct {
		g2, g3, gSplit, gOracle float64
		ok2, ok3, okS, okO      bool
	}
	trials := ParallelTrials(cfg, labelFig15d, cfg.runs(200), func(_ int, rng *rand.Rand, _ *scratch.Workspace) trial {
		m := channel.Cluster(rng, env.Band28GHz(), u, params)
		// Order paths strongest first, as beam training would find them.
		sortPathsByLoss(m)
		single := budget.WidebandSNRdB(m.EffectiveWideband(u.SingleBeam(m.Paths[0].AoD), offs))
		mk := func(k int) []multibeam.Beam {
			var beams []multibeam.Beam
			for p := 0; p < k; p++ {
				d, s := m.RelativeGain(p, 0)
				beams = append(beams, multibeam.Beam{Angle: m.Paths[p].AoD, Amp: d, Phase: s})
			}
			return beams
		}
		var tr trial
		if w, err := multibeam.Weights(u, mk(2)); err == nil {
			tr.g2, tr.ok2 = budget.WidebandSNRdB(m.EffectiveWideband(w, offs))-single, true
		}
		if w, err := multibeam.Weights(u, mk(3)); err == nil {
			tr.g3, tr.ok3 = budget.WidebandSNRdB(m.EffectiveWideband(w, offs))-single, true
		}
		if w, err := multibeam.SubArraySplit(u, mk(3)); err == nil {
			tr.gSplit, tr.okS = budget.WidebandSNRdB(m.EffectiveWideband(w, offs))-single, true
		}
		if w, err := multibeam.Optimal(m.PerAntennaCSI(0)); err == nil {
			tr.gOracle, tr.okO = budget.WidebandSNRdB(m.EffectiveWideband(w, offs))-single, true
		}
		return tr
	})
	var g2, g3, gSplit, gOracle []float64
	for _, tr := range trials {
		if tr.ok2 {
			g2 = append(g2, tr.g2)
		}
		if tr.ok3 {
			g3 = append(g3, tr.g3)
		}
		if tr.okS {
			gSplit = append(gSplit, tr.gSplit)
		}
		if tr.okO {
			gOracle = append(gOracle, tr.gOracle)
		}
	}
	t := stats.NewTable("Fig 15d — SNR gain over single beam (dB)",
		"scheme", "mean_gain_dB", "p25", "p75")
	add := func(name string, xs []float64) {
		t.AddRow(name, stats.Fmt(stats.Mean(xs)), stats.Fmt(stats.Percentile(xs, 25)), stats.Fmt(stats.Percentile(xs, 75)))
	}
	add("2-beam", g2)
	add("3-beam", g3)
	add("subarray-split", gSplit)
	add("oracle", gOracle)
	t.AddRow("3beam_vs_oracle_pct", stats.Fmt(100*stats.Mean(g3)/stats.Mean(gOracle)), "", "")
	return t
}

// sortPathsByLoss orders the model's paths strongest first.
func sortPathsByLoss(m *channel.Model) {
	for i := 1; i < len(m.Paths); i++ {
		for j := i; j > 0 && m.Paths[j].LossDB < m.Paths[j-1].LossDB; j-- {
			m.Paths[j], m.Paths[j-1] = m.Paths[j-1], m.Paths[j]
		}
	}
}
