package experiments

import (
	"math/rand"
	"testing"

	"mmreliable/internal/scratch"
)

// TestTrialSeedsDistinct asserts that no two (experiment label, trial)
// pairs derive the same RNG stream — the property the old additive-offset
// seeding (cfg.Seed+161, seed+1, seed+2, …) could not guarantee.
func TestTrialSeedsDistinct(t *testing.T) {
	cfg := Config{Seed: 1}
	labels := []int64{
		labelFig15d, labelFig16, labelFig17b, labelFig17c,
		labelFig18a, labelFig18Ensemble, labelFig18Scenario, labelFig19,
		labelAblationA1, labelAblationA2, labelAblationA3, labelAblationA4,
		labelAblationA5, labelExtIRS, labelExtHandover,
	}
	seen := map[int64]string{}
	for _, label := range labels {
		for trial := 0; trial < 200; trial++ {
			s := cfg.trialSeed(label, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("stream seed collision: (label %d, trial %d) vs %s", label, trial, prev)
			}
			seen[s] = string(rune(label)) + "/" + string(rune(trial))
		}
	}
	// Nearby user seeds must not alias either (seed 1 trial k vs seed 2
	// trial k was exactly the old failure mode with additive offsets).
	cfg2 := Config{Seed: 2}
	for _, label := range labels {
		for trial := 0; trial < 200; trial++ {
			if _, dup := seen[cfg2.trialSeed(label, trial)]; dup {
				t.Fatalf("seed-1 and seed-2 share a stream at label %d trial %d", label, trial)
			}
		}
	}
}

// TestTrialStreamsDecorrelated spot-checks that adjacent trials do not
// produce correlated draws (a symptom of structured seeding).
func TestTrialStreamsDecorrelated(t *testing.T) {
	cfg := Config{Seed: 1}
	a := cfg.trialRNG(labelFig15d, 0)
	b := cfg.trialRNG(labelFig15d, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent trial streams share %d of 64 draws", same)
	}
}

// TestParallelTrialsDeterministic verifies the engine's core contract:
// results are identical for any worker count, and each slot matches the
// direct (seed, label, trial) derivation.
func TestParallelTrialsDeterministic(t *testing.T) {
	fn := func(trial int, rng *rand.Rand, ws *scratch.Workspace) float64 {
		if ws == nil {
			t.Fatal("trial received a nil workspace")
		}
		return float64(trial) + rng.Float64()
	}
	const n = 100
	base := Config{Seed: 7, Workers: 1}
	want := ParallelTrials(base, 999, n, fn)
	for _, workers := range []int{2, 3, 8, 64} {
		cfg := Config{Seed: 7, Workers: workers}
		got := ParallelTrials(cfg, 999, n, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d trial %d: %g != %g", workers, i, got[i], want[i])
			}
		}
	}
	// Slot i must equal the direct derivation, independent of scheduling.
	for i := 0; i < n; i++ {
		direct := fn(i, base.trialRNG(999, i), scratch.New())
		if want[i] != direct {
			t.Fatalf("trial %d result %g != direct derivation %g", i, want[i], direct)
		}
	}
	if got := ParallelTrials(base, 999, 0, fn); got != nil {
		t.Fatalf("n=0 should return nil, got %v", got)
	}
}

// TestWorkersResolution pins the Workers-knob semantics.
func TestWorkersResolution(t *testing.T) {
	if w := (Config{Workers: 4}).workers(); w != 4 {
		t.Fatalf("Workers=4 resolved to %d", w)
	}
	if w := (Config{}).workers(); w < 1 {
		t.Fatalf("Workers=0 resolved to %d, want ≥1 (GOMAXPROCS)", w)
	}
}

// figDeterminism runs one figure at two worker counts and requires
// byte-identical tables.
func figDeterminism(t *testing.T, id string) {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	serial := e.Run(Config{Seed: 1, Quick: true, Workers: 1}).String()
	parallel := e.Run(Config{Seed: 1, Quick: true, Workers: 8}).String()
	if serial != parallel {
		t.Fatalf("fig %s differs between Workers=1 and Workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			id, serial, parallel)
	}
}

// TestFigDeterminismAcrossWorkers is the engine's acceptance test: the
// ported figure generators must produce byte-identical tables at any
// worker count. Fig 15a is scan-only (trivially deterministic), 15d and a1
// are Monte-Carlo ensembles, 16 is the two-scheme replay.
func TestFigDeterminismAcrossWorkers(t *testing.T) {
	for _, id := range []string{"15a", "15d", "16", "a1"} {
		figDeterminism(t, id)
	}
}

// TestFig18bDeterminismAcrossWorkers covers the heaviest ported ensemble
// (40 mobile+blockage runs × 4 schemes at full scale; quick here).
func TestFig18bDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble experiment")
	}
	figDeterminism(t, "18b")
}

// TestParallelExperimentRaceSafety runs one Monte-Carlo figure with a
// saturated worker pool; executed under -race in CI it proves no
// *rand.Rand (or any other mutable state) is shared across trial
// goroutines.
func TestParallelExperimentRaceSafety(t *testing.T) {
	_ = Fig15dOracleGap(Config{Seed: 3, Quick: true, Workers: 8})
	_ = Fig16Blockage(Config{Seed: 3, Quick: true, Workers: 2})
}
