// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigXX function produces the same data series the paper
// plots, as a stats.Table, so the benchmark harness (bench_test.go) and the
// mmbench command can print them. The per-experiment index in DESIGN.md
// maps each function to the paper figure it reproduces; EXPERIMENTS.md
// records paper-reported versus measured values.
package experiments

import (
	"fmt"
	"math/rand"

	"mmreliable/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all randomness; equal seeds give identical tables.
	Seed int64
	// Quick reduces Monte-Carlo volume for use inside the test suite.
	Quick bool
	// Workers is the number of goroutines the parallel trial runner
	// (ParallelTrials) shards Monte-Carlo trials across. 0 means
	// GOMAXPROCS. Tables are byte-identical for every value: trial RNG
	// streams are derived from (Seed, experiment, trial), never from
	// scheduling order.
	Workers int
}

// DefaultConfig returns the full-scale deterministic configuration.
func DefaultConfig() Config { return Config{Seed: 1} }

// runs scales a Monte-Carlo count down in quick mode.
func (c Config) runs(full int) int {
	if c.Quick {
		q := full / 10
		if q < 2 {
			q = 2
		}
		return q
	}
	return full
}

// rng returns a fresh deterministic generator offset from the seed so each
// experiment is independent of execution order.
func (c Config) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1000003 + offset))
}

// Experiment names one reproducible figure.
type Experiment struct {
	ID    string // e.g. "4a"
	Title string
	Run   func(Config) *stats.Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"4a", "CDF of strongest-reflector relative attenuation", Fig04aReflectorCDF},
		{"4b", "Angle-time heatmap of strong paths under motion", Fig04bPathHeatmap},
		{"8", "Delay phased array: SNR across frequency", Fig08DelaySpread},
		{"11a", "Super-resolution per-beam power error vs relative ToF", Fig11aSuperresMSE},
		{"11b", "Two-sinc recovery from a combined CIR", Fig11bTwoSinc},
		{"13d", "Multi-beam pattern: theory vs quantized array", Fig13dPattern},
		{"14", "Sensitivity of 2-beam SNR gain to phase/amplitude error", Fig14Sensitivity},
		{"15a", "SNR vs second-beam phase: scan and 2-probe estimate", Fig15aPhaseScan},
		{"15b", "SNR vs second-beam amplitude: scan and 2-probe estimate", Fig15bAmpScan},
		{"15c", "Per-beam phase stability across 100 MHz", Fig15cPhaseStability},
		{"15d", "SNR gain vs oracle: 2-beam, 3-beam, sub-array split", Fig15dOracleGap},
		{"16", "Blockage time series: multi-beam vs single beam", Fig16Blockage},
		{"17a", "Per-beam power vs rotation angle", Fig17aPowerVsRotation},
		{"17b", "Rotation-angle tracking accuracy", Fig17bTrackingAccuracy},
		{"17c", "Throughput under mobility: tracking and CC ablations", Fig17cTrackingThroughput},
		{"18a", "Static link with blockers: throughput by scheme", Fig18aStaticBlockage},
		{"18b", "Mobile-link reliability by scheme", Fig18bReliability},
		{"18c", "Throughput-reliability tradeoff", Fig18cTradeoff},
		{"18d", "Beam-management probing overhead vs array size", Fig18dOverhead},
		{"19", "28 GHz vs 60 GHz multi-beam gain", Fig19Band60GHz},
		{"a1", "Ablation: multi-beam SNR vs weight quantization", AblationQuantization},
		{"a2", "Ablation: maintenance cadence vs reliability", AblationMaintenancePeriod},
		{"a3", "Ablation: independent vs correlated blockage", AblationCorrelatedBlockage},
		{"a4", "Ablation: CC phase-refresh cadence under motion", AblationCCRefresh},
		{"a5", "Ablation: exhaustive vs hierarchical beam training", AblationTrainingMethod},
		{"e1", "Extension: IRS-engineered reflection (§8)", ExtensionIRS},
		{"e2", "Extension: multi-gNB handover on serving-cell death", ExtensionHandover},
		{"e3", "Extension: measured-CQI rate adaptation vs genie MCS", ExtensionRateAdaptation},
		{"e4", "Extension: 2-user hybrid beamforming (§8)", ExtensionMultiUser},
		{"e5", "Extension: multi-UE serving-cell capacity under a probe budget", ExtensionStation},
		{"e6", "Extension: multi-cell macro-diversity under serving-link blockage", ExtensionCluster},
		{"e7", "Extension: city-scale sharded metro with session churn", ExtensionMetro},
		{"e8", "Extension: hybrid multi-panel SDMA sum throughput vs UE count", ExtensionHybrid},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown figure %q", id)
}
