package experiments

import (
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
	"mmreliable/internal/scratch"
	"mmreliable/internal/stats"
)

// Fig19Band60GHz reproduces Appendix B (Fig. 19b): the multi-beam
// throughput gain over a single beam for the same 10 m link with a concrete
// reflector at 60°, at 28 GHz versus 60 GHz, for a static UE with 10%
// blockage time on the LOS. Paper: ≈1.18× gain at both bands (the
// mechanism is band-agnostic), with 28 GHz far ahead in absolute
// throughput because of the 60 GHz path loss and oxygen absorption.
func Fig19Band60GHz(cfg Config) *stats.Table {
	t := stats.NewTable("Fig 19 — multi-beam gain at 28 vs 60 GHz (static UE, 10% blockage)",
		"band", "single_Mbps", "multibeam_Mbps", "gain_x")
	var thr28 float64
	for _, band := range []env.Band{env.Band28GHz(), env.Band60GHz()} {
		single, multi := fig19Throughputs(cfg, band)
		gain := multi / single
		t.AddRow(band.Name, stats.Fmt(single/1e6), stats.Fmt(multi/1e6), stats.Fmt(gain))
		if band.Name == "28GHz" {
			thr28 = multi
		} else if thr28 > 0 {
			t.AddRow("28GHz_vs_60GHz_x", "", "", stats.Fmt(thr28/multi))
		}
	}
	return t
}

func fig19Throughputs(cfg Config, band env.Band) (single, multi float64) {
	// 10 m link; concrete reflector reachable at 60° from the gNB.
	e := env.NewEnvironment(band, env.Wall{
		Seg: env.Segment{A: env.Vec2{X: 1, Y: 4}, B: env.Vec2{X: 9, Y: 4}},
		Mat: env.Concrete,
	})
	gnb := env.Pose{Pos: env.Vec2{X: 0, Y: 0}}
	ue := env.Pose{Pos: env.Vec2{X: 10, Y: 0}, Facing: math.Pi}
	paths := e.Trace(gnb, ue)
	u := antenna.NewULA(8, band.CarrierHz)
	m := channel.New(band, u, paths)
	// Reduced power puts the 10 m link mid-MCS ladder, where the band gap
	// and the combining gain translate into rate (full power saturates
	// CQI 15 at both bands and hides both effects).
	budget := link.DefaultBudget()
	budget.TxPowerDBm -= 4
	offs := channel.SubcarrierOffsets(budget.BandwidthHz, 32)

	wSingle := u.SingleBeam(paths[0].AoD)
	var beams []multibeam.Beam
	for k := range paths {
		d, s := m.RelativeGain(k, 0)
		beams = append(beams, multibeam.Beam{Angle: paths[k].AoD, Amp: d, Phase: s})
	}
	wMulti, err := multibeam.Weights(u, beams)
	if err != nil {
		panic(err)
	}
	// mmReliable's beam-set selection: fall back to the single beam when
	// wideband ripple makes the multi-beam no better on this channel (it
	// then still wins through the §4.1 blockage response below).
	if budget.WidebandSNRdB(m.EffectiveWideband(wMulti, offs)) <
		budget.WidebandSNRdB(m.EffectiveWideband(wSingle, offs)) {
		wMulti = wSingle
	}
	// The §4.1 response steady state: all power on the best unblocked path.
	wBlocked := wMulti
	if len(paths) > 1 {
		wBlocked = u.SingleBeam(paths[1].AoD)
	}

	// Average throughput over time with the LOS blocked 10% of the time
	// (depth 25 dB), small-scale fading on. Each time step is one trial on
	// the parallel runner; its fades come from the per-trial derived stream
	// (previously an ad-hoc rand.NewSource(cfg.Seed+191)). The label is
	// shared between the 28 and 60 GHz calls on purpose: both bands replay
	// identical fade realizations, keeping the band comparison controlled.
	steps := cfg.runs(400)
	type rates struct{ s, m float64 }
	res := ParallelTrials(cfg, labelFig19, steps, func(i int, rng *rand.Rand, _ *scratch.Workspace) rates {
		mm := m.Clone()
		for k := range mm.Paths {
			mm.Paths[k].ExtraLossDB += 1.0 * rng.NormFloat64()
		}
		blocked := i%10 == 0 // 10% of the time
		if blocked {
			mm.Paths[0].ExtraLossDB += 25
		}
		// Paths were mutated in place: invalidate cached per-path state.
		mm.InvalidateCache()
		// The multi-beam reallocates away from the blocked lobe (the §4.1
		// response); model the steady state of that response.
		wm := wMulti
		if blocked {
			wm = wBlocked
		}
		return rates{
			s: link.Throughput(budget.WidebandSNRdB(mm.EffectiveWideband(wSingle, offs)), budget.BandwidthHz, 0),
			m: link.Throughput(budget.WidebandSNRdB(mm.EffectiveWideband(wm, offs)), budget.BandwidthHz, 0),
		}
	})
	var thrS, thrM float64
	for _, r := range res {
		thrS += r.s
		thrM += r.m
	}
	return thrS / float64(steps), thrM / float64(steps)
}
