package experiments

import (
	"fmt"
	"math"

	"mmreliable/internal/cluster"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// ExtensionCluster is the multi-cell CoMP experiment (internal/cluster): it
// sweeps the number of cooperating gNB cells serving a fixed UE population
// in the shared hall, with a deep body blocker crossing every UE's
// initially-nearest link mid-run, and reports serving-leg reliability
// (handover-only deployment), selection-diversity reliability (the
// macro-diversity bound), and the worst blackout length under each. One
// cell has nowhere to run when its only link is shadowed — reliability
// collapses for the blockage dwell. From two cells up, the hot standby
// covers the detection latency and the diversity bound recovers ≥ 0.999,
// the paper's §7 reliability target lifted from two beams on one array to
// two cells in one hall.
//
// Each row rebuilds the cluster from the same UE drop: UE u's pair streams
// are derived from (Seed, labelExtCluster folded through the cluster's own
// namespace, u, cell), so adding cells is a controlled comparison, and the
// table is byte-identical for any Workers value (the cluster's determinism
// contract).
func ExtensionCluster(cfg Config) *stats.Table {
	cells := []int{1, 2, 3, 4}
	ues := 4
	duration := 1.0
	if cfg.Quick {
		cells = []int{1, 2}
		ues = 2
		duration = 0.8
	}
	t := stats.NewTable(
		"Extension E6 — multi-cell macro-diversity under serving-link blockage",
		"cells", "rel_serving", "rel_diversity", "out_ms", "div_out_ms", "handovers", "pingpong", "overhead_pct")
	for _, n := range cells {
		e, poses := env.MultiCellHall(env.Band28GHz(), n)
		ccfg := cluster.DefaultConfig()
		ccfg.Seed = cfg.trialSeed(labelExtCluster, 0)
		ccfg.Station.Workers = cfg.Workers
		cl, err := cluster.New(nr.Mu3(), ccfg, cluster.Deployment{
			Env: e, Cells: poses, Budget: sim.IndoorBudget(),
		})
		if err != nil {
			panic(err)
		}
		for i, pos := range env.HallUEPositions(ues) {
			blk := make([]events.Schedule, n)
			depth := 35.0
			blk[nearestCellIdx(poses, pos)] = events.Schedule{{
				AllPaths: true,
				Start:    0.30 + 0.02*float64(i%7),
				Duration: 0.30,
				DepthDB:  depth,
				RampTime: events.RampFor(depth),
			}}
			if _, err := cl.AddUE(cluster.UEConfig{Pos: pos, Blockage: blk}); err != nil {
				panic(err)
			}
		}
		res := cl.Run(duration)
		t.AddRow(fmt.Sprintf("%d", n),
			stats.Fmt(res.MeanServingReliability), stats.Fmt(res.MeanDiversityReliability),
			stats.Fmt(res.MaxOutageMs), stats.Fmt(res.DivMaxOutageMs),
			fmt.Sprintf("%d", res.Counters.Handovers), fmt.Sprintf("%d", res.Counters.PingPongs),
			stats.Fmt(res.OverheadPct))
	}
	return t
}

// nearestCellIdx returns the index of the gNB pose closest to pos — the
// cell whose link the UE's blocker crosses (the initially serving link).
func nearestCellIdx(poses []env.Pose, pos env.Vec2) int {
	best, bestD := 0, math.Inf(1)
	for i, p := range poses {
		if d := p.Pos.Dist(pos); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
