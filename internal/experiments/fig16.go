package experiments

import (
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// Fig16Blockage reproduces Fig. 16: the SNR time series of a static indoor
// link while a blocker walks across first the NLOS then the LOS beam, for
// mmReliable's multi-beam versus a single-beam link. Paper: the multi-beam
// dips only ≈7 dB (no outage) while the single beam crashes ≈26 dB below
// the 6 dB outage threshold.
func Fig16Blockage(cfg Config) *stats.Table {
	budget := sim.IndoorBudget()
	// The two scheme runs are independent replays of the same scenario, so
	// they shard across the trial runner; each builds its scheme from its
	// own derived RNG stream (previously the reactive baseline seeded
	// ad hoc from cfg.Seed+161, which could collide with other streams).
	outs := ParallelTrials(cfg, labelFig16, 2, func(trial int, rng *rand.Rand, ws *scratch.Workspace) map[string]sim.Result {
		var scheme sim.Scheme
		var err error
		if trial == 0 {
			var mgr *manager.Manager
			mgr, err = manager.New("mmreliable", antenna.NewULA(8, 28e9), budget, nr.Mu3(), manager.DefaultConfig(), rng)
			if mgr != nil {
				mgr.UseWorkspace(ws)
			}
			scheme = mgr
		} else {
			scheme, err = baselines.NewSingleBeamReactive(antenna.NewULA(8, 28e9), budget, nr.Mu3(), baselines.DefaultOptions(), rng)
		}
		if err != nil {
			panic(err)
		}
		runner := sim.Runner{KeepSeries: true, Warmup: sim.StandardWarmup}
		out, err := runner.Run(sim.WalkingBlockerIndoor(cfg.Seed), scheme)
		if err != nil {
			panic(err)
		}
		return out
	})
	mm := outs[0]["mmreliable"]
	re := outs[1]["reactive"]

	t := stats.NewTable("Fig 16 — SNR under a walking blocker (dB)",
		"t_s", "multibeam", "singlebeam")
	stride := len(mm.Series) / 40
	if stride < 1 {
		stride = 1
	}
	var mmMin, reMin = 999.0, 999.0
	var mmMax float64
	for i := 0; i < len(mm.Series); i++ {
		if mm.Series[i].SNRdB < mmMin {
			mmMin = mm.Series[i].SNRdB
		}
		if mm.Series[i].SNRdB > mmMax {
			mmMax = mm.Series[i].SNRdB
		}
		if i < len(re.Series) && re.Series[i].SNRdB < reMin {
			reMin = re.Series[i].SNRdB
		}
		if i%stride == 0 {
			snrR := re.Series[i].SNRdB
			t.AddRow(stats.Fmt(mm.Times[i]), stats.Fmt(mm.Series[i].SNRdB), stats.Fmt(snrR))
		}
	}
	t.AddRow("multibeam_dip_dB", stats.Fmt(mmMax-mmMin), "")
	t.AddRow("singlebeam_min_snr", "", stats.Fmt(reMin))
	t.AddRow("multibeam_min_snr", stats.Fmt(mmMin), "")
	t.AddRow("outage_threshold", stats.Fmt(link.OutageThresholdDB), stats.Fmt(link.OutageThresholdDB))
	t.AddRow("mm_reliability", stats.Fmt(mm.Summary.Reliability), stats.Fmt(re.Summary.Reliability))
	return t
}
