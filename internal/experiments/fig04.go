package experiments

import (
	"math"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/motion"
	"mmreliable/internal/stats"
)

// Fig04aReflectorCDF reproduces Fig. 4a: the CDF of the strongest reflected
// path's attenuation relative to the direct path, measured over many
// randomized indoor (5–10 m) and outdoor (10–80 m) locations with a full
// angular scan at each. Paper: median ≈7.2 dB indoors, ≈5 dB outdoors,
// common reflectors 1–10 dB.
func Fig04aReflectorCDF(cfg Config) *stats.Table {
	rng := cfg.rng(41)
	band := env.Band28GHz()
	measure := func(indoor bool, n int) []float64 {
		var rel []float64
		for i := 0; i < n; i++ {
			var e *env.Environment
			var gnb env.Pose
			var ue env.Pose
			if indoor {
				e, gnb = env.RandomIndoor(rng, band)
				pos := env.Vec2{X: 2.5 + 3*rng.Float64(), Y: 1 + 2.5*rng.Float64()}
				ue = env.Pose{Pos: pos, Facing: env.FacingFrom(pos, gnb.Pos)}
			} else {
				e, gnb = env.RandomOutdoor(rng, band)
				pos := env.Vec2{X: 10 + 70*rng.Float64(), Y: -1 + 2*rng.Float64()}
				ue = env.Pose{Pos: pos, Facing: env.FacingFrom(pos, gnb.Pos)}
			}
			paths := e.Trace(gnb, ue)
			if len(paths) < 2 || paths[0].Refl != 0 {
				continue // need a direct path plus at least one reflection
			}
			best := math.Inf(1)
			for _, p := range paths[1:] {
				if p.Refl > 0 && p.LossDB-paths[0].LossDB < best {
					best = p.LossDB - paths[0].LossDB
				}
			}
			if !math.IsInf(best, 1) {
				rel = append(rel, best)
			}
		}
		return rel
	}
	nLoc := cfg.runs(2000)
	indoor := measure(true, nLoc)
	outdoor := measure(false, nLoc)

	t := stats.NewTable("Fig 4a — relative attenuation of strongest reflector (dB)",
		"percentile", "indoor_dB", "outdoor_dB")
	for _, p := range []float64{10, 25, 50, 75, 90} {
		t.AddRow(stats.Fmt(p), stats.Fmt(stats.Percentile(indoor, p)), stats.Fmt(stats.Percentile(outdoor, p)))
	}
	t.AddRow("mean", stats.Fmt(stats.Mean(indoor)), stats.Fmt(stats.Mean(outdoor)))
	t.AddRow("samples", stats.Fmt(float64(len(indoor))), stats.Fmt(float64(len(outdoor))))
	return t
}

// Fig04bPathHeatmap reproduces Fig. 4b: the angular power profile over time
// while the UE moves through the conference room — strong reflectors appear
// at different angles as the user translates. Rows are time steps, columns
// are angular sectors; cells hold relative power in dB (0 = strongest of
// the row).
func Fig04bPathHeatmap(cfg Config) *stats.Table {
	band := env.Band28GHz()
	e := env.ConferenceRoom(band)
	gnb := env.GNBPose(true)
	u := antenna.NewULA(8, 28e9)
	target := gnb.Pos
	ue := motion.Translation{
		Start:       env.Vec2{X: 6, Y: 1.5},
		Vel:         env.Vec2{X: 0, Y: 0.8},
		TrackTarget: &target,
	}
	sectors := []float64{-50, -30, -10, 10, 30, 50}
	headers := []string{"t_s"}
	for _, s := range sectors {
		headers = append(headers, fmt6(s))
	}
	t := stats.NewTable("Fig 4b — angular power heatmap under motion (dB rel. row max)", headers...)
	steps := 10
	for i := 0; i <= steps; i++ {
		ts := float64(i) * 0.5
		pose := ue.At(ts)
		paths := e.Trace(gnb, pose)
		m := channel.New(band, u, paths)
		row := []string{stats.Fmt(ts)}
		powers := make([]float64, len(sectors))
		maxP := 0.0
		for j, s := range sectors {
			w := u.SingleBeam(dsp.Rad(s))
			h := m.Effective(w, 0)
			powers[j] = real(h)*real(h) + imag(h)*imag(h)
			if powers[j] > maxP {
				maxP = powers[j]
			}
		}
		for _, p := range powers {
			if maxP == 0 || p == 0 {
				row = append(row, "-inf")
			} else {
				row = append(row, stats.Fmt(10*math.Log10(p/maxP)))
			}
		}
		t.AddRow(row...)
	}
	return t
}

func fmt6(deg float64) string { return stats.Fmt(deg) + "deg" }
