package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mmreliable/internal/cluster"
	"mmreliable/internal/metro"
)

// Handler returns the control-plane mux. Handlers never touch simulation
// state directly: every request round-trips through the frame-boundary
// queue, so attaching the control plane adds nothing to the frame loop
// until a request actually arrives.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /ue/attach", s.handleAttach)
	mux.HandleFunc("POST /ue/detach", s.handleDetach)
	mux.HandleFunc("POST /event/blockage", s.handleBlockage)
	mux.HandleFunc("POST /config", s.handleConfig)
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	return mux
}

// httpError maps control-plane failures: loop gone → 503, everything else
// (validation, unknown targets) → 400.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, ErrStopped) {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes the request body into v (unknown fields are
// rejected — a typoed knob must not silently no-op).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status()
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	txt, err := s.MetricsText()
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, txt)
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Site      int      `json:"site"`
		X         *float64 `json:"x"`
		Y         *float64 `json:"y"`
		DurationS float64  `json:"duration_s"`
	}
	if err := decodeBody(r, &body); err != nil {
		httpError(w, err)
		return
	}
	spec := metro.AttachSpec{DurationS: body.DurationS}
	if body.X != nil && body.Y != nil {
		spec.HasPos, spec.X, spec.Y = true, *body.X, *body.Y
	} else if body.X != nil || body.Y != nil {
		httpError(w, fmt.Errorf("x and y must be given together"))
		return
	}
	res, err := s.Inject(Command{Op: OpAttach, Site: body.Site, Attach: &spec})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Site int `json:"site"`
		UE   int `json:"ue"`
	}
	if err := decodeBody(r, &body); err != nil {
		httpError(w, err)
		return
	}
	res, err := s.Inject(Command{Op: OpDetach, Site: body.Site, UE: body.UE})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleBlockage(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Site      int     `json:"site"`
		UE        int     `json:"ue"`
		Cell      *int    `json:"cell"`
		DepthDB   float64 `json:"depth_db"`
		DurationS float64 `json:"duration_s"`
	}
	if err := decodeBody(r, &body); err != nil {
		httpError(w, err)
		return
	}
	res, err := s.Inject(Command{
		Op: OpBlockage, Site: body.Site, UE: body.UE, Cell: body.Cell,
		DepthDB: body.DepthDB, DurationS: body.DurationS,
	})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	var t cluster.Tuning
	if err := decodeBody(r, &t); err != nil {
		httpError(w, err)
		return
	}
	res, err := s.Inject(Command{Op: OpTune, Tune: &t})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	blob, err := s.SnapshotJSON()
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}
