package serve

import (
	"encoding/json"
	"fmt"
	"math"
)

// SnapshotFormat / SnapshotVersion identify the snapshot document. Version
// bumps whenever the document layout OR the replay semantics change — a
// restore refuses any other version rather than replaying into a different
// simulation.
const (
	SnapshotFormat  = "mmserved-snapshot"
	SnapshotVersion = 1
)

// snapshotFile is the versioned snapshot document. It is event-sourced:
// the deterministic inputs (metro config + script), the frame count, and
// the journal of externally injected commands — NOT a struct dump of the
// simulation's floats. A restore rebuilds the metro from the config and
// silently replays the frames, re-applying script and journal entries at
// their recorded boundaries; the determinism contract (byte-identical
// evolution at any worker count) guarantees the replayed state matches the
// original bit for bit. The digest, per-site RNG draw counts, and
// arrival-process state are integrity checks: the restore verifies all
// three after replay and refuses to serve on any mismatch.
type snapshotFile struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Frame is the boundary the snapshot was taken at: script and journal
	// entries with Frame == this value were already applied, the frame
	// itself has not run.
	Frame int `json:"frame"`
	// Metro + Script are the replay identity (serve.Config's serialized
	// part).
	Config Config `json:"config"`
	// Journal is every externally injected command, in application order.
	Journal []Command `json:"journal,omitempty"`
	// Digest is the metro state digest (hex) at the snapshot boundary.
	Digest string `json:"digest"`
	// SiteDraws is every site's churn-RNG consumed-draw count — the RNG
	// stream positions (seed is derivable: seeds.Mix(Seed, 996, site)).
	SiteDraws []uint64 `json:"site_draws"`
	// NextArrivalBits is every site's next churn-arrival time as IEEE-754
	// bits (exact round trip).
	NextArrivalBits []uint64 `json:"next_arrival_bits"`
}

// snapshotNow builds the snapshot document at the current boundary.
// Loop-owned (or post-Run).
func (s *Server) snapshotNow() ([]byte, error) {
	sf := snapshotFile{
		Format:    SnapshotFormat,
		Version:   SnapshotVersion,
		Frame:     s.m.Frame(),
		Config:    Config{Metro: s.cfg.Metro, Script: s.cfg.Script},
		Journal:   s.journal,
		Digest:    fmt.Sprintf("%016x", s.m.DigestSum()),
		SiteDraws: s.m.SiteDraws(),
	}
	arr := s.m.SiteNextArrivals()
	sf.NextArrivalBits = make([]uint64, len(arr))
	for i, a := range arr {
		sf.NextArrivalBits[i] = math.Float64bits(a)
	}
	return json.MarshalIndent(sf, "", " ")
}

// Runtime carries the runtime knobs a restore may override — they pace
// and bound the loop without entering the replay identity. Workers > 0
// replaces the snapshot's worker count (determinism-neutral; the shard
// partition is part of the config and is NOT overridable).
type Runtime struct {
	TimeScale   float64
	StatusEvery int
	MaxFrames   int
	Workers     int
}

// Restore rebuilds a daemon from a snapshot document: fresh metro from
// the recorded config, then a silent replay of every frame up to the
// snapshot boundary with script and journal entries re-applied at their
// recorded frames. After replay the metro digest, per-site RNG draw
// counts, and arrival-process state must all match the recorded values —
// any mismatch aborts (a corrupted or hand-edited snapshot must not serve).
// The returned server continues exactly where the snapshotted daemon
// stopped; replay cost is O(frames), the price of snapshots that stay
// small and implementation-independent (see DESIGN.md).
func Restore(data []byte, rt Runtime) (*Server, error) {
	var sf snapshotFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("serve: bad snapshot: %w", err)
	}
	if sf.Format != SnapshotFormat {
		return nil, fmt.Errorf("serve: not a snapshot (format %q)", sf.Format)
	}
	if sf.Version != SnapshotVersion {
		return nil, fmt.Errorf("serve: snapshot version %d, want %d", sf.Version, SnapshotVersion)
	}
	if sf.Frame < 0 {
		return nil, fmt.Errorf("serve: negative snapshot frame %d", sf.Frame)
	}
	cfg := Config{
		Metro:       sf.Config.Metro,
		Script:      sf.Config.Script,
		TimeScale:   rt.TimeScale,
		StatusEvery: rt.StatusEvery,
		MaxFrames:   rt.MaxFrames,
	}
	if rt.Workers > 0 {
		cfg.Metro.Workers = rt.Workers
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}

	// Silent replay to the snapshot boundary. Journal entries must be
	// frame-monotonic and inside the replayed range.
	jIdx := 0
	for {
		f := s.m.Frame()
		s.applyScriptAt(f)
		for jIdx < len(sf.Journal) && sf.Journal[jIdx].Frame <= f {
			c := sf.Journal[jIdx]
			jIdx++
			if c.Frame < f {
				return nil, fmt.Errorf("serve: journal entry %d out of order (frame %d at boundary %d)", jIdx-1, c.Frame, f)
			}
			if _, err := s.applyCommand(c); err != nil {
				// Journaled commands succeeded when first applied; a replay
				// failure means the snapshot lies about its own history.
				return nil, fmt.Errorf("serve: replay diverged at frame %d (%s): %w", f, c.Op, err)
			}
			s.journal = append(s.journal, c)
		}
		if f >= sf.Frame {
			break
		}
		s.m.AdvanceFrame()
	}
	if jIdx != len(sf.Journal) {
		return nil, fmt.Errorf("serve: %d journal entries beyond snapshot frame %d", len(sf.Journal)-jIdx, sf.Frame)
	}

	// Integrity: the replayed state must match the recorded fingerprints.
	if got := fmt.Sprintf("%016x", s.m.DigestSum()); got != sf.Digest {
		return nil, fmt.Errorf("serve: state digest mismatch after replay: %s != %s (snapshot corrupted or config drifted)", got, sf.Digest)
	}
	draws := s.m.SiteDraws()
	if len(draws) != len(sf.SiteDraws) {
		return nil, fmt.Errorf("serve: %d sites replayed, snapshot has %d", len(draws), len(sf.SiteDraws))
	}
	for i, d := range draws {
		if d != sf.SiteDraws[i] {
			return nil, fmt.Errorf("serve: site %d churn stream consumed %d draws on replay, snapshot recorded %d", i, d, sf.SiteDraws[i])
		}
	}
	arr := s.m.SiteNextArrivals()
	if len(arr) != len(sf.NextArrivalBits) {
		return nil, fmt.Errorf("serve: %d sites replayed, snapshot has %d arrival entries", len(arr), len(sf.NextArrivalBits))
	}
	for i, a := range arr {
		if math.Float64bits(a) != sf.NextArrivalBits[i] {
			return nil, fmt.Errorf("serve: site %d arrival state diverged on replay (%v != %v)",
				i, a, math.Float64frombits(sf.NextArrivalBits[i]))
		}
	}
	return s, nil
}
