package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// TestKillAndRestoreByteIdentical is the headline acceptance test: run the
// demo script for N frames uninterrupted; then run the first N/2 frames at
// a different worker count, snapshot, restore into a FRESH daemon at yet
// another worker count, and run the rest. The concatenated per-frame
// status streams must be byte-identical — the same diff CI performs across
// two OS processes.
func TestKillAndRestoreByteIdentical(t *testing.T) {
	const n = 16

	full := testConfig(1)
	full.MaxFrames = n
	full.Script = DemoScript()
	want := runToEnd(t, full)

	// First half at workers=4.
	half := testConfig(4)
	half.MaxFrames = n / 2
	half.Script = DemoScript()
	s1, err := New(half)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var firstHalf bytes.Buffer
	s1.SetStatusWriter(&firstHalf)
	if err := s1.Run(context.Background()); err != nil {
		t.Fatalf("Run (first half): %v", err)
	}
	blob, err := s1.SnapshotJSONDirect()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s1.Close()

	// Second half from the snapshot, workers=2. Runtime knobs are restore
	// overrides; the replay identity (config + script) comes from the blob.
	s2, err := Restore(blob, Runtime{MaxFrames: n, StatusEvery: 1, Workers: 2})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer s2.Close()
	if got := s2.Frame(); got != n/2 {
		t.Fatalf("restored at frame %d, want %d", got, n/2)
	}
	var secondHalf bytes.Buffer
	s2.SetStatusWriter(&secondHalf)
	if err := s2.Run(context.Background()); err != nil {
		t.Fatalf("Run (second half): %v", err)
	}

	if got := firstHalf.String() + secondHalf.String(); got != want {
		t.Errorf("kill-and-restore stream diverged from uninterrupted run:\n--- uninterrupted\n%s--- concatenated\n%s", want, got)
	}
}

// TestRestoreReplaysJournal checks externally injected commands survive a
// snapshot: a daemon takes a live command through the real queue path,
// snapshots, and the restored daemon must evolve exactly like a reference
// daemon whose SCRIPT contains the same command at the recorded frame
// (scripted and journaled commands share one application path).
func TestRestoreReplaysJournal(t *testing.T) {
	cmd := Command{Op: OpBlockage, Site: 0, UE: 1, DepthDB: 20, DurationS: 0.05}
	const injectAt, snapAt, end = 4, 8, 14

	// Daemon A: step manually to the inject boundary, apply the command via
	// the loop's own handler (stamping + journaling), continue, snapshot.
	a, err := New(testConfig(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer a.Close()
	for a.m.Frame() < injectAt {
		a.step()
	}
	p := &pending{cmd: &cmd, reply: make(chan reply, 1)}
	a.handle(p, a.m.Frame())
	if r := <-p.reply; r.err != nil {
		t.Fatalf("inject: %v", r.err)
	}
	if len(a.journal) != 1 || a.journal[0].Frame != injectAt {
		t.Fatalf("journal = %+v, want one entry at frame %d", a.journal, injectAt)
	}
	for a.m.Frame() < snapAt {
		a.step()
	}
	blob, err := a.snapshotNow()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Restored daemon: journal replays silently, then runs to the end.
	b, err := Restore(blob, Runtime{MaxFrames: end, StatusEvery: 1})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer b.Close()
	var gotTail bytes.Buffer
	b.SetStatusWriter(&gotTail)
	if err := b.Run(context.Background()); err != nil {
		t.Fatalf("Run (restored): %v", err)
	}

	// Reference daemon: same command as script, full run.
	refCfg := testConfig(1)
	refCfg.MaxFrames = end
	refCfg.Script = []Command{{Frame: injectAt, Op: cmd.Op, Site: cmd.Site, UE: cmd.UE, DepthDB: cmd.DepthDB, DurationS: cmd.DurationS}}
	ref := runToEnd(t, refCfg)
	refLines := strings.SplitAfter(ref, "\n")
	wantTail := strings.Join(refLines[snapAt:], "")

	// The streams may differ ONLY in the journal-length field: the
	// reference carries the command as script (jrnl=0), the restored daemon
	// as journal (jrnl=1). Simulated state — every counter and the digest —
	// must match byte for byte.
	stripJrnl := regexp.MustCompile(` jrnl=\d+`)
	got := stripJrnl.ReplaceAllString(gotTail.String(), "")
	want := stripJrnl.ReplaceAllString(wantTail, "")
	if got != want {
		t.Errorf("restored daemon diverged from scripted reference after frame %d:\n--- reference tail\n%s--- restored\n%s", snapAt, want, got)
	}
	if !strings.Contains(gotTail.String(), " jrnl=1 ") {
		t.Errorf("restored daemon lost the journal entry:\n%s", gotTail.String())
	}
}

// TestRestoreRejectsTampering: a snapshot that lies about its history must
// not serve. Each mutation corrupts one integrity anchor.
func TestRestoreRejectsTampering(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxFrames = 8
	cfg.Script = DemoScript()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	blob, err := s.SnapshotJSONDirect()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	mutate := func(name string, f func(*snapshotFile)) {
		var sf snapshotFile
		if err := json.Unmarshal(blob, &sf); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		f(&sf)
		tampered, err := json.Marshal(sf)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		if _, err := Restore(tampered, Runtime{}); err == nil {
			t.Errorf("%s: Restore accepted a tampered snapshot", name)
		}
	}

	mutate("wrong format", func(sf *snapshotFile) { sf.Format = "not-a-snapshot" })
	mutate("wrong version", func(sf *snapshotFile) { sf.Version = SnapshotVersion + 1 })
	mutate("negative frame", func(sf *snapshotFile) { sf.Frame = -1 })
	mutate("frame off by one", func(sf *snapshotFile) { sf.Frame++ })
	mutate("seed drifted", func(sf *snapshotFile) { sf.Config.Metro.Seed++ })
	mutate("digest flipped", func(sf *snapshotFile) { sf.Digest = "00000000deadbeef" })
	mutate("draw count drifted", func(sf *snapshotFile) { sf.SiteDraws[0]++ })
	mutate("arrival drifted", func(sf *snapshotFile) { sf.NextArrivalBits[0] ^= 1 })
	mutate("script dropped", func(sf *snapshotFile) { sf.Config.Script = nil })
	if _, err := Restore([]byte("{"), Runtime{}); err == nil {
		t.Error("Restore accepted truncated JSON")
	}
}

// TestRestoreRejectsForeignJournal: journal entries beyond the snapshot
// frame or out of order are refused before any integrity check.
func TestRestoreRejectsForeignJournal(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxFrames = 6
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	blob, err := s.SnapshotJSONDirect()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var sf snapshotFile
	if err := json.Unmarshal(blob, &sf); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	sf.Journal = []Command{{Frame: sf.Frame + 3, Op: OpDetach, Site: 0, UE: 0}}
	tampered, _ := json.Marshal(sf)
	if _, err := Restore(tampered, Runtime{}); err == nil {
		t.Error("Restore accepted a journal entry beyond the snapshot frame")
	}
}
