package serve

import (
	"testing"
)

// TestStepZeroAllocSteadyState pins the acceptance criterion that the
// daemon's frame step allocates nothing once the city is quiescent and the
// control plane is idle: the queue drain (empty-channel select), the script
// cursor (exhausted), and the metro's own steady state must all stay off
// the allocator. Churn off, status off — the batch zero-alloc fixture.
func TestStepZeroAllocSteadyState(t *testing.T) {
	cfg := testConfig(1)
	cfg.Metro.ChurnArrivalRate = 0
	cfg.StatusEvery = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	for i := 0; i < 40; i++ { // warm caches: monitor rows, batch scratch, EWMA state
		s.step()
	}
	if avg := testing.AllocsPerRun(100, s.step); avg != 0 {
		t.Errorf("daemon step allocates %.1f objects/frame in steady state, want 0", avg)
	}
}
