package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"mmreliable/internal/metro"
)

// testConfig is the small deterministic fixture the serve tests share:
// 4 sites, churn on, AFAP, status line every frame.
func testConfig(workers int) Config {
	mc := metro.DefaultConfig()
	mc.Clusters = 4
	mc.Seed = 7
	mc.Workers = workers
	return Config{Metro: mc, StatusEvery: 1}
}

// runToEnd runs the daemon to MaxFrames and returns the status stream.
func runToEnd(t *testing.T, cfg Config) string {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	var buf bytes.Buffer
	s.SetStatusWriter(&buf)
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := s.ScriptErrs(); n != 0 {
		t.Fatalf("%d scripted commands failed to apply", n)
	}
	return buf.String()
}

// TestRunDeterministicAcrossWorkers pins the daemon's core contract: the
// per-frame status stream — counters, harvested aggregates, and the full
// state digest — is byte-identical at any worker count, with the demo
// script (all four command ops) running.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := testConfig(1)
	base.MaxFrames = 16
	base.Script = DemoScript()
	ref := runToEnd(t, base)
	if got := strings.Count(ref, "\n"); got != 16 {
		t.Fatalf("expected 16 status lines, got %d:\n%s", got, ref)
	}
	for _, workers := range []int{2, 4} {
		cfg := testConfig(workers)
		cfg.MaxFrames = 16
		cfg.Script = DemoScript()
		if out := runToEnd(t, cfg); out != ref {
			t.Errorf("workers=%d status stream diverged:\n--- workers=1\n%s--- workers=%d\n%s", workers, ref, workers, out)
		}
	}
}

// TestMetricsSiteLabelsByteIdentical is the telemetry layer's contract for
// the site-labeled dimensions: the full /metrics exposition — including
// every {site="i"} series, which reads the metro's per-site harvest
// aggregates — is byte-identical at any worker count, and the site series
// are actually present and sum-consistent with their aggregate line.
func TestMetricsSiteLabelsByteIdentical(t *testing.T) {
	render := func(workers int) string {
		cfg := testConfig(workers)
		cfg.StatusEvery = 0
		cfg.MaxFrames = 24 // enough frames for churn to harvest UEs
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer s.Close()
		if err := s.Run(context.Background()); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s.metricsText()
	}
	ref := render(1)
	if got := render(4); got != ref {
		t.Fatalf("metrics diverged between 1 and 4 workers:\n--- workers=1\n%s--- workers=4\n%s", ref, got)
	}
	for _, want := range []string{
		`mmserved_active_sessions{site="0"}`,
		`mmserved_active_sessions{site="3"}`,
		`mmserved_harvested_ues_total{site="0"}`,
		`mmserved_harvested_serving_reliability{site="0"}`,
		`mmserved_harvested_diversity_reliability{site="3"}`,
	} {
		if !strings.Contains(ref, want) {
			t.Errorf("metrics missing site series %q:\n%s", want, ref)
		}
	}
	// The site-labeled harvested counts must sum to the aggregate line.
	total, sum := 0, 0
	for _, line := range strings.Split(ref, "\n") {
		if v, ok := strings.CutPrefix(line, "mmserved_harvested_ues_total "); ok {
			fmt.Sscanf(v, "%d", &total)
		}
		if strings.HasPrefix(line, `mmserved_harvested_ues_total{site="`) {
			var site, n int
			fmt.Sscanf(line, `mmserved_harvested_ues_total{site="%d"} %d`, &site, &n)
			sum += n
		}
	}
	if total == 0 {
		t.Fatal("no UEs harvested in 24 frames — the site series were never exercised")
	}
	if sum != total {
		t.Fatalf("site-labeled harvested UEs sum to %d, aggregate says %d", sum, total)
	}
}

// TestScriptApplies checks the demo script actually lands: the attach and
// detach show up in the cluster counters and the journal stays empty
// (scripted commands are config, not journal).
func TestScriptApplies(t *testing.T) {
	cfg := testConfig(1)
	cfg.Metro.ChurnArrivalRate = 0 // only scripted lifecycle events
	cfg.MaxFrames = 16
	cfg.Script = DemoScript()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := s.ScriptErrs(); n != 0 {
		t.Fatalf("%d scripted commands failed", n)
	}
	cc := s.Metro().CountersTotal()
	// Initial population: 4 sites × 2 UEs. The script adds one attach and
	// one explicit detach (UE 0 leaves before frame 16; the scripted
	// attach's 2 s duration outlives the run).
	if want := 4*2 + 1; cc.UEsAttached != want {
		t.Errorf("UEsAttached = %d, want %d", cc.UEsAttached, want)
	}
	if cc.UEsFinished < 1 {
		t.Errorf("UEsFinished = %d, want >= 1 (scripted detach)", cc.UEsFinished)
	}
	if len(s.journal) != 0 {
		t.Errorf("scripted commands leaked into the journal (%d entries)", len(s.journal))
	}
}

// TestNewRejectsBadConfig covers the constructor's validation surface.
func TestNewRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative timescale", func(c *Config) { c.TimeScale = -1 }},
		{"negative status every", func(c *Config) { c.StatusEvery = -1 }},
		{"negative max frames", func(c *Config) { c.MaxFrames = -1 }},
		{"unsorted script", func(c *Config) {
			c.Script = []Command{{Frame: 5, Op: OpDetach}, {Frame: 2, Op: OpDetach}}
		}},
		{"negative script frame", func(c *Config) {
			c.Script = []Command{{Frame: -1, Op: OpDetach}}
		}},
		{"unknown script op", func(c *Config) {
			c.Script = []Command{{Frame: 1, Op: "explode"}}
		}},
		{"tune without payload", func(c *Config) {
			c.Script = []Command{{Frame: 1, Op: OpTune}}
		}},
		{"zero clusters", func(c *Config) { c.Metro.Clusters = 0 }},
	}
	for _, tc := range cases {
		cfg := testConfig(1)
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted bad config", tc.name)
		}
	}
}

// TestInjectAfterStop verifies the control plane fails cleanly with
// ErrStopped once the loop has exited.
func TestInjectAfterStop(t *testing.T) {
	cfg := testConfig(1)
	cfg.StatusEvery = 0
	cfg.MaxFrames = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := s.Inject(Command{Op: OpDetach, Site: 0, UE: 0}); err != ErrStopped {
		t.Errorf("Inject after stop: err = %v, want ErrStopped", err)
	}
	if _, err := s.Status(); err != ErrStopped {
		t.Errorf("Status after stop: err = %v, want ErrStopped", err)
	}
}
