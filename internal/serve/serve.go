// Package serve is the long-running service layer: a frame-loop daemon
// that owns a metro.Metro and advances it continuously — in scaled time or
// as fast as possible — while an HTTP/JSON control plane injects events
// and reads telemetry.
//
// The concurrency model is the repo's frame-boundary contract, extended to
// a daemon: the simulation advances on ONE goroutine (the Run loop), and
// the control plane talks to it exclusively through a buffered command
// queue the loop drains between frames. HTTP handlers never touch
// simulation state; they enqueue and wait for the loop's reply. Commands
// therefore apply at exact frame boundaries, which is what makes them
// journalable: a snapshot records the config, the frame count, and the
// journal of (frame, command) pairs, and a restore rebuilds the daemon
// from config and silently replays the frames — byte-identical at any
// worker count, by the same determinism contract every batch CLI pins in
// CI. See DESIGN.md "Service layer".
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"mmreliable/internal/metro"
	"mmreliable/internal/nr"
)

// Config assembles a daemon. Metro and Script are the replay identity —
// they are serialized into snapshots and must not change across a
// restore. TimeScale, StatusEvery, and MaxFrames are runtime knobs: they
// pace and bound the loop without affecting simulated state, so a restore
// may override them freely (Workers too — it is inside Metro but
// explicitly determinism-neutral; Shards is NOT, see metro.Config).
type Config struct {
	// Metro sizes and seeds the city.
	Metro metro.Config `json:"metro"`
	// Script is a deterministic schedule of commands applied at their
	// Frame's boundary — the reproducible way to drive lifecycle and
	// blockage events into a serving run (CI uses it for the
	// kill-and-restore diff). Must be sorted by Frame.
	Script []Command `json:"script,omitempty"`

	// TimeScale paces the loop: simulated seconds per wall second. 1 is
	// real time, 2 twice as fast, 0 as-fast-as-possible. Pacing never
	// affects simulated output.
	TimeScale float64 `json:"-"`
	// StatusEvery emits a deterministic status line every N frames to the
	// status writer (0 = off).
	StatusEvery int `json:"-"`
	// MaxFrames stops Run after the metro reaches this frame (0 = run
	// until the context is canceled).
	MaxFrames int `json:"-"`
}

// ErrStopped is returned by control-plane calls once the serving loop has
// exited.
var ErrStopped = errors.New("serve: loop stopped")

// reply carries a command's outcome back to the waiting caller.
type reply struct {
	val any
	err error
}

// pending is one queued control-plane request: a journalable command or a
// read-only query the loop evaluates at the boundary.
type pending struct {
	cmd   *Command
	query func() (any, error)
	reply chan reply
}

// Server is the daemon: one metro, one loop goroutine, one command queue.
type Server struct {
	cfg Config
	m   *metro.Metro

	statusW io.Writer // deterministic status stream (nil = off)

	cmds chan *pending
	done chan struct{}

	// Loop-owned state (no locks: only the Run goroutine touches these
	// after New, except where documented otherwise).
	journal    []Command
	scriptIdx  int
	scriptErrs int

	startWall  time.Time
	startFrame int
}

// New builds a serving daemon over a fresh metro.
func New(cfg Config) (*Server, error) {
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("serve: TimeScale %g < 0", cfg.TimeScale)
	}
	if cfg.StatusEvery < 0 {
		return nil, fmt.Errorf("serve: StatusEvery %d < 0", cfg.StatusEvery)
	}
	if cfg.MaxFrames < 0 {
		return nil, fmt.Errorf("serve: MaxFrames %d < 0", cfg.MaxFrames)
	}
	if !sort.SliceIsSorted(cfg.Script, func(i, j int) bool {
		return cfg.Script[i].Frame < cfg.Script[j].Frame
	}) {
		return nil, fmt.Errorf("serve: script not sorted by frame")
	}
	for i, c := range cfg.Script {
		if c.Frame < 0 {
			return nil, fmt.Errorf("serve: script[%d] frame %d < 0", i, c.Frame)
		}
		if err := c.validate(); err != nil {
			return nil, fmt.Errorf("serve: script[%d]: %w", i, err)
		}
	}
	m, err := metro.New(nr.Mu3(), cfg.Metro)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:  cfg,
		m:    m,
		cmds: make(chan *pending, 64),
		done: make(chan struct{}),
	}, nil
}

// SetStatusWriter installs the deterministic status stream destination.
// Must be called before Run.
func (s *Server) SetStatusWriter(w io.Writer) { s.statusW = w }

// Metro exposes the owned metro for after-Run inspection. Must not be
// used while Run is executing.
func (s *Server) Metro() *metro.Metro { return s.m }

// Frame returns the next frame index. Loop-owned; callers outside the
// loop should use Status instead.
func (s *Server) Frame() int { return s.m.Frame() }

// ScriptErrs returns how many scripted commands failed to apply (each
// failure is deterministic and harmless to replay — the command changes
// nothing — but usually indicates a script bug).
func (s *Server) ScriptErrs() int { return s.scriptErrs }

// Run advances the metro until the context is canceled or MaxFrames is
// reached. It must be called at most once; control-plane calls made after
// it returns fail with ErrStopped.
func (s *Server) Run(ctx context.Context) error {
	defer close(s.done)
	s.startWall = time.Now()
	s.startFrame = s.m.Frame()

	var pace time.Duration
	var next time.Time
	if s.cfg.TimeScale > 0 {
		pace = time.Duration(s.m.FramePeriod() / s.cfg.TimeScale * float64(time.Second))
		next = time.Now()
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		if s.cfg.MaxFrames > 0 && s.m.Frame() >= s.cfg.MaxFrames {
			return nil
		}
		s.step()
		if pace > 0 {
			next = next.Add(pace)
			if d := time.Until(next); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
				case <-t.C:
				}
			} else if d < -10*pace {
				next = time.Now() // fell far behind; stop chasing the deficit
			}
		}
	}
}

// step executes one frame boundary plus one frame: scripted commands due
// at this boundary, then queued control-plane requests, then the frame
// itself, then (on cadence) the status line. With the control plane idle
// and status off this is allocation-free — the daemon inherits the metro's
// zero-alloc steady state.
func (s *Server) step() {
	f := s.m.Frame()
	s.applyScriptAt(f)
	s.drainQueue(f)
	s.m.AdvanceFrame()
	if s.cfg.StatusEvery > 0 && s.m.Frame()%s.cfg.StatusEvery == 0 {
		s.writeStatus()
	}
}

// applyScriptAt applies every scripted command due at boundary f. Script
// failures are deterministic no-ops (counted, never journaled).
func (s *Server) applyScriptAt(f int) {
	for s.scriptIdx < len(s.cfg.Script) && s.cfg.Script[s.scriptIdx].Frame <= f {
		c := s.cfg.Script[s.scriptIdx]
		s.scriptIdx++
		if _, err := s.applyCommand(c); err != nil {
			s.scriptErrs++
		}
	}
}

// drainQueue serves every control-plane request already queued at
// boundary f, in arrival order. Requests arriving while a frame runs wait
// for the next boundary.
func (s *Server) drainQueue(f int) {
	for {
		select {
		case p := <-s.cmds:
			s.handle(p, f)
		default:
			return
		}
	}
}

// handle executes one queued request at boundary f: queries evaluate
// against the quiescent state; commands are stamped with the boundary
// frame, applied, and journaled on success.
func (s *Server) handle(p *pending, f int) {
	if p.query != nil {
		val, err := p.query()
		p.reply <- reply{val: val, err: err}
		return
	}
	c := *p.cmd
	c.Frame = f
	val, err := s.applyCommand(c)
	if err == nil {
		s.journal = append(s.journal, c)
	}
	p.reply <- reply{val: val, err: err}
}

// do enqueues a request and waits for the loop's boundary reply.
func (s *Server) do(p *pending) (any, error) {
	select {
	case s.cmds <- p:
	case <-s.done:
		return nil, ErrStopped
	}
	select {
	case r := <-p.reply:
		return r.val, r.err
	case <-s.done:
		// The loop may have replied just before exiting.
		select {
		case r := <-p.reply:
			return r.val, r.err
		default:
			return nil, ErrStopped
		}
	}
}

// Inject applies a command at the next frame boundary and returns its
// result. cmd.Frame is ignored — the loop stamps the boundary it applies
// the command at (returned in InjectResult.Frame and recorded in the
// journal).
func (s *Server) Inject(cmd Command) (InjectResult, error) {
	p := &pending{cmd: &cmd, reply: make(chan reply, 1)}
	val, err := s.do(p)
	if err != nil {
		return InjectResult{}, err
	}
	return val.(InjectResult), nil
}

// Status snapshots the daemon's deterministic state plus wall-clock
// throughput, evaluated at the next frame boundary.
func (s *Server) Status() (Status, error) {
	p := &pending{reply: make(chan reply, 1), query: func() (any, error) {
		return s.statusNow(true), nil
	}}
	val, err := s.do(p)
	if err != nil {
		return Status{}, err
	}
	return val.(Status), nil
}

// MetricsText renders the Prometheus exposition, evaluated at the next
// frame boundary. O(sites): counters, sketch merges, no per-UE walks.
func (s *Server) MetricsText() (string, error) {
	p := &pending{reply: make(chan reply, 1), query: func() (any, error) {
		return s.metricsText(), nil
	}}
	val, err := s.do(p)
	if err != nil {
		return "", err
	}
	return val.(string), nil
}

// SnapshotJSON builds the versioned snapshot document at the next frame
// boundary.
func (s *Server) SnapshotJSON() ([]byte, error) {
	p := &pending{reply: make(chan reply, 1), query: func() (any, error) {
		return s.snapshotNow()
	}}
	val, err := s.do(p)
	if err != nil {
		return nil, err
	}
	return val.([]byte), nil
}

// SnapshotJSONDirect builds the snapshot document without going through
// the queue. Only safe when the loop is not running (before Run, or after
// it returned) — the CLI's shutdown snapshot path.
func (s *Server) SnapshotJSONDirect() ([]byte, error) { return s.snapshotNow() }

// Close releases the metro's worker pool. Call only after Run has
// returned (or if Run was never started).
func (s *Server) Close() { s.m.Close() }
