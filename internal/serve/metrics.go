package serve

import (
	"bytes"
	"fmt"
	"strconv"
)

// metricsText renders the Prometheus text exposition (format 0.0.4) from
// the O(sites) aggregates only: summed cluster counters, summed station
// counters, and the O(shards) sketch merge of harvested UEs. No per-UE or
// per-session walk happens here — a scrape costs the same whether the city
// has served a hundred UE-sessions or a hundred thousand. Loop-owned.
func (s *Server) metricsText() string {
	var b bytes.Buffer
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
			name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	// bySite appends one site-labeled series per cluster site to the family
	// whose header the preceding gauge/counter call just wrote. Sites render
	// in index order, from the per-site aggregates the metro maintains
	// alongside its shard sketches, so the whole exposition stays O(sites)
	// and byte-identical at any worker count.
	bySite := func(name string, v func(site int) float64) {
		for i := 0; i < s.m.Sites(); i++ {
			fmt.Fprintf(&b, "%s{site=\"%d\"} %s\n",
				name, i, strconv.FormatFloat(v(i), 'g', -1, 64))
		}
	}

	gauge("mmserved_frame", "Next metro frame index.", float64(s.m.Frame()))
	gauge("mmserved_sim_seconds", "Simulated time at the last boundary.",
		float64(s.m.Frame())*s.m.FramePeriod())
	gauge("mmserved_sites", "Cluster sites in the city.", float64(s.cfg.Metro.Clusters))
	gauge("mmserved_cells", "Total gNB cells.", float64(s.m.Cells()))
	gauge("mmserved_resident_ues", "UEs currently resident.", float64(s.m.ResidentUEs()))
	gauge("mmserved_active_sessions", "Attached station sessions.", float64(s.m.ActiveSessions()))
	bySite("mmserved_active_sessions", func(i int) float64 {
		return float64(s.m.SiteActiveSessions(i))
	})
	gauge("mmserved_journal_commands", "External commands applied and journaled.", float64(len(s.journal)))
	gauge("mmserved_script_errors", "Scripted commands that failed to apply.", float64(s.scriptErrs))

	cc := s.m.CountersTotal()
	counter("mmserved_handovers_total", "Serving-standby promotions.", float64(cc.Handovers))
	counter("mmserved_pingpongs_total", "Handovers returning within the ping-pong window.", float64(cc.PingPongs))
	counter("mmserved_standby_retargets_total", "Standby legs re-pointed at stronger cells.", float64(cc.StandbyRetargets))
	counter("mmserved_monitor_rounds_total", "Wide-beam monitor rounds.", float64(cc.MonitorRounds))
	counter("mmserved_monitor_probes_total", "Wide-beam monitor probes.", float64(cc.MonitorProbes))
	counter("mmserved_ues_attached_total", "UE admissions.", float64(cc.UEsAttached))
	counter("mmserved_ues_finished_total", "UE departures.", float64(cc.UEsFinished))
	counter("mmserved_admission_deferrals_total", "Arrivals deferred to a later boundary.", float64(cc.AdmissionDeferrals))

	sc := s.m.StationCountersTotal()
	counter("mmserved_session_slots_total", "Session-slots stepped.", float64(sc.SessionSlots))
	counter("mmserved_probes_issued_total", "Sounder probes fired.", float64(sc.ProbesIssued))
	counter("mmserved_grants_total", "Probe tokens consumed.", float64(sc.Grants))
	counter("mmserved_budget_denials_total", "Sounding opportunities denied by budget.", float64(sc.BudgetDenials))
	counter("mmserved_preemptions_total", "Emergency rounds charged to the next frame.", float64(sc.Preemptions))
	counter("mmserved_realigns_total", "Beam refinements.", float64(sc.Realigns))
	counter("mmserved_retrains_total", "Full retrainings.", float64(sc.Retrains))
	counter("mmserved_training_slots_total", "Slots consumed by beam management.", float64(sc.TrainingSlots))

	sk := s.m.SketchTotal()
	counter("mmserved_harvested_ues_total", "Finished UE-sessions folded into the sketches.", float64(sk.UEs))
	bySite("mmserved_harvested_ues_total", func(i int) float64 {
		return float64(s.m.SiteSketch(i).UEs)
	})
	counter("mmserved_harvested_measured_total", "Harvested UEs with at least one measured slot.", float64(sk.Measured))
	gauge("mmserved_harvested_serving_reliability", "Serving-leg reliability over harvested UEs.", sk.Serving().Reliability)
	bySite("mmserved_harvested_serving_reliability", func(i int) float64 {
		return s.m.SiteSketch(i).Serving().Reliability
	})
	gauge("mmserved_harvested_diversity_reliability", "Selection-diversity reliability over harvested UEs.", sk.Diversity().Reliability)
	bySite("mmserved_harvested_diversity_reliability", func(i int) float64 {
		return s.m.SiteSketch(i).Diversity().Reliability
	})
	gauge("mmserved_harvested_serving_throughput_bps", "Mean serving-leg throughput over harvested UEs.", sk.Serving().MeanThroughput)
	gauge("mmserved_worst_outage_ms", "Longest single outage episode any harvested UE saw.", sk.WorstOutageMs)
	fmt.Fprintf(&b, "# HELP mmserved_harvested_rel_hist Harvested UEs by serving reliability decile.\n# TYPE mmserved_harvested_rel_hist gauge\n")
	for bin, n := range sk.RelHist {
		fmt.Fprintf(&b, "mmserved_harvested_rel_hist{bin=\"%d\"} %d\n", bin, n)
	}
	return b.String()
}
