package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// startDaemon runs a churn-free daemon (UE ids stay predictable) with the
// control plane mounted on an httptest server.
func startDaemon(t *testing.T) (ts *httptest.Server, s *Server, stop func()) {
	t.Helper()
	cfg := testConfig(1)
	cfg.Metro.ChurnArrivalRate = 0
	cfg.StatusEvery = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(ctx)
	}()
	ts = httptest.NewServer(s.Handler())
	return ts, s, func() {
		ts.Close()
		cancel()
		<-done
		s.Close()
	}
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func TestHTTPStatusAndMetrics(t *testing.T) {
	ts, _, stop := startDaemon(t)
	defer stop()

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /status: %d", resp.StatusCode)
	}
	if st.Sites != 4 || st.Cells != 8 || st.ResidentUEs != 8 {
		t.Errorf("status = sites:%d cells:%d ues:%d, want 4/8/8", st.Sites, st.Cells, st.ResidentUEs)
	}
	if st.Digest == "" || len(st.Digest) != 16 {
		t.Errorf("status digest %q, want 16 hex chars", st.Digest)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE mmserved_frame gauge",
		"mmserved_resident_ues 8",
		"# TYPE mmserved_handovers_total counter",
		"mmserved_harvested_rel_hist{bin=\"0\"}",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

func TestHTTPLifecycleRoundTrip(t *testing.T) {
	ts, _, stop := startDaemon(t)
	defer stop()

	// Attach a UE to site 2 at an explicit position.
	code, body := postJSON(t, ts.URL+"/ue/attach", `{"site":2,"x":3.5,"y":1.25,"duration_s":5}`)
	if code != http.StatusOK {
		t.Fatalf("attach: %d %s", code, body)
	}
	var res InjectResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("attach result: %v", err)
	}
	if res.Op != OpAttach || res.UE != 2 { // site 2's initial UEs are 0 and 1
		t.Errorf("attach result %+v, want op=attach ue=2", res)
	}

	// Detach it again.
	code, body = postJSON(t, ts.URL+"/ue/detach", fmt.Sprintf(`{"site":2,"ue":%d}`, res.UE))
	if code != http.StatusOK {
		t.Fatalf("detach: %d %s", code, body)
	}

	// Blockage on a resident UE's serving cell (cell omitted).
	code, body = postJSON(t, ts.URL+"/event/blockage", `{"site":0,"ue":0,"depth_db":25,"duration_s":0.05}`)
	if code != http.StatusOK {
		t.Fatalf("blockage: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("blockage result: %v", err)
	}
	if res.Cell < 0 {
		t.Errorf("blockage did not resolve a serving cell: %+v", res)
	}

	// Hot-reload a knob.
	code, body = postJSON(t, ts.URL+"/config", `{"probe_budget":2}`)
	if code != http.StatusOK {
		t.Fatalf("config: %d %s", code, body)
	}

	// All four landed in the journal.
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.JournalLen != 4 {
		t.Errorf("journal length %d, want 4", st.JournalLen)
	}
}

func TestHTTPValidationErrors(t *testing.T) {
	ts, _, stop := startDaemon(t)
	defer stop()

	cases := []struct {
		name, path, body string
	}{
		{"attach bad site", "/ue/attach", `{"site":99}`},
		{"attach x without y", "/ue/attach", `{"site":0,"x":1}`},
		{"attach unknown field", "/ue/attach", `{"site":0,"altitude":3}`},
		{"detach unknown ue", "/ue/detach", `{"site":0,"ue":9999}`},
		{"blockage zero depth", "/event/blockage", `{"site":0,"ue":0,"duration_s":1}`},
		{"config negative budget", "/config", `{"probe_budget":-1}`},
		{"config typoed knob", "/config", `{"prob_budget":2}`},
		{"malformed json", "/config", `{`},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, code, body)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q not {\"error\":...}", tc.name, body)
		}
	}
}

func TestHTTPSnapshotRestores(t *testing.T) {
	ts, _, stop := startDaemon(t)

	code, body := postJSON(t, ts.URL+"/config", `{"probe_budget":2}`)
	if code != http.StatusOK {
		t.Fatalf("config: %d %s", code, body)
	}
	resp, err := http.Post(ts.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /snapshot: %v", err)
	}
	var blob bytes.Buffer
	blob.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot: %d %s", resp.StatusCode, blob.String())
	}
	stop()

	// The live snapshot — journal included — restores in a fresh daemon.
	s2, err := Restore(blob.Bytes(), Runtime{})
	if err != nil {
		t.Fatalf("Restore of live snapshot: %v", err)
	}
	s2.Close()
}

func TestHTTPStoppedDaemonReturns503(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxFrames = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /status on stopped daemon: %d, want 503", resp.StatusCode)
	}
}
