package serve

import (
	"fmt"

	"mmreliable/internal/cluster"
	"mmreliable/internal/metro"
)

// Command ops.
const (
	OpAttach   = "attach"   // add a UE to a site
	OpDetach   = "detach"   // schedule a UE's departure
	OpBlockage = "blockage" // inject a blockage event on a (site, ue, cell) link
	OpTune     = "tune"     // hot-reload scheduler / handover knobs
)

// Command is one journalable control-plane operation. Frame is the
// boundary it applies at: assigned by the loop for injected commands,
// author-chosen for scripted ones. The journal of applied Commands is the
// snapshot's event log — replaying it at the recorded frames reproduces
// the daemon's state bit for bit.
type Command struct {
	Frame int    `json:"frame"`
	Op    string `json:"op"`
	Site  int    `json:"site"`
	// UE targets detach/blockage.
	UE int `json:"ue,omitempty"`
	// Cell targets blockage (nil = the UE's serving cell at apply time).
	Cell *int `json:"cell,omitempty"`
	// DepthDB / DurationS parameterize blockage.
	DepthDB   float64 `json:"depth_db,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	// Attach parameterizes attach.
	Attach *metro.AttachSpec `json:"attach,omitempty"`
	// Tune parameterizes tune.
	Tune *cluster.Tuning `json:"tune,omitempty"`
}

// validate checks the command's shape (not its runtime applicability —
// an unknown UE id, say, is only discoverable at apply time).
func (c Command) validate() error {
	switch c.Op {
	case OpAttach, OpDetach, OpBlockage:
		return nil
	case OpTune:
		if c.Tune == nil {
			return fmt.Errorf("tune command without tuning payload")
		}
		return c.Tune.Validate()
	default:
		return fmt.Errorf("unknown op %q", c.Op)
	}
}

// InjectResult reports where and on what a command landed.
type InjectResult struct {
	// Frame is the boundary the command applied at.
	Frame int `json:"frame"`
	// Op echoes the command.
	Op string `json:"op"`
	// UE is the targeted UE — for attach, the newly assigned id.
	UE int `json:"ue"`
	// Cell is the resolved blockage target cell (−1 when not applicable).
	Cell int `json:"cell"`
}

// DemoScript returns the built-in deterministic event script behind the
// mmserved -demo-script flag (and the CI kill-and-restore diff): a live
// attach, a deep blockage on a resident UE, a scheduler hot-reload, and a
// detach — one of each journalable op, at fixed frame boundaries.
func DemoScript() []Command {
	budget := 3
	return []Command{
		{Frame: 2, Op: OpAttach, Site: 1, DurationS: 2.0},
		{Frame: 5, Op: OpBlockage, Site: 0, UE: 0, DepthDB: 25, DurationS: 0.05},
		{Frame: 7, Op: OpTune, Tune: &cluster.Tuning{ProbeBudget: &budget}},
		{Frame: 9, Op: OpDetach, Site: 0, UE: 0},
	}
}

// applyCommand executes one command against the quiescent metro. Errors
// leave the simulation untouched (and the command un-journaled).
func (s *Server) applyCommand(c Command) (InjectResult, error) {
	res := InjectResult{Frame: c.Frame, Op: c.Op, UE: c.UE, Cell: -1}
	switch c.Op {
	case OpAttach:
		var spec metro.AttachSpec
		if c.Attach != nil {
			spec = *c.Attach
		}
		if spec.DurationS == 0 && c.DurationS > 0 {
			spec.DurationS = c.DurationS
		}
		id, err := s.m.InjectAttach(c.Site, spec)
		if err != nil {
			return res, err
		}
		res.UE = id
	case OpDetach:
		if err := s.m.InjectDetach(c.Site, c.UE); err != nil {
			return res, err
		}
	case OpBlockage:
		cell := -1
		if c.Cell != nil {
			cell = *c.Cell
		}
		resolved, err := s.m.InjectBlockage(c.Site, c.UE, cell, c.DepthDB, c.DurationS)
		if err != nil {
			return res, err
		}
		res.Cell = resolved
	case OpTune:
		if c.Tune == nil {
			return res, fmt.Errorf("serve: tune command without tuning payload")
		}
		if err := s.m.ApplyTuning(*c.Tune); err != nil {
			return res, err
		}
	default:
		return res, fmt.Errorf("serve: unknown op %q", c.Op)
	}
	return res, nil
}
