package serve

import (
	"fmt"
	"time"

	"mmreliable/internal/cluster"
	"mmreliable/internal/link"
)

// Status is the daemon's boundary-time state. Every field except UEsPerSec
// is a pure function of simulated state — deterministic at any worker
// count and across kill/restore. UEsPerSec is wall-clock observability
// (resident-UE frames per second since Run started) and is deliberately
// excluded from Line.
type Status struct {
	Frame          int     `json:"frame"`
	SimTimeS       float64 `json:"sim_time_s"`
	Sites          int     `json:"sites"`
	Cells          int     `json:"cells"`
	ResidentUEs    int     `json:"resident_ues"`
	ActiveSessions int     `json:"active_sessions"`
	// Counters sums every site's cluster counters.
	Counters cluster.Counters `json:"counters"`
	// Harvested aggregates over UEs that already left (the O(shards)
	// sketch merge, not a per-UE walk).
	HarvestedUEs     int          `json:"harvested_ues"`
	HarvestedServing link.Summary `json:"harvested_serving"`
	WorstOutageMs    float64      `json:"worst_outage_ms"`
	// Digest is the metro state digest (hex) — the restore-verification
	// fold over every site's semantic state.
	Digest string `json:"digest"`
	// JournalLen counts applied external commands.
	JournalLen int `json:"journal_len"`
	// UEsPerSec is approximate wall-clock throughput (0 when unknown).
	UEsPerSec float64 `json:"ues_per_sec,omitempty"`
}

// statusNow builds the boundary status. Loop-owned.
func (s *Server) statusNow(withWall bool) Status {
	sk := s.m.SketchTotal()
	st := Status{
		Frame:            s.m.Frame(),
		SimTimeS:         float64(s.m.Frame()) * s.m.FramePeriod(),
		Sites:            s.cfg.Metro.Clusters,
		Cells:            s.m.Cells(),
		ResidentUEs:      s.m.ResidentUEs(),
		ActiveSessions:   s.m.ActiveSessions(),
		Counters:         s.m.CountersTotal(),
		HarvestedUEs:     sk.UEs,
		HarvestedServing: sk.Serving(),
		WorstOutageMs:    sk.WorstOutageMs,
		Digest:           fmt.Sprintf("%016x", s.m.DigestSum()),
		JournalLen:       len(s.journal),
	}
	if withWall {
		if el := time.Since(s.startWall).Seconds(); el > 0 && s.m.Frame() > s.startFrame {
			st.UEsPerSec = float64(st.ResidentUEs) * float64(s.m.Frame()-s.startFrame) / el
		}
	}
	return st
}

// Line renders the deterministic status line — the stream the CI
// kill-and-restore diff concatenates. %v floats (shortest round-trip), no
// wall-clock fields.
func (st Status) Line() string {
	return fmt.Sprintf(
		"mmserved frame=%d t=%v ues=%d sess=%d att=%d fin=%d defer=%d ho=%d pp=%d probes=%d harv=%d rel=%v thr=%v worst=%v jrnl=%d dig=%s",
		st.Frame, st.SimTimeS, st.ResidentUEs, st.ActiveSessions,
		st.Counters.UEsAttached, st.Counters.UEsFinished, st.Counters.AdmissionDeferrals,
		st.Counters.Handovers, st.Counters.PingPongs, st.Counters.MonitorProbes,
		st.HarvestedUEs, st.HarvestedServing.Reliability, st.HarvestedServing.MeanThroughput,
		st.WorstOutageMs, st.JournalLen, st.Digest)
}

// writeStatus emits the deterministic status line for the frame that just
// completed. Loop-owned.
func (s *Server) writeStatus() {
	if s.statusW == nil {
		return
	}
	fmt.Fprintln(s.statusW, s.statusNow(false).Line())
}
