package motion

import (
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/env"
)

func TestStatic(t *testing.T) {
	p := env.Pose{Pos: env.Vec2{X: 1, Y: 2}, Facing: 0.5}
	s := Static{Pose: p}
	if s.At(0) != p || s.At(100) != p {
		t.Fatal("static trace moved")
	}
}

func TestRotation(t *testing.T) {
	r := Rotation{
		Base:      env.Pose{Pos: env.Vec2{X: 3, Y: 4}, Facing: 0},
		RateRadPS: math.Pi / 2, // 90°/s
	}
	if got := r.At(0); got.Facing != 0 {
		t.Fatalf("t=0 facing %g", got.Facing)
	}
	got := r.At(1)
	if math.Abs(got.Facing-math.Pi/2) > 1e-12 {
		t.Fatalf("t=1 facing %g", got.Facing)
	}
	if got.Pos != (env.Vec2{X: 3, Y: 4}) {
		t.Fatal("rotation moved position")
	}
}

func TestTranslation(t *testing.T) {
	tr := Translation{
		Start:  env.Vec2{X: 0, Y: 5},
		Vel:    env.Vec2{X: 1.5, Y: 0}, // the paper's 1.5 m/s cart speed
		Facing: math.Pi,
	}
	got := tr.At(2)
	if got.Pos != (env.Vec2{X: 3, Y: 5}) {
		t.Fatalf("pos = %v", got.Pos)
	}
	if got.Facing != math.Pi {
		t.Fatalf("facing = %g", got.Facing)
	}
}

func TestTranslationTracksTarget(t *testing.T) {
	target := env.Vec2{X: 0, Y: 0}
	tr := Translation{
		Start:       env.Vec2{X: 10, Y: 0},
		Vel:         env.Vec2{X: 0, Y: 1},
		TrackTarget: &target,
	}
	// At t=0 the UE at (10,0) faces the origin: angle π.
	if got := tr.At(0); math.Abs(got.Facing-math.Pi) > 1e-12 {
		t.Fatalf("facing = %g", got.Facing)
	}
	// At t=10 the UE is at (10,10); direction to origin is -3π/4.
	if got := tr.At(10); math.Abs(got.Facing-(-3*math.Pi/4)) > 1e-12 {
		t.Fatalf("facing = %g", got.Facing)
	}
}

func TestWaypoints(t *testing.T) {
	w := Waypoints{
		Times: []float64{0, 1, 3},
		Poses: []env.Pose{
			{Pos: env.Vec2{X: 0, Y: 0}, Facing: 0},
			{Pos: env.Vec2{X: 2, Y: 0}, Facing: math.Pi / 2},
			{Pos: env.Vec2{X: 2, Y: 4}, Facing: math.Pi / 2},
		},
	}
	// Clamping.
	if got := w.At(-1); got.Pos != (env.Vec2{X: 0, Y: 0}) {
		t.Fatalf("pre-clamp %v", got)
	}
	if got := w.At(10); got.Pos != (env.Vec2{X: 2, Y: 4}) {
		t.Fatalf("post-clamp %v", got)
	}
	// Midpoint of first leg.
	got := w.At(0.5)
	if math.Abs(got.Pos.X-1) > 1e-12 || math.Abs(got.Facing-math.Pi/4) > 1e-12 {
		t.Fatalf("interpolation %v", got)
	}
	// Midpoint of second leg.
	got = w.At(2)
	if math.Abs(got.Pos.Y-2) > 1e-12 {
		t.Fatalf("interpolation %v", got)
	}
	// Empty trace returns zero pose.
	if got := (Waypoints{}).At(1); got != (env.Pose{}) {
		t.Fatalf("empty waypoints %v", got)
	}
}

func TestWaypointsAngleWrap(t *testing.T) {
	// Interpolating from 170° to −170° should go through 180°, not 0°.
	w := Waypoints{
		Times: []float64{0, 1},
		Poses: []env.Pose{
			{Facing: 170 * math.Pi / 180},
			{Facing: -170 * math.Pi / 180},
		},
	}
	mid := w.At(0.5).Facing
	midDeg := math.Mod(mid*180/math.Pi+360, 360)
	if math.Abs(midDeg-180) > 1e-9 {
		t.Fatalf("wrapped midpoint = %g°", midDeg)
	}
}

func TestJitterStaysBoundedAndSmooth(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := Static{Pose: env.Pose{Pos: env.Vec2{X: 5, Y: 5}}}
	j := NewJitter(base, 0.02, 0.01, rng)
	var prev env.Pose
	for i := 0; i <= 1000; i++ {
		ts := float64(i) * 0.001
		p := j.At(ts)
		if p.Pos.Dist(base.Pose.Pos) > 0.05 {
			t.Fatalf("jitter too large at t=%g: %v", ts, p.Pos)
		}
		if math.Abs(p.Facing) > 0.02 {
			t.Fatalf("angular jitter too large: %g", p.Facing)
		}
		if i > 0 {
			// Smoothness: < 1 mm per ms at these amplitudes/frequencies.
			if p.Pos.Dist(prev.Pos) > 1e-3 {
				t.Fatalf("jitter jumped %g m in 1 ms", p.Pos.Dist(prev.Pos))
			}
		}
		prev = p
	}
	// Deterministic for a fixed seed.
	rng2 := rand.New(rand.NewSource(17))
	j2 := NewJitter(Static{Pose: env.Pose{Pos: env.Vec2{X: 5, Y: 5}}}, 0.02, 0.01, rng2)
	if j.At(0.5) != j2.At(0.5) {
		t.Fatal("jitter not deterministic for equal seeds")
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0.5, 0.2, 0.3},
		{-3, 3, 2*math.Pi - 6},
		{3, -3, 6 - 2*math.Pi},
	}
	for _, c := range cases {
		if got := angleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("angleDiff(%g, %g) = %g want %g", c.a, c.b, got, c.want)
		}
	}
}
