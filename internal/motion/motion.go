// Package motion provides mobility traces for the UE (and, for gantry-style
// micro-benchmarks, the gNB array): uniform rotation and translation,
// waypoint trajectories, and natural-motion jitter. Every trace yields an
// exact ground-truth pose, replacing the paper's Cinetics gantry readouts
// for tracking-accuracy evaluation.
package motion

import (
	"math"
	"math/rand"

	"mmreliable/internal/env"
)

// Trace yields the pose of a terminal at any time t ≥ 0 (seconds).
type Trace interface {
	At(t float64) env.Pose
}

// Static is a trace that never moves.
type Static struct {
	Pose env.Pose
}

// At implements Trace.
func (s Static) At(float64) env.Pose { return s.Pose }

// Rotation spins the terminal in place at a constant angular rate,
// reproducing the paper's gantry rotation experiments (2–24 °/s; 24 °/s is
// cited as typical VR headset motion).
type Rotation struct {
	Base      env.Pose
	RateRadPS float64 // angular rate (rad/s), positive = counterclockwise
}

// At implements Trace.
func (r Rotation) At(t float64) env.Pose {
	p := r.Base
	p.Facing += r.RateRadPS * t
	return p
}

// Translation moves the terminal at constant velocity. If TrackTarget is
// non-nil the terminal keeps facing that world point while moving (a UE
// pointed at its gNB); otherwise Facing stays fixed.
type Translation struct {
	Start       env.Vec2
	Vel         env.Vec2 // m/s
	Facing      float64
	TrackTarget *env.Vec2
}

// At implements Trace.
func (tr Translation) At(t float64) env.Pose {
	pos := tr.Start.Add(tr.Vel.Scale(t))
	facing := tr.Facing
	if tr.TrackTarget != nil {
		facing = tr.TrackTarget.Sub(pos).Angle()
	}
	return env.Pose{Pos: pos, Facing: facing}
}

// Waypoints interpolates linearly through a sequence of timed poses,
// clamping before the first and after the last.
type Waypoints struct {
	Times []float64 // strictly increasing
	Poses []env.Pose
}

// At implements Trace.
func (w Waypoints) At(t float64) env.Pose {
	n := len(w.Times)
	if n == 0 {
		return env.Pose{}
	}
	if t <= w.Times[0] {
		return w.Poses[0]
	}
	if t >= w.Times[n-1] {
		return w.Poses[n-1]
	}
	i := 1
	for w.Times[i] < t {
		i++
	}
	t0, t1 := w.Times[i-1], w.Times[i]
	frac := (t - t0) / (t1 - t0)
	p0, p1 := w.Poses[i-1], w.Poses[i]
	return env.Pose{
		Pos: env.Vec2{
			X: p0.Pos.X + frac*(p1.Pos.X-p0.Pos.X),
			Y: p0.Pos.Y + frac*(p1.Pos.Y-p0.Pos.Y),
		},
		Facing: p0.Facing + frac*angleDiff(p1.Facing, p0.Facing),
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// Jitter wraps a trace with band-limited positional and angular noise to
// approximate natural (hand-held / cart-pushed) motion. Noise is a sum of a
// few random sinusoids so the perturbation is smooth and deterministic for
// a given seed.
type Jitter struct {
	Inner    Trace
	PosAmp   float64 // meters
	AngAmp   float64 // radians
	numTerms int
	freqs    []float64 // Hz
	phases   []float64
}

// NewJitter builds a jitter wrapper with noise energy between about 0.5 and
// 3 Hz, seeded from rng.
func NewJitter(inner Trace, posAmp, angAmp float64, rng *rand.Rand) *Jitter {
	const terms = 4
	j := &Jitter{Inner: inner, PosAmp: posAmp, AngAmp: angAmp, numTerms: terms}
	for i := 0; i < 3*terms; i++ {
		j.freqs = append(j.freqs, 0.5+2.5*rng.Float64())
		j.phases = append(j.phases, 2*math.Pi*rng.Float64())
	}
	return j
}

// At implements Trace.
func (j *Jitter) At(t float64) env.Pose {
	p := j.Inner.At(t)
	var dx, dy, da float64
	for i := 0; i < j.numTerms; i++ {
		dx += math.Sin(2*math.Pi*j.freqs[i]*t + j.phases[i])
		dy += math.Sin(2*math.Pi*j.freqs[j.numTerms+i]*t + j.phases[j.numTerms+i])
		da += math.Sin(2*math.Pi*j.freqs[2*j.numTerms+i]*t + j.phases[2*j.numTerms+i])
	}
	norm := 1 / float64(j.numTerms)
	p.Pos.X += j.PosAmp * dx * norm
	p.Pos.Y += j.PosAmp * dy * norm
	p.Facing += j.AngAmp * da * norm
	return p
}
