// Package core holds the small cross-cutting helpers every layer and CLI
// shares: an order-sensitive state digest (the service layer's
// restore-verification primitive), build identity for -version flags, and
// the unified CLI flag validator. It sits below every other internal
// package and imports nothing from the repo.
package core

import "math"

// Digest is an order-sensitive FNV-1a 64-bit fold over a layer's
// deterministic state. Layers expose `Digest(d *core.Digest)` hooks that
// fold their semantic state (scheduler positions, FSM fields, meter
// accumulators, beam weights) in a fixed order, so two simulations that
// would produce byte-identical output from here on fold to the same sum —
// at any worker count. The service layer stamps snapshots with the metro
// digest and refuses a restore whose replayed state disagrees.
//
// Floats fold as their IEEE-754 bit patterns (math.Float64bits), so ±Inf,
// signed zeros, and every ulp participate; this is a determinism check,
// not an approximate comparison.
type Digest struct {
	h uint64
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// NewDigest returns a fresh digest at the FNV-1a offset basis.
func NewDigest() *Digest { return &Digest{h: fnvOffset64} }

// Uint64 folds v byte by byte, little-endian.
func (d *Digest) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h = (d.h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
}

// Int folds an int (as its 64-bit two's-complement pattern).
func (d *Digest) Int(v int) { d.Uint64(uint64(int64(v))) }

// Int64 folds an int64.
func (d *Digest) Int64(v int64) { d.Uint64(uint64(v)) }

// Float64 folds a float64's bit pattern.
func (d *Digest) Float64(v float64) { d.Uint64(math.Float64bits(v)) }

// Bool folds a bool as 0/1.
func (d *Digest) Bool(v bool) {
	if v {
		d.Uint64(1)
	} else {
		d.Uint64(0)
	}
}

// Floats folds a slice length followed by every element, so [1][2] and
// [1,2] fold differently.
func (d *Digest) Floats(vs []float64) {
	d.Int(len(vs))
	for _, v := range vs {
		d.Float64(v)
	}
}

// Bools folds a slice length followed by every element.
func (d *Digest) Bools(vs []bool) {
	d.Int(len(vs))
	for _, v := range vs {
		d.Bool(v)
	}
}

// Complex folds a complex128 as (real, imag).
func (d *Digest) Complex(v complex128) {
	d.Float64(real(v))
	d.Float64(imag(v))
}

// Sum returns the current fold.
func (d *Digest) Sum() uint64 { return d.h }
