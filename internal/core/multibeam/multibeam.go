// Package multibeam implements the paper's central idea: constructive
// multi-beam synthesis. A multi-beam directs one lobe at each strong
// channel path with per-lobe amplitude and phase chosen so that the copies
// of the signal arriving over every path add coherently at the receiver
// (Eq. 10 for two beams, Eq. 29 for the general case), conserving total
// radiated power and strictly beating any single beam on SNR whenever a
// second path carries energy.
package multibeam

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
)

// Beam is one lobe of a multi-beam: its steering angle and its complex
// weight relative to the first (reference) lobe. The reference lobe has
// Amp = 1, Phase = 0 by convention.
type Beam struct {
	Angle float64 // steering angle (radians)
	Amp   float64 // relative amplitude δ ≥ 0
	Phase float64 // relative channel phase σ (radians)
}

// Reference returns the reference lobe toward the given angle.
func Reference(angle float64) Beam { return Beam{Angle: angle, Amp: 1, Phase: 0} }

// Weights synthesizes the constructive multi-beam weight vector
//
//	w ∝ Σ_k δ_k e^{−jσ_k} w_{φ_k},  ‖w‖ = 1,
//
// where w_{φ} is the matched single beam toward φ. The e^{−jσ} conjugation
// cancels the channel's per-path phase so the receiver-side copies align
// (Eq. 10). Note δ_k and σ_k describe the *channel* of path k relative to
// the reference path; Weights derives the transmit coefficients from them.
func Weights(u *antenna.ULA, beams []Beam) (cmx.Vector, error) {
	return WeightsInto(u, beams, nil, nil)
}

// WeightsInto is Weights with caller-provided buffers: dst receives the
// synthesized weight vector and scratch holds one lobe's matched beam at a
// time. Either may be nil (allocated on demand); when both are supplied the
// synthesis is allocation-free. The arithmetic — per-lobe matched beam,
// coefficient-scaled accumulation, final normalization — is identical to
// Weights. dst must not alias a weight vector the caller still transmits.
func WeightsInto(u *antenna.ULA, beams []Beam, dst, scratch cmx.Vector) (cmx.Vector, error) {
	if len(beams) == 0 {
		return nil, fmt.Errorf("multibeam: no beams")
	}
	if dst == nil {
		dst = make(cmx.Vector, u.N)
	}
	if len(dst) != u.N {
		return nil, fmt.Errorf("multibeam: dst length %d != %d elements", len(dst), u.N)
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, b := range beams {
		if b.Amp < 0 {
			return nil, fmt.Errorf("multibeam: negative amplitude %g", b.Amp)
		}
		coeff := cmplx.Rect(b.Amp, -b.Phase)
		scratch = u.SingleBeamInto(b.Angle, scratch)
		dst.AddScaled(coeff, scratch)
	}
	if dst.Norm() < 1e-15 {
		return nil, fmt.Errorf("multibeam: beams cancel (zero total weight)")
	}
	return dst.Normalize(), nil
}

// FromChannelRatios builds the lobe list from measured relative channel
// ratios: angles[k] is the steering direction of path k and ratios[k] =
// δ_k·e^{jσ_k} = h_k/h_0 its measured channel relative to path 0 (which
// must have ratios[0] == 1 or be omitted by passing ratios[0] = 1).
func FromChannelRatios(angles []float64, ratios []complex128) ([]Beam, error) {
	if len(angles) != len(ratios) {
		return nil, fmt.Errorf("multibeam: %d angles vs %d ratios", len(angles), len(ratios))
	}
	beams := make([]Beam, len(angles))
	for k := range angles {
		beams[k] = Beam{
			Angle: angles[k],
			Amp:   cmplx.Abs(ratios[k]),
			Phase: cmplx.Phase(ratios[k]),
		}
	}
	return beams, nil
}

// Optimal returns the maximum-ratio-transmission weights w = h*/‖h‖
// (Eq. 4) — the oracle beamformer that requires full per-antenna CSI,
// unobtainable on a single-RF-chain array but useful as an upper bound.
func Optimal(h cmx.Vector) (cmx.Vector, error) {
	if h.Norm() < 1e-300 {
		return nil, fmt.Errorf("multibeam: zero channel")
	}
	return h.Conj().Normalize(), nil
}

// SubArraySplit builds the Aykin et al. style multi-beam that splits the
// physical array into contiguous sub-arrays, one per lobe, instead of
// superposing full-aperture beams. It is the sub-optimal multi-beam
// baseline the paper contrasts with (§3.3): each lobe is wider (half the
// aperture per lobe for two beams) and per-lobe phase control is still
// applied. Power is split across sub-arrays proportional to amp².
func SubArraySplit(u *antenna.ULA, beams []Beam) (cmx.Vector, error) {
	if len(beams) == 0 {
		return nil, fmt.Errorf("multibeam: no beams")
	}
	if len(beams) > u.N {
		return nil, fmt.Errorf("multibeam: more beams (%d) than elements (%d)", len(beams), u.N)
	}
	w := cmx.NewVector(u.N)
	per := u.N / len(beams)
	for k, b := range beams {
		lo := k * per
		hi := lo + per
		if k == len(beams)-1 {
			hi = u.N
		}
		coeff := cmplx.Rect(b.Amp, -b.Phase)
		for n := lo; n < hi; n++ {
			// Full-array steering phase, windowed to the sub-array.
			ph := -2 * math.Pi * u.Spacing / u.Lambda * float64(n) * math.Sin(b.Angle)
			w[n] = coeff * cmplx.Exp(complex(0, -ph))
		}
	}
	if w.Norm() < 1e-15 {
		return nil, fmt.Errorf("multibeam: sub-array beams cancel")
	}
	return w.Normalize(), nil
}

// TheoreticalGain returns the SNR gain (linear) of an ideal two-beam
// constructive multi-beam over a single beam on the stronger path, for a
// two-path channel with relative amplitude delta: 1 + δ² (Eq. 9). With
// estimation errors dAmp (ratio) and dPhase (radians) on the second lobe
// the combining degrades to
//
//	gain = (1 + 2·δ·a·cos(Δσ) + δ²·a²) / (1 + a²)
//
// where a = δ·dAmp is the applied (possibly wrong) second-lobe amplitude.
// This closed form drives the Fig. 14 sensitivity surface.
func TheoreticalGain(delta, appliedAmp, phaseErr float64) float64 {
	num := 1 + 2*delta*appliedAmp*math.Cos(phaseErr) + delta*delta*appliedAmp*appliedAmp
	den := 1 + appliedAmp*appliedAmp
	return num / den
}

// PerBeamPowerFractions returns the fraction of radiated power each lobe of
// the synthesized multi-beam carries, estimated by projecting the weight
// vector on each lobe's matched beam. Fractions are normalized to sum to 1
// when lobes are orthogonal (well separated); overlap makes them
// approximate, mirroring the physical array.
func PerBeamPowerFractions(u *antenna.ULA, w cmx.Vector, angles []float64) []float64 {
	fr := make([]float64, len(angles))
	var total float64
	for k, a := range angles {
		proj := u.SingleBeam(a).Hdot(w)
		fr[k] = real(proj)*real(proj) + imag(proj)*imag(proj)
		total += fr[k]
	}
	if total > 0 {
		for k := range fr {
			fr[k] /= total
		}
	}
	return fr
}

// DropBeam returns a new lobe list with beam k removed and the remaining
// amplitudes rescaled so the strongest remaining lobe is the reference
// (Amp = 1, Phase = 0). This is the §4.1 blockage response: re-purpose the
// power of a blocked lobe onto the survivors.
func DropBeam(beams []Beam, k int) ([]Beam, error) {
	if k < 0 || k >= len(beams) {
		return nil, fmt.Errorf("multibeam: drop index %d out of range", k)
	}
	if len(beams) == 1 {
		return nil, fmt.Errorf("multibeam: cannot drop the only beam")
	}
	out := make([]Beam, 0, len(beams)-1)
	for i, b := range beams {
		if i != k {
			out = append(out, b)
		}
	}
	// Re-reference to the strongest survivor.
	ref := 0
	for i := range out {
		if out[i].Amp > out[ref].Amp {
			ref = i
		}
	}
	refAmp, refPhase := out[ref].Amp, out[ref].Phase
	for i := range out {
		out[i].Amp /= refAmp
		out[i].Phase -= refPhase
	}
	return out, nil
}
