package multibeam

import (
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
)

// TestWeightsIntoMatchesWeights pins the buffer-reusing synthesis to the
// allocating one bit for bit, including when dst/scratch carry stale content
// from a previous synthesis.
func TestWeightsIntoMatchesWeights(t *testing.T) {
	u := antenna.NewULA(8, 28e9)
	beams := []Beam{
		Reference(0.1),
		{Angle: -0.4, Amp: 0.6, Phase: 1.2},
		{Angle: 0.7, Amp: 0.3, Phase: -2.0},
	}
	want, err := Weights(u, beams)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(cmx.Vector, u.N)
	scratch := make(cmx.Vector, u.N)
	for i := range dst {
		dst[i] = complex(7, -7) // stale content must not leak through
	}
	for it := 0; it < 2; it++ { // second pass runs on dirty buffers
		got, err := WeightsInto(u, beams, dst, scratch)
		if err != nil {
			t.Fatal(err)
		}
		for n := range want {
			if got[n] != want[n] {
				t.Fatalf("iteration %d: weight %d diverges: %v vs %v", it, n, got[n], want[n])
			}
		}
	}
}

// TestWeightsIntoAllocs pins the synthesis to zero allocations when both
// buffers are supplied.
func TestWeightsIntoAllocs(t *testing.T) {
	u := antenna.NewULA(8, 28e9)
	beams := []Beam{Reference(0.1), {Angle: -0.4, Amp: 0.6, Phase: 1.2}}
	dst := make(cmx.Vector, u.N)
	scratch := make(cmx.Vector, u.N)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := WeightsInto(u, beams, dst, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WeightsInto allocates %.1f objects/op, want 0", allocs)
	}
}
