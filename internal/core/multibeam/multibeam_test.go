package multibeam

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
)

func ula8() *antenna.ULA { return antenna.NewULA(8, 28e9) }

func twoPathChannel(relAttDB, phase float64) *channel.Model {
	return channel.FromSpecs(env.Band28GHz(), ula8(), 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 30, RelAttDB: relAttDB, PhaseRad: phase, DelayNs: 10},
	})
}

func snrGainDB(m *channel.Model, w cmx.Vector) float64 {
	single := m.Tx.SingleBeam(m.Paths[0].AoD)
	pm := cmplx.Abs(m.Effective(w, 0))
	ps := cmplx.Abs(m.Effective(single, 0))
	return 20 * math.Log10(pm/ps)
}

func TestWeightsUnitNormAndLobes(t *testing.T) {
	u := ula8()
	w, err := Weights(u, []Beam{Reference(0), {Angle: dsp.Rad(30), Amp: 1, Phase: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Norm()-1) > 1e-12 {
		t.Fatalf("norm %g", w.Norm())
	}
	// Two lobes, each carrying about half the single-beam gain.
	g0 := u.Gain(w, 0)
	g30 := u.Gain(w, dsp.Rad(30))
	if math.Abs(g0-4) > 1.0 || math.Abs(g30-4) > 1.0 {
		t.Fatalf("lobe gains %g, %g; want ≈4", g0, g30)
	}
}

func TestConstructiveMultibeamBeatsSingleBeam(t *testing.T) {
	// For every channel phase/attenuation, the correctly-matched 2-beam
	// outperforms the single beam (the paper's core claim).
	for _, att := range []float64{0, 3, 6, 10} {
		for _, ph := range []float64{0, 1, -2, math.Pi} {
			m := twoPathChannel(att, ph)
			delta, sigma := m.RelativeGain(1, 0)
			w, err := Weights(m.Tx, []Beam{
				Reference(0),
				{Angle: dsp.Rad(30), Amp: delta, Phase: sigma},
			})
			if err != nil {
				t.Fatal(err)
			}
			gain := snrGainDB(m, w)
			if gain <= 0 {
				t.Fatalf("att=%g ph=%g: multi-beam gain %g dB ≤ 0", att, ph, gain)
			}
			// Theory: 10·log10(1 + δ²), allowing sidelobe slack.
			want := 10 * math.Log10(1+delta*delta)
			if math.Abs(gain-want) > 0.7 {
				t.Fatalf("att=%g ph=%g: gain %g dB want ≈%g", att, ph, gain, want)
			}
		}
	}
}

func TestTwoEqualPathsGiveThreeDB(t *testing.T) {
	m := twoPathChannel(0, 0.8)
	delta, sigma := m.RelativeGain(1, 0)
	w, _ := Weights(m.Tx, []Beam{Reference(0), {Angle: dsp.Rad(30), Amp: delta, Phase: sigma}})
	gain := snrGainDB(m, w)
	if math.Abs(gain-3.01) > 0.7 {
		t.Fatalf("equal-path gain %g dB, want ≈3", gain)
	}
}

func TestMultibeamApproachesOracle(t *testing.T) {
	// Multi-beam on the true per-path ratios should be within a whisker of
	// MRT on the full CSI (they are equal for exactly-sparse channels up to
	// steering-vector overlap).
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		m := channel.Cluster(rng, env.Band28GHz(), ula8(), channel.DefaultClusterParams())
		h := m.PerAntennaCSI(0)
		wOpt, err := Optimal(h)
		if err != nil {
			t.Fatal(err)
		}
		angles := make([]float64, len(m.Paths))
		ratios := make([]complex128, len(m.Paths))
		for k := range m.Paths {
			angles[k] = m.Paths[k].AoD
			d, s := m.RelativeGain(k, 0)
			ratios[k] = cmplx.Rect(d, s)
		}
		beams, err := FromChannelRatios(angles, ratios)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Weights(m.Tx, beams)
		if err != nil {
			t.Fatal(err)
		}
		pOracle := cmplx.Abs(m.Effective(wOpt, 0))
		pMB := cmplx.Abs(m.Effective(w, 0))
		gapDB := 20 * math.Log10(pOracle/pMB)
		if gapDB < -1e-9 {
			t.Fatalf("trial %d: multi-beam beat the oracle by %g dB", trial, -gapDB)
		}
		if gapDB > 1.0 {
			t.Fatalf("trial %d: multi-beam %g dB behind oracle", trial, gapDB)
		}
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, err := Optimal(cmx.NewVector(4)); err == nil {
		t.Fatal("zero channel should fail")
	}
}

func TestWeightsErrors(t *testing.T) {
	u := ula8()
	if _, err := Weights(u, nil); err == nil {
		t.Fatal("empty beams should fail")
	}
	if _, err := Weights(u, []Beam{{Angle: 0, Amp: -1}}); err == nil {
		t.Fatal("negative amplitude should fail")
	}
	// Exact cancellation: two identical beams with opposite sign.
	if _, err := Weights(u, []Beam{
		{Angle: 0, Amp: 1, Phase: 0},
		{Angle: 0, Amp: 1, Phase: math.Pi},
	}); err == nil {
		t.Fatal("cancelling beams should fail")
	}
}

func TestFromChannelRatios(t *testing.T) {
	beams, err := FromChannelRatios(
		[]float64{0, 0.5},
		[]complex128{1, cmplx.Rect(0.5, 1.2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if beams[0].Amp != 1 || beams[0].Phase != 0 {
		t.Fatalf("reference beam %+v", beams[0])
	}
	if math.Abs(beams[1].Amp-0.5) > 1e-12 || math.Abs(beams[1].Phase-1.2) > 1e-12 {
		t.Fatalf("second beam %+v", beams[1])
	}
	if _, err := FromChannelRatios([]float64{0}, []complex128{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestTheoreticalGainMatchesPaperFig14(t *testing.T) {
	// δ = −3 dB: perfect estimation gives 1.76 dB gain.
	delta := dsp.AmpFromDB(-3)
	peak := 10 * math.Log10(TheoreticalGain(delta, delta, 0))
	if math.Abs(peak-1.76) > 0.02 {
		t.Fatalf("peak gain %g dB, want 1.76", peak)
	}
	// Tolerates ±75° phase error before dropping below single-beam.
	at75 := 10 * math.Log10(TheoreticalGain(delta, delta, dsp.Rad(75)))
	if at75 < 0 {
		t.Fatalf("gain at 75° error %g dB, want ≥ 0", at75)
	}
	at80 := 10 * math.Log10(TheoreticalGain(delta, delta, dsp.Rad(80)))
	if at80 > 0 {
		t.Fatalf("gain at 80° error %g dB, want < 0", at80)
	}
	// 180° error is destructive and costs several dB.
	at180 := 10 * math.Log10(TheoreticalGain(delta, delta, math.Pi))
	if at180 > -3 {
		t.Fatalf("gain at 180° error %g dB, want strongly negative", at180)
	}
	// Zero applied amplitude degenerates to the single beam (0 dB).
	if g := TheoreticalGain(delta, 0, 0); math.Abs(g-1) > 1e-12 {
		t.Fatalf("zero-amplitude gain %g", g)
	}
}

func TestTheoreticalGainMatchesSimulation(t *testing.T) {
	// The closed form must agree with the actual array simulation.
	delta := dsp.AmpFromDB(-3)
	m := twoPathChannel(3, dsp.Rad(-40))
	_, sigma := m.RelativeGain(1, 0)
	for _, phaseErr := range []float64{0, dsp.Rad(40), dsp.Rad(100)} {
		for _, ampErrDB := range []float64{0, -6} {
			applied := delta * dsp.AmpFromDB(ampErrDB)
			w, err := Weights(m.Tx, []Beam{
				Reference(0),
				{Angle: dsp.Rad(30), Amp: applied, Phase: sigma + phaseErr},
			})
			if err != nil {
				t.Fatal(err)
			}
			got := snrGainDB(m, w)
			want := 10 * math.Log10(TheoreticalGain(delta, applied, phaseErr))
			if math.Abs(got-want) > 0.6 {
				t.Fatalf("phaseErr=%g ampErrDB=%g: sim %g dB vs theory %g dB",
					phaseErr, ampErrDB, got, want)
			}
		}
	}
}

func TestSubArraySplitIsSubOptimal(t *testing.T) {
	m := twoPathChannel(3, 1.0)
	delta, sigma := m.RelativeGain(1, 0)
	beams := []Beam{Reference(0), {Angle: dsp.Rad(30), Amp: delta, Phase: sigma}}
	wFull, err := Weights(m.Tx, beams)
	if err != nil {
		t.Fatal(err)
	}
	wSplit, err := SubArraySplit(m.Tx, beams)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wSplit.Norm()-1) > 1e-12 {
		t.Fatal("split beam not unit norm")
	}
	pFull := cmplx.Abs(m.Effective(wFull, 0))
	pSplit := cmplx.Abs(m.Effective(wSplit, 0))
	if pSplit >= pFull {
		t.Fatalf("sub-array split (%g) should underperform full-aperture (%g)", pSplit, pFull)
	}
	// But it must still form lobes at both angles.
	if m.Tx.Gain(wSplit, 0) < 1 || m.Tx.Gain(wSplit, dsp.Rad(30)) < 1 {
		t.Fatal("split multi-beam lost its lobes")
	}
}

func TestSubArraySplitErrors(t *testing.T) {
	u := ula8()
	if _, err := SubArraySplit(u, nil); err == nil {
		t.Fatal("empty beams should fail")
	}
	tooMany := make([]Beam, 9)
	for i := range tooMany {
		tooMany[i] = Reference(float64(i) * 0.1)
	}
	if _, err := SubArraySplit(u, tooMany); err == nil {
		t.Fatal("more beams than elements should fail")
	}
}

func TestPerBeamPowerFractions(t *testing.T) {
	u := ula8()
	angles := []float64{0, dsp.Rad(40)}
	// Equal-amplitude multi-beam → roughly equal fractions.
	w, _ := Weights(u, []Beam{Reference(0), {Angle: angles[1], Amp: 1}})
	fr := PerBeamPowerFractions(u, w, angles)
	if math.Abs(fr[0]-0.5) > 0.05 || math.Abs(fr[1]-0.5) > 0.05 {
		t.Fatalf("equal split fractions %v", fr)
	}
	// Unbalanced multi-beam → fractions follow amp².
	w2, _ := Weights(u, []Beam{Reference(0), {Angle: angles[1], Amp: 0.5}})
	fr2 := PerBeamPowerFractions(u, w2, angles)
	// Steering vectors at 0° and 40° are not exactly orthogonal for 8
	// elements, so the projection picks up crosstalk; allow that bias.
	ratio := fr2[1] / fr2[0]
	if math.Abs(ratio-0.25) > 0.12 {
		t.Fatalf("power ratio %g, want ≈0.25", ratio)
	}
	// Sum to 1.
	if math.Abs(fr2[0]+fr2[1]-1) > 1e-9 {
		t.Fatalf("fractions don't sum to 1: %v", fr2)
	}
}

func TestDropBeam(t *testing.T) {
	beams := []Beam{
		Reference(0),
		{Angle: 0.5, Amp: 0.6, Phase: 1.0},
		{Angle: -0.4, Amp: 0.3, Phase: 2.0},
	}
	// Drop the reference: strongest survivor (0.6) becomes the reference.
	out, err := DropBeam(beams, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("len %d", len(out))
	}
	if math.Abs(out[0].Amp-1) > 1e-12 || out[0].Phase != 0 {
		t.Fatalf("new reference %+v", out[0])
	}
	if math.Abs(out[1].Amp-0.5) > 1e-12 {
		t.Fatalf("rescaled amp %g want 0.5", out[1].Amp)
	}
	if math.Abs(out[1].Phase-1.0) > 1e-12 {
		t.Fatalf("re-referenced phase %g want 1.0", out[1].Phase)
	}
	// Drop a non-reference beam: reference unchanged.
	out2, err := DropBeam(beams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out2[0] != beams[0] || out2[1] != beams[1] {
		t.Fatalf("unexpected rescale: %+v", out2)
	}
	// Errors.
	if _, err := DropBeam(beams, 5); err == nil {
		t.Fatal("out of range index should fail")
	}
	if _, err := DropBeam(beams[:1], 0); err == nil {
		t.Fatal("dropping the only beam should fail")
	}
}

func TestThreeBeamOutperformsTwo(t *testing.T) {
	// On a 3-path channel, using all 3 paths beats using 2 beats using 1.
	m := channel.FromSpecs(env.Band28GHz(), ula8(), 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 35, RelAttDB: 4, PhaseRad: 1.0, DelayNs: 8},
		{AoDDeg: -30, RelAttDB: 7, PhaseRad: -0.5, DelayNs: 20},
	})
	mkBeams := func(k int) cmx.Vector {
		var beams []Beam
		for i := 0; i < k; i++ {
			d, s := m.RelativeGain(i, 0)
			beams = append(beams, Beam{Angle: m.Paths[i].AoD, Amp: d, Phase: s})
		}
		w, err := Weights(m.Tx, beams)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	p1 := cmplx.Abs(m.Effective(mkBeams(1), 0))
	p2 := cmplx.Abs(m.Effective(mkBeams(2), 0))
	p3 := cmplx.Abs(m.Effective(mkBeams(3), 0))
	if !(p3 > p2 && p2 > p1) {
		t.Fatalf("monotonicity broken: %g, %g, %g", p1, p2, p3)
	}
}

// Property: TheoreticalGain is bounded by 1+δ² (perfect estimation) and
// reaches that bound only at zero phase error with matched amplitude.
func TestTheoreticalGainBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		delta := rng.Float64()         // δ ∈ [0, 1)
		applied := rng.Float64() * 1.5 // any applied amplitude
		phaseErr := rng.Float64() * math.Pi
		g := TheoreticalGain(delta, applied, phaseErr)
		bound := 1 + delta*delta
		if g > bound+1e-12 {
			t.Fatalf("gain %g exceeds bound %g (δ=%g a=%g ε=%g)", g, bound, delta, applied, phaseErr)
		}
	}
	// Bound attained at the optimum.
	delta := 0.6
	if g := TheoreticalGain(delta, delta, 0); math.Abs(g-(1+delta*delta)) > 1e-12 {
		t.Fatalf("optimum gain %g want %g", g, 1+delta*delta)
	}
}

// Property: Weights output is always unit-norm for any valid lobe set.
func TestWeightsUnitNormProperty(t *testing.T) {
	u := ula8()
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		var beams []Beam
		for i := 0; i < n; i++ {
			beams = append(beams, Beam{
				Angle: (rng.Float64() - 0.5) * math.Pi / 2,
				Amp:   0.05 + rng.Float64(),
				Phase: rng.Float64() * 2 * math.Pi,
			})
		}
		w, err := Weights(u, beams)
		if err != nil {
			continue // rare near-cancellation is allowed to error
		}
		if math.Abs(w.Norm()-1) > 1e-9 {
			t.Fatalf("norm %g for beams %+v", w.Norm(), beams)
		}
	}
}
