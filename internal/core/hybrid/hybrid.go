// Package hybrid implements the §8 extension sketch: a gNB with multiple
// RF chains serving multiple users simultaneously, with interference-aware
// spatial beam assignment (after Jog et al., "many-to-many beam alignment")
// and optional per-user constructive multi-beams.
//
// Each RF chain drives the shared aperture with its own analog weight
// vector and carries one user's stream; user u then hears
//
//	y_u = h_uᵀ w_u s_u + Σ_{r≠u} h_uᵀ w_r s_r + n
//
// so the selection problem is to pick, for every user, which of its
// multipath directions to use such that the other users' beams leak as
// little as possible into it. With the sparse channels of mmWave (2–3 paths
// each), exhaustive search over the assignment space is cheap.
package hybrid

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/link"
)

// Assignment is one spatial-multiplexing configuration: beam choice and
// resulting per-user SINR.
type Assignment struct {
	// PathIdx[u] is the index of the path user u's chain is steered at.
	PathIdx []int
	// Weights[u] is user u's transmit weight vector (unit norm; the total
	// radiated power is split evenly across chains).
	Weights []cmx.Vector
	// SINRdB[u] is user u's post-scheduling signal-to-interference-plus-
	// noise ratio.
	SINRdB []float64
	// SumRate is Σ_u log2(1+SINR_u) in bits/s/Hz.
	SumRate float64
}

// sinrs computes per-user SINR for the given weight vectors, with transmit
// power split evenly across the chains.
func sinrs(users []*channel.Model, weights []cmx.Vector, budget link.Budget) []float64 {
	nUsers := len(users)
	noiseLin := math.Pow(10, budget.NoiseFloorDBm()/10)
	txLin := math.Pow(10, budget.TxPowerDBm/10) / float64(nUsers)
	out := make([]float64, nUsers)
	for u := range users {
		var sig, intf float64
		for r := range weights {
			h := users[u].Effective(weights[r], 0)
			p := real(h)*real(h) + imag(h)*imag(h)
			if r == u {
				sig = p
			} else {
				intf += p
			}
		}
		out[u] = 10 * math.Log10(txLin*sig/(noiseLin+txLin*intf))
	}
	return out
}

func sumRate(sinrDB []float64) float64 {
	var s float64
	for _, x := range sinrDB {
		s += math.Log2(1 + math.Pow(10, x/10))
	}
	return s
}

// SelectBeams exhaustively searches per-user path choices (each user's
// chain steered as a single beam at one of that user's paths) and returns
// the assignment maximizing the sum rate. All users must share the same
// transmit array.
func SelectBeams(u *antenna.ULA, users []*channel.Model, budget link.Budget) (Assignment, error) {
	if len(users) == 0 {
		return Assignment{}, fmt.Errorf("hybrid: no users")
	}
	for i, m := range users {
		if len(m.Paths) == 0 {
			return Assignment{}, fmt.Errorf("hybrid: user %d has no paths", i)
		}
	}
	nUsers := len(users)
	choice := make([]int, nUsers)
	best := Assignment{SumRate: math.Inf(-1)}
	var rec func(int)
	rec = func(depth int) {
		if depth == nUsers {
			weights := make([]cmx.Vector, nUsers)
			for i := range users {
				weights[i] = u.SingleBeam(users[i].Paths[choice[i]].AoD)
			}
			s := sinrs(users, weights, budget)
			if r := sumRate(s); r > best.SumRate {
				best = Assignment{
					PathIdx: append([]int(nil), choice...),
					Weights: weights,
					SINRdB:  append([]float64(nil), s...),
					SumRate: r,
				}
			}
			return
		}
		for k := range users[depth].Paths {
			choice[depth] = k
			rec(depth + 1)
		}
	}
	rec(0)
	return best, nil
}

// NaiveBeams steers every user's chain at that user's strongest path —
// the interference-oblivious baseline.
func NaiveBeams(u *antenna.ULA, users []*channel.Model, budget link.Budget) (Assignment, error) {
	if len(users) == 0 {
		return Assignment{}, fmt.Errorf("hybrid: no users")
	}
	a := Assignment{}
	for i, m := range users {
		k := m.StrongestPath()
		if k < 0 {
			return Assignment{}, fmt.Errorf("hybrid: user %d has no paths", i)
		}
		a.PathIdx = append(a.PathIdx, k)
		a.Weights = append(a.Weights, u.SingleBeam(m.Paths[k].AoD))
	}
	a.SINRdB = sinrs(users, a.Weights, budget)
	a.SumRate = sumRate(a.SINRdB)
	return a, nil
}

// WithMultibeam upgrades an assignment in place: each user's chain is
// tentatively re-synthesized as a constructive multi-beam over more of the
// user's paths, and each extra lobe is kept only if no user's SINR drops by
// more than tolDB — reliability improves (multiple lobes per user) while
// the multi-user interference structure is preserved. This realizes §8's
// "jointly use some spatial beams for enhancing reliability while others
// for improving multi-user coexistence".
func (a *Assignment) WithMultibeam(u *antenna.ULA, users []*channel.Model, budget link.Budget, tolDB float64) error {
	if len(a.PathIdx) != len(users) {
		return fmt.Errorf("hybrid: assignment/users mismatch")
	}
	baseline := sinrs(users, a.Weights, budget)
	for i, m := range users {
		ref := a.PathIdx[i]
		lobes := []multibeam.Beam{{Angle: m.Paths[ref].AoD, Amp: 1}}
		for k := range m.Paths {
			if k == ref {
				continue
			}
			d, s := m.RelativeGain(k, ref)
			cand := append(append([]multibeam.Beam(nil), lobes...),
				multibeam.Beam{Angle: m.Paths[k].AoD, Amp: d, Phase: s})
			w, err := multibeam.Weights(u, cand)
			if err != nil {
				continue
			}
			prev := a.Weights[i]
			a.Weights[i] = w
			trial := sinrs(users, a.Weights, budget)
			ok := true
			for j := range trial {
				if trial[j] < baseline[j]-tolDB {
					ok = false
					break
				}
			}
			if ok {
				lobes = cand
				baseline = trial
			} else {
				a.Weights[i] = prev
			}
		}
	}
	a.SINRdB = sinrs(users, a.Weights, budget)
	a.SumRate = sumRate(a.SINRdB)
	return nil
}

// TDMRate returns the time-division baseline sum rate: each user served
// alone (full power, strongest single beam) for a 1/U share of the time.
func TDMRate(u *antenna.ULA, users []*channel.Model, budget link.Budget) (float64, error) {
	if len(users) == 0 {
		return 0, fmt.Errorf("hybrid: no users")
	}
	var sum float64
	for i, m := range users {
		k := m.StrongestPath()
		if k < 0 {
			return 0, fmt.Errorf("hybrid: user %d has no paths", i)
		}
		h := m.Effective(u.SingleBeam(m.Paths[k].AoD), 0)
		snr := budget.SNRdB(cmplx.Abs(h))
		sum += math.Log2(1+math.Pow(10, snr/10)) / float64(len(users))
	}
	return sum, nil
}
