package hybrid

import (
	"math"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
)

func ula8() *antenna.ULA { return antenna.NewULA(8, 28e9) }

// twoUsers builds two users whose strongest paths COLLIDE in angle (both
// near 0°) but who each own a clean alternate path — the configuration
// where interference-aware selection shines.
func twoUsers() []*channel.Model {
	u1 := channel.FromSpecs(env.Band28GHz(), ula8(), 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: -40, RelAttDB: 3, PhaseRad: 1.0, DelayNs: 5},
	})
	u2 := channel.FromSpecs(env.Band28GHz(), ula8(), 80, []channel.PathSpec{
		{AoDDeg: 4}, // 4° from user 1's LOS: inside the 8-element beam
		{AoDDeg: 45, RelAttDB: 3, PhaseRad: -0.5, DelayNs: 7},
	})
	return []*channel.Model{u1, u2}
}

func TestNaiveCollisionIsBad(t *testing.T) {
	users := twoUsers()
	naive, err := NaiveBeams(ula8(), users, link.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	// Both chains fire into nearly the same direction: at least one user
	// drowns in interference.
	worst := math.Min(naive.SINRdB[0], naive.SINRdB[1])
	if worst > 6 {
		t.Fatalf("naive worst-user SINR %g dB — expected an interference collision", worst)
	}
}

func TestSelectBeamsResolvesCollision(t *testing.T) {
	users := twoUsers()
	budget := link.DefaultBudget()
	naive, err := NaiveBeams(ula8(), users, budget)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := SelectBeams(ula8(), users, budget)
	if err != nil {
		t.Fatal(err)
	}
	if aware.SumRate <= naive.SumRate {
		t.Fatalf("aware sum rate %g not above naive %g", aware.SumRate, naive.SumRate)
	}
	// The selector must move at least one user off the colliding direction.
	if aware.PathIdx[0] == 0 && aware.PathIdx[1] == 0 {
		t.Fatal("selector kept both users on colliding paths")
	}
	// Both users decodable.
	for u, s := range aware.SINRdB {
		if s < link.OutageThresholdDB {
			t.Fatalf("user %d SINR %g below threshold after selection", u, s)
		}
	}
}

func TestSpatialMultiplexingBeatsTDMWhenSeparated(t *testing.T) {
	// Two users at well-separated angles: serving both at once (even at
	// half power each) beats giving each half the air time.
	users := []*channel.Model{
		channel.FromSpecs(env.Band28GHz(), ula8(), 80, []channel.PathSpec{{AoDDeg: -30}}),
		channel.FromSpecs(env.Band28GHz(), ula8(), 80, []channel.PathSpec{{AoDDeg: 35}}),
	}
	budget := link.DefaultBudget()
	aware, err := SelectBeams(ula8(), users, budget)
	if err != nil {
		t.Fatal(err)
	}
	tdm, err := TDMRate(ula8(), users, budget)
	if err != nil {
		t.Fatal(err)
	}
	if aware.SumRate <= tdm {
		t.Fatalf("spatial multiplexing %g b/s/Hz not above TDM %g", aware.SumRate, tdm)
	}
}

func TestWithMultibeamKeepsInterferenceStructure(t *testing.T) {
	users := twoUsers()
	budget := link.DefaultBudget()
	aware, err := SelectBeams(ula8(), users, budget)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), aware.SINRdB...)
	if err := aware.WithMultibeam(ula8(), users, budget, 10); err != nil {
		t.Fatal(err)
	}
	// No user may fall below threshold from the upgrade.
	for u, s := range aware.SINRdB {
		if s < link.OutageThresholdDB {
			t.Fatalf("user %d SINR %g after multibeam upgrade (was %g)", u, s, before[u])
		}
	}
	// Each user still has a unit-norm weight vector.
	for u, w := range aware.Weights {
		if math.Abs(w.Norm()-1) > 1e-9 {
			t.Fatalf("user %d weights norm %g", u, w.Norm())
		}
	}
}

func TestValidation(t *testing.T) {
	budget := link.DefaultBudget()
	if _, err := SelectBeams(ula8(), nil, budget); err == nil {
		t.Fatal("no users should fail")
	}
	if _, err := NaiveBeams(ula8(), nil, budget); err == nil {
		t.Fatal("no users should fail")
	}
	if _, err := TDMRate(ula8(), nil, budget); err == nil {
		t.Fatal("no users should fail")
	}
	empty := &channel.Model{Tx: ula8(), Band: env.Band28GHz()}
	if _, err := SelectBeams(ula8(), []*channel.Model{empty}, budget); err == nil {
		t.Fatal("pathless user should fail")
	}
	a := Assignment{PathIdx: []int{0}}
	if err := a.WithMultibeam(ula8(), twoUsers(), budget, 10); err == nil {
		t.Fatal("mismatched assignment should fail")
	}
}

func TestSingleUserDegeneratesToBeamSelection(t *testing.T) {
	users := twoUsers()[:1]
	budget := link.DefaultBudget()
	a, err := SelectBeams(ula8(), users, budget)
	if err != nil {
		t.Fatal(err)
	}
	// With no interferers, the selector picks the strongest path.
	if a.PathIdx[0] != users[0].StrongestPath() {
		t.Fatalf("single user picked path %d", a.PathIdx[0])
	}
	if a.SINRdB[0] < 20 {
		t.Fatalf("single-user SINR %g", a.SINRdB[0])
	}
}
