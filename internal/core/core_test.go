package core

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

func TestDigestOrderAndWidthSensitive(t *testing.T) {
	a := NewDigest()
	a.Int(1)
	a.Int(2)
	b := NewDigest()
	b.Int(2)
	b.Int(1)
	if a.Sum() == b.Sum() {
		t.Fatalf("digest not order-sensitive: %016x", a.Sum())
	}
	// Slice boundaries fold: [1][2] ≠ [1,2].
	c := NewDigest()
	c.Floats([]float64{1})
	c.Floats([]float64{2})
	d := NewDigest()
	d.Floats([]float64{1, 2})
	if c.Sum() == d.Sum() {
		t.Fatalf("digest not boundary-sensitive: %016x", c.Sum())
	}
}

func TestDigestFoldsFloatBits(t *testing.T) {
	a := NewDigest()
	a.Float64(math.Inf(1))
	b := NewDigest()
	b.Float64(math.MaxFloat64)
	if a.Sum() == b.Sum() {
		t.Fatalf("+Inf and MaxFloat64 fold identically")
	}
	c := NewDigest()
	c.Float64(0)
	d := NewDigest()
	d.Float64(math.Copysign(0, -1))
	if c.Sum() == d.Sum() {
		t.Fatalf("signed zeros fold identically")
	}
	// Same inputs, same sum — the whole point.
	e, f := NewDigest(), NewDigest()
	for _, v := range []float64{1.5, -3, math.Inf(-1)} {
		e.Float64(v)
		f.Float64(v)
	}
	if e.Sum() != f.Sum() {
		t.Fatalf("identical folds disagree: %016x vs %016x", e.Sum(), f.Sum())
	}
}

func TestVersionSmoke(t *testing.T) {
	line := Version("mmtest")
	if !strings.HasPrefix(line, "mmtest ") {
		t.Fatalf("missing program name: %q", line)
	}
	if !strings.Contains(line, runtime.Version()) {
		t.Fatalf("missing toolchain version: %q", line)
	}
}

func TestCheckFlags(t *testing.T) {
	cases := []struct {
		name  string
		check FlagCheck
		fail  bool
		want  string // substring of the error message
	}{
		{"clusters ok", IntAtLeast("clusters", 1, 1), false, ""},
		{"clusters zero", IntAtLeast("clusters", 0, 1), true, "-clusters must be ≥ 1 (got 0)"},
		{"shards negative", IntAtLeast("shards", -3, 0), true, "-shards must be ≥ 0 (got -3)"},
		{"workers negative", IntAtLeast("workers", -1, 0), true, "-workers must be ≥ 0 (got -1)"},
		{"budget ok", IntAtLeast("budget", 0, 0), false, ""},
		{"duration zero", FloatPositive("duration", 0), true, "-duration must be > 0 (got 0)"},
		{"duration nan", FloatPositive("duration", math.NaN()), true, "-duration must be > 0"},
		{"churn ok", FloatAtLeast("churn", 0, 0), false, ""},
		{"churn negative", FloatAtLeast("churn", -0.5, 0), true, "-churn must be ≥ 0 (got -0.5)"},
		{"mobile high", FloatInRange("mobile", 1.5, 0, 1), true, "-mobile must be in [0, 1] (got 1.5)"},
		{"mobile ok", FloatInRange("mobile", 1, 0, 1), false, ""},
		{"seed ok", Int64AtLeast("seed", -5, math.MinInt64), false, ""},
		{"strict without compare", FlagRequires("strict", true, "compare", false), true, "-strict requires -compare"},
		{"strict with compare", FlagRequires("strict", true, "compare", true), false, ""},
		{"strict unset", FlagRequires("strict", false, "compare", false), false, ""},
	}
	for _, tc := range cases {
		err := CheckFlags("prog", tc.check)
		if tc.fail && err == nil {
			t.Errorf("%s: expected failure, got nil", tc.name)
		}
		if !tc.fail && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if tc.fail && err != nil {
			if !strings.HasPrefix(err.Error(), "prog: ") {
				t.Errorf("%s: missing prog prefix: %v", tc.name, err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: message %q missing %q", tc.name, err, tc.want)
			}
		}
	}
	// First failure wins.
	err := CheckFlags("p", IntAtLeast("a", 0, 1), IntAtLeast("b", 0, 1))
	if err == nil || !strings.Contains(err.Error(), "-a ") {
		t.Fatalf("first failing check should win: %v", err)
	}
}
