// Package delayarray implements the paper's §3.4 delay phased array: two
// (or more) phased-array panels connected through variable true-time delay
// lines to a single RF chain (Fig. 6). Each panel forms one lobe of the
// multi-beam. A plain multi-beam adds copies of the signal that traveled
// different path delays, so across a wide band some frequencies combine
// destructively; programming each panel's delay line to pre-compensate its
// path's excess delay makes every frequency combine constructively,
// restoring a flat wideband response (Fig. 7/8) while keeping the full
// aperture per lobe.
package delayarray

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
)

// Group is one panel of the delay phased array.
type Group struct {
	// Angle is the panel's lobe steering direction (radians).
	Angle float64
	// Coeff is the panel's complex coefficient (constructive-combining
	// amplitude and carrier phase, as for a plain multi-beam).
	Coeff complex128
	// Delay is the panel's true-time delay line setting (seconds).
	Delay float64
}

// Array is a delay phased array: one full-aperture panel per lobe, sharing
// a single RF chain. Total radiated power is conserved across panels
// (Σ‖per-panel weights‖² = 1), so the comparison against a single-panel
// single beam is at equal TRP.
type Array struct {
	Panel  *antenna.ULA // geometry of each panel
	Groups []Group

	norm float64
}

// New builds a delay phased array with one panel per group.
func New(panel *antenna.ULA, groups []Group) (*Array, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("delayarray: no groups")
	}
	if err := panel.Validate(); err != nil {
		return nil, err
	}
	var n2 float64
	for i, g := range groups {
		if g.Delay < 0 {
			return nil, fmt.Errorf("delayarray: negative delay on group %d", i)
		}
		c := cmplx.Abs(g.Coeff)
		n2 += c * c // per-panel beam is unit norm, scaled by |coeff|
	}
	if n2 < 1e-30 {
		return nil, fmt.Errorf("delayarray: zero total coefficient power")
	}
	return &Array{Panel: panel, Groups: groups, norm: math.Sqrt(n2)}, nil
}

// PanelWeights returns panel g's unit-TRP-share weights at baseband offset
// fOff: the matched beam toward the group angle, scaled by the group
// coefficient, rotated by the true-time delay's frequency-dependent phase
// e^{−j2π·fOff·Δτ} (the carrier component of the delay is absorbed into
// Coeff, as the panel's phase shifters would), and divided by the global
// TRP normalization.
func (a *Array) PanelWeights(g int, fOff float64) cmx.Vector {
	grp := a.Groups[g]
	rot := grp.Coeff * cmplx.Exp(complex(0, -2*math.Pi*fOff*grp.Delay))
	w := a.Panel.SingleBeam(grp.Angle)
	return w.Scale(rot / complex(a.norm, 0))
}

// Effective returns the effective scalar channel of the delay phased array
// over channel m at baseband offset fOff: the sum of each panel's effective
// channel (all panels feed the same RF chain).
func (a *Array) Effective(m *channel.Model, fOff float64) complex128 {
	var y complex128
	for g := range a.Groups {
		y += m.Effective(a.PanelWeights(g, fOff), fOff)
	}
	return y
}

// EffectiveWideband evaluates Effective at each frequency offset.
func (a *Array) EffectiveWideband(m *channel.Model, fOffs []float64) cmx.Vector {
	return a.EffectiveWidebandInto(m, fOffs, make(cmx.Vector, len(fOffs)))
}

// EffectiveWidebandInto is EffectiveWideband writing into dst (allocated
// when nil). Instead of re-deriving every panel's weights at every
// frequency, it factors each panel's response as
//
//	y_g(f) = (Coeff_g/‖·‖)·e^{−j2πfΔτ_g} · h_g(f),
//
// where h_g(f) is the channel under the panel's UNSCALED matched beam —
// evaluated once per panel by the factored wideband kernel — and the
// per-frequency rotation of the true-time delay line is applied as a scalar
// multiply. Same separability trick as channel.EffectiveWidebandInto: the
// panel beam is frequency-independent, only the delay-line phase sweeps.
func (a *Array) EffectiveWidebandInto(m *channel.Model, fOffs []float64, dst cmx.Vector) cmx.Vector {
	if dst == nil {
		dst = make(cmx.Vector, len(fOffs))
	}
	if len(dst) != len(fOffs) {
		panic(fmt.Sprintf("delayarray: dst length %d != %d offsets", len(dst), len(fOffs)))
	}
	for i := range dst {
		dst[i] = 0
	}
	hg := make(cmx.Vector, len(fOffs))
	w := make(cmx.Vector, a.Panel.N)
	for g := range a.Groups {
		grp := a.Groups[g]
		a.Panel.SingleBeamInto(grp.Angle, w)
		m.EffectiveWidebandInto(w, fOffs, hg)
		base := grp.Coeff / complex(a.norm, 0)
		for k, f := range fOffs {
			rot := base * cmplx.Exp(complex(0, -2*math.Pi*f*grp.Delay))
			dst[k] += rot * hg[k]
		}
	}
	return dst
}

// CompensatingDelays returns per-panel delay settings that equalize the
// given path delays: Δτ_g = max(τ) − τ_g, so every branch arrives at the
// receiver with the same total delay and the wideband response is flat.
func CompensatingDelays(pathDelays []float64) []float64 {
	if len(pathDelays) == 0 {
		return nil
	}
	maxD := pathDelays[0]
	for _, d := range pathDelays[1:] {
		if d > maxD {
			maxD = d
		}
	}
	out := make([]float64, len(pathDelays))
	for i, d := range pathDelays {
		out[i] = maxD - d
	}
	return out
}

// ForChannel builds a delay-compensated array matched to an exactly-sparse
// channel: one panel per path, steered at the path's AoD, with the
// conjugate of the path's relative gain as coefficient and delay lines
// compensating the relative path delays. ratios[k] = h_k/h_0 as measured by
// the probe package (ratios[0] = 1); delays[k] is path k's (relative or
// absolute) delay.
func ForChannel(panel *antenna.ULA, angles []float64, ratios []complex128, delays []float64) (*Array, error) {
	if len(angles) != len(ratios) || len(angles) != len(delays) {
		return nil, fmt.Errorf("delayarray: mismatched lengths %d/%d/%d", len(angles), len(ratios), len(delays))
	}
	comp := CompensatingDelays(delays)
	groups := make([]Group, len(angles))
	for k := range angles {
		groups[k] = Group{
			Angle: angles[k],
			Coeff: cmplx.Conj(ratios[k]),
			Delay: comp[k],
		}
	}
	return New(panel, groups)
}

// RippleDB returns the peak-to-peak variation (dB) of a wideband response —
// the flatness figure of merit in Fig. 8.
func RippleDB(resp cmx.Vector) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, h := range resp {
		p := real(h)*real(h) + imag(h)*imag(h)
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(hi/lo)
}
