package delayarray

import (
	"math"
	"math/cmplx"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
)

func panel16() *antenna.ULA { return antenna.NewULA(16, 28e9) }

// wideChannel builds a 2-path channel with the given delay spread and a
// strong (−1 dB) reflection.
func wideChannel(spreadNs float64) *channel.Model {
	return channel.FromSpecs(env.Band28GHz(), panel16(), 80, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 0},
		{AoDDeg: 30, RelAttDB: 1, PhaseRad: 0.7, DelayNs: spreadNs},
	})
}

func offsets() []float64 { return channel.SubcarrierOffsets(400e6, 64) }

func TestNewValidation(t *testing.T) {
	p := panel16()
	if _, err := New(p, nil); err == nil {
		t.Fatal("no groups should fail")
	}
	if _, err := New(p, []Group{{Coeff: 1, Delay: -1}}); err == nil {
		t.Fatal("negative delay should fail")
	}
	if _, err := New(p, []Group{{Coeff: 0}}); err == nil {
		t.Fatal("zero coefficients should fail")
	}
	if _, err := New(&antenna.ULA{}, []Group{{Coeff: 1}}); err == nil {
		t.Fatal("invalid panel should fail")
	}
}

func TestTRPConservedAcrossPanels(t *testing.T) {
	a, err := New(panel16(), []Group{
		{Angle: 0, Coeff: 1, Delay: 0},
		{Angle: dsp.Rad(30), Coeff: complex(0.8, 0.1), Delay: 5e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, 200e6} {
		var trp float64
		for g := range a.Groups {
			trp += a.PanelWeights(g, f).Norm2()
		}
		if math.Abs(trp-1) > 1e-12 {
			t.Fatalf("TRP at f=%g is %g", f, trp)
		}
	}
}

func TestSinglePathNeedsNoDelayCompensation(t *testing.T) {
	// §3.4: a single-path channel already has a flat response with a plain
	// beam; the delay architecture is only needed for multipath.
	m := channel.FromSpecs(env.Band28GHz(), panel16(), 80, []channel.PathSpec{{AoDDeg: 0}})
	w := m.Tx.SingleBeam(0)
	resp := m.EffectiveWideband(w, offsets())
	if r := RippleDB(resp); r > 0.01 {
		t.Fatalf("single-path ripple %g dB", r)
	}
}

func TestPlainMultibeamSuffersRipple(t *testing.T) {
	// Fig. 7: with 5 and 10 ns spreads, a plain (non-delay) multi-beam has
	// deep in-band fades.
	for _, spread := range []float64{5, 10} {
		m := wideChannel(spread)
		delta, sigma := m.RelativeGain(1, 0)
		w, err := multibeam.Weights(m.Tx, []multibeam.Beam{
			multibeam.Reference(0),
			{Angle: dsp.Rad(30), Amp: delta, Phase: sigma},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp := m.EffectiveWideband(w, offsets())
		if r := RippleDB(resp); r < 6 {
			t.Fatalf("spread %g ns: plain multi-beam ripple only %g dB", spread, r)
		}
	}
}

func TestDelayCompensationFlattens(t *testing.T) {
	for _, spread := range []float64{5, 10} {
		m := wideChannel(spread)
		delta, sigma := m.RelativeGain(1, 0)
		angles := []float64{0, dsp.Rad(30)}
		ratios := []complex128{1, cmplx.Rect(delta, sigma)}
		delays := []float64{0, spread * 1e-9}
		a, err := ForChannel(m.Tx, angles, ratios, delays)
		if err != nil {
			t.Fatal(err)
		}
		resp := a.EffectiveWideband(m, offsets())
		if r := RippleDB(resp); r > 1.0 {
			t.Fatalf("spread %g ns: compensated ripple %g dB", spread, r)
		}
	}
}

func TestDelayArrayBeatsSingleBeamAcrossBand(t *testing.T) {
	// Fig. 8: the delay-optimized response sits above the single-beam
	// response at every frequency for a strong 2-path channel, approaching
	// the 1+δ² combining gain at equal TRP.
	m := wideChannel(10)
	single := m.Tx.SingleBeam(0)
	respSingle := m.EffectiveWideband(single, offsets())

	delta, sigma := m.RelativeGain(1, 0)
	a, err := ForChannel(m.Tx,
		[]float64{0, dsp.Rad(30)},
		[]complex128{1, cmplx.Rect(delta, sigma)},
		[]float64{0, 10e-9})
	if err != nil {
		t.Fatal(err)
	}
	respDelay := a.EffectiveWideband(m, offsets())
	for k := range respDelay {
		if cmplx.Abs(respDelay[k]) <= cmplx.Abs(respSingle[k]) {
			t.Fatalf("subcarrier %d: delay array %g not above single beam %g",
				k, cmplx.Abs(respDelay[k]), cmplx.Abs(respSingle[k]))
		}
	}
	// Mean power gain ≈ 10·log10(1+δ²) (δ ≈ −1 dB ⇒ ≈2.55 dB).
	var gDelay, gSingle float64
	for k := range respDelay {
		gDelay += cmplx.Abs(respDelay[k]) * cmplx.Abs(respDelay[k])
		gSingle += cmplx.Abs(respSingle[k]) * cmplx.Abs(respSingle[k])
	}
	gainDB := 10 * math.Log10(gDelay/gSingle)
	want := 10 * math.Log10(1+delta*delta)
	if math.Abs(gainDB-want) > 0.6 {
		t.Fatalf("mean gain %g dB want ≈%g", gainDB, want)
	}
}

func TestCompensatingDelays(t *testing.T) {
	got := CompensatingDelays([]float64{10e-9, 25e-9, 13e-9})
	want := []float64{15e-9, 0, 12e-9}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-18 {
			t.Fatalf("delays %v want %v", got, want)
		}
	}
	if CompensatingDelays(nil) != nil {
		t.Fatal("nil input should give nil")
	}
	// Totals are equalized.
	base := []float64{3e-9, 7e-9}
	comp := CompensatingDelays(base)
	if base[0]+comp[0] != base[1]+comp[1] {
		t.Fatal("totals not equal")
	}
}

func TestForChannelValidation(t *testing.T) {
	if _, err := ForChannel(panel16(), []float64{0}, []complex128{1, 1}, []float64{0}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestUncompensatedDelayArrayStillRipples(t *testing.T) {
	// Ablation: the panel architecture alone (delays left at zero) does not
	// fix the wideband problem — the delay lines do.
	m := wideChannel(10)
	delta, sigma := m.RelativeGain(1, 0)
	a, err := New(m.Tx, []Group{
		{Angle: 0, Coeff: 1, Delay: 0},
		{Angle: dsp.Rad(30), Coeff: cmplx.Conj(cmplx.Rect(delta, sigma)), Delay: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := a.EffectiveWideband(m, offsets())
	if r := RippleDB(resp); r < 6 {
		t.Fatalf("uncompensated ripple only %g dB", r)
	}
}

func TestRippleDB(t *testing.T) {
	flat := make([]complex128, 8)
	for i := range flat {
		flat[i] = 2
	}
	if r := RippleDB(flat); r > 1e-12 {
		t.Fatalf("flat ripple %g", r)
	}
	varying := []complex128{1, 2}
	if r := RippleDB(varying); math.Abs(r-10*math.Log10(4)) > 1e-9 {
		t.Fatalf("ripple %g", r)
	}
	withNull := []complex128{1, 0}
	if !math.IsInf(RippleDB(withNull), 1) {
		t.Fatal("null should give infinite ripple")
	}
}
