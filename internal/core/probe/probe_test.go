package probe

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/nr"
)

// liveProber binds an nr.Sounder to a channel snapshot.
type liveProber struct {
	s *nr.Sounder
	m *channel.Model
}

func (p *liveProber) Probe(w cmx.Vector) cmx.Vector { return p.s.Probe(p.m, w) }

func newProber(t *testing.T, m *channel.Model, bw, noise float64, imp nr.Impairments, seed int64) *liveProber {
	t.Helper()
	s, err := nr.NewSounder(nr.Mu3(), bw, 64, noise, imp, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return &liveProber{s: s, m: m}
}

// twoPath builds a 2-path channel with a small 1.5 ns excess delay — the
// indoor regime of the paper's Fig. 15c, where the relative phase is stable
// across a 100 MHz band and the plain Eq. 14 fusion is unbiased.
func twoPath(relAttDB, phase float64) *channel.Model {
	return channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 30, RelAttDB: relAttDB, PhaseRad: phase, DelayNs: 1.5},
	})
}

func TestNarrowbandEstimateExact(t *testing.T) {
	// Synthesize exact powers for h1 = 2, h2 = 0.8·e^{j1.1}.
	h1 := complex(2, 0)
	h2 := cmplx.Rect(0.8, 1.1)
	p1 := real(h1 * cmplx.Conj(h1))
	p2 := real(h2 * cmplx.Conj(h2))
	p3 := cmplx.Abs(h1+h2) * cmplx.Abs(h1+h2)
	p4 := cmplx.Abs(h1+cmplx.Rect(1, math.Pi/2)*h2) * cmplx.Abs(h1+cmplx.Rect(1, math.Pi/2)*h2)
	est, err := NarrowbandEstimate(p1, p2, p3, p4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Delta-0.4) > 1e-12 {
		t.Fatalf("δ = %g want 0.4", est.Delta)
	}
	if math.Abs(est.Sigma-1.1) > 1e-12 {
		t.Fatalf("σ = %g want 1.1", est.Sigma)
	}
	if _, err := NarrowbandEstimate(0, 1, 1, 1); err == nil {
		t.Fatal("zero reference power should fail")
	}
}

func TestEstimatePairNoiseless(t *testing.T) {
	for _, tc := range []struct{ att, phase float64 }{
		{3, -0.7}, {6, 2.5}, {0, 1.0}, {10, -2.9},
	} {
		m := twoPath(tc.att, tc.phase)
		p := newProber(t, m, 100e6, 0, nr.Impairments{}, 1)
		m1 := p.Probe(m.Tx.SingleBeam(0)).Abs()
		m2 := p.Probe(m.Tx.SingleBeam(dsp.Rad(30))).Abs()
		est, err := EstimatePair(p, m.Tx, 0, dsp.Rad(30), m1, m2)
		if err != nil {
			t.Fatal(err)
		}
		wantDelta, wantSigma := m.RelativeGain(1, 0)
		// Cross-lobe leakage and in-band phase rotation bound accuracy even
		// without noise.
		if math.Abs(est.Delta-wantDelta) > 0.08*wantDelta+0.02 {
			t.Fatalf("att=%g: δ = %g want %g", tc.att, est.Delta, wantDelta)
		}
		if math.Abs(dsp.WrapPhase(est.Sigma-wantSigma)) > dsp.Rad(10) {
			t.Fatalf("phase=%g: σ = %g want %g", tc.phase, est.Sigma, wantSigma)
		}
	}
}

func TestEstimatePairSurvivesCFOSFO(t *testing.T) {
	// The whole point: estimates stay accurate when every probe has a
	// random phase and a random SFO slope.
	m := twoPath(5, 1.3)
	p := newProber(t, m, 100e6, 1e-6, nr.DefaultImpairments(), 7)
	m1 := p.Probe(m.Tx.SingleBeam(0)).Abs()
	m2 := p.Probe(m.Tx.SingleBeam(dsp.Rad(30))).Abs()
	est, err := EstimatePair(p, m.Tx, 0, dsp.Rad(30), m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta, wantSigma := m.RelativeGain(1, 0)
	if math.Abs(est.Delta-wantDelta) > 0.1*wantDelta+0.02 {
		t.Fatalf("δ = %g want %g", est.Delta, wantDelta)
	}
	if math.Abs(dsp.WrapPhase(est.Sigma-wantSigma)) > dsp.Rad(12) {
		t.Fatalf("σ = %g want %g", est.Sigma, wantSigma)
	}
}

func TestDelayCompensationUnbiasesWideband(t *testing.T) {
	// At 400 MHz with a 10 ns excess delay, the relative phase wraps ~25 rad
	// across the band: plain Eq. 14 fusion integrates to ≈0 (δ collapses),
	// while ToF-compensated fusion recovers the truth. This is the wideband
	// failure mode §3.4 is about.
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 30, RelAttDB: 5, PhaseRad: 1.0, DelayNs: 10},
	})
	wantDelta, wantSigma := m.RelativeGain(1, 0)

	p := newProber(t, m, 400e6, 0, nr.Impairments{}, 3)
	m1 := p.Probe(m.Tx.SingleBeam(0)).Abs()
	m2 := p.Probe(m.Tx.SingleBeam(dsp.Rad(30))).Abs()

	plain, err := EstimatePair(p, m.Tx, 0, dsp.Rad(30), m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Delta > 0.2*wantDelta {
		t.Fatalf("plain fusion should collapse at this delay spread: δ = %g", plain.Delta)
	}
	comp, err := EstimatePairWithDelay(p, m.Tx, 0, dsp.Rad(30), m1, m2, 10e-9, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comp.Delta-wantDelta) > 0.08*wantDelta+0.02 {
		t.Fatalf("compensated δ = %g want %g", comp.Delta, wantDelta)
	}
	if math.Abs(dsp.WrapPhase(comp.Sigma-wantSigma)) > dsp.Rad(10) {
		t.Fatalf("compensated σ = %g want %g", comp.Sigma, wantSigma)
	}
}

func TestEstimateAccuracyUnderNoise(t *testing.T) {
	// At realistic probe SNR the phase error stays well inside the ±75°
	// tolerance window of Fig. 14.
	m := twoPath(5, -2.0)
	wantDelta, wantSigma := m.RelativeGain(1, 0)
	var worstPhase float64
	for seed := int64(0); seed < 20; seed++ {
		p := newProber(t, m, 100e6, 3e-6, nr.DefaultImpairments(), seed)
		m1 := p.Probe(m.Tx.SingleBeam(0)).Abs()
		m2 := p.Probe(m.Tx.SingleBeam(dsp.Rad(30))).Abs()
		est, err := EstimatePair(p, m.Tx, 0, dsp.Rad(30), m1, m2)
		if err != nil {
			t.Fatal(err)
		}
		phaseErr := math.Abs(dsp.WrapPhase(est.Sigma - wantSigma))
		if phaseErr > worstPhase {
			worstPhase = phaseErr
		}
		if est.Delta < 0.3*wantDelta || est.Delta > 3*wantDelta {
			t.Fatalf("seed %d: δ = %g want %g", seed, est.Delta, wantDelta)
		}
	}
	if worstPhase > dsp.Rad(40) {
		t.Fatalf("worst phase error %g°, want < 40°", dsp.Deg(worstPhase))
	}
}

func TestEstimateMultiBeamProbeCountAndQuality(t *testing.T) {
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 35, RelAttDB: 4, PhaseRad: 1.0, DelayNs: 3},
		{AoDDeg: -30, RelAttDB: 7, PhaseRad: -0.5, DelayNs: 8},
	})
	p := newProber(t, m, 400e6, 1e-6, nr.DefaultImpairments(), 3)
	angles := []float64{0, dsp.Rad(35), dsp.Rad(-30)}
	relDelays := []float64{0, 3e-9, 8e-9}
	res, err := EstimateMultiBeamWithDelays(p, m.Tx, angles, relDelays, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	// K + 2(K−1) probes = 3 + 4 = 7 for K = 3.
	if res.Probes != 7 {
		t.Fatalf("probes = %d want 7", res.Probes)
	}
	if len(res.Relative) != 2 || len(res.PerBeamPower) != 3 {
		t.Fatalf("result shape %d/%d", len(res.Relative), len(res.PerBeamPower))
	}
	// Per-beam powers ordered LOS > path2 > path3 (4 dB and 7 dB weaker).
	if !(res.PerBeamPower[0] > res.PerBeamPower[1] && res.PerBeamPower[1] > res.PerBeamPower[2]) {
		t.Fatalf("per-beam powers %v not ordered", res.PerBeamPower)
	}
	// The synthesized multi-beam must clearly beat the single beam.
	beams, err := res.Beams(angles)
	if err != nil {
		t.Fatal(err)
	}
	w, err := multibeam.Weights(m.Tx, beams)
	if err != nil {
		t.Fatal(err)
	}
	pMB := cmplx.Abs(m.Effective(w, 0))
	pSB := cmplx.Abs(m.Effective(m.Tx.SingleBeam(0), 0))
	gainDB := 20 * math.Log10(pMB/pSB)
	if gainDB < 1.2 {
		t.Fatalf("estimated 3-beam gain %g dB, want > 1.2", gainDB)
	}
}

func TestEstimateMultiBeamErrors(t *testing.T) {
	m := twoPath(3, 0)
	p := newProber(t, m, 100e6, 0, nr.Impairments{}, 1)
	if _, err := EstimateMultiBeam(p, m.Tx, []float64{0}); err == nil {
		t.Fatal("single angle should fail")
	}
	if _, err := EstimateMultiBeamWithDelays(p, m.Tx, []float64{0, 0.5}, []float64{0}, 400e6); err == nil {
		t.Fatal("delay/angle mismatch should fail")
	}
}

func TestBeamsShapeValidation(t *testing.T) {
	r := Result{Relative: []Estimate{{Delta: 0.5}}}
	if _, err := r.Beams([]float64{0}); err == nil {
		t.Fatal("angle/estimate mismatch should fail")
	}
	beams, err := r.Beams([]float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if beams[0].Amp != 1 || beams[1].Amp != 0.5 {
		t.Fatalf("beams %+v", beams)
	}
}

func TestEstimatePairLengthValidation(t *testing.T) {
	m := twoPath(3, 0)
	p := newProber(t, m, 100e6, 0, nr.Impairments{}, 1)
	if _, err := EstimatePair(p, m.Tx, 0, dsp.Rad(30), []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := EstimatePair(p, m.Tx, 0, dsp.Rad(30), nil, nil); err == nil {
		t.Fatal("empty magnitudes should fail")
	}
}

func TestRatioRoundTrip(t *testing.T) {
	e := Estimate{Delta: 0.7, Sigma: -1.3}
	r := e.Ratio()
	if math.Abs(cmplx.Abs(r)-0.7) > 1e-12 || math.Abs(cmplx.Phase(r)+1.3) > 1e-12 {
		t.Fatalf("ratio %v", r)
	}
}

func TestPhaseStabilityAcrossBand(t *testing.T) {
	// Fig. 15c: per-subcarrier optimal phase varies < 1 rad across 100 MHz
	// for a typical indoor delay spread (≈1.5 ns here).
	m := twoPath(5, 1.0)
	s, err := nr.NewSounder(nr.Mu3(), 100e6, 64, 0, nr.Impairments{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	p := &liveProber{s: s, m: m}
	m1 := p.Probe(m.Tx.SingleBeam(0)).Abs()
	m2 := p.Probe(m.Tx.SingleBeam(dsp.Rad(30))).Abs()
	w3, _ := combinedBeam(m.Tx, 0, dsp.Rad(30), 0)
	w4, _ := combinedBeam(m.Tx, 0, dsp.Rad(30), math.Pi/2)
	csi3 := p.Probe(w3)
	csi4 := p.Probe(w4)
	phases := PhaseStability(m.Tx, 0, dsp.Rad(30), m1, m2, csi3, csi4)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ph := range phases {
		lo = math.Min(lo, ph)
		hi = math.Max(hi, ph)
	}
	if hi-lo > 1.0 {
		t.Fatalf("phase spread %g rad over 100 MHz, want < 1", hi-lo)
	}
}

// Property: NarrowbandEstimate inverts Eq. 11 exactly for any h1 > 0 and
// any h2 (testing/quick over the complex plane).
func TestNarrowbandEstimateRoundTripProperty(t *testing.T) {
	f := func(h1raw, re, im float64) bool {
		h1 := 0.1 + math.Abs(math.Mod(h1raw, 10))
		h2 := complex(math.Mod(re, 10), math.Mod(im, 10))
		if math.IsNaN(real(h2)) || math.IsNaN(imag(h2)) || math.IsNaN(h1) {
			return true
		}
		p1 := h1 * h1
		p2 := real(h2)*real(h2) + imag(h2)*imag(h2)
		p3 := cmplx.Abs(complex(h1, 0)+h2) * cmplx.Abs(complex(h1, 0)+h2)
		p4 := cmplx.Abs(complex(h1, 0)+h2*1i) * cmplx.Abs(complex(h1, 0)+h2*1i)
		est, err := NarrowbandEstimate(p1, p2, p3, p4)
		if err != nil {
			return false
		}
		wantDelta := cmplx.Abs(h2) / h1
		if math.Abs(est.Delta-wantDelta) > 1e-9*(1+wantDelta) {
			return false
		}
		if cmplx.Abs(h2) > 1e-9 {
			wantSigma := cmplx.Phase(h2)
			if math.Abs(dsp.WrapPhase(est.Sigma-wantSigma)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
