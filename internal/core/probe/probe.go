// Package probe implements mmReliable's low-overhead estimator for the
// per-beam relative channel (§3.3, Eq. 11–14). Hardware CFO/SFO makes probe
// phases incomparable across probes, so the estimator works from channel
// MAGNITUDES alone:
//
//  1. From beam training, the per-beam powers p1 = |h1|², p2 = |h2|² are
//     already known.
//  2. Two extra probes measure the combined power under 2-beam patterns
//     with relative phase 0 and π/2:
//     p3 = |h1 + h2|²,  p4 = |h1 + e^{jπ/2}h2|².
//  3. Treating h1 as the positive-real reference, Eq. 12 recovers
//     h2/h1 = δ·e^{jσ} in closed form.
//
// For wideband channels the recovery runs per subcarrier and Eq. 14 fuses
// the per-subcarrier ratios into a single (δ, σ).
package probe

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/scratch"
)

// Prober issues one channel sounding with the given TX weights and returns
// the per-subcarrier CSI estimate. Implementations wrap nr.Sounder plus the
// live channel; probes are counted by the implementation for overhead
// accounting.
type Prober interface {
	Probe(w cmx.Vector) cmx.Vector
}

// IntoProber is an optional Prober extension for zero-alloc callers:
// ProbeInto writes the CSI estimate into dst (allocating only when dst is
// nil). Implementations must consume their randomness exactly as Probe
// does, so the two entry points are interchangeable without perturbing
// any noise stream.
type IntoProber interface {
	Prober
	ProbeInto(w, dst cmx.Vector) cmx.Vector
}

// probeInto sounds through p, landing the CSI in dst when p supports the
// zero-alloc path. dst may be nil.
func probeInto(p Prober, w, dst cmx.Vector) cmx.Vector {
	if ip, ok := p.(IntoProber); ok {
		return ip.ProbeInto(w, dst)
	}
	return p.Probe(w)
}

// Estimate is the relative channel of one beam with respect to the
// reference beam.
type Estimate struct {
	Delta float64 // amplitude ratio δ ≥ 0
	Sigma float64 // phase σ (radians)
}

// Ratio returns δ·e^{jσ}.
func (e Estimate) Ratio() complex128 { return cmplx.Rect(e.Delta, e.Sigma) }

// Result is the outcome of a full multi-beam estimation round.
type Result struct {
	// Relative[k] is the channel of angles[k+1] relative to angles[0].
	Relative []Estimate
	// PerBeamPower[k] is the measured single-beam power of angles[k].
	PerBeamPower []float64
	// Probes is the number of soundings issued in this round.
	Probes int
}

// Beams converts the result into a constructive multi-beam lobe list.
func (r Result) Beams(angles []float64) ([]multibeam.Beam, error) {
	return r.BeamsInto(angles, nil)
}

// BeamsInto is Beams appending into dst's storage (dst may be nil), so a
// caller that keeps a lobe buffer across rounds stays off the allocator.
func (r Result) BeamsInto(angles []float64, dst []multibeam.Beam) ([]multibeam.Beam, error) {
	if len(angles) != len(r.Relative)+1 {
		return nil, fmt.Errorf("probe: %d angles vs %d relative estimates", len(angles), len(r.Relative))
	}
	beams := append(dst[:0], multibeam.Reference(angles[0]))
	for k, e := range r.Relative {
		beams = append(beams, multibeam.Beam{Angle: angles[k+1], Amp: e.Delta, Phase: e.Sigma})
	}
	return beams, nil
}

// combinedBeam returns the probing pattern w(φ_ref, φ_k, 1, ψ): the
// normalized sum of the two matched beams with coefficient e^{jψ} on the
// second, plus the squared norm of the unnormalized sum (needed to undo
// the TRP normalization when converting measured power back to |h1+e^{jψ}h2|²).
func combinedBeam(u *antenna.ULA, phiRef, phiK, psi float64) (cmx.Vector, float64) {
	return combinedBeamInto(u, phiRef, phiK, psi, nil, nil)
}

// combinedBeamInto is combinedBeam building the pattern in dst with tmp as
// the second-beam staging buffer (both allocated when nil). The arithmetic
// is element-for-element identical to the allocating path: matched beam,
// plus e^{jψ} times the second matched beam, then L2 normalization.
func combinedBeamInto(u *antenna.ULA, phiRef, phiK, psi float64, dst, tmp cmx.Vector) (cmx.Vector, float64) {
	sum := u.SingleBeamInto(phiRef, dst)
	sum = sum.AddScaled(cmplx.Exp(complex(0, psi)), u.SingleBeamInto(phiK, tmp))
	n2 := sum.Norm2()
	return sum.Normalize(), n2
}

// EstimatePair estimates the relative channel of the beam at phiK with
// respect to the reference beam at phiRef, given their per-subcarrier
// single-beam magnitudes m1, m2 (|h| per subcarrier, from training probes).
// It issues exactly two probes. The wideband fusion of Eq. 14 reduces the
// per-subcarrier estimates to one (δ, σ).
func EstimatePair(p Prober, u *antenna.ULA, phiRef, phiK float64, m1, m2 []float64) (Estimate, error) {
	return EstimatePairWithDelay(p, u, phiRef, phiK, m1, m2, 0, 0)
}

// EstimatePairWithDelay is EstimatePair with relative-ToF compensation.
// When the excess delay Δτ of the probed path (relative to the reference)
// is known — mmReliable learns it from the training CIR and tracks it via
// super-resolution — the per-subcarrier ratio's linear phase ramp
// e^{−j2πfΔτ} can be removed before the Eq. 14 fusion. Without this, plain
// fusion only works while 2π·B·Δτ ≲ 1 rad (the regime of the paper's
// Fig. 15c); with it, wideband 400 MHz probing stays unbiased at any
// realistic delay spread. relDelay is Δτ in seconds; bandwidthHz is the
// sounder bandwidth (both 0 to disable compensation).
func EstimatePairWithDelay(p Prober, u *antenna.ULA, phiRef, phiK float64, m1, m2 []float64, relDelay, bandwidthHz float64) (Estimate, error) {
	return EstimatePairWithDelayWS(p, u, phiRef, phiK, m1, m2, relDelay, bandwidthHz, nil)
}

// EstimatePairWithDelayWS is EstimatePairWithDelay drawing every working
// buffer — both probing patterns, both CSI landings (when p implements
// IntoProber), and the per-subcarrier channel reconstruction — from ws
// under a mark/release pair, so a steady-state refinement round runs
// without touching the allocator. ws may be nil (plain allocation); the
// arithmetic and the probe/randomness order are identical either way.
func EstimatePairWithDelayWS(p Prober, u *antenna.ULA, phiRef, phiK float64, m1, m2 []float64, relDelay, bandwidthHz float64, ws *scratch.Workspace) (Estimate, error) {
	if len(m1) != len(m2) || len(m1) == 0 {
		return Estimate{}, fmt.Errorf("probe: magnitude length mismatch %d vs %d", len(m1), len(m2))
	}
	var wa, wb, wtmp, ca, cb, h1, h2 cmx.Vector
	if ws != nil {
		mk := ws.Mark()
		defer ws.Release(mk)
		wa, wb = cmx.Vector(ws.Complex(u.N)), cmx.Vector(ws.Complex(u.N))
		wtmp = cmx.Vector(ws.Complex(u.N))
		ca, cb = cmx.Vector(ws.Complex(len(m1))), cmx.Vector(ws.Complex(len(m1)))
		h1, h2 = cmx.Vector(ws.Complex(len(m1))), cmx.Vector(ws.Complex(len(m1)))
	} else {
		h1 = make(cmx.Vector, len(m1))
		h2 = make(cmx.Vector, len(m1))
	}
	w3, n3 := combinedBeamInto(u, phiRef, phiK, 0, wa, wtmp)
	w4, n4 := combinedBeamInto(u, phiRef, phiK, math.Pi/2, wb, wtmp)
	csi3 := probeInto(p, w3, ca)
	csi4 := probeInto(p, w4, cb)
	if len(csi3) != len(m1) || len(csi4) != len(m1) {
		return Estimate{}, fmt.Errorf("probe: CSI length %d != %d", len(csi3), len(m1))
	}
	// Reconstruct per-subcarrier h1 (reference, positive real) and h2.
	// h1/h2 are zeroed (fresh make or zeroed workspace checkout), so dead
	// reference subcarriers skipped below stay at exactly zero.
	for f := range m1 {
		p1 := m1[f] * m1[f]
		p2 := m2[f] * m2[f]
		// Undo the probing pattern's unit-norm scaling: measured power is
		// |h1+e^{jψ}h2|²/n², so multiply back by n².
		a3 := cmplx.Abs(csi3[f])
		a4 := cmplx.Abs(csi4[f])
		p3 := a3 * a3 * n3
		p4 := a4 * a4 * n4
		if p1 <= 0 {
			continue // dead subcarrier on the reference: skip
		}
		sq := math.Sqrt(p1)
		re := (p3 - p1 - p2) / (2 * sq)
		im := (p1 + p2 - p4) / (2 * sq)
		h1[f] = complex(sq, 0)
		h2[f] = complex(re, im)
		if relDelay != 0 && bandwidthHz != 0 {
			// Remove the known linear phase ramp of the excess delay.
			freq := (float64(f)+0.5)/float64(len(m1))*bandwidthHz - bandwidthHz/2
			h2[f] *= cmplx.Exp(complex(0, 2*math.Pi*freq*relDelay))
		}
	}
	// Wideband fusion (Eq. 14): δ̂e^{jσ̂} = ⟨h1, h2⟩ / ‖h1‖².
	den := h1.Norm2()
	if den <= 0 {
		return Estimate{}, fmt.Errorf("probe: reference beam carries no power")
	}
	ratio := h1.Hdot(h2) / complex(den, 0)
	return Estimate{Delta: cmplx.Abs(ratio), Sigma: cmplx.Phase(ratio)}, nil
}

// EstimateMultiBeam runs the full estimation round for a K-beam multi-beam
// over the given path angles (reference first): one single-beam probe per
// angle to refresh per-beam magnitudes, then two combined probes per
// non-reference beam — K + 2(K−1) probes total, independent of array size.
func EstimateMultiBeam(p Prober, u *antenna.ULA, angles []float64) (Result, error) {
	return EstimateMultiBeamWithDelays(p, u, angles, nil, 0)
}

// EstimateMultiBeamWithDelays is EstimateMultiBeam with per-beam relative
// ToF compensation (see EstimatePairWithDelay). relDelays[k] is the excess
// delay of angles[k] relative to angles[0] (relDelays[0] is ignored); pass
// nil to disable compensation.
func EstimateMultiBeamWithDelays(p Prober, u *antenna.ULA, angles []float64, relDelays []float64, bandwidthHz float64) (Result, error) {
	if len(angles) < 2 {
		return Result{}, fmt.Errorf("probe: need ≥2 angles, got %d", len(angles))
	}
	if relDelays != nil && len(relDelays) != len(angles) {
		return Result{}, fmt.Errorf("probe: %d delays vs %d angles", len(relDelays), len(angles))
	}
	res := Result{}
	mags := make([][]float64, len(angles))
	for k, a := range angles {
		csi := p.Probe(u.SingleBeam(a))
		res.Probes++
		mags[k] = csi.Abs()
		res.PerBeamPower = append(res.PerBeamPower, meanPower(mags[k]))
	}
	for k := 1; k < len(angles); k++ {
		var rd float64
		if relDelays != nil {
			rd = relDelays[k]
		}
		est, err := EstimatePairWithDelay(p, u, angles[0], angles[k], mags[0], mags[k], rd, bandwidthHz)
		res.Probes += 2
		if err != nil {
			return Result{}, fmt.Errorf("probe: beam %d: %w", k, err)
		}
		res.Relative = append(res.Relative, est)
	}
	return res, nil
}

func meanPower(mags []float64) float64 {
	if len(mags) == 0 {
		return 0
	}
	var s float64
	for _, m := range mags {
		s += m * m
	}
	return s / float64(len(mags))
}

// NarrowbandEstimate applies Eq. 12 to scalar powers directly — the
// narrowband special case (e.g. a single CSI-RS subcarrier or an
// 802.11ad-style flat channel). p1, p2 are the single-beam powers; p3, p4
// the combined powers at relative phase 0 and π/2 (already corrected for
// TRP normalization).
func NarrowbandEstimate(p1, p2, p3, p4 float64) (Estimate, error) {
	if p1 <= 0 {
		return Estimate{}, fmt.Errorf("probe: non-positive reference power %g", p1)
	}
	sq := math.Sqrt(p1)
	re := (p3 - p1 - p2) / (2 * sq)
	im := (p1 + p2 - p4) / (2 * sq)
	h2 := complex(re, im)
	return Estimate{Delta: cmplx.Abs(h2) / sq, Sigma: cmplx.Phase(h2)}, nil
}

// PhaseStability returns the per-subcarrier phase of the ratio h2/h1
// reconstructed by EstimatePair-style probing — used to verify that the
// optimal per-beam phase is stable across the band (Fig. 15c). It reuses
// the same two probes' CSI.
func PhaseStability(u *antenna.ULA, phiRef, phiK float64, m1, m2 []float64, csi3, csi4 cmx.Vector) []float64 {
	_, n3 := combinedBeam(u, phiRef, phiK, 0)
	_, n4 := combinedBeam(u, phiRef, phiK, math.Pi/2)
	out := make([]float64, len(m1))
	for f := range m1 {
		p1 := m1[f] * m1[f]
		p2 := m2[f] * m2[f]
		a3 := cmplx.Abs(csi3[f])
		a4 := cmplx.Abs(csi4[f])
		p3 := a3 * a3 * n3
		p4 := a4 * a4 * n4
		if p1 <= 0 {
			continue
		}
		sq := math.Sqrt(p1)
		out[f] = cmplx.Phase(complex((p3-p1-p2)/(2*sq), (p1+p2-p4)/(2*sq)))
	}
	return out
}
