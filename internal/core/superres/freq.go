package superres

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
	"mmreliable/internal/scratch"
)

// wsPool recycles throwaway workspaces for ExtractInto(…, nil) callers, so
// the compat path stays cheap without requiring every caller to thread a
// Workspace.
var wsPool = sync.Pool{New: func() any { return scratch.New() }}

// phasorReseed bounds unit-phasor recurrence drift: the recurrence is
// re-seeded with an exact cmplx.Exp every this many steps, so accumulated
// rounding stays ≤ 64·ε (the same contract as the factored wideband
// channel kernel).
const phasorReseed = 64

// ExtractInto recovers per-beam complex amplitudes from a measured CIR
// with the frequency-domain solver; it is Extract for hot-path callers.
//
// The delay dictionary is a pure-delay family — column k is the IFFT of
// K_τ[m] = e^{−j2πf_m τ} over the centered subcarrier grid
// f_m = −B/2 + (m+½)B/N — so by Parseval every candidate correlation
// kernel(τ)ᴴ·aligned is the O(N) frequency-domain sum (1/N)·Σ_m A[m]·
// e^{j2πf_m τ}, where A = FFT(aligned); no dictionary column is ever
// synthesized in the time domain. The alignment rotation itself is a
// frequency-domain phase ramp, so the CIR is never rotated either. The
// dictionary Gram has a closed geometric-series form, is built exactly
// Hermitian, ridged once, and Cholesky-factored once per call; every
// alignment candidate then costs one phasor-ramp pass over the spectrum
// plus a K×K triangular solve. See DESIGN.md "Frequency-domain
// super-resolution".
//
// ws supplies all scratch; pass the per-worker workspace to run with zero
// allocations in steady state. ws may be nil, in which case a pooled
// workspace is borrowed for the duration of the call and only the two
// small result buffers are heap-allocated (the caller owns them
// indefinitely). With a non-nil ws, Result.Amp and Result.Power are
// checked out of ws *before* ExtractInto's own mark, so they remain valid
// after it returns — but they die at the caller's enclosing Release/Reset
// of ws. Callers that retain the result past that point must copy it.
//
// When len(cir) is not a power of two (no radix-2 FFT), the call falls
// back to the direct time-domain solver with the closed-form delay
// kernel; results agree with the fast path to ~1e-12.
func ExtractInto(cir cmx.Vector, relDelays []float64, sampleSpacing float64, cfg Config, ws *scratch.Workspace) (Result, error) {
	if err := validate(cir, relDelays, sampleSpacing); err != nil {
		return Result{}, err
	}
	n := len(cir)
	bw := 1 / sampleSpacing
	if !dsp.IsPow2(n) {
		return ExtractKernel(cir, relDelays, func(tau float64, dst cmx.Vector) cmx.Vector {
			return delayKernelInto(bw, n, tau, dst)
		}, sampleSpacing, cfg)
	}
	b2 := cir.Norm2()
	if b2 == 0 {
		return Result{}, fmt.Errorf("superres: zero CIR")
	}
	norm := math.Sqrt(b2)
	_, peak := cir.MaxAbs()
	k := len(relDelays)

	own := ws
	var amp cmx.Vector
	var pow []float64
	if own == nil {
		// No caller workspace: borrow a pooled one for the transient
		// scratch (checkouts are zeroed, so pooling cannot leak state into
		// results) and heap-allocate only the two small result buffers,
		// which the caller owns indefinitely.
		own = wsPool.Get().(*scratch.Workspace)
		own.Reset()
		defer wsPool.Put(own)
		amp = make(cmx.Vector, k)
		pow = make([]float64, k)
	} else {
		// Result buffers are checked out before the mark so they survive
		// the release of the transient scratch below.
		amp = cmx.Vector(own.Complex(k))
		pow = own.Float(k)
	}
	mk := own.Mark()
	defer own.Release(mk)

	// A[m] = FFT(cir)[m]·e^{j2π·peak·m/N} — the spectrum of the CIR
	// circularly aligned so its strongest tap sits at index 0.
	a := cmx.Vector(own.Complex(n))
	copy(a, cir)
	if err := dsp.FFT(a); err != nil {
		return Result{}, err // unreachable: length is a power of two
	}
	applyRotationRamp(a, peak)

	// Ak[k] = A ∘ e^{j2πf_m·rel_k}: the per-path ramped spectra, computed
	// once; every candidate correlation is then a plain product sum with
	// the shared base-delay ramp.
	ak := own.Complex(k * n)
	for i, rd := range relDelays {
		row := cmx.Vector(ak[i*n : (i+1)*n])
		copy(row, a)
		applyFreqRamp(row, bw, rd)
	}
	// The generic (K = 1, K ≥ 4) candidate path correlates through the
	// planar DSP kernel, which wants split rows; K = 2/3 keep their even/odd
	// Horner specializations below and never pay for the split.
	var akRe, akIm []float64
	kern := dsp.Active()
	if k != 2 && k != 3 {
		akRe, akIm = own.Float(k*n), own.Float(k*n)
		cmx.Split(ak, akRe, akIm)
	}

	// Closed-form Gram (exactly Hermitian), ridged in place, hoisted
	// Cholesky. The un-ridged Gram itself is never needed: the residual
	// below uses the normal-equations identity instead of a G·α product.
	ridged := cmx.Matrix{Rows: k, Cols: k, Data: own.Complex(k * k)}
	delayGramInto(&ridged, relDelays, bw, n)
	if cfg.Lambda > 0 {
		for i := 0; i < k; i++ {
			ridged.Set(i, i, ridged.At(i, i)+complex(cfg.Lambda, 0))
		}
	}
	chol := cmx.CholeskyWith(own.Complex(k * k))
	useChol := chol.Factor(&ridged) == nil

	corr := cmx.Vector(own.Complex(k))
	alpha := cmx.Vector(own.Complex(k))
	invN := complex(1/float64(n), 0)
	nf := float64(n)
	rampRate := 2 * math.Pi * bw / nf

	// fit evaluates one alignment candidate, leaving the solution in
	// alpha. The correlation (1/N)·Σ_m row[m]·e^{j2πf_m·base} is the
	// polynomial Σ_m row[m]·z^m at z = e^{j2πB·base/N}, up to the scalar
	// prefactor e^{j2πf_0·base}/N — the common K=2/3 cases evaluate it by
	// even/odd-split Horner (P(z) = E(z²) + z·O(z²)): no per-tap phasor
	// recurrence, 2K independent dependency chains, and only two complex
	// exponentials per candidate. Accuracy matches the reseeded-phasor
	// reference to a few n·ε (pinned by the FD-vs-TD property tests).
	// Reported residual uses the normal-equations identity: (G+λI)α = c
	// gives αᴴGα = Re(αᴴc) − λ‖α‖², hence ‖b − Kα‖² = ‖b‖² − Re(αᴴc) −
	// λ‖α‖² — no K-vector Gram product per candidate.
	fit := func(base float64) (float64, bool) {
		z := expi(rampRate * base)
		pre := expi(2*math.Pi*(-bw/2+0.5*bw/nf)*base) * invN
		switch k {
		case 2:
			r0, r1 := ak[0:n:n], ak[n:2*n:2*n]
			z2 := z * z
			var e0, o0, e1, o1 complex128
			for m := n - 2; m >= 0; m -= 2 {
				e0 = e0*z2 + r0[m]
				o0 = o0*z2 + r0[m+1]
				e1 = e1*z2 + r1[m]
				o1 = o1*z2 + r1[m+1]
			}
			corr[0] = pre * (e0 + z*o0)
			corr[1] = pre * (e1 + z*o1)
		case 3:
			r0, r1, r2 := ak[0:n:n], ak[n:2*n:2*n], ak[2*n:3*n:3*n]
			z2 := z * z
			var e0, o0, e1, o1, e2, o2 complex128
			for m := n - 2; m >= 0; m -= 2 {
				e0 = e0*z2 + r0[m]
				o0 = o0*z2 + r0[m+1]
				e1 = e1*z2 + r1[m]
				o1 = o1*z2 + r1[m+1]
				e2 = e2*z2 + r2[m]
				o2 = o2*z2 + r2[m+1]
			}
			corr[0] = pre * (e0 + z*o0)
			corr[1] = pre * (e1 + z*o1)
			corr[2] = pre * (e2 + z*o2)
		default:
			// corr[i] = (1/N)·Σ_m row[m]·e^{j(θ₀+m·Δθ)} with θ₀ the first
			// subcarrier's phase — a kernel PhasorDot per planar row.
			theta0 := 2 * math.Pi * (-bw/2 + 0.5*bw/nf) * base
			dTheta := rampRate * base
			for i := 0; i < k; i++ {
				sRe, sIm := kern.PhasorDot(akRe[i*n:(i+1)*n], akIm[i*n:(i+1)*n], theta0, dTheta)
				corr[i] = complex(sRe, sIm) * invN
			}
		}
		if useChol {
			chol.SolveInto(alpha, corr)
		} else {
			// Degenerate ridged Gram (λ=0 with coincident delays): fall
			// back to pivoted Gaussian elimination per candidate; a
			// singular candidate is skipped, preserving the "every
			// alignment candidate was degenerate" error path.
			x, err := cmx.Solve(&ridged, corr)
			if err != nil {
				return 0, false
			}
			copy(alpha, x)
		}
		res2 := b2 - real(alpha.Hdot(corr)) - cfg.Lambda*alpha.Norm2()
		if res2 < 0 {
			res2 = 0
		}
		return math.Sqrt(res2) / norm, true
	}

	steps := cfg.SearchSteps
	if steps < 1 {
		steps = 1
	}
	bestRes, bestBase := math.Inf(1), 0.0
	try := func(base float64) {
		if r, ok := fit(base); ok && r < bestRes {
			bestRes, bestBase = r, base
			copy(amp, alpha)
		}
	}
	search := func(center, span float64) {
		for s := 0; s < steps; s++ {
			base := center
			if steps > 1 {
				base = center - span + 2*span*float64(s)/float64(steps-1)
			}
			try(base)
		}
	}
	// Same hypothesis structure as the time-domain solver: one coarse pass
	// per "the strongest tap is beam j" alignment hypothesis, then a fine
	// pass around the winner.
	for _, rd := range relDelays {
		search(-rd, cfg.SearchSpan)
	}
	if steps > 1 && !math.IsInf(bestRes, 1) {
		search(bestBase, 2*cfg.SearchSpan/float64(steps-1))
	}
	if math.IsInf(bestRes, 1) {
		return Result{}, fmt.Errorf("superres: every alignment candidate was degenerate")
	}
	for i, x := range amp {
		pow[i] = real(x)*real(x) + imag(x)*imag(x)
	}
	return Result{Amp: amp, Power: pow, BaseDelay: bestBase, Residual: bestRes}, nil
}

// validate holds the shared argument checks of every Extract variant.
func validate(cir cmx.Vector, relDelays []float64, sampleSpacing float64) error {
	if len(cir) == 0 {
		return fmt.Errorf("superres: empty CIR")
	}
	if len(relDelays) == 0 {
		return fmt.Errorf("superres: no relative delays")
	}
	if relDelays[0] != 0 {
		return fmt.Errorf("superres: relDelays[0] must be 0, got %g", relDelays[0])
	}
	// Non-reference delays may be negative (a path can arrive before the
	// strongest one): the CIR is circular, so the dictionary kernel simply
	// wraps.
	if len(relDelays) > len(cir) {
		return fmt.Errorf("superres: more paths (%d) than CIR taps (%d)", len(relDelays), len(cir))
	}
	if sampleSpacing <= 0 {
		return fmt.Errorf("superres: non-positive sample spacing")
	}
	return nil
}

// expi returns e^{jθ} = (cos θ, sin θ). It is bit-identical to
// cmplx.Exp with a purely imaginary argument — which computes and
// multiplies by e^0 = 1 — without paying for the real exponential
// (measurable: the alignment search evaluates two of these per
// candidate).
func expi(theta float64) complex128 {
	s, c := math.Sincos(theta)
	return complex(c, s)
}

// fillFreqRamp sets dst[m] = e^{j2πf_m·tau} over the centered subcarrier
// grid f_m = −B/2 + (m+½)B/N, via the unit-phasor recurrence with exact
// re-seeding every phasorReseed steps.
func fillFreqRamp(dst cmx.Vector, bw, tau float64) {
	n := float64(len(dst))
	step := expi(2 * math.Pi * bw * tau / n)
	var p complex128
	for m := range dst {
		if m%phasorReseed == 0 {
			f := -bw/2 + (float64(m)+0.5)*bw/n
			p = expi(2 * math.Pi * f * tau)
		}
		dst[m] = p
		p *= step
	}
}

// applyFreqRamp multiplies dst[m] *= e^{j2πf_m·tau} (same grid and
// recurrence as fillFreqRamp).
func applyFreqRamp(dst cmx.Vector, bw, tau float64) {
	n := float64(len(dst))
	step := expi(2 * math.Pi * bw * tau / n)
	var p complex128
	for m := range dst {
		if m%phasorReseed == 0 {
			f := -bw/2 + (float64(m)+0.5)*bw/n
			p = expi(2 * math.Pi * f * tau)
		}
		dst[m] *= p
		p *= step
	}
}

// applyRotationRamp multiplies dst[m] *= e^{j2π·shift·m/N} — the spectrum
// of a circular rotation by −shift samples. The re-seed phase is reduced
// modulo N in integers, so it stays exact for any shift.
func applyRotationRamp(dst cmx.Vector, shift int) {
	n := len(dst)
	step := expi(2 * math.Pi * float64(shift) / float64(n))
	var p complex128
	for m := range dst {
		if m%phasorReseed == 0 {
			r := (shift * m) % n
			p = expi(2 * math.Pi * float64(r) / float64(n))
		}
		dst[m] *= p
		p *= step
	}
}

// delayGramInto fills g with the Gram matrix of the pure-delay dictionary
// at the given relative delays: G[a][b] = kernel(τ_a)ᴴ·kernel(τ_b) =
// (1/N)·Σ_m e^{j2πf_m(τ_a−τ_b)}, a geometric series with the closed form
// used by delayGramEntry. Only the strict lower triangle is computed; the
// upper is mirrored by conjugation and the diagonal set to exactly 1, so
// the result is exactly Hermitian (a requirement of the Cholesky
// factorization).
func delayGramInto(g *cmx.Matrix, relDelays []float64, bw float64, n int) {
	for a := range relDelays {
		g.Set(a, a, 1)
		for b := 0; b < a; b++ {
			v := delayGramEntry(bw, n, relDelays[a]-relDelays[b])
			g.Set(a, b, v)
			g.Set(b, a, cmplx.Conj(v))
		}
	}
}

// delayGramEntry evaluates (1/N)·Σ_{m=0}^{N−1} e^{j2πf_m·Δ} in closed
// form: lead·(e^{j2πBΔ}−1)/(e^{j2πBΔ/N}−1)/N with lead =
// e^{j2π(−B/2+B/(2N))Δ}, degenerating to lead when the ratio is 1 (Δ a
// multiple of N/B, where the sum is exactly N·lead).
func delayGramEntry(bw float64, n int, delta float64) complex128 {
	nf := float64(n)
	lead := expi(2 * math.Pi * (-bw/2 + bw/(2*nf)) * delta)
	den := expi(2*math.Pi*bw*delta/nf) - 1
	if cmplx.Abs(den) < 1e-12 {
		return lead
	}
	num := expi(2*math.Pi*bw*delta) - 1
	return lead * num / den * complex(1/nf, 0)
}

// delayKernelInto writes the time-domain CIR signature of a unit path at
// delay tau — the IFFT of e^{−j2πf_k·tau} over the centered subcarrier
// grid — into dst (allocated when nil). It mirrors the sounder's
// closed-form delay kernel so the non-power-of-two fallback and the
// Extract compat probe share its exact rounding.
func delayKernelInto(bw float64, n int, tau float64, dst cmx.Vector) cmx.Vector {
	if dst == nil {
		dst = make(cmx.Vector, n)
	}
	if len(dst) != n {
		panic(fmt.Sprintf("superres: delay-kernel dst length %d != %d", len(dst), n))
	}
	bTau := bw * tau
	lead := expi(-2 * math.Pi * (-bw/2 + bw/(2*float64(n))) * tau)
	num := expi(-2*math.Pi*bTau) - 1
	ls := lead * complex(1/float64(n), 0)
	lsn := ls * num
	step := expi(2 * math.Pi / float64(n))
	var rho complex128
	for i := 0; i < n; i++ {
		if i%phasorReseed == 0 {
			rho = expi(2*math.Pi*float64(i)/float64(n) - 2*math.Pi*bTau/float64(n))
		}
		den := rho - 1
		// Same degenerate branch and conjugate-reciprocal ratio as the
		// sounder's kernel (|den|² against (1e-12)²), keeping the two
		// implementations' rounding aligned.
		d := real(den)*real(den) + imag(den)*imag(den)
		if d < 1e-24 {
			dst[i] = ls * complex(float64(n), 0)
		} else {
			inv := 1 / d
			dst[i] = lsn * complex(real(den)*inv, -imag(den)*inv)
		}
		rho *= step
	}
	return dst
}
