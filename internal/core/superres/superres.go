// Package superres implements mmReliable's per-beam power extraction
// (§4.3): the single-RF-chain receiver only ever sees the superposition of
// all beams, so the per-beam amplitudes α_k are recovered from the channel
// impulse response by fitting a sparse delay-kernel (sinc) dictionary:
//
//	α̂ = argmin_α ‖h_CIR − S·α‖² + λ‖α‖²           (Eq. 23)
//
// where column k of S is the band-limited signature of a path at the k-th
// beam's delay (Eq. 22). The key trick from the paper: absolute ToF drifts
// with timing offset, but *relative* ToF between beams changes slowly, so
// the CIR is first aligned to its strongest tap and the dictionary is built
// from the known relative delays, with a small local search absorbing
// residual drift.
package superres

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/cmx"
	"mmreliable/internal/scratch"
)

// KernelFunc returns the CIR signature of a unit path at the given absolute
// delay (seconds). nr.(*Sounder).DelayKernel satisfies this.
type KernelFunc func(tau float64) cmx.Vector

// KernelIntoFunc writes the CIR signature of a unit path at the given
// absolute delay into dst and returns it (dst may be nil, in which case the
// kernel allocates). nr.(*Sounder).DelayKernelInto satisfies this; the
// alignment search calls it hundreds of times per fit on one reused scratch
// column.
type KernelIntoFunc func(tau float64, dst cmx.Vector) cmx.Vector

// Config tunes the solver.
type Config struct {
	// Lambda is the L2 (ridge) regularization weight of Eq. 23. It
	// stabilizes the fit when two delays fall inside one resolution cell.
	Lambda float64
	// SearchSpan is the ± range (seconds) of the global alignment search
	// around the peak-aligned position.
	SearchSpan float64
	// SearchSteps is the number of alignment candidates tried across the
	// span (≥1; 1 disables the search).
	SearchSteps int
}

// DefaultConfig suits a 400 MHz sounder (2.5 ns resolution): ±1 sample of
// alignment search in 17 steps and mild regularization.
func DefaultConfig() Config {
	return Config{Lambda: 1e-3, SearchSpan: 2.5e-9, SearchSteps: 17}
}

// Result is the outcome of one extraction.
type Result struct {
	// Amp[k] is the complex amplitude of beam k's path in the CIR.
	Amp cmx.Vector
	// Power[k] = |Amp[k]|², the per-beam power the tracker consumes.
	Power []float64
	// BaseDelay is the fitted delay of the reference (first) path after
	// alignment, in seconds.
	BaseDelay float64
	// Residual is the relative fit residual ‖h − Sα‖/‖h‖ at the optimum.
	Residual float64
}

// Extract recovers per-beam complex amplitudes from a measured CIR.
// relDelays[k] is the delay of beam k's path relative to the first
// (reference) path — relDelays[0] must be 0. kernel generates dictionary
// columns; sampleSpacing is the CIR sample period (1/bandwidth).
//
// The CIR is circularly aligned so its strongest tap sits at index 0, then
// a grid of base delays around 0 is searched; at each candidate the ridge
// system (Eq. 23) is solved and the best-residual solution wins.
//
// Extract probes the supplied kernel once against the closed-form delay
// kernel: when it matches (the sounder's DelayKernel — every known
// caller), the whole fit runs through the frequency-domain solver of
// ExtractInto and the kernel is never called again, so legacy callers no
// longer pay one fresh dictionary column per alignment candidate. A
// non-delay kernel falls back to the direct time-domain solver
// ExtractKernel (whose per-candidate allocations are then inherent to the
// allocating KernelFunc signature).
func Extract(cir cmx.Vector, relDelays []float64, kernel KernelFunc, sampleSpacing float64, cfg Config) (Result, error) {
	if err := validate(cir, relDelays, sampleSpacing); err != nil {
		return Result{}, err
	}
	if isDelayKernel(kernel, 1/sampleSpacing, len(cir)) {
		return ExtractInto(cir, relDelays, sampleSpacing, cfg, nil)
	}
	return ExtractKernel(cir, relDelays, func(tau float64, _ cmx.Vector) cmx.Vector {
		return kernel(tau)
	}, sampleSpacing, cfg)
}

// isDelayKernel reports whether kernel is the pure-delay (sounder)
// kernel, by spot-checking one probe column at a fractional delay against
// the closed form.
func isDelayKernel(kernel KernelFunc, bw float64, n int) bool {
	const probeSamples = 0.37 // arbitrary fractional, non-degenerate delay
	probe := probeSamples / bw
	col := kernel(probe)
	if len(col) != n {
		return false
	}
	for _, i := range [...]int{0, 1, n / 2, n - 1} {
		i %= n
		if i < 0 {
			i += n
		}
		if cmplx.Abs(col[i]-delayKernelTap(bw, n, probe, i)) > 1e-9 {
			return false
		}
	}
	return true
}

// delayKernelTap evaluates a single tap of the closed-form delay kernel
// (see delayKernelInto).
func delayKernelTap(bw float64, n int, tau float64, i int) complex128 {
	nf := float64(n)
	bTau := bw * tau
	lead := cmplx.Exp(complex(0, -2*math.Pi*(-bw/2+bw/(2*nf))*tau))
	scale := complex(1/nf, 0)
	rho := cmplx.Exp(complex(0, 2*math.Pi*float64(i)/nf-2*math.Pi*bTau/nf))
	den := rho - 1
	if cmplx.Abs(den) < 1e-12 {
		return lead * scale * complex(nf, 0)
	}
	num := cmplx.Exp(complex(0, -2*math.Pi*bTau)) - 1
	return lead * scale * (num / den)
}

// ExtractKernel is the direct time-domain solver for arbitrary dictionary
// kernels: every candidate correlation synthesizes the dictionary column
// kernel(base+rel_k) through one reused scratch buffer and inner-products
// it against the aligned CIR. It is the reference implementation the
// frequency-domain ExtractInto is pinned against (within 1e-12; see
// TestFreqDomainMatchesTimeDomain) and the fallback for kernels that are
// not a pure delay. Hot-path callers with the standard sounder kernel
// should use ExtractInto instead.
func ExtractKernel(cir cmx.Vector, relDelays []float64, kernel KernelIntoFunc, sampleSpacing float64, cfg Config) (Result, error) {
	if err := validate(cir, relDelays, sampleSpacing); err != nil {
		return Result{}, err
	}
	// Align: rotate the strongest tap to index 0. The unknown absolute ToF
	// then lives within ± a fraction of a sample, covered by the search.
	_, peak := cir.MaxAbs()
	aligned := rotate(cir, -peak)

	steps := cfg.SearchSteps
	if steps < 1 {
		steps = 1
	}
	norm := aligned.Norm()
	if norm == 0 {
		return Result{}, fmt.Errorf("superres: zero CIR")
	}
	// The dictionary Gram matrix is invariant under a common delay shift of
	// all columns (a pure-delay kernel's inner products depend only on
	// delay differences), so it is computed once and reused across every
	// alignment candidate; each candidate then only needs the K correlation
	// values Aᴴb and a K×K solve, with the residual evaluated as
	// ‖b‖² − 2·Re(αᴴc) + αᴴGα.
	gram := func() *cmx.Matrix {
		cols := make([]cmx.Vector, len(relDelays))
		for k, rd := range relDelays {
			cols[k] = kernel(rd, nil) // distinct columns: no scratch sharing
		}
		return cmx.FromColumns(cols).Gram()
	}()
	ridged := gram.Clone()
	if cfg.Lambda > 0 {
		for i := 0; i < ridged.Rows; i++ {
			ridged.Set(i, i, ridged.At(i, i)+complex(cfg.Lambda, 0))
		}
	}
	b2 := aligned.Norm2()
	// One column scratch and one correlation buffer shared by every
	// alignment candidate (the solver copies what it keeps).
	col := make(cmx.Vector, len(cir))
	corr := make(cmx.Vector, len(relDelays))
	fit := func(base float64) (Result, bool) {
		for k, rd := range relDelays {
			corr[k] = kernel(base+rd, col).Hdot(aligned)
		}
		alpha, err := cmx.Solve(ridged, corr)
		if err != nil {
			return Result{}, false
		}
		res2 := b2 - 2*real(alpha.Hdot(corr)) + real(alpha.Hdot(gram.MulVec(alpha)))
		if res2 < 0 {
			res2 = 0
		}
		return Result{Amp: alpha, BaseDelay: base, Residual: math.Sqrt(res2) / norm}, true
	}
	search := func(center, span float64) Result {
		best := Result{Residual: math.Inf(1)}
		for s := 0; s < steps; s++ {
			base := center
			if steps > 1 {
				base = center - span + 2*span*float64(s)/float64(steps-1)
			}
			if r, ok := fit(base); ok && r.Residual < best.Residual {
				best = r
			}
		}
		return best
	}
	// The aligned CIR has its strongest tap at index 0, but which *path*
	// that tap belongs to is unknown (a blocked reference path may no
	// longer be the strongest). Try one alignment hypothesis per beam —
	// "the strongest tap is beam j", i.e. a global base delay of −rel[j] —
	// with a coarse pass over ±SearchSpan and a fine pass around the
	// winner so fractional-sample timing drift (e.g. an SFO-induced shift)
	// is matched to well under the grid step.
	best := Result{Residual: math.Inf(1)}
	for _, rd := range relDelays {
		if cand := search(-rd, cfg.SearchSpan); cand.Residual < best.Residual {
			best = cand
		}
	}
	if steps > 1 && !math.IsInf(best.Residual, 1) {
		fineSpan := 2 * cfg.SearchSpan / float64(steps-1)
		if fine := search(best.BaseDelay, fineSpan); fine.Residual < best.Residual {
			best = fine
		}
	}
	if math.IsInf(best.Residual, 1) {
		return Result{}, fmt.Errorf("superres: every alignment candidate was degenerate")
	}
	best.Power = make([]float64, len(best.Amp))
	for k, a := range best.Amp {
		best.Power[k] = real(a)*real(a) + imag(a)*imag(a)
	}
	return best, nil
}

// rotate circularly shifts v by k positions (positive k moves content to
// higher indices).
func rotate(v cmx.Vector, k int) cmx.Vector {
	n := len(v)
	out := make(cmx.Vector, n)
	for i := range v {
		j := ((i+k)%n + n) % n
		out[j] = v[i]
	}
	return out
}

// EstimateDelay returns the sub-sample delay (seconds) of the strongest
// tap of a CIR, in [0, N·Ts), via parabolic interpolation of the magnitude
// peak. The manager uses this during establishment to learn each beam's
// absolute ToF; differences of these across beams give the relative ToFs
// that anchor the super-resolution dictionary.
func EstimateDelay(cir cmx.Vector, sampleSpacing float64) (float64, error) {
	return EstimateDelayWS(cir, sampleSpacing, nil)
}

// EstimateDelayWS is EstimateDelay drawing the magnitude scratch from ws —
// allocation-free when ws is non-nil, identical arithmetic either way.
func EstimateDelayWS(cir cmx.Vector, sampleSpacing float64, ws *scratch.Workspace) (float64, error) {
	if len(cir) == 0 {
		return 0, fmt.Errorf("superres: empty CIR")
	}
	if sampleSpacing <= 0 {
		return 0, fmt.Errorf("superres: non-positive sample spacing")
	}
	var mags []float64
	if ws != nil {
		mk := ws.Mark()
		defer ws.Release(mk)
		mags = cir.AbsInto(ws.Float(len(cir)))
	} else {
		mags = cir.Abs()
	}
	peak, best := 0, 0.0
	for i, m := range mags {
		if m > best {
			best, peak = m, i
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("superres: zero CIR")
	}
	n := len(mags)
	ym := mags[(peak-1+n)%n]
	yp := mags[(peak+1)%n]
	y0 := mags[peak]
	den := 2 * (2*y0 - ym - yp)
	frac := 0.0
	if den > 1e-30 {
		frac = (yp - ym) / den
	}
	if frac > 0.5 {
		frac = 0.5
	}
	if frac < -0.5 {
		frac = -0.5
	}
	d := (float64(peak) + frac) * sampleSpacing
	span := float64(n) * sampleSpacing
	for d < 0 {
		d += span
	}
	for d >= span {
		d -= span
	}
	return d, nil
}

// RelativeDelay returns the circular difference d−ref wrapped to
// (−span/2, span/2], where span = n·Ts — the relative ToF between two
// beams' strongest taps.
func RelativeDelay(d, ref, span float64) float64 {
	x := math.Mod(d-ref, span)
	if x > span/2 {
		x -= span
	}
	if x <= -span/2 {
		x += span
	}
	return x
}

// PowerRatioDB returns the power of beam k relative to beam ref in dB.
func (r Result) PowerRatioDB(k, ref int) float64 {
	if r.Power[ref] <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(r.Power[k]/r.Power[ref])
}

// RelativePhase returns the phase of Amp[k] relative to Amp[ref].
func (r Result) RelativePhase(k, ref int) float64 {
	return cmplx.Phase(r.Amp[k] / r.Amp[ref])
}
