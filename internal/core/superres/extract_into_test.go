package superres

import (
	"testing"

	"mmreliable/internal/scratch"
)

// TestExtractIntoMatchesExtract pins the compat wrapper to the
// frequency-domain solver: same CIR, same dictionary, identical Result —
// with and without a caller-supplied workspace.
func TestExtractIntoMatchesExtract(t *testing.T) {
	s := newSounder(t, 2e-6, 9)
	cir, _ := measure(t, s, 3, 10)
	rel := []float64{0, 10e-9}
	a, err := Extract(cir, rel, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractInto(cir, rel, s.SampleSpacing(), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := scratch.New()
	c, err := ExtractInto(cir, rel, s.SampleSpacing(), DefaultConfig(), ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		x    Result
	}{{"nil-ws", b}, {"workspace", c}} {
		if a.BaseDelay != pair.x.BaseDelay || a.Residual != pair.x.Residual {
			t.Fatalf("%s: fit diverges: base %g vs %g, residual %g vs %g",
				pair.name, a.BaseDelay, pair.x.BaseDelay, a.Residual, pair.x.Residual)
		}
		for k := range a.Amp {
			if a.Amp[k] != pair.x.Amp[k] || a.Power[k] != pair.x.Power[k] {
				t.Fatalf("%s: beam %d amplitude diverges: %v vs %v", pair.name, k, a.Amp[k], pair.x.Amp[k])
			}
		}
	}
	// A recycled workspace must reproduce the same result bit-for-bit
	// (zeroed checkouts: no state leaks between extractions).
	ws.Reset()
	d, err := ExtractInto(cir, rel, s.SampleSpacing(), DefaultConfig(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if d.BaseDelay != a.BaseDelay || d.Residual != a.Residual {
		t.Fatal("recycled workspace changed the fit")
	}
}

// TestExtractIntoAllocs pins the tentpole acceptance criterion: ExtractInto
// with a caller-owned workspace performs ZERO heap allocations per fit in
// steady state — the FFT, phase ramps, Gram, Cholesky factor, alignment
// search, and the Result's Amp/Power all live in the arena.
func TestExtractIntoAllocs(t *testing.T) {
	s := newSounder(t, 2e-6, 9)
	cir, _ := measure(t, s, 3, 10)
	rel := []float64{0, 10e-9}
	cfg := DefaultConfig()
	ws := scratch.New()
	spacing := s.SampleSpacing()
	// Warm the arena: the first fit grows the size-classed chunks.
	mk := ws.Mark()
	if _, err := ExtractInto(cir, rel, spacing, cfg, ws); err != nil {
		t.Fatal(err)
	}
	ws.Release(mk)
	allocs := testing.AllocsPerRun(50, func() {
		mk := ws.Mark()
		if _, err := ExtractInto(cir, rel, spacing, cfg, ws); err != nil {
			t.Fatal(err)
		}
		ws.Release(mk)
	})
	if allocs != 0 {
		t.Fatalf("ExtractInto with workspace allocates %.1f per op, want 0", allocs)
	}
}
