package superres

import (
	"testing"
)

// TestExtractIntoMatchesExtract pins the scratch-reusing solver to the
// allocating one: same CIR, same dictionary, identical Result.
func TestExtractIntoMatchesExtract(t *testing.T) {
	s := newSounder(t, 2e-6, 9)
	cir, _ := measure(t, s, 3, 10)
	rel := []float64{0, 10e-9}
	a, err := Extract(cir, rel, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractInto(cir, rel, s.DelayKernelInto, s.SampleSpacing(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.BaseDelay != b.BaseDelay || a.Residual != b.Residual {
		t.Fatalf("fit diverges: base %g vs %g, residual %g vs %g", a.BaseDelay, b.BaseDelay, a.Residual, b.Residual)
	}
	for k := range a.Amp {
		if a.Amp[k] != b.Amp[k] || a.Power[k] != b.Power[k] {
			t.Fatalf("beam %d amplitude diverges: %v vs %v", k, a.Amp[k], b.Amp[k])
		}
	}
}
