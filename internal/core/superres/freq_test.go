package superres

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

// fdCorr evaluates the frequency-domain candidate correlation
// (1/N)·Σ_m A[m]·e^{j2πf_m τ} through the production ramp code path.
func fdCorr(a cmx.Vector, bw, tau float64) complex128 {
	p := make(cmx.Vector, len(a))
	fillFreqRamp(p, bw, tau)
	var s complex128
	for m := range a {
		s += a[m] * p[m]
	}
	return s / complex(float64(len(a)), 0)
}

// TestFreqCorrelationMatchesTimeDomain is the property test of the
// frequency-domain identity: for random CIRs and delays — fractional,
// negative, and beyond the CIR span (wraparound) — the spectral product
// must equal the direct kernel(τ)ᴴ·h correlation within 1e-12.
func TestFreqCorrelationMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{16, 64, 256} {
		bw := 400e6
		ts := 1 / bw
		h := make(cmx.Vector, n)
		for i := range h {
			h[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		a := h.Clone()
		if err := dsp.FFT(a); err != nil {
			t.Fatal(err)
		}
		col := make(cmx.Vector, n)
		taus := []float64{
			0, 0.3 * ts, 1e-12, -0.7 * ts, 2.5 * ts, -3.9 * ts,
			float64(n) * ts,             // full wrap
			-float64(n) * ts * 1.5,      // negative beyond the span
			(float64(n) + 0.421) * ts,   // wrap + fraction
			-(float64(n) - 0.137) * ts,  // negative wrap + fraction
			float64(n) / 2 * ts,         // half span (kernel sign flip zone)
			(float64(n)/2 + 0.653) * ts, // half span + fraction
		}
		for trial := 0; trial < 50; trial++ {
			taus = append(taus, (rng.Float64()*4-2)*float64(n)*ts)
		}
		scale := h.Norm()
		for _, tau := range taus {
			want := delayKernelInto(bw, n, tau, col).Hdot(h)
			got := fdCorr(a, bw, tau)
			if d := cmplx.Abs(got - want); d > 1e-12*scale {
				t.Fatalf("n=%d τ=%g samples: FD %v vs TD %v (|Δ|=%g, rel %g)",
					n, tau/ts, got, want, d, d/scale)
			}
		}
	}
}

// TestClosedFormGramMatchesKernels pins the geometric-series Gram against
// direct column inner products, including wrap and sub-resolution
// spacings, and checks it is exactly Hermitian with a unit diagonal.
func TestClosedFormGramMatchesKernels(t *testing.T) {
	bw, n := 400e6, 64
	ts := 1 / bw
	rels := [][]float64{
		{0, 10e-9},
		{0, 0.8e-9, 15e-9},
		{0, -4.3e-9, 2.1e-9, 37.5e-9},
		{0, float64(n) * ts, 0.25 * ts}, // one delay a full wrap out
		{0, 0.05e-9},                    // deep inside one resolution cell
	}
	for _, rel := range rels {
		k := len(rel)
		g := cmx.NewMatrix(k, k)
		delayGramInto(g, rel, bw, n)
		cols := make([]cmx.Vector, k)
		for i, rd := range rel {
			cols[i] = delayKernelInto(bw, n, rd, nil)
		}
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				want := cols[a].Hdot(cols[b])
				if d := cmplx.Abs(g.At(a, b) - want); d > 1e-12 {
					t.Fatalf("rel=%v: G[%d][%d] = %v, direct %v (|Δ|=%g)", rel, a, b, g.At(a, b), want, d)
				}
				if g.At(a, b) != cmplx.Conj(g.At(b, a)) {
					t.Fatalf("rel=%v: Gram not exactly Hermitian at (%d,%d)", rel, a, b)
				}
			}
		}
		for a := 0; a < k; a++ {
			if g.At(a, a) != 1 {
				t.Fatalf("rel=%v: diagonal G[%d][%d] = %v, want exactly 1", rel, a, a, g.At(a, a))
			}
		}
	}
}

// TestFreqDomainMatchesTimeDomain pins the full frequency-domain fit to
// the direct time-domain solver within 1e-12 on Amp, BaseDelay, and
// Residual, across CFO/SFO-impaired probes and a blockage event.
func TestFreqDomainMatchesTimeDomain(t *testing.T) {
	cases := []struct {
		name            string
		noise           float64
		seed            int64
		relAtt, excess  float64
		blockAfterProbe bool
	}{
		{"clean", 0, 31, 3, 10, false},
		{"cfo_sfo_noise", 2e-6, 32, 5, 7.5, false},
		{"subresolution", 1e-6, 33, 3, 1.2, false},
		{"blockage", 0, 34, 3, 10, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newSounder(t, c.noise, c.seed)
			cir, _ := measure(t, s, c.relAtt, c.excess)
			if c.blockAfterProbe {
				// Re-measure with the second path heavily attenuated so the
				// strongest tap may no longer be the reference path.
				cir2, _ := measure(t, s, c.relAtt+12, c.excess)
				cir = cir2
			}
			rel := []float64{0, c.excess * 1e-9}
			td, err := ExtractKernel(cir, rel, func(tau float64, dst cmx.Vector) cmx.Vector {
				return delayKernelInto(1/s.SampleSpacing(), len(cir), tau, dst)
			}, s.SampleSpacing(), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			fd, err := ExtractInto(cir, rel, s.SampleSpacing(), DefaultConfig(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if fd.BaseDelay != td.BaseDelay {
				t.Fatalf("BaseDelay: FD %g vs TD %g", fd.BaseDelay, td.BaseDelay)
			}
			if d := math.Abs(fd.Residual - td.Residual); d > 1e-12 {
				t.Fatalf("Residual: FD %g vs TD %g (|Δ|=%g)", fd.Residual, td.Residual, d)
			}
			for k := range td.Amp {
				if d := cmplx.Abs(fd.Amp[k] - td.Amp[k]); d > 1e-12 {
					t.Fatalf("Amp[%d]: FD %v vs TD %v (|Δ|=%g)", k, fd.Amp[k], td.Amp[k], d)
				}
			}
		})
	}
}

// TestNearSingularRidgedGram puts two delays deep inside one resolution
// cell. With the default ridge the hoisted Cholesky factorization must
// stay stable (finite amplitudes, sane residual); with λ=0 the Gram is
// numerically singular, CholeskyFactor must decline, and the per-candidate
// Gaussian fallback must keep the solver from panicking or returning NaN.
func TestNearSingularRidgedGram(t *testing.T) {
	s := newSounder(t, 0, 35)
	cir, _ := measure(t, s, 3, 0.05) // 0.05 ns apart at 2.5 ns resolution
	rel := []float64{0, 0.05e-9}

	res, err := ExtractInto(cir, rel, s.SampleSpacing(), DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("ridged near-singular fit failed: %v", err)
	}
	if res.Residual > 0.05 {
		t.Fatalf("ridged residual %g", res.Residual)
	}
	for k, a := range res.Amp {
		if cmplx.IsNaN(a) || cmplx.IsInf(a) {
			t.Fatalf("ridged Amp[%d] = %v", k, a)
		}
	}

	// λ=0 with exactly coincident delays: the Gram is exactly rank-1, the
	// Cholesky must decline it…
	g := cmx.NewMatrix(2, 2)
	delayGramInto(g, []float64{0, 0}, 1/s.SampleSpacing(), len(cir))
	var ch cmx.CholeskyFactor
	if err := ch.Factor(g); err != cmx.ErrNotPD {
		t.Fatalf("Factor(rank-1 gram) = %v, want ErrNotPD", err)
	}
	// …and ExtractInto must take the per-candidate Gaussian fallback,
	// which also finds every candidate singular and reports the
	// degenerate-candidates error instead of panicking.
	cfg := DefaultConfig()
	cfg.Lambda = 0
	if _, err := ExtractInto(cir, []float64{0, 0}, s.SampleSpacing(), cfg, nil); err == nil {
		t.Fatal("unridged coincident-delay extraction should fail cleanly")
	}
	// A barely separated pair (1 fs) under λ=0 is PD only to rounding: the
	// solver must stay finite whichever path it takes.
	resZ, err := ExtractInto(cir, []float64{0, 1e-15}, s.SampleSpacing(), cfg, nil)
	if err == nil {
		for k, a := range resZ.Amp {
			if cmplx.IsNaN(a) || cmplx.IsInf(a) {
				t.Fatalf("unridged Amp[%d] = %v", k, a)
			}
		}
		if math.IsNaN(resZ.Residual) {
			t.Fatal("unridged residual is NaN")
		}
	}
}

// TestNonPow2FallsBackToTimeDomain checks the non-radix-2 CIR path (no
// FFT available) still fits through the closed-form time-domain fallback.
func TestNonPow2FallsBackToTimeDomain(t *testing.T) {
	bw := 400e6
	ts := 1 / bw
	n := 48 // not a power of two
	cir := make(cmx.Vector, n)
	col := delayKernelInto(bw, n, 0, nil)
	cir.AddScaled(complex(1, 0), col)
	delayKernelInto(bw, n, 10e-9, col)
	cir.AddScaled(complex(0.5, 0.2), col)
	res, err := ExtractInto(cir, []float64{0, 10e-9}, ts, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-3 {
		t.Fatalf("fallback residual %g", res.Residual)
	}
	if d := cmplx.Abs(res.Amp[1] - complex(0.5, 0.2)); d > 1e-2 {
		t.Fatalf("fallback Amp[1] = %v (|Δ|=%g)", res.Amp[1], d)
	}
}
