package superres

import (
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/env"
	"mmreliable/internal/nr"
)

func newSounder(t *testing.T, noise float64, seed int64) *nr.Sounder {
	t.Helper()
	s, err := nr.NewSounder(nr.Mu3(), 400e6, 64, noise, nr.DefaultImpairments(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// measure returns the CIR of the multi-beam probing of a 2-path channel
// with the given relative attenuation and excess delay, along with the true
// per-beam powers (the powers each path contributes under the beam).
func measure(t *testing.T, s *nr.Sounder, relAttDB, excessNs float64) (cmx.Vector, []float64) {
	t.Helper()
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 20},
		{AoDDeg: 30, RelAttDB: relAttDB, PhaseRad: 1.0, DelayNs: 20 + excessNs},
	})
	h := m.PerAntennaCSI(0)
	w := h.Conj().Normalize()
	// True per-path contribution magnitude under this beam.
	truth := make([]float64, len(m.Paths))
	for k := range m.Paths {
		g := m.PathGain(k, 0)
		ar := m.Tx.Steering(m.Paths[k].AoD).Dot(w)
		p := g * ar
		truth[k] = real(p)*real(p) + imag(p)*imag(p)
	}
	cir := s.CIR(s.Probe(m, w))
	return cir, truth
}

func TestExtractTwoResolvedPaths(t *testing.T) {
	// 10 ns excess delay = 4 samples at 400 MHz: fully resolved.
	s := newSounder(t, 0, 1)
	cir, truth := measure(t, s, 3, 10)
	res, err := Extract(cir, []float64{0, 10e-9}, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 0.02 {
		t.Fatalf("residual %g", res.Residual)
	}
	for k := range truth {
		errDB := math.Abs(10 * math.Log10(res.Power[k]/truth[k]))
		if errDB > 0.3 {
			t.Fatalf("beam %d power off by %g dB", k, errDB)
		}
	}
	// Relative per-beam power under the matched multi-beam goes as |g_k|⁴
	// (path attenuation squared again by the beam's power allocation), so a
	// −3 dB path appears at ≈ −6 dB.
	if got := res.PowerRatioDB(1, 0); math.Abs(got+6) > 0.5 {
		t.Fatalf("relative power %g dB want −6", got)
	}
}

func TestExtractBelowResolution(t *testing.T) {
	// Fig. 11a: per-beam power extraction keeps working below the 2.5 ns
	// system resolution thanks to the known relative-ToF dictionary.
	s := newSounder(t, 0, 2)
	for _, excessNs := range []float64{0.8, 1.2, 1.8} {
		cir, truth := measure(t, s, 3, excessNs)
		res, err := Extract(cir, []float64{0, excessNs * 1e-9}, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
		if err != nil {
			t.Fatalf("excess %g ns: %v", excessNs, err)
		}
		for k := range truth {
			errDB := math.Abs(10 * math.Log10(res.Power[k]/truth[k]))
			if errDB > 1.5 {
				t.Fatalf("excess %g ns: beam %d power off by %g dB", excessNs, k, errDB)
			}
		}
	}
}

func TestExtractWithNoise(t *testing.T) {
	s := newSounder(t, 2e-6, 3)
	var worst float64
	for trial := 0; trial < 10; trial++ {
		cir, truth := measure(t, s, 5, 7.5)
		res, err := Extract(cir, []float64{0, 7.5e-9}, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for k := range truth {
			errDB := math.Abs(10 * math.Log10(res.Power[k]/truth[k]))
			if errDB > worst {
				worst = errDB
			}
		}
	}
	if worst > 2.0 {
		t.Fatalf("worst per-beam power error %g dB under noise", worst)
	}
}

func TestExtractTracksBlockageOfOneBeam(t *testing.T) {
	// When a blocker attenuates the NLOS path by 10 dB (the beam itself
	// unchanged), beam 1's extracted power must drop by ≈10 dB while beam
	// 0's stays put — the §4.1 observable.
	s := newSounder(t, 0, 4)
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 20},
		{AoDDeg: 30, RelAttDB: 3, PhaseRad: 1.0, DelayNs: 30},
	})
	w := m.PerAntennaCSI(0).Conj().Normalize()
	cirA := s.CIR(s.Probe(m, w))
	m.Paths[1].ExtraLossDB = 10 // blocker on the NLOS path, same beam
	cirB := s.CIR(s.Probe(m, w))
	cfg := DefaultConfig()
	resA, err := Extract(cirA, []float64{0, 10e-9}, s.DelayKernel, s.SampleSpacing(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Extract(cirB, []float64{0, 10e-9}, s.DelayKernel, s.SampleSpacing(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	drop := 10 * math.Log10(resA.Power[1]/resB.Power[1])
	if math.Abs(drop-10) > 1.0 {
		t.Fatalf("beam-1 drop %g dB want ≈10", drop)
	}
	stay := math.Abs(10 * math.Log10(resA.Power[0]/resB.Power[0]))
	if stay > 1.0 {
		t.Fatalf("beam-0 moved %g dB, should be static", stay)
	}
}

func TestExtractThreeBeams(t *testing.T) {
	s := newSounder(t, 0, 5)
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 10},
		{AoDDeg: 35, RelAttDB: 4, PhaseRad: 1.0, DelayNs: 16},
		{AoDDeg: -30, RelAttDB: 7, PhaseRad: -0.5, DelayNs: 30},
	})
	h := m.PerAntennaCSI(0)
	w := h.Conj().Normalize()
	cir := s.CIR(s.Probe(m, w))
	res, err := Extract(cir, []float64{0, 6e-9, 20e-9}, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Power) != 3 {
		t.Fatalf("power length %d", len(res.Power))
	}
	if !(res.Power[0] > res.Power[1] && res.Power[1] > res.Power[2]) {
		t.Fatalf("powers not ordered: %v", res.Power)
	}
	if res.Residual > 0.05 {
		t.Fatalf("residual %g", res.Residual)
	}
}

func TestExtractSurvivesTimingDrift(t *testing.T) {
	// Rotating the CIR (absolute ToF drift between maintenance rounds) must
	// not change the per-beam estimates: the alignment step absorbs it.
	s := newSounder(t, 0, 6)
	cir, truth := measure(t, s, 3, 10)
	for _, shift := range []int{1, 5, 17, 40} {
		rot := rotate(cir, shift)
		res, err := Extract(rot, []float64{0, 10e-9}, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
		if err != nil {
			t.Fatalf("shift %d: %v", shift, err)
		}
		for k := range truth {
			errDB := math.Abs(10 * math.Log10(res.Power[k]/truth[k]))
			if errDB > 0.5 {
				t.Fatalf("shift %d: beam %d off by %g dB", shift, k, errDB)
			}
		}
	}
}

func TestExtractValidation(t *testing.T) {
	s := newSounder(t, 0, 7)
	kern := s.DelayKernel
	cir := make(cmx.Vector, 64)
	cir[0] = 1
	cases := []struct {
		name string
		cir  cmx.Vector
		rel  []float64
	}{
		{"empty CIR", nil, []float64{0}},
		{"no delays", cir, nil},
		{"nonzero first delay", cir, []float64{1e-9, 2e-9}},
		{"too many paths", make(cmx.Vector, 2), []float64{0, 1e-9, 2e-9}},
	}
	for _, c := range cases {
		if _, err := Extract(c.cir, c.rel, kern, 2.5e-9, DefaultConfig()); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := Extract(cir, []float64{0}, kern, 0, DefaultConfig()); err == nil {
		t.Error("zero sample spacing: expected error")
	}
	if _, err := Extract(make(cmx.Vector, 64), []float64{0}, kern, 2.5e-9, DefaultConfig()); err == nil {
		t.Error("all-zero CIR: expected error")
	}
}

func TestExtractSingleBeamDegenerate(t *testing.T) {
	// K = 1: the fit reduces to measuring total power.
	s := newSounder(t, 0, 8)
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 15},
	})
	w := m.Tx.SingleBeam(0)
	cir := s.CIR(s.Probe(m, w))
	res, err := Extract(cir, []float64{0}, s.DelayKernel, s.SampleSpacing(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 0.02 {
		t.Fatalf("single-path residual %g", res.Residual)
	}
}

func TestRotate(t *testing.T) {
	v := cmx.Vector{1, 2, 3, 4}
	if got := rotate(v, 1); got[1] != 1 || got[0] != 4 {
		t.Fatalf("rotate +1 = %v", got)
	}
	if got := rotate(v, -1); got[3] != 1 || got[0] != 2 {
		t.Fatalf("rotate -1 = %v", got)
	}
	if got := rotate(v, 4); got[0] != 1 {
		t.Fatalf("full rotation = %v", got)
	}
}

func TestRelativePhase(t *testing.T) {
	r := Result{Amp: cmx.Vector{1, 1i}}
	if got := r.RelativePhase(1, 0); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("relative phase %g", got)
	}
}
