// Package track implements mmReliable's proactive beam maintenance logic
// (§4.1–§4.2, §4.4): it watches the per-beam power time series produced by
// super-resolution, classifies power loss as blockage (fast) or mobility
// (gradual), and converts mobility losses into angular-deviation candidates
// by inverting the array's beam pattern. The direction ambiguity (±Δ gives
// the same power drop) is resolved by the manager with one trial probe.
package track

import (
	"fmt"
	"math"

	"mmreliable/internal/antenna"
	"mmreliable/internal/dsp"
)

// Config tunes the tracker.
type Config struct {
	// SmoothAlpha is the EWMA forgetting factor applied to per-beam power
	// in dB (the paper's "time average with a forgetting factor").
	SmoothAlpha float64
	// BlockSlopeDBPerSec marks a blockage when power falls faster than
	// this. The measured human-blocker onset is ~10 dB per 10 OFDM symbols
	// ≈ 112,000 dB/s; anything within two orders of magnitude of that is
	// unambiguous against mobility (tens of dB/s).
	BlockSlopeDBPerSec float64
	// BlockDropDB marks a blockage when a single inter-observation drop
	// exceeds this many dB (backstop for sparse observations).
	BlockDropDB float64
	// UnblockRiseDB clears the blocked flag when power recovers to within
	// this many dB of the anchor.
	UnblockRiseDB float64
	// DeviationDeadbandDB suppresses refinement for drops smaller than
	// this (measurement noise).
	DeviationDeadbandDB float64
	// HistoryLen is the number of recent observations kept for slope
	// estimation.
	HistoryLen int
}

// DefaultConfig returns thresholds matched to the paper's measurements.
func DefaultConfig() Config {
	return Config{
		SmoothAlpha:        0.4,
		BlockSlopeDBPerSec: 2000,
		// 8 dB between consecutive observations: a human blocker produces
		// ≥20 dB at the 20 ms maintenance cadence, while 4σ fading jumps
		// stay below this.
		BlockDropDB:         8,
		UnblockRiseDB:       3,
		DeviationDeadbandDB: 0.5,
		HistoryLen:          8,
	}
}

// Status is the tracker's verdict for one beam after an observation.
type Status struct {
	// Blocked reports that the beam's path is occluded; its power should be
	// re-purposed to other beams rather than chased with re-alignment.
	Blocked bool
	// DropDB is the smoothed power loss relative to the anchor (positive =
	// loss).
	DropDB float64
	// Deviation is the estimated angular misalignment magnitude (radians)
	// explaining DropDB via the beam pattern; 0 when inside the deadband or
	// blocked. The sign is ambiguous: the true offset is ±Deviation.
	Deviation float64
}

type beamState struct {
	anchorDB float64
	ewma     *dsp.EWMA
	times    []float64
	powers   []float64 // smoothed dB history
	blocked  bool
}

// Tracker watches K beams.
type Tracker struct {
	u   *antenna.ULA
	cfg Config
	bs  []beamState
}

// New builds a tracker for the array u with initial per-beam powers
// (linear). Anchors are set to the initial powers.
func New(u *antenna.ULA, cfg Config, initPowers []float64) (*Tracker, error) {
	if len(initPowers) == 0 {
		return nil, fmt.Errorf("track: no beams")
	}
	if cfg.SmoothAlpha <= 0 || cfg.SmoothAlpha > 1 {
		return nil, fmt.Errorf("track: bad smoothing alpha %g", cfg.SmoothAlpha)
	}
	if cfg.HistoryLen < 2 {
		return nil, fmt.Errorf("track: history length %d < 2", cfg.HistoryLen)
	}
	tr := &Tracker{u: u, cfg: cfg, bs: make([]beamState, len(initPowers))}
	for k, p := range initPowers {
		if p <= 0 {
			return nil, fmt.Errorf("track: non-positive initial power on beam %d", k)
		}
		db := dsp.DB(p)
		tr.bs[k] = beamState{
			anchorDB: db,
			ewma:     dsp.NewEWMA(cfg.SmoothAlpha),
			// Full-capacity history up front: observeBeam trims in place at
			// HistoryLen, so these never regrow — a tracker rebuilt on every
			// retrain would otherwise leak growth reallocations into the
			// pinned-zero-alloc steady state.
			times:  make([]float64, 0, cfg.HistoryLen+1),
			powers: make([]float64, 0, cfg.HistoryLen+1),
		}
		tr.bs[k].ewma.Update(db)
	}
	return tr, nil
}

// NumBeams returns the number of tracked beams.
func (tr *Tracker) NumBeams() int { return len(tr.bs) }

// Observe folds one per-beam power measurement (linear, from
// super-resolution) taken at time t into the tracker and returns the
// per-beam statuses.
func (tr *Tracker) Observe(t float64, powers []float64) ([]Status, error) {
	return tr.ObserveInto(nil, t, powers)
}

// ObserveInto is Observe writing the per-beam statuses into dst
// (allocated when nil or too short), so the maintenance tick can fold an
// observation without allocating. The powers slice is only read during
// the call — the tracker never retains it.
func (tr *Tracker) ObserveInto(dst []Status, t float64, powers []float64) ([]Status, error) {
	if len(powers) != len(tr.bs) {
		return nil, fmt.Errorf("track: %d powers for %d beams", len(powers), len(tr.bs))
	}
	if cap(dst) < len(powers) {
		dst = make([]Status, len(powers))
	}
	dst = dst[:len(powers)]
	for k := range powers {
		dst[k] = tr.observeBeam(k, t, powers[k])
	}
	return dst, nil
}

func (tr *Tracker) observeBeam(k int, t, power float64) Status {
	b := &tr.bs[k]
	db := -200.0 // floor for dead beams
	if power > 0 {
		db = dsp.DB(power)
	}
	rawPrev := b.ewma.Value()
	smooth := b.ewma.Update(db)
	b.times = append(b.times, t)
	b.powers = append(b.powers, smooth)
	if len(b.times) > tr.cfg.HistoryLen {
		// Trim by copying down instead of re-slicing forward: the backing
		// arrays then stabilize at HistoryLen+1 and the appends above stop
		// allocating (the maintenance tick is pinned to zero allocations).
		copy(b.times, b.times[1:])
		b.times = b.times[:len(b.times)-1]
		copy(b.powers, b.powers[1:])
		b.powers = b.powers[:len(b.powers)-1]
	}
	drop := b.anchorDB - smooth

	// Blockage: a steep fall in the RAW (pre-smoothing) series — either an
	// instantaneous drop or a steep fitted slope over the recent window.
	instantDrop := rawPrev - db
	slope := tr.slopeDBPerSec(b)
	if !b.blocked {
		if instantDrop >= tr.cfg.BlockDropDB || -slope >= tr.cfg.BlockSlopeDBPerSec {
			b.blocked = true
		}
	} else if drop <= tr.cfg.UnblockRiseDB {
		b.blocked = false
	}

	st := Status{Blocked: b.blocked, DropDB: drop}
	if !b.blocked && drop > tr.cfg.DeviationDeadbandDB {
		// drop is a power ratio in dB; the array-factor inverse wants the
		// amplitude ratio 10^(−drop/20).
		st.Deviation = tr.u.InvertArrayFactor(dsp.AmpFromDB(-drop))
	}
	return st
}

// slopeDBPerSec fits a line to the recent smoothed history.
func (tr *Tracker) slopeDBPerSec(b *beamState) float64 {
	n := len(b.times)
	if n < 2 {
		return 0
	}
	dt := (b.times[n-1] - b.times[0]) / float64(n-1)
	if dt <= 0 {
		return 0
	}
	return dsp.SlopePerSample(b.powers) / dt
}

// Anchor re-references beam k to the given power (linear), typically after
// a successful re-alignment, so future drops are measured from the new
// optimum.
func (tr *Tracker) Anchor(k int, power float64) error {
	if k < 0 || k >= len(tr.bs) {
		return fmt.Errorf("track: beam %d out of range", k)
	}
	if power <= 0 {
		return fmt.Errorf("track: non-positive anchor power")
	}
	b := &tr.bs[k]
	b.anchorDB = dsp.DB(power)
	b.ewma.Reset()
	b.ewma.Update(b.anchorDB)
	b.times = b.times[:0]
	b.powers = b.powers[:0]
	b.blocked = false
	return nil
}

// Reanchor re-references every beam to the given powers (linear) in
// place — state-for-state equivalent to building a fresh tracker with New,
// but reusing the retained history storage so a re-anchoring maintenance
// round stays off the allocator. The beam count must match; use New when
// the beam set changes.
func (tr *Tracker) Reanchor(initPowers []float64) error {
	if len(initPowers) != len(tr.bs) {
		return fmt.Errorf("track: %d powers for %d beams", len(initPowers), len(tr.bs))
	}
	for k, p := range initPowers {
		if err := tr.Anchor(k, p); err != nil {
			return err
		}
	}
	return nil
}

// Blocked reports whether beam k is currently marked blocked.
func (tr *Tracker) Blocked(k int) bool { return tr.bs[k].blocked }

// SmoothedDB returns beam k's current smoothed power in dB.
func (tr *Tracker) SmoothedDB(k int) float64 { return tr.bs[k].ewma.Value() }

// Candidates returns the two candidate re-alignment angles for a beam
// currently steered at angle with estimated deviation dev: the manager
// probes one; if SNR does not improve, the other is correct (§4.2).
func Candidates(angle, dev float64) (first, second float64) {
	return angle + dev, angle - dev
}

// RotationFromDrop estimates the common rotation angle of a directional UE
// from the drop (dB) in received power when only the UE end rotates
// (§4.4): it inverts the UE's own array factor.
func RotationFromDrop(ue *antenna.ULA, dropDB float64) float64 {
	if dropDB <= 0 {
		return 0
	}
	return ue.InvertArrayFactor(dsp.AmpFromDB(-dropDB))
}

// TranslationFromDrop estimates the common misalignment angle when a UE
// translation misaligns both the gNB and UE beams by the same angle (§4.4):
// the drop is the product of both array factors, inverted numerically.
func TranslationFromDrop(gnb, ue *antenna.ULA, dropDB float64) float64 {
	if dropDB <= 0 {
		return 0
	}
	target := dsp.AmpFromDB(-dropDB) // combined amplitude ratio
	// Bisect on the monotone main-lobe product AF_gnb(Δ)·AF_ue(Δ).
	lo, hi := 0.0, smallestFirstNull(gnb, ue)
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if gnb.ArrayFactor(0, mid)*ue.ArrayFactor(0, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func smallestFirstNull(a, b *antenna.ULA) float64 {
	null := func(u *antenna.ULA) float64 {
		s := u.Lambda / (float64(u.N) * u.Spacing)
		if s > 1 {
			s = 1
		}
		return math.Asin(s)
	}
	return math.Min(null(a), null(b))
}
