package track

import "mmreliable/internal/core"

// Digest folds the tracker's semantic state — per-beam anchors, EWMA
// values, smoothed history windows, and blocked flags — into d, in beam
// order. Part of the service layer's restore-verification chain: two
// trackers that fold equal continue identically.
func (tr *Tracker) Digest(d *core.Digest) {
	d.Int(len(tr.bs))
	for i := range tr.bs {
		b := &tr.bs[i]
		d.Float64(b.anchorDB)
		d.Float64(b.ewma.Value())
		d.Bool(b.ewma.Started())
		d.Floats(b.times)
		d.Floats(b.powers)
		d.Bool(b.blocked)
	}
}
