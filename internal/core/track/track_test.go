package track

import (
	"math"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/dsp"
)

func ula8() *antenna.ULA { return antenna.NewULA(8, 28e9) }

func newTracker(t *testing.T, powers ...float64) *Tracker {
	t.Helper()
	tr, err := New(ula8(), DefaultConfig(), powers)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	u := ula8()
	if _, err := New(u, DefaultConfig(), nil); err == nil {
		t.Fatal("no beams should fail")
	}
	if _, err := New(u, DefaultConfig(), []float64{0}); err == nil {
		t.Fatal("zero power should fail")
	}
	cfg := DefaultConfig()
	cfg.SmoothAlpha = 0
	if _, err := New(u, cfg, []float64{1}); err == nil {
		t.Fatal("bad alpha should fail")
	}
	cfg = DefaultConfig()
	cfg.HistoryLen = 1
	if _, err := New(u, cfg, []float64{1}); err == nil {
		t.Fatal("short history should fail")
	}
}

func TestObserveLengthMismatch(t *testing.T) {
	tr := newTracker(t, 1, 0.5)
	if _, err := tr.Observe(0, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestStableChannelNoAction(t *testing.T) {
	tr := newTracker(t, 1e-8, 0.5e-8)
	for i := 0; i < 20; i++ {
		st, err := tr.Observe(float64(i)*0.02, []float64{1e-8, 0.5e-8})
		if err != nil {
			t.Fatal(err)
		}
		for k, s := range st {
			if s.Blocked {
				t.Fatalf("beam %d spuriously blocked", k)
			}
			if s.Deviation != 0 {
				t.Fatalf("beam %d spurious deviation %g", k, s.Deviation)
			}
		}
	}
	if tr.NumBeams() != 2 {
		t.Fatalf("NumBeams %d", tr.NumBeams())
	}
}

func TestBlockageDetectedOnFastDrop(t *testing.T) {
	tr := newTracker(t, 1e-8, 0.5e-8)
	// Beam 1 loses 10 dB between consecutive 20 ms observations: the
	// instantaneous-drop detector must fire; beam 0 stays clean.
	tr.Observe(0.00, []float64{1e-8, 0.5e-8})
	st, _ := tr.Observe(0.02, []float64{1e-8, 0.5e-9})
	if !st[1].Blocked {
		t.Fatal("fast 10 dB drop not flagged as blockage")
	}
	if st[0].Blocked {
		t.Fatal("unblocked beam flagged")
	}
	// Deviation must not be reported for a blocked beam.
	if st[1].Deviation != 0 {
		t.Fatalf("blocked beam reported deviation %g", st[1].Deviation)
	}
	if !tr.Blocked(1) || tr.Blocked(0) {
		t.Fatal("Blocked() inconsistent")
	}
}

func TestBlockageClearsOnRecovery(t *testing.T) {
	tr := newTracker(t, 1e-8)
	tr.Observe(0.00, []float64{1e-8})
	st, _ := tr.Observe(0.02, []float64{1e-10})
	if !st[0].Blocked {
		t.Fatal("not blocked")
	}
	// Power returns; after the EWMA converges back near the anchor the
	// blocked flag must clear.
	var last Status
	for i := 0; i < 20; i++ {
		sts, _ := tr.Observe(0.04+float64(i)*0.02, []float64{1e-8})
		last = sts[0]
	}
	if last.Blocked {
		t.Fatal("blockage did not clear after recovery")
	}
}

func TestMobilityDeviationEstimate(t *testing.T) {
	// A gradual drop following the beam pattern must yield a deviation
	// estimate close to the true misalignment.
	u := ula8()
	trueDev := dsp.Rad(4)
	p0 := 1e-8
	tr := newTracker(t, p0)
	// Walk the misalignment up smoothly over 10 observations (mobility-like
	// rates: ~0.4°/observation), ending at trueDev.
	var final Status
	for i := 1; i <= 16; i++ {
		dev := trueDev * math.Min(1, float64(i)/10) // ramp, then hold while
		// the EWMA converges (tracking runs continuously in practice)
		a := u.ArrayFactor(0, dev)
		p := p0 * a * a
		sts, err := tr.Observe(float64(i)*0.02, []float64{p})
		if err != nil {
			t.Fatal(err)
		}
		final = sts[0]
	}
	if final.Blocked {
		t.Fatal("gradual drop misclassified as blockage")
	}
	if final.Deviation == 0 {
		t.Fatal("no deviation estimate")
	}
	// EWMA lag keeps the estimate slightly behind truth; ±1° window as in
	// the paper's Fig. 17b.
	if math.Abs(final.Deviation-trueDev) > dsp.Rad(1.0) {
		t.Fatalf("deviation %g° want %g°±1°", dsp.Deg(final.Deviation), dsp.Deg(trueDev))
	}
}

func TestDeviationDeadband(t *testing.T) {
	tr := newTracker(t, 1e-8)
	// 0.2 dB wiggle: inside the deadband, no refinement.
	st, _ := tr.Observe(0.02, []float64{1e-8 * dsp.FromDB(-0.2)})
	if st[0].Deviation != 0 {
		t.Fatalf("deadband violated: %g", st[0].Deviation)
	}
}

func TestAnchorResets(t *testing.T) {
	tr := newTracker(t, 1e-8)
	tr.Observe(0.02, []float64{1e-9})
	if err := tr.Anchor(0, 2e-9); err != nil {
		t.Fatal(err)
	}
	st, _ := tr.Observe(0.04, []float64{2e-9})
	if st[0].Blocked || st[0].DropDB > 0.3 || st[0].Deviation != 0 {
		t.Fatalf("anchor did not reset: %+v", st[0])
	}
	if err := tr.Anchor(5, 1); err == nil {
		t.Fatal("out-of-range anchor should fail")
	}
	if err := tr.Anchor(0, 0); err == nil {
		t.Fatal("zero anchor power should fail")
	}
}

func TestZeroPowerObservation(t *testing.T) {
	tr := newTracker(t, 1e-8)
	st, err := tr.Observe(0.02, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !st[0].Blocked {
		t.Fatal("total power loss must flag blockage")
	}
}

func TestCandidates(t *testing.T) {
	a, b := Candidates(0.5, 0.1)
	if a != 0.6 || b != 0.4 {
		t.Fatalf("candidates %g %g", a, b)
	}
}

func TestSmoothedDB(t *testing.T) {
	tr := newTracker(t, 1e-8)
	if got := tr.SmoothedDB(0); math.Abs(got+80) > 1e-9 {
		t.Fatalf("smoothed = %g", got)
	}
}

func TestRotationFromDrop(t *testing.T) {
	ue := antenna.NewULA(4, 28e9)
	// Rotate the UE by 6°: the UE gain falls by 2·AmpDB(AF).
	trueRot := dsp.Rad(6)
	// Power drop (dB) of a misaligned matched beam: −10·log10(AF²).
	dropDB := -dsp.AmpDB(ue.ArrayFactor(0, trueRot))
	got := RotationFromDrop(ue, dropDB)
	if math.Abs(got-trueRot) > dsp.Rad(0.5) {
		t.Fatalf("rotation %g° want 6°", dsp.Deg(got))
	}
	if RotationFromDrop(ue, 0) != 0 || RotationFromDrop(ue, -3) != 0 {
		t.Fatal("non-positive drop should give 0")
	}
}

func TestTranslationFromDrop(t *testing.T) {
	gnb := ula8()
	ue := antenna.NewULA(4, 28e9)
	// Translation misaligns both ends by the same 3°.
	trueDev := dsp.Rad(3)
	combined := gnb.ArrayFactor(0, trueDev) * ue.ArrayFactor(0, trueDev)
	dropDB := -dsp.AmpDB(combined)
	got := TranslationFromDrop(gnb, ue, dropDB)
	if math.Abs(got-trueDev) > dsp.Rad(0.4) {
		t.Fatalf("translation deviation %g° want 3°", dsp.Deg(got))
	}
	if TranslationFromDrop(gnb, ue, 0) != 0 {
		t.Fatal("zero drop should give 0")
	}
	// Catastrophic drops clamp near the first null, not beyond.
	huge := TranslationFromDrop(gnb, ue, 60)
	if huge > smallestFirstNull(gnb, ue)+1e-9 {
		t.Fatalf("deviation %g beyond first null", huge)
	}
}

func TestBlockageVsMobilityDiscrimination(t *testing.T) {
	// The same 10 dB total loss: fast (2 observations) → blockage; slow
	// (40 observations) → mobility. This is the §4.1/§4.2 decision.
	fast := newTracker(t, 1e-8)
	fast.Observe(0, []float64{1e-8})
	stF, _ := fast.Observe(0.02, []float64{1e-9})
	if !stF[0].Blocked {
		t.Fatal("fast loss not classified as blockage")
	}
	slow := newTracker(t, 1e-8)
	var last Status
	for i := 1; i <= 40; i++ {
		db := -10 * float64(i) / 40
		sts, _ := slow.Observe(float64(i)*0.02, []float64{1e-8 * dsp.FromDB(db)})
		last = sts[0]
	}
	if last.Blocked {
		t.Fatal("slow loss misclassified as blockage")
	}
	if last.Deviation == 0 {
		t.Fatal("slow loss should produce a deviation estimate")
	}
}

// Property: a tracker fed monotonically falling powers reports
// monotonically growing DropDB (smoothing never inverts a monotone trend).
func TestDropMonotoneProperty(t *testing.T) {
	tr := newTracker(t, 1e-8)
	prev := -1.0
	for i := 1; i <= 30; i++ {
		p := 1e-8 * dsp.FromDB(-0.2*float64(i))
		sts, err := tr.Observe(float64(i)*0.02, []float64{p})
		if err != nil {
			t.Fatal(err)
		}
		if sts[0].DropDB < prev {
			t.Fatalf("step %d: drop %g fell below previous %g", i, sts[0].DropDB, prev)
		}
		prev = sts[0].DropDB
	}
}

// Property: deviation estimates are monotone in the drop — more power loss
// can never map to a smaller angular offset (the array factor main lobe is
// monotone).
func TestDeviationMonotoneInDrop(t *testing.T) {
	u := ula8()
	prev := -1.0
	for _, dropDB := range []float64{0.6, 1, 2, 4, 8, 12} {
		dev := u.InvertArrayFactor(dsp.AmpFromDB(-dropDB))
		if dev < prev {
			t.Fatalf("drop %g dB: deviation %g below previous %g", dropDB, dev, prev)
		}
		prev = dev
	}
}
