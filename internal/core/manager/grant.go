package manager

// This file factors the manager's training-slot decision into an injectable
// arbitration point. The Fig. 9 state machine decides WHEN a sounding
// opportunity is due (maintenance cadence, CC-refresh cadence, emergency
// confirmation windows) exactly as before; a ProbeGrant decides whether the
// due opportunity may actually fire. The default (nil, or SelfScheduled)
// always grants, reproducing the single-link behaviour byte for byte. A
// base station serving many UEs injects a budget-aware grant per session so
// a shared CSI-RS probe budget bounds aggregate maintenance overhead — see
// internal/station.

// ProbeKind classifies a sounding opportunity presented to a ProbeGrant.
type ProbeKind int

const (
	// ProbeMaintain is the periodic CSI-RS maintenance round (§5.2): one
	// probe plus at most one recovery probe, occasionally followed by
	// refinement probes. Denying it leaves the round due — the manager
	// re-requests every slot until granted.
	ProbeMaintain ProbeKind = iota
	// ProbeCC is the lightweight constructive-combining phase refresh
	// (one probe). Denying it backs the refresh off by one CC period.
	ProbeCC
	// ProbeEmergency is the blockage-onset emergency maintenance round:
	// the link has been below threshold for emergencyConfirmSlots slots
	// and power must be reallocated away from the blocked beam NOW. A
	// budget scheduler should treat this as a preemption and grant it
	// immediately; denying it only delays the outage-recovery ladder.
	ProbeEmergency
)

// String names the kind for diagnostics.
func (k ProbeKind) String() string {
	switch k {
	case ProbeMaintain:
		return "maintain"
	case ProbeCC:
		return "cc-refresh"
	case ProbeEmergency:
		return "emergency"
	default:
		return "unknown"
	}
}

// ProbeGrant arbitrates the manager's sounding opportunities. Grant is
// called at most a few times per slot, from the goroutine stepping the
// manager; implementations need no locking as long as each manager's grant
// is owned by the goroutine that steps it. Returning false suppresses the
// opportunity; the state machine itself is never forked — timers, outage
// ladders, and retraining behave exactly as in the self-scheduled manager.
type ProbeGrant interface {
	Grant(t float64, kind ProbeKind) bool
}

// SelfScheduled is the default grant: every due opportunity fires, i.e.
// the manager schedules its own training slots exactly as it always has.
type SelfScheduled struct{}

// Grant implements ProbeGrant.
func (SelfScheduled) Grant(float64, ProbeKind) bool { return true }

// SetProbeGrant installs the sounding arbiter. nil restores the default
// self-scheduled behaviour. Must not be called mid-slot.
func (g *Manager) SetProbeGrant(pg ProbeGrant) { g.probeGrant = pg }

// grantAllows consults the installed grant (default: allow).
func (g *Manager) grantAllows(t float64, kind ProbeKind) bool {
	if g.probeGrant == nil {
		return true
	}
	return g.probeGrant.Grant(t, kind)
}

// Established reports whether the manager currently transmits a trained
// multi-beam (false while acquiring or retraining from scratch).
func (g *Manager) Established() bool { return g.w != nil }

// TrackedAoD returns the departure angle of the manager's reference
// (strongest tracked) path and whether one is available — the angular
// input the SDMA planner thresholds when deciding which established
// sessions may share a slot. Only meaningful while Established.
func (g *Manager) TrackedAoD() (float64, bool) {
	if g.w == nil || len(g.angles) == 0 {
		return 0, false
	}
	return g.angles[0], true
}

// NextMaintainAt returns the time the next periodic maintenance round
// becomes due — the scheduler input for "does this session want a probe
// this frame".
func (g *Manager) NextMaintainAt() float64 { return g.nextMaintain }

// ProbesUsed returns the cumulative CSI-RS/SSB probe count the manager's
// sounder has issued (training sweeps included) — the raw overhead figure
// a serving station accounts against its probe budget.
func (g *Manager) ProbesUsed() int { return g.sounder.Probes }
