package manager

import (
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// TestSymbolDebtAccounting pins the §5.2-style overhead bookkeeping: on a
// static link with no refinements, steady-state training slots must equal
// (maintenance + CC-refresh probes)/14 within rounding, far below the
// one-slot-per-probe figure.
func TestSymbolDebtAccounting(t *testing.T) {
	mgr := newManager(t, 21)
	sc := staticScenario(1.0)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	nSlots := int(math.Ceil(1.0 / nr.Mu3().SlotDuration()))
	establishSlots := mgr.slotsFor(float64(mgr.cb.Len())*nr.Mu3().SSBDuration()) +
		(mgr.cfg.MaxBeams + 2*(mgr.cfg.MaxBeams-1) + (mgr.cfg.MaxBeams - 1))
	steady := mgr.TrainingSlots - establishSlots
	// Probe volume: 1 maintenance probe per 20 ms (+ occasional recovery or
	// refinement probes) plus 1 CC refresh per ms when eligible. At symbol
	// granularity that is at most ~(50 + 1000 + slack)/14 ≈ 90 slots per
	// second; at slot granularity it would be >1000.
	if steady > 150 {
		t.Fatalf("steady-state training slots %d: symbol-debt accounting broken", steady)
	}
	if steady <= 0 {
		t.Fatal("no maintenance ran at all")
	}
	frac := float64(steady) / float64(nSlots)
	if frac > 0.02 {
		t.Fatalf("steady-state overhead %.2f%%, want <2%%", frac*100)
	}
}

// TestRetrainReasonDiagnostics verifies the manager records why it
// retrained.
func TestRetrainReasonDiagnostics(t *testing.T) {
	mgr := newManager(t, 22)
	sc := staticScenario(0.3)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	if mgr.RetrainReasons["initial"] != 1 {
		t.Fatalf("reasons %v missing the initial training", mgr.RetrainReasons)
	}
	total := 0
	for _, n := range mgr.RetrainReasons {
		total += n
	}
	if total != mgr.Retrains {
		t.Fatalf("reason counts %v don't sum to Retrains %d", mgr.RetrainReasons, mgr.Retrains)
	}
}

// TestResetForcesRetraining: after Reset, the manager retrains from scratch
// and comes back up.
func TestResetForcesRetraining(t *testing.T) {
	mgr := newManager(t, 23)
	sc := staticScenario(0.3)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	if mgr.NumBeams() == 0 {
		t.Fatal("not established before reset")
	}
	retrains := mgr.Retrains
	mgr.Reset()
	if mgr.ActiveWeights() != nil {
		t.Fatal("Reset left active weights")
	}
	sc2 := staticScenario(0.3)
	out, err := (sim.Runner{}).Run(sc2, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Retrains != retrains+1 {
		t.Fatalf("retrains %d, want %d", mgr.Retrains, retrains+1)
	}
	if out["mmreliable"].Summary.MeanSNRdB < 15 {
		t.Fatalf("post-reset SNR %g", out["mmreliable"].Summary.MeanSNRdB)
	}
}

// TestManagerHonorsCustomBudget: a 10 dB weaker budget shifts the measured
// SNR by ≈10 dB — the budget plumbing is consistent end to end.
func TestManagerHonorsCustomBudget(t *testing.T) {
	run := func(txDBm float64, seed int64) float64 {
		b := link.DefaultBudget()
		b.TxPowerDBm = txDBm
		mgr, err := New("m", antenna.NewULA(8, 28e9), b, nr.Mu3(), DefaultConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		out, err := (sim.Runner{Warmup: 0.05}).Run(staticScenario(0.3), mgr)
		if err != nil {
			t.Fatal(err)
		}
		return out["m"].Summary.MeanSNRdB
	}
	hi := run(15, 31)
	lo := run(5, 31)
	if math.Abs((hi-lo)-10) > 1.5 {
		t.Fatalf("10 dB budget change moved SNR by %g dB", hi-lo)
	}
}
