package manager

import (
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// TestDirectionalUERotationTracking exercises the §4.4 loop end-to-end: a
// directional 8-element UE rotates at the paper's 24°/s VR rate; the
// manager must detect the common-mode per-beam power drop, classify it as
// UE rotation, and keep re-aligning the UE multi-beam.
func TestDirectionalUERotationTracking(t *testing.T) {
	run := func(tracking bool, name string) (link.Summary, *Manager) {
		cfg := DefaultConfig()
		cfg.ProactiveTracking = tracking
		mgr, err := New(name, antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		sc := sim.RotatingUE(11, 24)
		sc.Duration = 1.5 // 36° total rotation: well past the UE beamwidth
		out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sc, mgr)
		if err != nil {
			t.Fatal(err)
		}
		return out[name].Summary, mgr
	}
	tracked, mgr := run(true, "tracked")
	untracked, mgrNo := run(false, "untracked")

	if mgr.Refinements < 10 {
		t.Fatalf("only %d UE refinements under continuous rotation", mgr.Refinements)
	}
	// Without tracking the only recourse is full retraining (the tracker
	// eventually declares every beam blocked); proactive tracking must
	// avoid most of that and deliver at least the same reliability.
	if mgr.Retrains >= mgrNo.Retrains {
		t.Fatalf("tracking did not reduce retrains: %d vs %d", mgr.Retrains, mgrNo.Retrains)
	}
	if tracked.Reliability < untracked.Reliability-0.01 {
		t.Fatalf("tracked reliability %g below untracked %g",
			tracked.Reliability, untracked.Reliability)
	}
	if tracked.Reliability < 0.9 {
		t.Fatalf("tracked reliability %g under rotation", tracked.Reliability)
	}
	// The rotation costs bounded SNR: the tracked link must stay within a
	// few dB of the untracked link's retrain-refreshed average.
	if tracked.MeanSNRdB < untracked.MeanSNRdB-3 {
		t.Fatalf("tracked SNR %g dB too far below untracked %g dB",
			tracked.MeanSNRdB, untracked.MeanSNRdB)
	}
}

// TestDirectionalUEGainsOverOmni verifies the UE array actually contributes
// link budget: the same static link with a directional UE must reach higher
// SNR than with a quasi-omni UE once the UE beam is trained.
func TestDirectionalUEGainsOverOmni(t *testing.T) {
	run := func(directional bool, name string) link.Summary {
		mgr, err := New(name, antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), DefaultConfig(), rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatal(err)
		}
		sc := sim.RotatingUE(12, 0) // directional UE, zero rotation
		if !directional {
			sc.UEArray = nil
		}
		sc.Duration = 0.3
		out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sc, mgr)
		if err != nil {
			t.Fatal(err)
		}
		return out[name].Summary
	}
	dir := run(true, "dir")
	omni := run(false, "omni")
	// An 8-element UE adds up to 9 dB; require a clear chunk of it.
	if dir.MeanSNRdB < omni.MeanSNRdB+4 {
		t.Fatalf("directional UE SNR %g dB vs omni %g dB: expected ≥4 dB gain",
			dir.MeanSNRdB, omni.MeanSNRdB)
	}
}
