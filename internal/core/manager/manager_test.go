package manager

import (
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

func newManager(t *testing.T, seed int64) *Manager {
	t.Helper()
	m, err := New("mmreliable", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func staticScenario(dur float64) *sim.Scenario {
	return &sim.Scenario{
		Env:      env.ConferenceRoom(env.Band28GHz()),
		GNB:      env.GNBPose(true),
		UE:       motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 6, Y: 2.6}, Facing: math.Pi}},
		Duration: dur,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBeams = 0
	if _, err := New("x", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("MaxBeams 0 should fail")
	}
	cfg = DefaultConfig()
	cfg.MaintainPeriod = 0
	if _, err := New("x", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero maintain period should fail")
	}
	cfg = DefaultConfig()
	cfg.NumSC = 48
	if _, err := New("x", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("non-pow2 subcarriers should fail")
	}
}

func TestEstablishesMultiBeamOnStaticLink(t *testing.T) {
	mgr := newManager(t, 1)
	sc := staticScenario(0.2)
	out, err := sim.Runner{}.Run(sc, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.NumBeams() < 2 {
		t.Fatalf("established %d beams, want ≥2 in a reflective room", mgr.NumBeams())
	}
	if mgr.ActiveWeights() == nil {
		t.Fatal("no active weights")
	}
	s := out["mmreliable"].Summary
	// Most of the 200 ms is data at healthy SNR; training at the start plus
	// periodic 1-slot maintenance is a small charge.
	if s.Reliability < 0.85 {
		t.Fatalf("static reliability %g", s.Reliability)
	}
	if s.MeanSNRdB < 15 {
		t.Fatalf("mean SNR %g", s.MeanSNRdB)
	}
	if mgr.Retrains != 1 {
		t.Fatalf("retrains %d, want exactly the initial one", mgr.Retrains)
	}
}

// smallSpreadScenario builds a link whose reflection has sub-ns excess
// delay (ripple period ≫ 400 MHz), the regime where constructive combining
// pays off across the whole band (the paper's indoor Fig. 15 setup).
func smallSpreadScenario(dur float64) *sim.Scenario {
	e := env.NewEnvironment(env.Band28GHz(), env.Wall{
		Seg: env.Segment{A: env.Vec2{X: -1, Y: 1.0}, B: env.Vec2{X: 8, Y: 1.0}},
		Mat: env.Metal,
	})
	return &sim.Scenario{
		Env:      e,
		GNB:      env.Pose{Pos: env.Vec2{X: 0, Y: 0}},
		UE:       motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 7, Y: 0}, Facing: math.Pi}},
		Duration: dur,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
	}
}

func TestMultiBeamBeatsSingleBeamSNR(t *testing.T) {
	// §6.1: with a strong low-excess-delay reflector, the constructive
	// multi-beam's steady-state SNR exceeds the single strongest beam's.
	mgr := newManager(t, 2)
	sc := smallSpreadScenario(0.2)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	if mgr.NumBeams() < 2 {
		t.Fatalf("selected %d beams; reflector should be worth a lobe", mgr.NumBeams())
	}
	m := sc.ChannelAt(0.2)
	mbSNR := link.DefaultBudget().WidebandSNRdB(m.EffectiveWideband(mgr.ActiveWeights(), mgr.offsets))
	sbSNR := link.DefaultBudget().WidebandSNRdB(m.EffectiveWideband(m.Tx.SingleBeam(m.Paths[0].AoD), mgr.offsets))
	if mbSNR <= sbSNR {
		t.Fatalf("multi-beam %g dB not above single beam %g dB", mbSNR, sbSNR)
	}
	if mbSNR-sbSNR > 4 {
		t.Fatalf("implausible gain %g dB", mbSNR-sbSNR)
	}
}

func TestBeamSelectionNeverWorseThanSingle(t *testing.T) {
	// On the large-delay-spread conference-room channel, beam-set selection
	// must keep the manager at least at single-beam level.
	mgr := newManager(t, 12)
	sc := staticScenario(0.2)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	m := sc.ChannelAt(0.2)
	mbSNR := link.DefaultBudget().WidebandSNRdB(m.EffectiveWideband(mgr.ActiveWeights(), mgr.offsets))
	sbSNR := link.DefaultBudget().WidebandSNRdB(m.EffectiveWideband(m.Tx.SingleBeam(m.Paths[0].AoD), mgr.offsets))
	// The manager may sacrifice up to SelectionTolDB for an extra lobe
	// (reliability-first); allow that plus estimation slack.
	if mbSNR < sbSNR-DefaultConfig().SelectionTolDB-0.5 {
		t.Fatalf("manager %g dB fell below single beam %g dB", mbSNR, sbSNR)
	}
}

func TestSurvivesSingleBeamBlockage(t *testing.T) {
	// Fig. 16: blocking one path of the multi-beam must not cause outage.
	mgr := newManager(t, 3)
	sc := staticScenario(1.0)
	sc.Blockage = events.Schedule{{
		PathIndex: 0, Start: 0.4, Duration: 0.3, DepthDB: 26,
		RampTime: events.RampFor(26),
	}}
	out, err := sim.Runner{KeepSeries: true}.Run(sc, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res := out["mmreliable"]
	// Data slots during the blockage window must stay above outage.
	for i, slot := range res.Series {
		tm := res.Times[i]
		if tm > 0.45 && tm < 0.65 && !slot.Training {
			if slot.SNRdB < link.OutageThresholdDB {
				t.Fatalf("outage at t=%.3f despite multi-beam (SNR %.1f)", tm, slot.SNRdB)
			}
		}
	}
	if res.Summary.Reliability < 0.9 {
		t.Fatalf("reliability %g under single-path blockage", res.Summary.Reliability)
	}
	if mgr.BlockageDrops == 0 {
		t.Fatal("blockage never detected/reallocated")
	}
}

func TestTracksMobileUser(t *testing.T) {
	// Fig. 17c: a translating user at 1.5 m/s; with proactive tracking the
	// link holds, without it the beams drift off the user.
	mkScenario := func() *sim.Scenario {
		sc := staticScenario(1.0)
		target := env.GNBPose(true).Pos
		sc.UE = motion.Translation{
			Start:       env.Vec2{X: 6, Y: 2.0},
			Vel:         env.Vec2{X: 0, Y: 1.5},
			TrackTarget: &target,
		}
		return sc
	}
	tracked := newManager(t, 4)
	cfgNo := DefaultConfig()
	cfgNo.ProactiveTracking = false
	noTrack, err := New("notrack", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfgNo, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	outT, err := sim.Runner{}.Run(mkScenario(), tracked)
	if err != nil {
		t.Fatal(err)
	}
	outN, err := sim.Runner{}.Run(mkScenario(), noTrack)
	if err != nil {
		t.Fatal(err)
	}
	rt := outT["mmreliable"].Summary
	rn := outN["notrack"].Summary
	if rt.Reliability < 0.85 {
		t.Fatalf("tracked reliability %g", rt.Reliability)
	}
	if tracked.Refinements == 0 {
		t.Fatal("no refinements under mobility")
	}
	// Indoors the margin keeps both above the outage threshold, so the
	// damage shows in the achieved rate: untracked beams drift off the
	// user and the MCS falls (Fig. 17c's no-tracking collapse).
	if rn.MeanSNRdB >= rt.MeanSNRdB {
		t.Fatalf("no-tracking SNR %g dB not below tracking %g dB", rn.MeanSNRdB, rt.MeanSNRdB)
	}
	if rn.MeanThroughput >= rt.MeanThroughput {
		t.Fatalf("no-tracking throughput %g not below tracking %g", rn.MeanThroughput, rt.MeanThroughput)
	}
}

func TestRetrainsWhenAllPathsBlocked(t *testing.T) {
	mgr := newManager(t, 5)
	sc := staticScenario(0.8)
	sc.Blockage = events.Schedule{{
		AllPaths: true, Start: 0.3, Duration: 0.2, DepthDB: 40,
		RampTime: events.RampFor(40),
	}}
	out, err := sim.Runner{}.Run(sc, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Retrains < 2 {
		t.Fatalf("retrains %d, want ≥2 (initial + recovery)", mgr.Retrains)
	}
	// The link must come back after the blockage clears.
	m := sc.ChannelAt(0.8)
	if mgr.ActiveWeights() == nil {
		t.Fatal("never re-established")
	}
	snr := link.DefaultBudget().WidebandSNRdB(m.EffectiveWideband(mgr.ActiveWeights(), mgr.offsets))
	if snr < link.OutageThresholdDB {
		t.Fatalf("post-recovery SNR %g", snr)
	}
	_ = out
}

func TestMaintenanceOverheadIsSmall(t *testing.T) {
	// §5.2: steady-state maintenance overhead ≲ 2–3% of air time.
	mgr := newManager(t, 6)
	sc := staticScenario(1.0)
	out, err := sim.Runner{}.Run(sc, mgr)
	if err != nil {
		t.Fatal(err)
	}
	totalSlots := out["mmreliable"].Summary
	_ = totalSlots
	nSlots := int(math.Ceil(1.0 / nr.Mu3().SlotDuration()))
	// Subtract the initial establishment (sweep + estimation).
	establishSlots := mgr.slotsFor(float64(mgr.cb.Len())*nr.Mu3().SSBDuration()) +
		(mgr.cfg.MaxBeams + 2*(mgr.cfg.MaxBeams-1) + (mgr.cfg.MaxBeams - 1))
	steady := mgr.TrainingSlots - establishSlots
	frac := float64(steady) / float64(nSlots)
	if frac > 0.04 {
		t.Fatalf("steady-state maintenance overhead %.1f%%", frac*100)
	}
	if steady <= 0 {
		t.Fatal("no maintenance ever ran")
	}
}

func TestConstructiveCombiningAblation(t *testing.T) {
	// Fig. 17c: tracking without CC yields lower SNR than tracking + CC,
	// in the small-spread regime where combining matters.
	run := func(cc bool, seed int64) float64 {
		cfg := DefaultConfig()
		cfg.ConstructiveCombining = cc
		mgr, err := New("m", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sc := smallSpreadScenario(0.3)
		out, err := sim.Runner{}.Run(sc, mgr)
		if err != nil {
			t.Fatal(err)
		}
		return out["m"].Summary.MeanSNRdB
	}
	withCC := run(true, 7)
	withoutCC := run(false, 7)
	if withCC <= withoutCC {
		t.Fatalf("CC (%g dB) not above no-CC (%g dB)", withCC, withoutCC)
	}
}

// TestNaturalMotion runs the manager under the paper's "natural motion"
// condition: translation with band-limited hand/cart jitter on position and
// heading. The proactive loop must hold the link.
func TestNaturalMotion(t *testing.T) {
	mgr := newManager(t, 51)
	sc := staticScenario(1.0)
	target := env.GNBPose(true).Pos
	base := motion.Translation{
		Start:       env.Vec2{X: 6, Y: 2.0},
		Vel:         env.Vec2{X: 0, Y: 1.0},
		TrackTarget: &target,
	}
	sc.UE = motion.NewJitter(base, 0.03, 0.02, rand.New(rand.NewSource(51)))
	out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sc, mgr)
	if err != nil {
		t.Fatal(err)
	}
	s := out["mmreliable"].Summary
	if s.Reliability < 0.9 {
		t.Fatalf("natural-motion reliability %g", s.Reliability)
	}
	if s.MeanSNRdB < 15 {
		t.Fatalf("natural-motion SNR %g dB", s.MeanSNRdB)
	}
}
