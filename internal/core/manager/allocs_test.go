package manager

import (
	"testing"

	"mmreliable/internal/sim"
)

// TestMaintainTickAllocs pins the tentpole acceptance criterion end to end:
// a steady-state maintenance round — CSI-RS probe, OFDM round trip, CIR,
// frequency-domain super-resolution fit, tracker observation — runs with
// ZERO heap allocations, working entirely out of the manager's persistent
// buffers and its scratch workspace (marked on entry, released on exit).
// TestEstablishAllocs pins the re-establishment path: a full retrain —
// SSB sweep, peak selection, per-beam probing with delay estimation,
// constructive-combining estimation, beam-set selection, weight
// composition — allocates nothing once the manager's establishment stores
// are warm. At metro scale blockage-driven data outages make retrains part
// of the steady state, so this path matters as much as the maintenance
// tick.
func TestEstablishAllocs(t *testing.T) {
	mgr := newManager(t, 7)
	sc := staticScenario(0.2)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	m := sc.ChannelAt(sc.Duration)
	tick := sc.Duration
	// Warm re-establishments settle every store (and the tracker rebuild
	// path, which only allocates when the beam count changes).
	for i := 0; i < 3; i++ {
		tick += mgr.cfg.MaintainPeriod
		mgr.establish(tick, m)
		mgr.maintain(tick+mgr.cfg.CCRefreshPeriod, m)
	}
	beams := mgr.NumBeams()
	if beams < 2 {
		t.Fatalf("established %d beams, want ≥2 in a reflective room", beams)
	}
	allocs := testing.AllocsPerRun(20, func() {
		tick += mgr.cfg.MaintainPeriod
		mgr.establish(tick, m)
		mgr.maintain(tick+mgr.cfg.CCRefreshPeriod, m)
	})
	if mgr.NumBeams() != beams {
		t.Fatalf("beam count drifted %d → %d on a static channel", beams, mgr.NumBeams())
	}
	if allocs != 0 {
		t.Fatalf("re-establishment allocates %.1f per op, want 0", allocs)
	}
}

func TestMaintainTickAllocs(t *testing.T) {
	mgr := newManager(t, 5)
	sc := staticScenario(0.2)
	// Establish the multi-beam link (initial training plus the first
	// maintenance rounds build the tracker and warm every buffer).
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	if mgr.NumBeams() < 2 {
		t.Fatalf("established %d beams, want ≥2 in a reflective room", mgr.NumBeams())
	}
	m := sc.ChannelAt(sc.Duration)
	// A few warm rounds let any anchor rebuild and arena growth settle.
	tick := sc.Duration
	for i := 0; i < 3; i++ {
		tick += mgr.cfg.MaintainPeriod
		mgr.maintain(tick, m)
	}
	retrains := mgr.Retrains
	allocs := testing.AllocsPerRun(20, func() {
		tick += mgr.cfg.MaintainPeriod
		mgr.maintain(tick, m)
	})
	if mgr.Retrains != retrains {
		t.Fatalf("maintenance triggered %d retrains on a healthy static link", mgr.Retrains-retrains)
	}
	if allocs != 0 {
		t.Fatalf("maintenance tick allocates %.1f per op, want 0", allocs)
	}
}
