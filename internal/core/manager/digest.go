package manager

import (
	"sort"

	"mmreliable/internal/core"
)

// Digest folds the manager's semantic state into d: the published beam
// geometry and weights, the scheduling clocks, the blockage/maintenance
// FSM, the tracker, and the cumulative stats. Scratch buffers and caches
// are deliberately excluded — they are recomputed, never decisions.
// Two managers that fold equal produce identical slot streams from here
// on, at any worker count (the digest reads only frame-boundary state).
func (g *Manager) Digest(d *core.Digest) {
	// Beam state.
	d.Floats(g.angles)
	d.Floats(g.relDelays)
	d.Int(len(g.beams))
	for _, b := range g.beams {
		d.Float64(b.Angle)
		d.Float64(b.Amp)
		d.Float64(b.Phase)
	}
	d.Bools(g.active)
	d.Floats(g.rssAnchor)
	d.Int(len(g.w))
	for _, c := range g.w {
		d.Complex(c)
	}
	d.Bool(g.needAnch)
	if g.tracker != nil {
		g.tracker.Digest(d)
	} else {
		d.Int(-1)
	}

	// Directional-UE state.
	d.Int(len(g.ueW))
	for _, c := range g.ueW {
		d.Complex(c)
	}
	d.Floats(g.ueAngles)
	d.Floats(g.ueAmps)

	// Operation scheduling.
	d.Int(g.trainRemaining)
	d.Bool(g.onTrainDone != nil)
	d.Float64(g.nextMaintain)
	d.Float64(g.nextCCRefresh)
	d.Bool(g.emergencyTried)
	d.Int(g.badSlots)
	d.Float64(g.trainDebt)

	// Cumulative accounting (sounder probes included — the probe stream's
	// position is part of what must replay identically).
	d.Int(g.sounder.Probes)
	d.Int(g.TrainingSlots)
	d.Int(g.Retrains)
	d.Int(g.Refinements)
	d.Int(g.BlockageDrops)
	d.Int(g.BudgetDenials)
	d.Int(len(g.RetrainReasons))
	keys := make([]string, 0, len(g.RetrainReasons))
	for k := range g.RetrainReasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d.Int(len(k))
		for _, r := range k {
			d.Int64(int64(r))
		}
		d.Int(g.RetrainReasons[k])
	}
}
