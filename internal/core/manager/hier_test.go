package manager

import (
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// TestHierarchicalTrainingEstablishes verifies the logarithmic training
// front end produces a working multi-beam on the reflective indoor link,
// with fewer training slots than the exhaustive sweep.
func TestHierarchicalTrainingEstablishes(t *testing.T) {
	run := func(hier bool, name string) (*Manager, float64) {
		cfg := DefaultConfig()
		cfg.HierarchicalTraining = hier
		mgr, err := New(name, antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rand.New(rand.NewSource(31)))
		if err != nil {
			t.Fatal(err)
		}
		out, err := (sim.Runner{Warmup: 0.05}).Run(staticScenario(0.3), mgr)
		if err != nil {
			t.Fatal(err)
		}
		return mgr, out[name].Summary.MeanSNRdB
	}
	hMgr, hSNR := run(true, "hier")
	eMgr, eSNR := run(false, "exh")

	if hMgr.NumBeams() < 2 {
		t.Fatalf("hierarchical training established %d beams", hMgr.NumBeams())
	}
	if hMgr.TrainingSlots >= eMgr.TrainingSlots {
		t.Fatalf("hierarchical training slots %d not below exhaustive %d",
			hMgr.TrainingSlots, eMgr.TrainingSlots)
	}
	// The refinement loop polishes the coarser initial angles: steady-state
	// SNR within ~2 dB of the exhaustive path.
	if hSNR < eSNR-2 {
		t.Fatalf("hierarchical SNR %g dB vs exhaustive %g dB", hSNR, eSNR)
	}
	if hSNR < 15 {
		t.Fatalf("hierarchical SNR %g dB", hSNR)
	}
}

// TestHierarchicalSurvivesBlockage: the faster training must not cost the
// multi-beam its blockage resilience.
func TestHierarchicalSurvivesBlockage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HierarchicalTraining = true
	mgr, err := New("hier", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.WalkingBlockerIndoor(32)
	out, err := (sim.Runner{Warmup: sim.StandardWarmup}).Run(sc, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if rel := out["hier"].Summary.Reliability; rel < 0.9 {
		t.Fatalf("reliability %g with hierarchical training", rel)
	}
}
