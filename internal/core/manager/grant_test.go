package manager

import (
	"math"
	"testing"

	"mmreliable/internal/sim"
)

// recordingGrant grants or denies by kind and logs every request.
type recordingGrant struct {
	allowMaintain  bool
	allowCC        bool
	allowEmergency bool
	kinds          []ProbeKind
}

func (r *recordingGrant) Grant(_ float64, kind ProbeKind) bool {
	r.kinds = append(r.kinds, kind)
	switch kind {
	case ProbeMaintain:
		return r.allowMaintain
	case ProbeCC:
		return r.allowCC
	default:
		return r.allowEmergency
	}
}

// TestSelfScheduledGrantIsByteIdentical pins the satellite acceptance
// criterion: installing the explicit SelfScheduled grant (or leaving the
// default nil) produces exactly the trajectory the pre-refactor manager
// produced — slot for slot.
func TestSelfScheduledGrantIsByteIdentical(t *testing.T) {
	run := func(install bool) ([]sim.Slot, int) {
		mgr := newManager(t, 5)
		if install {
			mgr.SetProbeGrant(SelfScheduled{})
		}
		sc := staticScenario(0.4)
		out, err := sim.Runner{KeepSeries: true}.Run(sc, mgr)
		if err != nil {
			t.Fatal(err)
		}
		return out["mmreliable"].Series, mgr.ProbesUsed()
	}
	a, ap := run(false)
	b, bp := run(true)
	if ap != bp {
		t.Fatalf("probe counts differ: nil grant %d, SelfScheduled %d", ap, bp)
	}
	if len(a) != len(b) {
		t.Fatalf("series lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestDenyingGrantSuppressesSounding verifies the gate actually gates: with
// every maintenance/CC opportunity denied after establishment, the sounder
// issues no further probes, denials are counted, and the due round stays
// pending (nextMaintain does not advance).
func TestDenyingGrantSuppressesSounding(t *testing.T) {
	mgr := newManager(t, 5)
	sc := staticScenario(0.2)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	if !mgr.Established() {
		t.Fatal("link not established")
	}
	deny := &recordingGrant{}
	mgr.SetProbeGrant(deny)
	probes := mgr.ProbesUsed()
	due := mgr.NextMaintainAt()
	m := sc.ChannelAt(sc.Duration)
	slotDur := sc.Num.SlotDuration()
	tick := sc.Duration
	for i := 0; i < 400; i++ {
		tick += slotDur
		slot := mgr.Step(tick, m)
		if slot.Training {
			t.Fatalf("training slot at %g under a denying grant", tick)
		}
	}
	if got := mgr.ProbesUsed(); got != probes {
		t.Fatalf("sounder issued %d probes under a denying grant", got-probes)
	}
	if mgr.BudgetDenials == 0 {
		t.Fatal("no denials counted")
	}
	if mgr.NextMaintainAt() != due {
		t.Fatalf("denied maintenance advanced nextMaintain %g -> %g", due, mgr.NextMaintainAt())
	}
	sawMaintain := false
	for _, k := range deny.kinds {
		if k == ProbeMaintain {
			sawMaintain = true
		}
	}
	if !sawMaintain {
		t.Fatalf("no maintenance requests recorded (kinds: %v)", deny.kinds)
	}
	// Re-granting lets the pending round fire immediately.
	deny.allowMaintain, deny.allowCC, deny.allowEmergency = true, true, true
	tick += slotDur
	mgr.Step(tick, m)
	if mgr.ProbesUsed() == probes {
		t.Fatal("pending maintenance did not fire once re-granted")
	}
	if mgr.NextMaintainAt() <= due {
		t.Fatal("granted maintenance did not advance the cadence")
	}
}

// TestEmergencyRequestsPreemption drives the link into a blockage outage
// under a grant that denies routine sounding but (like the station
// scheduler) always admits emergencies, and checks the emergency round is
// requested with ProbeEmergency and actually runs.
func TestEmergencyRequestsPreemption(t *testing.T) {
	mgr := newManager(t, 5)
	sc := staticScenario(0.2)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		t.Fatal(err)
	}
	gr := &recordingGrant{allowEmergency: true}
	mgr.SetProbeGrant(gr)
	m := sc.ChannelAt(sc.Duration)
	// Occlude every path: SNR collapses, the outage ladder arms.
	for i := range m.Paths {
		m.Paths[i].ExtraLossDB += 60
	}
	m.InvalidateCache()
	probes := mgr.ProbesUsed()
	slotDur := sc.Num.SlotDuration()
	tick := sc.Duration
	sawEmergency := false
	for i := 0; i < emergencyConfirmSlots+4; i++ {
		tick += slotDur
		slot := mgr.Step(tick, m)
		if slot.Training {
			continue
		}
		if !math.IsInf(slot.SNRdB, -1) && slot.SNRdB > -20 {
			t.Fatalf("blocked link still healthy (%g dB)", slot.SNRdB)
		}
	}
	for _, k := range gr.kinds {
		if k == ProbeEmergency {
			sawEmergency = true
		}
	}
	if !sawEmergency {
		t.Fatalf("no ProbeEmergency request (kinds: %v)", gr.kinds)
	}
	if mgr.ProbesUsed() == probes {
		t.Fatal("emergency maintenance issued no probes")
	}
}
