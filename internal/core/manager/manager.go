// Package manager ties mmReliable's pieces into the Fig. 9 state machine:
// initial beam training establishes the viable path angles; two-probe
// estimation builds the constructive multi-beam; a maintenance loop driven
// by CSI-RS probes runs super-resolution per-beam tracking, reallocates
// power away from blocked beams, re-aligns drifting beams with one
// ambiguity probe each, and falls back to full retraining only when the
// link is beyond local repair.
//
// The manager implements sim.Scheme: the surrounding runner hands it the
// true channel once per slot, and it only observes that channel through its
// own sounder probes (magnitude-corrupting CFO/SFO included), spending
// training slots for every sounding it issues.
package manager

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/core/probe"
	"mmreliable/internal/core/superres"
	"mmreliable/internal/core/track"
	"mmreliable/internal/dsp"
	"mmreliable/internal/incr"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/phasedarray"
	"mmreliable/internal/scratch"
	"mmreliable/internal/sim"
)

// Config tunes the manager.
type Config struct {
	// MaxBeams is the maximum multi-beam order (paper: 3 beams reach 92%
	// of the oracle).
	MaxBeams int
	// MaintainPeriod is the CSI-RS maintenance cadence in seconds
	// (default 20 ms, one SSB period).
	MaintainPeriod float64
	// CCRefreshPeriod is the cadence of the lightweight constructive-
	// combining phase refresh (default 1 ms). One CSI-RS probe's CIR
	// yields every beam's complex amplitude with a COMMON CFO phase, so
	// the relative per-beam phases are observable from a single probe —
	// fast enough to follow the per-path phase drift of a moving user,
	// which rotates far too quickly for the 20 ms maintenance loop.
	CCRefreshPeriod float64
	// CodebookSize and ScanRangeDeg define the SSB training sweep.
	CodebookSize int
	ScanRangeDeg float64
	// DynRangeDB is the peak-selection dynamic range during training.
	DynRangeDB float64
	// MinSepIdx is the minimum codebook separation between selected peaks.
	MinSepIdx int
	// MinRefineDeg suppresses re-alignment below this deviation.
	MinRefineDeg float64
	// RetrainBackoff is the wait before re-attempting a failed training.
	RetrainBackoff float64
	// SSBPeriod gates full retraining starts to SSB occasions (5G NR
	// default 20 ms); CSI-RS maintenance is not gated.
	SSBPeriod float64
	// NumSC is the sounding subcarrier count (power of two).
	NumSC int
	// Superres and Track tune the respective modules.
	Superres superres.Config
	Track    track.Config
	// Quant is the front-end weight quantizer.
	Quant antenna.Quantizer
	// HierarchicalTraining switches the initial/returning beam training
	// from the exhaustive SSB sweep to the logarithmic hierarchical search
	// (wide beams descending into the strongest sectors) — roughly 3×
	// fewer probes at slightly coarser initial angles, which the §4.2
	// refinement loop then polishes.
	HierarchicalTraining bool
	// SelectionTolDB is the SNR sacrifice accepted to keep an extra lobe
	// during beam-set selection: more lobes mean more blockage resilience
	// (the paper's reliability-first design), so the largest beam set
	// within this many dB of the best-measured set wins.
	SelectionTolDB float64
	// ProactiveTracking enables the §4.2 mobility loop. Disabling it (the
	// paper's "mmReliable w/o tracking" ablation, Fig. 18a) keeps blockage
	// reallocation but never re-aligns angles.
	ProactiveTracking bool
	// ConstructiveCombining enables per-beam phase/amplitude optimization.
	// Disabling it (the Fig. 17c "tracking w/o CC" ablation) uses equal
	// amplitude, zero phase lobes.
	ConstructiveCombining bool
}

// Outage-reaction confirmation windows (slots): an emergency maintenance
// round fires after a few bad slots; a full retrain only after the outage
// has outlasted a typical fading dip (retraining costs tens of ms, so
// waiting out a short fade is cheaper than retraining into it).
const (
	emergencyConfirmSlots = 4
	retrainConfirmSlots   = 60
)

// DefaultConfig returns the paper-matched configuration.
func DefaultConfig() Config {
	return Config{
		MaxBeams:        3,
		MaintainPeriod:  20e-3,
		CCRefreshPeriod: 1e-3,
		CodebookSize:    33,
		ScanRangeDeg:    60,
		// 10 dB keeps the paper's 1–10 dB reflectors while rejecting the
		// −12.8 dB sidelobes of an 8-element scanning beam.
		DynRangeDB: 10,
		// Mask radius must cover the scanning beam's main lobe (±11.25° at
		// the default 3.75° codebook step for an 8-element array).
		MinSepIdx:             4,
		MinRefineDeg:          0.75,
		RetrainBackoff:        50e-3,
		SSBPeriod:             20e-3,
		NumSC:                 64,
		SelectionTolDB:        2.0,
		Superres:              superres.DefaultConfig(),
		Track:                 track.DefaultConfig(),
		Quant:                 antenna.DefaultQuantizer(),
		ProactiveTracking:     true,
		ConstructiveCombining: true,
	}
}

// Manager is the mmReliable beam manager for one gNB-UE link.
type Manager struct {
	name    string
	cfg     Config
	u       *antenna.ULA
	budget  link.Budget
	num     nr.Numerology
	sounder *nr.Sounder
	fe      *phasedarray.FrontEnd
	cb      *antenna.Codebook
	offsets []float64

	// Hot-path scratch: wbRe/wbIm hold the planar wideband response snr()
	// evaluates every slot (txLin/noiseLin are the budget's linear terms,
	// hoisted at New so the slot loop skips two math.Pow per evaluation);
	// wbBuf is the interleaved equivalent for probe-side callers;
	// mbScratch/ueScratch hold one lobe's matched beam during multi-beam
	// synthesis. All are internal to a single call — the composed weight
	// vectors themselves are always freshly allocated because they escape
	// into the front end (fe.SetWeights) and the channel snapshot
	// (m.RxWeights).
	wbRe, wbIm      []float64
	txLin, noiseLin float64
	wbBuf           cmx.Vector
	mbScratch       cmx.Vector
	ueScratch       cmx.Vector
	// Maintenance-tick scratch (maintain/ccRefresh run with zero
	// allocations in steady state): csiBuf/cirBuf hold the probe CSI and
	// its impulse response, sbBuf one recovery probe's single beam, stsBuf
	// the tracker statuses, degBuf the delay-degeneracy flags. ws supplies
	// everything the super-resolution fit needs; it defaults to a private
	// workspace and is replaced by the per-worker arena via UseWorkspace
	// under experiments.ParallelTrials.
	csiBuf cmx.Vector
	cirBuf cmx.Vector
	sbBuf  cmx.Vector
	stsBuf []track.Status
	degBuf []bool
	ws     *scratch.Workspace
	// Refinement-round scratch (refine also runs allocation-free): csi2Buf
	// is the second candidate probe's landing, devIdx/devVal the deviated
	// beam list, estBuf the CC re-estimate, lobesBuf/beamsBuf the lobe
	// lists applyWeights and BeamsInto rebuild each round. bp is the
	// reusable Prober binding (rebound to the live channel per round).
	csi2Buf  cmx.Vector
	pwrBuf   []float64
	devIdx   []int
	devVal   []float64
	estBuf   probe.Result
	lobesBuf []multibeam.Beam
	beamsBuf []multibeam.Beam
	bp       boundProber
	// wSpare is applyWeights' double buffer: the composed weight vector
	// and the spare rotate, so steady-state weight updates do not allocate.
	wSpare cmx.Vector
	// Establishment scratch: at metro scale full re-establishments are part
	// of the steady state (blockage-driven data outages retrain every few
	// hundred frames on marginal legs), so establish() also runs off
	// retained storage. swp backs the SSB sweep, angStore/delayStore/
	// relStore/rssStore the per-beam vectors (the manager's published
	// angles/relDelays/rssAnchor slices alias these stores), magsFlat +
	// magHeads the per-beam magnitude matrix, beamStore the live lobe list,
	// snrSel/selW/magSel the beam-set selection scratch, activeStore the
	// active flags. establishFn and the retry callbacks are prebound at New
	// so scheduling an operation never materializes a method value.
	swp            nr.SweepScratch
	angStore       []float64
	delayStore     []float64
	relStore       []float64
	rssStore       []float64
	magsFlat       []float64
	magHeads       [][]float64
	beamStore      []multibeam.Beam
	snrSel         []float64
	selW           cmx.Vector
	magSel         []float64
	activeStore    []bool
	establishFn    func(t float64, m *channel.Model)
	retrySweepFn   func(t float64, m *channel.Model)
	retryEstFn     func(t float64, m *channel.Model)
	retryComposeFn func(t float64, m *channel.Model)

	// Beam state.
	angles    []float64 // per-beam steering angles (reference first)
	relDelays []float64 // per-beam ToF relative to the reference
	beams     []multibeam.Beam
	active    []bool // false = blocked, power reallocated away
	mags      [][]float64
	rssAnchor []float64 // single-beam RSS at last (re)alignment
	w         cmx.Vector
	tracker   *track.Tracker
	needAnch  bool

	// Directional-UE state (§4.4); nil/zero for a quasi-omni UE. The UE
	// forms its own multi-beam with one lobe per gNB beam (Fig. 12).
	ueArr    *antenna.ULA
	ueCB     *antenna.Codebook
	ueW      cmx.Vector
	ueAngles []float64 // UE lobe angle per gNB beam
	ueAmps   []float64 // UE lobe amplitude per gNB beam (MRC weighting)

	// Operation scheduling.
	trainRemaining int
	onTrainDone    func(t float64, m *channel.Model)
	nextMaintain   float64
	nextCCRefresh  float64
	emergencyTried bool
	badSlots       int     // consecutive below-threshold data slots
	trainDebt      float64 // fractional training slots owed by symbol-level probes
	// probeGrant arbitrates sounding opportunities (nil = self-scheduled:
	// every due opportunity fires). See grant.go.
	probeGrant ProbeGrant

	// Cached result of the last snr() fold, keyed on everything that feeds
	// it: the model (identity + content stamp), the front end's program
	// counter (Switches — slice identity is NOT sound, SetWeights
	// double-buffers), and the UE combining weights' slice identity (composed
	// UE vectors are always freshly allocated, see the scratch comment
	// above). Consulted only under the incremental engine (incr.Enabled);
	// with MMR_INCREMENTAL=off every slot folds the full wideband response.
	snrModel  *channel.Model
	snrStamp  uint64
	snrFEVer  int
	snrRxHead *complex128
	snrRxLen  int
	snrVal    float64
	snrValid  bool

	// Stats.
	TrainingSlots int
	Retrains      int
	Refinements   int
	BlockageDrops int
	// BudgetDenials counts sounding opportunities the installed ProbeGrant
	// suppressed (always 0 under the default self-scheduled grant).
	BudgetDenials int
	// RetrainReasons counts full-retrain triggers by cause, for
	// diagnostics ("data-outage", "superres", "tracker", "all-blocked",
	// "compose", "initial", "sweep-empty", "estimate").
	RetrainReasons map[string]int
}

// New builds a manager. rng seeds the sounder's noise and impairments.
func New(name string, u *antenna.ULA, budget link.Budget, num nr.Numerology, cfg Config, rng *rand.Rand) (*Manager, error) {
	if cfg.MaxBeams < 1 {
		return nil, fmt.Errorf("manager: MaxBeams %d < 1", cfg.MaxBeams)
	}
	if cfg.MaintainPeriod <= 0 || cfg.RetrainBackoff <= 0 {
		return nil, fmt.Errorf("manager: non-positive periods")
	}
	s, err := nr.NewSounder(num, budget.BandwidthHz, cfg.NumSC, budget.NoiseToTxAmpRatio(), nr.DefaultImpairments(), rng)
	if err != nil {
		return nil, err
	}
	scan := dsp.Rad(cfg.ScanRangeDeg)
	mgr := &Manager{
		name:    name,
		cfg:     cfg,
		u:       u,
		budget:  budget,
		num:     num,
		sounder: s,
		fe:      phasedarray.New(u, cfg.Quant),
		cb:      antenna.DFTCodebook(u, cfg.CodebookSize, -scan, scan),
		offsets: channel.SubcarrierOffsets(budget.BandwidthHz, cfg.NumSC),
	}
	mgr.wbBuf = make(cmx.Vector, cfg.NumSC)
	mgr.wbRe = make([]float64, cfg.NumSC)
	mgr.wbIm = make([]float64, cfg.NumSC)
	mgr.txLin, mgr.noiseLin = budget.SNRTerms()
	mgr.mbScratch = make(cmx.Vector, u.N)
	mgr.csiBuf = make(cmx.Vector, cfg.NumSC)
	mgr.cirBuf = make(cmx.Vector, cfg.NumSC)
	mgr.sbBuf = make(cmx.Vector, u.N)
	mgr.csi2Buf = make(cmx.Vector, cfg.NumSC)
	mgr.pwrBuf = make([]float64, 0, cfg.MaxBeams)
	mgr.devIdx = make([]int, 0, cfg.MaxBeams)
	mgr.devVal = make([]float64, 0, cfg.MaxBeams)
	mgr.estBuf = probe.Result{
		Relative:     make([]probe.Estimate, 0, cfg.MaxBeams),
		PerBeamPower: make([]float64, 0, cfg.MaxBeams),
	}
	mgr.lobesBuf = make([]multibeam.Beam, 0, cfg.MaxBeams)
	mgr.beamsBuf = make([]multibeam.Beam, 0, cfg.MaxBeams)
	mgr.bp = boundProber{s: s}
	mgr.ws = scratch.New()
	mgr.angStore = make([]float64, 0, cfg.MaxBeams)
	mgr.delayStore = make([]float64, 0, cfg.MaxBeams)
	mgr.relStore = make([]float64, 0, cfg.MaxBeams)
	mgr.rssStore = make([]float64, 0, cfg.MaxBeams)
	mgr.magsFlat = make([]float64, cfg.MaxBeams*cfg.NumSC)
	mgr.magHeads = make([][]float64, 0, cfg.MaxBeams)
	mgr.beamStore = make([]multibeam.Beam, 0, cfg.MaxBeams)
	mgr.snrSel = make([]float64, cfg.MaxBeams+1)
	mgr.selW = make(cmx.Vector, u.N)
	mgr.magSel = make([]float64, cfg.NumSC)
	mgr.activeStore = make([]bool, 0, cfg.MaxBeams)
	mgr.establishFn = mgr.establish
	mgr.retrySweepFn = func(t float64, m *channel.Model) { mgr.retrainCause(t, "sweep-empty") }
	mgr.retryEstFn = func(t float64, m *channel.Model) { mgr.retrainCause(t, "estimate") }
	mgr.retryComposeFn = func(t float64, m *channel.Model) { mgr.retrainCause(t, "compose") }
	return mgr, nil
}

// UseWorkspace replaces the manager's private scratch workspace with a
// shared (typically per-worker) one. The manager only holds checkouts for
// the duration of one maintenance tick — it marks the workspace on entry
// and releases on exit — so one workspace can be shared by every manager
// owned by the same worker goroutine. Must not be called mid-tick.
func (g *Manager) UseWorkspace(ws *scratch.Workspace) {
	if ws != nil {
		g.ws = ws
	}
}

// Name implements sim.Scheme.
func (g *Manager) Name() string { return g.name }

// NumBeams returns the current multi-beam order (0 before establishment).
func (g *Manager) NumBeams() int { return len(g.beams) }

// ActiveWeights returns the currently transmitted weights (nil before
// establishment).
func (g *Manager) ActiveWeights() cmx.Vector { return g.fe.Active() }

// ActiveWeightsView returns the live transmit weights without copying (nil
// before establishment). Read-only; do not retain across a weight reload.
// Frame-barrier batch evaluation uses this to register beams with a
// channel.WidebandBatch without one clone per session per frame.
func (g *Manager) ActiveWeightsView() cmx.Vector { return g.fe.ActiveView() }

// WeightsVersion returns the front end's program counter: it advances on
// every SetWeights/LoadBeam, so an unchanged version guarantees the active
// weight CONTENT is unchanged — a guarantee slice identity cannot give,
// since SetWeights double-buffers into recycled backing arrays. Stamp-keyed
// consumers (the station's batch-entry skip) pair this with Model.Stamp.
func (g *Manager) WeightsVersion() int { return g.fe.Switches() }

// Offsets returns the subcarrier offset grid the manager evaluates wideband
// SNR on. The slice is the manager's own grid: treat as read-only.
func (g *Manager) Offsets() []float64 { return g.offsets }

// Reset discards all beam state so the next Step performs a full initial
// training — used by a handover controller when this manager's gNB becomes
// the serving cell after time away.
func (g *Manager) Reset() {
	g.w = nil
	g.fe = phasedarray.New(g.u, g.cfg.Quant)
	g.fullReset()
	g.trainRemaining = 0
	g.onTrainDone = nil
	g.trainDebt = 0
	g.badSlots = 0
	g.emergencyTried = false
}

// Step implements sim.Scheme.
func (g *Manager) Step(t float64, m *channel.Model) sim.Slot {
	g.bindUE(m)
	// Pending multi-slot training operation?
	if g.trainRemaining > 0 {
		g.trainRemaining--
		g.TrainingSlots++
		if g.trainRemaining == 0 && g.onTrainDone != nil {
			done := g.onTrainDone
			g.onTrainDone = nil
			done(t, m)
		}
		return sim.Slot{SNRdB: g.snr(m), Training: true}
	}
	if g.w == nil {
		// Not established: start (or restart) training.
		g.beginRetrain(t)
		g.trainRemaining--
		g.TrainingSlots++
		if g.trainRemaining == 0 && g.onTrainDone != nil {
			done := g.onTrainDone
			g.onTrainDone = nil
			done(t, m)
		}
		return sim.Slot{SNRdB: math.Inf(-1), Training: true}
	}
	// Maintenance and CC refresh run inline: their CSI-RS probes occupy one
	// OFDM symbol each (§5.2), multiplexed with data in the same slot, and
	// are charged to a fractional training-slot debt. Each due opportunity
	// first clears the installed ProbeGrant (default: always granted); a
	// denied maintenance round stays due and is re-requested next slot,
	// while a denied CC refresh backs off one CC period.
	if t >= g.nextMaintain {
		if g.grantAllows(t, ProbeMaintain) {
			g.nextMaintain = t + g.cfg.MaintainPeriod
			g.nextCCRefresh = t + g.cfg.CCRefreshPeriod
			g.runWithDebt(func() { g.maintain(t, m) })
		} else {
			g.BudgetDenials++
		}
	} else if g.cfg.ConstructiveCombining && g.cfg.CCRefreshPeriod > 0 &&
		g.ccUpdatable() > 0 && t >= g.nextCCRefresh {
		// Lightweight CC phase refresh: only worth a probe when at least
		// one beam's phase is actually updatable (delay-separable from
		// every other active beam).
		if g.grantAllows(t, ProbeCC) {
			g.nextCCRefresh = t + g.cfg.CCRefreshPeriod
			g.runWithDebt(func() { g.ccRefresh(t, m) })
		} else {
			g.nextCCRefresh = t + g.cfg.CCRefreshPeriod
			g.BudgetDenials++
		}
	}
	// Pay down accumulated probe debt with whole training slots.
	if g.trainDebt >= 1 {
		g.trainDebt--
		g.TrainingSlots++
		return sim.Slot{SNRdB: g.snr(m), Training: true}
	}
	if g.trainRemaining > 0 {
		// An inline step scheduled a multi-slot operation (e.g. retrain).
		return g.Step(t, m)
	}
	// Data slot.
	snr := g.snr(m)
	if snr < link.OutageThresholdDB {
		g.badSlots++
		switch {
		case !g.emergencyTried && g.badSlots >= emergencyConfirmSlots:
			// A persistent dip (blockage onset) is first answered with an
			// immediate maintenance round — detect the blocked beam and
			// reallocate its power (§4.1) — instead of a full retrain. A
			// budget scheduler sees this as ProbeEmergency (preemption);
			// denial leaves the emergency pending for the next slot.
			if g.grantAllows(t, ProbeEmergency) {
				g.emergencyTried = true
				g.nextMaintain = t + g.cfg.MaintainPeriod
				g.runWithDebt(func() { g.maintain(t, m) })
				snr = g.snr(m) // reallocation may already have recovered it
			} else {
				g.BudgetDenials++
			}
		case g.emergencyTried && g.badSlots >= retrainConfirmSlots:
			// Maintenance could not recover the link and the outage has
			// outlasted any plausible fading dip: full retrain.
			g.emergencyTried = false
			g.badSlots = 0
			g.retrainCause(t, "data-outage")
		}
	} else {
		g.emergencyTried = false
		g.badSlots = 0
	}
	return sim.Slot{
		SNRdB:         snr,
		ThroughputBps: link.Throughput(snr, g.budget.BandwidthHz, 0),
	}
}

// bindUE wires the manager's UE-side combining beam into the channel
// snapshot. On first sight of a directional UE it builds the UE codebook.
func (g *Manager) bindUE(m *channel.Model) {
	if m.Rx == nil {
		return
	}
	if g.ueCB == nil {
		g.ueArr = m.Rx
		scan := dsp.Rad(g.cfg.ScanRangeDeg)
		g.ueCB = antenna.DFTCodebook(m.Rx, 2*m.Rx.N+1, -scan, scan)
		g.ueScratch = make(cmx.Vector, m.Rx.N)
	}
	m.RxWeights = g.ueW // nil = quasi-omni until the UE beam is trained
}

// snr returns the wideband effective SNR of the current beam over the true
// channel (−Inf before establishment). Under the incremental engine the
// fold is cached: a slot whose channel stamp, front-end program and UE
// weights are all unchanged returns the previous value — which is exactly
// what the full fold would recompute, every input being bit-identical.
func (g *Manager) snr(m *channel.Model) float64 {
	w := g.fe.ActiveView() // read-only: the wideband evaluation only reads w
	if w == nil {
		return math.Inf(-1)
	}
	if !incr.Enabled {
		m.EffectiveWidebandSplitInto(w, g.offsets, g.wbRe, g.wbIm)
		return link.WidebandSNRdBSplitTerms(g.wbRe, g.wbIm, g.txLin, g.noiseLin)
	}
	var rxHead *complex128
	if len(m.RxWeights) > 0 {
		rxHead = &m.RxWeights[0]
	}
	ver := g.fe.Switches()
	if g.snrValid && g.snrModel == m && g.snrStamp == m.Stamp() && g.snrFEVer == ver &&
		g.snrRxHead == rxHead && g.snrRxLen == len(m.RxWeights) {
		return g.snrVal
	}
	m.EffectiveWidebandSplitInto(w, g.offsets, g.wbRe, g.wbIm)
	v := link.WidebandSNRdBSplitTerms(g.wbRe, g.wbIm, g.txLin, g.noiseLin)
	g.snrModel, g.snrStamp, g.snrFEVer = m, m.Stamp(), ver
	g.snrRxHead, g.snrRxLen = rxHead, len(m.RxWeights)
	g.snrVal, g.snrValid = v, true
	return v
}

// runWithDebt executes an inline maintenance step and charges its CSI-RS
// probes to the fractional training-slot debt: each probe occupies one OFDM
// symbol (1/SymbolsPerSlot of a slot), as in §5.2's overhead accounting.
func (g *Manager) runWithDebt(op func()) {
	before := g.sounder.Probes
	op()
	g.trainDebt += float64(g.sounder.Probes-before) / float64(g.num.SymbolsPerSlot)
}

// beginOp schedules a training operation of the given slot count whose
// effect lands when the last slot completes.
func (g *Manager) beginOp(slots int, done func(t float64, m *channel.Model)) {
	if slots < 1 {
		slots = 1
	}
	g.trainRemaining = slots
	g.onTrainDone = done
}

// slotsFor converts air time to whole slots (≥1).
func (g *Manager) slotsFor(airTime float64) int {
	return int(math.Max(1, math.Ceil(airTime/g.num.SlotDuration())))
}

// beginRetrain schedules a full SSB sweep plus multi-beam establishment,
// starting at the next SSB occasion.
func (g *Manager) beginRetrain(t float64) {
	g.retrainCause(t, "initial")
}

// retrainCause is beginRetrain with a recorded cause.
func (g *Manager) retrainCause(t float64, cause string) {
	if g.RetrainReasons == nil {
		g.RetrainReasons = map[string]int{}
	}
	g.RetrainReasons[cause]++
	g.Retrains++
	wait := 0
	if g.cfg.SSBPeriod > 0 {
		next := math.Ceil(t/g.cfg.SSBPeriod) * g.cfg.SSBPeriod
		wait = int((next - t) / g.num.SlotDuration())
	}
	sweepProbes := g.cb.Len()
	if g.cfg.HierarchicalTraining {
		sweepProbes = nr.HierProbeCount(g.hierConfig())
	}
	sweepSlots := g.slotsFor(float64(sweepProbes) * g.num.SSBDuration())
	// Per-beam probes + combining probes + beam-set selection probes.
	estProbes := g.cfg.MaxBeams + 2*(g.cfg.MaxBeams-1) + (g.cfg.MaxBeams - 1)
	if g.ueCB != nil {
		estProbes += g.cfg.MaxBeams * g.ueCB.Len() // per-beam UE scans (§4.4)
	}
	g.beginOp(wait+sweepSlots+estProbes*nr.CSIRSSlots, g.establishFn)
}

// establish performs the sweep and builds the constructive multi-beam. It
// runs off the manager's establishment stores (see the field block): at
// metro scale blockage-driven retrains are steady-state behavior, so the
// whole path — sweep, per-beam probing, CC estimation, beam-set selection
// — stays off the allocator (pinned by TestEstablishAllocs and the cluster
// frame alloc test). The probing order and arithmetic are identical to the
// original allocating forms, preserving the determinism contract.
func (g *Manager) establish(t float64, m *channel.Model) {
	angles := g.trainAngles(m)
	if len(angles) == 0 {
		// Nothing viable: back off and retry.
		g.w = nil
		g.fullReset()
		g.beginOp(g.slotsFor(g.cfg.RetrainBackoff), g.retrySweepFn)
		return
	}
	g.bp.m = m
	pr := &g.bp

	// Directional UE (§4.4): before measuring anything else, find the UE
	// arrival angle of each gNB beam with a per-beam UE codebook scan and
	// form a matching UE multi-beam — every subsequent probe and data slot
	// runs under it, so the TX-side combining estimates absorb the UE-side
	// per-path phases automatically.
	if g.ueCB != nil {
		ueAngles := make([]float64, len(angles))
		ueAmps := make([]float64, len(angles))
		for k, a := range angles {
			wk := g.u.SingleBeam(a)
			bestIdx, bestRSS := -1, 0.0
			for i, v := range g.ueCB.Weights {
				m.RxWeights = v
				if r := nr.RSS(pr.Probe(wk)); bestIdx == -1 || r > bestRSS {
					bestIdx, bestRSS = i, r
				}
			}
			ueAngles[k] = g.ueCB.Angles[bestIdx]
			ueAmps[k] = math.Sqrt(bestRSS)
		}
		// MRC-style lobe weighting: RX lobe amplitude proportional to the
		// path's measured amplitude.
		if ueAmps[0] > 0 {
			for k := range ueAmps {
				ueAmps[k] /= ueAmps[0]
			}
		} else {
			for k := range ueAmps {
				ueAmps[k] = 1
			}
		}
		g.ueAngles, g.ueAmps = ueAngles, ueAmps
		if !g.applyUEWeights(ueAngles) {
			g.ueW = nil
		}
		m.RxWeights = g.ueW
	}

	// Per-beam single probes: magnitudes + delays.
	mags := g.magHeads[:0]
	delays := g.delayStore[:0]
	rss := g.rssStore[:0]
	for k, a := range angles {
		csi := pr.ProbeInto(g.u.SingleBeamInto(a, g.sbBuf), g.csiBuf)
		mags = append(mags, csi.AbsInto(g.magsFlat[k*g.cfg.NumSC:(k+1)*g.cfg.NumSC]))
		rss = append(rss, nr.RSS(csi))
		d, err := superres.EstimateDelayWS(g.sounder.CIRInto(csi, g.cirBuf), g.sounder.SampleSpacing(), g.ws)
		if err != nil {
			d = 0
		}
		delays = append(delays, d)
	}
	span := float64(g.cfg.NumSC) * g.sounder.SampleSpacing()
	rel := g.relStore[:0]
	for k := range delays {
		rel = append(rel, superres.RelativeDelay(delays[k], delays[0], span))
	}
	rel[0] = 0

	// Constructive combining parameters.
	var beams []multibeam.Beam
	if len(angles) == 1 {
		beams = append(g.beamStore[:0], multibeam.Reference(angles[0]))
	} else if g.cfg.ConstructiveCombining {
		if err := estimateWithMagsInto(&g.estBuf, pr, g.u, angles, mags, rel, g.budget.BandwidthHz, g.ws); err != nil {
			g.w = nil
			g.fullReset()
			g.beginOp(g.slotsFor(g.cfg.RetrainBackoff), g.retryEstFn)
			return
		}
		beams, _ = g.estBuf.BeamsInto(angles, g.beamStore)
	} else {
		// Ablation: equal-amplitude, zero-phase lobes.
		beams = g.beamStore[:0]
		for _, a := range angles {
			beams = append(beams, multibeam.Beam{Angle: a, Amp: 1})
		}
	}
	// Beam-set selection: on a wideband channel a lobe with large excess
	// delay can be counter-productive (in-band ripple, §3.4), so keep the
	// beam prefix whose MEASURED wideband effective SNR is best. The
	// multi-beam therefore never does worse than the single beam.
	if len(beams) > 1 {
		snrs := g.snrSel[:len(beams)+1]
		bindK := func(k int) {
			// Couple the UE lobe count to the TX beam count under test.
			if g.ueCB != nil && g.applyUEWeightsN(k) {
				m.RxWeights = g.ueW
			}
		}
		if g.ueCB != nil {
			// Under a directional UE the k=1 config must be re-measured
			// with a single UE lobe.
			bindK(1)
			snrs[1] = g.budget.WidebandSNRdBFromMags(pr.Probe(g.u.SingleBeam(angles[0])).Abs())
		} else {
			snrs[1] = g.budget.WidebandSNRdBFromMags(mags[0])
		}
		maxSNR := snrs[1]
		for k := 2; k <= len(beams); k++ {
			snrs[k] = math.Inf(-1)
			wk, err := multibeam.WeightsInto(g.u, beams[:k], g.selW, g.mbScratch)
			if err != nil {
				continue
			}
			bindK(k)
			csi := pr.ProbeInto(wk, g.csiBuf)
			snrs[k] = g.budget.WidebandSNRdBFromMags(csi.AbsInto(g.magSel))
			if snrs[k] > maxSNR {
				maxSNR = snrs[k]
			}
		}
		// Reliability-first: the largest beam set within tolerance of the
		// best measured SNR — but never sacrifice below the outage
		// threshold when a smaller set clears it.
		floor := maxSNR - g.cfg.SelectionTolDB
		if th := link.OutageThresholdDB + 0.5; floor < th && maxSNR >= th {
			floor = th
		}
		bestK, found := 1, snrs[1] >= floor
		for k := 2; k <= len(beams); k++ {
			if snrs[k] >= floor {
				bestK, found = k, true
			}
		}
		if !found {
			// Everything is marginal: take the strongest measured set.
			for k := 1; k <= len(beams); k++ {
				if snrs[k] > snrs[bestK] {
					bestK = k
				}
			}
		}
		angles, rel, beams = angles[:bestK], rel[:bestK], beams[:bestK]
		mags, rss = mags[:bestK], rss[:bestK]
		if g.ueCB != nil {
			if len(g.ueAngles) > bestK {
				g.ueAngles = g.ueAngles[:bestK]
				g.ueAmps = g.ueAmps[:bestK]
			}
			if g.applyUEWeights(g.ueAngles) {
				m.RxWeights = g.ueW
			}
		}
	}
	g.angles = angles
	g.relDelays = rel
	g.beams = beams
	g.mags = mags
	g.rssAnchor = rss
	g.active = g.activeStore[:0]
	for range beams {
		g.active = append(g.active, true)
	}
	if !g.applyWeights(t) {
		g.w = nil
		g.fullReset()
		g.beginOp(g.slotsFor(g.cfg.RetrainBackoff), g.retryComposeFn)
		return
	}
	// The tracker is kept across establishments: the next maintenance round
	// re-anchors it in place when the beam count is unchanged (state-for-
	// state the same as a fresh tracker, see track.Reanchor) and only
	// rebuilds it when the beam set genuinely changed size.
	g.needAnch = true
	g.nextMaintain = t + g.cfg.MaintainPeriod
}

// hierConfig derives the hierarchical-search configuration from the
// manager's scan setup.
func (g *Manager) hierConfig() nr.HierConfig {
	cfg := nr.DefaultHierConfig()
	cfg.Keep = g.cfg.MaxBeams
	cfg.ScanMin = -dsp.Rad(g.cfg.ScanRangeDeg)
	cfg.ScanMax = dsp.Rad(g.cfg.ScanRangeDeg)
	cfg.DynRangeDB = g.cfg.DynRangeDB
	return cfg
}

// trainAngles runs the configured beam-training method and returns the
// viable path angles, strongest first (capped at MaxBeams). The returned
// slice aliases the manager's angle store — valid until the next training.
func (g *Manager) trainAngles(m *channel.Model) []float64 {
	if g.cfg.HierarchicalTraining {
		hres, err := nr.HierSweep(g.sounder, m, g.u, g.hierConfig())
		if err != nil || len(hres.Angles) == 0 {
			return nil
		}
		angles := hres.Angles
		if len(angles) > g.cfg.MaxBeams {
			angles = angles[:g.cfg.MaxBeams]
		}
		return append(g.angStore[:0], angles...)
	}
	res := nr.SweepInto(g.sounder, m, g.cb, g.cfg.MaxBeams, g.cfg.MinSepIdx, g.cfg.DynRangeDB, &g.swp)
	return res.AnglesInto(g.cb, g.angStore[:0])
}

func (g *Manager) fullReset() {
	g.angles, g.relDelays, g.beams, g.active, g.mags, g.rssAnchor = nil, nil, nil, nil, nil, nil
	g.tracker = nil
}

// applyWeights composes the active beams into weights and programs the
// front end. Returns false if no active beam remains.
func (g *Manager) applyWeights(t float64) bool {
	lobes := g.lobesBuf[:0]
	for k, b := range g.beams {
		if g.active[k] {
			lobes = append(lobes, b)
		}
	}
	g.lobesBuf = lobes[:0]
	if len(lobes) == 0 {
		return false
	}
	// Compose into the spare buffer and swap: the outgoing weight vector is
	// never retained by anyone else (the front end quantizes into its own
	// storage; probes and SNR evaluations read transiently), so the two
	// vectors can rotate forever without touching the allocator.
	w, err := multibeam.WeightsInto(g.u, lobes, g.wSpare, g.mbScratch)
	if err != nil {
		return false
	}
	g.wSpare = g.w
	g.w = w
	if g.wSpare == nil {
		// First-ever composition: g.w was the nil "not established" sentinel,
		// so the rotation just parked nil in the spare slot. Fill it now —
		// this is the one allocation an establishment is allowed, and it
		// happens at attach time, never in the steady state.
		g.wSpare = make(cmx.Vector, g.u.N)
	}
	if err := g.fe.SetWeights(w, t); err != nil {
		return false
	}
	if g.ueArr != nil && len(g.ueAngles) > 0 {
		g.applyUEWeights(g.ueAngles)
	}
	return true
}

// maintain is the periodic CSI-RS maintenance round. It runs with zero
// allocations in steady state (pinned by TestMaintainTickAllocs): probe,
// CIR, and super-resolution all work out of manager buffers and the
// workspace, which is marked on entry and released on exit — the
// extraction Result dies with the release, so everything the manager
// keeps (tracker anchors, refreshed magnitudes) is copied out before
// returning.
func (g *Manager) maintain(t float64, m *channel.Model) {
	mk := g.ws.Mark()
	defer g.ws.Release(mk)
	csi := g.sounder.ProbeInto(m, g.w, g.csiBuf)
	cir := g.sounder.CIRInto(csi, g.cirBuf)
	res, err := superres.ExtractInto(cir, g.relDelays, g.sounder.SampleSpacing(), g.cfg.Superres, g.ws)
	if err != nil {
		g.retrainCause(t, "superres")
		return
	}
	if g.tracker == nil || g.needAnch {
		powers := g.floorPowersInto(res.Power)
		if g.tracker != nil && g.tracker.NumBeams() == len(powers) {
			// Same beam set: re-anchor in place (state-for-state the same
			// as a fresh tracker, but allocation-free).
			if err := g.tracker.Reanchor(powers); err != nil {
				g.retrainCause(t, "tracker")
				return
			}
		} else {
			tr, err := track.New(g.u, g.cfg.Track, powers)
			if err != nil {
				g.retrainCause(t, "tracker")
				return
			}
			g.tracker = tr
		}
		g.needAnch = false
		return
	}
	sts, err := g.tracker.ObserveInto(g.stsBuf, t, res.Power)
	if err != nil {
		g.retrainCause(t, "tracker")
		return
	}
	g.stsBuf = sts
	// Recovery probe: a dropped lobe carries no TX power, so the CIR can
	// never show it coming back. Probe one blocked beam's single-beam RSS
	// per round; if it has recovered near its anchor, re-admit it.
	for k := range g.beams {
		if g.active[k] {
			continue
		}
		rss := nr.RSS(g.sounder.ProbeInto(m, g.u.SingleBeamInto(g.angles[k], g.sbBuf), g.csiBuf))
		if rss >= g.rssAnchor[k]*dsp.FromDB(-3) {
			g.active[k] = true
			if g.applyWeights(t) {
				g.needAnch = true
			}
			return
		}
		break // at most one recovery probe per round
	}
	// Blockage response: reallocate power away from newly-blocked beams
	// (§4.1). Re-admission happens ONLY through the recovery probe above:
	// a dropped lobe carries no power, so the tracker's view of it is
	// meaningless once it has been re-anchored.
	changed := false
	for k, st := range sts {
		if g.active[k] && st.Blocked {
			g.active[k] = false
			changed = true
			g.BlockageDrops++
		}
	}
	if changed {
		if !g.applyWeights(t) {
			// Every beam blocked: hold the last weights and retrain.
			for i := range g.active {
				g.active[i] = true
			}
			g.applyWeights(t)
			g.retrainCause(t, "all-blocked")
			return
		}
		g.needAnch = true
		return
	}
	// Mobility response (§4.2).
	if !g.cfg.ProactiveTracking {
		return
	}
	// §4.4: a power drop COMMON to every active beam is UE-side
	// misalignment (rotation of the directional UE shifts all arrival
	// angles together); per-beam drops are gNB-side misalignment.
	if g.ueW != nil {
		minDrop, maxDrop := math.Inf(1), math.Inf(-1)
		nAct := 0
		for k, st := range sts {
			if !g.active[k] {
				continue
			}
			nAct++
			minDrop = math.Min(minDrop, st.DropDB)
			maxDrop = math.Max(maxDrop, st.DropDB)
		}
		if nAct > 0 && minDrop >= 1.0 && (nAct == 1 || maxDrop-minDrop <= 2.0) {
			if dev := track.RotationFromDrop(g.ueArr, minDrop); dev >= dsp.Rad(g.cfg.MinRefineDeg) {
				g.refineUE(t, m, dev)
				return
			}
		}
	}
	deviated := g.devIdx[:0]
	devs := g.devVal[:0]
	for k, st := range sts {
		if g.active[k] && st.Deviation >= dsp.Rad(g.cfg.MinRefineDeg) {
			deviated = append(deviated, k)
			devs = append(devs, st.Deviation)
		}
	}
	g.devIdx, g.devVal = deviated[:0], devs[:0]
	if len(deviated) == 0 {
		return
	}
	g.refine(t, m, deviated, devs)
}

// ccRefresh re-derives the constructive-combining phases from one CSI-RS
// probe's CIR: every beam's complex amplitude shares the probe's CFO phase,
// so their ratios give the current relative channel phases directly. Only
// phases are updated (amplitude re-weighting waits for a full refinement so
// the tracker's per-beam power anchors stay valid).
func (g *Manager) ccRefresh(t float64, m *channel.Model) {
	mk := g.ws.Mark()
	defer g.ws.Release(mk)
	csi := g.sounder.ProbeInto(m, g.w, g.csiBuf)
	res, err := superres.ExtractInto(g.sounder.CIRInto(csi, g.cirBuf), g.relDelays, g.sounder.SampleSpacing(), g.cfg.Superres, g.ws)
	if err != nil {
		return // transient: the next maintenance round will deal with it
	}
	ref := -1
	for k := range g.beams {
		if g.active[k] {
			ref = k
			break
		}
	}
	if ref < 0 || res.Amp[ref] == 0 {
		return
	}
	degenerate := g.delayDegenerate()
	if degenerate[ref] {
		return
	}
	// Lobe coefficient c_k = A_k·e^{−jφ_k}; measured α_k ∝ g_k·c_k, so the
	// channel ratio g_k/g_ref = (α_k/α_ref)·(c_ref/c_k).
	cRef := cmplx.Rect(g.beams[ref].Amp, -g.beams[ref].Phase)
	changed := false
	for k := range g.beams {
		if k == ref || !g.active[k] || res.Amp[k] == 0 || degenerate[k] {
			continue
		}
		cK := cmplx.Rect(g.beams[k].Amp, -g.beams[k].Phase)
		gRatio := (res.Amp[k] / res.Amp[ref]) * (cRef / cK)
		newPhase := dsp.WrapPhase(cmplx.Phase(gRatio) + g.beams[ref].Phase)
		if math.Abs(dsp.WrapPhase(newPhase-g.beams[k].Phase)) > 0.05 {
			g.beams[k].Phase = newPhase
			changed = true
		}
	}
	if changed {
		g.applyWeights(t)
	}
}

// delayDegenerate marks beams whose relative delays are closer than a
// large fraction of the sounder resolution to another active beam: the CIR
// fit cannot split amplitude (hence phase) between such pairs, so their
// per-beam complex amplitudes are not trustworthy for phase updates.
// The returned slice is the manager's reused degBuf — valid until the
// next call.
func (g *Manager) delayDegenerate() []bool {
	const minSepS = 1.0e-9
	if cap(g.degBuf) < len(g.beams) {
		g.degBuf = make([]bool, len(g.beams))
	}
	out := g.degBuf[:len(g.beams)]
	for i := range out {
		out[i] = false
	}
	for a := range g.beams {
		for b := a + 1; b < len(g.beams); b++ {
			if g.active[a] && g.active[b] && math.Abs(g.relDelays[a]-g.relDelays[b]) < minSepS {
				out[a], out[b] = true, true
			}
		}
	}
	return out
}

// ccUpdatable returns how many non-reference active beams a CC phase
// refresh could actually update.
func (g *Manager) ccUpdatable() int {
	if len(g.beams) < 2 {
		return 0
	}
	deg := g.delayDegenerate()
	ref := -1
	for k := range g.beams {
		if g.active[k] {
			ref = k
			break
		}
	}
	if ref < 0 || deg[ref] {
		return 0
	}
	n := 0
	for k := range g.beams {
		if k != ref && g.active[k] && !deg[k] {
			n++
		}
	}
	return n
}

// refineUE re-aligns the UE combining beam after a detected common-mode
// drop: one probe per rotation direction candidate (§4.4).
func (g *Manager) refineUE(t float64, m *channel.Model, dev float64) {
	g.Refinements++
	pr := &boundProber{s: g.sounder, m: m}
	shifted := func(d float64) []float64 {
		out := make([]float64, len(g.ueAngles))
		for i, a := range g.ueAngles {
			out[i] = a + d
		}
		return out
	}
	cand1, cand2 := shifted(dev), shifted(-dev)
	prev := g.ueW
	var r1, r2 float64
	if g.applyUEWeights(cand1) {
		m.RxWeights = g.ueW
		r1 = nr.RSS(pr.Probe(g.w))
	}
	if g.applyUEWeights(cand2) {
		m.RxWeights = g.ueW
		r2 = nr.RSS(pr.Probe(g.w))
	}
	switch {
	case r1 == 0 && r2 == 0:
		g.ueW = prev
	case r1 >= r2:
		g.ueAngles = cand1
		g.applyUEWeights(cand1)
	default:
		g.ueAngles = cand2
		g.applyUEWeights(cand2)
	}
	m.RxWeights = g.ueW
	g.needAnch = true
}

// applyUEWeights composes the UE multi-beam with one lobe per (active) gNB
// beam, amplitude-weighted by the measured path strengths (RX-side MRC).
// Per-lobe phases are irrelevant here: the TX-side constructive combining
// absorbs the UE lobe phases path by path.
func (g *Manager) applyUEWeights(ueAngles []float64) bool {
	if g.ueArr == nil || len(ueAngles) == 0 {
		return false
	}
	var lobes []multibeam.Beam
	for k, a := range ueAngles {
		if k < len(g.active) && !g.active[k] {
			continue
		}
		lobes = append(lobes, multibeam.Beam{Angle: a, Amp: g.ueAmp(k)})
	}
	if len(lobes) == 0 {
		// Everything blocked: keep all lobes rather than go dark.
		for k, a := range ueAngles {
			lobes = append(lobes, multibeam.Beam{Angle: a, Amp: g.ueAmp(k)})
		}
	}
	w, err := multibeam.WeightsInto(g.ueArr, lobes, nil, g.ueScratch)
	if err != nil {
		return false
	}
	g.ueW = w
	return true
}

// applyUEWeightsN composes the UE multi-beam from the first n lobes only
// (used while beam-set selection evaluates candidate beam counts).
func (g *Manager) applyUEWeightsN(n int) bool {
	if n > len(g.ueAngles) {
		n = len(g.ueAngles)
	}
	if n <= 0 {
		return false
	}
	lobes := make([]multibeam.Beam, n)
	for k := 0; k < n; k++ {
		lobes[k] = multibeam.Beam{Angle: g.ueAngles[k], Amp: g.ueAmp(k)}
	}
	w, err := multibeam.WeightsInto(g.ueArr, lobes, nil, g.ueScratch)
	if err != nil {
		return false
	}
	g.ueW = w
	return true
}

// ueAmp returns the MRC amplitude of UE lobe k (1 when unknown).
func (g *Manager) ueAmp(k int) float64 {
	if k < len(g.ueAmps) && g.ueAmps[k] > 0 {
		return g.ueAmps[k]
	}
	return 1
}

// refine re-aligns the deviated beams: one ambiguity probe each, then a
// constructive-combining re-estimate with the cached per-beam magnitudes.
// Runs allocation-free in steady state (under maintain's workspace mark):
// probes land in retained buffers, refreshed magnitudes overwrite the
// cached rows in place, and the re-estimate works out of the workspace.
func (g *Manager) refine(t float64, m *channel.Model, deviated []int, devs []float64) {
	g.Refinements++
	g.bp.m = m
	pr := &g.bp
	for i, k := range deviated {
		c1, c2 := track.Candidates(g.angles[k], devs[i])
		csi1 := pr.ProbeInto(g.u.SingleBeamInto(c1, g.sbBuf), g.csiBuf)
		rss1 := nr.RSS(csi1)
		if rss1 > g.rssAnchor[k]*dsp.FromDB(-1) {
			// Candidate 1 recovers (within 1 dB of the anchor): take it.
			g.angles[k] = c1
			g.mags[k] = csi1.AbsInto(g.mags[k])
			g.rssAnchor[k] = rss1
		} else {
			// Otherwise the motion went the other way.
			csi2 := pr.ProbeInto(g.u.SingleBeamInto(c2, g.sbBuf), g.csi2Buf)
			// Accept whichever candidate measures stronger; this costs one
			// extra probe only when the first guess was wrong, matching the
			// paper's "probe one, fall back to the other" procedure.
			rss2 := nr.RSS(csi2)
			if rss2 >= rss1 {
				g.angles[k] = c2
				g.mags[k] = csi2.AbsInto(g.mags[k])
				g.rssAnchor[k] = rss2
			} else {
				g.angles[k] = c1
				g.mags[k] = csi1.AbsInto(g.mags[k])
				g.rssAnchor[k] = rss1
			}
		}
		g.beams[k].Angle = g.angles[k]
	}
	// Re-estimate constructive combining with refreshed magnitudes.
	if g.cfg.ConstructiveCombining && len(g.angles) > 1 {
		if err := estimateWithMagsInto(&g.estBuf, pr, g.u, g.angles, g.mags, g.relDelays, g.budget.BandwidthHz, g.ws); err == nil {
			if beams, err := g.estBuf.BeamsInto(g.angles, g.beamsBuf); err == nil {
				g.beamsBuf = beams
				for k := range beams {
					if g.active[k] {
						g.beams[k] = beams[k]
					} else {
						beams[k] = g.beams[k]
					}
				}
			}
		}
	}
	if !g.applyWeights(t) {
		g.retrainCause(t, "compose")
		return
	}
	g.needAnch = true
}

// estimateWithMags runs the 2(K−1)-probe constructive-combining estimation
// reusing cached per-beam magnitudes (the paper's accounting: p1, p2 known
// from training).
func estimateWithMags(pr probe.Prober, u *antenna.ULA, angles []float64, mags [][]float64, rel []float64, bw float64) (probe.Result, error) {
	var res probe.Result
	if err := estimateWithMagsInto(&res, pr, u, angles, mags, rel, bw, nil); err != nil {
		return probe.Result{}, err
	}
	return res, nil
}

// estimateWithMagsInto is estimateWithMags reusing res's slice storage and
// drawing the pair estimator's working buffers from ws (both optional —
// the arithmetic and probe order are identical either way).
func estimateWithMagsInto(res *probe.Result, pr probe.Prober, u *antenna.ULA, angles []float64, mags [][]float64, rel []float64, bw float64, ws *scratch.Workspace) error {
	res.PerBeamPower = res.PerBeamPower[:0]
	res.Relative = res.Relative[:0]
	res.Probes = 0
	for k := range angles {
		res.PerBeamPower = append(res.PerBeamPower, meanPower(mags[k]))
	}
	for k := 1; k < len(angles); k++ {
		est, err := probe.EstimatePairWithDelayWS(pr, u, angles[0], angles[k], mags[0], mags[k], rel[k], bw, ws)
		if err != nil {
			return err
		}
		res.Relative = append(res.Relative, est)
		res.Probes += 2
	}
	return nil
}

func meanPower(mags []float64) float64 {
	var s float64
	for _, m := range mags {
		s += m * m
	}
	if len(mags) == 0 {
		return 0
	}
	return s / float64(len(mags))
}

// floorPowersInto clamps non-positive extracted powers to a tiny epsilon so
// the tracker can anchor (a fully-blocked beam at establishment time),
// copying into the manager's retained buffer.
func (g *Manager) floorPowersInto(p []float64) []float64 {
	out := append(g.pwrBuf[:0], p...)
	g.pwrBuf = out[:0]
	for i, v := range out {
		if v <= 0 {
			out[i] = 1e-30
		}
	}
	return out
}

// boundProber adapts the sounder + a channel snapshot to probe.Prober.
type boundProber struct {
	s *nr.Sounder
	m *channel.Model
}

// Probe implements probe.Prober.
func (p *boundProber) Probe(w cmx.Vector) cmx.Vector { return p.s.Probe(p.m, w) }

// ProbeInto implements probe.IntoProber: same sounding and randomness as
// Probe, landing the CSI in dst.
func (p *boundProber) ProbeInto(w, dst cmx.Vector) cmx.Vector {
	return p.s.ProbeInto(p.m, w, dst)
}
