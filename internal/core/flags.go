package core

import "fmt"

// A FlagCheck validates one parsed CLI flag value; nil means the value is
// acceptable. The CLIs share these instead of hand-rolling per-main guards
// so the same flag gets the same rule and the same message everywhere
// (mmstation used to reject -budget -1 while mmmetro accepted -shards -1).
type FlagCheck func() error

// CheckFlags runs the checks in order and returns the first failure,
// prefixed with the program name — ready to print to stderr before
// exiting 1.
func CheckFlags(prog string, checks ...FlagCheck) error {
	for _, c := range checks {
		if err := c(); err != nil {
			return fmt.Errorf("%s: %w", prog, err)
		}
	}
	return nil
}

// IntAtLeast requires -name ≥ min.
func IntAtLeast(name string, v, min int) FlagCheck {
	return func() error {
		if v < min {
			return fmt.Errorf("-%s must be ≥ %d (got %d)", name, min, v)
		}
		return nil
	}
}

// Int64AtLeast requires -name ≥ min.
func Int64AtLeast(name string, v, min int64) FlagCheck {
	return func() error {
		if v < min {
			return fmt.Errorf("-%s must be ≥ %d (got %d)", name, min, v)
		}
		return nil
	}
}

// FloatPositive requires -name > 0.
func FloatPositive(name string, v float64) FlagCheck {
	return func() error {
		if !(v > 0) {
			return fmt.Errorf("-%s must be > 0 (got %g)", name, v)
		}
		return nil
	}
}

// FloatAtLeast requires -name ≥ min.
func FloatAtLeast(name string, v, min float64) FlagCheck {
	return func() error {
		if !(v >= min) {
			return fmt.Errorf("-%s must be ≥ %g (got %g)", name, min, v)
		}
		return nil
	}
}

// FlagRequires rejects -name when it was supplied without its prerequisite
// -dep (e.g. benchjson's -strict is meaningless without -compare). set and
// depSet report whether each flag carries a non-default value.
func FlagRequires(name string, set bool, dep string, depSet bool) FlagCheck {
	return func() error {
		if set && !depSet {
			return fmt.Errorf("-%s requires -%s", name, dep)
		}
		return nil
	}
}

// FloatInRange requires lo ≤ -name ≤ hi.
func FloatInRange(name string, v, lo, hi float64) FlagCheck {
	return func() error {
		if !(v >= lo && v <= hi) {
			return fmt.Errorf("-%s must be in [%g, %g] (got %g)", name, lo, hi, v)
		}
		return nil
	}
}
