package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version renders one CLI's build identity from the binary's embedded
// build info: module path, module version, toolchain, and — when the
// binary was built inside a git checkout — the VCS revision and dirty
// flag. Every CLI's -version flag prints this line and exits; it is the
// only output that is allowed to vary between hosts (stdout proper stays
// byte-identical, see the determinism contract).
func Version(prog string) string {
	mod, ver, rev, dirty := "mmreliable", "(devel)", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			mod = bi.Main.Path
		}
		if bi.Main.Version != "" {
			ver = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	line := fmt.Sprintf("%s %s %s (%s)", prog, mod, ver, runtime.Version())
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		line += " rev " + rev
		if dirty {
			line += "+dirty"
		}
	}
	return line
}
