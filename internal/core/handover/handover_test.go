package handover

import (
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// twoGNBScenario builds an open area with two gNBs on opposite sides of the
// UE, plus a reflector near each so both cells support multi-beams.
func twoGNBScenario(blockA bool) *sim.MultiScenario {
	e := env.NewEnvironment(env.Band28GHz(),
		env.Wall{Seg: env.Segment{A: env.Vec2{X: -5, Y: 4}, B: env.Vec2{X: 25, Y: 4}}, Mat: env.Metal},
	)
	e.FrontHalfOnly = false // gNBs face opposite directions; keep it simple
	sc := &sim.MultiScenario{
		Env: e,
		GNBs: []env.Pose{
			{Pos: env.Vec2{X: 0, Y: 0}, Facing: 0},        // gNB A, west
			{Pos: env.Vec2{X: 20, Y: 0}, Facing: math.Pi}, // gNB B, east
		},
		UE:       motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 8, Y: 0.5}, Facing: 0}},
		Duration: 1.0,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
	}
	if blockA {
		// Everything from gNB A dies for 400 ms mid-run: an AllPaths event
		// would also hit gNB B, so block gNB A's paths individually
		// (indices 0..MaxPaths-1 address gNB 0's paths).
		for k := 0; k < sc.MaxPaths; k++ {
			sc.Blockage = append(sc.Blockage, events.Event{
				PathIndex: k, Start: 0.3, Duration: 0.4, DepthDB: 45,
				RampTime: events.RampFor(45),
			})
		}
	}
	return sc
}

func newController(t *testing.T, n int, seed int64) *Controller {
	t.Helper()
	c, err := New("ho", n, antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New("x", 0, antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), DefaultConfig(), rng); err == nil {
		t.Fatal("0 gNBs should fail")
	}
	cfg := DefaultConfig()
	cfg.OutageConfirm = 0
	if _, err := New("x", 2, antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), cfg, rng); err == nil {
		t.Fatal("zero confirm should fail")
	}
}

func TestNoHandoverOnHealthyLink(t *testing.T) {
	c := newController(t, 2, 2)
	out, err := (sim.Runner{}).RunMulti(twoGNBScenario(false), c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Handovers != 0 {
		t.Fatalf("spurious handovers: %d", c.Handovers)
	}
	if c.Serving() != 0 {
		t.Fatalf("serving moved to %d", c.Serving())
	}
	if out["ho"].Summary.Reliability < 0.9 {
		t.Fatalf("healthy reliability %g", out["ho"].Summary.Reliability)
	}
}

func TestHandoverOnServingCellDeath(t *testing.T) {
	c := newController(t, 2, 3)
	out, err := (sim.Runner{}).RunMulti(twoGNBScenario(true), c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Handovers == 0 {
		t.Fatal("no handover despite serving-cell death")
	}
	if c.Serving() != 1 {
		t.Fatalf("serving = %d, want gNB B", c.Serving())
	}
	ho := out["ho"].Summary

	// Baseline: the same manager pinned to gNB A rides the outage down.
	mgr, err := manager.New("pinned", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), manager.DefaultConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	outP, err := (sim.Runner{}).RunMulti(twoGNBScenario(true), sim.Pinned{Scheme: mgr, GNB: 0})
	if err != nil {
		t.Fatal(err)
	}
	pinned := outP["pinned"].Summary
	if ho.Reliability <= pinned.Reliability {
		t.Fatalf("handover reliability %g not above pinned %g", ho.Reliability, pinned.Reliability)
	}
	// The 400 ms total blackout bounds the pinned reliability near 0.6.
	if pinned.Reliability > 0.75 {
		t.Fatalf("pinned baseline suspiciously healthy: %g", pinned.Reliability)
	}
}

func TestEvaluationHysteresis(t *testing.T) {
	// With a single gNB there is never anything to evaluate.
	c := newController(t, 1, 4)
	sc := twoGNBScenario(true)
	sc.GNBs = sc.GNBs[:1]
	if _, err := (sim.Runner{}).RunMulti(sc, c); err != nil {
		t.Fatal(err)
	}
	if c.Evaluations != 0 || c.Handovers != 0 {
		t.Fatalf("single-gNB controller evaluated/handed over: %d/%d", c.Evaluations, c.Handovers)
	}
}

func TestPinnedAdapter(t *testing.T) {
	mgr, err := manager.New("m", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), manager.DefaultConfig(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	p := sim.Pinned{Scheme: mgr, GNB: 1}
	if got := p.Name(); got != "m" {
		t.Fatalf("name %q", got)
	}
	out, err := (sim.Runner{}).RunMulti(twoGNBScenario(false), p)
	if err != nil {
		t.Fatal(err)
	}
	if out["m"].Summary.MeanSNRdB < 10 {
		t.Fatalf("pinned-to-B SNR %g", out["m"].Summary.MeanSNRdB)
	}
}

func TestMultiScenarioValidation(t *testing.T) {
	sc := twoGNBScenario(false)
	sc.MaxPaths = 0
	if _, err := (sim.Runner{}).RunMulti(sc, newController(t, 2, 6)); err == nil {
		t.Fatal("MaxPaths=0 should fail for multi scenarios")
	}
	sc2 := twoGNBScenario(false)
	sc2.GNBs = nil
	if _, err := (sim.Runner{}).RunMulti(sc2, newController(t, 2, 7)); err == nil {
		t.Fatal("no gNBs should fail")
	}
	if _, err := (sim.Runner{}).RunMulti(twoGNBScenario(false)); err == nil {
		t.Fatal("no schemes should fail")
	}
}

// TestEmptyScheduleKeepsServingCell: an explicitly empty (non-nil)
// blockage schedule is a healthy link — the controller must never start an
// evaluation, let alone hand over.
func TestEmptyScheduleKeepsServingCell(t *testing.T) {
	c := newController(t, 2, 8)
	sc := twoGNBScenario(false)
	sc.Blockage = events.Schedule{}
	sc.Duration = 0.4
	out, err := (sim.Runner{}).RunMulti(sc, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Evaluations != 0 || c.Handovers != 0 {
		t.Fatalf("empty schedule triggered %d evaluations / %d handovers", c.Evaluations, c.Handovers)
	}
	if out["ho"].Summary.Reliability < 0.9 {
		t.Fatalf("healthy reliability %g", out["ho"].Summary.Reliability)
	}
}

// TestOverlappingBlockageTriggersHandover: each of gNB A's paths carries
// two OVERLAPPING events of partial depth. Either event alone leaves the
// link above the outage threshold; only the summed overlap window kills
// the cell — the handover must fire off the combined loss.
func TestOverlappingBlockageTriggersHandover(t *testing.T) {
	sc := twoGNBScenario(false)
	for k := 0; k < sc.MaxPaths; k++ {
		sc.Blockage = append(sc.Blockage,
			events.Event{PathIndex: k, Start: 0.25, Duration: 0.35, DepthDB: 14,
				RampTime: events.RampFor(14)},
			events.Event{PathIndex: k, Start: 0.35, Duration: 0.45, DepthDB: 31,
				RampTime: events.RampFor(31)},
		)
	}
	c := newController(t, 2, 9)
	if _, err := (sim.Runner{}).RunMulti(sc, c); err != nil {
		t.Fatal(err)
	}
	if c.Handovers == 0 {
		t.Fatal("no handover despite overlapping blockage killing the serving cell")
	}
	if c.Serving() != 1 {
		t.Fatalf("serving = %d, want gNB B", c.Serving())
	}
}

// TestBlockageIndexPastConcatenatedPaths: a path index at or beyond
// nGNBs·MaxPaths addresses nothing in the concatenated per-gNB path list —
// the event must be dropped silently, not wrap around onto some cell.
func TestBlockageIndexPastConcatenatedPaths(t *testing.T) {
	sc := twoGNBScenario(false)
	sc.Duration = 0.4
	for _, idx := range []int{2 * sc.MaxPaths, 2*sc.MaxPaths + 5, 1000} {
		sc.Blockage = append(sc.Blockage, events.Event{
			PathIndex: idx, Start: 0.1, Duration: 0.25, DepthDB: 50,
			RampTime: events.RampFor(50),
		})
	}
	c := newController(t, 2, 10)
	out, err := (sim.Runner{}).RunMulti(sc, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Evaluations != 0 || c.Handovers != 0 {
		t.Fatalf("out-of-range blockage indices triggered %d evaluations / %d handovers",
			c.Evaluations, c.Handovers)
	}
	if out["ho"].Summary.Reliability < 0.9 {
		t.Fatalf("out-of-range events degraded the link: reliability %g", out["ho"].Summary.Reliability)
	}
}
