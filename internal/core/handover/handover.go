// Package handover implements the paper's escape hatch for complete
// outages (§4.1, §8): when every path to the serving gNB is blocked and the
// local recovery ladder (power reallocation → refinement → retraining) has
// failed, the UE evaluates neighboring gNBs with short beam sweeps and
// hands the link over to the strongest one, where a fresh mmReliable
// manager establishes a constructive multi-beam.
package handover

import (
	"fmt"
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/dsp"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

// Config tunes the controller.
type Config struct {
	// OutageConfirm is how long (seconds) the serving link must stay in
	// outage before a handover evaluation starts — long enough for the
	// serving manager's own retraining to have had its chance.
	OutageConfirm float64
	// EvalBeams is the sweep size used to score each candidate gNB.
	EvalBeams int
	// MinImprovementDB is the advantage a candidate must show over the
	// serving cell's measured strength to win the handover (hysteresis
	// against ping-pong).
	MinImprovementDB float64
	// Manager configures the per-gNB beam managers.
	Manager manager.Config
}

// DefaultConfig returns conservative handover parameters.
func DefaultConfig() Config {
	return Config{
		OutageConfirm:    60e-3,
		EvalBeams:        9,
		MinImprovementDB: 3,
		Manager:          manager.DefaultConfig(),
	}
}

// Controller runs one mmReliable manager per gNB and moves the link to
// whichever gNB survives.
type Controller struct {
	name    string
	cfg     Config
	budget  link.Budget
	num     nr.Numerology
	mgrs    []*manager.Manager
	sounder *nr.Sounder
	cb      *antenna.Codebook

	serving        int
	badSlots       int
	trainRemaining int
	pendingEval    bool
	everGood       bool

	// Handovers counts executed cell switches.
	Handovers int
	// Evaluations counts candidate sweeps (including ones that kept the
	// serving cell).
	Evaluations int
}

// New builds a controller over n gNBs. rng seeds the per-manager sounders
// and the controller's evaluation sounder.
func New(name string, n int, u *antenna.ULA, budget link.Budget, num nr.Numerology, cfg Config, rng *rand.Rand) (*Controller, error) {
	if n < 1 {
		return nil, fmt.Errorf("handover: need ≥1 gNB, got %d", n)
	}
	if cfg.OutageConfirm <= 0 || cfg.EvalBeams < 1 {
		return nil, fmt.Errorf("handover: invalid config %+v", cfg)
	}
	c := &Controller{name: name, cfg: cfg, budget: budget, num: num}
	for i := 0; i < n; i++ {
		m, err := manager.New(fmt.Sprintf("%s-gnb%d", name, i), u, budget, num, cfg.Manager, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, err
		}
		c.mgrs = append(c.mgrs, m)
	}
	s, err := nr.NewSounder(num, budget.BandwidthHz, cfg.Manager.NumSC, budget.NoiseToTxAmpRatio(), nr.DefaultImpairments(), rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	c.sounder = s
	scan := dsp.Rad(cfg.Manager.ScanRangeDeg)
	c.cb = antenna.DFTCodebook(u, cfg.EvalBeams, -scan, scan)
	return c, nil
}

// Name implements sim.MultiScheme.
func (c *Controller) Name() string { return c.name }

// Serving returns the current serving gNB index.
func (c *Controller) Serving() int { return c.serving }

// StepMulti implements sim.MultiScheme.
func (c *Controller) StepMulti(t float64, ms []*channel.Model) sim.Slot {
	if len(ms) != len(c.mgrs) {
		panic(fmt.Sprintf("handover: %d channels for %d gNBs", len(ms), len(c.mgrs)))
	}
	// A pending evaluation consumes whole slots (one candidate sweep's
	// worth of SSBs), then executes.
	if c.trainRemaining > 0 {
		c.trainRemaining--
		if c.trainRemaining == 0 && c.pendingEval {
			c.pendingEval = false
			c.evaluate(ms)
		}
		return sim.Slot{SNRdB: math.Inf(-1), Training: true}
	}
	slot := c.mgrs[c.serving].Step(t, ms[c.serving])
	// Count every sub-threshold slot toward the outage clock — including
	// the serving manager's own (futile) retraining slots: a dead cell
	// that keeps re-sweeping is still a dead cell. Initial acquisition is
	// exempted until the link has been good once.
	if slot.SNRdB >= link.OutageThresholdDB {
		c.badSlots = 0
		c.everGood = true
	} else if c.everGood {
		c.badSlots++
	}
	if c.badSlots >= c.confirmSlots() && len(c.mgrs) > 1 {
		// Serving cell is beyond local repair: measure the neighbors.
		c.badSlots = 0
		c.pendingEval = true
		sweeps := len(c.mgrs) // serving + candidates, one sweep each
		c.trainRemaining = c.slotsFor(float64(sweeps*c.cb.Len()) * c.num.SSBDuration())
	}
	return slot
}

func (c *Controller) confirmSlots() int {
	return int(math.Max(1, c.cfg.OutageConfirm/c.num.SlotDuration()))
}

func (c *Controller) slotsFor(airTime float64) int {
	return int(math.Max(1, math.Ceil(airTime/c.num.SlotDuration())))
}

// evaluate sweeps every gNB and hands over to the strongest if it beats the
// serving cell by the hysteresis margin.
func (c *Controller) evaluate(ms []*channel.Model) {
	c.Evaluations++
	best, bestRSS := c.serving, 0.0
	servingRSS := 0.0
	for g := range c.mgrs {
		rss := 0.0
		for _, w := range c.cb.Weights {
			if r := nr.RSS(c.sounder.Probe(ms[g], w)); r > rss {
				rss = r
			}
		}
		if g == c.serving {
			servingRSS = rss
		}
		if rss > bestRSS {
			best, bestRSS = g, rss
		}
	}
	if best == c.serving {
		return
	}
	if servingRSS > 0 && 10*math.Log10(bestRSS/servingRSS) < c.cfg.MinImprovementDB {
		return
	}
	c.serving = best
	c.mgrs[best].Reset()
	c.Handovers++
}

// Sanity: Controller implements sim.MultiScheme.
var _ sim.MultiScheme = (*Controller)(nil)
