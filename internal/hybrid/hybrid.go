// Package hybrid is the multi-panel / few-RF-chain beamforming tier: a
// physical array model (P reduced-aperture panels, each with its own analog
// phase-shifter bank, feeding R ≤ P RF chains) plus the per-slot digital
// MMSE combiner that lets one cell serve several UEs in the same slot
// (SDMA). The analog stage reuses the paper's constructive multi-beam
// synthesis (internal/core/multibeam) per panel; the digital stage is the
// classical regularized-MMSE transmit beamformer solved over the co-scheduled
// users' cross-channel matrix with a Cholesky factorization of the K-user
// Gram (internal/cmx).
//
// Everything downstream of the combiner speaks SINR, not SNR: a co-scheduled
// user's slot outcome is its signal power against the sum of cross-terms
// leaked by the other users' beams (internal/link's SINR helpers), and MCS /
// outage are driven from that.
package hybrid

import "os"

// Enabled gates the hybrid/SDMA tier. MMR_HYBRID=off disables it — every
// consumer (the station scheduler's slot-sharing planner, the CLIs' extra
// output lines) falls back to the single-beam TDMA behavior and reproduces
// the pre-hybrid stdout byte for byte, which is the CI oracle for this
// subsystem. Read once at init, exactly like incr.Enabled and the
// MMR_DSP_KERNEL / MMR_TRACER switches; tests that need both modes in one
// process flip the variable directly.
var Enabled = os.Getenv("MMR_HYBRID") != "off"
