package hybrid

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
)

// Array is the multi-panel hybrid front end: the full aperture is split
// into P equal co-located panels, each a reduced-aperture ULA with its own
// analog phase-shifter bank, and the panels feed R ≤ P RF chains
// (round-robin: panel p drives chain p mod R). Each chain therefore owns a
// disjoint subset of the aperture — the few-RF-chain regime of the hybrid
// beamforming literature (arXiv 2503.05524, 1705.04946) — and the digital
// stage (Combiner) mixes the R chain signals per slot.
type Array struct {
	// Full is the composite aperture all panels together span.
	Full *antenna.ULA
	// Panels are the P reduced-aperture sub-arrays, in element order: panel
	// p owns full-aperture elements [p·n/P, (p+1)·n/P).
	Panels []*antenna.ULA
	// Chains is the RF chain count R (1 ≤ R ≤ P).
	Chains int
}

// NewArray splits full into panels equal sub-apertures feeding chains RF
// chains. full.N must divide evenly by panels.
func NewArray(full *antenna.ULA, panels, chains int) (*Array, error) {
	if full == nil {
		return nil, fmt.Errorf("hybrid: nil array")
	}
	if err := full.Validate(); err != nil {
		return nil, err
	}
	if panels < 1 || full.N%panels != 0 {
		return nil, fmt.Errorf("hybrid: %d elements do not split into %d panels", full.N, panels)
	}
	if chains < 1 || chains > panels {
		return nil, fmt.Errorf("hybrid: %d chains outside [1, %d panels]", chains, panels)
	}
	per := full.N / panels
	a := &Array{Full: full, Chains: chains}
	for p := 0; p < panels; p++ {
		a.Panels = append(a.Panels, &antenna.ULA{N: per, Spacing: full.Spacing, Lambda: full.Lambda})
	}
	return a, nil
}

// PanelElems returns the per-panel element count.
func (a *Array) PanelElems() int { return a.Full.N / len(a.Panels) }

// ChainOf returns the RF chain panel p feeds.
func (a *Array) ChainOf(p int) int { return p % a.Chains }

// ChainElems returns the total aperture elements chain r drives.
func (a *Array) ChainElems(r int) int {
	n := 0
	for p := range a.Panels {
		if a.ChainOf(p) == r {
			n += a.Panels[p].N
		}
	}
	return n
}

// ChainWeightInto composes the full-aperture weight vector chain r
// transmits: every panel assigned to r runs its own analog multi-beam bank
// (multibeam.WeightsInto on the panel's reduced aperture) toward the given
// beams, plus the per-panel common phase that aligns the panels toward the
// reference lobe beams[0] — the one extra phase shifter a panel-level bank
// provides. Elements of panels owned by other chains are zero, and the
// result is normalized to unit power, so ‖w‖ = 1 regardless of how many
// panels the chain owns.
//
// dst must be nil or length Full.N; scratch must be nil or exactly one
// panel's element count (PanelElems). Allocation-free when both are
// provided.
func (a *Array) ChainWeightInto(r int, beams []multibeam.Beam, dst, scratch cmx.Vector) (cmx.Vector, error) {
	if r < 0 || r >= a.Chains {
		return nil, fmt.Errorf("hybrid: chain %d outside [0, %d)", r, a.Chains)
	}
	if len(beams) == 0 {
		return nil, fmt.Errorf("hybrid: no beams")
	}
	if dst == nil {
		dst = make(cmx.Vector, a.Full.N)
	}
	if len(dst) != a.Full.N {
		return nil, fmt.Errorf("hybrid: dst length %d != %d elements", len(dst), a.Full.N)
	}
	for i := range dst {
		dst[i] = 0
	}
	per := a.PanelElems()
	// Matched weights conjugate a(φ)[n] = e^{−jκ n sinφ}, so a panel at
	// global element offset o needs the common factor e^{+jκ o sinφ0} to
	// stay phase-continuous with panel 0 toward the reference lobe.
	kappa := 2 * math.Pi * a.Full.Spacing / a.Full.Lambda * math.Sin(beams[0].Angle)
	owned := false
	for p := range a.Panels {
		if a.ChainOf(p) != r {
			continue
		}
		owned = true
		seg := dst[p*per : (p+1)*per]
		w, err := multibeam.WeightsInto(a.Panels[p], beams, seg, scratch)
		if err != nil {
			return nil, err
		}
		align := cmplx.Rect(1, kappa*float64(p*per))
		for i := range w {
			w[i] *= align
		}
	}
	if !owned {
		return nil, fmt.Errorf("hybrid: chain %d owns no panel", r)
	}
	return dst.Normalize(), nil
}
