package hybrid

import (
	"math"
	"math/cmplx"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
)

func mk64(t *testing.T, panels, chains int) *Array {
	t.Helper()
	a, err := NewArray(antenna.NewULA(64, 60e9), panels, chains)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayValidation(t *testing.T) {
	full := antenna.NewULA(64, 60e9)
	for _, tc := range []struct{ panels, chains int }{
		{0, 1},   // no panels
		{3, 1},   // 64 % 3 != 0
		{4, 0},   // no chains
		{4, 5},   // more chains than panels
		{-1, -1}, // nonsense
	} {
		if _, err := NewArray(full, tc.panels, tc.chains); err == nil {
			t.Errorf("NewArray(64, %d, %d) accepted", tc.panels, tc.chains)
		}
	}
	if _, err := NewArray(nil, 4, 2); err == nil {
		t.Error("nil array accepted")
	}
	a, err := NewArray(full, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PanelElems(); got != 16 {
		t.Fatalf("PanelElems = %d, want 16", got)
	}
	for p, want := range []int{0, 1, 0, 1} {
		if got := a.ChainOf(p); got != want {
			t.Fatalf("ChainOf(%d) = %d, want %d", p, got, want)
		}
	}
	if a.ChainElems(0) != 32 || a.ChainElems(1) != 32 {
		t.Fatalf("chain elements %d/%d, want 32/32", a.ChainElems(0), a.ChainElems(1))
	}
}

// TestChainWeightGainAtSteer: a unit-norm weight confined to a chain's n_c
// elements, matched and panel-aligned toward the steering angle, must
// achieve full-aperture gain |a(θ0)·w|² = n_c — panel alignment phases are
// exactly what keeps the disjoint panels coherent.
func TestChainWeightGainAtSteer(t *testing.T) {
	for _, theta := range []float64{0, 0.3, -0.7, 1.1} {
		for _, cfg := range []struct{ panels, chains int }{{4, 2}, {4, 4}, {8, 2}, {2, 1}} {
			a := mk64(t, cfg.panels, cfg.chains)
			beams := []multibeam.Beam{multibeam.Reference(theta)}
			for r := 0; r < a.Chains; r++ {
				w, err := a.ChainWeightInto(r, beams, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if n := w.Norm(); math.Abs(n-1) > 1e-12 {
					t.Fatalf("‖w‖ = %.15f, want 1", n)
				}
				got := a.Full.Gain(w, theta)
				want := float64(a.ChainElems(r))
				if math.Abs(got-want)/want > 1e-9 {
					t.Fatalf("θ=%.1f P=%d R=%d chain %d: gain %.6f, want %.6f",
						theta, cfg.panels, cfg.chains, r, got, want)
				}
			}
		}
	}
}

// TestChainAperturesDisjoint: different chains must never drive the same
// element, and together they must tile the full aperture.
func TestChainAperturesDisjoint(t *testing.T) {
	a := mk64(t, 8, 3)
	beams := []multibeam.Beam{multibeam.Reference(0.2)}
	covered := make([]int, a.Full.N)
	for r := 0; r < a.Chains; r++ {
		w, err := a.ChainWeightInto(r, beams, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range w {
			if cmplx.Abs(x) > 1e-15 {
				covered[i]++
			}
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("element %d driven by %d chains, want exactly 1", i, c)
		}
	}
}

// TestChainWeightMultiBeam: with a two-lobe bank per panel, the panel
// alignment phase targets the reference lobe only — so the reference angle
// still gets ≈half the chain's full coherent gain, while the secondary
// lobe is only panel-level coherent (present, but below the cross-panel
// bound).
func TestChainWeightMultiBeam(t *testing.T) {
	a := mk64(t, 4, 2)
	beams := []multibeam.Beam{multibeam.Reference(-0.5), {Angle: 0.6, Amp: 1, Phase: 0}}
	w, err := a.ChainWeightInto(0, beams, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	gA := a.Full.Gain(w, -0.5)
	gB := a.Full.Gain(w, 0.6)
	half := float64(a.ChainElems(0)) / 2
	if gA < 0.7*half || gA > 1.3*half {
		t.Fatalf("reference lobe gain %.2f, want ≈%.2f (±30%% ripple)", gA, half)
	}
	if gB <= 1 {
		t.Fatalf("secondary lobe gain %.2f, want above isotropic", gB)
	}
	if gB >= gA {
		t.Fatalf("secondary lobe %.2f not below cross-panel-aligned reference %.2f", gB, gA)
	}
}

func TestChainWeightErrors(t *testing.T) {
	a := mk64(t, 4, 2)
	beams := []multibeam.Beam{multibeam.Reference(0)}
	if _, err := a.ChainWeightInto(-1, beams, nil, nil); err == nil {
		t.Error("negative chain accepted")
	}
	if _, err := a.ChainWeightInto(2, beams, nil, nil); err == nil {
		t.Error("out-of-range chain accepted")
	}
	if _, err := a.ChainWeightInto(0, nil, nil, nil); err == nil {
		t.Error("empty beams accepted")
	}
	if _, err := a.ChainWeightInto(0, beams, make(cmx.Vector, 3), nil); err == nil {
		t.Error("short dst accepted")
	}
}

// TestChainWeightIntoAllocFree: with caller-provided dst and scratch the
// composition must not allocate.
func TestChainWeightIntoAllocFree(t *testing.T) {
	a := mk64(t, 4, 2)
	beams := []multibeam.Beam{multibeam.Reference(0.4)}
	dst := make(cmx.Vector, a.Full.N)
	scratch := make(cmx.Vector, a.PanelElems())
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := a.ChainWeightInto(1, beams, dst, scratch); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ChainWeightInto allocates %.1f times, want 0", allocs)
	}
}
