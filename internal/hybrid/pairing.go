package hybrid

import (
	"math"

	"mmreliable/internal/antenna"
)

// AngularGap returns the absolute AoD separation (radians) between two
// tracked departure angles — the quantity the SDMA planner thresholds
// before it will even consider putting two sessions in the same slot.
func AngularGap(a, b float64) float64 {
	return math.Abs(a - b)
}

// PredictSINRdB is the planner's cheap pre-commit estimate of the SINR UE
// self would see if the sessions with tracked AoDs aods and current
// single-beam SNRs snrDB (dB) shared a slot on array u: transmit power
// splits K ways, and each co-scheduled user's matched beam leaks onto
// self's angle with the classic array-factor rolloff,
//
//	SINR_self = (S_self/K) / (1 + Σ_{v≠self} (S_v/K)·AF(φ_v → φ_self)²),
//
// with S in linear units of noise. It deliberately ignores multipath and
// the MMSE combiner's interference suppression — a pessimistic screen, so
// a group that passes here only improves once the digital stage runs.
func PredictSINRdB(u *antenna.ULA, aods, snrDB []float64, self int) float64 {
	k := float64(len(aods))
	sig := math.Pow(10, snrDB[self]/10) / k
	if sig <= 0 {
		return math.Inf(-1)
	}
	den := 1.0
	for v := range aods {
		if v == self {
			continue
		}
		af := u.ArrayFactor(aods[v], aods[self])
		den += math.Pow(10, snrDB[v]/10) / k * af * af
	}
	return 10 * math.Log10(sig/den)
}
