package hybrid

import (
	"math"
	"testing"

	"mmreliable/internal/antenna"
)

func TestAngularGap(t *testing.T) {
	if g := AngularGap(0.5, -0.25); math.Abs(g-0.75) > 1e-15 {
		t.Fatalf("AngularGap = %g, want 0.75", g)
	}
	if g := AngularGap(-0.25, 0.5); math.Abs(g-0.75) > 1e-15 {
		t.Fatalf("AngularGap asymmetric: %g", g)
	}
}

// TestPredictSINRMonotoneInSeparation: for two equal-SNR users the
// predicted SINR must improve as the pair separates in angle and approach
// the half-power SNR bound at wide separation.
func TestPredictSINRMonotoneInSeparation(t *testing.T) {
	u := antenna.NewULA(64, 60e9)
	const snr = 27.0
	bound := snr - 10*math.Log10(2) // S/2 over unit noise, interference-free
	prev := math.Inf(-1)
	for _, sep := range []float64{0.01, 0.05, 0.15, 0.4, 0.9} {
		got := PredictSINRdB(u, []float64{0, sep}, []float64{snr, snr}, 0)
		if got < prev-1e-9 {
			t.Fatalf("separation %.2f: SINR %.2f dB dropped below %.2f dB", sep, got, prev)
		}
		if got > bound+1e-9 {
			t.Fatalf("separation %.2f: SINR %.2f dB above the %.2f dB power-split bound", sep, got, bound)
		}
		prev = got
	}
	wide := PredictSINRdB(u, []float64{0, 0.9}, []float64{snr, snr}, 0)
	if bound-wide > 0.5 {
		t.Fatalf("wide separation SINR %.2f dB, want within 0.5 dB of %.2f dB", wide, bound)
	}
	tight := PredictSINRdB(u, []float64{0, 0.01}, []float64{snr, snr}, 0)
	if wide-tight < 10 {
		t.Fatalf("co-located pair predicted only %.2f dB below separated (%.2f vs %.2f)",
			wide-tight, tight, wide)
	}
}

// TestPredictSINRPowerSplit: adding more co-scheduled users at wide
// separations still costs the 1/K power split.
func TestPredictSINRPowerSplit(t *testing.T) {
	u := antenna.NewULA(64, 60e9)
	const snr = 30.0
	two := PredictSINRdB(u, []float64{-0.8, 0.8}, []float64{snr, snr}, 0)
	four := PredictSINRdB(u, []float64{-0.9, -0.3, 0.3, 0.9}, []float64{snr, snr, snr, snr}, 0)
	if four >= two {
		t.Fatalf("4-user prediction %.2f dB not below 2-user %.2f dB", four, two)
	}
	if d := two - four; d < 2 || d > 4.5 {
		t.Fatalf("2→4 user cost %.2f dB, want ≈3 dB power split (2–4.5)", d)
	}
}

func TestPredictSINRDeadSignal(t *testing.T) {
	u := antenna.NewULA(8, 60e9)
	if got := PredictSINRdB(u, []float64{0, 0.5}, []float64{math.Inf(-1), 20}, 0); !math.IsInf(got, -1) {
		t.Fatalf("dead signal predicted %.2f dB, want -Inf", got)
	}
}
