package hybrid

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/cmx"
	"mmreliable/internal/link"
)

// fillRandomGroup populates a k-user group's cross channels with a random
// frequency-smooth wideband profile at a realistic link-budget amplitude
// scale (|h| ~ 1e-4, the indoor small-cell regime), dominant on the
// diagonal so the group is physically pairable.
func fillRandomGroup(c *Combiner, k int, rng *rand.Rand) {
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			re, im := c.Entry(u, v)
			amp := 1e-4
			if u != v {
				amp *= 0.05 + 0.1*rng.Float64() // cross-beam leakage
			}
			phase := 2 * math.Pi * rng.Float64()
			slope := (rng.Float64() - 0.5) * 0.2 // mild frequency selectivity
			for j := range re {
				ph := phase + slope*float64(j)/float64(len(re))
				re[j] = amp * math.Cos(ph)
				im[j] = amp * math.Sin(ph)
			}
		}
	}
}

// directInverseWeights recomputes the MMSE weights of a filled group with
// cmx.Solve's partially-pivoted Gaussian elimination on an explicitly
// formed Gram — the direct-inverse oracle the Cholesky path is pinned to.
func directInverseWeights(c *Combiner, k int, txLin, noiseLin float64) *cmx.Matrix {
	p := txLin / float64(k)
	mid := c.NumSC() / 2
	h := cmx.NewMatrix(k, k)
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			re, im := c.Entry(u, v)
			h.Set(u, v, complex(re[mid], im[mid]))
		}
	}
	gram := cmx.NewMatrix(k, k)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			var s complex128
			for u := 0; u < k; u++ {
				s += cmplx.Conj(h.At(u, a)) * h.At(u, b)
			}
			g := complex(p, 0) * s
			if a == b {
				g += complex(noiseLin, 0)
			}
			gram.Set(a, b, g)
		}
	}
	w := cmx.NewMatrix(k, k)
	for u := 0; u < k; u++ {
		rhs := make(cmx.Vector, k)
		for v := 0; v < k; v++ {
			rhs[v] = cmplx.Conj(h.At(u, v))
		}
		x, err := cmx.Solve(gram, rhs)
		if err != nil {
			panic(err)
		}
		x.Normalize()
		for v := 0; v < k; v++ {
			w.Set(u, v, x[v])
		}
	}
	return w
}

// TestCombinerMatchesDirectInverseOracle pins the Cholesky-backed MMSE
// solve against the Gaussian-elimination direct inverse to ≤1e-12 — the
// headline numerical contract of the hybrid tier.
func TestCombinerMatchesDirectInverseOracle(t *testing.T) {
	budget := link.DefaultBudget()
	txLin, noiseLin := budget.SNRTerms()
	rng := rand.New(rand.NewSource(7))
	c := NewCombiner(8, 64)
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(7) // 2..8
		if err := c.Begin(k); err != nil {
			t.Fatal(err)
		}
		fillRandomGroup(c, k, rng)
		if err := c.Solve(txLin, noiseLin); err != nil {
			t.Fatalf("trial %d (k=%d): %v", trial, k, err)
		}
		oracle := directInverseWeights(c, k, txLin, noiseLin)
		for u := 0; u < k; u++ {
			for v := 0; v < k; v++ {
				d := cmplx.Abs(c.Weight(u, v) - oracle.At(u, v))
				if d > 1e-12 {
					t.Fatalf("trial %d W[%d][%d]: |Δ| = %.3e > 1e-12 (got %v, oracle %v)",
						trial, u, v, d, c.Weight(u, v), oracle.At(u, v))
				}
			}
		}
	}
}

// TestCombinerRowsUnitNorm checks every solved precoder row is L2-unit.
func TestCombinerRowsUnitNorm(t *testing.T) {
	budget := link.DefaultBudget()
	txLin, noiseLin := budget.SNRTerms()
	rng := rand.New(rand.NewSource(3))
	c := NewCombiner(4, 32)
	if err := c.Begin(3); err != nil {
		t.Fatal(err)
	}
	fillRandomGroup(c, 3, rng)
	if err := c.Solve(txLin, noiseLin); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		var nrm float64
		for v := 0; v < 3; v++ {
			w := c.Weight(u, v)
			nrm += real(w)*real(w) + imag(w)*imag(w)
		}
		if math.Abs(nrm-1) > 1e-12 {
			t.Fatalf("row %d norm² = %.15f, want 1", u, nrm)
		}
	}
}

// TestCombinerSuppressesInterference checks the point of the digital
// stage: with the MMSE weights, each user's wideband SINR must be well
// above the raw beam-leakage SINR floor, and a near-diagonal channel must
// come out close to interference-free.
func TestCombinerSuppressesInterference(t *testing.T) {
	budget := link.DefaultBudget()
	txLin, noiseLin := budget.SNRTerms()
	rng := rand.New(rand.NewSource(11))
	c := NewCombiner(4, 64)
	if err := c.Begin(2); err != nil {
		t.Fatal(err)
	}
	fillRandomGroup(c, 2, rng)
	if err := c.Solve(txLin, noiseLin); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		sinr := c.UserSINRdB(u, txLin, noiseLin)
		if math.IsInf(sinr, -1) || sinr < link.OutageThresholdDB {
			t.Fatalf("user %d: SINR %.2f dB below outage threshold despite MMSE", u, sinr)
		}
	}
}

// TestCombinerZeroCrossTermsMatchesSNR: with exactly zero off-diagonal
// channels the MMSE weights must be (phase-rotated) identity and each
// user's SINR must equal the single-user wideband SNR of its own channel
// at 1/K power.
func TestCombinerZeroCrossTermsMatchesSNR(t *testing.T) {
	budget := link.DefaultBudget()
	txLin, noiseLin := budget.SNRTerms()
	const nsc = 48
	c := NewCombiner(2, nsc)
	if err := c.Begin(2); err != nil {
		t.Fatal(err)
	}
	ownRe := make([]float64, nsc)
	ownIm := make([]float64, nsc)
	for u := 0; u < 2; u++ {
		for v := 0; v < 2; v++ {
			re, im := c.Entry(u, v)
			for j := 0; j < nsc; j++ {
				re[j], im[j] = 0, 0
				if u == v {
					re[j] = 1.1e-4 * math.Cos(0.03*float64(j)+float64(u))
					im[j] = 1.1e-4 * math.Sin(0.03*float64(j)+float64(u))
					if u == 0 {
						ownRe[j], ownIm[j] = re[j], im[j]
					}
				}
			}
		}
	}
	if err := c.Solve(txLin, noiseLin); err != nil {
		t.Fatal(err)
	}
	if w01 := cmplx.Abs(c.Weight(0, 1)); w01 > 1e-12 {
		t.Fatalf("diagonal channel produced cross weight |W[0][1]| = %.3e", w01)
	}
	got := c.UserSINRdB(0, txLin, noiseLin)
	want := link.WidebandSNRdBSplitTerms(ownRe, ownIm, txLin/2, noiseLin)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("zero-interference SINR %.12f dB != half-power SNR %.12f dB", got, want)
	}
}

// TestCombinerReuseAcrossGroupSizes shrinks and regrows the group on one
// combiner, checking each configuration still matches the oracle (stale
// slab contents from a larger previous group must not bleed in).
func TestCombinerReuseAcrossGroupSizes(t *testing.T) {
	budget := link.DefaultBudget()
	txLin, noiseLin := budget.SNRTerms()
	rng := rand.New(rand.NewSource(5))
	c := NewCombiner(6, 32)
	for _, k := range []int{6, 2, 4, 3, 6} {
		if err := c.Begin(k); err != nil {
			t.Fatal(err)
		}
		fillRandomGroup(c, k, rng)
		if err := c.Solve(txLin, noiseLin); err != nil {
			t.Fatal(err)
		}
		oracle := directInverseWeights(c, k, txLin, noiseLin)
		for u := 0; u < k; u++ {
			for v := 0; v < k; v++ {
				if d := cmplx.Abs(c.Weight(u, v) - oracle.At(u, v)); d > 1e-12 {
					t.Fatalf("k=%d W[%d][%d]: |Δ| = %.3e", k, u, v, d)
				}
			}
		}
	}
}

// TestCombinerErrors covers the misuse paths.
func TestCombinerErrors(t *testing.T) {
	c := NewCombiner(4, 16)
	if err := c.Solve(1, 1e-9); err == nil {
		t.Fatal("Solve before Begin must fail")
	}
	if err := c.Begin(0); err == nil {
		t.Fatal("Begin(0) must fail")
	}
	if err := c.Begin(5); err == nil {
		t.Fatal("Begin(maxUsers+1) must fail")
	}
	// An all-zero channel makes the Gram noiseLin·I — still PD, but the
	// solved rows are zero and must be reported as degenerate.
	if err := c.Begin(2); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		for v := 0; v < 2; v++ {
			re, im := c.Entry(u, v)
			for j := range re {
				re[j], im[j] = 0, 0
			}
		}
	}
	if err := c.Solve(31.6, 7.9e-9); err == nil {
		t.Fatal("all-zero channel must fail Solve")
	}
}

// TestCombinerSteadyStateAllocs pins the whole warm slot sequence —
// Begin, Entry fills, Solve, per-user SINR — at zero allocations.
func TestCombinerSteadyStateAllocs(t *testing.T) {
	budget := link.DefaultBudget()
	txLin, noiseLin := budget.SNRTerms()
	rng := rand.New(rand.NewSource(9))
	c := NewCombiner(4, 64)
	if err := c.Begin(3); err != nil {
		t.Fatal(err)
	}
	fillRandomGroup(c, 3, rng)
	if err := c.Solve(txLin, noiseLin); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.Begin(3); err != nil {
			t.Error(err)
		}
		if err := c.Solve(txLin, noiseLin); err != nil {
			t.Error(err)
		}
		for u := 0; u < 3; u++ {
			if math.IsNaN(c.UserSINRdB(u, txLin, noiseLin)) {
				t.Error("NaN SINR")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm combiner slot allocates %.1f times, want 0", allocs)
	}
}
