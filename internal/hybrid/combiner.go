package hybrid

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/cmx"
	"mmreliable/internal/link"
)

// Combiner is the per-slot digital MMSE stage of the hybrid tier: given the
// K×K wideband cross-channel matrix of a co-scheduled group (entry (u,v) is
// the per-subcarrier channel UE u observes through UE v's analog beam), it
// solves the regularized MMSE transmit beamformer
//
//	W = (noise·I + (P/K)·HᴴH)⁻¹ Hᴴ   (rows L2-normalized)
//
// over the center-subcarrier narrowband H via a Cholesky factorization of
// the K×K Gram, then evaluates each user's capacity-equivalent wideband
// SINR with the full per-subcarrier cross channels. This is the Go port of
// the SNIPPETS compute_mmse_beamformer baseline; combiner_test.go pins it
// against a direct Gaussian-elimination inverse to ≤1e-12.
//
// All storage is preallocated at construction and re-pointed per group
// size, so a long-lived Combiner runs Begin/Entry/Solve/UserSINRdB with
// zero allocations (pinned by the station's hybrid-slot allocs test).
type Combiner struct {
	maxUsers, nsc int
	k             int

	// gRe/gIm hold the wideband cross channels: entry (u,v) occupies the
	// nsc-long stretch at (u·maxUsers+v)·nsc, stride fixed at maxUsers so
	// Entry addresses do not depend on the current group size.
	gRe, gIm []float64

	hData, gramData, wData []complex128
	h, gram, w             cmx.Matrix

	chol cmx.CholeskyFactor
	rhs  cmx.Vector

	sigBuf, intBuf []float64
}

// NewCombiner returns a combiner sized for groups of up to maxUsers users
// and nsc-subcarrier wideband channels.
func NewCombiner(maxUsers, nsc int) *Combiner {
	if maxUsers < 1 || nsc < 1 {
		panic("hybrid: NewCombiner requires maxUsers ≥ 1 and nsc ≥ 1")
	}
	return &Combiner{
		maxUsers: maxUsers,
		nsc:      nsc,
		gRe:      make([]float64, maxUsers*maxUsers*nsc),
		gIm:      make([]float64, maxUsers*maxUsers*nsc),
		hData:    make([]complex128, maxUsers*maxUsers),
		gramData: make([]complex128, maxUsers*maxUsers),
		wData:    make([]complex128, maxUsers*maxUsers),
		chol:     cmx.CholeskyWith(make([]complex128, maxUsers*maxUsers)),
		rhs:      make(cmx.Vector, maxUsers),
		sigBuf:   make([]float64, nsc),
		intBuf:   make([]float64, nsc),
	}
}

// MaxUsers returns the group-size capacity.
func (c *Combiner) MaxUsers() int { return c.maxUsers }

// NumSC returns the per-entry subcarrier count.
func (c *Combiner) NumSC() int { return c.nsc }

// K returns the group size of the slot in progress (0 before first Begin).
func (c *Combiner) K() int { return c.k }

// Begin starts a new slot for a group of k users, re-pointing the internal
// matrices at k×k views of the preallocated slabs. Every Entry (u,v) with
// u,v < k must be filled before Solve — entries are not cleared between
// slots, so a skipped fill would silently reuse the previous group's
// channel.
func (c *Combiner) Begin(k int) error {
	if k < 1 || k > c.maxUsers {
		return fmt.Errorf("hybrid: group size %d outside [1, %d]", k, c.maxUsers)
	}
	c.k = k
	c.h = cmx.Matrix{Rows: k, Cols: k, Data: c.hData[:k*k]}
	c.gram = cmx.Matrix{Rows: k, Cols: k, Data: c.gramData[:k*k]}
	c.w = cmx.Matrix{Rows: k, Cols: k, Data: c.wData[:k*k]}
	return nil
}

// Entry returns the planar per-subcarrier buffers for cross-channel (u,v):
// the channel UE u observes through the analog beam serving UE v. The
// caller fills them in place (channel.Model.EffectiveWidebandSplitInto
// writes exactly this layout).
func (c *Combiner) Entry(u, v int) (re, im []float64) {
	off := (u*c.maxUsers + v) * c.nsc
	return c.gRe[off : off+c.nsc], c.gIm[off : off+c.nsc]
}

// Solve computes the MMSE digital weights for the group begun by Begin,
// from the filled Entry channels. txLin/noiseLin are the budget's linear
// transmit and noise powers (link.Budget.SNRTerms); the transmit power is
// split evenly across the K users, so the Gram regularizer is
// noiseLin·I + (txLin/K)·HᴴH with H the center-subcarrier narrowband
// matrix. Fails only if the regularized Gram loses positive definiteness
// (a degenerate channel); the previous weights are then unusable.
func (c *Combiner) Solve(txLin, noiseLin float64) error {
	k := c.k
	if k == 0 {
		return fmt.Errorf("hybrid: Solve before Begin")
	}
	p := txLin / float64(k)
	mid := c.nsc / 2
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			re, im := c.Entry(u, v)
			c.h.Set(u, v, complex(re[mid], im[mid]))
		}
	}
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			var s complex128
			for u := 0; u < k; u++ {
				s += cmplx.Conj(c.h.At(u, a)) * c.h.At(u, b)
			}
			g := complex(p, 0) * s
			if a == b {
				g += complex(noiseLin, 0)
				c.gram.Set(a, a, g)
				continue
			}
			c.gram.Set(a, b, g)
			c.gram.Set(b, a, cmplx.Conj(g))
		}
	}
	if err := c.chol.Factor(&c.gram); err != nil {
		return fmt.Errorf("hybrid: MMSE Gram: %w", err)
	}
	rhs := c.rhs[:k]
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			rhs[v] = cmplx.Conj(c.h.At(u, v))
		}
		row := cmx.Vector(c.w.Data[u*k : (u+1)*k])
		c.chol.SolveInto(row, rhs)
		var nrm float64
		for _, x := range row {
			nrm += real(x)*real(x) + imag(x)*imag(x)
		}
		if nrm <= 0 || math.IsNaN(nrm) {
			return fmt.Errorf("hybrid: degenerate MMSE weights for user %d", u)
		}
		inv := 1 / math.Sqrt(nrm)
		for i := range row {
			row[i] = complex(real(row[i])*inv, imag(row[i])*inv)
		}
	}
	return nil
}

// Weight returns digital weight W[u][v] from the last Solve (the share of
// analog beam v in user u's precoder). Exposed for tests and oracles.
func (c *Combiner) Weight(u, v int) complex128 { return c.w.At(u, v) }

// UserSINRdB evaluates user u's capacity-equivalent wideband SINR under
// the weights of the last successful Solve: per subcarrier, the group's
// K digital streams propagate through the full cross-channel matrix, user
// u's own stream is signal, the other K−1 are interference, and the
// profile folds through link.WidebandSINRdB. Power split matches Solve
// (txLin/K per stream).
func (c *Combiner) UserSINRdB(u int, txLin, noiseLin float64) float64 {
	k := c.k
	p := txLin / float64(k)
	for j := 0; j < c.nsc; j++ {
		var sig, intf float64
		for s := 0; s < k; s++ {
			wrow := c.w.Data[s*k : (s+1)*k]
			var hwRe, hwIm float64
			for v := 0; v < k; v++ {
				off := (u*c.maxUsers+v)*c.nsc + j
				gr, gi := c.gRe[off], c.gIm[off]
				wr, wi := real(wrow[v]), imag(wrow[v])
				hwRe += gr*wr - gi*wi
				hwIm += gr*wi + gi*wr
			}
			pw := p * (hwRe*hwRe + hwIm*hwIm)
			if s == u {
				sig = pw
			} else {
				intf += pw
			}
		}
		c.sigBuf[j] = sig
		c.intBuf[j] = intf
	}
	return link.WidebandSINRdB(c.sigBuf, c.intBuf, noiseLin)
}
