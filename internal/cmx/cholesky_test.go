package cmx

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomHPD builds AᴴA + λI for a random tall A, which is Hermitian PD.
func randomHPD(rng *rand.Rand, n int, lambda float64) *Matrix {
	a := NewMatrix(2*n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	g := a.Gram()
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+complex(lambda, 0))
	}
	return g
}

func TestCholeskySolveMatchesGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8} {
		g := randomHPD(rng, n, 1e-3)
		b := make(Vector, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want, err := Solve(g, b)
		if err != nil {
			t.Fatalf("n=%d: Solve: %v", n, err)
		}
		var ch CholeskyFactor
		if err := ch.Factor(g); err != nil {
			t.Fatalf("n=%d: Factor: %v", n, err)
		}
		got := ch.SolveInto(make(Vector, n), b)
		for i := range got {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("n=%d: x[%d] differs by %g: chol %v vs gauss %v", n, i, d, got[i], want[i])
			}
		}
		// MulVecInto(x) must reproduce b.
		back := ch.MulVecInto(make(Vector, n), got)
		for i := range back {
			if d := cmplx.Abs(back[i] - b[i]); d > 1e-9 {
				t.Fatalf("n=%d: A·x[%d] = %v, want b = %v (|Δ|=%g)", n, i, back[i], b[i], d)
			}
		}
	}
}

func TestCholeskySolveInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4
	g := randomHPD(rng, n, 1e-2)
	b := make(Vector, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var ch CholeskyFactor
	if err := ch.Factor(g); err != nil {
		t.Fatal(err)
	}
	want := ch.SolveInto(make(Vector, n), b)
	got := b.Clone()
	ch.SolveInto(got, got) // dst aliases b
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("in-place solve differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	// A Hermitian matrix with a negative eigenvalue.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 3)
	m.Set(1, 0, 3)
	m.Set(1, 1, 1)
	var ch CholeskyFactor
	if err := ch.Factor(m); err != ErrNotPD {
		t.Fatalf("Factor(indefinite) = %v, want ErrNotPD", err)
	}
	// Exactly singular (rank deficient) must also be rejected.
	s := NewMatrix(2, 2)
	s.Set(0, 0, 1)
	s.Set(0, 1, 1)
	s.Set(1, 0, 1)
	s.Set(1, 1, 1)
	if err := ch.Factor(s); err != ErrNotPD {
		t.Fatalf("Factor(singular) = %v, want ErrNotPD", err)
	}
	if err := ch.Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("Factor(non-square) should error")
	}
}

// TestCholeskyConditionSweep drives the factorization toward singularity:
// Gram matrices AᴴA + λI with λ swept from benign (1e-2) to brutal (1e-12)
// — condition numbers spanning ~10 orders of magnitude. At every level the
// factorization must either succeed with a solution whose residual, checked
// through the factor's own MulVecInto rounding path, scales with the
// conditioning, or reject cleanly with ErrNotPD — never return garbage.
func TestCholeskyConditionSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 6
	// One random rank-deficient base: AᴴA for A with a duplicated column,
	// so the un-ridged Gram is exactly singular and λ alone sets the
	// smallest eigenvalue.
	a := NewMatrix(2*n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for r := 0; r < 2*n; r++ {
		a.Set(r, n-1, a.At(r, 0)) // column n-1 ≡ column 0
	}
	base := a.Gram()
	b := make(Vector, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var ch CholeskyFactor
	for _, lambda := range []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12} {
		g := base.Clone()
		for i := 0; i < n; i++ {
			g.Set(i, i, g.At(i, i)+complex(lambda, 0))
		}
		if err := ch.Factor(g); err != nil {
			t.Fatalf("λ=%g: Factor rejected a PD ridge: %v", lambda, err)
		}
		x := ch.SolveInto(make(Vector, n), b)
		back := ch.MulVecInto(make(Vector, n), x)
		var resid, bn float64
		for i := range back {
			resid += cmplx.Abs(back[i]-b[i]) * cmplx.Abs(back[i]-b[i])
			bn += cmplx.Abs(b[i]) * cmplx.Abs(b[i])
		}
		rel := math.Sqrt(resid / bn)
		// Relative residual of a backward-stable solve is O(cond · eps);
		// cond ≈ ‖base‖/λ here. Allow a generous constant.
		bound := 1e-12 * (1 + real(base.At(0, 0))/lambda)
		if math.IsNaN(rel) || rel > bound {
			t.Fatalf("λ=%g: relative residual %g above conditioning bound %g", lambda, rel, bound)
		}
	}
	// Exactly singular (λ=0, duplicated column) must reject, not produce
	// NaNs.
	if err := ch.Factor(base); err != ErrNotPD {
		t.Fatalf("Factor(rank-deficient Gram) = %v, want ErrNotPD", err)
	}
}

// TestCholeskyPivotUnderflowBoundary pins the tiny-pivot gate: a diagonal
// above the 1e-150 underflow guard factors, at or below it rejects — the
// boundary the MMSE combiner's noise ridge must stay clear of.
func TestCholeskyPivotUnderflowBoundary(t *testing.T) {
	var ch CholeskyFactor
	mk := func(d float64) *Matrix {
		m := NewMatrix(1, 1)
		m.Set(0, 0, complex(d, 0))
		return m
	}
	if err := ch.Factor(mk(1e-140)); err != nil {
		t.Fatalf("pivot 1e-140 (above guard): %v", err)
	}
	for _, d := range []float64{1e-150, 1e-160, 0, -1, math.NaN(), math.Inf(-1)} {
		if err := ch.Factor(mk(d)); err != ErrNotPD {
			t.Fatalf("pivot %g: Factor = %v, want ErrNotPD", d, err)
		}
		if ch.N() != 0 {
			t.Fatalf("pivot %g: N() = %d after failed Factor, want 0", d, ch.N())
		}
	}
}

// TestCholeskyRidgeRecoversSingular exercises the caller-side ridged-
// regularization pattern (the MMSE combiner's noiseLin·I + (p/K)·HᴴH Gram):
// a Gram that ErrNotPD-rejects un-ridged must factor once any positive
// ridge is added, and the ridged solution must converge as the ridge
// shrinks.
func TestCholeskyRidgeRecoversSingular(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 4
	// Rank-1 Gram: vvᴴ — as singular as it gets while staying Hermitian PSD.
	v := make(Vector, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	g := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, v[i]*cmplx.Conj(v[j]))
		}
	}
	var ch CholeskyFactor
	if err := ch.Factor(g); err != ErrNotPD {
		t.Fatalf("Factor(rank-1) = %v, want ErrNotPD", err)
	}
	b := make(Vector, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var prev Vector
	for _, ridge := range []float64{1e-2, 1e-4, 1e-6} {
		r := g.Clone()
		for i := 0; i < n; i++ {
			r.Set(i, i, r.At(i, i)+complex(ridge, 0))
		}
		if err := ch.Factor(r); err != nil {
			t.Fatalf("ridge %g: %v", ridge, err)
		}
		x := ch.SolveInto(make(Vector, n), b)
		back := ch.MulVecInto(make(Vector, n), x)
		for i := range back {
			if d := cmplx.Abs(back[i] - b[i]); d > 1e-8 {
				t.Fatalf("ridge %g: |A·x−b|[%d] = %g", ridge, i, d)
			}
		}
		prev = x.Clone()
	}
	if prev == nil {
		t.Fatal("no ridged solves ran")
	}
}

func TestCholeskyReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ch CholeskyFactor
	for _, n := range []int{6, 3, 6, 2} { // shrink then regrow within cap
		g := randomHPD(rng, n, 1e-3)
		if err := ch.Factor(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ch.N() != n {
			t.Fatalf("N() = %d, want %d", ch.N(), n)
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), 0)
		}
		x := ch.SolveInto(make(Vector, n), b)
		back := ch.MulVecInto(make(Vector, n), x)
		for i := range back {
			if d := cmplx.Abs(back[i] - b[i]); d > 1e-9 {
				t.Fatalf("n=%d after reuse: |Δ|=%g", n, d)
			}
		}
	}
}

func TestCholeskySteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 5
	g := randomHPD(rng, n, 1e-3)
	b := make(Vector, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var ch CholeskyFactor
	if err := ch.Factor(g); err != nil {
		t.Fatal(err)
	}
	dst := make(Vector, n)
	prod := make(Vector, n)
	allocs := testing.AllocsPerRun(100, func() {
		if err := ch.Factor(g); err != nil {
			t.Fatal(err)
		}
		ch.SolveInto(dst, b)
		ch.MulVecInto(prod, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm Factor+SolveInto+MulVecInto allocates: %v allocs/run", allocs)
	}
}
