package cmx

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomHPD builds AᴴA + λI for a random tall A, which is Hermitian PD.
func randomHPD(rng *rand.Rand, n int, lambda float64) *Matrix {
	a := NewMatrix(2*n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	g := a.Gram()
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+complex(lambda, 0))
	}
	return g
}

func TestCholeskySolveMatchesGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8} {
		g := randomHPD(rng, n, 1e-3)
		b := make(Vector, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want, err := Solve(g, b)
		if err != nil {
			t.Fatalf("n=%d: Solve: %v", n, err)
		}
		var ch CholeskyFactor
		if err := ch.Factor(g); err != nil {
			t.Fatalf("n=%d: Factor: %v", n, err)
		}
		got := ch.SolveInto(make(Vector, n), b)
		for i := range got {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("n=%d: x[%d] differs by %g: chol %v vs gauss %v", n, i, d, got[i], want[i])
			}
		}
		// MulVecInto(x) must reproduce b.
		back := ch.MulVecInto(make(Vector, n), got)
		for i := range back {
			if d := cmplx.Abs(back[i] - b[i]); d > 1e-9 {
				t.Fatalf("n=%d: A·x[%d] = %v, want b = %v (|Δ|=%g)", n, i, back[i], b[i], d)
			}
		}
	}
}

func TestCholeskySolveInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4
	g := randomHPD(rng, n, 1e-2)
	b := make(Vector, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var ch CholeskyFactor
	if err := ch.Factor(g); err != nil {
		t.Fatal(err)
	}
	want := ch.SolveInto(make(Vector, n), b)
	got := b.Clone()
	ch.SolveInto(got, got) // dst aliases b
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("in-place solve differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	// A Hermitian matrix with a negative eigenvalue.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 3)
	m.Set(1, 0, 3)
	m.Set(1, 1, 1)
	var ch CholeskyFactor
	if err := ch.Factor(m); err != ErrNotPD {
		t.Fatalf("Factor(indefinite) = %v, want ErrNotPD", err)
	}
	// Exactly singular (rank deficient) must also be rejected.
	s := NewMatrix(2, 2)
	s.Set(0, 0, 1)
	s.Set(0, 1, 1)
	s.Set(1, 0, 1)
	s.Set(1, 1, 1)
	if err := ch.Factor(s); err != ErrNotPD {
		t.Fatalf("Factor(singular) = %v, want ErrNotPD", err)
	}
	if err := ch.Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("Factor(non-square) should error")
	}
}

func TestCholeskyReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ch CholeskyFactor
	for _, n := range []int{6, 3, 6, 2} { // shrink then regrow within cap
		g := randomHPD(rng, n, 1e-3)
		if err := ch.Factor(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ch.N() != n {
			t.Fatalf("N() = %d, want %d", ch.N(), n)
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), 0)
		}
		x := ch.SolveInto(make(Vector, n), b)
		back := ch.MulVecInto(make(Vector, n), x)
		for i := range back {
			if d := cmplx.Abs(back[i] - b[i]); d > 1e-9 {
				t.Fatalf("n=%d after reuse: |Δ|=%g", n, d)
			}
		}
	}
}

func TestCholeskySteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 5
	g := randomHPD(rng, n, 1e-3)
	b := make(Vector, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var ch CholeskyFactor
	if err := ch.Factor(g); err != nil {
		t.Fatal(err)
	}
	dst := make(Vector, n)
	prod := make(Vector, n)
	allocs := testing.AllocsPerRun(100, func() {
		if err := ch.Factor(g); err != nil {
			t.Fatal(err)
		}
		ch.SolveInto(dst, b)
		ch.MulVecInto(prod, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm Factor+SolveInto+MulVecInto allocates: %v allocs/run", allocs)
	}
}
