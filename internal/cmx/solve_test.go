package cmx

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func TestSolveKnownSystem(t *testing.T) {
	// [1 1; 1 -1] x = [3; 1] → x = [2; 1]
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := Solve(a, Vector{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqC(x[0], 2) || !almostEqC(x[1], 1) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveComplexSystem(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1i)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, -1i)
	want := Vector{1 - 1i, 2 + 3i}
	b := a.MulVec(want)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqC(x[i], want[i]) {
			t.Fatalf("x[%d] = %v want %v", i, x[i], want[i])
		}
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		want := randVec(rng, n)
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := x.Sub(want).Norm(); d > 1e-7*(1+want.Norm()) {
			t.Fatalf("trial %d: residual %g", trial, d)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4) // rank 1
	if _, err := Solve(a, Vector{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, Vector{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqC(x[0], 7) || !almostEqC(x[1], 5) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNonSquare(t *testing.T) {
	a := NewMatrix(3, 2)
	if _, err := Solve(a, Vector{1, 2, 3}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestLeastSquaresExactWhenConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 8, 3
		a := randMatrix(rng, rows, cols)
		want := randVec(rng, cols)
		b := a.MulVec(want)
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := x.Sub(want).Norm(); d > 1e-7 {
			t.Fatalf("trial %d: error %g", trial, d)
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space of A.
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(rng, 10, 3)
	b := randVec(rng, 10)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := Residual(a, x, b)
	proj := a.HmulVec(r)
	if proj.Norm() > 1e-7 {
		t.Fatalf("residual not orthogonal to columns: ‖Aᴴr‖ = %g", proj.Norm())
	}
}

func TestRidgeShrinksSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMatrix(rng, 12, 4)
	b := randVec(rng, 12)
	x0, err := RidgeLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := RidgeLeastSquares(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if x1.Norm() >= x0.Norm() {
		t.Fatalf("ridge did not shrink: ‖x₁‖=%g ≥ ‖x₀‖=%g", x1.Norm(), x0.Norm())
	}
}

func TestRidgeNegativeLambda(t *testing.T) {
	a := Identity(2)
	if _, err := RidgeLeastSquares(a, Vector{1, 1}, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestGramIsHermitianPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randMatrix(rng, 9, 4)
	g := a.Gram()
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			if !almostEqC(g.At(i, j), cmplx.Conj(g.At(j, i))) {
				t.Fatalf("Gram not Hermitian at (%d,%d)", i, j)
			}
		}
		if real(g.At(i, i)) < 0 {
			t.Fatalf("Gram diagonal negative at %d", i)
		}
	}
	// xᴴGx ≥ 0 for random x.
	for trial := 0; trial < 20; trial++ {
		x := randVec(rng, 4)
		q := real(x.Hdot(g.MulVec(x)))
		if q < -1e-9 {
			t.Fatalf("Gram not PSD: %g", q)
		}
	}
}

func TestMatrixOps(t *testing.T) {
	a := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, complex(float64(i+1), float64(j)))
		}
	}
	h := a.H()
	if h.Rows != 3 || h.Cols != 2 {
		t.Fatalf("H shape %dx%d", h.Rows, h.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqC(h.At(j, i), cmplx.Conj(a.At(i, j))) {
				t.Fatalf("H mismatch at (%d,%d)", i, j)
			}
		}
	}
	// (A·Aᴴ) via Mul must equal Gram of Aᴴ.
	prod := a.Mul(a.H())
	gram := a.H().Gram()
	for i := range prod.Data {
		if !almostEqC(prod.Data[i], gram.Data[i]) {
			t.Fatalf("Mul/Gram mismatch at %d", i)
		}
	}
}

func TestHmulVecMatchesHMul(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randMatrix(rng, 7, 4)
	v := randVec(rng, 7)
	got := a.HmulVec(v)
	want := a.H().MulVec(v)
	if got.Sub(want).Norm() > 1e-9 {
		t.Fatalf("HmulVec mismatch: %g", got.Sub(want).Norm())
	}
}

func TestFromColumns(t *testing.T) {
	c0 := Vector{1, 2}
	c1 := Vector{3i, 4}
	m := FromColumns([]Vector{c0, c1})
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if !almostEqC(m.At(0, 1), 3i) || !almostEqC(m.At(1, 0), 2) {
		t.Fatalf("content wrong: %v", m)
	}
	if got := m.Col(1); !almostEqC(got[0], 3i) || !almostEqC(got[1], 4) {
		t.Fatalf("Col(1) = %v", got)
	}
	if got := m.Row(0); !almostEqC(got[0], 1) || !almostEqC(got[1], 3i) {
		t.Fatalf("Row(0) = %v", got)
	}
}
