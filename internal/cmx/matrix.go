package cmx

import (
	"fmt"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("cmx: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromColumns builds a matrix whose j-th column is cols[j]. All columns must
// share the same length.
func FromColumns(cols []Vector) *Matrix {
	if len(cols) == 0 {
		return NewMatrix(0, 0)
	}
	n := len(cols[0])
	m := NewMatrix(n, len(cols))
	for j, c := range cols {
		mustSameLen(n, len(c))
		for i := 0; i < n; i++ {
			m.Set(i, j, c[i])
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns row i as a copied Vector.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns column j as a copied Vector.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) Vector {
	mustSameLen(m.Cols, len(v))
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecInto computes m·v into dst and returns it. dst must have length
// m.Rows and must not alias v. No allocations.
func (m *Matrix) MulVecInto(dst, v Vector) Vector {
	mustSameLen(m.Cols, len(v))
	mustSameLen(m.Rows, len(dst))
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
	return dst
}

// HmulVec returns mᴴ·v (conjugate transpose times v).
func (m *Matrix) HmulVec(v Vector) Vector {
	mustSameLen(m.Rows, len(v))
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		vi := v[i]
		for j, x := range row {
			out[j] += cmplx.Conj(x) * vi
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	mustSameLen(m.Cols, b.Rows)
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, x := range brow {
				orow[j] += a * x
			}
		}
	}
	return out
}

// H returns the conjugate transpose mᴴ as a new matrix.
func (m *Matrix) H() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Gram returns mᴴ·m (the Gram matrix of the columns of m).
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for a := 0; a < m.Cols; a++ {
			ca := cmplx.Conj(row[a])
			if ca == 0 {
				continue
			}
			orow := out.Data[a*out.Cols : (a+1)*out.Cols]
			for b := 0; b < m.Cols; b++ {
				orow[b] += ca * row[b]
			}
		}
	}
	return out
}

// String renders a compact human-readable matrix, mainly for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% .3f%+.3fi ", real(m.At(i, j)), imag(m.At(i, j)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
