package cmx

import "testing"

func TestSplitCombineRoundTrip(t *testing.T) {
	src := []complex128{complex(1, -2), complex(0.5, 3.25), complex(-7, 0), complex(0, 0)}
	re := make([]float64, len(src))
	im := make([]float64, len(src))
	Split(src, re, im)
	for i, v := range src {
		if re[i] != real(v) || im[i] != imag(v) {
			t.Fatalf("split[%d] = (%g,%g), want %v", i, re[i], im[i], v)
		}
	}
	dst := make([]complex128, len(src))
	Combine(re, im, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
}

func TestSplitCombineEmpty(t *testing.T) {
	Split(nil, nil, nil)
	Combine(nil, nil, nil)
}
