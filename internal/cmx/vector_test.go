package cmx

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func almostEqC(a, b complex128) bool {
	return almostEq(real(a), real(b)) && almostEq(imag(a), imag(b))
}

func randVec(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func TestDotAndHdot(t *testing.T) {
	v := Vector{1 + 2i, 3 - 1i}
	u := Vector{2, 1i}
	if got := v.Dot(u); !almostEqC(got, (1+2i)*2+(3-1i)*1i) {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Hdot(u); !almostEqC(got, cmplx.Conj(1+2i)*2+cmplx.Conj(3-1i)*1i) {
		t.Fatalf("Hdot = %v", got)
	}
}

func TestNormMatchesHdot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := randVec(rng, 1+rng.Intn(20))
		want := real(v.Hdot(v))
		if !almostEq(v.Norm2(), want) {
			t.Fatalf("Norm2 = %g want %g", v.Norm2(), want)
		}
		if !almostEq(v.Norm()*v.Norm(), want) {
			t.Fatalf("Norm² = %g want %g", v.Norm()*v.Norm(), want)
		}
	}
}

func TestNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		v := randVec(rng, 8)
		u := v.Normalized()
		if !almostEq(u.Norm(), 1) {
			t.Fatalf("normalized norm = %g", u.Norm())
		}
		// Direction preserved: u should be a positive real multiple of v.
		ratio := u.Hdot(v)
		if imag(ratio) > eps || real(ratio) <= 0 {
			t.Fatalf("normalization changed direction: ratio %v", ratio)
		}
	}
	zero := NewVector(4)
	if got := zero.Normalized(); got.Norm() != 0 {
		t.Fatalf("normalizing zero vector changed it: %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	v := Vector{1, 2i}
	u := Vector{3, -1}
	if got := v.Add(u); !almostEqC(got[0], 4) || !almostEqC(got[1], -1+2i) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(u); !almostEqC(got[0], -2) || !almostEqC(got[1], 1+2i) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scaled(2i); !almostEqC(got[0], 2i) || !almostEqC(got[1], -4) {
		t.Fatalf("Scaled = %v", got)
	}
	w := v.Clone()
	w.AddScaled(2, u)
	if !almostEqC(w[0], 7) || !almostEqC(w[1], -2+2i) {
		t.Fatalf("AddScaled = %v", w)
	}
}

func TestMaxAbs(t *testing.T) {
	v := Vector{1, -3i, 2 + 2i}
	mag, idx := v.MaxAbs()
	if idx != 1 || !almostEq(mag, 3) {
		t.Fatalf("MaxAbs = (%g, %d)", mag, idx)
	}
	empty := Vector{}
	if _, idx := empty.MaxAbs(); idx != -1 {
		t.Fatalf("MaxAbs on empty should return index -1, got %d", idx)
	}
}

func TestExpjUnitMagnitude(t *testing.T) {
	phases := []float64{0, math.Pi / 3, -math.Pi, 2.5}
	v := Expj(phases)
	for i, x := range v {
		if !almostEq(cmplx.Abs(x), 1) {
			t.Fatalf("Expj[%d] magnitude %g", i, cmplx.Abs(x))
		}
		if !almostEq(cmplx.Phase(x), math.Atan2(math.Sin(phases[i]), math.Cos(phases[i]))) {
			t.Fatalf("Expj[%d] phase %g", i, cmplx.Phase(x))
		}
	}
}

// Property: Cauchy-Schwarz |⟨v,u⟩| ≤ ‖v‖‖u‖. This inequality underlies the
// optimal-beamforming derivation (Eq. 4 of the paper).
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(re1, im1, re2, im2, re3, im3, re4, im4 float64) bool {
		v := Vector{complex(clampf(re1), clampf(im1)), complex(clampf(re2), clampf(im2))}
		u := Vector{complex(clampf(re3), clampf(im3)), complex(clampf(re4), clampf(im4))}
		return cmplx.Abs(v.Hdot(u)) <= v.Norm()*u.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the MRT weight w = conj(h)/‖h‖ maximizes |hᵀw| over unit-norm w.
// Any random competitor must do no better.
func TestMRTOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		h := randVec(rng, n)
		wopt := h.Conj().Normalize()
		best := cmplx.Abs(h.Dot(wopt))
		w := randVec(rng, n).Normalize()
		if got := cmplx.Abs(h.Dot(w)); got > best+1e-9 {
			t.Fatalf("random weight beat MRT: %g > %g", got, best)
		}
		if !almostEq(best, h.Norm()) {
			t.Fatalf("MRT gain %g != ‖h‖ %g", best, h.Norm())
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	_ = Vector{1}.Dot(Vector{1, 2})
}

func clampf(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
