// Package cmx provides complex-valued vector and matrix primitives used
// throughout the mmReliable stack: inner products, norms, elementwise
// operations, and dense linear solvers (Gaussian elimination and
// ridge-regularized least squares). Everything is built on the standard
// library only and sized for the small, dense systems that arise in
// beamforming (tens of antennas, a handful of paths).
package cmx

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// Vector is a dense complex vector.
type Vector []complex128

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the unconjugated dot product vᵀu. It panics if lengths differ.
func (v Vector) Dot(u Vector) complex128 {
	mustSameLen(len(v), len(u))
	var s complex128
	for i := range v {
		s += v[i] * u[i]
	}
	return s
}

// Hdot returns the Hermitian inner product ⟨v, u⟩ = Σ conj(v_i)·u_i.
func (v Vector) Hdot(u Vector) complex128 {
	mustSameLen(len(v), len(u))
	var s complex128
	for i := range v {
		s += cmplx.Conj(v[i]) * u[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		re, im := real(x), imag(x)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// Norm2 returns the squared Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		re, im := real(x), imag(x)
		s += re*re + im*im
	}
	return s
}

// Scale multiplies every element of v by a in place and returns v.
func (v Vector) Scale(a complex128) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Scaled returns a new vector equal to a·v.
func (v Vector) Scaled(a complex128) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Add returns v + u as a new vector.
func (v Vector) Add(u Vector) Vector {
	mustSameLen(len(v), len(u))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + u[i]
	}
	return out
}

// Sub returns v − u as a new vector.
func (v Vector) Sub(u Vector) Vector {
	mustSameLen(len(v), len(u))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - u[i]
	}
	return out
}

// AddScaled adds a·u to v in place and returns v.
func (v Vector) AddScaled(a complex128, u Vector) Vector {
	mustSameLen(len(v), len(u))
	for i := range v {
		v[i] += a * u[i]
	}
	return v
}

// Conj returns the elementwise complex conjugate of v as a new vector.
func (v Vector) Conj() Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = cmplx.Conj(v[i])
	}
	return out
}

// Normalize scales v in place to unit L2 norm and returns v. A zero vector
// is left unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(complex(1/n, 0))
}

// Normalized returns a unit-norm copy of v (or a zero copy if v is zero).
func (v Vector) Normalized() Vector {
	return v.Clone().Normalize()
}

// MaxAbs returns the largest elementwise magnitude in v, and its index.
// For an empty vector it returns (0, -1).
func (v Vector) MaxAbs() (float64, int) {
	best, idx := 0.0, -1
	for i, x := range v {
		if a := cmplx.Abs(x); a > best || idx == -1 {
			best, idx = a, i
		}
	}
	return best, idx
}

// Abs returns the elementwise magnitudes of v.
func (v Vector) Abs() []float64 {
	return v.AbsInto(make([]float64, len(v)))
}

// AbsInto writes the elementwise magnitudes of v into dst and returns it
// (see Abs), allocating only when dst is nil. dst must have length
// len(v) when non-nil.
func (v Vector) AbsInto(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(v))
	}
	mustSameLen(len(v), len(dst))
	for i, x := range v {
		dst[i] = cmplx.Abs(x)
	}
	return dst
}

// Phase returns the elementwise phases (radians, in (−π, π]) of v.
func (v Vector) Phase() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = cmplx.Phase(x)
	}
	return out
}

// Mul returns the elementwise (Hadamard) product v∘u as a new vector.
func (v Vector) Mul(u Vector) Vector {
	mustSameLen(len(v), len(u))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * u[i]
	}
	return out
}

// Expj returns the vector [e^{jθ₀}, e^{jθ₁}, …] for the given phases.
func Expj(phases []float64) Vector {
	out := make(Vector, len(phases))
	for i, p := range phases {
		out[i] = cmplx.Exp(complex(0, p))
	}
	return out
}

// ErrDimension reports incompatible operand dimensions.
var ErrDimension = errors.New("cmx: dimension mismatch")

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("cmx: dimension mismatch %d vs %d", a, b))
	}
}
