package cmx

import (
	"fmt"
	"math/cmplx"
)

// ErrSingular reports a numerically singular system.
var ErrSingular = fmt.Errorf("cmx: singular matrix")

// Solve solves the square linear system A·x = b using Gaussian elimination
// with partial pivoting. A and b are not modified. It returns ErrSingular
// when a pivot underflows.
func Solve(a *Matrix, b Vector) (Vector, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("cmx: Solve requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	mustSameLen(a.Rows, len(b))
	n := a.Rows
	// Augmented working copies.
	m := a.Clone()
	x := b.Clone()

	const tiny = 1e-300
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in this column.
		pivot, pmag := col, cmplx.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if mag := cmplx.Abs(m.At(r, col)); mag > pmag {
				pivot, pmag = r, mag
			}
		}
		if pmag < tiny {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// LeastSquares solves min_x ‖A·x − b‖² via the normal equations
// (AᴴA)x = Aᴴb. A must have at least as many rows as columns and full
// column rank; otherwise ErrSingular is returned.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	return RidgeLeastSquares(a, b, 0)
}

// RidgeLeastSquares solves the Tikhonov-regularized least squares problem
//
//	min_x ‖A·x − b‖² + λ‖x‖²
//
// via (AᴴA + λI)x = Aᴴb. λ must be ≥ 0. This is the solver used by the
// super-resolution module (Eq. 23 of the paper), where A is a sinc
// dictionary with a handful of columns.
func RidgeLeastSquares(a *Matrix, b Vector, lambda float64) (Vector, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("cmx: negative ridge parameter %g", lambda)
	}
	mustSameLen(a.Rows, len(b))
	g := a.Gram()
	if lambda > 0 {
		for i := 0; i < g.Rows; i++ {
			g.Set(i, i, g.At(i, i)+complex(lambda, 0))
		}
	}
	rhs := a.HmulVec(b)
	return Solve(g, rhs)
}

// Residual returns b − A·x, useful for checking solver quality in tests and
// for the super-resolution model-order search.
func Residual(a *Matrix, x, b Vector) Vector {
	return b.Sub(a.MulVec(x))
}
