package cmx

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNotPD reports a matrix that is not (numerically) Hermitian positive
// definite, so a Cholesky factorization does not exist.
var ErrNotPD = fmt.Errorf("cmx: matrix is not positive definite")

// CholeskyFactor holds the lower-triangular factor L of a Hermitian
// positive-definite matrix A = L·Lᴴ. The zero value is ready for use:
// Factor grows the internal buffer as needed and reuses it across calls,
// so a long-lived CholeskyFactor refactors with zero allocations once
// warm. All methods are in-place and allocation-free.
//
// This is the per-Extract hoisted factorization of the ridged Gram in the
// super-resolution solver (Eq. 23): factor once, then every alignment
// candidate solve is two triangular substitutions.
type CholeskyFactor struct {
	n int
	// l is the n×n row-major factor; the strictly upper part is garbage.
	// Diagonal entries of L are real and positive by construction, so the
	// storage packs (L_ii, 1/L_ii) into (real, imag) of l[i*n+i]: the
	// substitutions and the factorization itself then scale by the cached
	// reciprocal instead of dividing — the solve runs once per alignment
	// candidate in the super-resolution hot loop, where the divides were
	// measurable.
	l []complex128
}

// CholeskyWith returns a factor that uses buf as backing storage, so a
// caller-owned (e.g. workspace) buffer of at least n² elements makes
// Factor allocation-free. The buffer is owned by the factor until it is
// discarded.
func CholeskyWith(buf []complex128) CholeskyFactor {
	return CholeskyFactor{l: buf[:0]}
}

// N returns the dimension of the factored matrix (0 before first Factor).
func (c *CholeskyFactor) N() int { return c.n }

// Factor computes the Cholesky factorization of the Hermitian
// positive-definite matrix a, replacing any previous factorization. a is
// not modified; only its lower triangle (and real diagonal part) is read,
// so tiny Hermitian-symmetry rounding in the upper triangle is ignored.
// Returns ErrNotPD if a pivot is non-positive or underflows, in which
// case the factor contents are undefined and must not be used.
func (c *CholeskyFactor) Factor(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("cmx: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if cap(c.l) < n*n {
		c.l = make([]complex128, n*n)
	}
	c.l = c.l[:n*n]
	c.n = n
	l := c.l
	const tiny = 1e-150
	for i := 0; i < n; i++ {
		ri := l[i*n:]
		for j := 0; j <= i; j++ {
			var s complex128
			rj := l[j*n:]
			for k := 0; k < j; k++ {
				s += ri[k] * cmplx.Conj(rj[k])
			}
			if i == j {
				d := real(a.At(i, i)) - real(s)
				if !(d > tiny) || math.IsNaN(d) { // also catches NaN/Inf
					c.n = 0
					return ErrNotPD
				}
				sd := math.Sqrt(d)
				ri[i] = complex(sd, 1/sd)
			} else {
				v := a.At(i, j) - s
				r := imag(rj[j]) // cached 1/L_jj
				ri[j] = complex(real(v)*r, imag(v)*r)
			}
		}
	}
	return nil
}

// SolveInto solves A·x = b for the factored A = L·Lᴴ, writing x into dst
// and returning it. dst and b must both have length N(); dst may alias b
// (the solve is safely in-place). No allocations.
func (c *CholeskyFactor) SolveInto(dst, b Vector) Vector {
	n := c.n
	mustSameLen(n, len(b))
	mustSameLen(n, len(dst))
	l := c.l
	if n == 3 {
		// Fully unrolled 3×3 solve: the super-resolution alignment search
		// performs one of these per candidate with K=3 beams, where loop
		// and bounds-check overhead is comparable to the arithmetic.
		d0, d1, d2 := imag(l[0]), imag(l[4]), imag(l[8])
		y0 := scaleRe(b[0], d0)
		y1 := scaleRe(b[1]-l[3]*y0, d1)
		y2 := scaleRe(b[2]-l[6]*y0-l[7]*y1, d2)
		x2 := scaleRe(y2, d2)
		x1 := scaleRe(y1-cmplx.Conj(l[7])*x2, d1)
		dst[2] = x2
		dst[1] = x1
		dst[0] = scaleRe(y0-cmplx.Conj(l[3])*x1-cmplx.Conj(l[6])*x2, d0)
		return dst
	}
	// Forward substitution: L·y = b, scaling by the reciprocal pivots
	// cached in the imaginary part of the diagonal (no divisions).
	for i := 0; i < n; i++ {
		s := b[i]
		ri := l[i*n:]
		for k := 0; k < i; k++ {
			s -= ri[k] * dst[k]
		}
		d := imag(ri[i])
		dst[i] = complex(real(s)*d, imag(s)*d)
	}
	// Back substitution: Lᴴ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= cmplx.Conj(l[k*n+i]) * dst[k]
		}
		d := imag(l[i*n+i])
		dst[i] = complex(real(s)*d, imag(s)*d)
	}
	return dst
}

// scaleRe scales a complex value by a real factor (two multiplications —
// no complex-division runtime call).
func scaleRe(v complex128, d float64) complex128 {
	return complex(real(v)*d, imag(v)*d)
}

// MulVecInto computes A·v for the factored A = L·(Lᴴ) without forming A,
// writing the product into dst and returning it. dst must not alias v.
// No allocations. Useful for residual evaluation ‖b − A·x‖ against the
// same rounding path as the factorization.
func (c *CholeskyFactor) MulVecInto(dst, v Vector) Vector {
	n := c.n
	mustSameLen(n, len(v))
	mustSameLen(n, len(dst))
	l := c.l
	// dst = Lᴴ·v (column-walk of L). The diagonal packs (L_ii, 1/L_ii),
	// so only its real part participates in the product.
	for i := 0; i < n; i++ {
		s := complex(real(l[i*n+i]), 0) * v[i]
		for k := i + 1; k < n; k++ {
			s += cmplx.Conj(l[k*n+i]) * v[k]
		}
		dst[i] = s
	}
	// dst = L·dst, in place: row i of L only reads dst[0..i], all of which
	// are still the Lᴴ·v values when processed top-down? No — L is lower
	// triangular, so row i reads dst[k] for k ≤ i, which would already be
	// overwritten. Process bottom-up instead: row i writes dst[i] from
	// dst[0..i], and rows below i (already done) no longer read dst[0..i].
	for i := n - 1; i >= 0; i-- {
		ri := l[i*n:]
		var s complex128
		for k := 0; k < i; k++ {
			s += ri[k] * dst[k]
		}
		s += complex(real(ri[i]), 0) * dst[i]
		dst[i] = s
	}
	return dst
}
