package cmx

// Planar layout helpers: the batched DSP kernels (internal/dsp) operate on
// separate re/im []float64 slices, which the Go compiler auto-vectorizes far
// more readily than []complex128 loops. These converters are the boundary
// between the interleaved complex world (FFTs, weights, public APIs) and the
// planar hot path; both directions are trivially vectorizable themselves.

// Split copies the interleaved vector src into the planar pair (re, im).
// All three slices must have equal length.
func Split(src []complex128, re, im []float64) {
	_ = re[:len(src)]
	_ = im[:len(src)]
	for i, v := range src {
		re[i] = real(v)
		im[i] = imag(v)
	}
}

// Combine copies the planar pair (re, im) into the interleaved vector dst.
// All three slices must have equal length.
func Combine(re, im []float64, dst []complex128) {
	_ = re[:len(dst)]
	_ = im[:len(dst)]
	for i := range dst {
		dst[i] = complex(re[i], im[i])
	}
}
