package antenna

import (
	"math"
	"math/cmplx"
	"testing"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

func upa88() *UPA { return NewUPA(8, 8, fc28) }

func TestUPAValidate(t *testing.T) {
	if err := upa88().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&UPA{Nx: 0, Nz: 8, Dx: 1, Dz: 1, Lambda: 1}).Validate(); err == nil {
		t.Fatal("Nx=0 should fail")
	}
	if err := (&UPA{Nx: 8, Nz: 8, Dx: -1, Dz: 1, Lambda: 1}).Validate(); err == nil {
		t.Fatal("negative spacing should fail")
	}
}

func TestUPASteeringUnitMagnitude(t *testing.T) {
	u := upa88()
	if u.N() != 64 {
		t.Fatalf("N = %d", u.N())
	}
	a := u.Steering(dsp.Rad(20), dsp.Rad(-10))
	if len(a) != 64 {
		t.Fatalf("length %d", len(a))
	}
	for i, x := range a {
		if math.Abs(cmplx.Abs(x)-1) > 1e-12 {
			t.Fatalf("element %d magnitude %g", i, cmplx.Abs(x))
		}
	}
	// Broadside is all ones.
	b := u.Steering(0, 0)
	for i, x := range b {
		if cmplx.Abs(x-1) > 1e-12 {
			t.Fatalf("broadside element %d = %v", i, x)
		}
	}
}

func TestUPASteeringSeparability(t *testing.T) {
	// a(az, el)[iz*Nx+ix] = aAz[ix] · aEl[iz] with the azimuth ramp scaled
	// by cos(el).
	u := upa88()
	az, el := dsp.Rad(25), dsp.Rad(15)
	a := u.Steering(az, el)
	kx := -2 * math.Pi * u.Dx / u.Lambda * math.Sin(az) * math.Cos(el)
	kz := -2 * math.Pi * u.Dz / u.Lambda * math.Sin(el)
	for iz := 0; iz < u.Nz; iz++ {
		for ix := 0; ix < u.Nx; ix++ {
			want := cmplx.Exp(complex(0, kx*float64(ix))) * cmplx.Exp(complex(0, kz*float64(iz)))
			if cmplx.Abs(a[iz*u.Nx+ix]-want) > 1e-12 {
				t.Fatalf("separability broken at (%d,%d)", ix, iz)
			}
		}
	}
}

func TestUPAMatchedBeamPeak(t *testing.T) {
	u := upa88()
	for _, dir := range [][2]float64{{0, 0}, {20, 0}, {0, 15}, {-30, 10}} {
		az, el := dsp.Rad(dir[0]), dsp.Rad(dir[1])
		w := u.SingleBeam(az, el)
		if math.Abs(w.Norm()-1) > 1e-12 {
			t.Fatal("beam not unit norm")
		}
		if g := u.Gain(w, az, el); math.Abs(g-64) > 1e-9 {
			t.Fatalf("peak gain %g want 64 at (%g, %g)", g, dir[0], dir[1])
		}
	}
}

func TestUPAGainFallsOffBeam(t *testing.T) {
	u := upa88()
	w := u.SingleBeam(0, 0)
	peak := u.Gain(w, 0, 0)
	for _, dir := range [][2]float64{{10, 0}, {0, 10}, {7, 7}, {-15, 5}} {
		if g := u.Gain(w, dsp.Rad(dir[0]), dsp.Rad(dir[1])); g >= peak {
			t.Fatalf("gain at %v not below peak", dir)
		}
	}
}

func TestAzimuthWeightsLiftEquivalence(t *testing.T) {
	// The lifted azimuth beam's pattern at el=0 equals the ULA pattern
	// times the elevation gain Nz.
	u := upa88()
	ula := u.AzimuthULA()
	phi := dsp.Rad(20)
	wAz := ula.SingleBeam(phi)
	w, err := u.AzimuthWeights(wAz, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Norm()-1) > 1e-12 {
		t.Fatal("lifted weights not unit norm")
	}
	for _, deg := range []float64{-30, 0, 10, 20, 45} {
		th := dsp.Rad(deg)
		got := u.Gain(w, th, 0)
		want := float64(u.Nz) * ula.Gain(wAz, th)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("θ=%g: UPA gain %g vs Nz·ULA %g", deg, got, want)
		}
	}
	// Peak = Nx·Nz = full aperture.
	if g := u.Gain(w, phi, 0); math.Abs(g-64) > 1e-9 {
		t.Fatalf("lifted peak gain %g", g)
	}
	// 10·log10(Nz) elevation gain.
	if got := u.ElevationGainDB(); math.Abs(got-9.0309) > 1e-3 {
		t.Fatalf("elevation gain %g dB", got)
	}
}

func TestAzimuthWeightsElevationSteer(t *testing.T) {
	// Lifting with a non-zero elevation steers the elevation lobe there.
	u := upa88()
	ula := u.AzimuthULA()
	wAz := ula.SingleBeam(0)
	el := dsp.Rad(12)
	w, err := u.AzimuthWeights(wAz, el)
	if err != nil {
		t.Fatal(err)
	}
	if u.Gain(w, 0, el) <= u.Gain(w, 0, 0) {
		t.Fatal("elevation steering did not move the lobe")
	}
	if g := u.Gain(w, 0, el); math.Abs(g-64) > 0.5 {
		t.Fatalf("steered peak %g", g)
	}
}

func TestAzimuthWeightsValidation(t *testing.T) {
	u := upa88()
	if _, err := u.AzimuthWeights(make(cmx.Vector, 5), 0); err == nil {
		t.Fatal("wrong length should fail")
	}
}

func TestAzimuthULAMatchesGeometry(t *testing.T) {
	u := upa88()
	ula := u.AzimuthULA()
	if ula.N != 8 || ula.Spacing != u.Dx || ula.Lambda != u.Lambda {
		t.Fatalf("AzimuthULA mismatch: %+v", ula)
	}
	if err := ula.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUPAMultibeamLift(t *testing.T) {
	// A 2-lobe azimuth multi-beam survives the lift: both lobes present at
	// the steered elevation, each scaled by Nz.
	u := upa88()
	ula := u.AzimuthULA()
	wAz := ula.SingleBeam(0).Add(ula.SingleBeam(dsp.Rad(30))).Normalize()
	w, err := u.AzimuthWeights(wAz, 0)
	if err != nil {
		t.Fatal(err)
	}
	g0 := u.Gain(w, 0, 0)
	g30 := u.Gain(w, dsp.Rad(30), 0)
	if g0 < 8*3 || g30 < 8*3 {
		t.Fatalf("lifted multi-beam lobes too weak: %g, %g", g0, g30)
	}
	valley := u.Gain(w, dsp.Rad(15), 0)
	if valley > g0/2 {
		t.Fatalf("no valley between lifted lobes: %g vs %g", valley, g0)
	}
}
