package antenna

import (
	"math"
	"sync"
	"testing"
)

func TestSteeringGridMatchesDirect(t *testing.T) {
	u := NewULA(8, 28e9)
	g := u.SteeringGrid(-math.Pi/3, math.Pi/3, 41)
	if g.Len() != 41 {
		t.Fatalf("grid length %d, want 41", g.Len())
	}
	w := u.SingleBeam(0.3)
	pat := g.Pattern(w)
	for i, th := range g.Thetas {
		direct := u.Gain(w, th)
		if d := math.Abs(pat[i] - direct); d > 1e-12 {
			t.Fatalf("grid gain at θ=%g differs from direct: %g vs %g", th, pat[i], direct)
		}
		if d := math.Abs(g.GainDB(i, w) - u.GainDB(w, th)); d > 1e-9 {
			t.Fatalf("grid dB gain at θ=%g differs from direct", th)
		}
	}
	// Endpoints and spacing.
	if g.Thetas[0] != -math.Pi/3 || g.Thetas[40] != math.Pi/3 {
		t.Fatalf("grid span [%g, %g]", g.Thetas[0], g.Thetas[40])
	}
}

func TestSteeringGridCacheSharing(t *testing.T) {
	u1 := NewULA(8, 28e9)
	u2 := NewULA(8, 28e9) // same geometry, different instance
	a := u1.SteeringGrid(-1, 1, 25)
	b := u2.SteeringGrid(-1, 1, 25)
	if a != b {
		t.Fatal("same geometry+span should share one cached grid")
	}
	if c := u1.SteeringGrid(-1, 1, 26); c == a {
		t.Fatal("different resolution must not share a grid")
	}
	if d := NewULA(16, 28e9).SteeringGrid(-1, 1, 25); d == a {
		t.Fatal("different element count must not share a grid")
	}
	if e := NewULA(8, 60e9).SteeringGrid(-1, 1, 25); e == a {
		t.Fatal("different carrier must not share a grid")
	}
}

func TestSteeringGridSinglePoint(t *testing.T) {
	u := NewULA(4, 28e9)
	g := u.SteeringGrid(0.5, 1.5, 1)
	if g.Len() != 1 || g.Thetas[0] != 0.5 {
		t.Fatalf("single-point grid = %v", g.Thetas)
	}
	if h := u.SteeringGrid(0.5, 1.5, 0); h.Len() != 1 {
		t.Fatalf("points<1 should clamp to 1, got %d", h.Len())
	}
}

// TestSteeringGridConcurrent exercises the cache from concurrent readers;
// run under -race this proves the grid read path needs no locking.
func TestSteeringGridConcurrent(t *testing.T) {
	u := NewULA(8, 28e9)
	w := u.SingleBeam(0)
	want := u.SteeringGrid(-1.2, 1.2, 33).Pattern(w)
	var wg sync.WaitGroup
	fail := make([]bool, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 100; iter++ {
				grid := u.SteeringGrid(-1.2, 1.2, 33)
				pat := grid.Pattern(w)
				for i := range pat {
					if pat[i] != want[i] {
						fail[g] = true
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, f := range fail {
		if f {
			t.Fatal("concurrent grid pattern mismatch")
		}
	}
}
