package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/cmx"
)

// Quantizer models the finite phase and amplitude resolution of a phased
// array front-end. The paper's in-house array offers 6-bit phase shifters
// and 27 dB of per-element gain control; commercial 802.11ad arrays can be
// as coarse as 2-bit phase with on/off amplitude.
type Quantizer struct {
	PhaseBits   int     // phase shifter resolution; 0 disables quantization
	GainRangeDB float64 // attenuator range below max gain; 0 disables
	GainStepDB  float64 // attenuator step; ≤0 with GainRangeDB>0 means on/off
}

// DefaultQuantizer matches the paper's testbed: 6-bit phase, 27 dB gain
// range in 0.5 dB steps.
func DefaultQuantizer() Quantizer {
	return Quantizer{PhaseBits: 6, GainRangeDB: 27, GainStepDB: 0.5}
}

// CoarseQuantizer matches low-end commercial hardware: 2-bit phase shifters
// and per-element on/off amplitude control.
func CoarseQuantizer() Quantizer {
	return Quantizer{PhaseBits: 2, GainRangeDB: 27, GainStepDB: 0}
}

// Validate checks the quantizer parameters.
func (q Quantizer) Validate() error {
	if q.PhaseBits < 0 || q.PhaseBits > 16 {
		return fmt.Errorf("antenna: phase bits %d out of range", q.PhaseBits)
	}
	if q.GainRangeDB < 0 {
		return fmt.Errorf("antenna: negative gain range %g", q.GainRangeDB)
	}
	return nil
}

// Apply quantizes each element of w to the hardware's representable phases
// and amplitudes and re-normalizes to unit norm (TRP conservation). The
// input is not modified.
func (q Quantizer) Apply(w cmx.Vector) cmx.Vector {
	return q.ApplyInto(w, nil)
}

// ApplyInto is Apply writing the quantized weights into dst (allocated
// when nil; must have length len(w) otherwise). The input is not
// modified and the arithmetic is identical to Apply.
func (q Quantizer) ApplyInto(w, dst cmx.Vector) cmx.Vector {
	if dst == nil {
		dst = make(cmx.Vector, len(w))
	}
	if len(dst) != len(w) {
		panic(fmt.Sprintf("antenna: quantizer dst length %d != %d", len(dst), len(w)))
	}
	out := dst
	copy(out, w)
	maxAmp, _ := out.MaxAbs()
	if maxAmp == 0 {
		return out
	}
	for i, x := range out {
		amp, ph := cmplx.Abs(x), cmplx.Phase(x)
		if q.PhaseBits > 0 {
			levels := float64(int(1) << uint(q.PhaseBits))
			step := 2 * math.Pi / levels
			ph = math.Round(ph/step) * step
		}
		if q.GainRangeDB > 0 {
			rel := amp / maxAmp
			relDB := 20 * math.Log10(rel)
			switch {
			case relDB < -q.GainRangeDB:
				amp = 0 // below attenuator range: element off
			case q.GainStepDB > 0:
				relDB = math.Round(relDB/q.GainStepDB) * q.GainStepDB
				if relDB < -q.GainRangeDB {
					relDB = -q.GainRangeDB
				}
				amp = maxAmp * math.Pow(10, relDB/20)
			default:
				amp = maxAmp // on/off control: every live element at max
			}
		}
		out[i] = cmplx.Rect(amp, ph)
	}
	return out.Normalize()
}
