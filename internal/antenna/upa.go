package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/cmx"
)

// UPA is a uniform planar array of Nx azimuth columns by Nz elevation rows
// (the paper's testbed is an 8×8 panel). Elements are indexed row-major:
// element (ix, iz) at index iz*Nx + ix.
//
// The paper beamforms in azimuth only and drives every element of a column
// with the same elevation weight (§5.1); AzimuthWeights lifts any ULA
// weight vector from this package's algorithms onto the full aperture that
// way, picking up the 10·log10(Nz) elevation array gain.
type UPA struct {
	Nx, Nz int
	Dx, Dz float64 // element spacings (m)
	Lambda float64
}

// NewUPA returns a half-wavelength-spaced planar array.
func NewUPA(nx, nz int, carrierHz float64) *UPA {
	lambda := SpeedOfLight / carrierHz
	return &UPA{Nx: nx, Nz: nz, Dx: lambda / 2, Dz: lambda / 2, Lambda: lambda}
}

// Validate checks the array parameters.
func (u *UPA) Validate() error {
	if u.Nx <= 0 || u.Nz <= 0 {
		return fmt.Errorf("antenna: non-positive UPA dimensions %dx%d", u.Nx, u.Nz)
	}
	if u.Dx <= 0 || u.Dz <= 0 || u.Lambda <= 0 {
		return fmt.Errorf("antenna: non-positive UPA spacing/wavelength")
	}
	return nil
}

// N returns the total element count.
func (u *UPA) N() int { return u.Nx * u.Nz }

// Steering returns the steering vector for departure azimuth az and
// elevation el (radians from broadside): the Kronecker product of the
// azimuth and elevation linear phase ramps.
func (u *UPA) Steering(az, el float64) cmx.Vector {
	v := make(cmx.Vector, u.N())
	kx := -2 * math.Pi * u.Dx / u.Lambda * math.Sin(az) * math.Cos(el)
	kz := -2 * math.Pi * u.Dz / u.Lambda * math.Sin(el)
	for iz := 0; iz < u.Nz; iz++ {
		zc := cmplx.Exp(complex(0, kz*float64(iz)))
		for ix := 0; ix < u.Nx; ix++ {
			v[iz*u.Nx+ix] = zc * cmplx.Exp(complex(0, kx*float64(ix)))
		}
	}
	return v
}

// SingleBeam returns the unit-norm matched beam toward (az, el).
func (u *UPA) SingleBeam(az, el float64) cmx.Vector {
	return u.Steering(az, el).Conj().Normalize()
}

// Gain returns the power gain |a(az, el)ᵀw|² of weights w observed from the
// given direction. A matched unit-norm beam peaks at Nx·Nz.
func (u *UPA) Gain(w cmx.Vector, az, el float64) float64 {
	g := u.Steering(az, el).Dot(w)
	return real(g)*real(g) + imag(g)*imag(g)
}

// GainDB returns Gain in decibels.
func (u *UPA) GainDB(w cmx.Vector, az, el float64) float64 {
	return 10 * math.Log10(u.Gain(w, az, el))
}

// AzimuthULA returns the Nx-element linear array the azimuth-only
// beamforming algorithms operate on.
func (u *UPA) AzimuthULA() *ULA {
	return &ULA{N: u.Nx, Spacing: u.Dx, Lambda: u.Lambda}
}

// AzimuthWeights lifts an Nx-element azimuth weight vector onto the full
// aperture, steering the elevation uniformly toward el: every row carries
// the azimuth weights scaled by the row's elevation phase, normalized to
// unit norm. The resulting pattern equals the azimuth pattern times the
// Nz-element elevation array factor (§5.1's operating mode).
func (u *UPA) AzimuthWeights(az cmx.Vector, el float64) (cmx.Vector, error) {
	if len(az) != u.Nx {
		return nil, fmt.Errorf("antenna: azimuth weights length %d != Nx %d", len(az), u.Nx)
	}
	w := make(cmx.Vector, u.N())
	kz := 2 * math.Pi * u.Dz / u.Lambda * math.Sin(el)
	for iz := 0; iz < u.Nz; iz++ {
		zc := cmplx.Exp(complex(0, kz*float64(iz)))
		for ix := 0; ix < u.Nx; ix++ {
			w[iz*u.Nx+ix] = zc * az[ix]
		}
	}
	return w.Normalize(), nil
}

// ElevationGainDB is the link-budget gain the elevation dimension adds when
// operating azimuth-only: 10·log10(Nz).
func (u *UPA) ElevationGainDB() float64 { return 10 * math.Log10(float64(u.Nz)) }
