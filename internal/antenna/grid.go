package antenna

import (
	"math"
	"sync"

	"mmreliable/internal/cmx"
)

// SteeringGrid is a read-only cache of steering vectors sampled on a
// uniform angle grid. Dense pattern sweeps (Fig. 13d-style plots, lobe
// scans, codebook evaluations) re-evaluate a(θ) at the same angles for
// every candidate weight vector; the grid computes each steering vector
// once and then answers Gain/Pattern queries with a plain dot product.
//
// Grids are immutable after construction and memoized process-wide by
// (array geometry, angle span, resolution), so concurrent trials under the
// parallel experiment runner share one grid without synchronization on the
// read path.
type SteeringGrid struct {
	// Thetas are the grid angles in radians, ascending.
	Thetas []float64
	vecs   []cmx.Vector
}

type gridKey struct {
	n       int
	spacing float64
	lambda  float64
	lo, hi  float64
	points  int
}

var gridCache sync.Map // gridKey → *SteeringGrid

// SteeringGrid returns the cached steering-vector grid of `points` angles
// uniformly spanning [lo, hi] radians for this array geometry, computing it
// on first use. points must be ≥ 1 (a single point collapses to lo).
func (u *ULA) SteeringGrid(lo, hi float64, points int) *SteeringGrid {
	if points < 1 {
		points = 1
	}
	key := gridKey{n: u.N, spacing: u.Spacing, lambda: u.Lambda, lo: lo, hi: hi, points: points}
	if v, ok := gridCache.Load(key); ok {
		return v.(*SteeringGrid)
	}
	g := &SteeringGrid{
		Thetas: make([]float64, points),
		vecs:   make([]cmx.Vector, points),
	}
	for i := range g.Thetas {
		th := lo
		if points > 1 {
			th = lo + (hi-lo)*float64(i)/float64(points-1)
		}
		g.Thetas[i] = th
		g.vecs[i] = u.Steering(th)
	}
	v, _ := gridCache.LoadOrStore(key, g)
	return v.(*SteeringGrid)
}

// Len returns the number of grid points.
func (g *SteeringGrid) Len() int { return len(g.Thetas) }

// Gain returns the power gain |a(θᵢ)ᵀw|² of w at grid point i.
func (g *SteeringGrid) Gain(i int, w cmx.Vector) float64 {
	d := g.vecs[i].Dot(w)
	return real(d)*real(d) + imag(d)*imag(d)
}

// GainDB returns Gain at grid point i in decibels.
func (g *SteeringGrid) GainDB(i int, w cmx.Vector) float64 {
	return 10 * math.Log10(g.Gain(i, w))
}

// Pattern evaluates the power gain of w over the whole grid.
func (g *SteeringGrid) Pattern(w cmx.Vector) []float64 {
	out := make([]float64, len(g.vecs))
	for i := range g.vecs {
		out[i] = g.Gain(i, w)
	}
	return out
}
