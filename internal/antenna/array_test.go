package antenna

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

const fc28 = 28e9

func TestSteeringProperties(t *testing.T) {
	u := NewULA(8, fc28)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	a := u.Steering(dsp.Rad(20))
	if len(a) != 8 {
		t.Fatalf("steering length %d", len(a))
	}
	for i, x := range a {
		if math.Abs(cmplx.Abs(x)-1) > 1e-12 {
			t.Fatalf("element %d magnitude %g", i, cmplx.Abs(x))
		}
	}
	// Broadside steering vector is all ones.
	b := u.Steering(0)
	for i, x := range b {
		if cmplx.Abs(x-1) > 1e-12 {
			t.Fatalf("broadside element %d = %v", i, x)
		}
	}
}

func TestMatchedBeamPeakGain(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64} {
		u := NewULA(n, fc28)
		for _, deg := range []float64{-40, 0, 15, 30} {
			phi := dsp.Rad(deg)
			w := u.SingleBeam(phi)
			if math.Abs(w.Norm()-1) > 1e-12 {
				t.Fatalf("n=%d beam not unit norm", n)
			}
			got := u.Gain(w, phi)
			if math.Abs(got-float64(n)) > 1e-9 {
				t.Fatalf("n=%d φ=%g: peak gain %g want %g", n, deg, got, float64(n))
			}
		}
	}
}

func TestOffBeamGainLower(t *testing.T) {
	u := NewULA(8, fc28)
	w := u.SingleBeam(0)
	peak := u.Gain(w, 0)
	for _, deg := range []float64{5, 10, 20, 45, -30} {
		if g := u.Gain(w, dsp.Rad(deg)); g >= peak {
			t.Fatalf("gain at %g° (%g) not below peak (%g)", deg, g, peak)
		}
	}
}

func TestArrayFactorMatchesGain(t *testing.T) {
	// |a(θ)ᵀw|² for matched unit beam = N·AF(θ)².
	u := NewULA(8, fc28)
	phi := dsp.Rad(10)
	w := u.SingleBeam(phi)
	for _, deg := range []float64{-30, 0, 5, 10, 25, 50} {
		th := dsp.Rad(deg)
		gain := u.Gain(w, th)
		af := u.ArrayFactor(phi, th)
		want := float64(u.N) * af * af
		if math.Abs(gain-want) > 1e-9*(1+want) {
			t.Fatalf("θ=%g: gain %g vs N·AF² %g", deg, gain, want)
		}
	}
}

func TestArrayFactorNulls(t *testing.T) {
	// First null of an N-element broadside beam is at sinθ = λ/(N·d).
	u := NewULA(8, fc28)
	sinNull := u.Lambda / (float64(u.N) * u.Spacing)
	theta := math.Asin(sinNull)
	if af := u.ArrayFactor(0, theta); af > 1e-9 {
		t.Fatalf("array factor at first null = %g", af)
	}
}

func TestHalfPowerBeamwidth(t *testing.T) {
	// Classic approximation: HPBW ≈ 0.886·λ/(N·d) radians for broadside ULA.
	u := NewULA(8, fc28)
	got := u.HalfPowerBeamwidth()
	want := 0.886 * u.Lambda / (float64(u.N) * u.Spacing)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("HPBW = %g rad, want ≈ %g", got, want)
	}
	// More elements → narrower beam.
	u64 := NewULA(64, fc28)
	if u64.HalfPowerBeamwidth() >= got {
		t.Fatal("64-element beam not narrower than 8-element")
	}
}

func TestInvertArrayFactorRoundTrip(t *testing.T) {
	u := NewULA(8, fc28)
	// For offsets within the main lobe, Invert(AF(offset)) ≈ offset.
	for _, deg := range []float64{1, 3, 5, 7} {
		off := dsp.Rad(deg)
		ratio := u.ArrayFactor(0, off)
		got := u.InvertArrayFactor(ratio)
		if math.Abs(got-off) > dsp.Rad(0.5) {
			t.Fatalf("offset %g°: inverted %g°", deg, dsp.Deg(got))
		}
	}
	if got := u.InvertArrayFactor(1); got != 0 {
		t.Fatalf("Invert(1) = %g", got)
	}
	if got := u.InvertArrayFactor(1.5); got != 0 {
		t.Fatalf("Invert(>1) = %g", got)
	}
	// Very small ratios clamp to about the first null, not beyond.
	null := u.InvertArrayFactor(1e-9)
	sinNull := u.Lambda / (float64(u.N) * u.Spacing)
	if null > math.Asin(math.Min(1, sinNull))+1e-6 {
		t.Fatalf("Invert clamped beyond first null: %g", null)
	}
}

func TestMisalignmentLossMatchesPaper(t *testing.T) {
	// §4.2: "a mere angular movement of 14° would cause a 20 dB loss".
	// That figure corresponds to a high-gain (64-element-class azimuth)
	// array; verify the qualitative claim that the paper's own 8-az-element
	// array loses >10 dB within ~14° and a 16-element one loses >20 dB.
	u := NewULA(16, fc28)
	w := u.SingleBeam(0)
	lossDB := u.GainDB(w, 0) - u.GainDB(w, dsp.Rad(14))
	if lossDB < 20 {
		t.Fatalf("16-element loss at 14° = %.1f dB, want ≥ 20", lossDB)
	}
	u8 := NewULA(8, fc28)
	w8 := u8.SingleBeam(0)
	loss8 := u8.GainDB(w8, 0) - u8.GainDB(w8, dsp.Rad(14))
	if loss8 < 10 {
		t.Fatalf("8-element loss at 14° = %.1f dB, want ≥ 10", loss8)
	}
}

func TestPattern(t *testing.T) {
	u := NewULA(8, fc28)
	w := u.SingleBeam(0)
	angles := []float64{-0.5, 0, 0.5}
	p := u.Pattern(w, angles)
	if len(p) != 3 {
		t.Fatalf("pattern length %d", len(p))
	}
	if p[1] <= p[0] || p[1] <= p[2] {
		t.Fatalf("pattern not peaked at center: %v", p)
	}
}

func TestDFTCodebook(t *testing.T) {
	u := NewULA(8, fc28)
	cb := DFTCodebook(u, 16, dsp.Rad(-60), dsp.Rad(60))
	if cb.Len() != 16 {
		t.Fatalf("codebook size %d", cb.Len())
	}
	if cb.Angles[0] != dsp.Rad(-60) || cb.Angles[15] != dsp.Rad(60) {
		t.Fatalf("codebook endpoints %g %g", cb.Angles[0], cb.Angles[15])
	}
	for i, w := range cb.Weights {
		if math.Abs(w.Norm()-1) > 1e-12 {
			t.Fatalf("entry %d not unit norm", i)
		}
		// Each entry's pattern should peak at (or very near) its own angle.
		self := u.Gain(w, cb.Angles[i])
		if math.Abs(self-float64(u.N)) > 1e-9 {
			t.Fatalf("entry %d self-gain %g", i, self)
		}
	}
	if got := cb.Nearest(dsp.Rad(-58)); got != 0 {
		t.Fatalf("Nearest(-58°) = %d", got)
	}
	if got := cb.Nearest(dsp.Rad(61)); got != 15 {
		t.Fatalf("Nearest(61°) = %d", got)
	}
	one := DFTCodebook(u, 1, dsp.Rad(-60), dsp.Rad(60))
	if one.Len() != 1 || one.Angles[0] != 0 {
		t.Fatalf("single-entry codebook should sit at center, got %v", one.Angles)
	}
}

func TestWideBeamTradesGainForWidth(t *testing.T) {
	u := NewULA(8, fc28)
	narrow := u.SingleBeam(0)
	wide := WideBeam(u, 0, 2)
	if math.Abs(wide.Norm()-1) > 1e-12 {
		t.Fatal("wide beam not unit norm")
	}
	// Lower peak gain.
	if u.Gain(wide, 0) >= u.Gain(narrow, 0) {
		t.Fatal("wide beam peak gain not lower")
	}
	// Higher gain off-axis (at 20°, past the narrow beam's first null region).
	off := dsp.Rad(20)
	if u.Gain(wide, off) <= u.Gain(narrow, off) {
		t.Fatalf("wide beam not wider: %g vs %g at 20°",
			u.Gain(wide, off), u.Gain(narrow, off))
	}
	// Degenerate element counts clamp.
	if w := WideBeam(u, 0, 0); math.Abs(w.Norm()-1) > 1e-12 {
		t.Fatal("active=0 should clamp to 1")
	}
	if w := WideBeam(u, 0, 99); math.Abs(w.Norm()-1) > 1e-12 {
		t.Fatal("active>N should clamp to N")
	}
}

func TestQuantizerFineIsNearLossless(t *testing.T) {
	u := NewULA(8, fc28)
	q := DefaultQuantizer()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	w := u.SingleBeam(dsp.Rad(23))
	wq := q.Apply(w)
	if math.Abs(wq.Norm()-1) > 1e-12 {
		t.Fatal("quantized beam not unit norm")
	}
	lossDB := u.GainDB(w, dsp.Rad(23)) - u.GainDB(wq, dsp.Rad(23))
	if lossDB > 0.1 {
		t.Fatalf("6-bit quantization loss %g dB", lossDB)
	}
}

func TestQuantizerCoarseStillForms(t *testing.T) {
	u := NewULA(8, fc28)
	q := CoarseQuantizer()
	phi := dsp.Rad(30)
	w := u.SingleBeam(phi)
	wq := q.Apply(w)
	// 2-bit phase still forms a usable beam: within ~1.5 dB of ideal
	// (classic result for 2-bit phase quantization loss ≈ 0.9 dB).
	lossDB := u.GainDB(w, phi) - u.GainDB(wq, phi)
	if lossDB > 1.6 {
		t.Fatalf("2-bit quantization loss %g dB", lossDB)
	}
	if lossDB < 0 {
		t.Fatalf("quantization cannot increase matched gain: %g dB", lossDB)
	}
}

func TestQuantizerPhaseLevels(t *testing.T) {
	q := Quantizer{PhaseBits: 2}
	w := cmx.Vector{cmplx.Rect(1, 0.3), cmplx.Rect(1, 1.8), cmplx.Rect(1, -2.9)}
	wq := q.Apply(w)
	step := math.Pi / 2
	for i, x := range wq {
		ph := cmplx.Phase(x)
		r := math.Mod(math.Abs(ph), step)
		if math.Min(r, step-r) > 1e-9 {
			t.Fatalf("element %d phase %g not on 2-bit grid", i, ph)
		}
	}
}

func TestQuantizerAmplitudeFloor(t *testing.T) {
	q := Quantizer{PhaseBits: 6, GainRangeDB: 27, GainStepDB: 0.5}
	// One element far below the attenuator range must switch off.
	w := cmx.Vector{1, complex(0.1, 0), complex(1e-4, 0)} // −20 dB in range, −80 dB below
	wq := q.Apply(w)
	if cmplx.Abs(wq[2]) != 0 {
		t.Fatalf("element below range not zeroed: %v", wq[2])
	}
	if cmplx.Abs(wq[1]) == 0 {
		t.Fatal("element within range wrongly zeroed")
	}
}

func TestQuantizerOnOffAmplitude(t *testing.T) {
	q := Quantizer{PhaseBits: 2, GainRangeDB: 27, GainStepDB: 0}
	w := cmx.Vector{complex(1, 0), complex(0.4, 0), complex(1e-5, 0)}
	wq := q.Apply(w)
	// Live elements share the same magnitude under on/off control.
	if math.Abs(cmplx.Abs(wq[0])-cmplx.Abs(wq[1])) > 1e-12 {
		t.Fatalf("on/off amplitudes differ: %g vs %g", cmplx.Abs(wq[0]), cmplx.Abs(wq[1]))
	}
	if cmplx.Abs(wq[2]) != 0 {
		t.Fatal("sub-range element should be off")
	}
}

func TestQuantizerZeroVector(t *testing.T) {
	q := DefaultQuantizer()
	w := cmx.NewVector(4)
	wq := q.Apply(w)
	if wq.Norm() != 0 {
		t.Fatal("zero vector should stay zero")
	}
}

func TestQuantizerValidate(t *testing.T) {
	if err := (Quantizer{PhaseBits: -1}).Validate(); err == nil {
		t.Fatal("negative phase bits should fail")
	}
	if err := (Quantizer{GainRangeDB: -3}).Validate(); err == nil {
		t.Fatal("negative gain range should fail")
	}
}

func TestValidateRejectsBadULA(t *testing.T) {
	if err := (&ULA{N: 0, Spacing: 1, Lambda: 1}).Validate(); err == nil {
		t.Fatal("N=0 should fail")
	}
	if err := (&ULA{N: 4, Spacing: -1, Lambda: 1}).Validate(); err == nil {
		t.Fatal("negative spacing should fail")
	}
}

func TestGainReciprocityRandomWeights(t *testing.T) {
	// Gain is invariant to a global phase rotation of the weights.
	u := NewULA(8, fc28)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		w := make(cmx.Vector, u.N)
		for i := range w {
			w[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		w.Normalize()
		rot := w.Scaled(cmplx.Exp(complex(0, rng.Float64()*2*math.Pi)))
		th := (rng.Float64() - 0.5) * math.Pi / 2
		if math.Abs(u.Gain(w, th)-u.Gain(rot, th)) > 1e-9 {
			t.Fatal("gain not phase-rotation invariant")
		}
	}
}
