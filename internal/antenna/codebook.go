package antenna

import (
	"math"

	"mmreliable/internal/cmx"
)

// Codebook is an indexed set of beamforming weight vectors with their
// nominal steering angles, as stored in phased-array register banks.
type Codebook struct {
	Angles  []float64    // nominal steering angle per entry (radians)
	Weights []cmx.Vector // unit-norm weights per entry
}

// Len returns the number of codebook entries.
func (c *Codebook) Len() int { return len(c.Weights) }

// DFTCodebook builds a uniform codebook of n matched single beams spanning
// [minAngle, maxAngle]. 5G NR SSB sweeps scan such a codebook during beam
// training.
func DFTCodebook(u *ULA, n int, minAngle, maxAngle float64) *Codebook {
	cb := &Codebook{
		Angles:  make([]float64, n),
		Weights: make([]cmx.Vector, n),
	}
	for i := 0; i < n; i++ {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		ang := minAngle + frac*(maxAngle-minAngle)
		cb.Angles[i] = ang
		cb.Weights[i] = u.SingleBeam(ang)
	}
	return cb
}

// Nearest returns the codebook index whose nominal angle is closest to phi.
func (c *Codebook) Nearest(phi float64) int {
	best, bestd := 0, math.Inf(1)
	for i, a := range c.Angles {
		if d := math.Abs(a - phi); d < bestd {
			best, bestd = i, d
		}
	}
	return best
}

// WideBeam returns a unit-norm weight vector that uses only the first
// active elements of the array (the rest set to zero), producing a beam
// roughly N/active times wider with proportionally less gain. This is the
// "widebeam" baseline of the paper's Fig. 18b.
func WideBeam(u *ULA, phi float64, active int) cmx.Vector {
	if active <= 0 {
		active = 1
	}
	if active > u.N {
		active = u.N
	}
	w := make(cmx.Vector, u.N)
	sub := &ULA{N: active, Spacing: u.Spacing, Lambda: u.Lambda}
	ws := sub.SingleBeam(phi)
	copy(w, ws)
	return w.Normalize()
}
