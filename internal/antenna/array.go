// Package antenna models phased-array geometry: steering vectors, array
// factors and beam patterns for uniform linear arrays (ULA), beam codebooks,
// and the weight quantization imposed by real phase-shifter/attenuator
// hardware.
//
// Conventions follow the paper: for an N-element ULA with spacing d and
// wavelength λ, the channel steering vector for departure angle φ is
//
//	a(φ)[n] = e^{−j2π (d/λ) n sinφ},  n = 0..N−1,
//
// so the matched single-beam weight toward φ is w = a(φ)* / √N (Eq. 6).
// Angles are in radians, measured from array broadside, valid in (−π/2, π/2).
package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299_792_458.0

// ULA describes a uniform linear array.
type ULA struct {
	N       int     // number of elements
	Spacing float64 // element spacing d in meters
	Lambda  float64 // carrier wavelength λ in meters
}

// NewULA returns a half-wavelength-spaced ULA with n elements at the given
// carrier frequency in Hz.
func NewULA(n int, carrierHz float64) *ULA {
	lambda := SpeedOfLight / carrierHz
	return &ULA{N: n, Spacing: lambda / 2, Lambda: lambda}
}

// Validate checks the array parameters.
func (u *ULA) Validate() error {
	if u.N <= 0 {
		return fmt.Errorf("antenna: non-positive element count %d", u.N)
	}
	if u.Spacing <= 0 || u.Lambda <= 0 {
		return fmt.Errorf("antenna: non-positive spacing/wavelength %g/%g", u.Spacing, u.Lambda)
	}
	return nil
}

// Steering returns the steering vector a(φ) for departure angle phi.
func (u *ULA) Steering(phi float64) cmx.Vector {
	return u.SteeringInto(phi, make(cmx.Vector, u.N))
}

// SteeringInto writes the steering vector a(φ) into dst and returns it,
// allocating only when dst is nil. len(dst) must equal u.N. This is the
// scratch-reusing variant the probing hot path runs on.
func (u *ULA) SteeringInto(phi float64, dst cmx.Vector) cmx.Vector {
	if dst == nil {
		dst = make(cmx.Vector, u.N)
	}
	if len(dst) != u.N {
		panic(fmt.Sprintf("antenna: steering dst length %d != %d elements", len(dst), u.N))
	}
	k := -2 * math.Pi * u.Spacing / u.Lambda * math.Sin(phi)
	dsp.Active().PhasorFillCmplx(dst, 0, k)
	return dst
}

// SteeringSplitInto writes the steering vector a(φ) in planar layout into
// (dstRe, dstIm), the form the batched wideband kernels consume directly.
// Both slices must have length u.N.
func (u *ULA) SteeringSplitInto(phi float64, dstRe, dstIm []float64) {
	if len(dstRe) != u.N || len(dstIm) != u.N {
		panic(fmt.Sprintf("antenna: steering dst lengths %d/%d != %d elements", len(dstRe), len(dstIm), u.N))
	}
	k := -2 * math.Pi * u.Spacing / u.Lambda * math.Sin(phi)
	dsp.Active().PhasorFill(dstRe, dstIm, 0, k)
}

// SingleBeam returns the unit-norm matched (conjugate) beamforming weights
// for a beam steered toward phi (Eq. 6 of the paper).
func (u *ULA) SingleBeam(phi float64) cmx.Vector {
	return u.SingleBeamInto(phi, make(cmx.Vector, u.N))
}

// SingleBeamInto writes the matched single-beam weights into dst and
// returns it (see SingleBeam), allocating only when dst is nil. The
// arithmetic is identical to SingleBeam: steering vector, elementwise
// conjugate, L2 normalization.
func (u *ULA) SingleBeamInto(phi float64, dst cmx.Vector) cmx.Vector {
	dst = u.SteeringInto(phi, dst)
	for n := range dst {
		dst[n] = cmplx.Conj(dst[n])
	}
	return dst.Normalize()
}

// Gain returns the power gain |a(θ)ᵀw|² of the weight vector w observed
// from direction theta. For a unit-norm matched beam this peaks at N.
func (u *ULA) Gain(w cmx.Vector, theta float64) float64 {
	g := u.Steering(theta).Dot(w)
	return real(g)*real(g) + imag(g)*imag(g)
}

// GainDB returns Gain in decibels.
func (u *ULA) GainDB(w cmx.Vector, theta float64) float64 {
	return 10 * math.Log10(u.Gain(w, theta))
}

// Pattern evaluates the power gain of w over the given angles.
func (u *ULA) Pattern(w cmx.Vector, thetas []float64) []float64 {
	out := make([]float64, len(thetas))
	for i, th := range thetas {
		out[i] = u.Gain(w, th)
	}
	return out
}

// ArrayFactor returns the normalized magnitude of the classic ULA array
// factor for a beam steered at phi0 and observed at theta:
//
//	AF(θ) = sin(Nψ/2) / (N·sin(ψ/2)),  ψ = 2π(d/λ)(sinθ − sinφ₀).
//
// It equals |a(θ)ᵀ w|/√(N·‖w‖²·N) for the matched beam; the tracker inverts
// this function to convert a per-beam power change into an angular deviation
// (Eq. 20 of the paper).
func (u *ULA) ArrayFactor(phi0, theta float64) float64 {
	psi := 2 * math.Pi * u.Spacing / u.Lambda * (math.Sin(theta) - math.Sin(phi0))
	return arrayFactorPsi(u.N, psi)
}

func arrayFactorPsi(n int, psi float64) float64 {
	s := math.Sin(psi / 2)
	if math.Abs(s) < 1e-12 {
		return 1
	}
	return math.Abs(math.Sin(float64(n)*psi/2) / (float64(n) * s))
}

// HalfPowerBeamwidth returns the −3 dB beamwidth (radians) of a broadside
// matched beam, found numerically from the array factor.
func (u *ULA) HalfPowerBeamwidth() float64 {
	target := math.Sqrt(0.5) // amplitude at −3 dB
	lo, hi := 0.0, math.Pi/2
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if u.ArrayFactor(0, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 2 * lo
}

// InvertArrayFactor returns the angular offset Δ ≥ 0 (radians) from beam
// center at which the matched-beam array factor equals the given amplitude
// ratio (0 < ratio ≤ 1). It searches the main lobe only; values below the
// first-null amplitude clamp to the first null. This is the inverse function
// the mobility tracker applies to per-beam power losses (§4.2).
func (u *ULA) InvertArrayFactor(ratio float64) float64 {
	if ratio >= 1 {
		return 0
	}
	if ratio <= 0 {
		ratio = 1e-6
	}
	// Main lobe of AF in ψ ends at ψ = 2π/N. Bisect on monotone segment.
	psiNull := 2 * math.Pi / float64(u.N)
	lo, hi := 0.0, psiNull
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if arrayFactorPsi(u.N, mid) > ratio {
			lo = mid
		} else {
			hi = mid
		}
	}
	psi := (lo + hi) / 2
	// Convert ψ back to an angle offset near broadside:
	// ψ = 2π(d/λ)(sinθ − sinφ₀) ⇒ for small offsets Δ ≈ ψ/(2π d/λ · cosφ₀).
	// We return the offset in sin-space divided by cos at broadside, i.e.
	// the caller adds this to the beam angle for near-broadside beams.
	sinOffset := psi / (2 * math.Pi * u.Spacing / u.Lambda)
	if sinOffset > 1 {
		sinOffset = 1
	}
	return math.Asin(sinOffset)
}

// Directivity returns the broadside directivity estimate N for a matched
// uniform-amplitude beam (linear scale).
func (u *ULA) Directivity() float64 { return float64(u.N) }
