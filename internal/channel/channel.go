// Package channel turns propagation path lists into the channel observables
// the rest of the stack consumes: per-antenna frequency-domain CSI, the
// effective scalar channel under a given beamforming vector, and wideband
// (multi-subcarrier) responses.
//
// The model follows the paper's geometric formulation (Eq. 25/26): with L
// paths, the channel at TX antenna n and baseband frequency offset f is
//
//	h(f)[n] = Σ_ℓ g_ℓ · e^{−j2π(fc+f)τ_ℓ} · a(φ_ℓ)[n] · r_ℓ(f)
//
// where g_ℓ is the real path amplitude, τ_ℓ the time of flight, a the TX
// steering vector, and r_ℓ the receive-side factor (1 for a quasi-omni UE,
// or the RX array response combined with the UE beam).
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync/atomic"
	"unsafe"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
)

// PathState is a propagation path plus its time-varying link conditions.
type PathState struct {
	env.Path
	ExtraLossDB float64 // additional loss (e.g. a blocker occluding the path)
	ExtraPhase  float64 // additional phase (radians), for scripted channels
}

// Model is a frozen snapshot of the channel between one gNB array and one
// UE. The zero value is unusable; construct with New or a helper.
type Model struct {
	Band env.Band
	Tx   *antenna.ULA
	Rx   *antenna.ULA // nil for a quasi-omni UE
	// RxWeights is the UE combining beam; ignored when Rx is nil. When Rx
	// is non-nil and RxWeights is nil, the UE is treated as quasi-omni
	// (single reference element).
	RxWeights cmx.Vector
	Paths     []PathState

	// Reuse opts this model into single-goroutine cache recycling: when
	// set, a cache rebuild overwrites the previous snapshot's backing
	// arrays in place (including one contiguous steering buffer for all
	// paths) instead of allocating a fresh immutable snapshot, so the
	// per-slot mutate→rebuild cycle of a simulation runs allocation-free
	// in steady state. A Reuse model must NOT be shared across goroutines:
	// the in-place rebuild would race with concurrent readers of the old
	// snapshot. Leave false (the default) for any model that parallel
	// workers might share.
	Reuse bool

	// epoch is bumped by InvalidateCache; the factored-kernel cache below
	// is only reused when its epoch matches. Mutators that go around the
	// cheap per-path snapshot check (e.g. editing RxWeights elements in
	// place, or mutating Tx geometry) must call InvalidateCache.
	epoch uint64
	// stamp is the model's content version: writers bump it (BumpStamp,
	// CopyStateFrom, InvalidateCache) whenever the channel state may have
	// changed, and consumers key derived-value caches on it (the manager's
	// per-slot SNR fold, the station's batch-entry skip). An unchanged stamp
	// guarantees unchanged content; the converse need not hold — a bump with
	// identical content merely costs one redundant recompute.
	stamp uint64
	// cache holds a *modelCache built lazily on first wideband evaluation;
	// it is read and replaced atomically so concurrent READ-ONLY use of one
	// Model (the parallel experiment runner's worker pool) is race-free.
	// The cached snapshot is immutable once published.
	cache unsafe.Pointer
}

// New returns a channel model over the given band and TX array with the
// supplied paths and an omni receiver.
func New(band env.Band, tx *antenna.ULA, paths []env.Path) *Model {
	ps := make([]PathState, len(paths))
	for i, p := range paths {
		ps[i] = PathState{Path: p}
	}
	return &Model{Band: band, Tx: tx, Paths: ps}
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if m.Tx == nil {
		return fmt.Errorf("channel: nil TX array")
	}
	if err := m.Tx.Validate(); err != nil {
		return err
	}
	if m.Rx != nil {
		if err := m.Rx.Validate(); err != nil {
			return err
		}
		if m.RxWeights != nil && len(m.RxWeights) != m.Rx.N {
			return fmt.Errorf("channel: RX weights length %d != %d elements", len(m.RxWeights), m.Rx.N)
		}
	}
	if m.Band.CarrierHz <= 0 {
		return fmt.Errorf("channel: non-positive carrier %g", m.Band.CarrierHz)
	}
	return nil
}

// PathGain returns the scalar complex gain of path index ℓ at baseband
// frequency offset fOff (Hz from the carrier), including the receive-side
// factor.
//
// The phase is computed in split form — the frequency-independent carrier
// phasor e^{j(−2π·fc·τ + extra)} and the baseband ramp phasor e^{−j2π·fOff·τ}
// are built separately and multiplied — so the direct evaluation and the
// factored wideband kernel (EffectiveWidebandInto) share the same rounding
// pattern and agree to well under 1e-12. Summing the phases as floats first
// (carrierPhase ± thousands of radians plus a ±hundreds-of-radians ramp)
// would round the total at the ulp of the carrier phase, a few 1e-12 rad,
// putting that much noise between the two forms.
func (m *Model) PathGain(l int, fOff float64) complex128 {
	p := m.Paths[l]
	amp := math.Pow(10, -(p.LossDB+p.ExtraLossDB)/20)
	g := cmplx.Rect(amp, m.carrierPhase(l))
	if fOff != 0 {
		g *= cmplx.Rect(1, -2*math.Pi*fOff*p.Delay)
	}
	return g * m.rxFactor(p.AoA)
}

// carrierPhase returns the frequency-independent phase of path ℓ at the
// carrier: −2π·fc·τ + ExtraPhase (+π for a PhasePi reflection).
func (m *Model) carrierPhase(l int) float64 {
	p := m.Paths[l]
	phase := -2*math.Pi*m.Band.CarrierHz*p.Delay + p.ExtraPhase
	if p.PhasePi {
		phase += math.Pi
	}
	return phase
}

func (m *Model) rxFactor(aoa float64) complex128 {
	if m.Rx == nil || m.RxWeights == nil {
		return 1
	}
	return m.Rx.Steering(aoa).Dot(m.RxWeights)
}

// PerAntennaCSI returns h(fOff)[n] for each TX antenna n — the quantity the
// oracle beamformer needs and that real analog arrays cannot observe
// directly (one RF chain).
func (m *Model) PerAntennaCSI(fOff float64) cmx.Vector {
	h := make(cmx.Vector, m.Tx.N)
	c := m.pathCache()
	for l := range m.Paths {
		g := m.PathGain(l, fOff)
		if g == 0 {
			continue
		}
		h.AddScaled(g, c.steer[l])
	}
	return h
}

// Effective returns the scalar effective channel h(fOff)ᵀw under TX beam w.
// This is what a single-RF-chain receiver observes on a pilot.
func (m *Model) Effective(w cmx.Vector, fOff float64) complex128 {
	var y complex128
	for l := range m.Paths {
		g := m.PathGain(l, fOff)
		if g == 0 {
			continue
		}
		y += g * m.Tx.Steering(m.Paths[l].AoD).Dot(w)
	}
	return y
}

// ---------------------------------------------------------------------------
// Factored wideband kernel.
//
// Effective(w, f) = Σ_ℓ g_ℓ(f)·(a(φ_ℓ)ᵀw) separates into a frequency-
// independent per-path coefficient and a linear frequency ramp:
//
//	g_ℓ(f)·(a(φ_ℓ)ᵀw) = [amp_ℓ·e^{jθ_ℓ}·r_ℓ·(a(φ_ℓ)ᵀw)] · e^{−j2π f τ_ℓ}
//
// with θ_ℓ the carrier phase and r_ℓ the RX factor. The bracket is computed
// once per call (one O(N) dot per path); the uniform-grid frequency sweep
// runs on a unit-phasor recurrence re-seeded from math.Sincos every
// phasorReseed subcarriers, so accumulated rounding drift stays below
// ~reseed·ε ≈ 1e-14 instead of growing O(nsc·ε). Everything that does not
// depend on the beam w — the coefficient amp·e^{jθ}·r and the steering
// vector a(φ_ℓ) — is cached on the Model (see pathCache).
// ---------------------------------------------------------------------------

// phasorReseed is the recurrence length between exact re-seeds of the
// frequency-ramp phasor, shared with every planar kernel implementation.
const phasorReseed = dsp.PhasorReseed

// pathSnap records the per-path inputs a cached factor was derived from;
// a mismatch with the live PathState invalidates the cache.
type pathSnap struct {
	lossDB, extraLoss, extraPhase, delay, aoD, aoA float64
	phasePi                                        bool
}

// modelCache is the immutable frequency-independent per-path state of one
// Model snapshot. It is published through an atomic pointer: concurrent
// read-only users of a Model share one cache without locks, and a stale
// cache is detected by the epoch and the per-path snapshots.
type modelCache struct {
	epoch   uint64
	carrier float64
	tx      *antenna.ULA
	rx      *antenna.ULA
	rxHead  *complex128 // first element of RxWeights at build time (nil if none)
	rxLen   int
	snaps   []pathSnap
	coef    []complex128 // amp·e^{jθ}·rxFactor; 0 for dead paths
	steer   []cmx.Vector // cached a(φ_ℓ), one per path
	delays  []float64
	// Loss-independent factors of coef, kept so a loss-only mutation (per-
	// slot fading/blockage on an otherwise static geometry) refreshes coef
	// without re-deriving steering vectors, carrier phases, or RX dots:
	// unitRe/unitIm hold e^{jθ_ℓ} (θ the carrier phase) and rxf the receive
	// factor, so coef[l] = amp·(unitRe,unitIm)·rxf[l] in the exact operation
	// order of a full rebuild.
	rxf            []complex128
	unitRe, unitIm []float64
	// steerRe/steerIm are the planar steering rows (path l occupies
	// [l·N, (l+1)·N)) the batched kernels consume directly.
	steerRe, steerIm []float64
	// steerBuf is the contiguous backing of steer when the cache was built
	// for a Reuse model (nil otherwise): one slab of L·N elements that
	// in-place rebuilds refill without touching the allocator. rxScratch
	// is the matching RX-side steering scratch for the per-path receive
	// factor.
	steerBuf  []complex128
	rxScratch cmx.Vector
}

// valid reports whether c still describes m. The per-path snapshot compare
// is O(L) float equality checks (L is 2–4 in every scenario) — far cheaper
// than one steering dot — and catches direct mutation of
// Paths[l].ExtraLossDB/ExtraPhase even without an InvalidateCache call.
// RxWeights are compared by slice identity: rebinding a different UE beam
// (m.RxWeights = v) is caught, in-place element edits require
// InvalidateCache.
func (c *modelCache) valid(m *Model) bool {
	if !c.geomValid(m) {
		return false
	}
	for i := range c.snaps {
		p := &m.Paths[i]
		s := &c.snaps[i]
		if s.lossDB != p.LossDB || s.extraLoss != p.ExtraLossDB {
			return false
		}
	}
	return true
}

// geomValid is valid minus the per-path loss compare: it reports whether
// everything the loss-independent cached factors (steering, carrier phasor,
// RX factor, delays) were derived from still matches m. When geomValid holds
// but valid does not, only losses moved — the per-slot fading/blockage case —
// and refreshLoss can renew coef in place without a full rebuild.
func (c *modelCache) geomValid(m *Model) bool {
	if c.epoch != m.epoch || c.carrier != m.Band.CarrierHz || c.tx != m.Tx || c.rx != m.Rx {
		return false
	}
	var head *complex128
	if len(m.RxWeights) > 0 {
		head = &m.RxWeights[0]
	}
	if c.rxHead != head || c.rxLen != len(m.RxWeights) {
		return false
	}
	if len(c.snaps) != len(m.Paths) {
		return false
	}
	for i := range c.snaps {
		p := &m.Paths[i]
		s := &c.snaps[i]
		if s.extraPhase != p.ExtraPhase || s.delay != p.Delay ||
			s.aoD != p.AoD || s.aoA != p.AoA || s.phasePi != p.PhasePi {
			return false
		}
	}
	return true
}

// refreshLoss renews the loss-dependent slice of the cache — amp and coef —
// from the cached unit carrier phasors and RX factors, in the exact
// operation order of a full rebuild (amp·cosθ, amp·sinθ, complex multiply by
// rxf), so a loss-only refresh and a rebuild produce identical bits. Only
// called on Reuse models (single goroutine), which makes the in-place
// mutation of the published cache safe.
func (c *modelCache) refreshLoss(m *Model) {
	kern := dsp.Active()
	for l := range m.Paths {
		p := &m.Paths[l]
		c.snaps[l].lossDB = p.LossDB
		c.snaps[l].extraLoss = p.ExtraLossDB
		amp := kern.AmpFromDB(p.LossDB + p.ExtraLossDB)
		c.coef[l] = complex(amp*c.unitRe[l], amp*c.unitIm[l]) * c.rxf[l]
	}
}

// InvalidateCache marks the factored-kernel cache stale. Callers that
// mutate path state through the exported fields get automatic invalidation
// via the per-path snapshot check; InvalidateCache is the explicit escape
// hatch for mutations the snapshot cannot see (in-place RxWeights element
// edits, Tx/Rx geometry changes). It requires the same exclusive access as
// any other Model mutation.
func (m *Model) InvalidateCache() { m.epoch++; m.stamp++ }

// Stamp returns the model's content version (see the stamp field).
func (m *Model) Stamp() uint64 { return m.stamp }

// BumpStamp records a content change for stamp-keyed consumers without
// invalidating the factored-kernel cache — the per-path snapshot validation
// already sees ordinary Paths/ExtraLossDB mutations.
func (m *Model) BumpStamp() { m.stamp++ }

// pathCache returns a valid frequency-independent path cache, rebuilding it
// if the model changed since the last build. Concurrent readers may race to
// rebuild an identical cache; the atomic publish keeps that benign.
func (m *Model) pathCache() *modelCache {
	c := (*modelCache)(atomic.LoadPointer(&m.cache))
	if c != nil && c.valid(m) {
		return c
	}
	if m.Reuse && c != nil && c.steerBuf != nil && c.geomValid(m) {
		// Loss-only mutation on a single-goroutine model: renew coef in
		// place instead of re-deriving steering/phasors/RX factors.
		c.refreshLoss(m)
		return c
	}
	c = m.buildCache()
	atomic.StorePointer(&m.cache, unsafe.Pointer(c))
	return c
}

func (m *Model) buildCache() *modelCache {
	var c *modelCache
	nP := len(m.Paths)
	if m.Reuse {
		// Single-goroutine model: recycle the previous snapshot's backing
		// arrays in place. Safe only because Reuse forbids concurrent
		// readers of the published cache.
		c = (*modelCache)(atomic.LoadPointer(&m.cache))
	}
	if c == nil || cap(c.snaps) < nP || cap(c.steerBuf) < nP*m.Tx.N ||
		cap(c.steerRe) < nP*m.Tx.N || (m.Reuse && c.steerBuf == nil) {
		c = &modelCache{
			snaps:   make([]pathSnap, nP),
			coef:    make([]complex128, nP),
			steer:   make([]cmx.Vector, nP),
			delays:  make([]float64, nP),
			rxf:     make([]complex128, nP),
			unitRe:  make([]float64, nP),
			unitIm:  make([]float64, nP),
			steerRe: make([]float64, nP*m.Tx.N),
			steerIm: make([]float64, nP*m.Tx.N),
		}
		if m.Reuse {
			c.steerBuf = make([]complex128, nP*m.Tx.N)
		}
	}
	c.snaps = c.snaps[:nP]
	c.coef = c.coef[:nP]
	c.steer = c.steer[:nP]
	c.delays = c.delays[:nP]
	c.rxf = c.rxf[:nP]
	c.unitRe = c.unitRe[:nP]
	c.unitIm = c.unitIm[:nP]
	c.steerRe = c.steerRe[:nP*m.Tx.N]
	c.steerIm = c.steerIm[:nP*m.Tx.N]
	c.epoch = m.epoch
	c.carrier = m.Band.CarrierHz
	c.tx = m.Tx
	c.rx = m.Rx
	c.rxHead = nil
	c.rxLen = len(m.RxWeights)
	if len(m.RxWeights) > 0 {
		c.rxHead = &m.RxWeights[0]
	}
	kern := dsp.Active()
	for l := range m.Paths {
		p := &m.Paths[l]
		c.snaps[l] = pathSnap{
			lossDB: p.LossDB, extraLoss: p.ExtraLossDB, extraPhase: p.ExtraPhase,
			delay: p.Delay, aoD: p.AoD, aoA: p.AoA, phasePi: p.PhasePi,
		}
		c.delays[l] = p.Delay
		amp := kern.AmpFromDB(p.LossDB + p.ExtraLossDB)
		rxf := complex128(1)
		if m.Rx != nil && m.RxWeights != nil {
			if c.steerBuf != nil {
				if cap(c.rxScratch) < m.Rx.N {
					c.rxScratch = make(cmx.Vector, m.Rx.N)
				}
				rxf = m.Rx.SteeringInto(p.AoA, c.rxScratch[:m.Rx.N]).Dot(m.RxWeights)
			} else {
				rxf = m.rxFactor(p.AoA)
			}
		}
		c.rxf[l] = rxf
		// cmplx.Rect(amp, θ) is exactly complex(amp·cosθ, amp·sinθ); keeping
		// the unit phasor lets refreshLoss rebuild coef bit-identically.
		ph := m.carrierPhase(l)
		c.unitRe[l], c.unitIm[l] = math.Cos(ph), math.Sin(ph)
		c.coef[l] = complex(amp*c.unitRe[l], amp*c.unitIm[l]) * rxf
		n := m.Tx.N
		if c.steerBuf != nil {
			c.steer[l] = m.Tx.SteeringInto(p.AoD, c.steerBuf[l*n:(l+1)*n:(l+1)*n])
		} else {
			c.steer[l] = m.Tx.Steering(p.AoD)
		}
		m.Tx.SteeringSplitInto(p.AoD, c.steerRe[l*n:(l+1)*n], c.steerIm[l*n:(l+1)*n])
	}
	return c
}

// uniformStep reports whether fOffs is a uniform grid (to within a few ulps
// of the end-to-end span, tight enough that the phase approximation error of
// the recurrence stays below 1e-12 rad for every realistic delay) and
// returns the common step.
func uniformStep(fOffs []float64) (float64, bool) {
	if len(fOffs) < 3 {
		if len(fOffs) == 2 {
			return fOffs[1] - fOffs[0], true
		}
		return 0, true
	}
	step := fOffs[1] - fOffs[0]
	scale := math.Abs(fOffs[0])
	if s := math.Abs(fOffs[len(fOffs)-1]); s > scale {
		scale = s
	}
	if s := math.Abs(step) * float64(len(fOffs)); s > scale {
		scale = s
	}
	tol := 64 * 2.220446049250313e-16 * scale
	f0 := fOffs[0]
	for k := 2; k < len(fOffs); k++ {
		if math.Abs(fOffs[k]-(f0+float64(k)*step)) > tol {
			return 0, false
		}
	}
	return step, true
}

// EffectiveWideband evaluates Effective at each frequency offset.
func (m *Model) EffectiveWideband(w cmx.Vector, fOffs []float64) cmx.Vector {
	return m.EffectiveWidebandInto(w, fOffs, make(cmx.Vector, len(fOffs)))
}

// EffectiveWidebandInto writes the effective wideband channel under TX beam
// w into dst and returns it, allocating only when dst is nil (or on a cache
// rebuild after a model mutation). len(dst) must equal len(fOffs). The cost
// is O(L·N + nsc·L) versus the naive O(nsc·L·N) with nsc·L complex
// exponentials; results match the direct per-subcarrier Effective to well
// under 1e-12 (pinned by TestEffectiveWidebandFactoredEquivalence).
func (m *Model) EffectiveWidebandInto(w cmx.Vector, fOffs []float64, dst cmx.Vector) cmx.Vector {
	if dst == nil {
		dst = make(cmx.Vector, len(fOffs))
	}
	if len(dst) != len(fOffs) {
		panic(fmt.Sprintf("channel: wideband dst length %d != %d offsets", len(dst), len(fOffs)))
	}
	c := m.pathCache()
	for k := range dst {
		dst[k] = 0
	}
	step, uniform := uniformStep(fOffs)
	for l := range c.coef {
		base := c.coef[l]
		if base == 0 {
			continue
		}
		cl := base * c.steer[l].Dot(w)
		tau := c.delays[l]
		if tau == 0 {
			for k := range dst {
				dst[k] += cl
			}
			continue
		}
		if !uniform {
			for k, f := range fOffs {
				dst[k] += cl * cmplx.Rect(1, -2*math.Pi*f*tau)
			}
			continue
		}
		// Uniform grid: unit-phasor recurrence for e^{−j2π f_k τ},
		// re-seeded exactly every phasorReseed subcarriers.
		angle0 := -2 * math.Pi * fOffs[0] * tau
		stepAngle := -2 * math.Pi * step * tau
		r := cmplx.Rect(1, stepAngle)
		var p complex128
		for k := range dst {
			if k%phasorReseed == 0 {
				p = cmplx.Rect(1, angle0+float64(k)*stepAngle)
			}
			dst[k] += cl * p
			p *= r
		}
	}
	return dst
}

// EffectiveWidebandSplitInto is EffectiveWidebandInto with a planar
// destination: the effective wideband channel under TX beam w lands in
// (dstRe, dstIm), the layout the batched DSP kernels and the planar SNR
// reduction consume without an interleave pass. Both slices must have length
// len(fOffs). The arithmetic runs on the active dsp.Kernel; under
// dsp.Reference it reproduces EffectiveWidebandInto bit for bit, under the
// planar kernel it agrees to ≤1e-12 (pinned by the factored property tests).
func (m *Model) EffectiveWidebandSplitInto(w cmx.Vector, fOffs []float64, dstRe, dstIm []float64) {
	if len(dstRe) != len(fOffs) || len(dstIm) != len(fOffs) {
		panic(fmt.Sprintf("channel: wideband planar dst lengths %d/%d != %d offsets",
			len(dstRe), len(dstIm), len(fOffs)))
	}
	kern := dsp.Active()
	c := m.pathCache()
	for k := range dstRe {
		dstRe[k] = 0
		dstIm[k] = 0
	}
	step, uniform := uniformStep(fOffs)
	n := m.Tx.N
	for l := range c.coef {
		base := c.coef[l]
		if base == 0 {
			continue
		}
		dotRe, dotIm := kern.DotSplit(c.steerRe[l*n:(l+1)*n], c.steerIm[l*n:(l+1)*n], w)
		// base·dot in the componentwise order the complex multiply lowers to.
		clRe := real(base)*dotRe - imag(base)*dotIm
		clIm := real(base)*dotIm + imag(base)*dotRe
		tau := c.delays[l]
		if tau == 0 {
			for k := range dstRe {
				dstRe[k] += clRe
				dstIm[k] += clIm
			}
			continue
		}
		if !uniform {
			for k, f := range fOffs {
				th := -2 * math.Pi * f * tau
				pc, ps := math.Cos(th), math.Sin(th)
				dstRe[k] += clRe*pc - clIm*ps
				dstIm[k] += clRe*ps + clIm*pc
			}
			continue
		}
		kern.PhasorRampAxpy(dstRe, dstIm, clRe, clIm,
			-2*math.Pi*fOffs[0]*tau, -2*math.Pi*step*tau)
	}
}

// SubcarrierOffsets returns nsc baseband frequency offsets uniformly
// spanning bandwidth bw, centered on the carrier. Non-positive nsc yields
// nil (an empty grid), so degenerate configurations evaluate to empty
// responses instead of panicking downstream.
func SubcarrierOffsets(bw float64, nsc int) []float64 {
	if nsc <= 0 {
		return nil
	}
	out := make([]float64, nsc)
	if nsc == 1 {
		return out
	}
	step := bw / float64(nsc)
	for i := range out {
		out[i] = -bw/2 + (float64(i)+0.5)*step
	}
	return out
}

// Clone returns a deep copy of the model (paths copied, arrays shared).
// The factored-kernel cache is not carried over: the clone rebuilds its own
// on first wideband evaluation, so clone and original never contend on the
// atomic cache slot.
func (m *Model) Clone() *Model {
	out := &Model{
		Band:  m.Band,
		Tx:    m.Tx,
		Rx:    m.Rx,
		Paths: append([]PathState(nil), m.Paths...),
	}
	if m.RxWeights != nil {
		out.RxWeights = m.RxWeights.Clone()
	}
	return out
}

// CopyStateFrom overwrites this model's channel state (band, arrays, UE
// weights, paths) with src's, reusing the receiver's existing Paths and
// RxWeights capacity — the steady-state companion of Clone for per-worker
// persistent models: clone once, then CopyStateFrom every slot without
// touching the allocator. The receiver's Reuse flag and cache backing are
// kept; src is not mutated and its cache is never shared. The cache is
// invalidated only when the in-place RxWeights copy changed element values
// (the one mutation the per-path snapshot check cannot see) — everything
// else the copy touches is snapshot-visible, so an unchanged-weights copy
// keeps loss-only cache refreshes (refreshLoss) available to the slot loop.
func (m *Model) CopyStateFrom(src *Model) {
	m.Band = src.Band
	m.Tx = src.Tx
	m.Rx = src.Rx
	if src.RxWeights == nil {
		m.RxWeights = nil
	} else {
		rxSame := len(m.RxWeights) == len(src.RxWeights)
		if rxSame {
			for i := range src.RxWeights {
				if m.RxWeights[i] != src.RxWeights[i] {
					rxSame = false
					break
				}
			}
		}
		if cap(m.RxWeights) < len(src.RxWeights) {
			m.RxWeights = make(cmx.Vector, len(src.RxWeights))
		}
		m.RxWeights = m.RxWeights[:len(src.RxWeights)]
		copy(m.RxWeights, src.RxWeights)
		if !rxSame {
			m.InvalidateCache()
		}
	}
	if cap(m.Paths) < len(src.Paths) {
		m.Paths = make([]PathState, len(src.Paths))
	}
	m.Paths = m.Paths[:len(src.Paths)]
	copy(m.Paths, src.Paths)
	m.stamp++
}

// StrongestPath returns the index of the path with the lowest total loss,
// or −1 if the model has no paths with finite loss.
func (m *Model) StrongestPath() int {
	best, idx := math.Inf(1), -1
	for i, p := range m.Paths {
		if l := p.LossDB + p.ExtraLossDB; l < best {
			best, idx = l, i
		}
	}
	return idx
}

// RelativeGain returns (δ, σ): the amplitude ratio and phase of path l
// relative to path ref, evaluated at the carrier (fOff = 0). This is the
// ground truth the two-probe estimator (§3.3) tries to recover.
func (m *Model) RelativeGain(l, ref int) (delta, sigma float64) {
	gl := m.PathGain(l, 0)
	gr := m.PathGain(ref, 0)
	if gr == 0 {
		return 0, 0
	}
	r := gl / gr
	return cmplx.Abs(r), cmplx.Phase(r)
}

// PathSpec describes one path of a scripted (hand-built) channel.
type PathSpec struct {
	AoDDeg    float64 // departure angle in degrees
	RelAttDB  float64 // power attenuation relative to the reference path
	PhaseRad  float64 // phase at the carrier relative to the reference path
	DelayNs   float64 // absolute delay in nanoseconds
	AbsLossDB float64 // absolute loss of the reference scale (applied to all)
}

// FromSpecs builds a deterministic scripted channel: the first spec is the
// reference path; each path's carrier phase is exactly PhaseRad relative to
// the reference (delays only shape the wideband response, not the carrier
// phase, which makes test assertions exact).
func FromSpecs(band env.Band, tx *antenna.ULA, refLossDB float64, specs []PathSpec) *Model {
	m := &Model{Band: band, Tx: tx}
	for _, s := range specs {
		delay := s.DelayNs * 1e-9
		// Cancel the carrier-phase contribution of the delay so the net
		// carrier phase equals PhaseRad.
		extra := s.PhaseRad + 2*math.Pi*band.CarrierHz*delay
		m.Paths = append(m.Paths, PathState{
			Path: env.Path{
				AoD:    s.AoDDeg * math.Pi / 180,
				Delay:  delay,
				LossDB: refLossDB + s.RelAttDB + s.AbsLossDB,
			},
			ExtraPhase: extra,
		})
	}
	return m
}

// ClusterParams controls the stochastic sparse-cluster channel generator.
type ClusterParams struct {
	MinPaths, MaxPaths int     // inclusive path-count range (≥1)
	LOSLossDB          float64 // loss of the direct path
	RelAttMeanDB       float64 // mean extra attenuation of reflected paths
	RelAttStdDB        float64 // spread of reflected-path attenuation
	MaxExcessDelayNs   float64 // reflected-path excess delay upper bound
	SectorDeg          float64 // angular sector width for AoDs (centered 0)
	MinSepDeg          float64 // minimum angular separation between paths
}

// DefaultClusterParams matches the paper's measured statistics: 2–3 viable
// paths, reflected paths 1–10 dB below the direct with ~5–7 dB median.
func DefaultClusterParams() ClusterParams {
	return ClusterParams{
		MinPaths:         2,
		MaxPaths:         3,
		LOSLossDB:        85,
		RelAttMeanDB:     6,
		RelAttStdDB:      2.5,
		MaxExcessDelayNs: 60,
		SectorDeg:        120,
	}
}

// Cluster draws a random sparse multipath channel. The direct path departs
// at a random angle in the sector; reflected paths get independent angles,
// attenuations (truncated at ≥1 dB), excess delays, and uniform phases.
func Cluster(rng *rand.Rand, band env.Band, tx *antenna.ULA, p ClusterParams) *Model {
	if p.MinPaths < 1 || p.MaxPaths < p.MinPaths {
		panic(fmt.Sprintf("channel: bad cluster path range [%d, %d]", p.MinPaths, p.MaxPaths))
	}
	n := p.MinPaths + rng.Intn(p.MaxPaths-p.MinPaths+1)
	sector := p.SectorDeg * math.Pi / 180
	minSep := p.MinSepDeg * math.Pi / 180
	var used []float64
	angle := func() float64 {
		for attempt := 0; ; attempt++ {
			a := (rng.Float64() - 0.5) * sector
			ok := true
			for _, u := range used {
				if math.Abs(a-u) < minSep {
					ok = false
					break
				}
			}
			if ok || attempt > 100 {
				used = append(used, a)
				return a
			}
		}
	}
	m := &Model{Band: band, Tx: tx}
	losDelay := 30e-9 + 100e-9*rng.Float64()
	m.Paths = append(m.Paths, PathState{Path: env.Path{
		AoD:    angle(),
		Delay:  losDelay,
		LossDB: p.LOSLossDB,
	}})
	for i := 1; i < n; i++ {
		att := p.RelAttMeanDB + p.RelAttStdDB*rng.NormFloat64()
		if att < 1 {
			att = 1
		}
		m.Paths = append(m.Paths, PathState{
			Path: env.Path{
				AoD:    angle(),
				Delay:  losDelay + rng.Float64()*p.MaxExcessDelayNs*1e-9,
				LossDB: p.LOSLossDB + att,
				Refl:   1,
			},
			ExtraPhase: rng.Float64() * 2 * math.Pi,
		})
	}
	return m
}
