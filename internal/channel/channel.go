// Package channel turns propagation path lists into the channel observables
// the rest of the stack consumes: per-antenna frequency-domain CSI, the
// effective scalar channel under a given beamforming vector, and wideband
// (multi-subcarrier) responses.
//
// The model follows the paper's geometric formulation (Eq. 25/26): with L
// paths, the channel at TX antenna n and baseband frequency offset f is
//
//	h(f)[n] = Σ_ℓ g_ℓ · e^{−j2π(fc+f)τ_ℓ} · a(φ_ℓ)[n] · r_ℓ(f)
//
// where g_ℓ is the real path amplitude, τ_ℓ the time of flight, a the TX
// steering vector, and r_ℓ the receive-side factor (1 for a quasi-omni UE,
// or the RX array response combined with the UE beam).
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/env"
)

// PathState is a propagation path plus its time-varying link conditions.
type PathState struct {
	env.Path
	ExtraLossDB float64 // additional loss (e.g. a blocker occluding the path)
	ExtraPhase  float64 // additional phase (radians), for scripted channels
}

// Model is a frozen snapshot of the channel between one gNB array and one
// UE. The zero value is unusable; construct with New or a helper.
type Model struct {
	Band env.Band
	Tx   *antenna.ULA
	Rx   *antenna.ULA // nil for a quasi-omni UE
	// RxWeights is the UE combining beam; ignored when Rx is nil. When Rx
	// is non-nil and RxWeights is nil, the UE is treated as quasi-omni
	// (single reference element).
	RxWeights cmx.Vector
	Paths     []PathState
}

// New returns a channel model over the given band and TX array with the
// supplied paths and an omni receiver.
func New(band env.Band, tx *antenna.ULA, paths []env.Path) *Model {
	ps := make([]PathState, len(paths))
	for i, p := range paths {
		ps[i] = PathState{Path: p}
	}
	return &Model{Band: band, Tx: tx, Paths: ps}
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if m.Tx == nil {
		return fmt.Errorf("channel: nil TX array")
	}
	if err := m.Tx.Validate(); err != nil {
		return err
	}
	if m.Rx != nil {
		if err := m.Rx.Validate(); err != nil {
			return err
		}
		if m.RxWeights != nil && len(m.RxWeights) != m.Rx.N {
			return fmt.Errorf("channel: RX weights length %d != %d elements", len(m.RxWeights), m.Rx.N)
		}
	}
	if m.Band.CarrierHz <= 0 {
		return fmt.Errorf("channel: non-positive carrier %g", m.Band.CarrierHz)
	}
	return nil
}

// PathGain returns the scalar complex gain of path index ℓ at baseband
// frequency offset fOff (Hz from the carrier), including the receive-side
// factor.
func (m *Model) PathGain(l int, fOff float64) complex128 {
	p := m.Paths[l]
	amp := math.Pow(10, -(p.LossDB+p.ExtraLossDB)/20)
	phase := -2*math.Pi*(m.Band.CarrierHz+fOff)*p.Delay + p.ExtraPhase
	if p.PhasePi {
		phase += math.Pi
	}
	g := cmplx.Rect(amp, phase)
	return g * m.rxFactor(p.AoA)
}

func (m *Model) rxFactor(aoa float64) complex128 {
	if m.Rx == nil || m.RxWeights == nil {
		return 1
	}
	return m.Rx.Steering(aoa).Dot(m.RxWeights)
}

// PerAntennaCSI returns h(fOff)[n] for each TX antenna n — the quantity the
// oracle beamformer needs and that real analog arrays cannot observe
// directly (one RF chain).
func (m *Model) PerAntennaCSI(fOff float64) cmx.Vector {
	h := make(cmx.Vector, m.Tx.N)
	for l := range m.Paths {
		g := m.PathGain(l, fOff)
		if g == 0 {
			continue
		}
		a := m.Tx.Steering(m.Paths[l].AoD)
		h.AddScaled(g, a)
	}
	return h
}

// Effective returns the scalar effective channel h(fOff)ᵀw under TX beam w.
// This is what a single-RF-chain receiver observes on a pilot.
func (m *Model) Effective(w cmx.Vector, fOff float64) complex128 {
	var y complex128
	for l := range m.Paths {
		g := m.PathGain(l, fOff)
		if g == 0 {
			continue
		}
		y += g * m.Tx.Steering(m.Paths[l].AoD).Dot(w)
	}
	return y
}

// EffectiveWideband evaluates Effective at each frequency offset.
func (m *Model) EffectiveWideband(w cmx.Vector, fOffs []float64) cmx.Vector {
	out := make(cmx.Vector, len(fOffs))
	for i, f := range fOffs {
		out[i] = m.Effective(w, f)
	}
	return out
}

// SubcarrierOffsets returns nsc baseband frequency offsets uniformly
// spanning bandwidth bw, centered on the carrier.
func SubcarrierOffsets(bw float64, nsc int) []float64 {
	out := make([]float64, nsc)
	if nsc == 1 {
		return out
	}
	step := bw / float64(nsc)
	for i := range out {
		out[i] = -bw/2 + (float64(i)+0.5)*step
	}
	return out
}

// Clone returns a deep copy of the model (paths copied, arrays shared).
func (m *Model) Clone() *Model {
	out := *m
	out.Paths = append([]PathState(nil), m.Paths...)
	if m.RxWeights != nil {
		out.RxWeights = m.RxWeights.Clone()
	}
	return &out
}

// StrongestPath returns the index of the path with the lowest total loss,
// or −1 if the model has no paths with finite loss.
func (m *Model) StrongestPath() int {
	best, idx := math.Inf(1), -1
	for i, p := range m.Paths {
		if l := p.LossDB + p.ExtraLossDB; l < best {
			best, idx = l, i
		}
	}
	return idx
}

// RelativeGain returns (δ, σ): the amplitude ratio and phase of path l
// relative to path ref, evaluated at the carrier (fOff = 0). This is the
// ground truth the two-probe estimator (§3.3) tries to recover.
func (m *Model) RelativeGain(l, ref int) (delta, sigma float64) {
	gl := m.PathGain(l, 0)
	gr := m.PathGain(ref, 0)
	if gr == 0 {
		return 0, 0
	}
	r := gl / gr
	return cmplx.Abs(r), cmplx.Phase(r)
}

// PathSpec describes one path of a scripted (hand-built) channel.
type PathSpec struct {
	AoDDeg    float64 // departure angle in degrees
	RelAttDB  float64 // power attenuation relative to the reference path
	PhaseRad  float64 // phase at the carrier relative to the reference path
	DelayNs   float64 // absolute delay in nanoseconds
	AbsLossDB float64 // absolute loss of the reference scale (applied to all)
}

// FromSpecs builds a deterministic scripted channel: the first spec is the
// reference path; each path's carrier phase is exactly PhaseRad relative to
// the reference (delays only shape the wideband response, not the carrier
// phase, which makes test assertions exact).
func FromSpecs(band env.Band, tx *antenna.ULA, refLossDB float64, specs []PathSpec) *Model {
	m := &Model{Band: band, Tx: tx}
	for _, s := range specs {
		delay := s.DelayNs * 1e-9
		// Cancel the carrier-phase contribution of the delay so the net
		// carrier phase equals PhaseRad.
		extra := s.PhaseRad + 2*math.Pi*band.CarrierHz*delay
		m.Paths = append(m.Paths, PathState{
			Path: env.Path{
				AoD:    s.AoDDeg * math.Pi / 180,
				Delay:  delay,
				LossDB: refLossDB + s.RelAttDB + s.AbsLossDB,
			},
			ExtraPhase: extra,
		})
	}
	return m
}

// ClusterParams controls the stochastic sparse-cluster channel generator.
type ClusterParams struct {
	MinPaths, MaxPaths int     // inclusive path-count range (≥1)
	LOSLossDB          float64 // loss of the direct path
	RelAttMeanDB       float64 // mean extra attenuation of reflected paths
	RelAttStdDB        float64 // spread of reflected-path attenuation
	MaxExcessDelayNs   float64 // reflected-path excess delay upper bound
	SectorDeg          float64 // angular sector width for AoDs (centered 0)
	MinSepDeg          float64 // minimum angular separation between paths
}

// DefaultClusterParams matches the paper's measured statistics: 2–3 viable
// paths, reflected paths 1–10 dB below the direct with ~5–7 dB median.
func DefaultClusterParams() ClusterParams {
	return ClusterParams{
		MinPaths:         2,
		MaxPaths:         3,
		LOSLossDB:        85,
		RelAttMeanDB:     6,
		RelAttStdDB:      2.5,
		MaxExcessDelayNs: 60,
		SectorDeg:        120,
	}
}

// Cluster draws a random sparse multipath channel. The direct path departs
// at a random angle in the sector; reflected paths get independent angles,
// attenuations (truncated at ≥1 dB), excess delays, and uniform phases.
func Cluster(rng *rand.Rand, band env.Band, tx *antenna.ULA, p ClusterParams) *Model {
	if p.MinPaths < 1 || p.MaxPaths < p.MinPaths {
		panic(fmt.Sprintf("channel: bad cluster path range [%d, %d]", p.MinPaths, p.MaxPaths))
	}
	n := p.MinPaths + rng.Intn(p.MaxPaths-p.MinPaths+1)
	sector := p.SectorDeg * math.Pi / 180
	minSep := p.MinSepDeg * math.Pi / 180
	var used []float64
	angle := func() float64 {
		for attempt := 0; ; attempt++ {
			a := (rng.Float64() - 0.5) * sector
			ok := true
			for _, u := range used {
				if math.Abs(a-u) < minSep {
					ok = false
					break
				}
			}
			if ok || attempt > 100 {
				used = append(used, a)
				return a
			}
		}
	}
	m := &Model{Band: band, Tx: tx}
	losDelay := 30e-9 + 100e-9*rng.Float64()
	m.Paths = append(m.Paths, PathState{Path: env.Path{
		AoD:    angle(),
		Delay:  losDelay,
		LossDB: p.LOSLossDB,
	}})
	for i := 1; i < n; i++ {
		att := p.RelAttMeanDB + p.RelAttStdDB*rng.NormFloat64()
		if att < 1 {
			att = 1
		}
		m.Paths = append(m.Paths, PathState{
			Path: env.Path{
				AoD:    angle(),
				Delay:  losDelay + rng.Float64()*p.MaxExcessDelayNs*1e-9,
				LossDB: p.LOSLossDB + att,
				Refl:   1,
			},
			ExtraPhase: rng.Float64() * 2 * math.Pi,
		})
	}
	return m
}
