package channel

import (
	"fmt"

	"mmreliable/internal/cmx"
	"mmreliable/internal/scratch"
)

// WidebandBatch evaluates the effective wideband channel for many
// (model, beam) pairs over one shared subcarrier grid in a single pass —
// the frame-barrier gather the station and cluster coordinators run so a
// whole frame's worth of UEs goes through the planar DSP kernels together
// instead of interleaving per-UE evaluations with bookkeeping.
//
// Ownership rules (see DESIGN.md "Planar DSP backend"):
//
//   - The batch retains the (model, beam) registrations across frames; Add
//     grows the registration slices only until the high-water mark, so the
//     steady state stays allocation-free.
//   - Eval checks the planar response slab out of the caller's
//     scratch.Workspace: rows are valid until the caller's enclosing
//     Release/Reset, exactly like any other workspace checkout. Re-Eval or
//     Reset invalidates previous rows.
//   - Like the Reuse models it evaluates, a WidebandBatch is
//     single-goroutine. Frame-barrier use (coordinator only, workers idle)
//     satisfies this by construction and is what keeps output byte-identical
//     at any worker count.
type WidebandBatch struct {
	fOffs   []float64
	models  []*Model
	weights []cmx.Vector
	re, im  []float64 // response slab; row i at [i·nsc, (i+1)·nsc)
	evaled  bool
}

// Reset clears the registrations and retargets the batch at a subcarrier
// grid. fOffs is retained by reference and only read.
func (b *WidebandBatch) Reset(fOffs []float64) {
	b.fOffs = fOffs
	b.models = b.models[:0]
	b.weights = b.weights[:0]
	b.re, b.im = nil, nil
	b.evaled = false
}

// Add registers one (model, beam) pair and returns its row index. The model
// and weights are retained by reference until the next Reset and only read.
func (b *WidebandBatch) Add(m *Model, w cmx.Vector) int {
	b.models = append(b.models, m)
	b.weights = append(b.weights, w)
	b.evaled = false
	return len(b.models) - 1
}

// Len returns the number of registered pairs.
func (b *WidebandBatch) Len() int { return len(b.models) }

// Eval computes every registered pair's wideband response into a planar
// slab checked out of ws. Rows die at the caller's Release/Reset of ws.
func (b *WidebandBatch) Eval(ws *scratch.Workspace) {
	nsc := len(b.fOffs)
	total := nsc * len(b.models)
	b.re = ws.Float(total)
	b.im = ws.Float(total)
	for i, m := range b.models {
		m.EffectiveWidebandSplitInto(b.weights[i], b.fOffs, b.re[i*nsc:(i+1)*nsc], b.im[i*nsc:(i+1)*nsc])
	}
	b.evaled = true
}

// Row returns the planar wideband response of registration i, valid until
// the workspace release that covers Eval's checkout.
func (b *WidebandBatch) Row(i int) (re, im []float64) {
	if !b.evaled {
		panic("channel: WidebandBatch.Row before Eval")
	}
	nsc := len(b.fOffs)
	if i < 0 || i >= len(b.models) {
		panic(fmt.Sprintf("channel: WidebandBatch row %d out of %d", i, len(b.models)))
	}
	return b.re[i*nsc : (i+1)*nsc], b.im[i*nsc : (i+1)*nsc]
}
