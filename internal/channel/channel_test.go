package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
)

func testArray() *antenna.ULA { return antenna.NewULA(8, 28e9) }

func twoPath(relAttDB, phaseRad float64) *Model {
	return FromSpecs(env.Band28GHz(), testArray(), 80, []PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 30, RelAttDB: relAttDB, PhaseRad: phaseRad, DelayNs: 10},
	})
}

func TestFromSpecsRelativeGain(t *testing.T) {
	for _, tc := range []struct {
		att   float64
		phase float64
	}{
		{0, 0}, {3, -0.7}, {6, 2.5}, {10, math.Pi / 2},
	} {
		m := twoPath(tc.att, tc.phase)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		delta, sigma := m.RelativeGain(1, 0)
		wantDelta := math.Pow(10, -tc.att/20)
		if math.Abs(delta-wantDelta) > 1e-9 {
			t.Fatalf("att %g: δ = %g want %g", tc.att, delta, wantDelta)
		}
		if math.Abs(dsp.WrapPhase(sigma-tc.phase)) > 1e-9 {
			t.Fatalf("phase %g: σ = %g", tc.phase, sigma)
		}
	}
}

func TestPerAntennaCSIMatchesAnalyticForm(t *testing.T) {
	// For a single path at φ, h[n] must equal g·a(φ)[n].
	m := FromSpecs(env.Band28GHz(), testArray(), 80, []PathSpec{{AoDDeg: 20}})
	h := m.PerAntennaCSI(0)
	g := m.PathGain(0, 0)
	a := m.Tx.Steering(dsp.Rad(20))
	for n := range h {
		if cmplx.Abs(h[n]-g*a[n]) > 1e-12 {
			t.Fatalf("antenna %d mismatch", n)
		}
	}
}

func TestEffectiveMatchesPerAntennaCSI(t *testing.T) {
	// h(f)ᵀw computed directly must equal the per-antenna CSI dotted with w.
	rng := rand.New(rand.NewSource(5))
	m := Cluster(rng, env.Band28GHz(), testArray(), DefaultClusterParams())
	w := make(cmx.Vector, m.Tx.N)
	for i := range w {
		w[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	w.Normalize()
	for _, f := range []float64{0, -200e6, 55e6} {
		direct := m.Effective(w, f)
		viaCSI := m.PerAntennaCSI(f).Dot(w)
		if cmplx.Abs(direct-viaCSI) > 1e-12 {
			t.Fatalf("f=%g: %v vs %v", f, direct, viaCSI)
		}
	}
}

func TestMRTBeatsEverythingOnPerAntennaCSI(t *testing.T) {
	// Sanity: conjugate beamforming on the true CSI maximizes |h·w|.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		m := Cluster(rng, env.Band28GHz(), testArray(), DefaultClusterParams())
		h := m.PerAntennaCSI(0)
		wopt := h.Conj().Normalize()
		best := cmplx.Abs(m.Effective(wopt, 0))
		wrand := make(cmx.Vector, m.Tx.N)
		for i := range wrand {
			wrand[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		wrand.Normalize()
		if got := cmplx.Abs(m.Effective(wrand, 0)); got > best+1e-12 {
			t.Fatalf("trial %d: random beam beat MRT", trial)
		}
	}
}

func TestTwoEqualPathsGive3dB(t *testing.T) {
	// The paper's headline example: two equal paths, constructive combining
	// doubles the received power vs a single beam on one path.
	m := twoPath(0, 0)
	single := m.Tx.SingleBeam(0)
	h := m.PerAntennaCSI(0)
	opt := h.Conj().Normalize()
	pSingle := cmplx.Abs(m.Effective(single, 0))
	pOpt := cmplx.Abs(m.Effective(opt, 0))
	gainDB := 20 * math.Log10(pOpt/pSingle)
	// Single beam at 0° also catches a sliver of the 30° path, so the gain
	// is close to but not exactly 3 dB.
	if gainDB < 2.4 || gainDB > 3.6 {
		t.Fatalf("two-equal-path optimal gain %g dB, want ≈3", gainDB)
	}
}

func TestBlockageExtraLoss(t *testing.T) {
	m := twoPath(3, 0)
	before := cmplx.Abs(m.PathGain(1, 0))
	m.Paths[1].ExtraLossDB = 20
	after := cmplx.Abs(m.PathGain(1, 0))
	if math.Abs(20*math.Log10(before/after)-20) > 1e-9 {
		t.Fatalf("extra loss not applied: %g dB", 20*math.Log10(before/after))
	}
	// Infinite loss kills the path.
	m.Paths[1].ExtraLossDB = math.Inf(1)
	if g := m.PathGain(1, 0); g != 0 {
		t.Fatalf("infinite loss should zero the gain, got %v", g)
	}
}

func TestWidebandFrequencySelectivity(t *testing.T) {
	// Two paths with a delay gap produce frequency-selective fading; a
	// single path is flat.
	flat := FromSpecs(env.Band28GHz(), testArray(), 80, []PathSpec{{AoDDeg: 0}})
	sel := FromSpecs(env.Band28GHz(), testArray(), 80, []PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 30, PhaseRad: 0, DelayNs: 10},
	})
	offs := SubcarrierOffsets(400e6, 64)
	w := flat.Tx.SingleBeam(0)
	flatResp := flat.EffectiveWideband(w, offs).Abs()
	// Multi-beam weights exciting both paths.
	h := sel.PerAntennaCSI(0)
	wmb := h.Conj().Normalize()
	selResp := sel.EffectiveWideband(wmb, offs).Abs()

	flatVar := spread(flatResp)
	selVar := spread(selResp)
	if flatVar > 1e-9 {
		t.Fatalf("single path should be flat, spread %g", flatVar)
	}
	if selVar < 10*flatVar+1e-12 {
		t.Fatalf("two-path response suspiciously flat: %g", selVar)
	}
}

func spread(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

func TestSubcarrierOffsets(t *testing.T) {
	offs := SubcarrierOffsets(400e6, 4)
	if len(offs) != 4 {
		t.Fatalf("len %d", len(offs))
	}
	if offs[0] != -150e6 || offs[3] != 150e6 {
		t.Fatalf("offsets %v", offs)
	}
	// Symmetric around 0.
	if offs[0] != -offs[3] || offs[1] != -offs[2] {
		t.Fatalf("offsets not symmetric: %v", offs)
	}
	if got := SubcarrierOffsets(400e6, 1); got[0] != 0 {
		t.Fatalf("single subcarrier should sit at center: %v", got)
	}
}

func TestRxArrayFactor(t *testing.T) {
	// With an RX array and matched combining toward the path's AoA, the
	// path gain grows by √N_rx in amplitude.
	m := FromSpecs(env.Band28GHz(), testArray(), 80, []PathSpec{{AoDDeg: 10}})
	m.Paths[0].AoA = dsp.Rad(-25)
	omni := cmplx.Abs(m.PathGain(0, 0))

	rx := antenna.NewULA(4, 28e9)
	m.Rx = rx
	m.RxWeights = rx.SingleBeam(dsp.Rad(-25))
	combined := cmplx.Abs(m.PathGain(0, 0))
	if math.Abs(combined/omni-math.Sqrt(4)) > 1e-9 {
		t.Fatalf("RX combining gain %g want %g", combined/omni, math.Sqrt(4))
	}
	// Rx set but no weights → quasi-omni.
	m.RxWeights = nil
	if got := cmplx.Abs(m.PathGain(0, 0)); math.Abs(got-omni) > 1e-12 {
		t.Fatalf("nil RX weights should be omni: %g vs %g", got, omni)
	}
}

func TestValidate(t *testing.T) {
	m := &Model{}
	if err := m.Validate(); err == nil {
		t.Fatal("nil TX should fail")
	}
	m = twoPath(3, 0)
	m.Band.CarrierHz = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero carrier should fail")
	}
	m = twoPath(3, 0)
	m.Rx = antenna.NewULA(4, 28e9)
	m.RxWeights = make(cmx.Vector, 3)
	if err := m.Validate(); err == nil {
		t.Fatal("mismatched RX weights should fail")
	}
}

func TestCloneIsolation(t *testing.T) {
	m := twoPath(3, 0)
	c := m.Clone()
	c.Paths[0].ExtraLossDB = 99
	if m.Paths[0].ExtraLossDB != 0 {
		t.Fatal("clone shares path state")
	}
}

func TestStrongestPath(t *testing.T) {
	m := twoPath(3, 0)
	if got := m.StrongestPath(); got != 0 {
		t.Fatalf("strongest = %d", got)
	}
	m.Paths[0].ExtraLossDB = 30
	if got := m.StrongestPath(); got != 1 {
		t.Fatalf("strongest after blockage = %d", got)
	}
	empty := &Model{Tx: testArray(), Band: env.Band28GHz()}
	if got := empty.StrongestPath(); got != -1 {
		t.Fatalf("empty strongest = %d", got)
	}
}

func TestClusterStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := DefaultClusterParams()
	var relAtts []float64
	for trial := 0; trial < 500; trial++ {
		m := Cluster(rng, env.Band28GHz(), testArray(), p)
		if len(m.Paths) < p.MinPaths || len(m.Paths) > p.MaxPaths {
			t.Fatalf("path count %d outside [%d, %d]", len(m.Paths), p.MinPaths, p.MaxPaths)
		}
		if m.Paths[0].Refl != 0 {
			t.Fatal("first path must be LOS")
		}
		for i, ps := range m.Paths {
			if math.Abs(ps.AoD) > dsp.Rad(p.SectorDeg)/2+1e-12 {
				t.Fatalf("AoD %g outside sector", dsp.Deg(ps.AoD))
			}
			if i > 0 {
				rel := ps.LossDB - m.Paths[0].LossDB
				if rel < 1 {
					t.Fatalf("reflected path stronger than allowed: %g", rel)
				}
				relAtts = append(relAtts, rel)
				if ps.Delay < m.Paths[0].Delay {
					t.Fatal("reflected delay shorter than LOS")
				}
			}
		}
	}
	// Mean relative attenuation should track the configured mean.
	var sum float64
	for _, r := range relAtts {
		sum += r
	}
	mean := sum / float64(len(relAtts))
	if math.Abs(mean-p.RelAttMeanDB) > 1.0 {
		t.Fatalf("mean relative attenuation %g, want ≈%g", mean, p.RelAttMeanDB)
	}
}

func TestClusterBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cluster(rand.New(rand.NewSource(1)), env.Band28GHz(), testArray(),
		ClusterParams{MinPaths: 0, MaxPaths: 0})
}

func TestTracedChannelEndToEnd(t *testing.T) {
	// Paths from the ray tracer must flow into a usable channel model.
	e := env.ConferenceRoom(env.Band28GHz())
	gnb := env.GNBPose(true)
	ue := env.Pose{Pos: env.Vec2{X: 6, Y: 3.5}, Facing: math.Pi}
	paths := e.Trace(gnb, ue)
	if len(paths) < 2 {
		t.Fatalf("need multipath, got %d", len(paths))
	}
	m := New(env.Band28GHz(), testArray(), paths)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	w := m.Tx.SingleBeam(paths[0].AoD)
	y := cmplx.Abs(m.Effective(w, 0))
	if y <= 0 {
		t.Fatal("zero effective channel")
	}
	// Beamforming toward the strongest path beats an arbitrary off-path beam.
	wOff := m.Tx.SingleBeam(paths[0].AoD + dsp.Rad(25))
	if cmplx.Abs(m.Effective(wOff, 0)) >= y {
		t.Fatal("off-path beam should be weaker")
	}
}
