package channel

import (
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/scratch"
)

// withKernel runs f once per registered DSP kernel, restoring the active
// kernel afterwards.
func withKernel(t *testing.T, f func(t *testing.T, k dsp.Kernel)) {
	t.Helper()
	for _, k := range dsp.Kernels() {
		t.Run(k.Name(), func(t *testing.T) {
			prev := dsp.SetKernel(k)
			defer dsp.SetKernel(prev)
			f(t, k)
		})
	}
}

// splitToVec combines planar re/im into a fresh complex vector.
func splitToVec(re, im []float64) cmx.Vector {
	out := make(cmx.Vector, len(re))
	cmx.Combine(re, im, out)
	return out
}

// TestEffectiveWidebandSplitEquivalence pins the planar evaluation against
// the direct per-subcarrier form at ≤1e-12 under BOTH kernels, across the
// full factored case set (CFO/SFO live in the sounder, not the channel; the
// channel-side axes are blockage, RxWeights, non-uniform grids, dead and
// zero-delay paths).
func TestEffectiveWidebandSplitEquivalence(t *testing.T) {
	withKernel(t, func(t *testing.T, _ dsp.Kernel) {
		for _, tc := range factoredCases(t) {
			t.Run(tc.name, func(t *testing.T) {
				re := make([]float64, len(tc.fOffs))
				im := make([]float64, len(tc.fOffs))
				for i := range re {
					re[i], im[i] = 99, -99 // stale content must be overwritten
				}
				m := tc.m.Clone() // cold cache under this kernel
				m.EffectiveWidebandSplitInto(tc.w, tc.fOffs, re, im)
				want := directWideband(tc.m.Clone(), tc.w, tc.fOffs)
				if err := maxRelErr(splitToVec(re, im), want); err > 1e-12 {
					t.Fatalf("planar vs direct relative error %.3g > 1e-12", err)
				}
			})
		}
	})
}

// TestSplitMatchesInterleavedUnderReference pins the bit-parity contract:
// under the reference kernel, EffectiveWidebandSplitInto is the same
// arithmetic as the legacy interleaved EffectiveWidebandInto, so the two
// must agree bit-for-bit — the guarantee that lets planar consumers and
// interleaved consumers coexist without a determinism seam.
func TestSplitMatchesInterleavedUnderReference(t *testing.T) {
	prev := dsp.SetKernel(dsp.Reference)
	defer dsp.SetKernel(prev)
	for _, tc := range factoredCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m.Clone()
			re := make([]float64, len(tc.fOffs))
			im := make([]float64, len(tc.fOffs))
			m.EffectiveWidebandSplitInto(tc.w, tc.fOffs, re, im)
			want := m.EffectiveWidebandInto(tc.w, tc.fOffs, make(cmx.Vector, len(tc.fOffs)))
			for k := range want {
				if re[k] != real(want[k]) || im[k] != imag(want[k]) {
					t.Fatalf("subcarrier %d: split (%g,%g) != interleaved %v",
						k, re[k], im[k], want[k])
				}
			}
		})
	}
}

// TestSubcarrierOffsetsEdgeCases pins the grid builder's degenerate inputs:
// non-positive counts yield nil (not a panic), a single subcarrier sits at
// band center, and the exact-reseed boundaries (nsc a multiple of the
// 64-subcarrier phasor re-seed period) evaluate correctly under both
// kernels — the case where the recurrence's last block ends exactly on a
// re-seed with no tail.
func TestSubcarrierOffsetsEdgeCases(t *testing.T) {
	if got := SubcarrierOffsets(400e6, 0); got != nil {
		t.Fatalf("nsc=0: got %v want nil", got)
	}
	if got := SubcarrierOffsets(400e6, -3); got != nil {
		t.Fatalf("nsc=-3: got %v want nil", got)
	}
	one := SubcarrierOffsets(400e6, 1)
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("nsc=1: got %v want [0]", one)
	}
	// Grid spacing and symmetry on a regular count.
	g := SubcarrierOffsets(400e6, 64)
	if len(g) != 64 {
		t.Fatalf("nsc=64: len %d", len(g))
	}
	if math.Abs(g[0]+g[63]) > 1e-6 || math.Abs((g[1]-g[0])-400e6/64) > 1e-6 {
		t.Fatalf("nsc=64 grid malformed: first %g last %g step %g", g[0], g[63], g[1]-g[0])
	}

	u := testArray()
	rng := rand.New(rand.NewSource(5))
	m := Cluster(rng, env.Band28GHz(), u, DefaultClusterParams())
	w := u.SingleBeam(0.12)
	withKernel(t, func(t *testing.T, _ dsp.Kernel) {
		// nsc around and exactly on the re-seed period: 63 (tail only),
		// 64/128/192 (exact multiples), 65/129 (one past). The planar path
		// is pinned against the interleaved factored form — the same phase
		// decomposition, so the 1e-12 bound isolates the recurrence/re-seed
		// behavior (direct-vs-factored is pinned separately and carries
		// carrier-phase quantization of its own on long-delay draws).
		for _, nsc := range []int{1, 2, 63, 64, 65, 128, 129, 192} {
			fOffs := SubcarrierOffsets(400e6, nsc)
			mm := m.Clone()
			re := make([]float64, nsc)
			im := make([]float64, nsc)
			mm.EffectiveWidebandSplitInto(w, fOffs, re, im)
			want := mm.EffectiveWidebandInto(w, fOffs, make(cmx.Vector, nsc))
			if err := maxRelErr(splitToVec(re, im), want); err > 1e-12 {
				t.Fatalf("nsc=%d: planar vs interleaved rel err %.3g > 1e-12", nsc, err)
			}
		}
	})
}

// TestRefreshLossPath pins the partial cache revalidation: when only
// ExtraLossDB moves between evaluations (the per-slot fading/blockage
// mutation), the loss-only refresh must produce results bit-identical to a
// full rebuild on a fresh model, and must not allocate once warm.
func TestRefreshLossPath(t *testing.T) {
	u := testArray()
	fOffs := SubcarrierOffsets(400e6, 64)
	w := u.SingleBeam(0.1)
	build := func(reuse bool) *Model {
		m := Cluster(rand.New(rand.NewSource(13)), env.Band28GHz(), u, DefaultClusterParams())
		m.Reuse = reuse
		return m
	}
	mr := build(true)
	dst := make(cmx.Vector, len(fOffs))
	ref := make(cmx.Vector, len(fOffs))
	mr.EffectiveWidebandInto(w, fOffs, dst) // build the cache once
	for i := 0; i < 6; i++ {
		for l := range mr.Paths {
			mr.Paths[l].ExtraLossDB = float64((i+l)%5) * 2.5 // loss only
		}
		mr.EffectiveWidebandInto(w, fOffs, dst)
		mf := build(false)
		for l := range mf.Paths {
			mf.Paths[l].ExtraLossDB = mr.Paths[l].ExtraLossDB
		}
		mf.EffectiveWidebandInto(w, fOffs, ref)
		for k := range dst {
			if dst[k] != ref[k] {
				t.Fatalf("iter %d subcarrier %d: refresh %v vs rebuild %v", i, k, dst[k], ref[k])
			}
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		i++
		mr.Paths[0].ExtraLossDB = float64(i%7) * 2
		mr.EffectiveWidebandInto(w, fOffs, dst)
	})
	if allocs != 0 {
		t.Fatalf("loss-only refresh allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCopyStateFromInvalidation pins the RxWeights-aware invalidation:
// copies that keep the weight values must reuse the cache (zero allocs,
// covered in TestCopyStateFrom) yet still track every snapshot-visible
// mutation; copies that change weight values must invalidate.
func TestCopyStateFromInvalidation(t *testing.T) {
	u := testArray()
	fOffs := SubcarrierOffsets(400e6, 64)
	w := u.SingleBeam(0.1)
	src := Cluster(rand.New(rand.NewSource(21)), env.Band28GHz(), u, DefaultClusterParams())
	src.Rx = antenna.NewULA(4, 28e9)
	src.RxWeights = src.Rx.SingleBeam(0.2)

	dstM := &Model{Reuse: true}
	dstM.CopyStateFrom(src)
	got := make(cmx.Vector, len(fOffs))
	want := make(cmx.Vector, len(fOffs))
	check := func(name string) {
		t.Helper()
		dstM.CopyStateFrom(src)
		dstM.EffectiveWidebandInto(w, fOffs, got)
		src.Clone().EffectiveWidebandInto(w, fOffs, want)
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("%s: subcarrier %d copy %v vs fresh %v", name, k, got[k], want[k])
			}
		}
	}
	check("initial")
	src.Paths[0].ExtraLossDB += 12
	check("loss mutation")
	src.Paths[1].ExtraPhase += 0.9
	check("phase mutation")
	src.RxWeights = src.Rx.SingleBeam(-0.15) // new values: must invalidate
	check("rx-weights value change")
	same := src.Rx.SingleBeam(-0.15) // equal values, different backing array
	src.RxWeights = same
	check("rx-weights equal-value rebind")
}

// TestWidebandBatch pins the batch evaluator: rows match the per-model
// planar evaluation exactly (same kernel, same arithmetic), Row panics
// before Eval, and re-Reset + re-Add reuses registrations without leaking
// rows across frames.
func TestWidebandBatch(t *testing.T) {
	u := testArray()
	fOffs := SubcarrierOffsets(400e6, 64)
	rng := rand.New(rand.NewSource(17))
	models := []*Model{
		Cluster(rng, env.Band28GHz(), u, DefaultClusterParams()),
		Cluster(rng, env.Band28GHz(), u, DefaultClusterParams()),
		twoPath(3, -0.4),
	}
	weights := []cmx.Vector{u.SingleBeam(0.1), u.SingleBeam(-0.3), u.SingleBeam(0)}

	var b WidebandBatch
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Row before Eval did not panic")
			}
		}()
		b.Reset(fOffs)
		b.Add(models[0], weights[0])
		b.Row(0)
	}()

	ws := scratch.New()
	for frame := 0; frame < 3; frame++ {
		b.Reset(fOffs)
		for i, m := range models {
			if got := b.Add(m, weights[i]); got != i {
				t.Fatalf("Add returned row %d want %d", got, i)
			}
		}
		mk := ws.Mark()
		b.Eval(ws)
		for i, m := range models {
			re, im := b.Row(i)
			wantRe := make([]float64, len(fOffs))
			wantIm := make([]float64, len(fOffs))
			m.EffectiveWidebandSplitInto(weights[i], fOffs, wantRe, wantIm)
			for k := range wantRe {
				if re[k] != wantRe[k] || im[k] != wantIm[k] {
					t.Fatalf("frame %d row %d subcarrier %d: batch (%g,%g) vs direct (%g,%g)",
						frame, i, k, re[k], im[k], wantRe[k], wantIm[k])
				}
			}
		}
		ws.Release(mk)
		// Mutate between frames so each Eval sees fresh state.
		models[0].Paths[0].ExtraLossDB = float64(frame+1) * 4
	}

	// Steady state (registrations at high-water, workspace warm): no allocs.
	allocs := testing.AllocsPerRun(50, func() {
		b.Reset(fOffs)
		for i, m := range models {
			b.Add(m, weights[i])
		}
		mk := ws.Mark()
		b.Eval(ws)
		_, _ = b.Row(2)
		ws.Release(mk)
	})
	if allocs != 0 {
		t.Fatalf("batch steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkEffectiveWidebandBatch measures the batched planar hot path: 8
// models × 64 subcarriers per Eval, the frame-barrier shape the station
// runs.
func BenchmarkEffectiveWidebandBatch(b *testing.B) {
	u := testArray()
	fOffs := SubcarrierOffsets(400e6, 64)
	rng := rand.New(rand.NewSource(23))
	const n = 8
	models := make([]*Model, n)
	weights := make([]cmx.Vector, n)
	for i := range models {
		models[i] = Cluster(rng, env.Band28GHz(), u, DefaultClusterParams())
		models[i].Reuse = true
		weights[i] = u.SingleBeam(0.05 * float64(i))
	}
	ws := scratch.New()
	var batch WidebandBatch
	batch.Reset(fOffs)
	for i := range models {
		batch.Add(models[i], weights[i])
	}
	mk := ws.Mark()
	batch.Eval(ws) // warm caches and workspace
	ws.Release(mk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset(fOffs)
		for k := range models {
			batch.Add(models[k], weights[k])
		}
		m := ws.Mark()
		batch.Eval(ws)
		ws.Release(m)
	}
}
