package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"mmreliable/internal/cmx"
	"mmreliable/internal/env"
)

// Property: the effective channel is invariant in magnitude under a global
// phase rotation of the weights (TRP and beam shape unchanged).
func TestEffectiveGlobalPhaseInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := Cluster(rng, env.Band28GHz(), testArray(), DefaultClusterParams())
	f := func(phaseRaw float64) bool {
		phase := math.Mod(phaseRaw, 2*math.Pi)
		if math.IsNaN(phase) || math.IsInf(phase, 0) {
			return true
		}
		w := m.Tx.SingleBeam(0.2)
		rot := w.Scaled(cmplx.Exp(complex(0, phase)))
		a := cmplx.Abs(m.Effective(w, 0))
		b := cmplx.Abs(m.Effective(rot, 0))
		return math.Abs(a-b) < 1e-12*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Effective is linear in the weights.
func TestEffectiveLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := Cluster(rng, env.Band28GHz(), testArray(), DefaultClusterParams())
	w1 := m.Tx.SingleBeam(0.1)
	w2 := m.Tx.SingleBeam(-0.4)
	for trial := 0; trial < 50; trial++ {
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		b := complex(rng.NormFloat64(), rng.NormFloat64())
		comb := w1.Scaled(a).Add(w2.Scaled(b))
		lhs := m.Effective(comb, 0)
		rhs := a*m.Effective(w1, 0) + b*m.Effective(w2, 0)
		if cmplx.Abs(lhs-rhs) > 1e-12*(1+cmplx.Abs(lhs)) {
			t.Fatalf("linearity broken: %v vs %v", lhs, rhs)
		}
	}
}

// Property: per-antenna CSI energy bounds the effective channel by
// Cauchy-Schwarz: |hᵀw| ≤ ‖h‖·‖w‖.
func TestEffectiveCauchySchwarzBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		m := Cluster(rng, env.Band28GHz(), testArray(), DefaultClusterParams())
		h := m.PerAntennaCSI(0)
		w := make(cmx.Vector, m.Tx.N)
		for i := range w {
			w[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		w.Normalize()
		if got := cmplx.Abs(m.Effective(w, 0)); got > h.Norm()+1e-12 {
			t.Fatalf("|hᵀw| = %g exceeds ‖h‖ = %g", got, h.Norm())
		}
	}
}

// Property: adding extra loss to a path can only reduce the per-antenna CSI
// energy contribution of that path.
func TestExtraLossMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		m := Cluster(rng, env.Band28GHz(), testArray(), DefaultClusterParams())
		k := rng.Intn(len(m.Paths))
		before := cmplx.Abs(m.PathGain(k, 0))
		m.Paths[k].ExtraLossDB += 1 + 10*rng.Float64()
		after := cmplx.Abs(m.PathGain(k, 0))
		if after >= before {
			t.Fatalf("extra loss did not attenuate: %g → %g", before, after)
		}
	}
}

// Property: wideband response magnitudes are conjugate-symmetric in the
// delay structure sense — specifically, the mean power across symmetric
// subcarrier pairs equals the mean power overall for a single path (flat).
func TestSinglePathFlatness(t *testing.T) {
	m := FromSpecs(env.Band28GHz(), testArray(), 80, []PathSpec{{AoDDeg: 17, DelayNs: 33}})
	w := m.Tx.SingleBeam(m.Paths[0].AoD)
	resp := m.EffectiveWideband(w, SubcarrierOffsets(400e6, 64)).Abs()
	for i := 1; i < len(resp); i++ {
		if math.Abs(resp[i]-resp[0]) > 1e-12*resp[0] {
			t.Fatalf("single-path response not flat at bin %d", i)
		}
	}
}

// Failure injection: a channel whose every path is infinitely attenuated
// behaves as a dead link everywhere in the API.
func TestDeadChannel(t *testing.T) {
	m := twoPath(3, 1)
	for k := range m.Paths {
		m.Paths[k].ExtraLossDB = math.Inf(1)
	}
	if g := m.PerAntennaCSI(0).Norm(); g != 0 {
		t.Fatalf("dead channel CSI norm %g", g)
	}
	if y := m.Effective(m.Tx.SingleBeam(0), 0); y != 0 {
		t.Fatalf("dead channel effective %v", y)
	}
	if got := m.StrongestPath(); got != -1 {
		t.Fatalf("StrongestPath over all-dead paths = %d, want -1", got)
	}
}
