package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/env"
)

// directWideband is the naive reference: one Effective call per subcarrier.
func directWideband(m *Model, w cmx.Vector, fOffs []float64) cmx.Vector {
	out := make(cmx.Vector, len(fOffs))
	for i, f := range fOffs {
		out[i] = m.Effective(w, f)
	}
	return out
}

// maxRelErr returns max_k |a[k]−b[k]| / max_k |b[k]|.
func maxRelErr(a, b cmx.Vector) float64 {
	var maxDiff, scale float64
	for k := range a {
		if d := cmplx.Abs(a[k] - b[k]); d > maxDiff {
			maxDiff = d
		}
		if s := cmplx.Abs(b[k]); s > scale {
			scale = s
		}
	}
	if scale == 0 {
		return maxDiff
	}
	return maxDiff / scale
}

// factoredCases builds a representative set of channel/beam/grid configs:
// scripted two-path, random clusters, blockage (ExtraLossDB mutated after
// construction), a directional UE with RxWeights, and a dead path.
func factoredCases(t *testing.T) []struct {
	name  string
	m     *Model
	w     cmx.Vector
	fOffs []float64
} {
	t.Helper()
	u := testArray()
	rng := rand.New(rand.NewSource(7))
	uniform := SubcarrierOffsets(400e6, 64)
	nonUniform := make([]float64, 64)
	copy(nonUniform, uniform)
	nonUniform[13] += 1.7e3 // break the grid well beyond the ulp tolerance
	nonUniform[49] -= 4.2e3

	cluster := Cluster(rng, env.Band28GHz(), u, DefaultClusterParams())
	blocked := cluster.Clone()
	blocked.Paths[0].ExtraLossDB = 25 // blockage applied by direct mutation
	blocked.Paths[0].ExtraPhase = 0.3

	withUE := Cluster(rng, env.Band28GHz(), u, DefaultClusterParams())
	withUE.Rx = antenna.NewULA(4, 28e9)
	withUE.RxWeights = withUE.Rx.SingleBeam(0.2)

	dead := twoPath(3, 0.5)
	dead.Paths[1].ExtraLossDB = math.Inf(1) // amp underflows to 0

	zeroDelay := FromSpecs(env.Band28GHz(), u, 80, []PathSpec{
		{AoDDeg: 0, DelayNs: 0},
		{AoDDeg: 25, RelAttDB: 4, PhaseRad: 1.1, DelayNs: 35},
	})
	zeroDelay.Paths[0].Delay = 0 // exercise the τ=0 fast path

	mb := u.SingleBeam(0.1)
	random := make(cmx.Vector, u.N)
	for i := range random {
		random[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	return []struct {
		name  string
		m     *Model
		w     cmx.Vector
		fOffs []float64
	}{
		{"two-path/uniform", twoPath(3, -0.7), mb, uniform},
		{"cluster/uniform", cluster, mb, uniform},
		{"cluster/non-uniform", cluster, random, nonUniform},
		{"blockage/uniform", blocked, mb, uniform},
		{"rx-weights/uniform", withUE, mb, uniform},
		{"rx-weights/non-uniform", withUE, random, nonUniform},
		{"dead-path/uniform", dead, mb, uniform},
		{"zero-delay/uniform", zeroDelay, mb, uniform},
		{"single-subcarrier", cluster, mb, []float64{0}},
		{"two-subcarriers", cluster, mb, []float64{-1e8, 1e8}},
	}
}

// TestEffectiveWidebandFactoredEquivalence pins the factored kernel to the
// direct per-subcarrier evaluation at ≤1e-12 relative error — the acceptance
// bound of the phasor-recurrence rewrite.
func TestEffectiveWidebandFactoredEquivalence(t *testing.T) {
	for _, tc := range factoredCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.m.EffectiveWideband(tc.w, tc.fOffs)
			want := directWideband(tc.m, tc.w, tc.fOffs)
			if err := maxRelErr(got, want); err > 1e-12 {
				t.Fatalf("factored vs direct relative error %.3g > 1e-12", err)
			}
			// Into variant with a reused buffer must agree exactly.
			buf := make(cmx.Vector, len(tc.fOffs))
			for i := range buf {
				buf[i] = complex(99, 99) // stale content must be overwritten
			}
			got2 := tc.m.EffectiveWidebandInto(tc.w, tc.fOffs, buf)
			for k := range got {
				if got2[k] != got[k] {
					t.Fatalf("Into variant diverges at subcarrier %d", k)
				}
			}
		})
	}
}

// TestCacheInvalidationOnMutation verifies the epoch/snapshot contract: after
// the cache is built, direct mutation of ExtraLossDB/ExtraPhase/Delay or
// rebinding RxWeights must be reflected in the next evaluation.
func TestCacheInvalidationOnMutation(t *testing.T) {
	u := testArray()
	fOffs := SubcarrierOffsets(400e6, 64)
	w := u.SingleBeam(0)

	m := twoPath(3, 0.4)
	_ = m.EffectiveWideband(w, fOffs) // build the cache

	check := func(name string) {
		t.Helper()
		got := m.EffectiveWideband(w, fOffs)
		fresh := m.Clone() // cold cache
		want := directWideband(fresh, w, fOffs)
		if err := maxRelErr(got, want); err > 1e-12 {
			t.Fatalf("%s: stale cache survived mutation (rel err %.3g)", name, err)
		}
	}

	m.Paths[1].ExtraLossDB += 25 // blockage, snapshot-detected
	check("ExtraLossDB")
	m.Paths[1].ExtraPhase += 1.3
	check("ExtraPhase")
	m.Paths[0].Delay += 5e-9
	check("Delay")
	m.Paths[1].AoD += 0.05
	check("AoD")

	// RxWeights rebinding is caught by slice identity...
	m.Rx = antenna.NewULA(4, 28e9)
	m.RxWeights = m.Rx.SingleBeam(0.3)
	check("RxWeights bind")
	m.RxWeights = m.Rx.SingleBeam(-0.2)
	check("RxWeights rebind")
	// ...but in-place element edits need the explicit escape hatch.
	m.RxWeights[0] *= complex(0, 1)
	m.InvalidateCache()
	check("RxWeights in-place + InvalidateCache")
}

// TestModelConcurrentReadOnly exercises the lock-free cache under concurrent
// read-only use (run with -race in CI): many goroutines share one Model and
// may race to build the first cache.
func TestModelConcurrentReadOnly(t *testing.T) {
	u := testArray()
	rng := rand.New(rand.NewSource(3))
	m := Cluster(rng, env.Band28GHz(), u, DefaultClusterParams())
	fOffs := SubcarrierOffsets(400e6, 64)
	w := u.SingleBeam(0.15)
	want := directWideband(m.Clone(), w, fOffs)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make(cmx.Vector, len(fOffs))
			for it := 0; it < 50; it++ {
				got := m.EffectiveWidebandInto(w, fOffs, buf)
				if err := maxRelErr(got, want); err > 1e-12 {
					errs <- nil
					return
				}
				_ = m.PerAntennaCSI(0)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if len(errs) > 0 {
		t.Fatal("concurrent evaluation diverged from direct form")
	}
}

// TestEffectiveWidebandIntoAllocs pins the steady-state hot path to zero
// allocations once the cache is warm and a dst buffer is supplied.
func TestEffectiveWidebandIntoAllocs(t *testing.T) {
	u := testArray()
	rng := rand.New(rand.NewSource(11))
	m := Cluster(rng, env.Band28GHz(), u, DefaultClusterParams())
	fOffs := SubcarrierOffsets(400e6, 64)
	w := u.SingleBeam(0.1)
	dst := make(cmx.Vector, len(fOffs))
	m.EffectiveWidebandInto(w, fOffs, dst) // warm the cache
	allocs := testing.AllocsPerRun(100, func() {
		m.EffectiveWidebandInto(w, fOffs, dst)
	})
	if allocs != 0 {
		t.Fatalf("EffectiveWidebandInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReuseCacheRecycling pins the Reuse contract: after a path-state
// mutation, the in-place cache rebuild (a) produces results identical to a
// fresh non-Reuse model and (b) allocates nothing once warm.
func TestReuseCacheRecycling(t *testing.T) {
	u := testArray()
	fOffs := SubcarrierOffsets(400e6, 64)
	w := u.SingleBeam(0.1)
	build := func(reuse bool) *Model {
		m := Cluster(rand.New(rand.NewSource(7)), env.Band28GHz(), u, DefaultClusterParams())
		m.Reuse = reuse
		return m
	}
	mr, mf := build(true), build(false)
	dst := make(cmx.Vector, len(fOffs))
	ref := make(cmx.Vector, len(fOffs))
	for i := 0; i < 5; i++ {
		mr.Paths[0].ExtraLossDB = float64(i) * 3
		mf.Paths[0].ExtraLossDB = float64(i) * 3
		mr.Paths[1].ExtraPhase = float64(i) * 0.7
		mf.Paths[1].ExtraPhase = float64(i) * 0.7
		mr.EffectiveWidebandInto(w, fOffs, dst)
		mf.EffectiveWidebandInto(w, fOffs, ref)
		for k := range dst {
			if dst[k] != ref[k] {
				t.Fatalf("iter %d subcarrier %d: reuse %v vs fresh %v", i, k, dst[k], ref[k])
			}
		}
	}
	// Steady-state mutate→rebuild→evaluate must not allocate.
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		i++
		mr.Paths[0].ExtraLossDB = float64(i%7) * 2
		mr.EffectiveWidebandInto(w, fOffs, dst)
	})
	if allocs != 0 {
		t.Fatalf("Reuse rebuild allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCopyStateFrom pins that CopyStateFrom mirrors src exactly, reuses the
// receiver's buffers, and never aliases src's mutable state.
func TestCopyStateFrom(t *testing.T) {
	u := testArray()
	fOffs := SubcarrierOffsets(400e6, 64)
	w := u.SingleBeam(0.1)
	src := Cluster(rand.New(rand.NewSource(9)), env.Band28GHz(), u, DefaultClusterParams())
	src.RxWeights = cmx.Vector{1} // exercise the RxWeights copy
	src.Rx = antenna.NewULA(1, 28e9)

	dstM := &Model{Reuse: true}
	dstM.CopyStateFrom(src)
	got := dstM.EffectiveWideband(w, fOffs)
	want := src.EffectiveWideband(w, fOffs)
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("subcarrier %d: copy %v vs src %v", k, got[k], want[k])
		}
	}
	// Mutating the copy must not touch src.
	before := src.Paths[0].ExtraLossDB
	dstM.Paths[0].ExtraLossDB += 10
	if src.Paths[0].ExtraLossDB != before {
		t.Fatal("CopyStateFrom aliased Paths with src")
	}
	dstM.RxWeights[0] = 2
	if src.RxWeights[0] == 2 {
		t.Fatal("CopyStateFrom aliased RxWeights with src")
	}
	// Steady-state CopyStateFrom + evaluation must not allocate.
	dstM.CopyStateFrom(src)
	dstM.EffectiveWidebandInto(w, fOffs, got)
	allocs := testing.AllocsPerRun(100, func() {
		dstM.CopyStateFrom(src)
		dstM.EffectiveWidebandInto(w, fOffs, got)
	})
	if allocs != 0 {
		t.Fatalf("CopyStateFrom steady state allocates %.1f objects/op, want 0", allocs)
	}
}
