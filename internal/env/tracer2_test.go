package env

import (
	"math"
	"testing"
)

// corridor builds two parallel metal walls around the x-axis, the classic
// geometry where double bounces are strong.
func corridor() *Environment {
	e := NewEnvironment(Band28GHz(),
		Wall{Seg: Segment{Vec2{-10, 2}, Vec2{30, 2}}, Mat: Metal},
		Wall{Seg: Segment{Vec2{-10, -2}, Vec2{30, -2}}, Mat: Metal},
	)
	e.MaxOrder = 2
	return e
}

func TestDoubleReflectionGeometry(t *testing.T) {
	e := corridor()
	tx := Pose{Pos: Vec2{0, 0}, Facing: 0}
	rx := Pose{Pos: Vec2{12, 0}, Facing: math.Pi}
	paths := e.Trace(tx, rx)

	var singles, doubles int
	for _, p := range paths {
		switch p.Refl {
		case 1:
			singles++
			if p.Via2 != -1 {
				t.Fatalf("single bounce with Via2 %d", p.Via2)
			}
		case 2:
			doubles++
			if p.Via == p.Via2 || p.Via2 < 0 {
				t.Fatalf("double bounce walls %d/%d", p.Via, p.Via2)
			}
			if p.PhasePi {
				t.Fatal("two flips should cancel: PhasePi must be false")
			}
			// Image-of-image length check: mirror TX across wall Via then
			// across wall Via2; the distance to RX must equal p.Dist.
			img := e.Walls[p.Via2].Seg.mirror(e.Walls[p.Via].Seg.mirror(tx.Pos))
			if math.Abs(img.Dist(rx.Pos)-p.Dist) > 1e-9 {
				t.Fatalf("double-bounce distance %g vs image distance %g", p.Dist, img.Dist(rx.Pos))
			}
			if p.Dist <= 12 {
				t.Fatalf("double bounce cannot be shorter than LOS: %g", p.Dist)
			}
		}
	}
	if singles != 2 {
		t.Fatalf("expected 2 single bounces in a corridor, got %d", singles)
	}
	// Up-down and down-up double bounces both exist.
	if doubles != 2 {
		t.Fatalf("expected 2 double bounces in a corridor, got %d", doubles)
	}
}

func TestDoubleReflectionDisabledByDefault(t *testing.T) {
	e := NewEnvironment(Band28GHz(),
		Wall{Seg: Segment{Vec2{-10, 2}, Vec2{30, 2}}, Mat: Metal},
		Wall{Seg: Segment{Vec2{-10, -2}, Vec2{30, -2}}, Mat: Metal},
	)
	for _, p := range e.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{12, 0}, Facing: math.Pi}) {
		if p.Refl > 1 {
			t.Fatalf("MaxOrder 1 produced a double bounce: %+v", p)
		}
	}
}

func TestDoubleReflectionWeakerThanSingle(t *testing.T) {
	// Same wall pair: the double bounce travels farther and pays two
	// reflection losses, so it must be weaker than either single bounce.
	e := corridor()
	paths := e.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{12, 0}, Facing: math.Pi})
	var bestSingle, bestDouble float64 = math.Inf(1), math.Inf(1)
	for _, p := range paths {
		if p.Refl == 1 && p.LossDB < bestSingle {
			bestSingle = p.LossDB
		}
		if p.Refl == 2 && p.LossDB < bestDouble {
			bestDouble = p.LossDB
		}
	}
	if !(bestDouble > bestSingle) {
		t.Fatalf("double bounce (%g dB) not weaker than single (%g dB)", bestDouble, bestSingle)
	}
}

func TestDoubleReflectionOcclusion(t *testing.T) {
	// A metal blocker across the middle leg kills the double bounce but can
	// leave a single bounce alive.
	e := corridor()
	// The up-down double bounce's middle leg crosses y∈(−2,2) near x≈6;
	// block it with a vertical metal sliver away from the single-bounce
	// reflection points (which sit at x≈6 on the walls themselves — so
	// instead block only the center strip y∈[−1, 1]).
	e.Walls = append(e.Walls, Wall{Seg: Segment{Vec2{6, -1}, Vec2{6, 1}}, Mat: Metal})
	paths := e.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{12, 0}, Facing: math.Pi})
	for _, p := range paths {
		if p.Refl == 2 {
			t.Fatalf("occluded double bounce survived: %+v", p)
		}
		if p.Refl == 0 {
			t.Fatalf("LOS through the metal sliver survived: %+v", p)
		}
	}
	// Single bounces (legs pass above/below the sliver) survive.
	found := false
	for _, p := range paths {
		if p.Refl == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("single bounces should survive the center sliver")
	}
}

func TestPathID(t *testing.T) {
	los := Path{Via: -1, Via2: -1}
	s0 := Path{Via: 0, Via2: -1, Refl: 1}
	s1 := Path{Via: 1, Via2: -1, Refl: 1}
	d01 := Path{Via: 0, Via2: 1, Refl: 2}
	d10 := Path{Via: 1, Via2: 0, Refl: 2}
	ids := map[int]bool{}
	for _, p := range []Path{los, s0, s1, d01, d10} {
		if ids[p.ID()] {
			t.Fatalf("duplicate ID %d for %+v", p.ID(), p)
		}
		ids[p.ID()] = true
	}
}

func TestSecondOrderInConferenceRoom(t *testing.T) {
	e := ConferenceRoom(Band28GHz())
	tx := GNBPose(true)
	rx := Pose{Pos: Vec2{6, 2.6}, Facing: math.Pi}
	first := len(e.Trace(tx, rx))
	e.MaxOrder = 2
	second := len(e.Trace(tx, rx))
	if second <= first {
		t.Fatalf("second order added no paths: %d vs %d", second, first)
	}
}
