package env

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// tracePair compares indexed and reference traces of the same (tx, rx) in
// the same environment and fails on any difference: the indexed tracer's
// contract is bit-identical path lists (losses, ordering, truncation), not
// merely "the same paths".
func tracePair(t *testing.T, e *Environment, tx, rx Pose, tag string) {
	t.Helper()
	if e.idx == nil {
		t.Fatalf("%s: scene has no index built", tag)
	}
	got := e.Trace(tx, rx)
	saved := e.idx
	e.idx = nil
	want := e.Trace(tx, rx)
	e.idx = saved
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: indexed trace diverges from reference\nindexed:   %v\nreference: %v",
			tag, got, want)
	}
}

// TestIndexedTraceMatchesReference property-tests the spatial-indexed
// tracer against the brute-force oracle on every scene constructor the
// package ships, across reflection orders, range limits and random
// terminal placements. The indexed tracer prunes candidate walls; this test
// is the proof the pruning is lossless.
func TestIndexedTraceMatchesReference(t *testing.T) {
	if referenceTracer {
		t.Skip("MMR_TRACER=reference pins both tracers to the oracle")
	}
	type scene struct {
		name  string
		build func(rng *rand.Rand) (*Environment, []Pose)
	}
	scenes := []scene{
		{"conference", func(*rand.Rand) (*Environment, []Pose) {
			return ConferenceRoom(Band60GHz()), []Pose{GNBPose(true)}
		}},
		{"street", func(*rand.Rand) (*Environment, []Pose) {
			return OutdoorStreet(Band28GHz()), []Pose{GNBPose(false)}
		}},
		{"randIndoor", func(rng *rand.Rand) (*Environment, []Pose) {
			e, p := RandomIndoor(rng, Band60GHz())
			return e, []Pose{p}
		}},
		{"randOutdoor", func(rng *rand.Rand) (*Environment, []Pose) {
			e, p := RandomOutdoor(rng, Band28GHz())
			return e, []Pose{p}
		}},
		{"hall", func(*rand.Rand) (*Environment, []Pose) {
			return MultiCellHall(Band28GHz(), 4)
		}},
		{"multiStreet", func(*rand.Rand) (*Environment, []Pose) {
			return MultiCellStreet(Band28GHz(), 4)
		}},
		{"metro", func(*rand.Rand) (*Environment, []Pose) {
			return MetroGrid(Band28GHz(), 4)
		}},
		{"irs", func(*rand.Rand) (*Environment, []Pose) {
			e := ConferenceRoom(Band60GHz())
			e.IRSs = []IRS{{Pos: Vec2{6.5, 9.5}, GainDB: 20}, {Pos: Vec2{0.5, 0.5}, GainDB: 15}}
			return e, []Pose{GNBPose(true)}
		}},
	}
	for _, sc := range scenes {
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			e, poses := sc.build(rng)
			// Random-ish extent from the wall AABB for in-scene UE drops.
			minX, minY, maxX, maxY := sceneAABB(e)
			for _, order := range []int{1, 2} {
				for _, rangeM := range []float64{0, 30, 200} {
					e.MaxOrder = order
					e.MaxRangeM = rangeM
					e.BuildIndex()
					for trial := 0; trial < 8; trial++ {
						tx := poses[trial%len(poses)]
						rx := Pose{
							Pos: Vec2{
								minX + rng.Float64()*(maxX-minX),
								minY + rng.Float64()*(maxY-minY),
							},
							Facing: rng.Float64()*6.28 - 3.14,
						}
						tag := fmt.Sprintf("%s seed=%d order=%d range=%g trial=%d",
							sc.name, seed, order, rangeM, trial)
						tracePair(t, e, tx, rx, tag)
						// MaxPaths truncation must cut identically too.
						e.MaxPaths = 2
						tracePair(t, e, tx, rx, tag+" maxpaths")
						e.MaxPaths = 0
					}
				}
			}
		}
	}
}

// TestIndexedTraceOutOfBoundsTerminals puts terminals far outside the wall
// bounding box (the grid clamps queries to its edge cells): paths must
// still match the reference exactly.
func TestIndexedTraceOutOfBoundsTerminals(t *testing.T) {
	if referenceTracer {
		t.Skip("MMR_TRACER=reference pins both tracers to the oracle")
	}
	e, _ := MetroGrid(Band28GHz(), 3)
	e.MaxOrder = 2
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tx := Pose{Pos: Vec2{-50 + rng.Float64()*250, -50 + rng.Float64()*250}, Facing: 1}
		rx := Pose{Pos: Vec2{-50 + rng.Float64()*250, -50 + rng.Float64()*250}, Facing: -2}
		tracePair(t, e, tx, rx, fmt.Sprintf("oob trial=%d", trial))
	}
}

func sceneAABB(e *Environment) (minX, minY, maxX, maxY float64) {
	minX, minY = 1e18, 1e18
	maxX, maxY = -1e18, -1e18
	for _, w := range e.Walls {
		for _, p := range [2]Vec2{w.Seg.A, w.Seg.B} {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	return
}

// benchTraceScene builds a MetroGrid of the given size and a street-level
// link whose trace exercises occlusion against the whole city.
func benchTraceScene(blocks int, indexed bool) (*Environment, Pose, Pose) {
	e, poses := MetroGrid(Band28GHz(), blocks)
	e.MaxOrder = 2
	if !indexed {
		e.idx = nil
	}
	tx := poses[1]
	rx := Pose{Pos: tx.Pos.Add(Vec2{21, 0}), Facing: 3.0}
	return e, tx, rx
}

// BenchmarkTraceIndexed measures the spatial-indexed tracer on growing
// metro scenes. Compare against BenchmarkTraceReference at the same wall
// count: the indexed per-trace cost must scale sublinearly in total walls
// (the CI bench-smoke job tracks both).
func BenchmarkTraceIndexed(b *testing.B) {
	for _, blocks := range []int{2, 4, 8, 16} {
		e, tx, rx := benchTraceScene(blocks, true)
		b.Run(fmt.Sprintf("walls=%d", len(e.Walls)), func(b *testing.B) {
			buf := make([]Path, 0, 16)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = e.TraceAppend(buf[:0], tx, rx)
			}
		})
	}
}

// BenchmarkTraceReference is the brute-force oracle at the same scene
// sizes, for the scaling comparison.
func BenchmarkTraceReference(b *testing.B) {
	for _, blocks := range []int{2, 4, 8, 16} {
		e, tx, rx := benchTraceScene(blocks, false)
		b.Run(fmt.Sprintf("walls=%d", len(e.Walls)), func(b *testing.B) {
			buf := make([]Path, 0, 16)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = e.TraceAppend(buf[:0], tx, rx)
			}
		})
	}
}
