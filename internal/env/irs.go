package env

import "math"

// IRS is an intelligent reflecting surface (§8 of the paper: future
// deployments "where intelligent reflecting surfaces are deployed in the
// environment to engineer strong reflections"). Unlike a passive wall, an
// IRS re-radiates toward the receiver regardless of the specular law, but
// pays the product-of-distances path loss of a re-radiating aperture:
//
//	loss = FSPL(d_tx→irs) + FSPL(d_irs→rx) − Gain
//
// where Gain is the surface's aperture/beamforming gain. With enough
// elements an IRS turns a dead corner into a reliable second path.
type IRS struct {
	Pos    Vec2
	GainDB float64
}

// irsPath traces TX → IRS i → RX with occlusion checks on both legs.
func (e *Environment) irsPath(tx, rx Pose, i int) (Path, bool) {
	s := e.IRSs[i]
	d1 := tx.Pos.Dist(s.Pos)
	d2 := s.Pos.Dist(rx.Pos)
	if d1 < 1e-9 || d2 < 1e-9 {
		return Path{}, false
	}
	if e.MaxRangeM > 0 && d1+d2 > e.MaxRangeM {
		return Path{}, false
	}
	t1, b1 := e.transmissionLoss(Segment{tx.Pos, s.Pos}, -1, -1)
	if b1 {
		return Path{}, false
	}
	t2, b2 := e.transmissionLoss(Segment{s.Pos, rx.Pos}, -1, -1)
	if b2 {
		return Path{}, false
	}
	p := Path{
		AoD:    relAngle(s.Pos.Sub(tx.Pos), tx.Facing),
		AoA:    relAngle(s.Pos.Sub(rx.Pos), rx.Facing),
		Dist:   d1 + d2,
		Delay:  (d1 + d2) / SpeedOfLight,
		LossDB: e.Band.PathLossDB(d1) + e.Band.PathLossDB(d2) - s.GainDB + t1 + t2,
		Refl:   1,
		Via:    -2 - i, // IRS i is identified by Via = −2−i (see Path.ID)
		Via2:   -1,
	}
	if e.FrontHalfOnly && (math.Abs(p.AoD) > math.Pi/2 || math.Abs(p.AoA) > math.Pi/2) {
		return Path{}, false
	}
	return p, true
}

// ViaIRS returns the IRS index a path reflected off, or −1 for non-IRS
// paths.
func (p Path) ViaIRS() int {
	if p.Via <= -2 {
		return -2 - p.Via
	}
	return -1
}
