package env

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// traceCachePair compares a cached trace against a fresh TraceAppend of the
// same (tx, rx) and fails on any difference: the TraceCache contract is
// bit-identical path lists (losses, ordering, truncation), never "close
// enough". TraceAppend itself is pinned against the brute-force oracle by
// TestIndexedTraceMatchesReference, so equality here closes the chain back
// to the reference tracer.
func traceCachePair(t *testing.T, e *Environment, tc *TraceCache, tx, rx Pose, tag string) {
	t.Helper()
	got := e.TraceAppendCached(tc, nil, tx, rx)
	want := e.TraceAppend(nil, tx, rx)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: cached trace diverges from TraceAppend\ncached: %v\nfresh:  %v",
			tag, got, want)
	}
}

// TestTraceCacheMatchesTraceAppend property-tests the enumerate/solve split
// across the same scene families as TestIndexedTraceMatchesReference, with
// the UE *moving* between queries so the cache crosses its invalidation
// boundaries: most steps are small (well inside the pad, pure reuse), with
// periodic multi-cell hops (disk rectangle change) and scene-scale
// teleports (every leg set stale at once).
func TestTraceCacheMatchesTraceAppend(t *testing.T) {
	if referenceTracer {
		t.Skip("MMR_TRACER=reference disables the spatial index the cache keys on")
	}
	type scene struct {
		name  string
		build func(rng *rand.Rand) (*Environment, []Pose)
	}
	scenes := []scene{
		{"conference", func(*rand.Rand) (*Environment, []Pose) {
			return ConferenceRoom(Band60GHz()), []Pose{GNBPose(true)}
		}},
		{"street", func(*rand.Rand) (*Environment, []Pose) {
			return OutdoorStreet(Band28GHz()), []Pose{GNBPose(false)}
		}},
		{"randIndoor", func(rng *rand.Rand) (*Environment, []Pose) {
			e, p := RandomIndoor(rng, Band60GHz())
			return e, []Pose{p}
		}},
		{"randOutdoor", func(rng *rand.Rand) (*Environment, []Pose) {
			e, p := RandomOutdoor(rng, Band28GHz())
			return e, []Pose{p}
		}},
		{"hall", func(*rand.Rand) (*Environment, []Pose) {
			return MultiCellHall(Band28GHz(), 4)
		}},
		{"multiStreet", func(*rand.Rand) (*Environment, []Pose) {
			return MultiCellStreet(Band28GHz(), 4)
		}},
		{"metro", func(*rand.Rand) (*Environment, []Pose) {
			return MetroGrid(Band28GHz(), 4)
		}},
		{"irs", func(*rand.Rand) (*Environment, []Pose) {
			e := ConferenceRoom(Band60GHz())
			e.IRSs = []IRS{{Pos: Vec2{6.5, 9.5}, GainDB: 20}, {Pos: Vec2{0.5, 0.5}, GainDB: 15}}
			return e, []Pose{GNBPose(true)}
		}},
	}
	for _, sc := range scenes {
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			e, poses := sc.build(rng)
			minX, minY, maxX, maxY := sceneAABB(e)
			for _, order := range []int{1, 2} {
				for _, rangeM := range []float64{30, 200} {
					e.MaxOrder = order
					e.MaxRangeM = rangeM
					e.BuildIndex()
					tx := poses[int(seed)%len(poses)]
					rx := Pose{
						Pos: Vec2{
							minX + rng.Float64()*(maxX-minX),
							minY + rng.Float64()*(maxY-minY),
						},
						Facing: rng.Float64()*6.28 - 3.14,
					}
					// One cache for the whole walk — reuse across steps is
					// the thing under test.
					tc := &TraceCache{}
					cell := e.idx.cellSize
					for step := 0; step < 30; step++ {
						var hop float64
						switch {
						case step%13 == 12: // teleport across the scene
							rx.Pos = Vec2{
								minX + rng.Float64()*(maxX-minX),
								minY + rng.Float64()*(maxY-minY),
							}
						case step%7 == 6: // multi-cell hop: disk rect moves
							hop = 3 * cell
						default: // sub-pad drift: the pure-reuse regime
							hop = 0.15 * cell
						}
						if hop > 0 {
							rx.Pos.X += (rng.Float64()*2 - 1) * hop
							rx.Pos.Y += (rng.Float64()*2 - 1) * hop
						}
						rx.Facing = rng.Float64()*6.28 - 3.14
						tag := fmt.Sprintf("%s seed=%d order=%d range=%g step=%d",
							sc.name, seed, order, rangeM, step)
						traceCachePair(t, e, tc, tx, rx, tag)
						// MaxPaths truncation must cut identically too.
						e.MaxPaths = 2
						traceCachePair(t, e, tc, tx, rx, tag+" maxpaths")
						e.MaxPaths = 0
					}
				}
			}
		}
	}
}

// TestTraceCacheReuses pins that the cache actually skips re-enumeration in
// the quiescent regime: oscillating a UE between two sub-pad positions
// must stop growing Rebuilds after the first visit.
func TestTraceCacheReuses(t *testing.T) {
	if referenceTracer {
		t.Skip("MMR_TRACER=reference disables the spatial index the cache keys on")
	}
	e, poses := MultiCellHall(Band28GHz(), 2)
	e.MaxRangeM = 80
	e.BuildIndex()
	tx := poses[0]
	a := Pose{Pos: Vec2{6, 5}, Facing: 1}
	b := Pose{Pos: Vec2{6 + 0.1*e.idx.cellSize, 5}, Facing: 1}
	tc := &TraceCache{}
	e.TraceAppendCached(tc, nil, tx, a)
	e.TraceAppendCached(tc, nil, tx, b)
	warm := tc.Rebuilds
	if warm == 0 {
		t.Fatal("no enumeration happened at all")
	}
	for i := 0; i < 20; i++ {
		rx := a
		if i%2 == 1 {
			rx = b
		}
		e.TraceAppendCached(tc, nil, tx, rx)
	}
	if tc.Rebuilds != warm {
		t.Fatalf("quiescent oscillation re-enumerated: rebuilds %d -> %d", warm, tc.Rebuilds)
	}
}

// TestTraceCacheBlockerInvalidation sweeps a metal blocker wall through a
// room (mutating Walls and rebuilding the index each move, the repo's
// convention for geometry changes) while the same TraceCache serves a
// drifting UE: the index-generation check must discard stale enumerations
// the moment the blocker enters — or leaves — any cached candidate band.
func TestTraceCacheBlockerInvalidation(t *testing.T) {
	if referenceTracer {
		t.Skip("MMR_TRACER=reference disables the spatial index the cache keys on")
	}
	base := ConferenceRoom(Band60GHz())
	nFixed := len(base.Walls)
	base.MaxRangeM = 40
	tx := GNBPose(true)
	rng := rand.New(rand.NewSource(3))
	tc := &TraceCache{}
	rx := Pose{Pos: Vec2{7.5, 8.5}, Facing: -1.2}
	for step := 0; step < 25; step++ {
		// The blocker crosses the room left to right, cutting the tx–rx
		// corridor around the middle steps.
		x := 0.5 + float64(step)*0.35
		blocker := Wall{Seg: Segment{Vec2{x, 2}, Vec2{x, 7}}, Mat: Metal}
		base.Walls = append(base.Walls[:nFixed], blocker)
		base.BuildIndex()
		// UE drifts a little every step; the blocker move is what forces
		// the full invalidation.
		rx.Pos.X += (rng.Float64()*2 - 1) * 0.05
		rx.Pos.Y += (rng.Float64()*2 - 1) * 0.05
		traceCachePair(t, base, tc, tx, rx, fmt.Sprintf("blocker step=%d", step))
	}
}

// TestTraceCacheFallbacks pins the fall-back contract: nil cache, missing
// index, or unbounded range must all produce TraceAppend verbatim.
func TestTraceCacheFallbacks(t *testing.T) {
	e := ConferenceRoom(Band60GHz())
	tx, rx := GNBPose(true), Pose{Pos: Vec2{5, 5}, Facing: 0.3}
	want := e.TraceAppend(nil, tx, rx)
	if got := e.TraceAppendCached(nil, nil, tx, rx); !reflect.DeepEqual(got, want) {
		t.Fatalf("nil cache: %v != %v", got, want)
	}
	tc := &TraceCache{}
	if got := e.TraceAppendCached(tc, nil, tx, rx); !reflect.DeepEqual(got, want) {
		t.Fatalf("no index: %v != %v", got, want)
	}
	e.BuildIndex() // index present but MaxRangeM == 0: still the fallback
	want = e.TraceAppend(nil, tx, rx)
	if got := e.TraceAppendCached(tc, nil, tx, rx); !reflect.DeepEqual(got, want) {
		t.Fatalf("unbounded range: %v != %v", got, want)
	}
}
