package env

import "math"

// SpeedOfLight in m/s.
const SpeedOfLight = 299_792_458.0

// Band captures the propagation constants of an mmWave carrier.
type Band struct {
	Name          string
	CarrierHz     float64 // center frequency
	AbsorptionDBm float64 // atmospheric absorption in dB per meter
}

// Band28GHz is the 5G NR FR2 n257/n261-class band the paper's testbed uses.
// Oxygen absorption at 28 GHz is negligible (~0.06 dB/km).
func Band28GHz() Band {
	return Band{Name: "28GHz", CarrierHz: 28e9, AbsorptionDBm: 0.06e-3}
}

// Band60GHz is the unlicensed 802.11ad band of the paper's Appendix B,
// where the oxygen absorption peak adds ≈16 dB/km on top of the higher
// free-space loss.
func Band60GHz() Band {
	return Band{Name: "60GHz", CarrierHz: 60e9, AbsorptionDBm: 16e-3}
}

// Lambda returns the carrier wavelength in meters.
func (b Band) Lambda() float64 { return SpeedOfLight / b.CarrierHz }

// FSPLdB returns the free-space path loss in dB at distance d meters:
// 20·log10(4πd/λ).
func (b Band) FSPLdB(d float64) float64 {
	if d <= 0 {
		return 0
	}
	return 20 * math.Log10(4*math.Pi*d/b.Lambda())
}

// PathLossDB returns the total propagation loss in dB over distance d,
// including atmospheric absorption.
func (b Band) PathLossDB(d float64) float64 {
	return b.FSPLdB(d) + b.AbsorptionDBm*d
}

// PathAmplitude returns the linear field-amplitude attenuation over
// distance d (the square root of the linear power loss).
func (b Band) PathAmplitude(d float64) float64 {
	return math.Pow(10, -b.PathLossDB(d)/20)
}
