package env

import (
	"math"
	"os"
	"sync"
)

// referenceTracer forces the brute-force reference tracer even when an
// environment has a built spatial index, mirroring MMR_DSP_KERNEL=reference
// in the dsp package: `MMR_TRACER=reference go test ./...` runs the whole
// suite against the oracle implementation. Read once at init so the hot
// path never touches the environment.
var referenceTracer = os.Getenv("MMR_TRACER") == "reference"

// Index is a uniform spatial grid over an environment's walls. It turns the
// tracer's two O(walls) inner loops into local queries:
//
//   - occlusion (transmissionLoss) walks only the grid cells within half a
//     cell diagonal of the leg, instead of testing every wall;
//   - reflection candidate enumeration (when Environment.MaxRangeM > 0)
//     collects only walls within the disk of radius MaxRangeM/2 around the
//     tx–rx midpoint — any reflection point of a path with total length
//     d ≤ MaxRangeM lies inside the ellipse with foci tx, rx and major axis
//     MaxRangeM, which that disk contains (for double bounces the triangle
//     inequality bounds each of q1, q2 the same way).
//
// Both queries are conservative supersets of the walls the brute-force
// tracer would act on, and candidates are deduplicated and sorted into
// ascending wall index before use, so the indexed tracer repeats the
// reference tracer's floating-point accumulation order exactly: path sets,
// loss sums, ordering and MaxPaths truncation are bit-identical (pinned by
// TestIndexedTraceMatchesReference).
//
// The grid is immutable after BuildIndex and safe for concurrent tracing;
// per-query scratch (epoch-stamped dedup marks and the candidate list)
// comes from a sync.Pool so the steady-state trace path stays off the
// allocator.
type Index struct {
	minX, minY float64
	cellSize   float64
	nx, ny     int
	cells      [][]int32
	nWalls     int
	scratch    sync.Pool
}

// indexScratch is the per-query workspace: stamp[w] == epoch marks wall w
// as already collected this query, and cand accumulates the deduplicated
// candidate indices.
type indexScratch struct {
	epoch uint32
	stamp []uint32
	cand  []int32
}

// aabbPad inflates wall bounding boxes and query boxes so walls lying
// exactly on cell boundaries register on both sides and floating-point
// rounding at cell edges can never drop a candidate.
const aabbPad = 1e-7

// BuildIndex builds (or rebuilds) the spatial index over the current wall
// set. Call it after the walls are final; mutating Walls afterwards without
// rebuilding leaves the index stale. Environments that never call it trace
// exactly as before with the brute-force loops.
func (e *Environment) BuildIndex() {
	e.idx = buildIndex(e.Walls)
}

// HasIndex reports whether an effective spatial index is present (false
// under MMR_TRACER=reference, which pins the package to the oracle).
func (e *Environment) HasIndex() bool { return e.tracerIndex() != nil }

// tracerIndex returns the index the tracer should consult, or nil for the
// brute-force reference path.
func (e *Environment) tracerIndex() *Index {
	if referenceTracer {
		return nil
	}
	return e.idx
}

func buildIndex(walls []Wall) *Index {
	if len(walls) == 0 {
		return nil
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, w := range walls {
		minX = math.Min(minX, math.Min(w.Seg.A.X, w.Seg.B.X))
		maxX = math.Max(maxX, math.Max(w.Seg.A.X, w.Seg.B.X))
		minY = math.Min(minY, math.Min(w.Seg.A.Y, w.Seg.B.Y))
		maxY = math.Max(maxY, math.Max(w.Seg.A.Y, w.Seg.B.Y))
	}
	minX -= aabbPad
	minY -= aabbPad
	maxX += aabbPad
	maxY += aabbPad
	// ~64 cells across the longer extent keeps per-cell wall lists short in
	// metro scenes while staying coarse enough that short indoor walls don't
	// shatter across hundreds of cells; the 0.5 m floor bounds the grid for
	// room-scale environments.
	ext := math.Max(maxX-minX, maxY-minY)
	cs := math.Max(ext/64, 0.5)
	ix := &Index{
		minX:     minX,
		minY:     minY,
		cellSize: cs,
		nx:       int((maxX-minX)/cs) + 1,
		ny:       int((maxY-minY)/cs) + 1,
		nWalls:   len(walls),
	}
	ix.cells = make([][]int32, ix.nx*ix.ny)
	for i, w := range walls {
		x0 := math.Min(w.Seg.A.X, w.Seg.B.X) - aabbPad
		x1 := math.Max(w.Seg.A.X, w.Seg.B.X) + aabbPad
		y0 := math.Min(w.Seg.A.Y, w.Seg.B.Y) - aabbPad
		y1 := math.Max(w.Seg.A.Y, w.Seg.B.Y) + aabbPad
		cx0, cx1 := ix.cellX(x0), ix.cellX(x1)
		cy0, cy1 := ix.cellY(y0), ix.cellY(y1)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				c := cy*ix.nx + cx
				ix.cells[c] = append(ix.cells[c], int32(i))
			}
		}
	}
	n := len(walls)
	ix.scratch.New = func() any {
		return &indexScratch{stamp: make([]uint32, n), cand: make([]int32, 0, 64)}
	}
	return ix
}

func (ix *Index) cellX(x float64) int {
	c := int((x - ix.minX) / ix.cellSize)
	if c < 0 {
		c = 0
	}
	if c >= ix.nx {
		c = ix.nx - 1
	}
	return c
}

func (ix *Index) cellY(y float64) int {
	c := int((y - ix.minY) / ix.cellSize)
	if c < 0 {
		c = 0
	}
	if c >= ix.ny {
		c = ix.ny - 1
	}
	return c
}

func (ix *Index) getScratch() *indexScratch   { return ix.scratch.Get().(*indexScratch) }
func (ix *Index) putScratch(sc *indexScratch) { ix.scratch.Put(sc) }

// begin opens a new dedup epoch and resets the candidate list.
func (sc *indexScratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped: clear stamps and restart at 1
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	sc.cand = sc.cand[:0]
}

func (sc *indexScratch) add(wi int32) {
	if sc.stamp[wi] != sc.epoch {
		sc.stamp[wi] = sc.epoch
		sc.cand = append(sc.cand, wi)
	}
}

// sortCand insertion-sorts the candidate list into ascending wall index.
// Ascending order is load-bearing: transmissionLoss accumulates per-wall
// losses in index order and early-exits at the hard-block threshold, so any
// other visitation order could change the floating-point sum or which wall
// trips the exit. Candidate counts are small (walls near one leg or disk),
// so insertion sort beats sort.Slice here.
func (sc *indexScratch) sortCand() {
	s := sc.cand
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// legCandidates returns the ascending-sorted superset of walls that can
// intersect leg: all walls registered in grid cells whose center lies
// within half a cell diagonal of the leg's supporting line, restricted to
// the leg's bounding box. Any cell the leg actually passes through contains
// a point of the line, which is necessarily within halfDiag of that cell's
// center, so the band test never excludes a cell the leg touches.
func (ix *Index) legCandidates(sc *indexScratch, leg Segment) []int32 {
	sc.begin()
	x0, x1 := math.Min(leg.A.X, leg.B.X)-aabbPad, math.Max(leg.A.X, leg.B.X)+aabbPad
	y0, y1 := math.Min(leg.A.Y, leg.B.Y)-aabbPad, math.Max(leg.A.Y, leg.B.Y)+aabbPad
	cx0, cx1 := ix.cellX(x0), ix.cellX(x1)
	cy0, cy1 := ix.cellY(y0), ix.cellY(y1)
	d := leg.B.Sub(leg.A)
	dlen := math.Hypot(d.X, d.Y)
	// |cross(d, center−A)| ≤ band  ⇔  dist(center, line) ≤ halfDiag + pad.
	halfDiag := ix.cellSize * math.Sqrt2 / 2
	band := (halfDiag*(1+1e-9) + aabbPad) * dlen
	degenerate := dlen < 1e-12
	for cy := cy0; cy <= cy1; cy++ {
		ccY := ix.minY + (float64(cy)+0.5)*ix.cellSize
		for cx := cx0; cx <= cx1; cx++ {
			if !degenerate {
				ccX := ix.minX + (float64(cx)+0.5)*ix.cellSize
				cr := d.X*(ccY-leg.A.Y) - d.Y*(ccX-leg.A.X)
				if math.Abs(cr) > band {
					continue
				}
			}
			for _, wi := range ix.cells[cy*ix.nx+cx] {
				sc.add(wi)
			}
		}
	}
	sc.sortCand()
	return sc.cand
}

// diskCandidates returns the ascending-sorted superset of walls registered
// in cells overlapping the square of half-width r around c (the square
// contains the disk of radius r, so this over-approximates safely).
func (ix *Index) diskCandidates(sc *indexScratch, c Vec2, r float64) []int32 {
	sc.begin()
	cx0, cx1 := ix.cellX(c.X-r-aabbPad), ix.cellX(c.X+r+aabbPad)
	cy0, cy1 := ix.cellY(c.Y-r-aabbPad), ix.cellY(c.Y+r+aabbPad)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, wi := range ix.cells[cy*ix.nx+cx] {
				sc.add(wi)
			}
		}
	}
	sc.sortCand()
	return sc.cand
}
