package env

import "math"

// TraceCache memoizes the enumeration half of ray tracing for one moving
// tx–rx pair: which walls the reflection loop considers (the disk candidate
// set) and which walls each occlusion walk tests (the per-leg candidate
// sets). The solve half — reflection points, delays, angles, losses for the
// current pose — is always recomputed, so a cached trace is bit-identical
// to TraceAppend by construction:
//
//   - the disk set is a pure function of the grid-cell rectangle covering
//     the query square, so rectangle equality (plus Index identity) makes
//     the reuse exact, not merely conservative;
//   - each leg set is a *superset* of the walls legCandidates would return
//     for the current leg (see legCandidatesPadded), and transmissionLossOver
//     accumulates only walls that actually intersect the leg, in ascending
//     wall order with the same hard-block early exit, so any ascending
//     superset yields the same floating-point sum bit for bit.
//
// A cache belongs to one tx–rx pair (one sim.Scenario); it is not safe for
// concurrent use. The zero value is ready to use.
type TraceCache struct {
	idx *Index  // generation key: BuildIndex always allocates a fresh Index,
	// and retaining the pointer here keeps it reachable, so pointer equality
	// can never alias a stale generation to a new one.
	pad float64 // endpoint slack baked into every cached leg set (one cell)

	// Disk candidate cache, keyed on the exact cell rectangle of the query
	// square around the tx–rx midpoint.
	diskValid              bool
	dcx0, dcx1, dcy0, dcy1 int
	disk                   []int32

	// Per-leg occlusion caches: index 0 is the LOS leg, 1+2·wi and 2+2·wi
	// are the tx→hit and hit→rx legs of the reflection off wall wi. Double-
	// bounce and IRS legs are uncached (rare, and absent from the metro hot
	// path).
	legs []*legCache

	// Rebuilds counts enumeration rebuilds (disk-rectangle misses plus leg
	// revalidation failures) so tests can assert reuse actually happens.
	Rebuilds int
}

// legCache is one cached occlusion candidate set with the leg endpoints it
// was built around. It stays valid while both current endpoints remain
// within the pad of the cached ones.
type legCache struct {
	a, b  Vec2
	cands []int32
}

// ensure re-anchors the cache to the environment's current index,
// discarding everything when the index generation changed (walls mutated
// and BuildIndex ran, or the cache is fresh).
func (tc *TraceCache) ensure(ix *Index) {
	if tc.idx == ix {
		return
	}
	tc.idx = ix
	tc.pad = ix.cellSize
	tc.diskValid = false
	tc.disk = tc.disk[:0]
	n := 2*ix.nWalls + 1
	if cap(tc.legs) >= n {
		tc.legs = tc.legs[:n]
		for i := range tc.legs {
			tc.legs[i] = nil
		}
	} else {
		tc.legs = make([]*legCache, n)
	}
}

// diskCands returns the reflection candidate set for the disk of radius r
// around c, reusing the cached copy whenever the query's cell rectangle is
// unchanged. diskCandidates is a pure function of that rectangle, so the
// cached copy is exactly what a fresh call would return.
func (tc *TraceCache) diskCands(ix *Index, c Vec2, r float64) []int32 {
	cx0, cx1 := ix.cellX(c.X-r-aabbPad), ix.cellX(c.X+r+aabbPad)
	cy0, cy1 := ix.cellY(c.Y-r-aabbPad), ix.cellY(c.Y+r+aabbPad)
	if tc.diskValid && cx0 == tc.dcx0 && cx1 == tc.dcx1 && cy0 == tc.dcy0 && cy1 == tc.dcy1 {
		return tc.disk
	}
	sc := ix.getScratch()
	tc.disk = append(tc.disk[:0], ix.diskCandidates(sc, c, r)...)
	ix.putScratch(sc)
	tc.diskValid = true
	tc.dcx0, tc.dcx1, tc.dcy0, tc.dcy1 = cx0, cx1, cy0, cy1
	tc.Rebuilds++
	return tc.disk
}

// occlusion is transmissionLoss through the cache: the candidate set for
// the keyed leg is revalidated in O(1) (both endpoints within pad of the
// cached ones) and rebuilt with legCandidatesPadded on failure.
func (tc *TraceCache) occlusion(e *Environment, key int, leg Segment, skip1, skip2 int) (float64, bool) {
	lc := tc.legs[key]
	if lc == nil {
		lc = &legCache{}
		tc.legs[key] = lc
		tc.rebuildLeg(lc, leg)
	} else if !lc.valid(leg, tc.pad) {
		tc.rebuildLeg(lc, leg)
	}
	return e.transmissionLossOver(lc.cands, leg, skip1, skip2)
}

func (tc *TraceCache) rebuildLeg(lc *legCache, leg Segment) {
	sc := tc.idx.getScratch()
	lc.cands = append(lc.cands[:0], tc.idx.legCandidatesPadded(sc, leg, tc.pad)...)
	tc.idx.putScratch(sc)
	lc.a, lc.b = leg.A, leg.B
	tc.Rebuilds++
}

func (lc *legCache) valid(leg Segment, pad float64) bool {
	p2 := pad * pad
	da, db := leg.A.Sub(lc.a), leg.B.Sub(lc.b)
	return da.Dot(da) <= p2 && db.Dot(db) <= p2
}

// distSqToSegment returns the squared distance from p to the segment.
func distSqToSegment(p Vec2, s Segment) float64 {
	d := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	den := d.Dot(d)
	if den > 0 {
		if t := ap.Dot(d) / den; t >= 1 {
			ap = p.Sub(s.B)
		} else if t > 0 {
			ap = ap.Sub(d.Scale(t))
		}
	}
	return ap.Dot(ap)
}

// legCandidatesPadded returns an ascending-sorted candidate set guaranteed
// to contain legCandidates(leg') for every leg' whose endpoints lie within
// pad of this leg's — the revalidation contract legCache.valid checks.
//
// Containment proof. A cell collected by legCandidates(leg') satisfies
// (a) it lies in the cell range of bbox(leg')±aabbPad, and bbox(leg') ⊆
// bbox(leg) inflated by pad, so the padded range below covers it; and
// (b) its center cc has dist(cc, line(leg')) ≤ h where h = halfDiag·(1+1e-9)
// + aabbPad (or leg' is degenerate, handled below). If cc's projection onto
// line(leg') falls beyond an endpoint by s, the bbox bound caps the
// overshoot per axis at cellSize+aabbPad+h, so s ≤ √2·(cellSize+aabbPad+h)
// and dist(cc, segment(leg')) ≤ h + √2·(cellSize+aabbPad+h). Degenerate
// legs collect only cells within that bound of their point anyway. Moving
// each endpoint by ≤ pad moves the nearest segment point by ≤ pad
// (convex interpolation of the endpoint offsets), giving
// dist(cc, segment(leg)) ≤ pad + h + √2·(cellSize+aabbPad+h) = reach.
func (ix *Index) legCandidatesPadded(sc *indexScratch, leg Segment, pad float64) []int32 {
	sc.begin()
	x0 := math.Min(leg.A.X, leg.B.X) - aabbPad - pad
	x1 := math.Max(leg.A.X, leg.B.X) + aabbPad + pad
	y0 := math.Min(leg.A.Y, leg.B.Y) - aabbPad - pad
	y1 := math.Max(leg.A.Y, leg.B.Y) + aabbPad + pad
	cx0, cx1 := ix.cellX(x0), ix.cellX(x1)
	cy0, cy1 := ix.cellY(y0), ix.cellY(y1)
	h := ix.cellSize*math.Sqrt2/2*(1+1e-9) + aabbPad
	reach := pad + h + math.Sqrt2*(ix.cellSize+aabbPad+h)
	reach2 := reach * reach
	for cy := cy0; cy <= cy1; cy++ {
		ccY := ix.minY + (float64(cy)+0.5)*ix.cellSize
		for cx := cx0; cx <= cx1; cx++ {
			cc := Vec2{ix.minX + (float64(cx)+0.5)*ix.cellSize, ccY}
			if distSqToSegment(cc, leg) > reach2 {
				continue
			}
			for _, wi := range ix.cells[cy*ix.nx+cx] {
				sc.add(wi)
			}
		}
	}
	sc.sortCand()
	return sc.cand
}
