package env

import (
	"math"
	"testing"
)

// TestMultiCellHallGeometry pins the cluster deployment scene's contract:
// the requested number of gNBs, all wall-mounted inside the hall, facing
// the interior, every one of them with a direct (LOS) path to the hall
// centre, and deterministic across calls.
func TestMultiCellHallGeometry(t *testing.T) {
	for cells := 1; cells <= 4; cells++ {
		e, poses := MultiCellHall(Band28GHz(), cells)
		if len(poses) != cells {
			t.Fatalf("cells=%d: got %d poses", cells, len(poses))
		}
		for i, p := range poses {
			if p.Pos.X < 0 || p.Pos.X > 20 || p.Pos.Y < 0 || p.Pos.Y > 12 {
				t.Fatalf("cells=%d gNB %d outside hall: %+v", cells, i, p.Pos)
			}
			// The UE faces the gNB it is probing, exactly as the cluster's
			// per-pair scenarios arrange (panel arrays only see the front
			// half-space).
			center := Pose{Pos: Vec2{10, 6}, Facing: FacingFrom(Vec2{10, 6}, p.Pos)}
			paths := e.Trace(p, center)
			// Every cell must be able to serve the hall centre with a
			// strong path. 95 dB keeps the link comfortably above the
			// outage threshold under the indoor budget. (Alternate paths
			// vary by pose — macro-diversity in the cluster comes from
			// multiple cells, not from any one cell's multipath.)
			if len(paths) < 1 {
				t.Fatalf("cells=%d gNB %d has no path to hall centre", cells, i)
			}
			if paths[0].LossDB > 95 {
				t.Fatalf("cells=%d gNB %d strongest path %.1f dB, want ≤ 95", cells, i, paths[0].LossDB)
			}
			for j := 0; j < i; j++ {
				if poses[j].Pos == p.Pos {
					t.Fatalf("cells=%d gNBs %d and %d share a position", cells, j, i)
				}
			}
		}
	}
	// Determinism: two calls produce identical poses.
	_, a := MultiCellHall(Band28GHz(), 3)
	_, b := MultiCellHall(Band28GHz(), 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pose %d differs across calls: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestHallUEPositionsLattice checks the UE drop helper: n positions, all
// within the hall with the 2 m margin, pairwise distinct, deterministic.
func TestHallUEPositionsLattice(t *testing.T) {
	if HallUEPositions(0) != nil {
		t.Fatal("n=0 should return nil")
	}
	for _, n := range []int{1, 2, 7, 16, 33} {
		pos := HallUEPositions(n)
		if len(pos) != n {
			t.Fatalf("n=%d: got %d positions", n, len(pos))
		}
		for i, p := range pos {
			if p.X < 2-1e-9 || p.X > 18+1e-9 || p.Y < 2-1e-9 || p.Y > 10+1e-9 {
				t.Fatalf("n=%d UE %d outside margin: %+v", n, i, p)
			}
			for j := 0; j < i; j++ {
				if pos[j] == p {
					t.Fatalf("n=%d UEs %d and %d coincide at %+v", n, j, i, p)
				}
			}
		}
	}
}

// TestMultiCellStreetGeometry pins the outdoor variant: gNBs along the
// kerb, broadside across the street, ordered by x.
func TestMultiCellStreetGeometry(t *testing.T) {
	_, poses := MultiCellStreet(Band28GHz(), 3)
	if len(poses) != 3 {
		t.Fatalf("got %d poses", len(poses))
	}
	prevX := math.Inf(-1)
	for i, p := range poses {
		if p.Pos.X <= prevX {
			t.Fatalf("gNB %d not ordered by x: %+v", i, poses)
		}
		prevX = p.Pos.X
		if math.Abs(p.Facing-math.Pi/2) > 1e-9 {
			t.Fatalf("gNB %d facing %g, want π/2 (across the street)", i, p.Facing)
		}
	}
}

// TestMultiCellPanics pins the caller-bug guard.
func TestMultiCellPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MultiCellHall(Band28GHz(), 0) },
		func() { MultiCellStreet(Band28GHz(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("cells=0 did not panic")
				}
			}()
			f()
		}()
	}
}
