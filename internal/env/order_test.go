package env

import (
	"math/rand"
	"testing"
)

// mirrorScene builds a scene that is exactly symmetric about the x-axis:
// TX and RX sit on the axis, one identical wall above and one below. The
// two first-order reflections have bit-identical losses (the mirror
// arithmetic is sign-symmetric in double precision), so their relative
// order is decided purely by the tie-break.
func mirrorScene(topFirst bool) (*Environment, Pose, Pose) {
	top := Wall{Seg: Segment{Vec2{-1, 2}, Vec2{9, 2}}, Mat: Metal}
	bot := Wall{Seg: Segment{Vec2{-1, -2}, Vec2{9, -2}}, Mat: Metal}
	var e *Environment
	if topFirst {
		e = NewEnvironment(Band28GHz(), top, bot)
	} else {
		e = NewEnvironment(Band28GHz(), bot, top)
	}
	tx := Pose{Pos: Vec2{0, 0}, Facing: 0}
	rx := Pose{Pos: Vec2{8, 0}, Facing: 3.141592653589793}
	return e, tx, rx
}

// TestTraceTieBreakDeterministic pins the contractual path ordering: equal
// losses are broken by (Via, Via2), so MaxPaths truncation in a symmetric
// scene keeps the lower-indexed wall's path regardless of which wall was
// declared first. An alternative tracer (the spatial-indexed one) may not
// legally reorder equal-loss paths.
func TestTraceTieBreakDeterministic(t *testing.T) {
	for _, topFirst := range []bool{true, false} {
		e, tx, rx := mirrorScene(topFirst)
		paths := e.Trace(tx, rx)
		if len(paths) != 3 {
			t.Fatalf("topFirst=%v: got %d paths, want LOS + 2 reflections", topFirst, len(paths))
		}
		if paths[1].LossDB != paths[2].LossDB {
			t.Fatalf("topFirst=%v: mirror losses differ: %.17g vs %.17g",
				topFirst, paths[1].LossDB, paths[2].LossDB)
		}
		if paths[1].Via != 0 || paths[2].Via != 1 {
			t.Fatalf("topFirst=%v: tie broken as Via %d before %d, want 0 before 1",
				topFirst, paths[1].Via, paths[2].Via)
		}

		// MaxPaths truncation keeps the tie-break winner.
		e.MaxPaths = 2
		cut := e.Trace(tx, rx)
		if len(cut) != 2 || cut[1].Via != 0 {
			t.Fatalf("topFirst=%v: truncation kept Via=%d, want the tie-break winner Via=0",
				topFirst, cut[1].Via)
		}
	}
}

// TestTraceAppendTieBreak exercises the same contract through TraceAppend
// with a retained buffer and second-order bounces enabled: double-bounce
// pairs (wi→wj vs wj→wi) also tie bit-for-bit in a symmetric corridor and
// must come out ordered by (Via, Via2).
func TestTraceAppendTieBreak(t *testing.T) {
	e, tx, rx := mirrorScene(true)
	e.MaxOrder = 2
	buf := make([]Path, 0, 16)
	paths := e.TraceAppend(buf[:0], tx, rx)
	for i := 1; i < len(paths); i++ {
		a, b := paths[i-1], paths[i]
		if a.LossDB > b.LossDB {
			t.Fatalf("paths[%d..%d] out of loss order: %.17g > %.17g", i-1, i, a.LossDB, b.LossDB)
		}
		if a.LossDB == b.LossDB && (a.Via > b.Via || (a.Via == b.Via && a.Via2 >= b.Via2)) {
			t.Fatalf("equal-loss paths %d,%d out of identity order: (%d,%d) before (%d,%d)",
				i-1, i, a.Via, a.Via2, b.Via, b.Via2)
		}
	}
}

// TestTraceOrderContractRandom property-tests the ordering invariant on
// random indoor and outdoor scenes: every trace is sorted by pathLess and
// equal-loss runs are strictly increasing in (Via, Via2).
func TestTraceOrderContractRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, order := range []int{1, 2} {
			e, gnb := RandomIndoor(rng, Band28GHz())
			e.MaxOrder = order
			ue := Pose{Pos: Vec2{4 + rng.Float64()*2, 1 + rng.Float64()*2}, Facing: -2}
			paths := e.Trace(gnb, ue)
			for i := 1; i < len(paths); i++ {
				if pathLess(paths[i], paths[i-1]) {
					t.Fatalf("seed %d order %d: paths %d,%d violate the (LossDB, Via, Via2) contract",
						seed, order, i-1, i)
				}
			}
		}
	}
}
