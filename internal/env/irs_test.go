package env

import (
	"math"
	"testing"
)

func TestIRSPathGeometry(t *testing.T) {
	e := NewEnvironment(Band28GHz())
	e.IRSs = []IRS{{Pos: Vec2{5, 5}, GainDB: 30}}
	tx := Pose{Pos: Vec2{0, 0}, Facing: 0}
	rx := Pose{Pos: Vec2{10, 0}, Facing: math.Pi}
	paths := e.Trace(tx, rx)
	if len(paths) != 2 {
		t.Fatalf("expected LOS + IRS path, got %d", len(paths))
	}
	var irs *Path
	for i := range paths {
		if paths[i].ViaIRS() == 0 {
			irs = &paths[i]
		}
	}
	if irs == nil {
		t.Fatal("no IRS path")
	}
	d1, d2 := math.Hypot(5, 5), math.Hypot(5, 5)
	if math.Abs(irs.Dist-(d1+d2)) > 1e-9 {
		t.Fatalf("IRS path distance %g want %g", irs.Dist, d1+d2)
	}
	// Product-of-distances budget: FSPL(d1)+FSPL(d2)−gain.
	b := Band28GHz()
	want := b.PathLossDB(d1) + b.PathLossDB(d2) - 30
	if math.Abs(irs.LossDB-want) > 1e-9 {
		t.Fatalf("IRS loss %g want %g", irs.LossDB, want)
	}
	// AoD toward the surface: 45°.
	if math.Abs(irs.AoD-math.Pi/4) > 1e-9 {
		t.Fatalf("IRS AoD %g", irs.AoD)
	}
	// LOS paths report ViaIRS −1.
	for _, p := range paths {
		if p.Via == -1 && p.ViaIRS() != -1 {
			t.Fatal("LOS misreported as IRS")
		}
	}
}

func TestIRSGainMakesWeakCornerViable(t *testing.T) {
	// Without gain, the re-radiation budget (product of distances) is far
	// worse than a specular wall at the same spot; with 30+ dB of surface
	// gain it becomes comparable.
	b := Band28GHz()
	tx := Pose{Pos: Vec2{0, 0}, Facing: 0}
	rx := Pose{Pos: Vec2{10, 0}, Facing: math.Pi}

	passive := NewEnvironment(b)
	passive.IRSs = []IRS{{Pos: Vec2{5, 5}, GainDB: 0}}
	active := NewEnvironment(b)
	active.IRSs = []IRS{{Pos: Vec2{5, 5}, GainDB: 70}}
	wall := NewEnvironment(b, Wall{Seg: Segment{Vec2{-10, 5}, Vec2{20, 5}}, Mat: Metal})

	lossOf := func(e *Environment, refl bool) float64 {
		for _, p := range e.Trace(tx, rx) {
			if (p.Refl > 0) == refl {
				return p.LossDB
			}
		}
		t.Fatal("path not found")
		return 0
	}
	p0 := lossOf(passive, true)
	p70 := lossOf(active, true)
	spec := lossOf(wall, true)
	if p0 < spec+20 {
		t.Fatalf("ungained IRS (%g dB) should be far weaker than a specular wall (%g dB)", p0, spec)
	}
	if math.Abs(p70-(p0-70)) > 1e-9 {
		t.Fatalf("IRS gain not applied: %g vs %g−70", p70, p0)
	}
	// Matching a specular wall over ~7 m legs takes roughly 70 dB of
	// surface gain (thousands of elements) — the classic IRS budget result.
	if math.Abs(p70-spec) > 5 {
		t.Fatalf("70 dB IRS (%g dB) should approach the specular wall (%g dB)", p70, spec)
	}
}

func TestIRSOcclusion(t *testing.T) {
	e := NewEnvironment(Band28GHz())
	e.IRSs = []IRS{{Pos: Vec2{5, 5}, GainDB: 30}}
	// A metal wall between TX and the surface kills the first leg.
	e.Walls = append(e.Walls, Wall{Seg: Segment{Vec2{2, 1}, Vec2{2, 4}}, Mat: Metal})
	for _, p := range e.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{10, 0}, Facing: math.Pi}) {
		if p.ViaIRS() == 0 {
			t.Fatalf("occluded IRS path survived: %+v", p)
		}
	}
}

func TestIRSIdentityDistinctFromWalls(t *testing.T) {
	e := NewEnvironment(Band28GHz(),
		Wall{Seg: Segment{Vec2{-10, 5}, Vec2{20, 5}}, Mat: Metal})
	e.IRSs = []IRS{{Pos: Vec2{4, -3}, GainDB: 30}, {Pos: Vec2{6, -4}, GainDB: 30}}
	paths := e.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{10, 0}, Facing: math.Pi})
	ids := map[int]bool{}
	for _, p := range paths {
		if ids[p.ID()] {
			t.Fatalf("duplicate path ID %d", p.ID())
		}
		ids[p.ID()] = true
	}
	if len(paths) < 4 {
		t.Fatalf("expected LOS + wall + 2 IRS paths, got %d", len(paths))
	}
}
