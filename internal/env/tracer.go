package env

import (
	"fmt"
	"math"
)

// Material describes how a wall interacts with an mmWave signal. Losses are
// in dB of power. Typical mmWave values (paper §3.2 and the measurement
// studies it cites): metal ≈ 1 dB reflection, concrete ≈ 5 dB, tinted glass
// ≈ 6 dB, drywall ≈ 9 dB; transmission through structural walls is 20–40 dB
// (often a complete blockage at the link budget of a directional link).
type Material struct {
	Name       string
	ReflLossDB float64 // power loss on specular reflection
	TransLossD float64 // power loss on transmission through the wall
}

// Standard materials.
var (
	Metal    = Material{Name: "metal", ReflLossDB: 1, TransLossD: 60}
	Concrete = Material{Name: "concrete", ReflLossDB: 5, TransLossD: 40}
	Glass    = Material{Name: "glass", ReflLossDB: 6, TransLossD: 8}
	Drywall  = Material{Name: "drywall", ReflLossDB: 9, TransLossD: 12}
	Wood     = Material{Name: "wood", ReflLossDB: 10, TransLossD: 15}
)

// Wall is a reflective segment in the environment.
type Wall struct {
	Seg Segment
	Mat Material
}

// Pose is the position and broadside orientation of an array. Facing is the
// direction (radians, world frame) the array broadside points toward.
type Pose struct {
	Pos    Vec2
	Facing float64
}

// Path is one propagation path between transmitter and receiver.
type Path struct {
	AoD     float64 // angle of departure relative to TX broadside (radians)
	AoA     float64 // angle of arrival relative to RX broadside (radians)
	Dist    float64 // total traveled distance (m)
	Delay   float64 // time of flight (s)
	LossDB  float64 // total power loss (path loss + reflection + transmission)
	PhasePi bool    // extra π phase flip from an odd number of reflections
	Refl    int     // number of reflections (0 for LOS)
	Via     int     // index of the first reflecting wall, −1 for LOS
	Via2    int     // index of the second reflecting wall, −1 otherwise
}

// ID returns a stable identity key for the path derived from its reflecting
// walls, usable for matching "the same physical path" across re-traces as
// the terminals move.
func (p Path) ID() int {
	return (p.Via+1)*100000 + (p.Via2 + 1)
}

// Amplitude returns the linear field amplitude of the path (10^(−loss/20)).
func (p Path) Amplitude() float64 { return math.Pow(10, -p.LossDB/20) }

// Environment is a set of walls plus a band model.
type Environment struct {
	Walls []Wall
	// IRSs are intelligent reflecting surfaces (engineered reflectors, §8).
	IRSs []IRS
	Band Band
	// FrontHalfOnly drops paths that depart or arrive more than 90° off
	// the respective array broadside (a phased-array panel radiates into a
	// half space). Default true via NewEnvironment.
	FrontHalfOnly bool
	// MaxPaths limits the number of returned paths (strongest first);
	// 0 means no limit.
	MaxPaths int
	// MaxOrder is the highest reflection order traced: 1 (default) for
	// single bounces, 2 adds double bounces via the image-of-image method.
	// Double bounces matter in highly reflective rooms where the paper's
	// angular scans show more than three viable directions.
	MaxOrder int
	// MaxRangeM drops every path whose total traveled distance exceeds it;
	// 0 means unlimited. At metro scale a bounce 500 m away is tens of dB
	// below the noise floor, and a finite range is what lets the spatial
	// index prune reflection candidates to the disk around the tx–rx
	// midpoint (see Index). Enforced identically by the brute-force and
	// indexed tracers.
	MaxRangeM float64

	// idx is the optional spatial index over Walls (see BuildIndex). Nil
	// means brute-force tracing; MMR_TRACER=reference ignores it entirely.
	idx *Index
}

// NewEnvironment returns an environment on the given band with panel
// (front-half-space) arrays.
func NewEnvironment(band Band, walls ...Wall) *Environment {
	return &Environment{Walls: walls, Band: band, FrontHalfOnly: true, MaxOrder: 1}
}

// Trace returns all zero- and first-order propagation paths from tx to rx,
// sorted by increasing loss (strongest first). It never returns an empty,
// non-nil slice: if every path is occluded beyond recovery the result is
// empty.
func (e *Environment) Trace(tx, rx Pose) []Path {
	return e.TraceAppend(nil, tx, rx)
}

// TraceAppend is Trace appending onto dst (usually dst[:0] of a slice kept
// across simulation slots), so per-slot ray tracing reuses one backing
// array instead of growing a fresh one. The appended section is sorted by
// the contractual (LossDB, Via, Via2) ordering (see pathLess) with an
// insertion sort — path counts are single-digit, and it avoids sort.Slice's
// closure and reflect-based swapper on the per-slot path.
func (e *Environment) TraceAppend(dst []Path, tx, rx Pose) []Path {
	return e.traceAppend(nil, dst, tx, rx)
}

// TraceAppendCached is TraceAppend with the enumeration half memoized in tc
// (see TraceCache): the reflection candidate disk and the per-leg occlusion
// candidate sets are reused across calls while their exact revalidation
// tests hold, and only the per-pose solve runs. Output is bit-identical to
// TraceAppend. A nil tc, an environment without an effective spatial index,
// or an unbounded range (MaxRangeM == 0) all fall back to TraceAppend.
func (e *Environment) TraceAppendCached(tc *TraceCache, dst []Path, tx, rx Pose) []Path {
	if tc == nil || e.tracerIndex() == nil || e.MaxRangeM <= 0 {
		return e.TraceAppend(dst, tx, rx)
	}
	return e.traceAppend(tc, dst, tx, rx)
}

func (e *Environment) traceAppend(tc *TraceCache, dst []Path, tx, rx Pose) []Path {
	if tc != nil {
		tc.ensure(e.tracerIndex())
	}
	start := len(dst)
	paths := dst
	// LOS path.
	if p, ok := e.losPath(tc, tx, rx); ok {
		paths = append(paths, p)
	}
	if ix := e.tracerIndex(); ix != nil && e.MaxRangeM > 0 {
		// Indexed reflection enumeration: every wall able to host a
		// reflection point of a path with Dist ≤ MaxRangeM lies within
		// MaxRangeM/2 of the tx–rx midpoint (ellipse containment; the
		// triangle inequality extends the bound to both double-bounce
		// points), so walls outside the disk candidates cannot produce a
		// surviving path and skipping them leaves the path set unchanged.
		// Each distinct path kind carries a distinct (Via, Via2) key, so
		// the contractual sort below erases any generation-order
		// difference versus the brute-force loops.
		mid := Vec2{(tx.Pos.X + rx.Pos.X) / 2, (tx.Pos.Y + rx.Pos.Y) / 2}
		var sc *indexScratch
		var cands []int32
		if tc != nil {
			cands = tc.diskCands(ix, mid, e.MaxRangeM/2)
		} else {
			sc = ix.getScratch()
			cands = ix.diskCandidates(sc, mid, e.MaxRangeM/2)
		}
		for _, wi := range cands {
			if p, ok := e.reflectedPath(tc, tx, rx, int(wi)); ok {
				paths = append(paths, p)
			}
		}
		for i := range e.IRSs {
			if p, ok := e.irsPath(tx, rx, i); ok {
				paths = append(paths, p)
			}
		}
		if e.MaxOrder >= 2 {
			for _, wi := range cands {
				for _, wj := range cands {
					if wi == wj {
						continue
					}
					if p, ok := e.doubleReflectedPath(tx, rx, int(wi), int(wj)); ok {
						paths = append(paths, p)
					}
				}
			}
		}
		if sc != nil {
			ix.putScratch(sc)
		}
	} else {
		// First-order reflections via the image method.
		for wi := range e.Walls {
			if p, ok := e.reflectedPath(nil, tx, rx, wi); ok {
				paths = append(paths, p)
			}
		}
		// Engineered reflections via intelligent reflecting surfaces.
		for i := range e.IRSs {
			if p, ok := e.irsPath(tx, rx, i); ok {
				paths = append(paths, p)
			}
		}
		// Second-order reflections via the image-of-image method.
		if e.MaxOrder >= 2 {
			for wi := range e.Walls {
				for wj := range e.Walls {
					if wi == wj {
						continue
					}
					if p, ok := e.doubleReflectedPath(tx, rx, wi, wj); ok {
						paths = append(paths, p)
					}
				}
			}
		}
	}
	s := paths[start:]
	for i := 1; i < len(s); i++ {
		p := s[i]
		j := i - 1
		for j >= 0 && pathLess(p, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = p
	}
	if e.MaxPaths > 0 && len(s) > e.MaxPaths {
		paths = paths[:start+e.MaxPaths]
	}
	return paths
}

// pathLess is the contractual path ordering: increasing loss, with exact
// loss ties broken by the (Via, Via2) identity key. The tie-break matters
// under MaxPaths truncation — symmetric scenes produce bit-identical losses
// on mirror-image paths, and which one survives the cut must not depend on
// generation or sort-visitation order. Any alternative tracer (the spatial-
// indexed one in particular) must reproduce this ordering exactly.
func pathLess(a, b Path) bool {
	if a.LossDB != b.LossDB {
		return a.LossDB < b.LossDB
	}
	if a.Via != b.Via {
		return a.Via < b.Via
	}
	return a.Via2 < b.Via2
}

// occlusion routes a leg's transmission-loss walk through the trace cache
// when one is active; legKey identifies the leg's slot in the cache (0 for
// LOS, 1+2·wi / 2+2·wi for the legs of the reflection off wall wi).
func (e *Environment) occlusion(tc *TraceCache, legKey int, leg Segment, skip1, skip2 int) (float64, bool) {
	if tc != nil {
		return tc.occlusion(e, legKey, leg, skip1, skip2)
	}
	return e.transmissionLoss(leg, skip1, skip2)
}

func (e *Environment) losPath(tc *TraceCache, tx, rx Pose) (Path, bool) {
	d := tx.Pos.Dist(rx.Pos)
	if d < 1e-9 || (e.MaxRangeM > 0 && d > e.MaxRangeM) {
		return Path{}, false
	}
	leg := Segment{tx.Pos, rx.Pos}
	trans, blockedEntirely := e.occlusion(tc, 0, leg, -1, -1)
	if blockedEntirely {
		return Path{}, false
	}
	p := Path{
		AoD:    relAngle(rx.Pos.Sub(tx.Pos), tx.Facing),
		AoA:    relAngle(tx.Pos.Sub(rx.Pos), rx.Facing),
		Dist:   d,
		Delay:  d / SpeedOfLight,
		LossDB: e.Band.PathLossDB(d) + trans,
		Via:    -1,
		Via2:   -1,
	}
	if e.FrontHalfOnly && (math.Abs(p.AoD) > math.Pi/2 || math.Abs(p.AoA) > math.Pi/2) {
		return Path{}, false
	}
	return p, true
}

func (e *Environment) reflectedPath(tc *TraceCache, tx, rx Pose, wi int) (Path, bool) {
	w := e.Walls[wi]
	img := w.Seg.mirror(tx.Pos)
	// The reflected ray exists iff the image→RX segment crosses the wall.
	hit, ok := Segment{img, rx.Pos}.Intersects(w.Seg)
	if !ok {
		return Path{}, false
	}
	d := img.Dist(rx.Pos) // total path length TX→hit→RX
	if d < 1e-9 || (e.MaxRangeM > 0 && d > e.MaxRangeM) {
		return Path{}, false
	}
	leg1 := Segment{tx.Pos, hit}
	leg2 := Segment{hit, rx.Pos}
	t1, b1 := e.occlusion(tc, 1+2*wi, leg1, wi, -1)
	if b1 {
		return Path{}, false
	}
	t2, b2 := e.occlusion(tc, 2+2*wi, leg2, wi, -1)
	if b2 {
		return Path{}, false
	}
	p := Path{
		AoD:     relAngle(hit.Sub(tx.Pos), tx.Facing),
		AoA:     relAngle(hit.Sub(rx.Pos), rx.Facing),
		Dist:    d,
		Delay:   d / SpeedOfLight,
		LossDB:  e.Band.PathLossDB(d) + w.Mat.ReflLossDB + t1 + t2,
		PhasePi: true,
		Refl:    1,
		Via:     wi,
		Via2:    -1,
	}
	if e.FrontHalfOnly && (math.Abs(p.AoD) > math.Pi/2 || math.Abs(p.AoA) > math.Pi/2) {
		return Path{}, false
	}
	return p, true
}

// doubleReflectedPath traces TX → wall wi → wall wj → RX via the
// image-of-image method: TX's image across wi is mirrored across wj; the
// ray img2→RX must cross wj (at q2), and the ray img1→q2 must cross wi (at
// q1), with every leg checked for occlusion.
func (e *Environment) doubleReflectedPath(tx, rx Pose, wi, wj int) (Path, bool) {
	first, second := e.Walls[wi], e.Walls[wj]
	img1 := first.Seg.mirror(tx.Pos)
	img2 := second.Seg.mirror(img1)
	q2, ok := Segment{img2, rx.Pos}.Intersects(second.Seg)
	if !ok {
		return Path{}, false
	}
	q1, ok := Segment{img1, q2}.Intersects(first.Seg)
	if !ok {
		return Path{}, false
	}
	d := img2.Dist(rx.Pos) // = |TX→q1| + |q1→q2| + |q2→RX|
	if d < 1e-9 || (e.MaxRangeM > 0 && d > e.MaxRangeM) {
		return Path{}, false
	}
	t1, b1 := e.transmissionLoss(Segment{tx.Pos, q1}, wi, -1)
	if b1 {
		return Path{}, false
	}
	t2, b2 := e.transmissionLoss(Segment{q1, q2}, wi, wj)
	if b2 {
		return Path{}, false
	}
	t3, b3 := e.transmissionLoss(Segment{q2, rx.Pos}, wj, -1)
	if b3 {
		return Path{}, false
	}
	p := Path{
		AoD:    relAngle(q1.Sub(tx.Pos), tx.Facing),
		AoA:    relAngle(q2.Sub(rx.Pos), rx.Facing),
		Dist:   d,
		Delay:  d / SpeedOfLight,
		LossDB: e.Band.PathLossDB(d) + first.Mat.ReflLossDB + second.Mat.ReflLossDB + t1 + t2 + t3,
		Refl:   2, // two flips cancel: PhasePi stays false
		Via:    wi,
		Via2:   wj,
	}
	if e.FrontHalfOnly && (math.Abs(p.AoD) > math.Pi/2 || math.Abs(p.AoA) > math.Pi/2) {
		return Path{}, false
	}
	return p, true
}

// transmissionLoss accumulates through-wall loss along a leg, skipping up
// to two wall indices (the reflecting wall for each endpoint). It reports
// blocked=true when accumulated transmission loss exceeds 50 dB, at which
// point the path is useless for a directional link. With a spatial index
// present it tests only the walls near the leg; the candidates arrive
// deduplicated and sorted ascending, so the accumulation order — and
// therefore the floating-point sum and the wall that trips the hard-block
// early exit — matches the brute-force walk bit for bit.
func (e *Environment) transmissionLoss(leg Segment, skip1, skip2 int) (lossDB float64, blocked bool) {
	const hardBlockDB = 50
	if ix := e.tracerIndex(); ix != nil {
		sc := ix.getScratch()
		lossDB, blocked = e.transmissionLossOver(ix.legCandidates(sc, leg), leg, skip1, skip2)
		ix.putScratch(sc)
		return lossDB, blocked
	}
	for i, w := range e.Walls {
		if i == skip1 || i == skip2 {
			continue
		}
		pt, ok := leg.Intersects(w.Seg)
		if !ok {
			continue
		}
		// Ignore grazing contact at the leg endpoints (shared corners).
		if pt.Dist(leg.A) < 1e-9 || pt.Dist(leg.B) < 1e-9 {
			continue
		}
		lossDB += w.Mat.TransLossD
		if lossDB >= hardBlockDB {
			return lossDB, true
		}
	}
	return lossDB, false
}

// transmissionLossOver is the accumulation loop of transmissionLoss over an
// explicit ascending-sorted candidate list. Because only walls that actually
// intersect the leg (away from its endpoints) contribute, running it over
// any ascending superset of the intersecting walls — legCandidates' band,
// or a TraceCache's padded set — produces the same floating-point sum and
// trips the hard-block exit on the same wall, bit for bit.
func (e *Environment) transmissionLossOver(cands []int32, leg Segment, skip1, skip2 int) (lossDB float64, blocked bool) {
	const hardBlockDB = 50
	for _, wi := range cands {
		i := int(wi)
		if i == skip1 || i == skip2 {
			continue
		}
		w := e.Walls[i]
		pt, ok := leg.Intersects(w.Seg)
		if !ok {
			continue
		}
		// Ignore grazing contact at the leg endpoints (shared corners).
		if pt.Dist(leg.A) < 1e-9 || pt.Dist(leg.B) < 1e-9 {
			continue
		}
		lossDB += w.Mat.TransLossD
		if lossDB >= hardBlockDB {
			return lossDB, true
		}
	}
	return lossDB, false
}

// String implements fmt.Stringer for debugging.
func (p Path) String() string {
	kind := "LOS"
	if p.Refl > 0 {
		kind = fmt.Sprintf("refl(wall %d)", p.Via)
	}
	return fmt.Sprintf("%s AoD=%.1f° AoA=%.1f° d=%.2fm loss=%.1fdB",
		kind, p.AoD*180/math.Pi, p.AoA*180/math.Pi, p.Dist, p.LossDB)
}
