package env

import (
	"math"
	"math/rand"
)

// ConferenceRoom builds the paper's indoor scenario: a 7 m × 10 m room with
// reflective glass walls, a whiteboard (metal-backed) on one side, and
// wooden furniture along another. The gNB sits near one short wall facing
// into the room.
func ConferenceRoom(band Band) *Environment {
	const w, l = 7.0, 10.0
	walls := []Wall{
		{Seg: Segment{Vec2{0, 0}, Vec2{l, 0}}, Mat: Glass},   // south glass wall
		{Seg: Segment{Vec2{l, 0}, Vec2{l, w}}, Mat: Drywall}, // east wall
		{Seg: Segment{Vec2{l, w}, Vec2{0, w}}, Mat: Glass},   // north glass wall
		{Seg: Segment{Vec2{0, w}, Vec2{0, 0}}, Mat: Drywall}, // west wall
		// Metal-backed whiteboard mounted just in front of the north wall:
		// a strong reflector that also shadows the glass behind it, so the
		// two reflections never coincide in delay.
		{Seg: Segment{Vec2{2.5, w - 0.1}, Vec2{5.5, w - 0.1}}, Mat: Metal},
		{Seg: Segment{Vec2{7.5, 0.4}, Vec2{9.5, 0.4}}, Mat: Wood}, // furniture row
	}
	return NewEnvironment(band, walls...)
}

// OutdoorStreet builds the paper's outdoor scenario: an open link of up to
// 80 m running alongside a large building with glass walls, plus a metal
// fixture (parked vehicles / lamp posts) on the opposite side.
func OutdoorStreet(band Band) *Environment {
	walls := []Wall{
		{Seg: Segment{Vec2{-5, 12}, Vec2{90, 12}}, Mat: Glass},      // building facade
		{Seg: Segment{Vec2{20, -8}, Vec2{45, -8}}, Mat: Metal},      // metal fixture
		{Seg: Segment{Vec2{60, -10}, Vec2{85, -10}}, Mat: Concrete}, // low concrete wall
	}
	return NewEnvironment(band, walls...)
}

// GNBPose returns the canonical gNB placement for the built-in scenes:
// the conference room gNB sits at (0.5, 3.5) facing +x; the street gNB at
// the origin facing +x.
func GNBPose(indoor bool) Pose {
	if indoor {
		return Pose{Pos: Vec2{0.5, 3.5}, Facing: 0}
	}
	return Pose{Pos: Vec2{0, 0}, Facing: 0}
}

// RandomIndoor generates a randomized rectangular room (substituting for
// the paper's many indoor measurement locations): room dimensions 5–12 m,
// random wall materials, and one or two interior reflectors. The gNB is
// placed near a wall; rng drives all choices.
func RandomIndoor(rng *rand.Rand, band Band) (*Environment, Pose) {
	l := 5 + 7*rng.Float64()
	w := 4 + 5*rng.Float64()
	// Office interiors are dominated by strong specular reflectors (glass
	// walls, whiteboards, metal cabinets) — the paper's indoor median
	// relative attenuation is only 7.2 dB.
	mats := []Material{Glass, Glass, Metal, Concrete, Drywall}
	pick := func() Material { return mats[rng.Intn(len(mats))] }
	walls := []Wall{
		{Seg: Segment{Vec2{0, 0}, Vec2{l, 0}}, Mat: pick()},
		{Seg: Segment{Vec2{l, 0}, Vec2{l, w}}, Mat: pick()},
		{Seg: Segment{Vec2{l, w}, Vec2{0, w}}, Mat: pick()},
		{Seg: Segment{Vec2{0, w}, Vec2{0, 0}}, Mat: pick()},
	}
	for extra := 0; extra < rng.Intn(3); extra++ {
		x := 1 + (l-2)*rng.Float64()
		y := 0.3 + (w-0.6)*rng.Float64()
		span := 1 + 2*rng.Float64()
		walls = append(walls, Wall{
			Seg: Segment{Vec2{x, y}, Vec2{math.Min(x+span, l-0.2), y}},
			Mat: pick(),
		})
	}
	gnb := Pose{Pos: Vec2{0.4, w / 2}, Facing: 0}
	return NewEnvironment(band, walls...), gnb
}

// RandomOutdoor generates a randomized street-canyon scenario: link length
// 10–80 m with one or two building facades at random offsets and materials.
func RandomOutdoor(rng *rand.Rand, band Band) (*Environment, Pose) {
	span := 100.0
	mats := []Material{Glass, Concrete, Metal}
	pick := func() Material { return mats[rng.Intn(len(mats))] }
	off1 := 8 + 12*rng.Float64()
	walls := []Wall{
		{Seg: Segment{Vec2{-5, off1}, Vec2{span, off1}}, Mat: pick()},
	}
	if rng.Float64() < 0.7 {
		off2 := -(6 + 10*rng.Float64())
		a := 10 + 30*rng.Float64()
		b := a + 20 + 30*rng.Float64()
		walls = append(walls, Wall{Seg: Segment{Vec2{a, off2}, Vec2{b, off2}}, Mat: pick()})
	}
	gnb := Pose{Pos: Vec2{0, 0}, Facing: 0}
	return NewEnvironment(band, walls...), gnb
}

// FacingFrom returns the facing angle for an array at pos pointing its
// broadside at target.
func FacingFrom(pos, target Vec2) float64 {
	return target.Sub(pos).Angle()
}

// MultiCellHall builds the multi-cell indoor deployment scene: a 20 m × 12 m
// exhibition-hall room with glass long walls and a couple of interior
// reflectors, and `cells` gNBs mounted alternately on the south and north
// walls, evenly spread along the hall's length, each facing the hall centre.
// Every gNB sees most of the floor directly, and any interior point is
// within ≈12 m of at least two gNBs once cells ≥ 2 — the geometry a
// cooperating cluster needs for make-before-break handover. Interior
// reflectors are deliberately low-transmission-loss materials (glass, wood)
// so no floor position is in a dead shadow of every cell. Deterministic:
// no randomness, so every caller with the same (band, cells) gets an
// identical scene. Panics if cells < 1.
func MultiCellHall(band Band, cells int) (*Environment, []Pose) {
	if cells < 1 {
		panic("env: MultiCellHall cells < 1")
	}
	const l, w = 20.0, 12.0
	walls := []Wall{
		{Seg: Segment{Vec2{0, 0}, Vec2{l, 0}}, Mat: Glass},      // south glass wall
		{Seg: Segment{Vec2{l, 0}, Vec2{l, w}}, Mat: Concrete},   // east wall
		{Seg: Segment{Vec2{l, w}, Vec2{0, w}}, Mat: Glass},      // north glass wall
		{Seg: Segment{Vec2{0, w}, Vec2{0, 0}}, Mat: Drywall},    // west wall
		{Seg: Segment{Vec2{4, 7.8}, Vec2{9, 7.8}}, Mat: Glass},  // glass partition
		{Seg: Segment{Vec2{12, 4.2}, Vec2{16, 4.2}}, Mat: Wood}, // wooden display row
	}
	e := NewEnvironment(band, walls...)
	center := Vec2{l / 2, w / 2}
	poses := make([]Pose, cells)
	for i := range poses {
		x := l * (float64(i) + 0.5) / float64(cells)
		y := 0.4
		if i%2 == 1 {
			y = w - 0.4
		}
		p := Vec2{x, y}
		poses[i] = Pose{Pos: p, Facing: FacingFrom(p, center)}
	}
	return e, poses
}

// HallUEPositions returns n deterministic UE drop positions inside the
// MultiCellHall floor: a near-square lattice with a 2 m margin from every
// wall, filled row-major. The lattice pitch shrinks as n grows, so any UE
// count fits; positions are a pure function of (i, n), which is what keeps
// multi-worker cluster runs byte-identical.
func HallUEPositions(n int) []Vec2 {
	if n < 1 {
		return nil
	}
	const l, w, margin = 20.0, 12.0, 2.0
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	pos := make([]Vec2, n)
	for i := range pos {
		r, c := i/cols, i%cols
		fx, fy := 0.5, 0.5
		if cols > 1 {
			fx = float64(c) / float64(cols-1)
		}
		if rows > 1 {
			fy = float64(r) / float64(rows-1)
		}
		pos[i] = Vec2{margin + (l-2*margin)*fx, margin + (w-2*margin)*fy}
	}
	return pos
}

// MultiCellStreet builds the multi-cell outdoor deployment scene: the
// OutdoorStreet canyon with `cells` gNBs lamppost-mounted along the south
// kerb every span/cells metres, each with its panel broadside facing
// across the street (+y), so consecutive cells' coverage areas overlap by
// roughly half a cell radius. Deterministic. Panics if cells < 1.
func MultiCellStreet(band Band, cells int) (*Environment, []Pose) {
	if cells < 1 {
		panic("env: MultiCellStreet cells < 1")
	}
	e := OutdoorStreet(band)
	const span = 90.0
	poses := make([]Pose, cells)
	for i := range poses {
		x := span * (float64(i) + 0.5) / float64(cells)
		p := Vec2{x, 0}
		poses[i] = Pose{Pos: p, Facing: FacingFrom(p, Vec2{x, 12})}
	}
	return e, poses
}

// MetroGrid builds the city-scale Manhattan deployment scene: a blocks ×
// blocks grid of square concrete/glass buildings separated by street
// canyons, with a gNB lamppost-mounted at every street intersection facing
// down a street. The scene is what the metro layer shards across cells:
// blocks=8 already means 256 walls, which is where the spatial index earns
// its keep — the constructor therefore builds the index and sets a finite
// MaxRangeM (no mmWave link survives a multi-block bounce) and MaxPaths.
// Deterministic: a pure function of (band, blocks). Panics if blocks < 1.
//
// Geometry: buildings are building×building squares on a pitch of
// building+street, with streets street metres wide; intersection i of the
// (blocks+1)² lattice carries gNB i. UE drops come from MetroUEPositions,
// which keeps UEs in the streets.
func MetroGrid(band Band, blocks int) (*Environment, []Pose) {
	if blocks < 1 {
		panic("env: MetroGrid blocks < 1")
	}
	const (
		building = 20.0
		street   = 12.0
		pitch    = building + street
	)
	e := NewEnvironment(band)
	for by := 0; by < blocks; by++ {
		for bx := 0; bx < blocks; bx++ {
			x0 := street + float64(bx)*pitch
			y0 := street + float64(by)*pitch
			x1, y1 := x0+building, y0+building
			mat := Concrete
			if (bx+by)%3 == 2 {
				mat = Glass // every third block is a glass-façade tower
			}
			e.Walls = append(e.Walls,
				Wall{Seg: Segment{Vec2{x0, y0}, Vec2{x1, y0}}, Mat: mat},
				Wall{Seg: Segment{Vec2{x1, y0}, Vec2{x1, y1}}, Mat: mat},
				Wall{Seg: Segment{Vec2{x1, y1}, Vec2{x0, y1}}, Mat: mat},
				Wall{Seg: Segment{Vec2{x0, y1}, Vec2{x0, y0}}, Mat: mat},
			)
		}
	}
	// Street-canyon link budget: anything beyond about three blocks of
	// travel (including bounces) is unusable, and the finite range is what
	// arms the index's reflection-candidate pruning.
	e.MaxRangeM = 3 * pitch
	e.MaxPaths = 4
	e.BuildIndex()
	poses := make([]Pose, 0, (blocks+1)*(blocks+1))
	facings := [4]float64{0, math.Pi / 2, math.Pi, -math.Pi / 2}
	for iy := 0; iy <= blocks; iy++ {
		for ix := 0; ix <= blocks; ix++ {
			p := Vec2{street/2 + float64(ix)*pitch, street/2 + float64(iy)*pitch}
			poses = append(poses, Pose{Pos: p, Facing: facings[(ix+iy)%4]})
		}
	}
	return e, poses
}

// MetroUEPositions returns n deterministic UE drop positions in the street
// grid of MetroGrid(_, blocks): positions walk the horizontal street
// centrelines on a fixed pitch, row-major, wrapping around the scene as i
// grows. A pure function of (i, n, blocks), which is what keeps sharded
// metro runs byte-identical at any worker count.
func MetroUEPositions(n, blocks int) []Vec2 {
	if n < 1 {
		return nil
	}
	const (
		building = 20.0
		street   = 12.0
		pitch    = building + street
	)
	extent := street + float64(blocks)*pitch
	// Drop points every stepX metres along each horizontal street's
	// centreline; streets are visited round-robin so any n spreads over
	// the whole grid.
	perStreet := int(extent / 4)
	streets := blocks + 1
	pos := make([]Vec2, n)
	for i := range pos {
		s := i % streets
		k := (i / streets) % perStreet
		y := street/2 + float64(s)*pitch
		x := 2 + float64(k)*4 + float64((i/(streets*perStreet))%4) // wrap shifts by 1 m
		pos[i] = Vec2{x, y}
	}
	return pos
}
