package env

import (
	"math"
	"math/rand"
)

// ConferenceRoom builds the paper's indoor scenario: a 7 m × 10 m room with
// reflective glass walls, a whiteboard (metal-backed) on one side, and
// wooden furniture along another. The gNB sits near one short wall facing
// into the room.
func ConferenceRoom(band Band) *Environment {
	const w, l = 7.0, 10.0
	walls := []Wall{
		{Seg: Segment{Vec2{0, 0}, Vec2{l, 0}}, Mat: Glass},   // south glass wall
		{Seg: Segment{Vec2{l, 0}, Vec2{l, w}}, Mat: Drywall}, // east wall
		{Seg: Segment{Vec2{l, w}, Vec2{0, w}}, Mat: Glass},   // north glass wall
		{Seg: Segment{Vec2{0, w}, Vec2{0, 0}}, Mat: Drywall}, // west wall
		// Metal-backed whiteboard mounted just in front of the north wall:
		// a strong reflector that also shadows the glass behind it, so the
		// two reflections never coincide in delay.
		{Seg: Segment{Vec2{2.5, w - 0.1}, Vec2{5.5, w - 0.1}}, Mat: Metal},
		{Seg: Segment{Vec2{7.5, 0.4}, Vec2{9.5, 0.4}}, Mat: Wood}, // furniture row
	}
	return NewEnvironment(band, walls...)
}

// OutdoorStreet builds the paper's outdoor scenario: an open link of up to
// 80 m running alongside a large building with glass walls, plus a metal
// fixture (parked vehicles / lamp posts) on the opposite side.
func OutdoorStreet(band Band) *Environment {
	walls := []Wall{
		{Seg: Segment{Vec2{-5, 12}, Vec2{90, 12}}, Mat: Glass},      // building facade
		{Seg: Segment{Vec2{20, -8}, Vec2{45, -8}}, Mat: Metal},      // metal fixture
		{Seg: Segment{Vec2{60, -10}, Vec2{85, -10}}, Mat: Concrete}, // low concrete wall
	}
	return NewEnvironment(band, walls...)
}

// GNBPose returns the canonical gNB placement for the built-in scenes:
// the conference room gNB sits at (0.5, 3.5) facing +x; the street gNB at
// the origin facing +x.
func GNBPose(indoor bool) Pose {
	if indoor {
		return Pose{Pos: Vec2{0.5, 3.5}, Facing: 0}
	}
	return Pose{Pos: Vec2{0, 0}, Facing: 0}
}

// RandomIndoor generates a randomized rectangular room (substituting for
// the paper's many indoor measurement locations): room dimensions 5–12 m,
// random wall materials, and one or two interior reflectors. The gNB is
// placed near a wall; rng drives all choices.
func RandomIndoor(rng *rand.Rand, band Band) (*Environment, Pose) {
	l := 5 + 7*rng.Float64()
	w := 4 + 5*rng.Float64()
	// Office interiors are dominated by strong specular reflectors (glass
	// walls, whiteboards, metal cabinets) — the paper's indoor median
	// relative attenuation is only 7.2 dB.
	mats := []Material{Glass, Glass, Metal, Concrete, Drywall}
	pick := func() Material { return mats[rng.Intn(len(mats))] }
	walls := []Wall{
		{Seg: Segment{Vec2{0, 0}, Vec2{l, 0}}, Mat: pick()},
		{Seg: Segment{Vec2{l, 0}, Vec2{l, w}}, Mat: pick()},
		{Seg: Segment{Vec2{l, w}, Vec2{0, w}}, Mat: pick()},
		{Seg: Segment{Vec2{0, w}, Vec2{0, 0}}, Mat: pick()},
	}
	for extra := 0; extra < rng.Intn(3); extra++ {
		x := 1 + (l-2)*rng.Float64()
		y := 0.3 + (w-0.6)*rng.Float64()
		span := 1 + 2*rng.Float64()
		walls = append(walls, Wall{
			Seg: Segment{Vec2{x, y}, Vec2{math.Min(x+span, l-0.2), y}},
			Mat: pick(),
		})
	}
	gnb := Pose{Pos: Vec2{0.4, w / 2}, Facing: 0}
	return NewEnvironment(band, walls...), gnb
}

// RandomOutdoor generates a randomized street-canyon scenario: link length
// 10–80 m with one or two building facades at random offsets and materials.
func RandomOutdoor(rng *rand.Rand, band Band) (*Environment, Pose) {
	span := 100.0
	mats := []Material{Glass, Concrete, Metal}
	pick := func() Material { return mats[rng.Intn(len(mats))] }
	off1 := 8 + 12*rng.Float64()
	walls := []Wall{
		{Seg: Segment{Vec2{-5, off1}, Vec2{span, off1}}, Mat: pick()},
	}
	if rng.Float64() < 0.7 {
		off2 := -(6 + 10*rng.Float64())
		a := 10 + 30*rng.Float64()
		b := a + 20 + 30*rng.Float64()
		walls = append(walls, Wall{Seg: Segment{Vec2{a, off2}, Vec2{b, off2}}, Mat: pick()})
	}
	gnb := Pose{Pos: Vec2{0, 0}, Facing: 0}
	return NewEnvironment(band, walls...), gnb
}

// FacingFrom returns the facing angle for an array at pos pointing its
// broadside at target.
func FacingFrom(pos, target Vec2) float64 {
	return target.Sub(pos).Angle()
}
