package env

import (
	"math"
	"math/rand"
	"testing"
)

func TestVec2Ops(t *testing.T) {
	a := Vec2{3, 4}
	if a.Norm() != 5 {
		t.Fatalf("Norm = %g", a.Norm())
	}
	if got := a.Add(Vec2{1, -1}); got != (Vec2{4, 3}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(Vec2{3, 4}); got != (Vec2{0, 0}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(Vec2{1, 1}); got != 7 {
		t.Fatalf("Dot = %g", got)
	}
	if got := (Vec2{1, 0}).Cross(Vec2{0, 1}); got != 1 {
		t.Fatalf("Cross = %g", got)
	}
	if got := (Vec2{0, 2}).Angle(); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("Angle = %g", got)
	}
	if got := a.Dist(Vec2{0, 0}); got != 5 {
		t.Fatalf("Dist = %g", got)
	}
}

func TestSegmentIntersection(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{2, 2}}
	o := Segment{Vec2{0, 2}, Vec2{2, 0}}
	pt, ok := s.Intersects(o)
	if !ok || pt.Dist(Vec2{1, 1}) > 1e-12 {
		t.Fatalf("intersection = %v ok=%v", pt, ok)
	}
	// Parallel segments don't cross.
	if _, ok := s.Intersects(Segment{Vec2{0, 1}, Vec2{2, 3}}); ok {
		t.Fatal("parallel segments should not intersect")
	}
	// Disjoint segments.
	if _, ok := s.Intersects(Segment{Vec2{5, 0}, Vec2{5, 1}}); ok {
		t.Fatal("disjoint segments should not intersect")
	}
}

func TestMirror(t *testing.T) {
	// Mirror across the x-axis.
	s := Segment{Vec2{0, 0}, Vec2{10, 0}}
	got := s.mirror(Vec2{3, 4})
	if got.Dist(Vec2{3, -4}) > 1e-12 {
		t.Fatalf("mirror = %v", got)
	}
	// Mirror across a vertical line x=2.
	v := Segment{Vec2{2, -1}, Vec2{2, 5}}
	got = v.mirror(Vec2{0, 1})
	if got.Dist(Vec2{4, 1}) > 1e-12 {
		t.Fatalf("mirror = %v", got)
	}
}

func TestBandConstants(t *testing.T) {
	b28, b60 := Band28GHz(), Band60GHz()
	if math.Abs(b28.Lambda()-0.0107) > 1e-3 {
		t.Fatalf("28 GHz λ = %g", b28.Lambda())
	}
	// FSPL at 10 m, 28 GHz ≈ 81.4 dB.
	if got := b28.FSPLdB(10); math.Abs(got-81.4) > 0.5 {
		t.Fatalf("FSPL(10m, 28GHz) = %g", got)
	}
	// 60 GHz loses ≈ 6.6 dB more in free space at equal distance.
	diff := b60.FSPLdB(10) - b28.FSPLdB(10)
	if math.Abs(diff-6.62) > 0.1 {
		t.Fatalf("60−28 GHz FSPL gap = %g", diff)
	}
	// Absorption matters at long range for 60 GHz.
	if b60.PathLossDB(500)-b60.FSPLdB(500) < 7 {
		t.Fatal("60 GHz absorption too small at 500 m")
	}
	if b28.PathLossDB(500)-b28.FSPLdB(500) > 0.1 {
		t.Fatal("28 GHz absorption should be negligible")
	}
	if b28.FSPLdB(0) != 0 {
		t.Fatal("FSPL at d=0 should be 0 by convention")
	}
	// Amplitude is the square root of the power loss.
	amp := b28.PathAmplitude(10)
	if math.Abs(-20*math.Log10(amp)-b28.PathLossDB(10)) > 1e-9 {
		t.Fatal("PathAmplitude inconsistent with PathLossDB")
	}
}

func TestLOSTrace(t *testing.T) {
	e := NewEnvironment(Band28GHz())
	tx := Pose{Pos: Vec2{0, 0}, Facing: 0}
	rx := Pose{Pos: Vec2{10, 0}, Facing: math.Pi}
	paths := e.Trace(tx, rx)
	if len(paths) != 1 {
		t.Fatalf("expected 1 LOS path, got %d", len(paths))
	}
	p := paths[0]
	if p.Refl != 0 || p.Via != -1 {
		t.Fatalf("not LOS: %+v", p)
	}
	if math.Abs(p.AoD) > 1e-12 || math.Abs(p.AoA) > 1e-12 {
		t.Fatalf("angles: AoD=%g AoA=%g", p.AoD, p.AoA)
	}
	if math.Abs(p.Dist-10) > 1e-12 {
		t.Fatalf("dist = %g", p.Dist)
	}
	if math.Abs(p.Delay-10/SpeedOfLight) > 1e-18 {
		t.Fatalf("delay = %g", p.Delay)
	}
	if math.Abs(p.LossDB-Band28GHz().PathLossDB(10)) > 1e-9 {
		t.Fatalf("loss = %g", p.LossDB)
	}
}

func TestReflectedPathGeometry(t *testing.T) {
	// Wall along y=5: TX (0,0), RX (10,0). Image of TX is (0,10); the
	// reflection point is (5,5); path length = |(0,10)-(10,0)| = √200.
	wall := Wall{Seg: Segment{Vec2{-20, 5}, Vec2{30, 5}}, Mat: Metal}
	e := NewEnvironment(Band28GHz(), wall)
	tx := Pose{Pos: Vec2{0, 0}, Facing: 0}
	rx := Pose{Pos: Vec2{10, 0}, Facing: math.Pi}
	paths := e.Trace(tx, rx)
	if len(paths) != 2 {
		t.Fatalf("expected LOS + 1 reflection, got %d: %v", len(paths), paths)
	}
	// Strongest first: LOS (no reflection loss, shorter) then reflection.
	if paths[0].Refl != 0 || paths[1].Refl != 1 {
		t.Fatalf("ordering wrong: %v", paths)
	}
	r := paths[1]
	wantDist := math.Sqrt(200)
	if math.Abs(r.Dist-wantDist) > 1e-9 {
		t.Fatalf("reflected dist = %g want %g", r.Dist, wantDist)
	}
	// AoD: toward (5,5) from (0,0) = 45°.
	if math.Abs(r.AoD-math.Pi/4) > 1e-9 {
		t.Fatalf("AoD = %g", r.AoD)
	}
	// AoA relative to RX facing π: direction to (5,5) from (10,0) is 135°,
	// relative angle = 135° − 180° = −45°.
	if math.Abs(r.AoA+math.Pi/4) > 1e-9 {
		t.Fatalf("AoA = %g", r.AoA)
	}
	if !r.PhasePi {
		t.Fatal("single reflection should flip phase")
	}
	wantLoss := Band28GHz().PathLossDB(wantDist) + Metal.ReflLossDB
	if math.Abs(r.LossDB-wantLoss) > 1e-9 {
		t.Fatalf("loss = %g want %g", r.LossDB, wantLoss)
	}
}

func TestNoReflectionWhenHitPointOffWall(t *testing.T) {
	// Short wall far to the side: the mirror ray misses the segment.
	wall := Wall{Seg: Segment{Vec2{-30, 5}, Vec2{-25, 5}}, Mat: Metal}
	e := NewEnvironment(Band28GHz(), wall)
	paths := e.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{10, 0}, Facing: math.Pi})
	for _, p := range paths {
		if p.Refl != 0 {
			t.Fatalf("unexpected reflection: %v", p)
		}
	}
}

func TestBlockedLOS(t *testing.T) {
	// A concrete wall (40 dB transmission) straight across the LOS blocks it.
	block := Wall{Seg: Segment{Vec2{5, -2}, Vec2{5, 2}}, Mat: Concrete}
	mirror := Wall{Seg: Segment{Vec2{-20, 5}, Vec2{30, 5}}, Mat: Metal}
	e := NewEnvironment(Band28GHz(), block, mirror)
	paths := e.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{10, 0}, Facing: math.Pi})
	// LOS passes through 40 dB of concrete and survives as a weak path
	// (40 < 50 dB hard block), but must now be weaker than the reflection.
	if len(paths) < 2 {
		t.Fatalf("paths: %v", paths)
	}
	if paths[0].Refl != 1 {
		t.Fatalf("reflection should now be strongest: %v", paths)
	}
	// Glass blocker only adds 8 dB; the LOS survives (possibly no longer
	// strongest, since the metal reflection loses just 1 dB + extra FSPL).
	e2 := NewEnvironment(Band28GHz(),
		Wall{Seg: Segment{Vec2{5, -2}, Vec2{5, 2}}, Mat: Glass}, mirror)
	paths2 := e2.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{10, 0}, Facing: math.Pi})
	losSurvives := false
	for _, p := range paths2 {
		if p.Refl == 0 {
			losSurvives = true
			wantLoss := Band28GHz().PathLossDB(10) + Glass.TransLossD
			if math.Abs(p.LossDB-wantLoss) > 1e-9 {
				t.Fatalf("glass-blocked LOS loss %g want %g", p.LossDB, wantLoss)
			}
		}
	}
	if !losSurvives {
		t.Fatalf("LOS through glass should survive: %v", paths2)
	}
	// Metal blocker (60 dB) kills the LOS entirely.
	e3 := NewEnvironment(Band28GHz(),
		Wall{Seg: Segment{Vec2{5, -2}, Vec2{5, 2}}, Mat: Metal}, mirror)
	for _, p := range e3.Trace(Pose{Pos: Vec2{0, 0}}, Pose{Pos: Vec2{10, 0}, Facing: math.Pi}) {
		if p.Refl == 0 {
			t.Fatalf("LOS through metal should be dropped: %v", p)
		}
	}
}

func TestFrontHalfFilter(t *testing.T) {
	e := NewEnvironment(Band28GHz())
	// RX behind the TX broadside (facing +x, RX at −x).
	paths := e.Trace(Pose{Pos: Vec2{0, 0}, Facing: 0}, Pose{Pos: Vec2{-10, 0}, Facing: 0})
	if len(paths) != 0 {
		t.Fatalf("back-lobe path not filtered: %v", paths)
	}
	e.FrontHalfOnly = false
	paths = e.Trace(Pose{Pos: Vec2{0, 0}, Facing: 0}, Pose{Pos: Vec2{-10, 0}, Facing: 0})
	if len(paths) != 1 {
		t.Fatalf("full-sphere trace missing path: %v", paths)
	}
}

func TestMaxPathsCap(t *testing.T) {
	e := ConferenceRoom(Band28GHz())
	tx := GNBPose(true)
	rx := Pose{Pos: Vec2{7, 3.5}, Facing: math.Pi}
	all := e.Trace(tx, rx)
	if len(all) < 3 {
		t.Fatalf("conference room should give ≥3 paths, got %d", len(all))
	}
	e.MaxPaths = 2
	capped := e.Trace(tx, rx)
	if len(capped) != 2 {
		t.Fatalf("MaxPaths not applied: %d", len(capped))
	}
	// Capped list keeps the strongest paths.
	if capped[0].LossDB != all[0].LossDB || capped[1].LossDB != all[1].LossDB {
		t.Fatal("cap kept the wrong paths")
	}
}

func TestConferenceRoomScene(t *testing.T) {
	e := ConferenceRoom(Band28GHz())
	tx := GNBPose(true)
	rx := Pose{Pos: Vec2{6.5, 3.5}, Facing: math.Pi}
	paths := e.Trace(tx, rx)
	if len(paths) < 2 {
		t.Fatalf("expected multipath in conference room, got %d paths", len(paths))
	}
	if paths[0].Refl != 0 {
		t.Fatal("LOS should be strongest in open room")
	}
	// Reflected paths should be within ~15 dB of the direct (paper Fig. 4a:
	// common reflectors 1–10 dB relative attenuation).
	rel := paths[1].LossDB - paths[0].LossDB
	if rel < 0.5 || rel > 20 {
		t.Fatalf("relative attenuation %g dB implausible", rel)
	}
}

func TestOutdoorScene(t *testing.T) {
	e := OutdoorStreet(Band28GHz())
	tx := GNBPose(false)
	rx := Pose{Pos: Vec2{60, 0.5}, Facing: math.Pi}
	paths := e.Trace(tx, rx)
	if len(paths) < 2 {
		t.Fatalf("expected building reflection outdoors, got %d", len(paths))
	}
	foundRefl := false
	for _, p := range paths {
		if p.Refl == 1 {
			foundRefl = true
		}
	}
	if !foundRefl {
		t.Fatal("no reflected path from facade")
	}
}

func TestRandomScenesAlwaysViable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		e, gnb := RandomIndoor(rng, Band28GHz())
		// UE somewhere in the room interior facing the gNB.
		uePos := Vec2{2 + 2*rng.Float64(), 1 + 2*rng.Float64()}
		ue := Pose{Pos: uePos, Facing: FacingFrom(uePos, gnb.Pos)}
		paths := e.Trace(gnb, ue)
		if len(paths) == 0 {
			t.Fatalf("trial %d: random indoor scene has no path", trial)
		}
		for _, p := range paths {
			if p.LossDB < 40 || p.LossDB > 200 {
				t.Fatalf("trial %d: implausible loss %g", trial, p.LossDB)
			}
			if p.Delay <= 0 {
				t.Fatalf("trial %d: non-positive delay", trial)
			}
		}
	}
	for trial := 0; trial < 40; trial++ {
		e, gnb := RandomOutdoor(rng, Band28GHz())
		d := 10 + 70*rng.Float64()
		uePos := Vec2{d, -1 + 2*rng.Float64()}
		ue := Pose{Pos: uePos, Facing: FacingFrom(uePos, gnb.Pos)}
		if len(e.Trace(gnb, ue)) == 0 {
			t.Fatalf("trial %d: random outdoor scene has no path", trial)
		}
	}
}

func TestPathStringer(t *testing.T) {
	p := Path{AoD: math.Pi / 6, Dist: 5, LossDB: 80}
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
	r := Path{Refl: 1, Via: 2}
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestFacingFrom(t *testing.T) {
	if got := FacingFrom(Vec2{0, 0}, Vec2{0, 5}); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("FacingFrom = %g", got)
	}
}
