// Package env models 2-D radio environments for the mmReliable simulator:
// walls with per-material reflection/transmission losses, a first-order
// image-method ray tracer, and mmWave band models (28 GHz and 60 GHz free
// space path loss plus atmospheric absorption).
//
// This package substitutes for the paper's physical 28 GHz testbed and for
// the Wireless Insite ray tracer used in its Appendix B: every algorithm
// above consumes only the per-path parameters (angle of departure/arrival,
// delay, amplitude) that this tracer produces.
package env

import "math"

// Vec2 is a point or direction in the 2-D plane (meters).
type Vec2 struct {
	X, Y float64
}

// Add returns v + u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v − u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the dot product v·u.
func (v Vec2) Dot(u Vec2) float64 { return v.X*u.X + v.Y*u.Y }

// Cross returns the 2-D cross product v×u (the z-component).
func (v Vec2) Cross(u Vec2) float64 { return v.X*u.Y - v.Y*u.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Angle returns the direction of v in radians, in (−π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Dist returns the distance between v and u.
func (v Vec2) Dist(u Vec2) float64 { return v.Sub(u).Norm() }

// Segment is a finite line segment between A and B.
type Segment struct {
	A, B Vec2
}

// Len returns the segment length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// intersect returns (t, u, ok): the parametric intersection of segment s
// (parameter t in [0,1]) with segment o (parameter u in [0,1]). ok is false
// for parallel or non-crossing segments.
func (s Segment) intersect(o Segment) (t, u float64, ok bool) {
	r := s.B.Sub(s.A)
	d := o.B.Sub(o.A)
	den := r.Cross(d)
	if math.Abs(den) < 1e-15 {
		return 0, 0, false
	}
	qp := o.A.Sub(s.A)
	t = qp.Cross(d) / den
	u = qp.Cross(r) / den
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return t, u, false
	}
	return t, u, true
}

// Intersects reports whether the two segments cross, and the crossing point.
func (s Segment) Intersects(o Segment) (Vec2, bool) {
	t, _, ok := s.intersect(o)
	if !ok {
		return Vec2{}, false
	}
	return s.A.Add(s.B.Sub(s.A).Scale(t)), true
}

// mirror reflects point p across the infinite line through the segment.
func (s Segment) mirror(p Vec2) Vec2 {
	d := s.B.Sub(s.A)
	n2 := d.Dot(d)
	if n2 == 0 {
		return p
	}
	t := p.Sub(s.A).Dot(d) / n2
	foot := s.A.Add(d.Scale(t))
	return foot.Add(foot.Sub(p))
}

// relAngle returns the angle of direction dir relative to a broadside
// orientation facing, wrapped to (−π, π].
func relAngle(dir Vec2, facing float64) float64 {
	a := dir.Angle() - facing
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
