// Package phasedarray emulates the analog front-end of the paper's testbed:
// a single-RF-chain phased array whose weights are programmed from a
// register bank of stored beams over a slow control bus (≈100 µs per beam
// switch), with quantized phase shifters and attenuators, and with
// multi-beam weights synthesized on the fly as linear combinations of
// stored single beams (§5.1).
//
// The single-RF-chain constraint is the architectural fact that shapes the
// whole paper: the receiver can only ever observe one scalar (the
// superposition of everything the current weights admit), never per-antenna
// or per-beam channels directly.
package phasedarray

import (
	"fmt"
	"math/cmplx"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
)

// DefaultSwitchLatency is the paper's measured beam-programming time over
// the SPI bus (100 µs per beam).
const DefaultSwitchLatency = 100e-6

// FrontEnd emulates one phased-array panel.
type FrontEnd struct {
	Array         *antenna.ULA
	Quant         antenna.Quantizer
	SwitchLatency float64 // seconds per weight reprogram

	regs      map[int]cmx.Vector
	active    cmx.Vector
	busyUntil float64
	switches  int
	// setBufs double-buffer the quantized weights SetWeights programs, so
	// steady-state reprogramming stays off the allocator. Two buffers keep
	// ActiveView's contract intact: a view taken before the latest
	// SetWeights still reads the previous weights, and the documented
	// rule — never retain a view across a switch — covers the rest.
	setBufs [2]cmx.Vector
	setIdx  int
}

// New returns a front end for the given array and quantizer.
func New(arr *antenna.ULA, q antenna.Quantizer) *FrontEnd {
	f := &FrontEnd{
		Array:         arr,
		Quant:         q,
		SwitchLatency: DefaultSwitchLatency,
		regs:          make(map[int]cmx.Vector),
	}
	// Pre-size both weight registers: SetWeights double-buffers through
	// them, and lazy sizing would otherwise charge one allocation to each
	// of the first two weight loads — visible as a late one-time blip in
	// the pinned zero-alloc session loops.
	f.setBufs[0] = make(cmx.Vector, arr.N)
	f.setBufs[1] = make(cmx.Vector, arr.N)
	return f
}

// StoreBeam quantizes w and stores it in register id. Real arrays keep only
// single-beam codebook entries in registers; multi-beams are combined from
// them (see ComposeMultiBeam).
func (f *FrontEnd) StoreBeam(id int, w cmx.Vector) error {
	if len(w) != f.Array.N {
		return fmt.Errorf("phasedarray: weight length %d != %d elements", len(w), f.Array.N)
	}
	f.regs[id] = f.Quant.Apply(w)
	return nil
}

// Beam returns the stored (quantized) weights for register id.
func (f *FrontEnd) Beam(id int) (cmx.Vector, bool) {
	w, ok := f.regs[id]
	if !ok {
		return nil, false
	}
	return w.Clone(), true
}

// NumStored returns the number of occupied registers.
func (f *FrontEnd) NumStored() int { return len(f.regs) }

// SetWeights programs arbitrary weights (quantized on the way in) at time
// now. The array is busy until now + SwitchLatency.
func (f *FrontEnd) SetWeights(w cmx.Vector, now float64) error {
	if len(w) != f.Array.N {
		return fmt.Errorf("phasedarray: weight length %d != %d elements", len(w), f.Array.N)
	}
	buf := f.setBufs[f.setIdx]
	if len(buf) != len(w) {
		buf = make(cmx.Vector, len(w))
	}
	f.setBufs[f.setIdx] = f.Quant.ApplyInto(w, buf)
	f.active = f.setBufs[f.setIdx]
	f.setIdx ^= 1
	f.busyUntil = now + f.SwitchLatency
	f.switches++
	return nil
}

// LoadBeam activates a stored register at time now.
func (f *FrontEnd) LoadBeam(id int, now float64) error {
	w, ok := f.regs[id]
	if !ok {
		return fmt.Errorf("phasedarray: no beam in register %d", id)
	}
	f.active = w
	f.busyUntil = now + f.SwitchLatency
	f.switches++
	return nil
}

// Active returns the currently programmed weights (nil before the first
// SetWeights/LoadBeam).
func (f *FrontEnd) Active() cmx.Vector {
	if f.active == nil {
		return nil
	}
	return f.active.Clone()
}

// ActiveView returns the currently programmed weights WITHOUT copying
// (nil before the first SetWeights/LoadBeam). The returned slice is the
// front end's live state: callers must treat it as read-only and must not
// retain it across the next SetWeights/LoadBeam. The per-slot SNR
// evaluation uses this to avoid one clone per slot; mutating callers use
// Active.
func (f *FrontEnd) ActiveView() cmx.Vector { return f.active }

// Ready reports whether the weight reprogram has settled by time t.
func (f *FrontEnd) Ready(t float64) bool { return t >= f.busyUntil }

// BusyUntil returns the settle deadline of the last switch.
func (f *FrontEnd) BusyUntil() float64 { return f.busyUntil }

// Switches returns the number of weight programs since creation, for
// overhead accounting.
func (f *FrontEnd) Switches() int { return f.switches }

// ComposeMultiBeam builds constructive multi-beam weights from stored
// registers: w = Σ_k coeff[k]·regs[ids[k]], normalized to unit norm, then
// quantized. This mirrors the paper's FPGA implementation, which stores
// only single-beam weights and synthesizes multi-beams by addition and
// multiplication (§5.1).
func (f *FrontEnd) ComposeMultiBeam(ids []int, coeffs []complex128) (cmx.Vector, error) {
	if len(ids) != len(coeffs) {
		return nil, fmt.Errorf("phasedarray: %d ids vs %d coefficients", len(ids), len(coeffs))
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("phasedarray: empty multi-beam")
	}
	sum := cmx.NewVector(f.Array.N)
	for k, id := range ids {
		w, ok := f.regs[id]
		if !ok {
			return nil, fmt.Errorf("phasedarray: no beam in register %d", id)
		}
		sum.AddScaled(coeffs[k], w)
	}
	if sum.Norm() == 0 {
		return nil, fmt.Errorf("phasedarray: multi-beam coefficients cancel")
	}
	return f.Quant.Apply(sum.Normalize()), nil
}

// TRP returns the total radiated power factor ‖w‖² of the active weights
// (1.0 when a beam is loaded, by construction).
func (f *FrontEnd) TRP() float64 {
	if f.active == nil {
		return 0
	}
	var s float64
	for _, x := range f.active {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return s
}

// PhaseAt returns the phase programmed on element n of the active weights.
func (f *FrontEnd) PhaseAt(n int) float64 {
	return cmplx.Phase(f.active[n])
}
