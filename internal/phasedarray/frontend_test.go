package phasedarray

import (
	"math"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

func newFE() *FrontEnd {
	return New(antenna.NewULA(8, 28e9), antenna.DefaultQuantizer())
}

func TestStoreAndLoad(t *testing.T) {
	f := newFE()
	w := f.Array.SingleBeam(dsp.Rad(10))
	if err := f.StoreBeam(1, w); err != nil {
		t.Fatal(err)
	}
	if f.NumStored() != 1 {
		t.Fatalf("stored %d", f.NumStored())
	}
	got, ok := f.Beam(1)
	if !ok {
		t.Fatal("beam missing")
	}
	if math.Abs(got.Norm()-1) > 1e-12 {
		t.Fatal("stored beam not unit norm")
	}
	if _, ok := f.Beam(99); ok {
		t.Fatal("phantom register")
	}
	if err := f.LoadBeam(1, 0); err != nil {
		t.Fatal(err)
	}
	if f.Active() == nil {
		t.Fatal("no active beam after load")
	}
	if err := f.LoadBeam(42, 0); err == nil {
		t.Fatal("loading empty register should fail")
	}
}

func TestSwitchLatency(t *testing.T) {
	f := newFE()
	w := f.Array.SingleBeam(0)
	if err := f.SetWeights(w, 1.0); err != nil {
		t.Fatal(err)
	}
	if f.Ready(1.0) {
		t.Fatal("ready immediately after switch")
	}
	if f.Ready(1.0 + DefaultSwitchLatency/2) {
		t.Fatal("ready mid-settle")
	}
	if !f.Ready(1.0 + DefaultSwitchLatency) {
		t.Fatal("not ready after settle")
	}
	if f.BusyUntil() != 1.0+DefaultSwitchLatency {
		t.Fatalf("BusyUntil = %g", f.BusyUntil())
	}
	if f.Switches() != 1 {
		t.Fatalf("switches = %d", f.Switches())
	}
}

func TestSetWeightsValidatesLength(t *testing.T) {
	f := newFE()
	if err := f.SetWeights(make(cmx.Vector, 3), 0); err == nil {
		t.Fatal("short weights should fail")
	}
	if err := f.StoreBeam(0, make(cmx.Vector, 3)); err == nil {
		t.Fatal("short stored beam should fail")
	}
}

func TestActiveIsCopy(t *testing.T) {
	f := newFE()
	if f.Active() != nil {
		t.Fatal("active before any switch")
	}
	_ = f.SetWeights(f.Array.SingleBeam(0), 0)
	a := f.Active()
	a[0] = 0
	b := f.Active()
	if b[0] == 0 {
		t.Fatal("Active leaked internal state")
	}
}

func TestTRPConservedAcrossBeamShapes(t *testing.T) {
	f := newFE()
	if f.TRP() != 0 {
		t.Fatal("TRP before any beam")
	}
	_ = f.SetWeights(f.Array.SingleBeam(0), 0)
	if math.Abs(f.TRP()-1) > 1e-9 {
		t.Fatalf("single-beam TRP = %g", f.TRP())
	}
	// A 2-beam multi-beam must radiate the same total power.
	_ = f.StoreBeam(0, f.Array.SingleBeam(0))
	_ = f.StoreBeam(1, f.Array.SingleBeam(dsp.Rad(30)))
	w, err := f.ComposeMultiBeam([]int{0, 1}, []complex128{1, complex(0.7, 0.2)})
	if err != nil {
		t.Fatal(err)
	}
	_ = f.SetWeights(w, 0)
	if math.Abs(f.TRP()-1) > 1e-9 {
		t.Fatalf("multi-beam TRP = %g", f.TRP())
	}
}

func TestComposeMultiBeamShapesTwoLobes(t *testing.T) {
	f := newFE()
	phi1, phi2 := 0.0, dsp.Rad(30)
	_ = f.StoreBeam(0, f.Array.SingleBeam(phi1))
	_ = f.StoreBeam(1, f.Array.SingleBeam(phi2))
	w, err := f.ComposeMultiBeam([]int{0, 1}, []complex128{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	u := f.Array
	gLobe1 := u.Gain(w, phi1)
	gLobe2 := u.Gain(w, phi2)
	gValley := u.Gain(w, dsp.Rad(15))
	if gLobe1 < 2 || gLobe2 < 2 {
		t.Fatalf("lobes too weak: %g, %g", gLobe1, gLobe2)
	}
	if gValley > gLobe1/2 || gValley > gLobe2/2 {
		t.Fatalf("no valley between lobes: %g vs %g/%g", gValley, gLobe1, gLobe2)
	}
	// Equal split: each lobe near half the single-beam gain (N/2 = 4).
	if math.Abs(gLobe1-4) > 1.0 || math.Abs(gLobe2-4) > 1.0 {
		t.Fatalf("equal-split lobes should each have gain ≈4: %g, %g", gLobe1, gLobe2)
	}
}

func TestComposeMultiBeamErrors(t *testing.T) {
	f := newFE()
	_ = f.StoreBeam(0, f.Array.SingleBeam(0))
	if _, err := f.ComposeMultiBeam([]int{0}, []complex128{1, 2}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := f.ComposeMultiBeam(nil, nil); err == nil {
		t.Fatal("empty composition should fail")
	}
	if _, err := f.ComposeMultiBeam([]int{5}, []complex128{1}); err == nil {
		t.Fatal("missing register should fail")
	}
	if _, err := f.ComposeMultiBeam([]int{0, 0}, []complex128{1, -1}); err == nil {
		t.Fatal("cancelling coefficients should fail")
	}
}

func TestQuantizationAppliedOnStore(t *testing.T) {
	// With a coarse 2-bit quantizer, stored phases must land on the grid.
	f := New(antenna.NewULA(8, 28e9), antenna.CoarseQuantizer())
	_ = f.StoreBeam(0, f.Array.SingleBeam(dsp.Rad(17)))
	w, _ := f.Beam(0)
	step := math.Pi / 2
	for i, x := range w {
		if x == 0 {
			continue
		}
		ph := math.Atan2(imag(x), real(x))
		r := math.Mod(math.Abs(ph), step)
		if math.Min(r, step-r) > 1e-9 {
			t.Fatalf("element %d phase %g off 2-bit grid", i, ph)
		}
	}
}

func TestPhaseAt(t *testing.T) {
	f := newFE()
	_ = f.SetWeights(f.Array.SingleBeam(dsp.Rad(20)), 0)
	// Element 0 of a matched beam has zero phase (reference element).
	if got := f.PhaseAt(0); math.Abs(got) > 0.1 {
		t.Fatalf("element 0 phase %g", got)
	}
}
