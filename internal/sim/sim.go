// Package sim provides the slot-level simulation harness that drives every
// end-to-end experiment: a Scenario (environment, mobility trace, blockage
// schedule) is replayed slot by slot against one or more beam-management
// Schemes, and each scheme's per-slot outcomes are folded into the paper's
// reliability and throughput metrics.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
)

// Slot is one scheme's outcome for one slot.
type Slot struct {
	// SNRdB is the wideband effective SNR the scheme's current beam
	// achieves over the true channel this slot.
	SNRdB float64
	// Training marks the slot as consumed by beam management (probing or
	// training): no data, reliability charge.
	Training bool
	// ThroughputBps is the data rate achieved this slot (0 when training
	// or in outage).
	ThroughputBps float64
}

// Scheme is a beam-management policy under test. Step is called once per
// slot with the current channel snapshot (the true channel; schemes must
// only observe it through their own sounder probes and use the snapshot for
// the slot's data-transmission outcome).
type Scheme interface {
	Name() string
	Step(t float64, m *channel.Model) Slot
}

// Scenario describes one end-to-end experiment.
type Scenario struct {
	Env      *env.Environment
	GNB      env.Pose
	UE       motion.Trace
	Blockage events.Schedule
	Duration float64 // seconds
	Num      nr.Numerology
	TxArray  *antenna.ULA
	// UEArray, when non-nil, gives the UE a directional phased array (the
	// §4.4 scenario). Schemes see it as Model.Rx and must manage their own
	// UE-side combining beam via Model.RxWeights; nil means a quasi-omni
	// UE.
	UEArray *antenna.ULA
	// MaxPaths caps the modeled paths per slot (0 = no cap).
	MaxPaths int
	// Fading, when non-nil, adds temporally-correlated small-scale fading
	// to every path (Gauss-Markov in dB). Real mmWave links wobble ±1–2 dB
	// even when nominally static.
	Fading *Fading

	initialVias map[int]int // wall id → stable path rank (lazily built)
	nextID      int
}

// Fading is a per-path Gauss-Markov shadowing process in dB:
// F(t+Δ) = ρ·F(t) + √(1−ρ²)·σ·N(0,1) with ρ = exp(−Δ/τc).
type Fading struct {
	SigmaDB    float64 // steady-state standard deviation
	CoherenceS float64 // coherence time τc (seconds)
	Rng        *rand.Rand

	state map[int]float64
	lastT float64
}

// NewFading returns a fading process with the given parameters.
func NewFading(sigmaDB, coherenceS float64, rng *rand.Rand) *Fading {
	return &Fading{SigmaDB: sigmaDB, CoherenceS: coherenceS, Rng: rng, state: map[int]float64{}}
}

// at advances the process to time t and returns the fade (dB, signed) for
// the given stable path id. Calls must have non-decreasing t.
func (f *Fading) at(pathID int, t float64) float64 {
	dt := t - f.lastT
	if dt < 0 {
		dt = 0
	}
	// Advance all tracked paths once per new timestamp, in sorted id order
	// so the innovation draws are deterministic (map iteration order is
	// randomized in Go).
	if dt > 0 {
		rho := math.Exp(-dt / f.CoherenceS)
		innov := math.Sqrt(1 - rho*rho)
		ids := make([]int, 0, len(f.state))
		for id := range f.state {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			f.state[id] = rho*f.state[id] + innov*f.SigmaDB*f.Rng.NormFloat64()
		}
		f.lastT = t
	}
	v, ok := f.state[pathID]
	if !ok {
		v = f.SigmaDB * f.Rng.NormFloat64()
		f.state[pathID] = v
	}
	return v
}

// Validate checks the scenario.
func (sc *Scenario) Validate() error {
	if sc.Env == nil || sc.UE == nil || sc.TxArray == nil {
		return fmt.Errorf("sim: scenario missing env/UE/array")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration %g", sc.Duration)
	}
	if err := sc.Num.Validate(); err != nil {
		return err
	}
	return nil
}

// ChannelAt builds the true channel snapshot at time t: ray-traced paths
// for the UE's pose with the blockage schedule applied. Blockage events
// index paths by their rank in the *initial* (t = 0) trace; ranks are
// matched across time by reflecting wall identity so a moving UE keeps a
// stable path labeling.
func (sc *Scenario) ChannelAt(t float64) *channel.Model {
	pose := sc.UE.At(t)
	paths := sc.Env.Trace(sc.GNB, pose)
	if sc.MaxPaths > 0 && len(paths) > sc.MaxPaths {
		paths = paths[:sc.MaxPaths]
	}
	m := channel.New(sc.Env.Band, sc.TxArray, paths)
	m.Rx = sc.UEArray
	if len(sc.Blockage) == 0 && sc.Fading == nil {
		return m
	}
	ids := sc.pathIDs(t)
	for i := range m.Paths {
		m.Paths[i].ExtraLossDB += sc.Blockage.LossAt(ids[i], t)
		if sc.Fading != nil {
			m.Paths[i].ExtraLossDB += sc.Fading.at(ids[i], t)
		}
	}
	// Direct Paths mutation: drop any cached per-path state (the snapshot
	// validation would catch this too; the explicit call documents the
	// contract).
	m.InvalidateCache()
	return m
}

// pathIDs maps the current trace's path order onto the initial path ranks
// (by reflecting-wall identity, see env.Path.ID).
func (sc *Scenario) pathIDs(t float64) []int {
	if sc.initialVias == nil {
		paths := sc.Env.Trace(sc.GNB, sc.UE.At(0))
		if sc.MaxPaths > 0 && len(paths) > sc.MaxPaths {
			paths = paths[:sc.MaxPaths]
		}
		sc.initialVias = map[int]int{}
		for rank, p := range paths {
			sc.initialVias[p.ID()] = rank
		}
		sc.nextID = len(paths)
	}
	pose := sc.UE.At(t)
	paths := sc.Env.Trace(sc.GNB, pose)
	if sc.MaxPaths > 0 && len(paths) > sc.MaxPaths {
		paths = paths[:sc.MaxPaths]
	}
	ids := make([]int, len(paths))
	for i, p := range paths {
		id, ok := sc.initialVias[p.ID()]
		if !ok {
			id = sc.nextID
			sc.initialVias[p.ID()] = id
			sc.nextID++
		}
		ids[i] = id
	}
	return ids
}

// Result is one scheme's outcome over a scenario.
type Result struct {
	Summary link.Summary
	// Series holds the per-slot outcomes in slot order (nil unless
	// KeepSeries was set).
	Series []Slot
	Times  []float64
}

// Runner executes scenarios.
type Runner struct {
	// KeepSeries retains per-slot outcomes (memory ∝ slots).
	KeepSeries bool
	// Warmup excludes the first seconds from the metrics (the paper trains
	// links before its measurement window); the schemes still run during
	// warmup.
	Warmup float64
}

// Run replays the scenario against each scheme independently (each scheme
// sees the same channel realizations) and returns per-scheme results keyed
// by Scheme.Name.
func (r Runner) Run(sc *Scenario, schemes ...Scheme) (map[string]Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("sim: no schemes")
	}
	slotDur := sc.Num.SlotDuration()
	nSlots := int(math.Ceil((sc.Duration + r.Warmup) / slotDur))
	out := make(map[string]Result, len(schemes))
	meters := make([]*link.Meter, len(schemes))
	results := make([]Result, len(schemes))
	for i := range schemes {
		meters[i] = link.NewMeter()
	}
	for s := 0; s < nSlots; s++ {
		t := float64(s) * slotDur
		m := sc.ChannelAt(t)
		for i, scheme := range schemes {
			slot := scheme.Step(t, m.Clone())
			if t < r.Warmup {
				continue
			}
			meters[i].Record(slot.SNRdB, slot.Training, slot.ThroughputBps)
			if r.KeepSeries {
				results[i].Series = append(results[i].Series, slot)
				results[i].Times = append(results[i].Times, t)
			}
		}
	}
	for i, scheme := range schemes {
		results[i].Summary = meters[i].Summarize()
		out[scheme.Name()] = results[i]
	}
	return out, nil
}
