// Package sim provides the slot-level simulation harness that drives every
// end-to-end experiment: a Scenario (environment, mobility trace, blockage
// schedule) is replayed slot by slot against one or more beam-management
// Schemes, and each scheme's per-slot outcomes are folded into the paper's
// reliability and throughput metrics.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/incr"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
)

// Slot is one scheme's outcome for one slot.
type Slot struct {
	// SNRdB is the wideband effective SNR the scheme's current beam
	// achieves over the true channel this slot.
	SNRdB float64
	// Training marks the slot as consumed by beam management (probing or
	// training): no data, reliability charge.
	Training bool
	// ThroughputBps is the data rate achieved this slot (0 when training
	// or in outage).
	ThroughputBps float64
}

// Scheme is a beam-management policy under test. Step is called once per
// slot with the current channel snapshot (the true channel; schemes must
// only observe it through their own sounder probes and use the snapshot for
// the slot's data-transmission outcome).
type Scheme interface {
	Name() string
	Step(t float64, m *channel.Model) Slot
}

// Scenario describes one end-to-end experiment.
type Scenario struct {
	Env      *env.Environment
	GNB      env.Pose
	UE       motion.Trace
	Blockage events.Schedule
	Duration float64 // seconds
	Num      nr.Numerology
	TxArray  *antenna.ULA
	// UEArray, when non-nil, gives the UE a directional phased array (the
	// §4.4 scenario). Schemes see it as Model.Rx and must manage their own
	// UE-side combining beam via Model.RxWeights; nil means a quasi-omni
	// UE.
	UEArray *antenna.ULA
	// MaxPaths caps the modeled paths per slot (0 = no cap).
	MaxPaths int
	// Fading, when non-nil, adds temporally-correlated small-scale fading
	// to every path (Gauss-Markov in dB). Real mmWave links wobble ±1–2 dB
	// even when nominally static.
	Fading *Fading

	initialVias map[int]int // wall id → stable path rank (lazily built)
	nextID      int
	// traceBuf and idsBuf are the per-slot scratch of ChannelAt/channelInto:
	// the ray tracer appends into traceBuf and the stable-id mapping reuses
	// idsBuf, so steady-state slot stepping does not touch the allocator.
	// They make a Scenario single-goroutine; parallel trials each build
	// their own Scenario (the experiment engine already does).
	traceBuf []env.Path
	idsBuf   []int
	// tracePose/traceValid memoize traceBuf for the pose it was traced at:
	// a static UE (or any dwell between waypoints) re-traces nothing, since
	// the environment geometry is fixed for a Scenario's lifetime (the same
	// assumption initialVias already bakes in).
	tracePose  env.Pose
	traceValid bool
	// viaOrder/viaHead implement FIFO eviction for the non-initial entries
	// of initialVias, bounding the stable-id map under long mobile runs
	// (new reflecting-wall identities keep appearing as the UE roams); see
	// pathIDsFor.
	viaOrder []int
	viaHead  int
	// traceCache memoizes the ray tracer's enumeration half for this pair
	// (see env.TraceCache); lastModel/lastLoss let a fully quiescent slot
	// (same pose, same blockage losses, no fading, same model) skip the
	// channel rewrite entirely. Both are incremental-engine state: with
	// MMR_INCREMENTAL=off neither is ever consulted.
	traceCache *env.TraceCache
	lastModel  *channel.Model
	lastLoss   []float64
	lastValid  bool
}

// Fading is a per-path Gauss-Markov shadowing process in dB:
// F(t+Δ) = ρ·F(t) + √(1−ρ²)·σ·N(0,1) with ρ = exp(−Δ/τc).
type Fading struct {
	SigmaDB    float64 // steady-state standard deviation
	CoherenceS float64 // coherence time τc (seconds)
	Rng        *rand.Rand

	state map[int]float64
	// ids is the sorted list of tracked path ids, maintained incrementally
	// (insertion on first sight) so every advance draws innovations in the
	// same ascending-id order the old sort-the-keys loop produced — without
	// rebuilding and sorting a fresh slice each timestamp.
	ids   []int
	lastT float64
}

// NewFading returns a fading process with the given parameters.
func NewFading(sigmaDB, coherenceS float64, rng *rand.Rand) *Fading {
	return &Fading{SigmaDB: sigmaDB, CoherenceS: coherenceS, Rng: rng, state: map[int]float64{}}
}

// at advances the process to time t and returns the fade (dB, signed) for
// the given stable path id. Calls must have non-decreasing t.
func (f *Fading) at(pathID int, t float64) float64 {
	dt := t - f.lastT
	if dt < 0 {
		dt = 0
	}
	// Advance all tracked paths once per new timestamp, in ascending id
	// order (f.ids is kept sorted) so the innovation draws are
	// deterministic (map iteration order is randomized in Go).
	if dt > 0 {
		rho := math.Exp(-dt / f.CoherenceS)
		innov := math.Sqrt(1 - rho*rho)
		for _, id := range f.ids {
			f.state[id] = rho*f.state[id] + innov*f.SigmaDB*f.Rng.NormFloat64()
		}
		f.lastT = t
	}
	v, ok := f.state[pathID]
	if !ok {
		v = f.SigmaDB * f.Rng.NormFloat64()
		f.state[pathID] = v
		i := sort.SearchInts(f.ids, pathID)
		f.ids = append(f.ids, 0)
		copy(f.ids[i+1:], f.ids[i:])
		f.ids[i] = pathID
	}
	return v
}

// Validate checks the scenario.
func (sc *Scenario) Validate() error {
	if sc.Env == nil || sc.UE == nil || sc.TxArray == nil {
		return fmt.Errorf("sim: scenario missing env/UE/array")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration %g", sc.Duration)
	}
	if err := sc.Num.Validate(); err != nil {
		return err
	}
	return nil
}

// ChannelAt builds the true channel snapshot at time t: ray-traced paths
// for the UE's pose with the blockage schedule applied. Blockage events
// index paths by their rank in the *initial* (t = 0) trace; ranks are
// matched across time by reflecting wall identity so a moving UE keeps a
// stable path labeling.
func (sc *Scenario) ChannelAt(t float64) *channel.Model {
	m := &channel.Model{}
	sc.channelInto(t, m)
	return m
}

// ChannelInto rebuilds m in place as the channel snapshot at time t — the
// allocation-free variant of ChannelAt for persistent-model slot loops
// (Runner.Run, the station serving engine). The model should have
// Reuse = true so path/response storage is recycled across slots.
//
// The scenario's per-slot scratch (trace buffer, stable-id map) is reused
// by every call, so a Scenario must never be shared between goroutines.
func (sc *Scenario) ChannelInto(t float64, m *channel.Model) {
	sc.channelInto(t, m)
}

// channelInto rebuilds m in place as the channel snapshot at time t — the
// per-slot variant of ChannelAt behind Runner.Run. The trace runs ONCE per
// slot (the stable-id mapping reuses the same paths instead of re-tracing),
// appending into the scenario's retained trace buffer, and the paths are
// copied into m's existing capacity; in steady state the slot loop does not
// touch the allocator.
func (sc *Scenario) channelInto(t float64, m *channel.Model) {
	pose := sc.UE.At(t)
	posed := sc.traceValid && pose == sc.tracePose
	if !posed {
		if incr.Enabled {
			if sc.traceCache == nil {
				sc.traceCache = &env.TraceCache{}
			}
			sc.traceBuf = sc.Env.TraceAppendCached(sc.traceCache, sc.traceBuf[:0], sc.GNB, pose)
		} else {
			sc.traceBuf = sc.Env.TraceAppend(sc.traceBuf[:0], sc.GNB, pose)
		}
		sc.tracePose = pose
		sc.traceValid = true
	}
	paths := sc.traceBuf
	if sc.MaxPaths > 0 && len(paths) > sc.MaxPaths {
		paths = paths[:sc.MaxPaths]
	}
	// Quiescent fast path: same pose, same model as the previous write, no
	// fading (fading draws fresh innovations every new timestamp, so a
	// fading slot is never quiescent), and every blockage loss equal to the
	// value already written into m — then m holds bit-for-bit the state this
	// call would produce, every write below is a no-op by value, and the
	// model's stamp legitimately stays unchanged (which is what lets the
	// manager's SNR fold and the station's batch-entry pass skip too).
	if incr.Enabled && posed && sc.lastValid && m == sc.lastModel && sc.Fading == nil {
		if len(sc.Blockage) == 0 {
			return
		}
		if len(sc.lastLoss) == len(paths) {
			ids := sc.pathIDsFor(paths)
			same := true
			for i := range paths {
				if sc.Blockage.LossAt(ids[i], t) != sc.lastLoss[i] {
					same = false
					break
				}
			}
			if same {
				return
			}
		}
	}
	m.Band = sc.Env.Band
	m.Tx = sc.TxArray
	m.Rx = sc.UEArray
	m.RxWeights = nil
	if cap(m.Paths) < len(paths) {
		m.Paths = make([]channel.PathState, len(paths))
	}
	m.Paths = m.Paths[:len(paths)]
	for i, p := range paths {
		m.Paths[i] = channel.PathState{Path: p}
	}
	if len(sc.Blockage) != 0 || sc.Fading != nil {
		ids := sc.pathIDsFor(paths)
		for i := range m.Paths {
			m.Paths[i].ExtraLossDB += sc.Blockage.LossAt(ids[i], t)
			if sc.Fading != nil {
				m.Paths[i].ExtraLossDB += sc.Fading.at(ids[i], t)
			}
		}
	}
	// Record what this write put into m so the next call can prove itself
	// quiescent. With fading the slot can never be skipped, so nothing is
	// recorded (ExtraLossDB would include the fade, not just blockage).
	if incr.Enabled && sc.Fading == nil {
		if cap(sc.lastLoss) < len(paths) {
			sc.lastLoss = make([]float64, len(paths))
		}
		sc.lastLoss = sc.lastLoss[:len(paths)]
		for i := range m.Paths {
			sc.lastLoss[i] = m.Paths[i].ExtraLossDB
		}
		sc.lastModel = m
		sc.lastValid = true
	} else {
		sc.lastValid = false
	}
	m.BumpStamp()
	// No InvalidateCache here: every mutation above is visible to the
	// model's per-path snapshot validation, and leaving the epoch alone is
	// what lets a loss-only slot (fading/blockage on static geometry) renew
	// its cached coefficients in place instead of rebuilding steering
	// vectors and carrier phasors.
}

// maxStableIDs bounds the stable-id map: a long mobile run keeps meeting
// new reflecting-wall identities (every wall pair at order 2), and without
// a cap initialVias grows for the scenario's whole lifetime. The cap is far
// above any realistic concurrent path-identity working set, so eviction
// only ever touches identities that left the trace long ago.
const maxStableIDs = 4096

// pathIDsFor maps a freshly traced path list onto the initial path ranks
// (by reflecting-wall identity, see env.Path.ID). The returned slice reuses
// the scenario's id buffer — valid only until the next call.
//
// The map is bounded at maxStableIDs entries with deterministic FIFO
// eviction of non-initial identities (insertion order, oldest first); the
// t = 0 entries are pinned forever because blockage schedules address paths
// by initial rank. An evicted identity that reappears is assigned a fresh
// id — its fading state restarts, exactly as for a first sighting.
func (sc *Scenario) pathIDsFor(paths []env.Path) []int {
	if sc.initialVias == nil {
		init := sc.Env.Trace(sc.GNB, sc.UE.At(0))
		if sc.MaxPaths > 0 && len(init) > sc.MaxPaths {
			init = init[:sc.MaxPaths]
		}
		sc.initialVias = map[int]int{}
		for rank, p := range init {
			sc.initialVias[p.ID()] = rank
		}
		sc.nextID = len(init)
	}
	if cap(sc.idsBuf) < len(paths) {
		sc.idsBuf = make([]int, len(paths))
	}
	ids := sc.idsBuf[:len(paths)]
	for i, p := range paths {
		id, ok := sc.initialVias[p.ID()]
		if !ok {
			if len(sc.initialVias) >= maxStableIDs && sc.viaHead < len(sc.viaOrder) {
				delete(sc.initialVias, sc.viaOrder[sc.viaHead])
				sc.viaHead++
				// Compact the FIFO's dead prefix once it spans a full cap's
				// worth of evictions, keeping the backing array bounded.
				if sc.viaHead >= maxStableIDs {
					n := copy(sc.viaOrder, sc.viaOrder[sc.viaHead:])
					sc.viaOrder = sc.viaOrder[:n]
					sc.viaHead = 0
				}
			}
			id = sc.nextID
			sc.initialVias[p.ID()] = id
			sc.nextID++
			sc.viaOrder = append(sc.viaOrder, p.ID())
		}
		ids[i] = id
	}
	return ids
}

// Result is one scheme's outcome over a scenario.
type Result struct {
	Summary link.Summary
	// Series holds the per-slot outcomes in slot order (nil unless
	// KeepSeries was set).
	Series []Slot
	Times  []float64
}

// Runner executes scenarios.
type Runner struct {
	// KeepSeries retains per-slot outcomes (memory ∝ slots).
	KeepSeries bool
	// Warmup excludes the first seconds from the metrics (the paper trains
	// links before its measurement window); the schemes still run during
	// warmup.
	Warmup float64
}

// Run replays the scenario against each scheme independently (each scheme
// sees the same channel realizations) and returns per-scheme results keyed
// by Scheme.Name.
//
// Each scheme steps on its own persistent model: cloned from the base
// snapshot on the first slot (so schemes never share mutable state, exactly
// as the old per-slot Clone guaranteed), then refreshed in place with
// CopyStateFrom and recycled caches (Model.Reuse) every slot after — the
// slot loop is allocation-free in steady state.
func (r Runner) Run(sc *Scenario, schemes ...Scheme) (map[string]Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("sim: no schemes")
	}
	slotDur := sc.Num.SlotDuration()
	nSlots := int(math.Ceil((sc.Duration + r.Warmup) / slotDur))
	out := make(map[string]Result, len(schemes))
	meters := make([]*link.Meter, len(schemes))
	results := make([]Result, len(schemes))
	models := make([]*channel.Model, len(schemes))
	for i := range schemes {
		meters[i] = link.NewMeter()
	}
	base := &channel.Model{}
	for s := 0; s < nSlots; s++ {
		t := float64(s) * slotDur
		sc.channelInto(t, base)
		for i, scheme := range schemes {
			sm := models[i]
			if sm == nil {
				sm = base.Clone()
				sm.Reuse = true
				models[i] = sm
			} else {
				sm.CopyStateFrom(base)
			}
			slot := scheme.Step(t, sm)
			if t < r.Warmup {
				continue
			}
			meters[i].Record(slot.SNRdB, slot.Training, slot.ThroughputBps)
			if r.KeepSeries {
				results[i].Series = append(results[i].Series, slot)
				results[i].Times = append(results[i].Times, t)
			}
		}
	}
	for i, scheme := range schemes {
		results[i].Summary = meters[i].Summarize()
		out[scheme.Name()] = results[i]
	}
	return out, nil
}
