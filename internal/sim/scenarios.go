package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
)

// Canonical experiment scenarios shared by the test suite, the benchmark
// harness, and the example programs. Each mirrors one of the paper's
// evaluation conditions.

// DefaultFadingSigmaDB is the small-scale fading the end-to-end scenarios
// apply: mmWave links wobble ±1–2 dB even when nominally static (visible in
// the paper's Fig. 16 traces).
const DefaultFadingSigmaDB = 1.0

// DefaultFadingCoherence is the fading coherence time.
const DefaultFadingCoherence = 10e-3

// StaticIndoor is the paper's 7 m conference-room link with a static UE.
func StaticIndoor(seed int64) *Scenario {
	uePos := env.Vec2{X: 6, Y: 2.6}
	gnb := env.GNBPose(true)
	return &Scenario{
		Env:      env.ConferenceRoom(env.Band28GHz()),
		GNB:      gnb,
		UE:       motion.Static{Pose: env.Pose{Pos: uePos, Facing: env.FacingFrom(uePos, gnb.Pos)}},
		Duration: 1.0,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
		Fading:   NewFading(DefaultFadingSigmaDB, DefaultFadingCoherence, rand.New(rand.NewSource(seed+7000))),
	}
}

// IndoorBudget is the transmit budget for the indoor scenarios (≈27 dB SNR
// at 7 m, matching Fig. 15a).
func IndoorBudget() link.Budget { return link.DefaultBudget() }

// SpreadStaticIndoor is StaticIndoor with the UE placed on an arc around
// the gNB: frac ∈ [0, 1] maps to azimuth −40°…+40° off the gNB's facing at
// 5 m range, still inside the conference room. A population of sessions
// with distinct frac values therefore gets distinct angles of departure —
// the geometry the hybrid SDMA tier's angular-separation pairing needs
// (StaticIndoor puts every UE at the same spot, so every session shares
// one AoD and no two may ever share a slot).
func SpreadStaticIndoor(seed int64, frac float64) *Scenario {
	sc := StaticIndoor(seed)
	gnb := env.GNBPose(true)
	phi := (-40 + 80*frac) * math.Pi / 180
	uePos := env.Vec2{X: gnb.Pos.X + 5*math.Cos(phi), Y: gnb.Pos.Y + 5*math.Sin(phi)}
	sc.UE = motion.Static{Pose: env.Pose{Pos: uePos, Facing: env.FacingFrom(uePos, gnb.Pos)}}
	return sc
}

// ThinMarginOutdoor is the stress scenario behind the Fig. 18 end-to-end
// comparison: a 65 m street-canyon link whose two wall reflections are
// individually *below* the single-beam outage threshold margin but
// combine, through constructive multi-beam, to a comfortable link — the
// regime where the paper's reliability gap opens. The UE translates at
// 1.5 m/s; blockage events (20–30 dB, 100–500 ms, ≥1 per run) hit the LOS.
func ThinMarginOutdoor(seed int64) *Scenario {
	e := env.NewEnvironment(env.Band28GHz(),
		env.Wall{Seg: env.Segment{A: env.Vec2{X: -5, Y: 6}, B: env.Vec2{X: 90, Y: 6}}, Mat: env.Glass},
		env.Wall{Seg: env.Segment{A: env.Vec2{X: -5, Y: -5.6}, B: env.Vec2{X: 90, Y: -5.6}}, Mat: env.Concrete},
	)
	gnb := env.Pose{Pos: env.Vec2{X: 0, Y: 0}}
	target := gnb.Pos
	ue := motion.Translation{
		Start:       env.Vec2{X: 65, Y: 0.8},
		Vel:         env.Vec2{X: 1.5, Y: 0},
		TrackTarget: &target,
	}
	rng := rand.New(rand.NewSource(seed))
	gen := events.GenParams{
		Horizon: 1.0, Rate: 1.5,
		MinDuration: 0.1, MaxDuration: 0.5,
		MinDepthDB: 20, MaxDepthDB: 30,
		NumPaths: 1, // the blocker stands in the LOS
	}
	var sched events.Schedule
	for len(sched) == 0 {
		sched = events.Generate(rng, gen)
	}
	for i := range sched {
		sched[i].Start += StandardWarmup // keep events inside the window
	}
	return &Scenario{
		Env: e, GNB: gnb, UE: ue,
		Blockage: sched,
		Fading:   NewFading(DefaultFadingSigmaDB, DefaultFadingCoherence, rand.New(rand.NewSource(seed+5000))),
		Duration: 1.0,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
	}
}

// OutdoorBudget is the transmit budget that puts the ThinMarginOutdoor
// link at ≈11 dB LOS SNR with alternates at ≈6 dB — the paper's outdoor
// margin regime.
func OutdoorBudget() link.Budget {
	b := link.DefaultBudget()
	b.TxPowerDBm = 19.0
	return b
}

// IndoorMobileBlocked is the Fig. 18b indoor condition: conference-room
// link, translating UE, a blocker crossing the beams mid-run.
func IndoorMobileBlocked(seed int64) *Scenario {
	sc := StaticIndoor(seed)
	target := env.GNBPose(true).Pos
	sc.UE = motion.Translation{
		Start:       env.Vec2{X: 6, Y: 2.2},
		Vel:         env.Vec2{X: 0, Y: 1.2},
		TrackTarget: &target,
	}
	rng := rand.New(rand.NewSource(seed + 31))
	gen := events.DefaultGenParams(2)
	var sched events.Schedule
	for len(sched) == 0 {
		sched = events.Generate(rng, gen)
	}
	for i := range sched {
		sched[i].Start += StandardWarmup
	}
	sc.Blockage = sched
	return sc
}

// RotatingUE is the Fig. 17-style condition with a directional UE rotating
// at the paper's 24°/s VR-headset rate on the indoor link.
func RotatingUE(seed int64, rateDegPS float64) *Scenario {
	sc := StaticIndoor(seed)
	uePos := env.Vec2{X: 6, Y: 2.6}
	gnb := env.GNBPose(true)
	sc.UE = motion.Rotation{
		Base:      env.Pose{Pos: uePos, Facing: env.FacingFrom(uePos, gnb.Pos)},
		RateRadPS: rateDegPS * math.Pi / 180,
	}
	sc.UEArray = antenna.NewULA(8, 28e9)
	return sc
}

// StandardWarmup is the settling time excluded from metrics: the paper
// trains links before its 1 s measurement windows.
const StandardWarmup = 0.08

// SmallSpreadMobile is the Fig. 17c condition in the constructive-combining
// regime: a 7 m link with a strong metal reflector running parallel to the
// direct path (sub-ns excess delay, so combining holds across 400 MHz),
// with the UE translating at 1.5 m/s.
func SmallSpreadMobile(seed int64) *Scenario {
	e := env.NewEnvironment(env.Band28GHz(), env.Wall{
		Seg: env.Segment{A: env.Vec2{X: -1, Y: 1.2}, B: env.Vec2{X: 10, Y: 1.2}},
		Mat: env.Metal,
	})
	gnb := env.Pose{Pos: env.Vec2{X: 0, Y: 0}}
	target := gnb.Pos
	return &Scenario{
		Env: e, GNB: gnb,
		UE: motion.Translation{
			Start:       env.Vec2{X: 7, Y: -1.2},
			Vel:         env.Vec2{X: 0, Y: 1.5},
			TrackTarget: &target,
		},
		Duration: 1.0,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
		Fading:   NewFading(DefaultFadingSigmaDB, DefaultFadingCoherence, rand.New(rand.NewSource(seed+9000))),
	}
}

// WalkingBlockerIndoor is the Fig. 16 condition: static indoor link, a
// blocker walking across first the NLOS then the LOS beam.
func WalkingBlockerIndoor(seed int64) *Scenario {
	sc := StaticIndoor(seed)
	sc.Blockage = events.WalkingBlocker(StandardWarmup+0.25, 0.35, 0.20, 26)
	return sc
}

// Named returns the canonical scenario (and matching budget) for a CLI
// name: indoor, indoor-mobile, outdoor, walking-blocker, small-spread,
// rotating-ue.
func Named(name string, seed int64) (*Scenario, link.Budget, error) {
	switch name {
	case "indoor":
		return StaticIndoor(seed), IndoorBudget(), nil
	case "indoor-mobile":
		return IndoorMobileBlocked(seed), IndoorBudget(), nil
	case "outdoor":
		return ThinMarginOutdoor(seed), OutdoorBudget(), nil
	case "walking-blocker":
		return WalkingBlockerIndoor(seed), IndoorBudget(), nil
	case "small-spread":
		return SmallSpreadMobile(seed), IndoorBudget(), nil
	case "rotating-ue":
		return RotatingUE(seed, 24), IndoorBudget(), nil
	default:
		return nil, link.Budget{}, fmt.Errorf("sim: unknown scenario %q", name)
	}
}
